module D = Rfloor_diag.Diagnostic
module Lp = Milp.Lp

let family_of_name name =
  let stem =
    match String.index_opt name '.' with
    | Some i when i + 1 < String.length name ->
      String.sub name (i + 1) (String.length name - i - 1)
    | _ -> name
  in
  let buf = Buffer.create (String.length stem) in
  String.iter
    (fun c -> if not (c >= '0' && c <= '9') then Buffer.add_char buf c)
    stem;
  if Buffer.length buf = 0 then "c" else Buffer.contents buf

(* Range of a row's left-hand side over the variable bounds box. *)
let activity_range lp terms =
  List.fold_left
    (fun (lo, hi) (c, v) ->
      let lb = Lp.var_lb lp v and ub = Lp.var_ub lp v in
      if c >= 0. then (lo +. (c *. lb), hi +. (c *. ub))
      else (lo +. (c *. ub), hi +. (c *. lb)))
    (0., 0.) terms

(* Canonical key of a row's terms: sorted by variable. *)
let terms_key terms =
  List.sort (fun (_, v1) (_, v2) -> Stdlib.compare v1 v2) terms
  |> List.map (fun (c, v) -> Printf.sprintf "%d:%.12g" v c)
  |> String.concat ","

let sense_str = function Lp.Le -> "<=" | Lp.Ge -> ">=" | Lp.Eq -> "="

let run ?(spread_threshold = 1e8) lp =
  let out = ref [] in
  let add d = out := d :: !out in
  let eps rhs = 1e-6 *. (1. +. abs_float rhs) in
  (* duplicate / dominated / conflicting rows, keyed on the terms *)
  let seen_exact = Hashtbl.create 64 in
  let seen_terms = Hashtbl.create 64 in
  (* per-family min/max coefficient magnitude *)
  let families = Hashtbl.create 16 in
  Lp.iter_constrs lp (fun i terms sense rhs ->
      let name = Lp.constr_name lp i in
      (match terms with
      | [] ->
        let feasible =
          match sense with
          | Lp.Le -> 0. <= rhs +. eps rhs
          | Lp.Ge -> 0. >= rhs -. eps rhs
          | Lp.Eq -> abs_float rhs <= eps rhs
        in
        if feasible then
          add
            (D.diagf ~code:"RF101" D.Info (D.Constraint name)
               "empty row (no terms survive normalization); always satisfied")
        else
          add
            (D.diagf ~code:"RF106" D.Error (D.Constraint name)
               "empty row requires 0 %s %g; unsatisfiable" (sense_str sense) rhs)
      | _ ->
        let lo, hi = activity_range lp terms in
        let infeasible =
          match sense with
          | Lp.Le -> lo > rhs +. eps rhs
          | Lp.Ge -> hi < rhs -. eps rhs
          | Lp.Eq -> lo > rhs +. eps rhs || hi < rhs -. eps rhs
        in
        if infeasible then
          add
            (D.diagf ~code:"RF106" D.Error (D.Constraint name)
               "activity range [%g, %g] cannot satisfy %s %g under the \
                variable bounds"
               lo hi (sense_str sense) rhs));
      let tkey = terms_key terms in
      let ekey = Printf.sprintf "%s|%s|%.12g" tkey (sense_str sense) rhs in
      (match Hashtbl.find_opt seen_exact ekey with
      | Some first ->
        add
          (D.diagf ~code:"RF102" D.Warning (D.Constraint name)
             "duplicate of row %s (same terms, sense and rhs)" first)
      | None -> Hashtbl.replace seen_exact ekey name);
      let skey = Printf.sprintf "%s|%s" tkey (sense_str sense) in
      (match Hashtbl.find_opt seen_terms skey with
      | Some (first, first_rhs) when first_rhs <> rhs -> (
        match sense with
        | Lp.Eq ->
          add
            (D.diagf ~code:"RF106" D.Error (D.Constraint name)
               "conflicts with equality row %s: same terms, rhs %g vs %g"
               first rhs first_rhs)
        | Lp.Le | Lp.Ge ->
          let this_dominated =
            match sense with
            | Lp.Le -> rhs > first_rhs
            | Lp.Ge -> rhs < first_rhs
            | Lp.Eq -> false
          in
          let weaker = if this_dominated then name else first in
          add
            (D.diagf ~code:"RF103" D.Info (D.Constraint weaker)
               "dominated by a row with the same terms and a tighter rhs"))
      | Some _ -> () (* exact duplicate, already RF102 *)
      | None -> Hashtbl.replace seen_terms skey (name, rhs));
      let fam = family_of_name name in
      List.iter
        (fun (c, _) ->
          let m = abs_float c in
          match Hashtbl.find_opt families fam with
          | Some (lo, hi) ->
            Hashtbl.replace families fam (min lo m, max hi m)
          | None -> Hashtbl.replace families fam (m, m))
        terms);
  (* variables *)
  let fixed = ref [] and nfixed = ref 0 in
  for v = 0 to Lp.num_vars lp - 1 do
    let lb = Lp.var_lb lp v and ub = Lp.var_ub lp v in
    if lb = ub then begin
      incr nfixed;
      if !nfixed <= 5 then fixed := Lp.var_name lp v :: !fixed
    end;
    (match Lp.var_kind lp v with
    | Lp.Integer | Lp.Binary ->
      if lb = neg_infinity || ub = infinity then
        add
          (D.diagf ~code:"RF105" D.Warning (D.Variable (Lp.var_name lp v))
             "integer variable with infinite bound [%g, %g]: branch-and-bound \
              cannot enumerate its box"
             lb ub)
    | Lp.Continuous -> ())
  done;
  if !nfixed > 0 then
    add
      (D.diagf ~code:"RF104" D.Info D.Model
         "%d variable%s fixed by equal bounds (e.g. %s)" !nfixed
         (if !nfixed = 1 then "" else "s")
         (String.concat ", " (List.rev !fixed)));
  (* conditioning per family *)
  Hashtbl.iter
    (fun fam (lo, hi) ->
      if lo > 0. && hi /. lo > spread_threshold then
        add
          (D.diagf ~code:"RF107" D.Warning (D.Family fam)
             "coefficient magnitudes span [%g, %g] (ratio %.1e): check the \
              big-M constants"
             lo hi (hi /. lo)))
    families;
  List.rev !out
