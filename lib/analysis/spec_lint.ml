open Device
module D = Rfloor_diag.Diagnostic

(* ------------------------------------------------------------------ *)
(* Partition invariants (Section III, Properties .3/.4)               *)

let partition_only (part : Partition.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  let ps = part.Partition.portions in
  let n = Array.length ps in
  let width = Partition.width part and height = Partition.height part in
  if n = 0 then
    add (D.diagf ~code:"RF001" D.Error D.Device "partition has no portions");
  Array.iteri
    (fun i p ->
      let open Partition in
      if p.index <> i + 1 then
        add
          (D.diagf ~code:"RF001" D.Error (D.Portion (i + 1))
             "portion at position %d has index %d (Property .4 ordering)"
             (i + 1) p.index);
      if p.x1 > p.x2 then
        add
          (D.diagf ~code:"RF001" D.Error (D.Portion (i + 1))
             "portion spans columns %d-%d (empty)" p.x1 p.x2);
      if i > 0 && ps.(i - 1).x2 + 1 <> p.x1 then
        add
          (D.diagf ~code:"RF001" D.Error (D.Portion (i + 1))
             "portion starts at column %d but the previous one ends at %d \
              (portions must tile the device left to right)"
             p.x1
             ps.(i - 1).x2);
      if i > 0 && Resource.equal_tile_type ps.(i - 1).tile p.tile then
        add
          (D.diagf ~code:"RF002" D.Error (D.Portion (i + 1))
             "adjacent portions %d and %d share type %s (Property .3)" i (i + 1)
             (Format.asprintf "%a" Resource.pp_tile_type p.tile)))
    ps;
  if n > 0 && ps.(0).Partition.x1 <> 1 then
    add
      (D.diagf ~code:"RF001" D.Error (D.Portion 1)
         "first portion starts at column %d, not 1" ps.(0).Partition.x1);
  if n > 0 && ps.(n - 1).Partition.x2 <> width then
    add
      (D.diagf ~code:"RF001" D.Error (D.Portion n)
         "last portion ends at column %d, device width is %d"
         ps.(n - 1).Partition.x2 width);
  List.iter
    (fun r ->
      if not (Rect.within ~width ~height r) then
        add
          (D.diagf ~code:"RF003" D.Error D.Device
             "forbidden area %s outside the %dx%d device" (Rect.to_string r)
             width height))
    part.Partition.forbidden;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Compatible-window sweep (cheap necessary condition for relocation) *)

(* Greedy lower bound on pairwise-disjoint sites of one compatibility
   class: pick non-overlapping column intervals left to right, stacking
   as many vertically-disjoint windows as fit at each. *)
let disjoint_estimate sites w h =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl r.Rect.x) in
      Hashtbl.replace tbl r.Rect.x (r.Rect.y :: prev))
    sites;
  let per_x =
    Hashtbl.fold (fun x ys acc -> (x, List.sort compare ys) :: acc) tbl []
    |> List.sort compare
  in
  let vertical ys =
    let count = ref 0 and last_end = ref 0 in
    List.iter
      (fun y ->
        if y > !last_end then begin
          incr count;
          last_end := y + h - 1
        end)
      ys;
    !count
  in
  let total = ref 0 and last_end = ref 0 in
  List.iter
    (fun (x, ys) ->
      if x > !last_end then begin
        total := !total + vertical ys;
        last_end := x + w - 1
      end)
    per_x;
  !total

(* Sweep every signature class (canonical representative = leftmost
   compatible column) x height; for classes satisfying the demand,
   track the best window count and disjoint-window estimate.  [stop]
   short-circuits once both reach the threshold. *)
let sweep ?stop part (demand : Resource.demand) =
  let width = Partition.width part and height = Partition.height part in
  let best_sites = ref 0 and best_disjoint = ref 0 in
  (try
     for w = 1 to width do
       for x = 1 to width - w + 1 do
         let probe = Rect.make ~x ~y:1 ~w ~h:1 in
         let xs = Compat.compatible_columns part probe in
         if List.hd xs = x then begin
           (* per-kind column counts of this signature *)
           let counts = List.map (fun k -> (k, ref 0)) Resource.all_kinds in
           for col = x to x + w - 1 do
             let ty = Partition.column_type part col in
             incr (List.assoc ty.Resource.kind counts)
           done;
           let cols_of k = !(List.assoc k counts) in
           for h = 1 to height do
             let satisfied =
               List.for_all (fun (k, n) -> h * cols_of k >= n) demand
             in
             if satisfied then begin
               let sites =
                 Compat.relocation_sites part (Rect.make ~x ~y:1 ~w ~h)
               in
               let nsites = List.length sites in
               if nsites > 0 then begin
                 if nsites > !best_sites then best_sites := nsites;
                 let dj = disjoint_estimate sites w h in
                 if dj > !best_disjoint then best_disjoint := dj;
                 match stop with
                 | Some n when !best_sites >= n && !best_disjoint >= n ->
                   raise Exit
                 | _ -> ()
               end
             end
           done
         end
       done
     done
   with Exit -> ());
  (!best_sites, !best_disjoint)

let compatible_windows part demand = sweep part demand

(* ------------------------------------------------------------------ *)
(* Design checks                                                      *)

let demand_checks part (spec : Spec.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  let usable = Grid.usable_tiles part.Partition.grid in
  let over_kinds = Hashtbl.create 4 and over_regions = Hashtbl.create 4 in
  List.iter
    (fun (r : Spec.region) ->
      List.iter
        (fun (k, n) ->
          let have = Resource.demand_get usable k in
          if n > have then begin
            Hashtbl.replace over_kinds k ();
            Hashtbl.replace over_regions r.Spec.r_name ();
            add
              (D.diagf ~code:"RF004" D.Error (D.Region r.Spec.r_name)
                 "demands %d %s tiles but the device only has %d usable" n
                 (Resource.kind_to_string k) have)
          end)
        r.Spec.demand)
    spec.Spec.regions;
  List.iter
    (fun (k, n) ->
      let have = Resource.demand_get usable k in
      if n > have && not (Hashtbl.mem over_kinds k) then
        add
          (D.diagf ~code:"RF005" D.Error D.Design
             "regions collectively demand %d %s tiles, device has %d usable" n
             (Resource.kind_to_string k) have))
    (Spec.total_demand spec);
  (List.rev !out, fun (r : Spec.region) -> Hashtbl.mem over_regions r.Spec.r_name)

let reference_checks (spec : Spec.t) =
  let known name = Spec.find_region spec name <> None in
  let nets =
    List.concat_map
      (fun (n : Spec.net) ->
        List.filter_map
          (fun e ->
            if known e then None
            else
              Some
                (D.diagf ~code:"RF008" D.Error D.Design
                   "net %s -> %s references unknown region %s" n.Spec.src
                   n.Spec.dst e))
          [ n.Spec.src; n.Spec.dst ])
      spec.Spec.nets
  in
  let relocs =
    List.filter_map
      (fun (rq : Spec.reloc_req) ->
        if known rq.Spec.target then None
        else
          Some
            (D.diagf ~code:"RF008" D.Error (D.Reloc rq.Spec.target)
               "relocation request targets unknown region %s" rq.Spec.target))
      spec.Spec.relocs
  in
  nets @ relocs

let placement_and_reloc_checks part (spec : Spec.t) ~skip_region =
  let out = ref [] in
  let add d = out := d :: !out in
  let unplaceable = Hashtbl.create 4 in
  List.iter
    (fun (r : Spec.region) ->
      if not (skip_region r) then begin
        let sites, _ = sweep ~stop:1 part r.Spec.demand in
        if sites = 0 then begin
          Hashtbl.replace unplaceable r.Spec.r_name ();
          add
            (D.diagf ~code:"RF009" D.Error (D.Region r.Spec.r_name)
               "no rectangle on the device satisfies demand %s"
               (Format.asprintf "%a" Resource.pp_demand r.Spec.demand))
        end
      end)
    spec.Spec.regions;
  List.iter
    (fun (rq : Spec.reloc_req) ->
      match Spec.find_region spec rq.Spec.target with
      | None -> () (* RF008 already reported *)
      | Some r when skip_region r || Hashtbl.mem unplaceable r.Spec.r_name -> ()
      | Some r ->
        (* the region plus [copies] free-compatible areas all live in one
           compatibility class, so that class must offer copies+1 windows *)
        let need = rq.Spec.copies + 1 in
        let sites, disjoint = sweep ~stop:need part r.Spec.demand in
        if sites < need then
          add
            (D.diagf ~code:"RF006"
               (match rq.Spec.mode with
               | Spec.Hard -> D.Error
               | Spec.Soft _ -> D.Warning)
               (D.Reloc rq.Spec.target)
               "%d cop%s requested but the best compatibility class has only \
                %d window%s (need %d)"
               rq.Spec.copies
               (if rq.Spec.copies = 1 then "y" else "ies")
               sites
               (if sites = 1 then "" else "s")
               need)
        else if rq.Spec.mode = Spec.Hard && disjoint < need then
          add
            (D.diagf ~code:"RF007" D.Warning (D.Reloc rq.Spec.target)
               "%d copies requested but only an estimated %d pairwise-disjoint \
                compatible windows exist (need %d); likely unsatisfiable"
               rq.Spec.copies disjoint need))
    spec.Spec.relocs;
  List.rev !out

let run part (spec : Spec.t) =
  let pdiags = partition_only part in
  let refs = reference_checks spec in
  let demands, over_capacity = demand_checks part spec in
  (* sweeps rely on a sane columnar structure; skip them when the
     partition itself is broken *)
  let sweeps =
    if D.has_errors pdiags then []
    else placement_and_reloc_checks part spec ~skip_region:over_capacity
  in
  pdiags @ refs @ demands @ sweeps
