(** Pass 3: audit a decoded floorplan against the paper's compatibility
    equations, independently of the solver (codes RF201-RF208).

    Re-verifies, from the columnar partition alone, that each claimed
    free-compatible area matches its region in height (Eq. 6), portion
    count (Eq. 7), tile-type sequence (Eq. 8/10) and per-portion tile
    counts (Eq. 9); that every area is actually free (no overlap with
    placements, other areas, or forbidden blocks); that placements are
    valid; and that relocation requests are satisfied in number. *)

val run :
  Device.Partition.t ->
  Device.Spec.t ->
  Device.Floorplan.t ->
  Rfloor_diag.Diagnostic.t list
