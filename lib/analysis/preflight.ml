let spec = Spec_lint.run

let model lp = Model_lint.run lp

let run part sp lp = spec part sp @ model lp

let verdict ds =
  match Rfloor_diag.Diagnostic.errors ds with [] -> Ok () | errs -> Error errs
