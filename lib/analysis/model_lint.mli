(** Pass 2: lint a generated MILP model before solving it
    (codes RF101-RF107).

    Structural checks over any {!Milp.Lp.t}: empty, duplicate and
    dominated rows; variables fixed by their bounds; integer variables
    with infinite bounds; rows that no point inside the variable bounds
    can satisfy (an [RF106] error proves the model infeasible); and a
    numerical-conditioning report of the coefficient magnitude spread
    per constraint family — big-M hygiene. *)

val run : ?spread_threshold:float -> Milp.Lp.t -> Rfloor_diag.Diagnostic.t list
(** All findings.  [spread_threshold] (default [1e8]) is the
    max/min coefficient magnitude ratio above which a constraint
    family is reported as ill-conditioned (RF107). *)

val family_of_name : string -> string
(** Constraint-family stem of a row name: the part after the first
    ['.'] when present (["Filter.res.clb"] -> ["res.clb"]), with digit
    runs removed so auto-generated names (["c17"]) collapse. *)
