(** Pass 1: lint a device partition and a design spec before any model
    is built (codes RF001-RF009).

    Checks the Section III invariants of the columnar partition
    (Properties .3/.4, forbidden areas inside the device), region
    demands against the device's usable resources, that every region
    admits at least one satisfying rectangle, and that each relocation
    request can count enough type-sequence-compatible columnar windows
    (a cheap sweep over {!Device.Compat} — a necessary condition, so an
    [RF006] error proves the MILP infeasible without solving it). *)

val run : Device.Partition.t -> Device.Spec.t -> Rfloor_diag.Diagnostic.t list
(** All findings of the pass, unordered. *)

val partition_only : Device.Partition.t -> Rfloor_diag.Diagnostic.t list
(** Just the partition invariants (RF001-RF003), without a design. *)

val compatible_windows :
  Device.Partition.t -> Device.Resource.demand -> int * int
(** [(sites, disjoint)] over all rectangle classes satisfying the
    demand: the largest number of compatible windows of any single
    class, and a greedy lower bound on how many of them are pairwise
    disjoint.  Both are [0] when no rectangle satisfies the demand. *)
