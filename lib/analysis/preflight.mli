(** Combined pre-solve gate: spec/partition lint plus model lint.

    {!Rfloor.Solver.solve} runs {!spec} before building any model and
    {!model} on each generated MILP; error-severity findings prove the
    instance infeasible, so the solver can short-circuit a
    branch-and-bound run that would otherwise end in an unexplained
    [Infeasible] (or burn its whole budget to [Unknown]). *)

val spec : Device.Partition.t -> Device.Spec.t -> Rfloor_diag.Diagnostic.t list
(** Alias of {!Spec_lint.run}. *)

val model : Milp.Lp.t -> Rfloor_diag.Diagnostic.t list
(** Alias of {!Model_lint.run} with default thresholds. *)

val run : Device.Partition.t -> Device.Spec.t -> Milp.Lp.t -> Rfloor_diag.Diagnostic.t list
(** Both passes, spec findings first. *)

val verdict : Rfloor_diag.Diagnostic.t list -> (unit, Rfloor_diag.Diagnostic.t list) result
(** [Ok ()] when no error-severity finding is present; otherwise
    [Error] with just the errors. *)
