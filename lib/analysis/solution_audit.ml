open Device
module D = Rfloor_diag.Diagnostic

(* Left-to-right tile counts per covered portion: the quantities of
   Eq. 7 (length) and Eq. 9 (elements). *)
let portion_tiles part (r : Rect.t) =
  Array.to_list part.Partition.portions
  |> List.filter_map (fun (p : Partition.portion) ->
         let lo = max r.Rect.x p.Partition.x1
         and hi = min (Rect.x2 r) p.Partition.x2 in
         if lo > hi then None else Some (hi - lo + 1, (hi - lo + 1) * r.Rect.h))

let run part (spec : Spec.t) (plan : Floorplan.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  let width = Partition.width part and height = Partition.height part in
  let inside r = Rect.within ~width ~height r in
  let grid = part.Partition.grid in
  (* placements (RF208) *)
  List.iter
    (fun (r : Spec.region) ->
      let placed =
        List.filter
          (fun (p : Floorplan.placement) -> p.Floorplan.p_region = r.Spec.r_name)
          plan.Floorplan.placements
      in
      match placed with
      | [] ->
        add
          (D.diagf ~code:"RF208" D.Error (D.Region r.Spec.r_name) "not placed")
      | _ :: _ :: _ ->
        add
          (D.diagf ~code:"RF208" D.Error (D.Region r.Spec.r_name)
             "placed %d times" (List.length placed))
      | [ p ] ->
        let rect = p.Floorplan.p_rect in
        if not (inside rect) then
          add
            (D.diagf ~code:"RF208" D.Error (D.Region r.Spec.r_name)
               "placement %s outside the %dx%d device" (Rect.to_string rect)
               width height)
        else begin
          if Grid.rect_hits_forbidden grid rect then
            add
              (D.diagf ~code:"RF208" D.Error (D.Region r.Spec.r_name)
                 "placement %s overlaps a forbidden area" (Rect.to_string rect));
          if not (Compat.satisfies part rect r.Spec.demand) then
            add
              (D.diagf ~code:"RF208" D.Error (D.Region r.Spec.r_name)
                 "placement %s covers %s, demand is %s" (Rect.to_string rect)
                 (Format.asprintf "%a" Resource.pp_demand
                    (Compat.covered_demand part rect))
                 (Format.asprintf "%a" Resource.pp_demand r.Spec.demand))
        end)
    spec.Spec.regions;
  List.iter
    (fun (p : Floorplan.placement) ->
      if Spec.find_region spec p.Floorplan.p_region = None then
        add
          (D.diagf ~code:"RF208" D.Error (D.Region p.Floorplan.p_region)
             "places a region the spec does not define"))
    plan.Floorplan.placements;
  (* pairwise overlaps *)
  let entities =
    List.map
      (fun (p : Floorplan.placement) ->
        (`Region, D.Region p.Floorplan.p_region, p.Floorplan.p_rect))
      plan.Floorplan.placements
    @ List.map
        (fun (a : Floorplan.fc_area) ->
          (`Area, D.Area (a.Floorplan.fc_region, a.Floorplan.fc_index),
           a.Floorplan.fc_rect))
        plan.Floorplan.fc_areas
  in
  let rec pairs = function
    | [] -> ()
    | (k1, loc1, r1) :: rest ->
      List.iter
        (fun (k2, loc2, r2) ->
          if Rect.overlaps r1 r2 then
            let code, loc =
              match (k1, k2) with
              | `Region, `Region -> ("RF208", loc1)
              | `Area, _ -> ("RF205", loc1)
              | _, `Area -> ("RF205", loc2)
            in
            add
              (D.diagf ~code D.Error loc "%s overlaps %s: %s vs %s"
                 (D.location_to_string loc1) (D.location_to_string loc2)
                 (Rect.to_string r1) (Rect.to_string r2)))
        rest;
      pairs rest
  in
  pairs entities;
  (* free-compatible areas: Eq. 6-10 re-verified from the partition *)
  List.iter
    (fun (a : Floorplan.fc_area) ->
      let loc = D.Area (a.Floorplan.fc_region, a.Floorplan.fc_index) in
      let ar = a.Floorplan.fc_rect in
      match Floorplan.rect_of plan a.Floorplan.fc_region with
      | None ->
        add
          (D.diagf ~code:"RF205" D.Error loc
             "claims compatibility with unplaced region %s" a.Floorplan.fc_region)
      | Some rr ->
        if not (inside ar) then
          add
            (D.diagf ~code:"RF205" D.Error loc "area %s outside the device"
               (Rect.to_string ar))
        else begin
          if Grid.rect_hits_forbidden grid ar then
            add
              (D.diagf ~code:"RF205" D.Error loc
                 "area %s overlaps a forbidden area" (Rect.to_string ar));
          if inside rr then begin
            if ar.Rect.h <> rr.Rect.h then
              add
                (D.diagf ~code:"RF201" D.Error loc
                   "height %d differs from region height %d (Eq. 6)" ar.Rect.h
                   rr.Rect.h);
            let pa = portion_tiles part ar and pr = portion_tiles part rr in
            if List.length pa <> List.length pr then
              add
                (D.diagf ~code:"RF202" D.Error loc
                   "covers %d portions, region covers %d (Eq. 7)"
                   (List.length pa) (List.length pr));
            if
              ar.Rect.w <> rr.Rect.w
              || not
                   (Compat.equal_signature
                      (Compat.signature part ar)
                      (Compat.signature part rr))
            then
              add
                (D.diagf ~code:"RF203" D.Error loc
                   "tile-type sequence differs from the region's (Eq. 8/10)")
            else if List.map snd pa <> List.map snd pr then
              add
                (D.diagf ~code:"RF204" D.Error loc
                   "per-portion tile counts differ from the region's (Eq. 9)")
          end
        end)
    plan.Floorplan.fc_areas;
  (* relocation request counts *)
  List.iter
    (fun (rq : Spec.reloc_req) ->
      let got = List.length (Floorplan.fc_for plan rq.Spec.target) in
      if got < rq.Spec.copies then
        match rq.Spec.mode with
        | Spec.Hard ->
          add
            (D.diagf ~code:"RF206" D.Error (D.Reloc rq.Spec.target)
               "hard request for %d free-compatible areas, floorplan has %d"
               rq.Spec.copies got)
        | Spec.Soft _ ->
          add
            (D.diagf ~code:"RF207" D.Info (D.Reloc rq.Spec.target)
               "soft request for %d free-compatible areas, floorplan has %d"
               rq.Spec.copies got))
    spec.Spec.relocs;
  List.rev !out
