(** Diagnostics for the static-analysis passes.

    The type now lives in {!Rfloor_diag.Diagnostic} (a dependency-free
    library shared with the device loaders and model parsers); this
    module re-exports it with type equalities, so
    [Rfloor_analysis.Diagnostic.t] and [Rfloor_diag.Diagnostic.t] are
    the same type. *)

include module type of struct include Rfloor_diag.Diagnostic end
