(* The diagnostic type moved to the dependency-free [Rfloor_diag]
   library so that the device loaders, the partitioner and the MPS
   parser can return typed findings without depending on the analysis
   passes.  This module re-exports it (with type equalities) so every
   existing [Rfloor_analysis.Diagnostic] caller keeps working. *)

include Rfloor_diag.Diagnostic
