(* Structured solver observability: typed events, pluggable sinks,
   atomic metrics.  See rfloor_trace.mli for the cost model.  All
   synchronization goes through the instrumented Rfloor_sync layer so
   the concheck race detector can observe it. *)

module Sync = Rfloor_sync

let clock_ns () = Monotonic_clock.now ()

(* ------------------------------------------------------------------ *)
(* Events *)

module Event = struct
  type phase =
    | Build
    | Presolve
    | Lint
    | Root_lp
    | Branch_bound
    | Decode
    | Audit
    | Lp_solve
    | Job

  type payload =
    | Span_start of phase
    | Span_end of phase
    | Node_explored of { depth : int; bound : float; iters : int }
    | Incumbent of { objective : float; node : int }
    | Cut_added of { rounds : int; cuts : int }
    | Steal of { tasks : int }
    | Worker_idle
    | Restart of { stage : string }
    | Stopped of { reason : string }
    | Lp_refactor of { reason : string }
    | Lp_warm of { result : string }
    | Move of { module_name : string; src : string; dst : string }
    | Warning of string
    | Message of string

  type t = { at : float; worker : int; payload : payload }

  let phases =
    [ Build; Presolve; Lint; Root_lp; Branch_bound; Decode; Audit; Lp_solve;
      Job ]

  let phase_name = function
    | Build -> "build"
    | Presolve -> "presolve"
    | Lint -> "lint"
    | Root_lp -> "root_lp"
    | Branch_bound -> "branch_bound"
    | Decode -> "decode"
    | Audit -> "audit"
    | Lp_solve -> "lp_solve"
    | Job -> "job"

  let phase_of_name s =
    List.find_opt (fun p -> String.equal (phase_name p) s) phases

  let name = function
    | Span_start _ -> "span_start"
    | Span_end _ -> "span_end"
    | Node_explored _ -> "node"
    | Incumbent _ -> "incumbent"
    | Cut_added _ -> "cut"
    | Steal _ -> "steal"
    | Worker_idle -> "idle"
    | Restart _ -> "restart"
    | Stopped _ -> "stopped"
    | Lp_refactor _ -> "refactor"
    | Lp_warm _ -> "warm"
    | Move _ -> "move"
    | Warning _ -> "warning"
    | Message _ -> "message"

  let pp_payload ppf = function
    | Span_start p -> Format.fprintf ppf "begin %s" (phase_name p)
    | Span_end p -> Format.fprintf ppf "end %s" (phase_name p)
    | Node_explored { depth; bound; _ } ->
      if Float.is_finite bound then
        Format.fprintf ppf "node depth=%d bound=%.6g" depth bound
      else Format.fprintf ppf "node depth=%d" depth
    | Incumbent { objective; node } ->
      Format.fprintf ppf "incumbent %.6f (node %d)" objective node
    | Cut_added { rounds; cuts } ->
      Format.fprintf ppf "gomory: %d root cuts (%d rounds)" cuts rounds
    | Steal { tasks } -> Format.fprintf ppf "donated %d open subproblems" tasks
    | Worker_idle -> Format.fprintf ppf "idle"
    | Restart { stage } -> Format.fprintf ppf "restart: %s" stage
    | Stopped { reason } -> Format.fprintf ppf "stopped: %s" reason
    | Lp_refactor { reason } -> Format.fprintf ppf "lp refactorize: %s" reason
    | Lp_warm { result } -> Format.fprintf ppf "lp warm start: %s" result
    | Move { module_name; src; dst } ->
      Format.fprintf ppf "move %s: %s -> %s" module_name src dst
    | Warning msg -> Format.fprintf ppf "warning: %s" msg
    | Message msg -> Format.fprintf ppf "%s" msg

  let pp ppf e =
    Format.fprintf ppf "[w%d +%.4fs] %a" e.worker e.at pp_payload e.payload

  (* ---- JSONL ---- *)

  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let json_float f =
    if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

  let to_json e =
    let common = Printf.sprintf "\"t\":%.6f,\"w\":%d" e.at e.worker in
    let tail =
      match e.payload with
      | Span_start p | Span_end p ->
        Printf.sprintf ",\"phase\":\"%s\"" (phase_name p)
      | Node_explored { depth; bound; iters } ->
        if iters > 0 then
          Printf.sprintf ",\"depth\":%d,\"bound\":%s,\"iters\":%d" depth
            (json_float bound) iters
        else Printf.sprintf ",\"depth\":%d,\"bound\":%s" depth (json_float bound)
      | Incumbent { objective; node } ->
        Printf.sprintf ",\"obj\":%s,\"node\":%d" (json_float objective) node
      | Cut_added { rounds; cuts } ->
        Printf.sprintf ",\"rounds\":%d,\"cuts\":%d" rounds cuts
      | Steal { tasks } -> Printf.sprintf ",\"tasks\":%d" tasks
      | Worker_idle -> ""
      | Restart { stage } -> Printf.sprintf ",\"stage\":\"%s\"" (json_escape stage)
      | Stopped { reason } | Lp_refactor { reason } ->
        Printf.sprintf ",\"reason\":\"%s\"" (json_escape reason)
      | Lp_warm { result } ->
        Printf.sprintf ",\"result\":\"%s\"" (json_escape result)
      | Move { module_name; src; dst } ->
        Printf.sprintf ",\"module\":\"%s\",\"src\":\"%s\",\"dst\":\"%s\""
          (json_escape module_name) (json_escape src) (json_escape dst)
      | Warning msg | Message msg ->
        Printf.sprintf ",\"msg\":\"%s\"" (json_escape msg)
    in
    Printf.sprintf "{%s,\"ev\":\"%s\"%s}" common (name e.payload) tail

  (* ---- minimal JSON-object parser for validation ---- *)

  type jv = Num of float | Str of string | Null | Bool of bool

  exception Bad of string

  let parse_object line =
    let n = String.length line in
    let pos = ref 0 in
    let peek () = if !pos < n then Some line.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      skip_ws ();
      match peek () with
      | Some c' when c' = c -> incr pos
      | Some c' -> raise (Bad (Printf.sprintf "expected %c, got %c" c c'))
      | None -> raise (Bad (Printf.sprintf "expected %c, got end of line" c))
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Bad "unterminated string");
        let c = line.[!pos] in
        incr pos;
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          if !pos >= n then raise (Bad "dangling escape");
          let e = line.[!pos] in
          incr pos;
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 > n then raise (Bad "truncated \\u escape");
            let hex = String.sub line !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> raise (Bad "bad \\u escape")
            in
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_char b '?'
          | _ -> raise (Bad "unknown escape"));
          go ()
        end
        else begin
          Buffer.add_char b c;
          go ()
        end
      in
      go ()
    in
    let parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some ('t' | 'f' | 'n') ->
        let kw k v =
          let l = String.length k in
          if !pos + l <= n && String.sub line !pos l = k then begin
            pos := !pos + l;
            v
          end
          else raise (Bad "bad literal")
        in
        if line.[!pos] = 't' then kw "true" (Bool true)
        else if line.[!pos] = 'f' then kw "false" (Bool false)
        else kw "null" Null
      | Some _ ->
        let start = !pos in
        while
          !pos < n
          &&
          match line.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          incr pos
        done;
        if !pos = start then raise (Bad "expected a value");
        let s = String.sub line start (!pos - start) in
        (match float_of_string_opt s with
        | Some f -> Num f
        | None -> raise (Bad (Printf.sprintf "bad number %S" s)))
      | None -> raise (Bad "expected a value, got end of line")
    in
    try
      expect '{';
      skip_ws ();
      let fields = ref [] in
      (match peek () with
      | Some '}' -> incr pos
      | _ ->
        let rec pairs () =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          if List.mem_assoc k !fields then
            raise (Bad (Printf.sprintf "duplicate field %S" k));
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; pairs ()
          | Some '}' -> incr pos
          | _ -> raise (Bad "expected , or }")
        in
        pairs ());
      skip_ws ();
      if !pos <> n then raise (Bad "trailing characters after object");
      Ok (List.rev !fields)
    with Bad m -> Error m

  let of_json line =
    match parse_object line with
    | Error m -> Error m
    | Ok fields -> (
      let take seen k =
        seen := k :: !seen;
        List.assoc_opt k fields
      in
      let seen = ref [] in
      let num k =
        match take seen k with
        | Some (Num f) -> Ok f
        | Some _ -> Error (Printf.sprintf "field %S must be a number" k)
        | None -> Error (Printf.sprintf "missing field %S" k)
      in
      let int_ k =
        match num k with
        | Error _ as e -> e
        | Ok f ->
          if Float.is_integer f then Ok (int_of_float f)
          else Error (Printf.sprintf "field %S must be an integer" k)
      in
      let str k =
        match take seen k with
        | Some (Str s) -> Ok s
        | Some _ -> Error (Printf.sprintf "field %S must be a string" k)
        | None -> Error (Printf.sprintf "missing field %S" k)
      in
      let num_or_null k =
        match take seen k with
        | Some (Num f) -> Ok f
        | Some Null -> Ok Float.nan
        | Some _ -> Error (Printf.sprintf "field %S must be a number or null" k)
        | None -> Error (Printf.sprintf "missing field %S" k)
      in
      let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
      let* at = num "t" in
      let* worker = int_ "w" in
      let* ev = str "ev" in
      let* payload =
        match ev with
        | "span_start" | "span_end" ->
          let* p = str "phase" in
          (match phase_of_name p with
          | None -> Error (Printf.sprintf "unknown phase %S" p)
          | Some ph ->
            Ok (if ev = "span_start" then Span_start ph else Span_end ph))
        | "node" ->
          let* depth = int_ "depth" in
          let* bound = num_or_null "bound" in
          (* [iters] (cumulative per-worker LP iterations) is optional so
             traces recorded before it existed still parse *)
          let* iters =
            match take seen "iters" with
            | None -> Ok 0
            | Some _ -> int_ "iters"
          in
          if depth < 0 then Error "negative depth"
          else if iters < 0 then Error "negative iters"
          else Ok (Node_explored { depth; bound; iters })
        | "incumbent" ->
          let* objective = num "obj" in
          let* node = int_ "node" in
          Ok (Incumbent { objective; node })
        | "cut" ->
          let* rounds = int_ "rounds" in
          let* cuts = int_ "cuts" in
          Ok (Cut_added { rounds; cuts })
        | "steal" ->
          let* tasks = int_ "tasks" in
          if tasks < 1 then Error "steal with no tasks"
          else Ok (Steal { tasks })
        | "idle" -> Ok Worker_idle
        | "restart" ->
          let* stage = str "stage" in
          Ok (Restart { stage })
        | "stopped" ->
          let* reason = str "reason" in
          Ok (Stopped { reason })
        | "refactor" ->
          let* reason = str "reason" in
          Ok (Lp_refactor { reason })
        | "warm" ->
          let* result = str "result" in
          Ok (Lp_warm { result })
        | "move" ->
          let* module_name = str "module" in
          let* src = str "src" in
          let* dst = str "dst" in
          Ok (Move { module_name; src; dst })
        | "warning" ->
          let* msg = str "msg" in
          Ok (Warning msg)
        | "message" ->
          let* msg = str "msg" in
          Ok (Message msg)
        | ev -> Error (Printf.sprintf "unknown event tag %S" ev)
      in
      let unknown =
        List.filter (fun (k, _) -> not (List.mem k !seen)) fields
      in
      match unknown with
      | (k, _) :: _ -> Error (Printf.sprintf "unknown field %S" k)
      | [] ->
        if at < 0. then Error "negative timestamp"
        else if worker < 0 then Error "negative worker id"
        else Ok { at; worker; payload })
end

(* ------------------------------------------------------------------ *)
(* Sinks *)

type sink = Null | Fn of { f : Event.t -> unit; m : Sync.Mutex.t }

module Sink = struct
  type t = sink

  let null = Null
  let is_null = function Null -> true | Fn _ -> false

  let of_fn f = Fn { f; m = Sync.Mutex.create ~name:"trace.sink" () }

  let send sink e =
    match sink with
    | Null -> ()
    | Fn { f; m } -> Sync.Mutex.protect m (fun () -> f e)

  let of_log_fn ?(progress_every = 500) log =
    let nodes_seen = ref 0 in
    of_fn (fun (e : Event.t) ->
        match e.Event.payload with
        | Event.Node_explored _ ->
          incr nodes_seen;
          if !nodes_seen mod progress_every = 0 then
            log (Format.asprintf "%a" Event.pp e)
        | _ -> log (Format.asprintf "%a" Event.pp e))

  let text ?progress_every oc =
    of_log_fn ?progress_every (fun line ->
        output_string oc line;
        output_char oc '\n';
        flush oc)

  let jsonl oc =
    of_fn (fun e ->
        output_string oc (Event.to_json e);
        output_char oc '\n';
        flush oc)

  let jsonl_file path =
    let oc = open_out path in
    (jsonl oc, fun () -> close_out oc)

  let tee a b =
    match (a, b) with
    | Null, s | s, Null -> s
    | _ -> of_fn (fun e -> send a e; send b e)
end

module Ring = struct
  type t = {
    cap : int;
    buf : Event.t option array;
    next : int Sync.Shared.t;  (* total events ever seen; under [m] *)
    m : Sync.Mutex.t;
  }

  let create ?(capacity = 65536) () =
    { cap = max 1 capacity; buf = Array.make (max 1 capacity) None;
      next = Sync.Shared.make ~name:"trace.ring.next" 0;
      m = Sync.Mutex.create ~name:"trace.ring" () }

  let sink r =
    Sink.of_fn (fun e ->
        Sync.Mutex.protect r.m (fun () ->
            let next = Sync.Shared.get r.next in
            r.buf.(next mod r.cap) <- Some e;
            Sync.Shared.set r.next (next + 1)))

  let events r =
    Sync.Mutex.protect r.m (fun () ->
        let total = Sync.Shared.get r.next in
        let kept = min total r.cap in
        List.init kept (fun i ->
            Option.get r.buf.((total - kept + i) mod r.cap)))

  let dropped r =
    Sync.Mutex.protect r.m (fun () ->
        max 0 (Sync.Shared.get r.next - r.cap))

  let clear r =
    Sync.Mutex.protect r.m (fun () ->
        Array.fill r.buf 0 r.cap None;
        Sync.Shared.set r.next 0)
end

(* ------------------------------------------------------------------ *)
(* Metrics (internal) *)

module Metrics = struct
  let max_depth_bucket = 64

  type t = {
    incumbents : int Sync.Atomic.t;
    cuts : int Sync.Atomic.t;
    steal_attempts : int Sync.Atomic.t;
    steal_successes : int Sync.Atomic.t;
    tasks_donated : int Sync.Atomic.t;
    idle_events : int Sync.Atomic.t;
    restarts : int Sync.Atomic.t;
    warnings : int Sync.Atomic.t;
    m : Sync.Mutex.t;
    (* phase -> (seconds, completed spans), kept in order of first use *)
    phases : (Event.phase * (float * int)) list Sync.Shared.t;
    (* worker -> (nodes, simplex iterations) *)
    workers : (int * (int * int)) list Sync.Shared.t;
    depth_hist : int Sync.Atomic.t array;
  }

  let create () =
    {
      incumbents = Sync.Atomic.make 0;
      cuts = Sync.Atomic.make 0;
      steal_attempts = Sync.Atomic.make 0;
      steal_successes = Sync.Atomic.make 0;
      tasks_donated = Sync.Atomic.make 0;
      idle_events = Sync.Atomic.make 0;
      restarts = Sync.Atomic.make 0;
      warnings = Sync.Atomic.make 0;
      m = Sync.Mutex.create ~name:"trace.metrics" ();
      phases = Sync.Shared.make ~name:"trace.metrics.phases" [];
      workers = Sync.Shared.make ~name:"trace.metrics.workers" [];
      depth_hist = Array.init max_depth_bucket (fun _ -> Sync.Atomic.make 0);
    }

  let add_phase t phase dt =
    Sync.Mutex.protect t.m (fun () ->
        let phases = Sync.Shared.get t.phases in
        match List.assoc_opt phase phases with
        | Some (s, c) ->
          Sync.Shared.set t.phases
            (List.map
               (fun (p, v) ->
                 if p = phase then (p, (s +. dt, c + 1)) else (p, v))
               phases)
        | None -> Sync.Shared.set t.phases (phases @ [ (phase, (dt, 1)) ]))

  let add_worker t worker nodes iters =
    Sync.Mutex.protect t.m (fun () ->
        let workers = Sync.Shared.get t.workers in
        match List.assoc_opt worker workers with
        | Some (n, i) ->
          Sync.Shared.set t.workers
            (List.map
               (fun (w, v) ->
                 if w = worker then (w, (n + nodes, i + iters)) else (w, v))
               workers)
        | None -> Sync.Shared.set t.workers ((worker, (nodes, iters)) :: workers))

  let bump_depth t depth =
    let b = if depth < 0 then 0 else min depth (max_depth_bucket - 1) in
    Sync.Atomic.incr t.depth_hist.(b)
end

(* ------------------------------------------------------------------ *)
(* Reports *)

module Report = struct
  type phase_stat = {
    ps_phase : Event.phase;
    ps_seconds : float;
    ps_count : int;
  }

  type worker_stat = { ws_worker : int; ws_nodes : int; ws_iterations : int }

  type gc_stat = {
    gc_minor_collections : int;
    gc_major_collections : int;
    gc_promoted_words : float;
    gc_top_heap_words : int;
  }

  let no_gc =
    {
      gc_minor_collections = 0;
      gc_major_collections = 0;
      gc_promoted_words = 0.;
      gc_top_heap_words = 0;
    }

  type t = {
    nodes : int;
    simplex_iterations : int;
    elapsed : float;
    incumbents : int;
    cuts : int;
    steal_attempts : int;
    steal_successes : int;
    tasks_donated : int;
    idle_events : int;
    restarts : int;
    warnings : int;
    phases : phase_stat list;
    workers : worker_stat list;
    depth_histogram : (int * int) list;
    gc : gc_stat;
  }

  let empty =
    {
      nodes = 0;
      simplex_iterations = 0;
      elapsed = 0.;
      incumbents = 0;
      cuts = 0;
      steal_attempts = 0;
      steal_successes = 0;
      tasks_donated = 0;
      idle_events = 0;
      restarts = 0;
      warnings = 0;
      phases = [];
      workers = [];
      depth_histogram = [];
      gc = no_gc;
    }

  let pp ppf r =
    Format.fprintf ppf
      "nodes %d  simplex iterations %d  elapsed %.3fs@.incumbents %d  cuts %d  \
       steals %d/%d (tasks %d)  idle %d  restarts %d  warnings %d@."
      r.nodes r.simplex_iterations r.elapsed r.incumbents r.cuts
      r.steal_successes r.steal_attempts r.tasks_donated r.idle_events
      r.restarts r.warnings;
    if r.gc <> no_gc then
      Format.fprintf ppf
        "gc: %d minor / %d major collections, %.3g promoted words, top heap \
         %d words@."
        r.gc.gc_minor_collections r.gc.gc_major_collections
        r.gc.gc_promoted_words r.gc.gc_top_heap_words;
    if r.phases <> [] then begin
      Format.fprintf ppf "phase breakdown:@.";
      List.iter
        (fun p ->
          Format.fprintf ppf "  %-13s %9.4fs  (%d span%s)@."
            (Event.phase_name p.ps_phase)
            p.ps_seconds p.ps_count
            (if p.ps_count = 1 then "" else "s"))
        r.phases
    end;
    if r.workers <> [] then begin
      Format.fprintf ppf "per-worker:@.";
      List.iter
        (fun w ->
          Format.fprintf ppf "  w%-3d nodes %8d  iterations %10d@." w.ws_worker
            w.ws_nodes w.ws_iterations)
        r.workers
    end;
    if r.depth_histogram <> [] then begin
      Format.fprintf ppf "node depth histogram:";
      List.iter
        (fun (d, c) -> Format.fprintf ppf " %d:%d" d c)
        r.depth_histogram;
      Format.fprintf ppf "@."
    end

  let to_json r =
    let b = Buffer.create 512 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"nodes\":%d,\"simplex_iterations\":%d,\"elapsed\":%.6f,\"incumbents\":%d,\"cuts\":%d,\"steal_attempts\":%d,\"steal_successes\":%d,\"tasks_donated\":%d,\"idle_events\":%d,\"restarts\":%d,\"warnings\":%d"
         r.nodes r.simplex_iterations r.elapsed r.incumbents r.cuts
         r.steal_attempts r.steal_successes r.tasks_donated r.idle_events
         r.restarts r.warnings);
    Buffer.add_string b ",\"phases\":[";
    List.iteri
      (fun i p ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"phase\":\"%s\",\"seconds\":%.6f,\"count\":%d}"
             (Event.phase_name p.ps_phase)
             p.ps_seconds p.ps_count))
      r.phases;
    Buffer.add_string b "],\"workers\":[";
    List.iteri
      (fun i w ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"worker\":%d,\"nodes\":%d,\"iterations\":%d}"
             w.ws_worker w.ws_nodes w.ws_iterations))
      r.workers;
    Buffer.add_string b "],\"depth_histogram\":[";
    List.iteri
      (fun i (d, c) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "[%d,%d]" d c))
      r.depth_histogram;
    Buffer.add_string b
      (Printf.sprintf
         "],\"gc\":{\"minor_collections\":%d,\"major_collections\":%d,\"promoted_words\":%.0f,\"top_heap_words\":%d}}"
         r.gc.gc_minor_collections r.gc.gc_major_collections
         r.gc.gc_promoted_words r.gc.gc_top_heap_words);
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Tracers *)

type t = {
  t_live : bool;
  t_sink : sink;
  t_epoch : int64;
  t_m : Metrics.t;
  t_gc : Gc.stat;  (* quick_stat baseline at creation; report deltas it *)
}

let disabled =
  { t_live = false; t_sink = Null; t_epoch = 0L; t_m = Metrics.create ();
    t_gc = Gc.quick_stat () }

let create ?(sink = Null) () =
  { t_live = true; t_sink = sink; t_epoch = clock_ns ();
    t_m = Metrics.create (); t_gc = Gc.quick_stat () }

let live t = t.t_live
let enabled t = t.t_live && not (Sink.is_null t.t_sink)

(* A live tracer whose events are forwarded to [parent]'s sink with the
   worker id shifted by [worker_base], sharing the parent's epoch so the
   timestamps land on one clock.  Metrics stay private to the child —
   portfolio members report their own totals.  When the parent has no
   sink there is nothing to forward to, so this degrades to [create ()]
   (a plain null-sink live tracer). *)
let subtracer parent ~worker_base =
  if not (enabled parent) then create ()
  else
    let sink =
      Sink.of_fn (fun (e : Event.t) ->
          Sink.send parent.t_sink
            { e with Event.worker = e.Event.worker + worker_base })
    in
    { t_live = true; t_sink = sink; t_epoch = parent.t_epoch;
      t_m = Metrics.create (); t_gc = Gc.quick_stat () }

let now t =
  if not t.t_live then 0.
  else Int64.to_float (Int64.sub (clock_ns ()) t.t_epoch) *. 1e-9

let send t worker payload =
  Sink.send t.t_sink { Event.at = now t; worker; payload }

let emit t ?(worker = 0) payload = if enabled t then send t worker payload

let span t ?(worker = 0) phase f =
  if not t.t_live then f ()
  else begin
    let t0 = now t in
    if enabled t then send t worker (Event.Span_start phase);
    Fun.protect
      ~finally:(fun () ->
        Metrics.add_phase t.t_m phase (now t -. t0);
        if enabled t then send t worker (Event.Span_end phase))
      f
  end

let messagef t ?(worker = 0) fmt =
  Format.kasprintf
    (fun msg -> if enabled t then send t worker (Event.Message msg))
    fmt

let warn t ?(worker = 0) msg =
  if t.t_live then begin
    Sync.Atomic.incr t.t_m.Metrics.warnings;
    if enabled t then send t worker (Event.Warning msg)
  end

let node_explored t ~iters ~worker ~depth ~bound =
  if enabled t then begin
    Metrics.bump_depth t.t_m depth;
    send t worker (Event.Node_explored { depth; bound; iters })
  end

let incumbent t ~worker ~objective ~node =
  if t.t_live then begin
    Sync.Atomic.incr t.t_m.Metrics.incumbents;
    if enabled t then send t worker (Event.Incumbent { objective; node })
  end

let cuts_added t ~worker ~rounds ~cuts =
  if t.t_live && cuts > 0 then begin
    ignore (Sync.Atomic.fetch_and_add t.t_m.Metrics.cuts cuts);
    if enabled t then send t worker (Event.Cut_added { rounds; cuts })
  end

let steal t ~worker ~tasks =
  if t.t_live && tasks > 0 then begin
    ignore (Sync.Atomic.fetch_and_add t.t_m.Metrics.tasks_donated tasks);
    if enabled t then send t worker (Event.Steal { tasks })
  end

let steal_attempt t ~success =
  if t.t_live then begin
    Sync.Atomic.incr t.t_m.Metrics.steal_attempts;
    if success then Sync.Atomic.incr t.t_m.Metrics.steal_successes
  end

let worker_idle t ~worker =
  if t.t_live then begin
    Sync.Atomic.incr t.t_m.Metrics.idle_events;
    if enabled t then send t worker Event.Worker_idle
  end

let restart t ?(worker = 0) stage =
  if t.t_live then begin
    Sync.Atomic.incr t.t_m.Metrics.restarts;
    if enabled t then send t worker (Event.Restart { stage })
  end

let stopped t ?(worker = 0) reason =
  if enabled t then send t worker (Event.Stopped { reason })

let lp_refactor t ?(worker = 0) reason =
  if enabled t then send t worker (Event.Lp_refactor { reason })

let lp_warm t ?(worker = 0) result =
  if enabled t then send t worker (Event.Lp_warm { result })

let move t ?(worker = 0) ~module_name ~src ~dst () =
  if enabled t then send t worker (Event.Move { module_name; src; dst })

let add_worker_totals t ~worker ~nodes ~iterations =
  if t.t_live then Metrics.add_worker t.t_m worker nodes iterations

let report t ~nodes ~simplex_iterations ~elapsed =
  let m = t.t_m in
  Sync.Mutex.lock m.Metrics.m;
  let phases =
    List.map
      (fun (p, (s, c)) ->
        { Report.ps_phase = p; ps_seconds = s; ps_count = c })
      (Sync.Shared.get m.Metrics.phases)
  in
  let workers =
    List.map
      (fun (w, (n, i)) ->
        { Report.ws_worker = w; ws_nodes = n; ws_iterations = i })
      (List.sort compare (Sync.Shared.get m.Metrics.workers))
  in
  Sync.Mutex.unlock m.Metrics.m;
  let depth_histogram =
    let out = ref [] in
    for b = Metrics.max_depth_bucket - 1 downto 0 do
      let c = Sync.Atomic.get m.Metrics.depth_hist.(b) in
      if c > 0 then out := (b, c) :: !out
    done;
    !out
  in
  let gc =
    if not t.t_live then Report.no_gc
    else
      let g = Gc.quick_stat () in
      {
        Report.gc_minor_collections =
          g.Gc.minor_collections - t.t_gc.Gc.minor_collections;
        gc_major_collections =
          g.Gc.major_collections - t.t_gc.Gc.major_collections;
        gc_promoted_words = g.Gc.promoted_words -. t.t_gc.Gc.promoted_words;
        gc_top_heap_words = g.Gc.top_heap_words;
      }
  in
  {
    Report.nodes;
    simplex_iterations;
    elapsed;
    incumbents = Sync.Atomic.get m.Metrics.incumbents;
    cuts = Sync.Atomic.get m.Metrics.cuts;
    steal_attempts = Sync.Atomic.get m.Metrics.steal_attempts;
    steal_successes = Sync.Atomic.get m.Metrics.steal_successes;
    tasks_donated = Sync.Atomic.get m.Metrics.tasks_donated;
    idle_events = Sync.Atomic.get m.Metrics.idle_events;
    restarts = Sync.Atomic.get m.Metrics.restarts;
    warnings = Sync.Atomic.get m.Metrics.warnings;
    phases;
    workers;
    depth_histogram;
    gc;
  }

(* ------------------------------------------------------------------ *)
(* JSONL validation *)

let validate_jsonl text =
  let lines = String.split_on_char '\n' text in
  let open_spans = Hashtbl.create 16 in
  let count = ref 0 in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None && String.trim line <> "" then
        match Event.of_json (String.trim line) with
        | Error m -> err := Some (Printf.sprintf "line %d: %s" (i + 1) m)
        | Ok e -> (
          incr count;
          match e.Event.payload with
          | Event.Span_start p ->
            let k = (e.Event.worker, p) in
            Hashtbl.replace open_spans k
              (1 + Option.value ~default:0 (Hashtbl.find_opt open_spans k))
          | Event.Span_end p -> (
            let k = (e.Event.worker, p) in
            match Hashtbl.find_opt open_spans k with
            | Some n when n > 0 -> Hashtbl.replace open_spans k (n - 1)
            | _ ->
              err :=
                Some
                  (Printf.sprintf
                     "line %d: span_end %s on worker %d without a matching \
                      span_start"
                     (i + 1) (Event.phase_name p) e.Event.worker))
          | _ -> ()))
    lines;
  match !err with
  | Some m -> Error m
  | None ->
    let unbalanced = ref None in
    Hashtbl.iter
      (fun (w, p) n ->
        if n <> 0 && !unbalanced = None then
          unbalanced :=
            Some
              (Printf.sprintf "unclosed span %s on worker %d"
                 (Event.phase_name p) w))
      open_spans;
    (match !unbalanced with Some m -> Error m | None -> Ok !count)
