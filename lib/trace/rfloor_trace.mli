(** Structured solver observability.

    A {e tracer} ({!type:t}) is the handle the solvers write to: typed
    events with monotonic timestamps and worker ids flow to a pluggable
    {!Sink} (null, human text, JSONL, in-memory ring buffer), while a
    set of atomic counters and histograms ({!Metrics}) accumulates
    per-phase wall time, incumbent improvements, steal statistics and
    per-worker node totals, aggregated into a {!Report.t} that callers
    attach to their outcome.

    Cost model: with the null sink, {!enabled} is false and every
    per-node call ({!node_explored}) is a single load-and-branch — no
    event is allocated, no histogram is touched.  The handful of
    per-solve calls (spans, incumbents, steals) always update the
    tracer's metrics so the final {!Report.t} is populated even when no
    sink is attached.  {!disabled} is a dead tracer for defaulted
    options: it records nothing at all.

    Sinks serialize concurrent emitters behind a per-sink mutex, so one
    tracer can be shared by all domains of a parallel solve. *)

(** {1 Events} *)

module Event : sig
  type phase =
    | Build  (** MILP model construction *)
    | Presolve  (** bound tightening *)
    | Lint  (** spec/model preflight *)
    | Root_lp  (** first LP relaxation of a branch-and-bound run *)
    | Branch_bound  (** the tree search itself *)
    | Decode  (** solution vector -> floorplan, waste/wire metrics *)
    | Audit  (** independent re-verification of the decoded plan *)
    | Lp_solve  (** a standalone simplex solve outside branch-and-bound *)
    | Job  (** one {!Rfloor_service} job, queue claim to completion *)

  type payload =
    | Span_start of phase
    | Span_end of phase
    | Node_explored of { depth : int; bound : float; iters : int }
        (** one branch-and-bound node; [bound] is the parent relaxation
            bound ([nan]/infinite allowed, rendered as [null]); [iters]
            is the emitting worker's cumulative simplex-iteration count
            at that point (0 = unreported; optional on parse so older
            traces still load) *)
    | Incumbent of { objective : float; node : int }
    | Cut_added of { rounds : int; cuts : int }
    | Steal of { tasks : int }
        (** a donor pushed [tasks] open subproblems to the shared deque *)
    | Worker_idle  (** a worker ran out of local work and started polling *)
    | Restart of { stage : string }
        (** a new optimization stage over the same instance *)
    | Stopped of { reason : string }
        (** the search stopped early; [reason] is ["cancel"] for a
            cooperative cancellation and ["budget"] for a time/node
            limit *)
    | Lp_refactor of { reason : string }
        (** the simplex rebuilt its basis factorization; [reason] is
            ["periodic"] (eta cap / fill growth), ["stability"] (a
            dubious update pivot), or ["singular"] (a fresh
            factorization after a degenerate install) *)
    | Lp_warm of { result : string }
        (** a warm-started LP re-solve finished; [result] is ["dual"]
            when the dual simplex ran from the parent basis and
            ["fallback"] when the solve fell back to a cold start *)
    | Move of { module_name : string; src : string; dst : string }
        (** an online defragmentation relocated a placed module;
            [src]/[dst] are rectangle strings as printed by
            [Rect.to_string] *)
    | Warning of string
    | Message of string

  type t = { at : float;  (** seconds since the tracer's epoch *)
             worker : int;
             payload : payload }

  val phase_name : phase -> string
  val phase_of_name : string -> phase option
  val name : payload -> string
  (** The JSONL ["ev"] tag: ["span_start"], ["node"], ["steal"], ... *)

  val pp : Format.formatter -> t -> unit
  (** One human-readable line, e.g. [[w0 +0.0123s] incumbent 42 (node 17)]. *)

  val to_json : t -> string
  (** One JSONL object (no trailing newline), e.g.
      [{"t":0.0123,"w":0,"ev":"node","depth":3,"bound":41.5}]. *)

  val of_json : string -> (t, string) result
  (** Parses and schema-checks one JSONL line: known ["ev"] tag, all
      required fields present with the right types, no unknown fields.
      The inverse of {!to_json}. *)
end

(** {1 Sinks} *)

type sink

module Sink : sig
  type t = sink

  val null : t
  val is_null : t -> bool

  val of_fn : (Event.t -> unit) -> t
  (** Every event, serialized behind a mutex. *)

  val of_log_fn : ?progress_every:int -> (string -> unit) -> t
  (** Migration shim for the old [options.log : (string -> unit)]
      seam: renders events as human text lines.  [Node_explored] events
      are sampled — one line every [progress_every] (default 500) —
      matching the old [log_every] behaviour; everything else is
      rendered unconditionally. *)

  val text : ?progress_every:int -> out_channel -> t
  (** [of_log_fn] writing lines to a channel (flushed per line). *)

  val jsonl : out_channel -> t
  (** One JSON object per line, every event, flushed per line. *)

  val jsonl_file : string -> t * (unit -> unit)
  (** Opens (truncates) [path]; the returned thunk closes it. *)

  val tee : t -> t -> t
end

module Ring : sig
  (** Bounded in-memory sink for tests: keeps the last [capacity]
      events, counts the rest as dropped. *)

  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 65536. *)

  val sink : t -> sink
  val events : t -> Event.t list
  (** Oldest first. *)

  val dropped : t -> int
  val clear : t -> unit
end

(** {1 Metrics and reports} *)

module Report : sig
  type phase_stat = {
    ps_phase : Event.phase;
    ps_seconds : float;  (** total wall time inside the span *)
    ps_count : int;  (** completed spans *)
  }

  type worker_stat = {
    ws_worker : int;
    ws_nodes : int;
    ws_iterations : int;  (** simplex iterations *)
  }

  type gc_stat = {
    gc_minor_collections : int;  (** delta over the tracer's lifetime *)
    gc_major_collections : int;  (** delta over the tracer's lifetime *)
    gc_promoted_words : float;  (** words promoted minor -> major (delta) *)
    gc_top_heap_words : int;  (** high-water heap size, absolute *)
  }

  val no_gc : gc_stat
  (** All zeros — what {!empty} and disabled tracers carry. *)

  type t = {
    nodes : int;
    simplex_iterations : int;
    elapsed : float;
    incumbents : int;  (** incumbent improvements *)
    cuts : int;  (** Gomory cuts added at the root *)
    steal_attempts : int;
    steal_successes : int;
    tasks_donated : int;  (** subproblems pushed to the shared deque *)
    idle_events : int;
    restarts : int;
    warnings : int;
    phases : phase_stat list;  (** phase order of first start *)
    workers : worker_stat list;  (** ascending worker id *)
    depth_histogram : (int * int) list;
        (** (depth, nodes at that depth), only when a sink was enabled *)
    gc : gc_stat;
        (** [Gc.quick_stat] deltas between tracer creation and
            {!val:report} — allocation pressure of the solve itself *)
  }

  val empty : t
  val pp : Format.formatter -> t -> unit
  val to_json : t -> string
  (** Single JSON object (machine-readable phase/worker breakdown). *)
end

(** {1 Tracers} *)

type t

val disabled : t
(** A dead tracer: never emits, never counts.  The default in solver
    options that are constructed without one. *)

val create : ?sink:sink -> unit -> t
(** A live tracer; its epoch is the creation instant.  With the default
    null sink no events are emitted, but metrics still accumulate so
    {!report} stays meaningful. *)

val subtracer : t -> worker_base:int -> t
(** [subtracer parent ~worker_base] is a live tracer that forwards its
    events to [parent]'s sink with every worker id shifted by
    [worker_base], on the parent's clock.  Concurrent sub-solves (e.g.
    portfolio members) can thus share one sink without colliding worker
    ids: give member [i] base [(i+1)*1000] and per-worker span nesting
    stays balanced.  Metrics are private to the child.  If [parent] has
    no sink this is just {!create}[ ()]. *)

val live : t -> bool
val enabled : t -> bool
(** [enabled t] iff events actually reach a sink — the guard to test
    before any per-node work. *)

val now : t -> float
(** Monotonic seconds since the tracer's epoch (0. for {!disabled}). *)

val emit : t -> ?worker:int -> Event.payload -> unit
(** Sends one event to the sink when {!enabled}; otherwise free. *)

val span : t -> ?worker:int -> Event.phase -> (unit -> 'a) -> 'a
(** [span t phase f] runs [f] bracketed by [Span_start]/[Span_end]
    (exception-safe) and charges the elapsed wall time to the phase in
    the metrics. *)

val messagef :
  t -> ?worker:int -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formats and emits a [Message] event; the formatting cost is only
    paid when {!enabled}. *)

val warn : t -> ?worker:int -> string -> unit
(** Emits a [Warning] event (when enabled) and always bumps the warning
    counter of a live tracer. *)

val node_explored :
  t -> iters:int -> worker:int -> depth:int -> bound:float -> unit
(** Per-node event + depth histogram.  No-op unless {!enabled} — the
    caller's own node counters remain the source of truth for totals
    (see {!report}).  [iters] is the worker's cumulative
    simplex-iteration count (0 when unknown), letting progress
    consumers report LP work without a second event stream. *)

val incumbent : t -> worker:int -> objective:float -> node:int -> unit
val cuts_added : t -> worker:int -> rounds:int -> cuts:int -> unit
val steal : t -> worker:int -> tasks:int -> unit
val steal_attempt : t -> success:bool -> unit
(** Counter only; emits no event. *)

val worker_idle : t -> worker:int -> unit
val restart : t -> ?worker:int -> string -> unit

val stopped : t -> ?worker:int -> string -> unit
(** Emits a [Stopped] event (when enabled) naming why the search ended
    early; solvers emit it once per early stop. *)

val lp_refactor : t -> ?worker:int -> string -> unit
(** Emits an [Lp_refactor] event (when enabled) naming why the simplex
    rebuilt its basis factorization. *)

val lp_warm : t -> ?worker:int -> string -> unit
(** Emits an [Lp_warm] event (when enabled) recording how a
    warm-started LP re-solve finished (["dual"] or ["fallback"]). *)

val move :
  t -> ?worker:int -> module_name:string -> src:string -> dst:string ->
  unit -> unit
(** Emits a [Move] event (when enabled) recording one executed online
    relocation. *)

val add_worker_totals : t -> worker:int -> nodes:int -> iterations:int -> unit
(** Called once per worker at the end of a solve; totals accumulate if
    a worker id reports twice (e.g. one per lexicographic stage). *)

val report :
  t -> nodes:int -> simplex_iterations:int -> elapsed:float -> Report.t
(** Snapshot of the tracer's metrics.  [nodes], [simplex_iterations]
    and [elapsed] come from the caller's own counters so the report
    totals are exact even when tracing was disabled.  {!disabled}
    yields {!Report.empty} with those totals filled in. *)

(** {1 JSONL validation} *)

val validate_jsonl : string -> (int, string) result
(** Validates a whole JSONL trace (as read from a file): every line
    must parse via {!Event.of_json}, timestamps must be non-negative,
    and every [Span_start] must have a matching [Span_end] on the same
    worker.  Returns the number of events, or the first violation
    (with its 1-based line number). *)
