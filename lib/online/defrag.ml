module R = Device.Rect
module P = Device.Partition
module D = Rfloor_diag.Diagnostic

type move = {
  mv_name : string;
  mv_src : R.t;
  mv_dst : R.t;
  mv_frames : int;
}

type plan =
  | Admit of R.t
  | Moves of move list * R.t
  | Fallback of (string * R.t) list

let rect_frames part rect =
  P.frames_of_demand part (Device.Compat.covered_demand part rect)

(* ---- breadth-first search over move sequences ---- *)

type state = {
  st_rects : (string * R.t) list;  (* sorted by module name *)
  st_mers : R.t list;
  st_moves : move list;  (* newest first *)
  st_frames : int;
}

let state_key st =
  String.concat ";"
    (List.map (fun (n, r) -> n ^ "=" ^ R.to_string r) st.st_rects)

let successors part st =
  List.concat_map
    (fun (name, src) ->
      let others = List.filter (fun (n, _) -> n <> name) st.st_rects in
      let occupied = List.map snd st.st_rects in
      (* [occupied] includes [src] itself, so every site is disjoint
         from the source — the copy the filter performs never reads
         cells it is overwriting *)
      let sites =
        Device.Compat.free_compatible_sites ~occupied part src
      in
      List.map
        (fun dst ->
          let frames = rect_frames part src in
          let mv = { mv_name = name; mv_src = src; mv_dst = dst;
                     mv_frames = frames } in
          let rects =
            List.sort (fun (a, _) (b, _) -> compare a b)
              ((name, dst) :: others)
          in
          let mers =
            Free_space.add
              (Free_space.remove part ~occupied:(List.map snd others)
                 st.st_mers src)
              dst
          in
          { st_rects = rects; st_mers = mers; st_moves = mv :: st.st_moves;
            st_frames = st.st_frames + frames })
        sites)
    st.st_rects

let search part ~max_moves ~max_states ~demand init =
  let visited = Hashtbl.create 256 in
  Hashtbl.replace visited (state_key init) ();
  let explored = ref 0 in
  let rec bfs level depth =
    if level = [] || depth >= max_moves then None
    else begin
      let next = ref [] in
      let goals = ref [] in
      List.iter
        (fun st ->
          List.iter
            (fun succ ->
              let key = state_key succ in
              if (not (Hashtbl.mem visited key)) && !explored < max_states
              then begin
                Hashtbl.replace visited key ();
                incr explored;
                match
                  Layout.admission_rect_in part ~mers:succ.st_mers demand
                with
                | Some r -> goals := (succ, r) :: !goals
                | None -> next := succ :: !next
              end)
            (successors part st))
        level;
      match !goals with
      | [] -> bfs !next (depth + 1)
      | gs ->
        Some
          (List.fold_left
             (fun (best, br) (st, r) ->
               if st.st_frames < best.st_frames then (st, r) else (best, br))
             (List.hd gs) (List.tl gs))
    end
  in
  bfs [ init ] 0

(* ---- residual full re-placement (no-break waived) ---- *)

let residual_replace ~time_limit layout ~name ~demand =
  let positive d = List.filter (fun (_, n) -> n > 0) d in
  let regions =
    List.map
      (fun (e : Layout.entry) ->
        { Device.Spec.r_name = e.e_name; demand = positive e.e_demand })
      (Layout.entries layout)
    @ [ { Device.Spec.r_name = name; demand = positive demand } ]
  in
  match Device.Spec.make ~name:"defrag-residual" regions with
  | exception Invalid_argument msg ->
    Error
      (D.diagf ~code:"RF701" D.Error (D.Layout name)
         "residual instance rejected: %s" msg)
  | spec -> (
    let options =
      Rfloor.Solver.Options.make
        ~strategy:(Rfloor.Solver.Strategy.combinatorial ~time_limit ())
        ~time_limit ()
    in
    let out = Rfloor.Solver.feasible ~options (Layout.partition layout) spec in
    match out.Rfloor.Solver.plan with
    | Some fp ->
      Ok
        (Fallback
           (List.map
              (fun (p : Device.Floorplan.placement) ->
                (p.Device.Floorplan.p_region, p.Device.Floorplan.p_rect))
              fp.Device.Floorplan.placements))
    | None ->
      Error
        (D.diagf ~code:"RF701" D.Error (D.Layout name)
           "arrival %a inadmissible even after full re-placement (%s)"
           Device.Resource.pp_demand demand
           (match out.Rfloor.Solver.status with
           | Rfloor.Solver.Infeasible -> "proved infeasible"
           | _ -> "residual solve inconclusive")))

let plan ?(max_moves = 3) ?(max_states = 5000) ?(fallback = true)
    ?(time_limit = 5.) layout ~name ~demand =
  if Layout.find layout name <> None then
    Error
      (D.diagf ~code:"RF702" D.Error (D.Layout name)
         "module %S is already placed" name)
  else if List.for_all (fun (_, n) -> n <= 0) demand then
    Error
      (D.diagf ~code:"RF701" D.Error (D.Layout name) "empty demand for %S"
         name)
  else
    match Layout.admission_rect layout demand with
    | Some r -> Ok (Admit r)
    | None -> (
      let part = Layout.partition layout in
      let init =
        {
          st_rects =
            List.sort
              (fun (a, _) (b, _) -> compare a b)
              (List.map
                 (fun (e : Layout.entry) -> (e.Layout.e_name, e.Layout.e_rect))
                 (Layout.entries layout));
          st_mers = Layout.free_rects layout;
          st_moves = [];
          st_frames = 0;
        }
      in
      match search part ~max_moves ~max_states ~demand init with
      | Some (st, r) -> Ok (Moves (List.rev st.st_moves, r))
      | None ->
        if fallback then residual_replace ~time_limit layout ~name ~demand
        else
          Error
            (D.diagf ~code:"RF701" D.Error (D.Layout name)
               "no move schedule within %d moves admits %a" max_moves
               Device.Resource.pp_demand demand))

let execute ?(on_move = fun _ -> ()) layout moves =
  List.fold_left
    (fun acc mv ->
      match acc with
      | Error _ as e -> e
      | Ok l -> (
        match Layout.move l mv.mv_name mv.mv_dst with
        | Ok l' ->
          on_move mv;
          Ok l'
        | Error _ as e -> e))
    (Ok layout) moves

let compact ?(max_moves = 3) layout =
  let part = Layout.partition layout in
  let usable = Layout.usable_area layout in
  let occ =
    List.fold_left
      (fun acc (e : Layout.entry) -> acc + R.area e.Layout.e_rect)
      0 (Layout.entries layout)
  in
  let free = usable - occ in
  let frag mers =
    if free = 0 then 0.
    else 1. -. (float_of_int (Free_space.largest_area mers) /. float_of_int free)
  in
  let rec go rects mers acc n =
    if n >= max_moves then List.rev acc
    else begin
      let current = frag mers in
      let best = ref None in
      List.iter
        (fun (name, src) ->
          let others = List.filter (fun (n', _) -> n' <> name) rects in
          let occupied = List.map snd rects in
          List.iter
            (fun dst ->
              let mers' =
                Free_space.add
                  (Free_space.remove part ~occupied:(List.map snd others)
                     mers src)
                  dst
              in
              let f = frag mers' in
              if f < current -. 1e-9 then begin
                let frames = rect_frames part src in
                let key = (f, frames) in
                match !best with
                | Some (k, _, _, _) when k <= key -> ()
                | _ ->
                  best :=
                    Some
                      ( key,
                        { mv_name = name; mv_src = src; mv_dst = dst;
                          mv_frames = frames },
                        (name, dst) :: others,
                        mers' )
              end)
            (Device.Compat.free_compatible_sites ~occupied part src))
        rects;
      match !best with
      | None -> List.rev acc
      | Some (_, mv, rects', mers') -> go rects' mers' (mv :: acc) (n + 1)
    end
  in
  go
    (List.map
       (fun (e : Layout.entry) -> (e.Layout.e_name, e.Layout.e_rect))
       (Layout.entries layout))
    (Layout.free_rects layout) [] 0
