module Res = Device.Resource
module D = Rfloor_diag.Diagnostic

type event =
  | Arrive of { a_name : string; a_demand : Res.demand }
  | Depart of { d_name : string }

let pp_event ppf = function
  | Arrive { a_name; a_demand } ->
    Format.fprintf ppf "arrive %s %a" a_name Res.pp_demand a_demand
  | Depart { d_name } -> Format.fprintf ppf "depart %s" d_name

(* Splitmix-style PRNG (same construction as the test generators):
   explicit state, reproducible from the seed alone. *)
module Prng = struct
  type t = { mutable s : int64 }

  let mix64 z =
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let make seed = { s = mix64 (Int64.of_int (seed + 0x5EED)) }

  let next t =
    t.s <- Int64.add t.s 0x9E3779B97F4A7C15L;
    mix64 t.s

  let int t n =
    if n <= 0 then invalid_arg "Prng.int: bound must be positive";
    Int64.to_int
      (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int n))

  let range t lo hi = lo + int t (hi - lo + 1)
end

let generate ?(seed = 2015) ?(events = 100) part =
  let rng = Prng.make seed in
  let usable = Device.Grid.usable_tiles part.Device.Partition.grid in
  let avail k = Res.demand_get usable k in
  (* demands sized so ~4 modules fill the device's CLB budget *)
  let demand () =
    let clb = avail Res.Clb in
    let d =
      if clb > 0 then
        [ (Res.Clb, Prng.range rng (max 1 (clb / 12)) (max 2 (clb / 4))) ]
      else []
    in
    let d =
      if avail Res.Bram > 0 && Prng.int rng 3 = 0 then
        (Res.Bram, Prng.range rng 1 (max 1 (avail Res.Bram / 4))) :: d
      else d
    in
    let d =
      if avail Res.Dsp > 0 && Prng.int rng 4 = 0 then
        (Res.Dsp, Prng.range rng 1 (max 1 (avail Res.Dsp / 4))) :: d
      else d
    in
    if d = [] then [ (Res.Clb, 1) ] else List.rev d
  in
  let live = ref [] in
  let next_id = ref 0 in
  List.init events (fun _ ->
      let arrive = !live = [] || Prng.int rng 5 < 3 in
      if arrive then begin
        incr next_id;
        let name = Printf.sprintf "m%d" !next_id in
        live := name :: !live;
        Arrive { a_name = name; a_demand = demand () }
      end
      else begin
        let i = Prng.int rng (List.length !live) in
        let name = List.nth !live i in
        live := List.filter (fun n -> n <> name) !live;
        Depart { d_name = name }
      end)

type stats = {
  s_events : int;
  s_admitted : int;
  s_defrag_admitted : int;
  s_fallbacks : int;
  s_rejected : int;
  s_departed : int;
  s_moves : int;
  s_violations : string list;
  s_final : Layout.t;
}

let defrag_episodes s = s.s_defrag_admitted + s.s_fallbacks

(* Rebuild a layout from a full re-placement assignment (the RF704
   fallback path): every module is re-placed, images re-synthesized —
   precisely the guarantee the no-break planner exists to avoid. *)
let rebuild part ~demands assignment =
  List.fold_left
    (fun acc (name, rect) ->
      match acc with
      | Error _ as e -> e
      | Ok l -> (
        match List.assoc_opt name demands with
        | None ->
          Error
            (D.diagf ~code:"RF702" D.Error (D.Layout name)
               "fallback assignment names unknown module %S" name)
        | Some demand -> Layout.place_at l name demand rect))
    (Ok (Layout.create part))
    assignment

let replay ?(defrag = true) ?(max_moves = 3) ?(fallback = true)
    ?(check = true) ?(on_event = fun _ _ _ -> ()) ?(on_move = fun _ -> ())
    part events =
  let violations = ref [] in
  let violate fmt =
    Format.kasprintf (fun m -> violations := m :: !violations) fmt
  in
  let admitted = ref 0 and defragged = ref 0 and fallbacks = ref 0 in
  let rejected = ref 0 and departed = ref 0 and moves = ref 0 in
  (* arrivals the layout turned away: their later departures are
     no-ops in the trace, not audit failures *)
  let rejected_live = ref [] in
  let reject name =
    incr rejected;
    rejected_live := name :: !rejected_live
  in
  (* non-moving modules must come through a defrag byte-identical *)
  let no_break_audit before after moved =
    List.iter
      (fun (e : Layout.entry) ->
        if not (List.mem e.Layout.e_name moved) then
          match Layout.find after e.Layout.e_name with
          | None ->
            violate "defrag dropped non-moving module %S" e.Layout.e_name
          | Some e' ->
            if
              not
                (Bytes.equal
                   (Bitstream.Image.serialize e.Layout.e_image)
                   (Bitstream.Image.serialize e'.Layout.e_image))
            then
              violate "defrag changed frames of non-moving module %S"
                e.Layout.e_name)
      (Layout.entries before)
  in
  let step i layout ev =
    match ev with
    | Depart { d_name } -> (
      match Layout.remove layout d_name with
      | Ok l ->
        incr departed;
        on_event i ev "departed";
        l
      | Error d ->
        if List.mem d_name !rejected_live then begin
          rejected_live := List.filter (fun n -> n <> d_name) !rejected_live;
          on_event i ev "skipped"
        end
        else begin
          violate "departure of %S failed: %s" d_name d.D.message;
          on_event i ev "error"
        end;
        layout)
    | Arrive { a_name; a_demand } -> (
      match Layout.place layout a_name a_demand with
      | Ok (l, _) ->
        incr admitted;
        on_event i ev "admitted";
        l
      | Error d when d.D.code <> "RF701" ->
        violate "arrival of %S failed: %s" a_name d.D.message;
        on_event i ev "error";
        layout
      | Error _ when not defrag ->
        reject a_name;
        on_event i ev "rejected";
        layout
      | Error _ -> (
        match
          Defrag.plan ~max_moves ~fallback layout ~name:a_name
            ~demand:a_demand
        with
        | Ok (Defrag.Admit _) ->
          (* [place] just failed, so admission cannot succeed here *)
          violate "planner admitted %S that place rejected" a_name;
          layout
        | Ok (Defrag.Moves (schedule, _)) -> (
          let moved = List.map (fun m -> m.Defrag.mv_name) schedule in
          match
            Defrag.execute
              ~on_move:(fun m ->
                incr moves;
                on_move m)
              layout schedule
          with
          | Error d ->
            violate "move schedule for %S refused: %s" a_name d.D.message;
            on_event i ev "error";
            layout
          | Ok l' -> (
            no_break_audit layout l' moved;
            match Layout.place l' a_name a_demand with
            | Ok (l'', _) ->
              incr defragged;
              on_event i ev "defrag";
              l''
            | Error d ->
              violate "admission after defrag for %S failed: %s" a_name
                d.D.message;
              on_event i ev "error";
              l'))
        | Ok (Defrag.Fallback assignment) -> (
          let demands =
            (a_name, a_demand)
            :: List.map
                 (fun (e : Layout.entry) ->
                   (e.Layout.e_name, e.Layout.e_demand))
                 (Layout.entries layout)
          in
          match rebuild part ~demands assignment with
          | Ok l ->
            incr fallbacks;
            on_event i ev "fallback";
            l
          | Error d ->
            violate "fallback re-placement for %S failed: %s" a_name
              d.D.message;
            on_event i ev "error";
            layout)
        | Error _ ->
          reject a_name;
          on_event i ev "rejected";
          layout))
  in
  let final =
    List.fold_left
      (fun (i, layout) ev ->
        let l = step i layout ev in
        if check && not (Layout.check_free_rects l) then
          violate "free-rectangle differential check failed after event %d" i;
        (i + 1, l))
      (0, Layout.create part) events
    |> snd
  in
  {
    s_events = List.length events;
    s_admitted = !admitted;
    s_defrag_admitted = !defragged;
    s_fallbacks = !fallbacks;
    s_rejected = !rejected;
    s_departed = !departed;
    s_moves = !moves;
    s_violations = List.rev !violations;
    s_final = final;
  }
