(** Seeded arrival/departure workloads and the replay driver.

    {!generate} produces a deterministic trace from a splitmix-style
    PRNG — the same seed always yields the same workload, so a bench
    label or a CI gate pins one trace exactly.  {!replay} drives a
    {!Layout} through the trace with the {!Defrag} planner on blocked
    arrivals, auditing as it goes: every executed move passes the
    relocation filter (by construction of {!Layout.move}), non-moving
    modules' serialized frames are byte-identical across each
    defragmentation episode, and (with [check]) the incremental
    free-rectangle set matches a from-scratch recompute after every
    event. *)

type event =
  | Arrive of { a_name : string; a_demand : Device.Resource.demand }
  | Depart of { d_name : string }

val pp_event : Format.formatter -> event -> unit

val generate :
  ?seed:int -> ?events:int -> Device.Partition.t -> event list
(** Defaults: seed 2015, 100 events.  Arrivals outnumber departures
    (about 3:2) and demands are sized so a handful of modules fill the
    device — the regime where fragmentation actually blocks arrivals.
    Departures always name a live module. *)

type stats = {
  s_events : int;
  s_admitted : int;  (** arrivals placed straight into free space *)
  s_defrag_admitted : int;  (** arrivals admitted after a move schedule *)
  s_fallbacks : int;  (** arrivals admitted by full re-placement (RF704) *)
  s_rejected : int;  (** arrivals that could not be admitted at all *)
  s_departed : int;
  s_moves : int;  (** relocations executed across all episodes *)
  s_violations : string list;  (** audit failures — empty on a sound run *)
  s_final : Layout.t;
}

val defrag_episodes : stats -> int
(** [s_defrag_admitted + s_fallbacks]. *)

val replay :
  ?defrag:bool ->
  ?max_moves:int ->
  ?fallback:bool ->
  ?check:bool ->
  ?on_event:(int -> event -> string -> unit) ->
  ?on_move:(Defrag.move -> unit) ->
  Device.Partition.t ->
  event list ->
  stats
(** Defaults: [defrag] true, [max_moves] 3, [fallback] true, [check]
    true.  [on_event i ev outcome] fires after each event with a short
    outcome word ("admitted", "defrag", "fallback", "rejected",
    "departed"); [on_move] after each executed relocation. *)
