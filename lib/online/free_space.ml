(* See free_space.mli.  Device sizes are small (the FX70T is 46 x 8
   tiles), so the sweeps are O(W * H^2) with tiny constants; the
   incremental paths exist because the differential tests pin them to
   the sweep, proving the split/survivor algebra right at any size. *)

module R = Device.Rect

type free_map = { fm_w : int; fm_h : int; fm_free : bool array array }

let free_map part ~occupied =
  let g = part.Device.Partition.grid in
  let w = Device.Grid.width g and h = Device.Grid.height g in
  (* 1-based: index [col].[row] *)
  let free = Array.make_matrix (w + 1) (h + 1) false in
  for col = 1 to w do
    List.iter
      (fun (lo, hi) ->
        for row = lo to hi do
          free.(col).(row) <- true
        done)
      (Device.Grid.free_intervals g ~occupied col)
  done;
  { fm_w = w; fm_h = h; fm_free = free }

let cell_free fm col row =
  col >= 1 && col <= fm.fm_w && row >= 1 && row <= fm.fm_h
  && fm.fm_free.(col).(row)

let col_free fm col y1 y2 =
  let ok = ref (col >= 1 && col <= fm.fm_w) in
  let row = ref y1 in
  while !ok && !row <= y2 do
    if not (cell_free fm col !row) then ok := false;
    incr row
  done;
  !ok

let row_free fm row x1 x2 =
  let ok = ref (row >= 1 && row <= fm.fm_h) in
  let col = ref x1 in
  while !ok && !col <= x2 do
    if not (cell_free fm !col row) then ok := false;
    incr col
  done;
  !ok

let sort_rects rects = List.sort_uniq R.compare rects

(* Drop every rectangle contained in a different one of the set (and
   deduplicate).  The slices produced by [add] need this; elsewhere it
   is a cheap safety net. *)
let prune rects =
  let rects = sort_rects rects in
  List.filter
    (fun a ->
      not
        (List.exists (fun b -> (not (R.equal a b)) && R.contains b a) rects))
    rects

(* All maximal free rectangles of [fm]; with [~through:f], only those
   intersecting [f].  For each row span (y1, y2) the maximal x-runs of
   columns free over the whole span are maximal horizontally by
   construction; a run is a maximal rectangle iff it cannot extend to
   row y1-1 or y2+1 as a whole (the extended rectangle shows up at a
   taller row span). *)
let sweep ?through fm =
  let out = ref [] in
  for y1 = 1 to fm.fm_h do
    for y2 = y1 to fm.fm_h do
      let rows_ok =
        match through with
        | None -> true
        | Some f -> not (y2 < f.R.y || y1 > R.y2 f)
      in
      if rows_ok then begin
        let c = ref 1 in
        while !c <= fm.fm_w do
          if col_free fm !c y1 y2 then begin
            let x1 = !c in
            while !c < fm.fm_w && col_free fm (!c + 1) y1 y2 do
              incr c
            done;
            let x2 = !c in
            let grows_up = y1 > 1 && row_free fm (y1 - 1) x1 x2 in
            let grows_down = y2 < fm.fm_h && row_free fm (y2 + 1) x1 x2 in
            let through_ok =
              match through with
              | None -> true
              | Some f -> not (x2 < f.R.x || x1 > R.x2 f)
            in
            if (not grows_up) && (not grows_down) && through_ok then
              out :=
                R.make ~x:x1 ~y:y1 ~w:(x2 - x1 + 1) ~h:(y2 - y1 + 1) :: !out
          end;
          incr c
        done
      end
    done
  done;
  !out

let recompute part ~occupied = sort_rects (sweep (free_map part ~occupied))

let add mers r =
  let split m =
    if not (R.overlaps m r) then [ m ]
    else begin
      let acc = ref [] in
      if m.R.x < r.R.x then
        acc := R.make ~x:m.R.x ~y:m.R.y ~w:(r.R.x - m.R.x) ~h:m.R.h :: !acc;
      if R.x2 m > R.x2 r then
        acc :=
          R.make ~x:(R.x2 r + 1) ~y:m.R.y ~w:(R.x2 m - R.x2 r) ~h:m.R.h
          :: !acc;
      if m.R.y < r.R.y then
        acc := R.make ~x:m.R.x ~y:m.R.y ~w:m.R.w ~h:(r.R.y - m.R.y) :: !acc;
      if R.y2 m > R.y2 r then
        acc :=
          R.make ~x:m.R.x ~y:(R.y2 r + 1) ~w:m.R.w ~h:(R.y2 m - R.y2 r)
          :: !acc;
      !acc
    end
  in
  prune (List.concat_map split mers)

let remove part ~occupied mers r =
  let fm = free_map part ~occupied in
  (* An old MER stays maximal unless it can now extend — necessarily
     into cells freed by [r]; the extended maximal rectangle intersects
     [r] and is therefore produced by the [~through] sweep. *)
  let survives m =
    let grows =
      (m.R.x > 1 && col_free fm (m.R.x - 1) m.R.y (R.y2 m))
      || (R.x2 m < fm.fm_w && col_free fm (R.x2 m + 1) m.R.y (R.y2 m))
      || (m.R.y > 1 && row_free fm (m.R.y - 1) m.R.x (R.x2 m))
      || (R.y2 m < fm.fm_h && row_free fm (R.y2 m + 1) m.R.x (R.x2 m))
    in
    not grows
  in
  prune (List.filter survives mers @ sweep ~through:r fm)

let largest_area rects =
  List.fold_left (fun acc r -> max acc (R.area r)) 0 rects

let equal_sets a b =
  let a = sort_rects a and b = sort_rects b in
  List.length a = List.length b && List.for_all2 R.equal a b
