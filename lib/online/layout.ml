module R = Device.Rect
module P = Device.Partition
module Res = Device.Resource
module D = Rfloor_diag.Diagnostic

type entry = {
  e_name : string;
  e_rect : R.t;
  e_demand : Res.demand;
  e_image : Bitstream.Image.t;
}

type t = {
  part : P.t;
  rev_entries : entry list;  (* newest first *)
  mers : R.t list;
  usable : int;
}

let create part =
  let usable =
    List.fold_left (fun acc (_, n) -> acc + n) 0
      (Device.Grid.usable_tiles part.P.grid)
  in
  { part;
    rev_entries = [];
    mers = Free_space.recompute part ~occupied:[];
    usable }

let partition t = t.part
let entries t = List.rev t.rev_entries
let find t name = List.find_opt (fun e -> e.e_name = name) t.rev_entries
let modules t = List.length t.rev_entries
let occupied t = List.map (fun e -> e.e_rect) t.rev_entries
let free_rects t = t.mers
let usable_area t = t.usable

let occupied_area t =
  List.fold_left (fun acc e -> acc + R.area e.e_rect) 0 t.rev_entries

let occupancy t =
  if t.usable = 0 then 0.
  else float_of_int (occupied_area t) /. float_of_int t.usable

let fragmentation t =
  let free = t.usable - occupied_area t in
  if free = 0 then 0.
  else
    1. -. (float_of_int (Free_space.largest_area t.mers) /. float_of_int free)

(* Demand-driven best fit inside the maximal free rectangles.  On a
   columnar device a rectangle spanning columns x1..x2 at height h
   covers h tiles per column, so the minimal height for each candidate
   column range is a closed form over the per-kind column counts. *)
let admission_rect_in part ~mers demand =
  let demand = List.filter (fun (_, n) -> n > 0) demand in
  if demand = [] then None
  else begin
    let best = ref None in
    let consider rect =
      let wasted = Device.Compat.wasted_frames part rect demand in
      let key = (wasted, R.area rect, rect.R.x, rect.R.y) in
      match !best with
      | Some (k, _) when k <= key -> ()
      | _ -> best := Some (key, rect)
    in
    List.iter
      (fun (m : R.t) ->
        for x1 = m.R.x to R.x2 m do
          for x2 = x1 to R.x2 m do
            let ncols k =
              let n = ref 0 in
              for c = x1 to x2 do
                if Res.equal_kind (P.column_type part c).Res.kind k then incr n
              done;
              !n
            in
            let h =
              List.fold_left
                (fun acc (k, d) ->
                  let nc = ncols k in
                  if nc = 0 then max_int
                  else if acc = max_int then max_int
                  else max acc ((d + nc - 1) / nc))
                1 demand
            in
            if h <> max_int && h <= m.R.h then
              consider (R.make ~x:x1 ~y:m.R.y ~w:(x2 - x1 + 1) ~h)
          done
        done)
      mers;
    Option.map snd !best
  end

let admission_rect t demand = admission_rect_in t.part ~mers:t.mers demand

let default_seed name = Hashtbl.hash name land 0xFFFFFF

let place ?seed t name demand =
  match find t name with
  | Some _ ->
    Error
      (D.diagf ~code:"RF702" D.Error (D.Layout name)
         "module %S is already placed" name)
  | None -> (
    match admission_rect t demand with
    | None ->
      Error
        (D.diagf ~code:"RF701" D.Error (D.Layout name)
           "no free rectangle admits %a" Res.pp_demand demand)
    | Some rect ->
      let seed = match seed with Some s -> s | None -> default_seed name in
      let image = Bitstream.Image.synthesize ~seed t.part rect in
      let e = { e_name = name; e_rect = rect; e_demand = demand;
                e_image = image } in
      Ok
        ( { t with rev_entries = e :: t.rev_entries;
            mers = Free_space.add t.mers rect },
          rect ))

let place_at ?seed t name demand rect =
  let g = t.part.P.grid in
  let err fmt = Format.kasprintf Fun.id fmt in
  let problem =
    if find t name <> None then
      Some ("RF702", err "module %S is already placed" name)
    else if
      not
        (R.within ~width:(Device.Grid.width g) ~height:(Device.Grid.height g)
           rect)
    then Some ("RF701", err "%s leaves the device" (R.to_string rect))
    else if Device.Grid.rect_hits_forbidden g rect then
      Some ("RF701", err "%s overlaps a forbidden area" (R.to_string rect))
    else if List.exists (fun e -> R.overlaps e.e_rect rect) t.rev_entries then
      Some ("RF701", err "%s overlaps a placed module" (R.to_string rect))
    else if not (Device.Compat.satisfies t.part rect demand) then
      Some
        ("RF701", err "%s does not cover %a" (R.to_string rect)
           Res.pp_demand demand)
    else None
  in
  match problem with
  | Some (code, msg) ->
    Error (D.diagf ~code D.Error (D.Layout name) "%s" msg)
  | None ->
    let seed = match seed with Some s -> s | None -> default_seed name in
    let image = Bitstream.Image.synthesize ~seed t.part rect in
    let e = { e_name = name; e_rect = rect; e_demand = demand;
              e_image = image } in
    Ok
      { t with rev_entries = e :: t.rev_entries;
        mers = Free_space.add t.mers rect }

let remove t name =
  match find t name with
  | None ->
    Error
      (D.diagf ~code:"RF702" D.Error (D.Layout name) "module %S is not placed"
         name)
  | Some e ->
    let rev_entries =
      List.filter (fun e' -> e'.e_name <> name) t.rev_entries
    in
    let occupied = List.map (fun e' -> e'.e_rect) rev_entries in
    Ok
      { t with rev_entries;
        mers = Free_space.remove t.part ~occupied t.mers e.e_rect }

let move t name dst =
  match find t name with
  | None ->
    Error
      (D.diagf ~code:"RF702" D.Error (D.Layout name) "module %S is not placed"
         name)
  | Some e ->
    let src = e.e_rect in
    let others =
      List.filter (fun e' -> e'.e_name <> name) t.rev_entries
    in
    let free_dst =
      (not (Device.Grid.rect_hits_forbidden t.part.P.grid dst))
      && (not (R.overlaps src dst))
      && not (List.exists (fun e' -> R.overlaps e'.e_rect dst) others)
    in
    if not free_dst then
      Error
        (D.diagf ~code:"RF705" D.Error (D.Layout name)
           "destination %s is not free" (R.to_string dst))
    else (
      match Bitstream.Relocate.relocate t.part ~src ~dst e.e_image with
      | Error _ ->
        Error
          (D.diagf ~code:"RF705" D.Error (D.Layout name)
             "relocation filter refused %s -> %s" (R.to_string src)
             (R.to_string dst))
      | Ok image ->
        let rev_entries =
          List.map
            (fun e' ->
              if e'.e_name = name then { e' with e_rect = dst; e_image = image }
              else e')
            t.rev_entries
        in
        let without = List.map (fun e' -> e'.e_rect) others in
        let mers = Free_space.remove t.part ~occupied:without t.mers src in
        Ok { t with rev_entries; mers = Free_space.add mers dst })

let check_free_rects t =
  Free_space.equal_sets t.mers
    (Free_space.recompute t.part ~occupied:(occupied t))

let render t =
  let marks =
    List.mapi
      (fun i e ->
        (e.e_rect, Char.chr (Char.code 'A' + (i mod 26))))
      (entries t)
  in
  Device.Grid.render ~marks t.part.P.grid
