(** Minimal-move no-break defragmentation (van der Veen / Fekete).

    When fragmentation blocks an arrival, {!plan} searches for a
    schedule of module relocations after which the arrival admits into
    a free rectangle.  Each move in the schedule targets a rectangle
    that is free and compatible {e at the time of the move}, so the
    schedule is executable step by step through the bitstream
    relocation filter and never touches a non-moving module
    (no-break).  The search is breadth-first over move sequences —
    level order makes the first goal depth the minimal move count —
    and among the goals at that depth the schedule with the least
    total moved configuration frames wins.

    When no schedule within the bounds exists, an optional bounded
    solve of the residual instance ({!Rfloor.Solver.feasible} over all
    live modules plus the arrival) produces a full re-placement; that
    path waives the no-break guarantee and callers must surface RF704. *)

type move = {
  mv_name : string;
  mv_src : Device.Rect.t;
  mv_dst : Device.Rect.t;
  mv_frames : int;  (** configuration frames of the moved rectangle *)
}

type plan =
  | Admit of Device.Rect.t
      (** no moves needed: the arrival already admits here *)
  | Moves of move list * Device.Rect.t
      (** execute the moves in order, then admit at the rectangle;
          non-moving modules are untouched *)
  | Fallback of (string * Device.Rect.t) list
      (** full re-placement from the residual solve (arriving module
          included); no-break is waived — RF704 *)

val plan :
  ?max_moves:int ->
  ?max_states:int ->
  ?fallback:bool ->
  ?time_limit:float ->
  Layout.t ->
  name:string ->
  demand:Device.Resource.demand ->
  (plan, Rfloor_diag.Diagnostic.t) result
(** Defaults: [max_moves] 3, [max_states] 5000, [fallback] true,
    [time_limit] 5 seconds (for the residual solve only).  Errors:
    RF702 (duplicate module name), RF701 (not admissible even by the
    fallback solve). *)

val execute :
  ?on_move:(move -> unit) ->
  Layout.t ->
  move list ->
  (Layout.t, Rfloor_diag.Diagnostic.t) result
(** Apply a schedule move by move through {!Layout.move} (and hence
    the relocation filter); [on_move] fires after each successful
    move.  Stops at the first refused move with its RF705. *)

val compact : ?max_moves:int -> Layout.t -> move list
(** Greedy fragmentation reduction for an explicit [defrag] request
    with no pending arrival: repeatedly apply the single relocation
    that lowers the fragmentation ratio the most (ties: fewer moved
    frames), up to [max_moves] (default 3).  May be empty. *)
