(** Maximal-free-rectangle (MER) tracking for online floorplanning.

    The free space of a layout is represented by the set of its
    {e maximal free rectangles}: free rectangles that cannot be
    extended in any direction (van der Veen / Fekete defragmentation
    model; Ahmadinia / Bobda free-space management).  The columnar
    ground truth is {!Device.Grid.free_intervals}; on top of it this
    module maintains the MER set {e incrementally}:

    - {!add} (a module is placed): every MER intersecting the placed
      rectangle is split into at most four slices (left / right /
      above / below) and contained rectangles are pruned — pure
      geometry, no grid walk;
    - {!remove} (a module departs): old MERs that can newly extend
      into the freed rectangle are dropped (they are no longer
      maximal) and every maximal rectangle intersecting the freed area
      is added, found by a row-span sweep over the post-removal
      free map.

    {!recompute} is the from-scratch sweep, used at creation time and
    by the differential audits that pin the incremental set to it. *)

val recompute :
  Device.Partition.t -> occupied:Device.Rect.t list -> Device.Rect.t list
(** All maximal rectangles free of forbidden areas and of every
    rectangle in [occupied], sorted by {!Device.Rect.compare}. *)

val add : Device.Rect.t list -> Device.Rect.t -> Device.Rect.t list
(** [add mers r] is the MER set after rectangle [r] becomes occupied.
    [r] must be contained in the union of free space (it was chosen
    from a free rectangle), but this is not checked — intersecting
    MERs are simply split around it. *)

val remove :
  Device.Partition.t ->
  occupied:Device.Rect.t list ->
  Device.Rect.t list ->
  Device.Rect.t ->
  Device.Rect.t list
(** [remove part ~occupied mers r] is the MER set after rectangle [r]
    becomes free again.  [occupied] is the occupancy {e after} the
    removal (i.e. without [r]). *)

val largest_area : Device.Rect.t list -> int
(** Area of the largest rectangle, 0 for an empty set. *)

val equal_sets : Device.Rect.t list -> Device.Rect.t list -> bool
(** Set equality up to order — the differential-audit comparator. *)
