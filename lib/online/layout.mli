(** A persistent online layout: the placed modules of a long-lived
    device, their synthesized partial bitstreams, and the maximal free
    rectangles ({!Free_space}) maintained incrementally across
    arrivals, departures and relocations.

    All operations are functional — the previous layout stays valid —
    which is what lets the defragmentation planner ({!Defrag}) search
    over move sequences without copying device state.

    Every relocation goes through the {!Bitstream.Relocate} filter:
    the stored image is address-rewritten to the destination, payload
    untouched, so a defragmentation provably never breaks the modules
    it does not move. *)

type entry = {
  e_name : string;
  e_rect : Device.Rect.t;
  e_demand : Device.Resource.demand;
  e_image : Bitstream.Image.t;
}

type t

val create : Device.Partition.t -> t
(** An empty layout; the free space is the whole device minus the
    forbidden areas. *)

val partition : t -> Device.Partition.t
val entries : t -> entry list
(** Arrival order. *)

val find : t -> string -> entry option
val modules : t -> int
val occupied : t -> Device.Rect.t list
val free_rects : t -> Device.Rect.t list
(** The maximal free rectangles, sorted. *)

val usable_area : t -> int
(** Tiles not under a forbidden area. *)

val occupancy : t -> float
(** Occupied fraction of the usable tiles, in [0, 1]. *)

val fragmentation : t -> float
(** [1 - largest_free_rect_area / total_free_area] (0 when the device
    is full or empty): 0 means all free space is one rectangle, values
    near 1 mean the free area is shattered. *)

val admission_rect_in :
  Device.Partition.t ->
  mers:Device.Rect.t list ->
  Device.Resource.demand ->
  Device.Rect.t option
(** Best placement of a demand inside an existing free rectangle:
    minimal {!Device.Compat.wasted_frames}, ties broken by smaller
    area, then leftmost, then topmost.  [None] when no free rectangle
    can host the demand — the trigger for defragmentation. *)

val admission_rect : t -> Device.Resource.demand -> Device.Rect.t option

val place :
  ?seed:int -> t -> string -> Device.Resource.demand ->
  (t * Device.Rect.t, Rfloor_diag.Diagnostic.t) result
(** Admission path: place an arriving module into the best existing
    free rectangle and synthesize its bitstream ([seed] defaults to a
    hash of the name).  Errors: RF702 (duplicate name), RF701 (no
    admissible rectangle). *)

val place_at :
  ?seed:int -> t -> string -> Device.Resource.demand -> Device.Rect.t ->
  (t, Rfloor_diag.Diagnostic.t) result
(** Place at an explicit rectangle (the fallback re-placement path).
    The rectangle must be inside the device, off the forbidden areas,
    disjoint from every module, and cover the demand. *)

val remove : t -> string -> (t, Rfloor_diag.Diagnostic.t) result
(** Departure.  RF702 when the module is unknown. *)

val move :
  t -> string -> Device.Rect.t -> (t, Rfloor_diag.Diagnostic.t) result
(** Relocate one module to a free compatible rectangle, rewriting its
    bitstream through the relocation filter.  Errors: RF702 (unknown
    module), RF705 (destination not free-compatible, or the filter
    refused the image). *)

val check_free_rects : t -> bool
(** Differential audit: the incrementally-maintained free-rectangle
    set equals a from-scratch {!Free_space.recompute}. *)

val render : t -> string
(** ASCII picture of the device with modules marked 'A', 'B', ... in
    arrival order. *)
