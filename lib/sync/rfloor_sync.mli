(** Instrumented synchronization layer.

    Every concurrent structure in the repo builds its mutexes,
    condition variables and atomics from this module instead of the
    raw standard-library primitives (the RF401..RF403 source lint
    enforces exactly that).  The wrappers behave identically to the
    primitives they wrap, except that an optional global {!Recorder}
    can capture every operation — acquire/release, atomic
    read/write/CAS, plain shared-cell accesses, domain spawn/join —
    tagged with the executing domain id and a global logical clock.
    The concurrency analyzers in [Rfloor_concheck] (vector-clock race
    detector, lockset screen) consume those logs.

    Cost model: when no recorder is installed every operation pays one
    atomic load and one branch on top of the raw primitive — the same
    trick as the null metrics registry — and allocates nothing.  When
    a recorder is installed, every non-blocking operation executes
    under the recorder's own lock so that the log order of events is
    exactly the real execution order (blocking operations — mutex
    lock, condition wait — record just after/before the raw call so
    they can never hold the recorder lock while blocked).  Recording
    therefore serializes instrumented code; it is meant for analysis
    runs, not production. *)

module Event : sig
  type op =
    | Lock_acquire
    | Lock_release
    | Cond_wait_begin  (** releases the paired mutex ([aux]) *)
    | Cond_wait_end  (** re-acquires the paired mutex ([aux]) *)
    | Cond_signal
    | Cond_broadcast
    | Atomic_read
    | Atomic_write  (** also read-modify-write: exchange, fetch_and_add *)
    | Atomic_cas of bool  (** success flag *)
    | Plain_read  (** {!Shared} cell read *)
    | Plain_write  (** {!Shared} cell write *)
    | Spawn  (** parent side; [obj] is a fresh spawn token *)
    | Child_run  (** first action of the child; [obj] is the token *)
    | Join  (** parent side, after the join; [obj] is the child domain id *)

  type t = {
    seq : int;  (** global logical clock: position in the recorded log *)
    domain : int;  (** executing domain ([Domain.self] as an int) *)
    op : op;
    obj : int;  (** unique id of the touched object *)
    name : string;  (** the object's registration name *)
    aux : int;  (** paired mutex id for condition ops, [-1] otherwise *)
  }

  val op_name : op -> string
  val pp : Format.formatter -> t -> unit
end

module Recorder : sig
  val start : unit -> unit
  (** Install a fresh global recorder (discarding any previous log).
      Start it before the concurrent section of interest; operations
      by any domain are captured from this point on. *)

  val stop : unit -> Event.t list
  (** Uninstall the recorder and return the captured events in log
      (= execution) order.  Call it after joining the workers whose
      operations you want; events raced against [stop] by still-live
      domains may be dropped.  Returns [[]] if no recorder was
      installed. *)

  val recording : unit -> bool
end

module Mutex : sig
  type t

  val create : ?name:string -> unit -> t
  val lock : t -> unit
  val unlock : t -> unit

  val protect : t -> (unit -> 'a) -> 'a
  (** [protect m f] runs [f ()] with [m] held, releasing it on the way
      out even if [f] raises. *)
end

module Condition : sig
  type t

  val create : ?name:string -> unit -> t

  val wait : t -> Mutex.t -> unit
  (** Atomically releases the mutex and waits; the mutex is held again
      when [wait] returns.  As with the raw primitive, wakeups may be
      spurious — always re-check the predicate in a loop. *)

  val signal : t -> unit
  val broadcast : t -> unit
end

module Atomic : sig
  type 'a t

  val make : ?name:string -> 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
end

module Shared : sig
  (** A plain (non-atomic) mutable cell meant to be protected by a
      lock.  Functionally identical to a [ref]; under a recorder its
      accesses become [Plain_read]/[Plain_write] events — the accesses
      the race detector actually checks (mutex/atomic events only
      build happens-before edges). *)

  type 'a t

  val make : ?name:string -> 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
end

module Domain : sig
  (** Spawn/join wrappers that record the fork and join
      happens-before edges the race detector needs (an uninstrumented
      spawn would make everything the child touches look racy against
      the parent's setup writes). *)

  val spawn : ?name:string -> (unit -> 'a) -> 'a Stdlib.Domain.t
  val join : 'a Stdlib.Domain.t -> 'a

  val self_id : unit -> int
  (** The current domain's id as an integer. *)
end
