(* Instrumented synchronization layer.  See rfloor_sync.mli for the
   cost model.  This module is the one place in the repo allowed to
   touch the raw standard-library primitives; everything else goes
   through these wrappers so that a single global recorder can capture
   every synchronization operation in execution order. *)

module Sys_mutex = Stdlib.Mutex
module Sys_condition = Stdlib.Condition
module Sys_atomic = Stdlib.Atomic
module Sys_domain = Stdlib.Domain

module Event = struct
  type op =
    | Lock_acquire
    | Lock_release
    | Cond_wait_begin
    | Cond_wait_end
    | Cond_signal
    | Cond_broadcast
    | Atomic_read
    | Atomic_write
    | Atomic_cas of bool
    | Plain_read
    | Plain_write
    | Spawn
    | Child_run
    | Join

  type t = {
    seq : int;
    domain : int;
    op : op;
    obj : int;
    name : string;
    aux : int;
  }

  let op_name = function
    | Lock_acquire -> "lock"
    | Lock_release -> "unlock"
    | Cond_wait_begin -> "wait_begin"
    | Cond_wait_end -> "wait_end"
    | Cond_signal -> "signal"
    | Cond_broadcast -> "broadcast"
    | Atomic_read -> "atomic_read"
    | Atomic_write -> "atomic_write"
    | Atomic_cas true -> "cas_ok"
    | Atomic_cas false -> "cas_fail"
    | Plain_read -> "read"
    | Plain_write -> "write"
    | Spawn -> "spawn"
    | Child_run -> "child_run"
    | Join -> "join"

  let pp ppf e =
    Format.fprintf ppf "#%d d%d %s %s(%d)%s" e.seq e.domain (op_name e.op)
      e.name e.obj
      (if e.aux >= 0 then Printf.sprintf " aux=%d" e.aux else "")
end

(* ------------------------------------------------------------------ *)
(* The global recorder *)

type recorder = {
  rm : Sys_mutex.t;
  mutable events : Event.t list; (* newest first *)
  mutable count : int;
}

let current : recorder option Sys_atomic.t = Sys_atomic.make None

let next_id = Sys_atomic.make 0
let fresh_id () = Sys_atomic.fetch_and_add next_id 1

let self_int () = (Sys_domain.self () :> int)

let append r op obj name aux =
  r.events <-
    { Event.seq = r.count; domain = self_int (); op; obj; name; aux }
    :: r.events;
  r.count <- r.count + 1

(* Record an event for an operation that already happened (or is about
   to): used around blocking calls, which must never hold the recorder
   lock while blocked. *)
let note op obj name aux =
  match Sys_atomic.get current with
  | None -> ()
  | Some r ->
    Sys_mutex.lock r.rm;
    append r op obj name aux;
    Sys_mutex.unlock r.rm

(* Run a non-blocking operation and record it atomically, so the log
   order of recorded events is exactly the real execution order. *)
let recorded r op obj name aux f =
  Sys_mutex.lock r.rm;
  match f () with
  | v ->
    append r op obj name aux;
    Sys_mutex.unlock r.rm;
    v
  | exception e ->
    Sys_mutex.unlock r.rm;
    raise e

module Recorder = struct
  let start () =
    Sys_atomic.set current
      (Some { rm = Sys_mutex.create (); events = []; count = 0 })

  let stop () =
    match Sys_atomic.exchange current None with
    | None -> []
    | Some r ->
      Sys_mutex.lock r.rm;
      let es = List.rev r.events in
      Sys_mutex.unlock r.rm;
      es

  let recording () = Sys_atomic.get current <> None
end

let auto_name prefix id name =
  match name with Some n -> n | None -> Printf.sprintf "%s#%d" prefix id

(* ------------------------------------------------------------------ *)
(* Wrappers *)

module Mutex = struct
  type t = { m : Sys_mutex.t; id : int; name : string }

  let create ?name () =
    let id = fresh_id () in
    { m = Sys_mutex.create (); id; name = auto_name "mutex" id name }

  (* Acquire is recorded after the raw lock and release before the raw
     unlock, so in the log a release always precedes the next acquire
     of the same mutex — the order the vector-clock pass relies on. *)
  let lock t =
    Sys_mutex.lock t.m;
    note Event.Lock_acquire t.id t.name (-1)

  let unlock t =
    note Event.Lock_release t.id t.name (-1);
    Sys_mutex.unlock t.m

  let protect t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f
end

module Condition = struct
  type t = { c : Sys_condition.t; id : int; name : string }

  let create ?name () =
    let id = fresh_id () in
    { c = Sys_condition.create (); id; name = auto_name "cond" id name }

  let wait t (mu : Mutex.t) =
    note Event.Cond_wait_begin t.id t.name mu.Mutex.id;
    Sys_condition.wait t.c mu.Mutex.m;
    note Event.Cond_wait_end t.id t.name mu.Mutex.id

  let signal t =
    note Event.Cond_signal t.id t.name (-1);
    Sys_condition.signal t.c

  let broadcast t =
    note Event.Cond_broadcast t.id t.name (-1);
    Sys_condition.broadcast t.c
end

module Atomic = struct
  type 'a t = { a : 'a Sys_atomic.t; id : int; name : string }

  let make ?name v =
    let id = fresh_id () in
    { a = Sys_atomic.make v; id; name = auto_name "atomic" id name }

  let get t =
    match Sys_atomic.get current with
    | None -> Sys_atomic.get t.a
    | Some r ->
      recorded r Event.Atomic_read t.id t.name (-1) (fun () ->
          Sys_atomic.get t.a)

  let set t v =
    match Sys_atomic.get current with
    | None -> Sys_atomic.set t.a v
    | Some r ->
      recorded r Event.Atomic_write t.id t.name (-1) (fun () ->
          Sys_atomic.set t.a v)

  let exchange t v =
    match Sys_atomic.get current with
    | None -> Sys_atomic.exchange t.a v
    | Some r ->
      recorded r Event.Atomic_write t.id t.name (-1) (fun () ->
          Sys_atomic.exchange t.a v)

  let compare_and_set t old_ new_ =
    match Sys_atomic.get current with
    | None -> Sys_atomic.compare_and_set t.a old_ new_
    | Some r ->
      (* the success flag must come from inside the recorder's
         critical section, so record it in a second pass *)
      Sys_mutex.lock r.rm;
      let ok = Sys_atomic.compare_and_set t.a old_ new_ in
      append r (Event.Atomic_cas ok) t.id t.name (-1);
      Sys_mutex.unlock r.rm;
      ok

  let fetch_and_add t n =
    match Sys_atomic.get current with
    | None -> Sys_atomic.fetch_and_add t.a n
    | Some r ->
      recorded r Event.Atomic_write t.id t.name (-1) (fun () ->
          Sys_atomic.fetch_and_add t.a n)

  let incr t = ignore (fetch_and_add t 1)
  let decr t = ignore (fetch_and_add t (-1))
end

module Shared = struct
  type 'a t = { mutable v : 'a; id : int; name : string }

  let make ?name v =
    let id = fresh_id () in
    { v; id; name = auto_name "shared" id name }

  let get t =
    match Sys_atomic.get current with
    | None -> t.v
    | Some r -> recorded r Event.Plain_read t.id t.name (-1) (fun () -> t.v)

  let set t v =
    match Sys_atomic.get current with
    | None -> t.v <- v
    | Some r ->
      recorded r Event.Plain_write t.id t.name (-1) (fun () -> t.v <- v)
end

module Domain = struct
  let self_id = self_int

  let spawn ?name f =
    match Sys_atomic.get current with
    | None -> Sys_domain.spawn f
    | Some _ ->
      (* The token pairs the parent's Spawn with the child's first
         event, giving the detector the fork happens-before edge.  The
         parent records Spawn before the raw spawn so the child's
         Child_run can only appear after it in the log. *)
      let token = fresh_id () in
      let name = auto_name "domain" token name in
      note Event.Spawn token name (-1);
      Sys_domain.spawn (fun () ->
          note Event.Child_run token name (-1);
          f ())

  let join d =
    let child = (Sys_domain.get_id d :> int) in
    let r = Sys_domain.join d in
    (* recorded after the join returns: every event of the child is
       already in the log, so joining the child's final clock is sound *)
    note Event.Join child "join" (-1);
    r
end
