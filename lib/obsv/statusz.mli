(** The [/statusz] document ([rfloor-statusz/1]): a one-object JSON
    snapshot of what the process is doing — uptime and build version,
    an optional pool section (per-worker state, queue depths, cache
    counters), and the in-flight jobs from a {!Progress.board}.

    Rendering takes plain values so this library stays independent of
    [lib/service]; the service layer builds a {!pool_view} from its
    own stats and passes it in. *)

val version : string
(** ["rfloor-statusz/1"]. *)

type pool_view = {
  pv_workers : string list;
      (** per-worker state, e.g. ["idle"] or ["job 3"] *)
  pv_queued : int;
  pv_running : int;
  pv_finished : int;
  pv_cache_hits : int;
  pv_cache_misses : int;
  pv_cache_size : int;
}

type layout_view = {
  lv_device : string;
  lv_modules : int;
  lv_occupancy : float;
      (** occupied fraction of the usable tiles, in [0, 1] *)
  lv_fragmentation : float;
      (** [1 - largest free rect area / total free area] *)
  lv_free_rects : int;
}
(** The session's online layout ({!Rfloor_online.Layout}), when one
    has been established through the service's [layout] op. *)

val render :
  ?pool:pool_view ->
  ?layout:layout_view ->
  ?jobs:Progress.snapshot list ->
  ?cache_json:Rfloor_metrics.Json.t option ->
  unit ->
  string
(** The document, newline-terminated compact JSON. *)

val validate : string -> (unit, string) result
(** Checks a purported statusz body: parses, right version tag,
    numeric uptime, well-formed jobs array, and — when a layout
    section is present — its device name and numeric
    occupancy/fragmentation gauges. *)
