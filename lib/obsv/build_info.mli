(** Binary identity metrics: who is answering this scrape?

    {!register} installs an [rfloor_build_info] gauge (constant 1, the
    identity rides in the [version]/[ocaml]/[git] labels — the standard
    Prometheus idiom) and an [rfloor_uptime_seconds] gauge.
    Registration is idempotent per registry.  Call {!touch_uptime}
    right before snapshotting so the uptime series is current. *)

val version : string
(** The binary's version string (also the CLI's [--version]). *)

val started_at : float
(** Process start, [Unix.gettimeofday] scale (module load time). *)

val uptime : unit -> float
(** Seconds since {!started_at}. *)

val register : Rfloor_metrics.Registry.t -> unit
val touch_uptime : Rfloor_metrics.Registry.t -> unit
