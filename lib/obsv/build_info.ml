(* Binary identity and uptime, so every scrape says what produced it. *)

module R = Rfloor_metrics.Registry

let version = "1.0.0"

(* Cached: the gauge is re-registered per registry, not per scrape, and
   shelling out once per process is plenty.  RFLOOR_GIT_REV (set by CI
   and the bench harness) wins over asking git, which keeps scrapes
   honest inside unpacked release tarballs. *)
let git_rev =
  lazy
    (match Sys.getenv_opt "RFLOOR_GIT_REV" with
    | Some r when String.trim r <> "" -> String.trim r
    | _ -> (
      try
        let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
        let line = try String.trim (input_line ic) with End_of_file -> "" in
        ignore (Unix.close_process_in ic);
        if line = "" then "unknown" else line
      with _ -> "unknown"))

let started_at = Unix.gettimeofday ()

let uptime () = Unix.gettimeofday () -. started_at

let register reg =
  let info =
    R.gauge reg ~help:"Build identity (value is always 1; the labels carry it)"
      ~labels:
        [
          ("version", version);
          ("ocaml", Sys.ocaml_version);
          ("git", Lazy.force git_rev);
        ]
      "rfloor_build_info"
  in
  R.Gauge.set info 1.;
  ignore (R.gauge reg ~help:"Seconds since process start" "rfloor_uptime_seconds")

let touch_uptime reg =
  R.Gauge.set
    (R.gauge reg ~help:"Seconds since process start" "rfloor_uptime_seconds")
    (uptime ())
