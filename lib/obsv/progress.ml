(* Streamed solve progress: per-job entries folded from Rfloor_trace
   events, one shared ticker domain firing rate-limited callbacks.

   An entry is written by the solver domains (through the trace sink)
   and read by the ticker and telemetry domains, so every field lives
   behind the entry mutex.  The fold keeps the *reported* series
   monotone on purpose: the incumbent only improves (min), the bound
   only tightens for reporting purposes (min over finite relaxation
   bounds — converging on the root bound, a valid global dual bound for
   the minimization), and the gap is clamped to never regress, so a
   consumer plotting the stream never sees it bounce. *)

module Sync = Rfloor_sync
module T = Rfloor_trace
module D = Rfloor_diag.Diagnostic

(* ------------------------------------------------------------------ *)
(* interval clamping (RF603) *)

let min_interval = 0.05
let max_interval = 600.
let default_interval = 1.0

let clamp_interval ~id v =
  let diag fmt =
    D.diagf ~code:"RF603" D.Warning (D.Http ("job " ^ id)) fmt
  in
  if Float.is_nan v then
    ( default_interval,
      [ diag "progress interval is not a number; using %gs" default_interval ] )
  else if v <= 0. then
    ( default_interval,
      [ diag "progress interval %g is not positive; using %gs" v default_interval ]
    )
  else if v < min_interval then
    ( min_interval,
      [ diag "progress interval %g below the %gs floor; clamped" v min_interval ]
    )
  else if v > max_interval then
    ( max_interval,
      [ diag "progress interval %g above the %gs ceiling; clamped" v max_interval ]
    )
  else (v, [])

(* ------------------------------------------------------------------ *)
(* entries *)

type entry = {
  e_id : string;
  e_strategy : string;
  e_started : float;  (* Unix.gettimeofday at registration *)
  e_m : Sync.Mutex.t;
  (* all below under [e_m] *)
  e_live : bool Sync.Shared.t;
  e_nodes : int Sync.Shared.t;
  e_incumbent : float option Sync.Shared.t;
  e_bound : float option Sync.Shared.t;
  e_gap : float Sync.Shared.t;  (* last reported gap; starts [infinity] *)
  e_iters : (int * int) list Sync.Shared.t;  (* worker -> cumulative LP iters *)
  e_members : (int * string) list Sync.Shared.t;  (* slot -> label *)
  e_member_nodes : (int * int) list Sync.Shared.t;  (* slot -> nodes *)
}

type snapshot = {
  p_id : string;
  p_strategy : string;
  p_elapsed : float;
  p_nodes : int;
  p_lp_iterations : int;
  p_incumbent : float option;
  p_bound : float option;
  p_gap : float option;
  p_members : (string * int) list;  (* member label, nodes attributed to it *)
}

let bump assoc k d =
  match List.assoc_opt k assoc with
  | Some _ -> List.map (fun (k', v') -> if k' = k then (k', v' + d) else (k', v')) assoc
  | None -> (k, d) :: assoc

(* Worker ids are striped by Rfloor_trace.subtracer: portfolio member
   [i] runs on ids [(i+1)*1000 ..]; slot 0 is the plain solve. *)
let slot_of_worker w = w / 1000

let member_prefix = "member:"

let observe e (ev : T.Event.t) =
  Sync.Mutex.protect e.e_m (fun () ->
      match ev.T.Event.payload with
      | T.Event.Node_explored { bound; iters; _ } ->
        Sync.Shared.set e.e_nodes (Sync.Shared.get e.e_nodes + 1);
        Sync.Shared.set e.e_member_nodes
          (bump (Sync.Shared.get e.e_member_nodes) (slot_of_worker ev.T.Event.worker) 1);
        if Float.is_finite bound then
          Sync.Shared.set e.e_bound
            (match Sync.Shared.get e.e_bound with
            | Some b -> Some (Float.min b bound)
            | None -> Some bound);
        if iters > 0 then begin
          let per = Sync.Shared.get e.e_iters in
          let w = ev.T.Event.worker in
          let cur = Option.value ~default:0 (List.assoc_opt w per) in
          if iters > cur then
            Sync.Shared.set e.e_iters (bump per w (iters - cur))
        end
      | T.Event.Incumbent { objective; _ } ->
        if Float.is_finite objective then
          Sync.Shared.set e.e_incumbent
            (match Sync.Shared.get e.e_incumbent with
            | Some o -> Some (Float.min o objective)
            | None -> Some objective)
      | T.Event.Restart { stage } ->
        let n = String.length member_prefix in
        if
          String.length stage > n
          && String.sub stage 0 n = member_prefix
          && slot_of_worker ev.T.Event.worker > 0
        then begin
          let label = String.sub stage n (String.length stage - n) in
          let slot = slot_of_worker ev.T.Event.worker in
          let members = Sync.Shared.get e.e_members in
          if not (List.mem_assoc slot members) then
            Sync.Shared.set e.e_members ((slot, label) :: members)
        end
        else begin
          (* a stage restart re-optimizes under a new objective
             (e.g. lexicographic stage 2): the old incumbent and bounds
             are not comparable to the new ones, so the folds start
             over (the reported gap stays clamped non-increasing) *)
          Sync.Shared.set e.e_incumbent None;
          Sync.Shared.set e.e_bound None
        end
      | _ -> ())

let sink e = T.Sink.of_fn (observe e)

let live e = Sync.Mutex.protect e.e_m (fun () -> Sync.Shared.get e.e_live)

let finish e =
  Sync.Mutex.protect e.e_m (fun () -> Sync.Shared.set e.e_live false)

let snapshot e =
  Sync.Mutex.protect e.e_m (fun () ->
      let incumbent = Sync.Shared.get e.e_incumbent in
      let bound = Sync.Shared.get e.e_bound in
      let gap =
        match (incumbent, bound) with
        | Some inc, Some b ->
          let raw = Float.max 0. ((inc -. b) /. Float.max 1. (Float.abs inc)) in
          let g = Float.min raw (Sync.Shared.get e.e_gap) in
          Sync.Shared.set e.e_gap g;
          Some g
        | _ -> None
      in
      let members =
        List.rev_map
          (fun (slot, label) ->
            ( label,
              Option.value ~default:0
                (List.assoc_opt slot (Sync.Shared.get e.e_member_nodes)) ))
          (Sync.Shared.get e.e_members)
      in
      {
        p_id = e.e_id;
        p_strategy = e.e_strategy;
        p_elapsed = Unix.gettimeofday () -. e.e_started;
        p_nodes = Sync.Shared.get e.e_nodes;
        p_lp_iterations =
          List.fold_left (fun acc (_, i) -> acc + i) 0 (Sync.Shared.get e.e_iters);
        p_incumbent = incumbent;
        p_bound = bound;
        p_gap = gap;
        p_members = members;
      })

(* ------------------------------------------------------------------ *)
(* the board: active entries, for /statusz *)

type board = {
  b_m : Sync.Mutex.t;
  b_entries : entry list Sync.Shared.t;
}

let create_board () =
  {
    b_m = Sync.Mutex.create ~name:"obsv.board" ();
    b_entries = Sync.Shared.make ~name:"obsv.board.entries" [];
  }

let register board ~id ~strategy =
  let e =
    {
      e_id = id;
      e_strategy = strategy;
      e_started = Unix.gettimeofday ();
      e_m = Sync.Mutex.create ~name:"obsv.entry" ();
      e_live = Sync.Shared.make ~name:"obsv.entry.live" true;
      e_nodes = Sync.Shared.make ~name:"obsv.entry.nodes" 0;
      e_incumbent = Sync.Shared.make ~name:"obsv.entry.incumbent" None;
      e_bound = Sync.Shared.make ~name:"obsv.entry.bound" None;
      e_gap = Sync.Shared.make ~name:"obsv.entry.gap" infinity;
      e_iters = Sync.Shared.make ~name:"obsv.entry.iters" [];
      e_members = Sync.Shared.make ~name:"obsv.entry.members" [];
      e_member_nodes = Sync.Shared.make ~name:"obsv.entry.member_nodes" [];
    }
  in
  Sync.Mutex.protect board.b_m (fun () ->
      Sync.Shared.set board.b_entries (e :: Sync.Shared.get board.b_entries));
  e

let remove board e =
  finish e;
  Sync.Mutex.protect board.b_m (fun () ->
      Sync.Shared.set board.b_entries
        (List.filter (fun e' -> e' != e) (Sync.Shared.get board.b_entries)))

let active board =
  let entries =
    Sync.Mutex.protect board.b_m (fun () -> Sync.Shared.get board.b_entries)
  in
  List.rev_map snapshot (List.filter live entries)

(* ------------------------------------------------------------------ *)
(* the shared ticker *)

module Ticker = struct
  type sub = {
    s_id : int;
    s_interval : float;
    s_due : float Sync.Shared.t;  (* under the ticker mutex *)
    s_fn : unit -> unit;
  }

  type t = {
    tk_m : Sync.Mutex.t;
    tk_stop : bool Sync.Atomic.t;
    tk_subs : sub list Sync.Shared.t;  (* under [tk_m] *)
    tk_next : int Sync.Shared.t;  (* under [tk_m] *)
    tk_domain : unit Stdlib.Domain.t;
  }

  (* OCaml's stdlib Condition has no timed wait, so the ticker is a
     polling loop on one domain: sleep a small quantum, fire whatever
     came due.  The quantum bounds both firing jitter and shutdown
     latency; callbacks run outside the lock so a slow writer never
     blocks subscription changes. *)
  let quantum = 0.05

  let create () =
    let tk_m = Sync.Mutex.create ~name:"obsv.ticker" () in
    let tk_stop = Sync.Atomic.make ~name:"obsv.ticker.stop" false in
    let tk_subs = Sync.Shared.make ~name:"obsv.ticker.subs" [] in
    let tk_next = Sync.Shared.make ~name:"obsv.ticker.next" 0 in
    let tk_domain =
      Sync.Domain.spawn ~name:"obsv.ticker" (fun () ->
          while not (Sync.Atomic.get tk_stop) do
            Unix.sleepf quantum;
            let now = Unix.gettimeofday () in
            let due =
              Sync.Mutex.protect tk_m (fun () ->
                  List.filter
                    (fun s ->
                      if Sync.Shared.get s.s_due <= now then begin
                        Sync.Shared.set s.s_due (now +. s.s_interval);
                        true
                      end
                      else false)
                    (Sync.Shared.get tk_subs))
            in
            List.iter (fun s -> try s.s_fn () with _ -> ()) (List.rev due)
          done)
    in
    { tk_m; tk_stop; tk_subs; tk_next; tk_domain }

  let subscribe t ~interval fn =
    Sync.Mutex.protect t.tk_m (fun () ->
        let id = Sync.Shared.get t.tk_next in
        Sync.Shared.set t.tk_next (id + 1);
        let sub =
          {
            s_id = id;
            s_interval = interval;
            s_due =
              Sync.Shared.make ~name:"obsv.ticker.due"
                (Unix.gettimeofday () +. interval);
            s_fn = fn;
          }
        in
        Sync.Shared.set t.tk_subs (sub :: Sync.Shared.get t.tk_subs);
        id)

  let unsubscribe t id =
    Sync.Mutex.protect t.tk_m (fun () ->
        Sync.Shared.set t.tk_subs
          (List.filter (fun s -> s.s_id <> id) (Sync.Shared.get t.tk_subs)))

  let stop t =
    Sync.Atomic.set t.tk_stop true;
    Sync.Domain.join t.tk_domain
end
