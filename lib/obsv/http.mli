(** The telemetry HTTP plane.

    A minimal, dependency-free HTTP/1.1 server bound to
    [127.0.0.1:PORT] (port [0] picks a free one; read it back with
    {!port}).  It serves exactly three GET routes — [/metrics]
    (Prometheus text), [/healthz], [/statusz] (JSON) — from one accept
    domain, handling connections serially; a telemetry scrape is rare
    and cheap, and serial handling keeps the server trivially free of
    connection races.

    Robustness contract: no input kills the server.  A request that is
    not parsable HTTP is answered [400] with the rendered RF602
    diagnostic as the body and counted in
    [rfloor_telemetry_bad_requests_total]; unknown paths get [404],
    non-GET methods [405].

    A matching client ({!get}, {!request_raw}) lives here too so shell
    gates and tests need no [curl]. *)

type t

type handlers = {
  h_metrics : unit -> string;  (** body for [GET /metrics] *)
  h_statusz : unit -> string;  (** body for [GET /statusz] *)
}

val start :
  ?registry:Rfloor_metrics.Registry.t ->
  port:int ->
  handlers ->
  (t, Rfloor_diag.Diagnostic.t) result
(** Binds, listens and spawns the accept domain.  A port outside
    [0..65535] or a bind/listen failure is an RF601 error. *)

val port : t -> int
(** The bound port (the ephemeral one when [start] was given 0). *)

val stop : t -> unit
(** Stops accepting, joins the accept domain, closes the socket. *)

(** {1 Client} *)

val get : port:int -> string -> (int * string, string) result
(** [get ~port path] is [(status, body)] for a well-formed GET against
    the loopback server. *)

val request_raw : port:int -> string -> (string, string) result
(** Writes [bytes] verbatim and returns the raw response text — for
    poking the server with deliberately malformed requests. *)
