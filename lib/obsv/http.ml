(* A deliberately minimal HTTP/1.1 server for the telemetry plane:
   GET /metrics, /healthz, /statusz, everything else 404.  One accept
   domain, connections handled serially (scrapes are rare and cheap),
   every response Connection: close.  A malformed request is answered
   400 with the rendered RF602 diagnostic as the body and counted — the
   server never dies on input. *)

module Sync = Rfloor_sync
module D = Rfloor_diag.Diagnostic
module R = Rfloor_metrics.Registry

let request_limit = 8192
let io_timeout = 5.0

type handlers = {
  h_metrics : unit -> string;
  h_statusz : unit -> string;
}

type t = {
  srv_fd : Unix.file_descr;
  srv_port : int;
  srv_stop : bool Sync.Atomic.t;
  srv_domain : unit Stdlib.Domain.t;
}

let port t = t.srv_port

(* ------------------------------------------------------------------ *)
(* responses *)

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Content Too Large"
  | _ -> "Internal Server Error"

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | 0 -> ()
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let respond fd ~code ~content_type body =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       code (reason code) content_type (String.length body) body)

(* ------------------------------------------------------------------ *)
(* request parsing *)

(* Reads until the end of the header block, a hard byte cap, or a
   timeout; we never care about a body (GET only). *)
let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let header_end b =
    let s = Buffer.contents b in
    let rec find i =
      if i + 3 >= String.length s then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
      then Some i
      else find (i + 1)
    in
    find 0
  in
  let rec go () =
    match header_end buf with
    | Some _ -> Ok (Buffer.contents buf)
    | None ->
      if Buffer.length buf > request_limit then Error `Too_large
      else (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then Error `Closed else Error `Truncated
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error `Timeout
        | exception Unix.Unix_error _ -> Error `Closed)
  in
  go ()

type parsed = { p_method : string; p_path : string }

let parse_request_line text =
  let line =
    match String.index_opt text '\r' with
    | Some i -> String.sub text 0 i
    | None -> text
  in
  match String.split_on_char ' ' line with
  | [ m; path; version ]
    when (version = "HTTP/1.1" || version = "HTTP/1.0")
         && m <> "" && String.length path > 0 && path.[0] = '/' ->
    Ok { p_method = m; p_path = path }
  | _ -> Error (Printf.sprintf "unparsable request line %S" (String.escaped line))

(* ------------------------------------------------------------------ *)
(* the server *)

let handle handlers ~on_bad fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO io_timeout;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO io_timeout;
  let bad msg =
    let d =
      D.diagf ~code:"RF602" D.Warning (D.Http "telemetry")
        "malformed HTTP request: %s" msg
    in
    on_bad d;
    respond fd ~code:400 ~content_type:"text/plain; charset=utf-8"
      (Format.asprintf "%a@." D.pp d)
  in
  match read_request fd with
  | Error `Closed -> ()
  | Error `Too_large -> bad (Printf.sprintf "headers beyond %d bytes" request_limit)
  | Error `Truncated -> bad "connection closed mid-request"
  | Error `Timeout -> bad "request not completed in time"
  | Ok text -> (
    match parse_request_line text with
    | Error msg -> bad msg
    | Ok { p_method; p_path } ->
      if p_method <> "GET" then
        respond fd ~code:405 ~content_type:"text/plain; charset=utf-8"
          (Printf.sprintf "method %s not allowed; this is a GET-only plane\n"
             p_method)
      else (
        (* ignore any query string: /metrics?x=1 is /metrics *)
        let path =
          match String.index_opt p_path '?' with
          | Some i -> String.sub p_path 0 i
          | None -> p_path
        in
        match path with
        | "/healthz" ->
          respond fd ~code:200 ~content_type:"text/plain; charset=utf-8" "ok\n"
        | "/metrics" ->
          respond fd ~code:200
            ~content_type:"text/plain; version=0.0.4; charset=utf-8"
            (handlers.h_metrics ())
        | "/statusz" ->
          respond fd ~code:200 ~content_type:"application/json"
            (handlers.h_statusz ())
        | _ ->
          respond fd ~code:404 ~content_type:"text/plain; charset=utf-8"
            (Printf.sprintf "no handler for %s (try /metrics, /healthz, /statusz)\n"
               path)))

let valid_port p = p >= 0 && p <= 65535

let start ?(registry = R.null) ~port:requested handlers =
  let err fmt =
    Format.kasprintf
      (fun m ->
        Error
          (D.diagf ~code:"RF601" D.Error (D.Http (string_of_int requested)) "%s" m))
      fmt
  in
  if not (valid_port requested) then
    err "telemetry port %d out of range (0..65535; 0 picks a free port)" requested
  else
    match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error (e, _, _) ->
      err "cannot create telemetry socket: %s" (Unix.error_message e)
    | fd -> (
      match
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, requested));
        Unix.listen fd 16
      with
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with _ -> ());
        err "cannot bind telemetry port %d: %s" requested (Unix.error_message e)
      | () ->
        let actual =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> requested
        in
        let m_requests =
          R.counter registry ~help:"Telemetry HTTP requests served"
            "rfloor_telemetry_requests_total"
        in
        let m_bad =
          R.counter registry
            ~help:"Malformed telemetry HTTP requests answered 400 (RF602)"
            "rfloor_telemetry_bad_requests_total"
        in
        let srv_stop = Sync.Atomic.make ~name:"obsv.http.stop" false in
        let srv_domain =
          Sync.Domain.spawn ~name:"obsv.http" (fun () ->
              let rec loop () =
                if not (Sync.Atomic.get srv_stop) then (
                  match Unix.accept fd with
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
                  | exception Unix.Unix_error _ ->
                    if not (Sync.Atomic.get srv_stop) then loop ()
                  | conn, _ ->
                    if Sync.Atomic.get srv_stop then (
                      (try Unix.close conn with _ -> ()))
                    else begin
                      R.Counter.incr m_requests;
                      (try
                         handle handlers
                           ~on_bad:(fun _ -> R.Counter.incr m_bad)
                           conn
                       with _ -> ());
                      (try Unix.close conn with _ -> ());
                      loop ()
                    end)
              in
              loop ())
        in
        Ok { srv_fd = fd; srv_port = actual; srv_stop; srv_domain })

let stop t =
  Sync.Atomic.set t.srv_stop true;
  (* unblock the accept with a throwaway connection to ourselves *)
  (try
     let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.srv_port))
      with _ -> ());
     try Unix.close fd with _ -> ()
   with _ -> ());
  Sync.Domain.join t.srv_domain;
  try Unix.close t.srv_fd with _ -> ()

(* ------------------------------------------------------------------ *)
(* a matching client, so the shell gate needs no curl *)

let with_connection ~port f =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "socket: %s" (Unix.error_message e))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        match
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
        with
        | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "connect 127.0.0.1:%d: %s" port
               (Unix.error_message e))
        | () ->
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO io_timeout;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO io_timeout;
          f fd)

let read_response fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Ok (Buffer.contents buf)
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "timed out reading the response"
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "read: %s" (Unix.error_message e))
  in
  go ()

let request_raw ~port bytes =
  with_connection ~port (fun fd ->
      write_all fd bytes;
      read_response fd)

let split_response text =
  let rec find i =
    if i + 3 >= String.length text then None
    else if
      text.[i] = '\r' && text.[i + 1] = '\n' && text.[i + 2] = '\r'
      && text.[i + 3] = '\n'
    then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Error "response has no header/body separator"
  | Some i ->
    let head = String.sub text 0 i in
    let body = String.sub text (i + 4) (String.length text - i - 4) in
    let status_line =
      match String.index_opt head '\r' with
      | Some j -> String.sub head 0 j
      | None -> head
    in
    (match String.split_on_char ' ' status_line with
    | version :: code :: _
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
      match int_of_string_opt code with
      | Some c -> Ok (c, body)
      | None -> Error (Printf.sprintf "unparsable status line %S" status_line))
    | _ -> Error (Printf.sprintf "unparsable status line %S" status_line))

let get ~port path =
  match
    request_raw ~port
      (Printf.sprintf "GET %s HTTP/1.1\r\nHost: 127.0.0.1:%d\r\nConnection: close\r\n\r\n"
         path port)
  with
  | Error _ as e -> e
  | Ok text -> split_response text
