(* The /statusz document: one versioned JSON object describing what
   this process is doing right now.  Rendered from plain values so the
   obsv library needs no dependency on lib/service — the service layer
   hands us a pool_view, we hand back the JSON. *)

module J = Rfloor_metrics.Json

let version = "rfloor-statusz/1"

type pool_view = {
  pv_workers : string list;  (* per-worker state, e.g. "idle" / "job 3" *)
  pv_queued : int;
  pv_running : int;
  pv_finished : int;
  pv_cache_hits : int;
  pv_cache_misses : int;
  pv_cache_size : int;
}

type layout_view = {
  lv_device : string;
  lv_modules : int;
  lv_occupancy : float;  (* occupied fraction of the usable tiles *)
  lv_fragmentation : float;  (* 1 - largest free rect / total free *)
  lv_free_rects : int;
}

let opt_num = function Some v -> J.Num v | None -> J.Null

let job_json (s : Progress.snapshot) =
  J.Obj
    ([
       ("id", J.Str s.Progress.p_id);
       ("strategy", J.Str s.Progress.p_strategy);
       ("elapsed_s", J.Num s.Progress.p_elapsed);
       ("nodes", J.Num (float_of_int s.Progress.p_nodes));
       ("lp_iterations", J.Num (float_of_int s.Progress.p_lp_iterations));
       ("incumbent", opt_num s.Progress.p_incumbent);
       ("bound", opt_num s.Progress.p_bound);
       ("gap", opt_num s.Progress.p_gap);
     ]
    @
    match s.Progress.p_members with
    | [] -> []
    | members ->
      [
        ( "members",
          J.Arr
            (List.map
               (fun (label, nodes) ->
                 J.Obj
                   [
                     ("label", J.Str label);
                     ("nodes", J.Num (float_of_int nodes));
                   ])
               members) );
      ])

let render ?pool ?layout ?(jobs = []) ?(cache_json = None) () =
  let pool_fields =
    match pool with
    | None -> []
    | Some pv ->
      [
        ( "pool",
          J.Obj
            [
              ( "workers",
                J.Arr (List.map (fun s -> J.Str s) pv.pv_workers) );
              ("queued", J.Num (float_of_int pv.pv_queued));
              ("running", J.Num (float_of_int pv.pv_running));
              ("finished", J.Num (float_of_int pv.pv_finished));
              ( "cache",
                J.Obj
                  [
                    ("hits", J.Num (float_of_int pv.pv_cache_hits));
                    ("misses", J.Num (float_of_int pv.pv_cache_misses));
                    ("size", J.Num (float_of_int pv.pv_cache_size));
                  ] );
            ] );
      ]
  in
  let layout_fields =
    match layout with
    | None -> []
    | Some lv ->
      [
        ( "layout",
          J.Obj
            [
              ("device", J.Str lv.lv_device);
              ("modules", J.Num (float_of_int lv.lv_modules));
              ("occupancy", J.Num lv.lv_occupancy);
              ("fragmentation", J.Num lv.lv_fragmentation);
              ("free_rects", J.Num (float_of_int lv.lv_free_rects));
            ] );
      ]
  in
  let extra = match cache_json with Some j -> [ ("extra", j) ] | None -> [] in
  J.to_string
    (J.Obj
       ([
          ("v", J.Str version);
          ("uptime_s", J.Num (Build_info.uptime ()));
          ("version", J.Str Build_info.version);
        ]
       @ pool_fields @ layout_fields
       @ [ ("jobs", J.Arr (List.map job_json jobs)) ]
       @ extra))
  ^ "\n"

(* A light validator for tests and the shell gate: the document must
   parse, carry the right version tag, and have a numeric uptime and a
   jobs array whose elements each carry id/strategy/elapsed. *)
let validate text =
  let ( let* ) = Result.bind in
  let* j = J.parse (String.trim text) in
  let* v = J.get_string "v" j in
  if v <> version then
    Error (Printf.sprintf "statusz version %S, wanted %S" v version)
  else
    let* _up = J.get_num "uptime_s" j in
    let* () =
      match J.member "layout" j with
      | None -> Ok ()
      | Some lay ->
        let* _ = J.get_string "device" lay in
        let* _ = J.get_num "occupancy" lay in
        let* _ = J.get_num "fragmentation" lay in
        Ok ()
    in
    let* jobs = J.get_arr "jobs" j in
    let check_job job =
      let* _ = J.get_string "id" job in
      let* _ = J.get_string "strategy" job in
      let* _ = J.get_num "elapsed_s" job in
      Ok ()
    in
    let rec check i = function
      | [] -> Ok ()
      | job :: rest -> (
        match check_job job with
        | Ok () -> check (i + 1) rest
        | Error e -> Error (Printf.sprintf "job %d: %s" (i + 1) e))
    in
    check 0 jobs
