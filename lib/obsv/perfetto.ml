(* Chrome/Perfetto trace-event export.

   The JSONL trace schema (one Rfloor_trace event per line) maps onto
   the trace-event JSON object format that chrome://tracing and
   ui.perfetto.dev load directly:

     Span_start/Span_end  -> ph "B"/"E" duration slices
     Node_explored        -> ph "C" per-worker cumulative node counter
     Incumbent            -> ph "C" objective counter + an instant
     everything else      -> ph "i" thread-scoped instants with args

   Workers become threads of one "rfloor" process; portfolio members
   (worker ids striped by Rfloor_trace.subtracer, slot = id/1000) get
   their member label as the thread name, so each member is its own
   track.  Timestamps are microseconds, the format's native unit. *)

module T = Rfloor_trace
module J = Rfloor_metrics.Json

let member_prefix = "member:"
let slot_of_worker w = w / 1000

let us at = Float.round (at *. 1e6)

(* ------------------------------------------------------------------ *)
(* export *)

let member_labels events =
  List.fold_left
    (fun acc (e : T.Event.t) ->
      match e.T.Event.payload with
      | T.Event.Restart { stage } ->
        let n = String.length member_prefix in
        let slot = slot_of_worker e.T.Event.worker in
        if
          slot > 0
          && String.length stage > n
          && String.sub stage 0 n = member_prefix
          && not (List.mem_assoc slot acc)
        then (slot, String.sub stage n (String.length stage - n)) :: acc
        else acc
      | _ -> acc)
    [] events

let thread_name labels tid =
  let slot = slot_of_worker tid in
  let local = tid mod 1000 in
  if slot = 0 then Printf.sprintf "worker %d" tid
  else
    let base =
      match List.assoc_opt slot labels with
      | Some l -> l
      | None -> Printf.sprintf "member %d" slot
    in
    if local = 0 then base else Printf.sprintf "%s/w%d" base local

let base_fields ?(pid = 1) ~tid ~ph ~name at =
  [
    ("name", J.Str name);
    ("ph", J.Str ph);
    ("pid", J.Num (float_of_int pid));
    ("tid", J.Num (float_of_int tid));
    ("ts", J.Num (us at));
  ]

let meta_event ~tid key value =
  J.Obj
    [
      ("name", J.Str key);
      ("ph", J.Str "M");
      ("pid", J.Num 1.);
      ("tid", J.Num (float_of_int tid));
      ("args", J.Obj [ ("name", J.Str value) ]);
    ]

let instant ~tid ~name ?(args = []) at =
  J.Obj
    (base_fields ~tid ~ph:"i" ~name at
    @ [ ("s", J.Str "t") ]
    @ (if args = [] then [] else [ ("args", J.Obj args) ]))

let counter ~tid ~name ~series value at =
  J.Obj
    (base_fields ~tid ~ph:"C" ~name at
    @ [ ("args", J.Obj [ (series, J.Num value) ]) ])

let event_json nodes_per_worker (e : T.Event.t) =
  let tid = e.T.Event.worker in
  let at = e.T.Event.at in
  match e.T.Event.payload with
  | T.Event.Span_start ph ->
    Some (J.Obj (base_fields ~tid ~ph:"B" ~name:(T.Event.phase_name ph) at))
  | T.Event.Span_end ph ->
    Some (J.Obj (base_fields ~tid ~ph:"E" ~name:(T.Event.phase_name ph) at))
  | T.Event.Node_explored { depth; _ } ->
    let count =
      match Hashtbl.find_opt nodes_per_worker tid with
      | Some r ->
        incr r;
        !r
      | None ->
        Hashtbl.add nodes_per_worker tid (ref 1);
        1
    in
    ignore depth;
    Some
      (counter ~tid
         ~name:(Printf.sprintf "nodes(w%d)" tid)
         ~series:"nodes" (float_of_int count) at)
  | T.Event.Incumbent { objective; node } ->
    Some
      (instant ~tid ~name:"incumbent"
         ~args:
           [ ("objective", J.Num objective); ("node", J.Num (float_of_int node)) ]
         at)
  | T.Event.Cut_added { rounds; cuts } ->
    Some
      (instant ~tid ~name:"cuts"
         ~args:
           [
             ("rounds", J.Num (float_of_int rounds));
             ("cuts", J.Num (float_of_int cuts));
           ]
         at)
  | T.Event.Steal { tasks } ->
    Some
      (instant ~tid ~name:"steal"
         ~args:[ ("tasks", J.Num (float_of_int tasks)) ]
         at)
  | T.Event.Worker_idle -> Some (instant ~tid ~name:"idle" at)
  | T.Event.Restart { stage } ->
    Some (instant ~tid ~name:"restart" ~args:[ ("stage", J.Str stage) ] at)
  | T.Event.Stopped { reason } ->
    Some (instant ~tid ~name:"stopped" ~args:[ ("reason", J.Str reason) ] at)
  | T.Event.Lp_refactor { reason } ->
    Some (instant ~tid ~name:"lp_refactor" ~args:[ ("reason", J.Str reason) ] at)
  | T.Event.Lp_warm { result } ->
    Some (instant ~tid ~name:"lp_warm" ~args:[ ("result", J.Str result) ] at)
  | T.Event.Move { module_name; src; dst } ->
    Some
      (instant ~tid ~name:"move"
         ~args:
           [ ("module", J.Str module_name); ("src", J.Str src);
             ("dst", J.Str dst) ]
         at)
  | T.Event.Warning msg ->
    Some (instant ~tid ~name:"warning" ~args:[ ("text", J.Str msg) ] at)
  | T.Event.Message msg ->
    Some (instant ~tid ~name:"message" ~args:[ ("text", J.Str msg) ] at)

let of_events events =
  let labels = member_labels events in
  let tids =
    List.sort_uniq compare (List.map (fun (e : T.Event.t) -> e.T.Event.worker) events)
  in
  let meta =
    meta_event ~tid:0 "process_name" "rfloor"
    :: List.map (fun tid -> meta_event ~tid "thread_name" (thread_name labels tid)) tids
  in
  let nodes_per_worker = Hashtbl.create 8 in
  let body = List.filter_map (event_json nodes_per_worker) events in
  J.to_string
    (J.Obj
       [
         ("traceEvents", J.Arr (meta @ body));
         ("displayTimeUnit", J.Str "ms");
       ])
  ^ "\n"

let of_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec parse i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then parse (i + 1) acc rest
      else (
        match T.Event.of_json line with
        | Ok e -> parse (i + 1) (e :: acc) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
  in
  match parse 1 [] lines with
  | Error _ as e -> e
  | Ok events -> Ok (of_events events)

(* ------------------------------------------------------------------ *)
(* validation: loads in Perfetto = parses as JSON, has a traceEvents
   array, every event has a known ph with the fields that ph needs, and
   B/E slices nest properly per thread (the same balance rule RF430
   enforces on the JSONL side). *)

let validate text =
  let ( let* ) = Result.bind in
  let* j = J.parse (String.trim text) in
  let* events = J.get_arr "traceEvents" j in
  let stacks : (float * float, string list) Hashtbl.t = Hashtbl.create 8 in
  let key ev =
    let* pid = J.get_num "pid" ev in
    let* tid = J.get_num "tid" ev in
    Ok (pid, tid)
  in
  let check_ts ev =
    let* ts = J.get_num "ts" ev in
    if ts < 0. || not (Float.is_finite ts) then
      Error (Printf.sprintf "bad ts %g" ts)
    else Ok ()
  in
  let rec go i = function
    | [] -> Ok ()
    | ev :: rest -> (
      let here = Printf.sprintf "traceEvents[%d]" i in
      let r =
        let* ph = J.get_string "ph" ev in
        match ph with
        | "M" ->
          let* _ = J.get_string "name" ev in
          Ok ()
        | "B" ->
          let* name = J.get_string "name" ev in
          let* k = key ev in
          let* () = check_ts ev in
          let stack = Option.value ~default:[] (Hashtbl.find_opt stacks k) in
          Hashtbl.replace stacks k (name :: stack);
          Ok ()
        | "E" ->
          let* name = J.get_string "name" ev in
          let* k = key ev in
          let* () = check_ts ev in
          (match Hashtbl.find_opt stacks k with
          | Some (top :: stack) ->
            if top = name then begin
              Hashtbl.replace stacks k stack;
              Ok ()
            end
            else Error (Printf.sprintf "E %S closes open slice %S" name top)
          | _ -> Error (Printf.sprintf "E %S with no open slice" name))
        | "i" | "C" ->
          let* _ = J.get_string "name" ev in
          let* _ = key ev in
          check_ts ev
        | other -> Error (Printf.sprintf "unknown ph %S" other)
      in
      match r with
      | Ok () -> go (i + 1) rest
      | Error e -> Error (Printf.sprintf "%s: %s" here e))
  in
  let* () = go 0 events in
  Hashtbl.fold
    (fun (_, tid) stack acc ->
      match (acc, stack) with
      | Error _, _ | _, [] -> acc
      | Ok (), top :: _ ->
        Error (Printf.sprintf "thread %g ends with slice %S still open" tid top))
    stacks (Ok ())

(* ------------------------------------------------------------------ *)
(* phase dominance and the critical path *)

type span = {
  sp_phase : T.Event.phase;
  sp_start : float;
  sp_end : float;
  sp_children : span list;
}

let inclusive s = s.sp_end -. s.sp_start

let self s =
  inclusive s -. List.fold_left (fun acc c -> acc +. inclusive c) 0. s.sp_children

(* Rebuild each worker's span forest from its B/E stream.  Spans left
   open (a truncated trace) close at the last timestamp seen. *)
let forests events =
  let per_worker : (int, T.Event.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let last_ts = ref 0. in
  List.iter
    (fun (e : T.Event.t) ->
      if e.T.Event.at > !last_ts then last_ts := e.T.Event.at;
      match e.T.Event.payload with
      | T.Event.Span_start _ | T.Event.Span_end _ -> (
        match Hashtbl.find_opt per_worker e.T.Event.worker with
        | Some r -> r := e :: !r
        | None -> Hashtbl.add per_worker e.T.Event.worker (ref [ e ]))
      | _ -> ())
    events;
  let build evs =
    (* stack of (phase, start, completed children so far) *)
    let rec close_all roots = function
      | [] -> List.rev roots
      | (ph, start, kids) :: stack ->
        let sp =
          { sp_phase = ph; sp_start = start; sp_end = !last_ts;
            sp_children = List.rev kids }
        in
        (match stack with
        | (ph', start', kids') :: stack' ->
          close_all roots ((ph', start', sp :: kids') :: stack')
        | [] -> close_all (sp :: roots) [])
    in
    let rec go roots stack = function
      | [] -> close_all roots stack
      | (e : T.Event.t) :: rest -> (
        match e.T.Event.payload with
        | T.Event.Span_start ph -> go roots ((ph, e.T.Event.at, []) :: stack) rest
        | T.Event.Span_end ph -> (
          match stack with
          | (ph', start, kids) :: stack' when ph' = ph ->
            let sp =
              { sp_phase = ph; sp_start = start; sp_end = e.T.Event.at;
                sp_children = List.rev kids }
            in
            (match stack' with
            | (ph'', start'', kids'') :: stack'' ->
              go roots ((ph'', start'', sp :: kids'') :: stack'') rest
            | [] -> go (sp :: roots) [] rest)
          | _ ->
            (* mismatched end: drop it, keep going — report, not lint *)
            go roots stack rest)
        | _ -> go roots stack rest)
    in
    go [] [] (List.rev !evs)
  in
  Hashtbl.fold (fun w r acc -> (w, build r) :: acc) per_worker []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let report ?(critical_path = false) events =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let fs = forests events in
  if fs = [] then out "no spans in trace\n"
  else begin
    (* phase dominance: inclusive and self seconds per phase, summed
       over every span of that phase across all workers *)
    let tally : (string, float * float) Hashtbl.t = Hashtbl.create 16 in
    let rec walk sp =
      let name = T.Event.phase_name sp.sp_phase in
      let i0, s0 =
        Option.value ~default:(0., 0.) (Hashtbl.find_opt tally name)
      in
      Hashtbl.replace tally name (i0 +. inclusive sp, s0 +. self sp);
      List.iter walk sp.sp_children
    in
    List.iter (fun (_, roots) -> List.iter walk roots) fs;
    let rows =
      Hashtbl.fold (fun name (i, s) acc -> (name, i, s) :: acc) tally []
      |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
    in
    out "phase dominance (self-time order):\n";
    out "  %-14s %12s %12s\n" "phase" "self (s)" "incl (s)";
    List.iter (fun (name, i, s) -> out "  %-14s %12.4f %12.4f\n" name s i) rows;
    if critical_path then begin
      (* the worker whose root spans cover the most time, then a greedy
         descent into the biggest child at each level *)
      let total roots = List.fold_left (fun a sp -> a +. inclusive sp) 0. roots in
      let w, roots =
        List.fold_left
          (fun ((_, br) as best) ((_, r) as cand) ->
            if total r > total br then cand else best)
          (List.hd fs) (List.tl fs)
      in
      out "critical path (worker %d, %.4fs):\n" w (total roots);
      let biggest = function
        | [] -> None
        | sp :: rest ->
          Some
            (List.fold_left
               (fun best c -> if inclusive c > inclusive best then c else best)
               sp rest)
      in
      let rec descend depth = function
        | None -> ()
        | Some sp ->
          out "  %s%s  %.4fs (self %.4fs)\n"
            (String.make (2 * depth) ' ')
            (T.Event.phase_name sp.sp_phase)
            (inclusive sp) (self sp);
          descend (depth + 1) (biggest sp.sp_children)
      in
      descend 0 (biggest roots)
    end
  end;
  Buffer.contents buf
