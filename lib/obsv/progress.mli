(** Streamed solve progress.

    A progress {!entry} folds the {!Rfloor_trace} event stream of one
    job into a small monotone summary (incumbent, dual bound, gap,
    nodes, LP iterations, portfolio-member attribution) that can be
    snapshotted at any time from any domain.  Attach {!sink} to the
    job's tracer (tee it with whatever sink the job already has) and
    the fold happens inline with event emission — no polling thread
    per job.

    The reported series are monotone by construction: the incumbent
    only improves, the bound used for the gap only tightens, and the
    gap itself is clamped to never exceed its previous reported value,
    so consumers can plot the stream without smoothing.

    One shared {!Ticker} domain drives all rate-limited emission:
    subscribe a callback per progress-enabled job, unsubscribe when its
    result is out.  Entries also aggregate on a {!board} so the
    telemetry [/statusz] endpoint can list every in-flight job. *)

type entry
type board

type snapshot = {
  p_id : string;
  p_strategy : string;
  p_elapsed : float;  (** seconds since {!register} *)
  p_nodes : int;
  p_lp_iterations : int;  (** summed per-worker cumulative counts *)
  p_incumbent : float option;  (** best (lowest) objective seen *)
  p_bound : float option;  (** tightest finite relaxation bound seen *)
  p_gap : float option;
      (** [(incumbent - bound) / max 1 |incumbent|], clamped
          non-increasing across snapshots; [None] until both ends exist *)
  p_members : (string * int) list;
      (** portfolio member label -> nodes attributed to it, from the
          [member:LABEL] restart markers and the worker-id striping of
          {!Rfloor_trace.subtracer} *)
}

val create_board : unit -> board

val register : board -> id:string -> strategy:string -> entry
(** Adds a live entry; its clock starts now. *)

val sink : entry -> Rfloor_trace.sink
(** The event fold.  Tee onto the job's tracer sink. *)

val snapshot : entry -> snapshot
val live : entry -> bool

val finish : entry -> unit
(** Marks the entry dead (ticker callbacks should check {!live} under
    the same output lock that serializes their frames, so no progress
    frame can follow the job's result frame). *)

val remove : board -> entry -> unit
(** {!finish} + drop from the board. *)

val active : board -> snapshot list
(** Snapshots of the live entries (for [/statusz]). *)

(** {1 Interval hygiene (RF603)} *)

val min_interval : float
val max_interval : float
val default_interval : float

val clamp_interval :
  id:string -> float -> float * Rfloor_diag.Diagnostic.t list
(** Clamps a requested [interval_s] into
    [[min_interval, max_interval]]; NaN and non-positive values fall
    back to {!default_interval}.  Any adjustment is reported as an
    RF603 warning naming the job. *)

(** {1 The shared ticker} *)

module Ticker : sig
  type t

  val create : unit -> t
  (** Spawns the one ticker domain ({!Rfloor_sync} primitives, ~50 ms
      firing granularity). *)

  val subscribe : t -> interval:float -> (unit -> unit) -> int
  (** The callback fires every [interval] seconds (first firing one
      interval from now) on the ticker domain; exceptions are
      swallowed.  Returns the subscription id. *)

  val unsubscribe : t -> int -> unit
  val stop : t -> unit
  (** Joins the domain.  Call once, after unsubscribing is moot. *)
end
