(** Chrome/Perfetto timeline export.

    Converts an {!Rfloor_trace} event stream into the trace-event JSON
    object format that [chrome://tracing] and [ui.perfetto.dev] load
    directly: spans become ["B"]/["E"] duration slices, node
    exploration becomes a per-worker cumulative counter track, and
    everything else becomes thread-scoped instants.  Workers map to
    threads of one ["rfloor"] process; portfolio members (worker ids
    striped by {!Rfloor_trace.subtracer}) are named tracks carrying
    their member label.  Timestamps are microseconds. *)

val of_events : Rfloor_trace.Event.t list -> string
(** The full document ([{"traceEvents": [...]}]), newline-terminated. *)

val of_jsonl : string -> (string, string) result
(** Converts a JSONL trace (the [--trace jsonl:FILE] output; blank
    lines ignored) — errors name the offending line. *)

val validate : string -> (unit, string) result
(** Checks a purported trace-event document: parses as JSON, has a
    [traceEvents] array, every event carries the fields its [ph]
    needs, and ["B"]/["E"] slices nest and balance per thread (the
    same balance rule the JSONL validator enforces). *)

val report : ?critical_path:bool -> Rfloor_trace.Event.t list -> string
(** Phase-dominance summary (self/inclusive seconds per phase, sorted
    by self time); with [~critical_path:true], also the greedy
    biggest-child descent through the busiest worker's span tree. *)
