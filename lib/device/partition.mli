(** Columnar FPGA partitioning (Section III.B of the paper).

    Partitions the device into {e columnar portions} — maximal
    full-height rectangles of a single tile type — after replacing the
    tiles under forbidden areas with same-column substitutes (step 1 of
    the procedure).  Fails when the device is not columnar-partitionable
    (step 4), exactly as the paper's procedure does. *)

type portion = {
  index : int;  (** 1-based, ordered left to right (Property .4) *)
  x1 : int;  (** leftmost column *)
  x2 : int;  (** rightmost column *)
  tile : Resource.tile_type;
  tid : int;  (** tile-type id in [1 .. n_types] *)
}

val portion_width : portion -> int

type t = {
  grid : Grid.t;
  portions : portion array;  (** left-to-right *)
  forbidden : Rect.t list;
  n_types : int;
  types : Resource.tile_type array;  (** [types.(tid - 1)] is the type *)
}

val columnar : Grid.t -> (t, Rfloor_diag.Diagnostic.t) result
(** Runs the revised partitioning procedure.  [Error] — an [RF010]
    diagnostic — when some column mixes tile types outside forbidden
    areas (the portion cannot be extended to the bottom of the FPGA),
    or when an entire column is forbidden (step 1 has no replacement
    tile). *)

val columnar_exn : Grid.t -> t

val column_type : t -> int -> Resource.tile_type
(** Effective (post step 1) type of a column, 1-based. *)

val column_tid : t -> int -> int

val portion_of_column : t -> int -> portion

val width : t -> int
val height : t -> int

val frames_of_demand : t -> Resource.demand -> int

val type_sequence : t -> (int * int) list
(** [(canonical_tid, width)] per portion, left to right, with tile ids
    renumbered by order of first appearance.  Two columnar partitions
    have equal sequences iff their portion structures are identical up
    to a renaming of tile types that preserves the left-to-right
    sequence (the equivalence behind Properties .3/.4 — the basis of
    {!Rfloor_service} instance canonicalization). *)

val check_adjacent_types_differ : t -> bool
(** Property .3: adjacent columnar portions have different types. *)

val check_ordered : t -> bool
(** Property .4: portions are indexed [1..n] left to right, contiguous,
    starting at column 1 and ending at the device width. *)

val check_cover_disjoint : t -> bool
(** Portions tile the device: every column in exactly one portion. *)

val pp : Format.formatter -> t -> unit
