module D = Rfloor_diag.Diagnostic

let device_error ?path msg =
  let location = match path with Some p -> D.File p | None -> D.Device in
  D.diagf ~code:"RF301" D.Error location "%s" msg

let design_error ?path msg =
  let location = match path with Some p -> D.File p | None -> D.Design in
  D.diagf ~code:"RF302" D.Error location "%s" msg

let lines_of text =
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let prefixed prefix line =
  let n = String.length prefix in
  if String.length line >= n && String.sub line 0 n = prefix then
    Some (String.trim (String.sub line n (String.length line - n)))
  else None

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_grid text =
  try
    let name = ref "device" and rows = ref [] and forbidden = ref [] in
    List.iter
      (fun line ->
        match prefixed "name:" line with
        | Some n -> name := n
        | None -> (
          match prefixed "forbidden:" line with
          | Some spec -> (
            match List.map int_of_string (words spec) with
            | [ x; y; w; h ] -> forbidden := Rect.make ~x ~y ~w ~h :: !forbidden
            | _ -> failwith "forbidden: expects 'x y w h'")
          | None -> rows := line :: !rows))
      (lines_of text);
    if !rows = [] then Error (device_error "device file has no tile rows")
    else
      Ok
        (Grid.of_strings ~name:!name ~forbidden:(List.rev !forbidden)
           (List.rev !rows))
  with
  | Failure msg -> Error (device_error msg)
  | Invalid_argument msg -> Error (device_error msg)

let parse_kind = function
  | "clb" | "c" -> Some Resource.Clb
  | "bram" | "b" -> Some Resource.Bram
  | "dsp" | "d" -> Some Resource.Dsp
  | "io" | "i" -> Some Resource.Io
  | _ -> None

let parse_demand_item item =
  match String.split_on_char '=' item with
  | [ k; n ] -> (
    match (parse_kind (String.lowercase_ascii k), int_of_string_opt n) with
    | Some kind, Some count when count > 0 -> Some (kind, count)
    | _ -> None)
  | _ -> None

let parse_spec text =
  try
    let name = ref "design" in
    let regions = ref [] and nets = ref [] and relocs = ref [] in
    List.iter
      (fun line ->
        match prefixed "name:" line with
        | Some n -> name := n
        | None -> (
          match words line with
          | "region" :: rname :: items ->
            let demand = List.filter_map parse_demand_item items in
            if demand = [] || List.length demand <> List.length items then
              failwith ("bad region line: " ^ line);
            regions := { Spec.r_name = rname; demand } :: !regions
          | [ "net"; a; b ] ->
            nets := { Spec.src = a; dst = b; weight = 1. } :: !nets
          | [ "net"; a; b; w ] ->
            nets := { Spec.src = a; dst = b; weight = float_of_string w } :: !nets
          | [ "reloc"; target; copies; "hard" ] ->
            relocs :=
              { Spec.target; copies = int_of_string copies; mode = Spec.Hard }
              :: !relocs
          | [ "reloc"; target; copies; "soft"; w ] ->
            relocs :=
              {
                Spec.target;
                copies = int_of_string copies;
                mode = Spec.Soft (float_of_string w);
              }
              :: !relocs
          | _ -> failwith ("unrecognized design line: " ^ line)))
      (lines_of text);
    Ok
      (Spec.make ~name:!name ~nets:(List.rev !nets) ~relocs:(List.rev !relocs)
         (List.rev !regions))
  with
  | Failure msg -> Error (design_error msg)
  | Invalid_argument msg -> Error (design_error msg)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_grid path =
  match read_file path with
  | exception Sys_error e -> Error (device_error ~path e)
  | text ->
    Result.map_error
      (fun d -> { d with D.location = D.File path })
      (parse_grid text)

let load_spec path =
  match read_file path with
  | exception Sys_error e -> Error (design_error ~path e)
  | text ->
    Result.map_error
      (fun d -> { d with D.location = D.File path })
      (parse_spec text)

let grid_to_string g =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "name: %s\n" (Grid.name g));
  for row = 1 to Grid.height g do
    for col = 1 to Grid.width g do
      let ty = Grid.tile g col row in
      Buffer.add_char b (Char.lowercase_ascii (Resource.kind_to_char ty.Resource.kind))
    done;
    Buffer.add_char b '\n'
  done;
  List.iter
    (fun (r : Rect.t) ->
      Buffer.add_string b
        (Printf.sprintf "forbidden: %d %d %d %d\n" r.Rect.x r.Rect.y r.Rect.w
           r.Rect.h))
    (Grid.forbidden g);
  Buffer.contents b

let spec_to_string (s : Spec.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "name: %s\n" s.Spec.s_name);
  List.iter
    (fun (r : Spec.region) ->
      Buffer.add_string b (Printf.sprintf "region %s" r.Spec.r_name);
      List.iter
        (fun (k, n) ->
          Buffer.add_string b
            (Printf.sprintf " %s=%d"
               (String.lowercase_ascii (Resource.kind_to_string k))
               n))
        r.Spec.demand;
      Buffer.add_char b '\n')
    s.Spec.regions;
  List.iter
    (fun (n : Spec.net) ->
      Buffer.add_string b
        (Printf.sprintf "net %s %s %g\n" n.Spec.src n.Spec.dst n.Spec.weight))
    s.Spec.nets;
  List.iter
    (fun (rr : Spec.reloc_req) ->
      match rr.Spec.mode with
      | Spec.Hard ->
        Buffer.add_string b
          (Printf.sprintf "reloc %s %d hard\n" rr.Spec.target rr.Spec.copies)
      | Spec.Soft w ->
        Buffer.add_string b
          (Printf.sprintf "reloc %s %d soft %g\n" rr.Spec.target rr.Spec.copies w))
    s.Spec.relocs;
  Buffer.contents b
