(** Plain-text formats for devices and designs, used by the CLI.

    Device file: one line of tile letters per row (['c'] CLB, ['b']
    BRAM, ['d'] DSP, ['i'] IO), plus optional directives:
    {v
    name: mydevice
    ccbccdccbc
    ccbccdccbc
    forbidden: 1 1 2 1
    v}

    Design file:
    {v
    name: mydesign
    region filter clb=2 bram=1
    region decoder clb=2 dsp=1
    net filter decoder 32
    reloc filter 2 hard
    reloc decoder 1 soft 1.5
    v}

    All parse/load errors are typed diagnostics: [RF301] for device
    files, [RF302] for design files.  The [load_*] variants carry the
    offending path in the diagnostic's location. *)

val parse_grid : string -> (Grid.t, Rfloor_diag.Diagnostic.t) result
val load_grid : string -> (Grid.t, Rfloor_diag.Diagnostic.t) result

val parse_spec : string -> (Spec.t, Rfloor_diag.Diagnostic.t) result
val load_spec : string -> (Spec.t, Rfloor_diag.Diagnostic.t) result

val grid_to_string : Grid.t -> string
(** Round-trippable rendering of a grid in the device file format. *)

val spec_to_string : Spec.t -> string
