type portion = {
  index : int;
  x1 : int;
  x2 : int;
  tile : Resource.tile_type;
  tid : int;
}

let portion_width p = p.x2 - p.x1 + 1

type t = {
  grid : Grid.t;
  portions : portion array;
  forbidden : Rect.t list;
  n_types : int;
  types : Resource.tile_type array;
}

(* Step 1: the effective type of each column after replacing forbidden
   tiles with a same-column tile outside any forbidden area. *)
let effective_column_types grid =
  let w = Grid.width grid and h = Grid.height grid in
  let col_type = Array.make w None in
  let err = ref None in
  for col = 1 to w do
    (* find a replacement type: any tile of this column outside the
       forbidden areas *)
    let repl = ref None in
    for row = 1 to h do
      if !repl = None && not (Grid.in_forbidden grid col row) then
        repl := Some (Grid.tile grid col row)
    done;
    match !repl with
    | None ->
      if !err = None then
        err := Some (Printf.sprintf "column %d is entirely forbidden" col)
    | Some ty -> col_type.(col - 1) <- Some ty
  done;
  match !err with
  | Some e ->
    Error
      (Rfloor_diag.Diagnostic.diagf ~code:"RF010" Rfloor_diag.Diagnostic.Error
         Rfloor_diag.Diagnostic.Device "%s" e)
  | None -> Ok (Array.map Option.get col_type)

(* Steps 2-5 of the procedure, specialised to the step-1 result: grow a
   portion right from the first free column while the type matches, and
   verify every covered column is uniform top to bottom (otherwise the
   portion cannot be "extended completely to the bottom" and the FPGA is
   not columnar-partitionable). *)
let columnar grid =
  match effective_column_types grid with
  | Error e -> Error e
  | Ok col_types ->
    let w = Grid.width grid and h = Grid.height grid in
    let uniform col =
      let expect = col_types.(col - 1) in
      let ok = ref true in
      for row = 1 to h do
        if
          (not (Grid.in_forbidden grid col row))
          && not (Resource.equal_tile_type (Grid.tile grid col row) expect)
        then ok := false
      done;
      !ok
    in
    let bad = ref None in
    for col = 1 to w do
      if !bad = None && not (uniform col) then bad := Some col
    done;
    (match !bad with
    | Some col ->
      Error
        (Rfloor_diag.Diagnostic.diagf ~code:"RF010"
           Rfloor_diag.Diagnostic.Error Rfloor_diag.Diagnostic.Device
           "column %d mixes tile types: portion cannot extend to the bottom"
           col)
    | None ->
      (* assign tile-type ids in order of first appearance *)
      let types = ref [] and n_types = ref 0 in
      let tid_of ty =
        match
          List.find_opt (fun (_, t) -> Resource.equal_tile_type t ty) !types
        with
        | Some (id, _) -> id
        | None ->
          incr n_types;
          types := (!n_types, ty) :: !types;
          !n_types
      in
      let portions = ref [] in
      let idx = ref 0 in
      let col = ref 1 in
      while !col <= w do
        let start = !col in
        let ty = col_types.(start - 1) in
        while !col <= w && Resource.equal_tile_type col_types.(!col - 1) ty do
          incr col
        done;
        incr idx;
        portions :=
          { index = !idx; x1 = start; x2 = !col - 1; tile = ty; tid = tid_of ty }
          :: !portions
      done;
      let types_arr = Array.make !n_types (Resource.tile_type Resource.Clb) in
      List.iter (fun (id, ty) -> types_arr.(id - 1) <- ty) !types;
      Ok
        {
          grid;
          portions = Array.of_list (List.rev !portions);
          forbidden = Grid.forbidden grid;
          n_types = !n_types;
          types = types_arr;
        })

let columnar_exn grid =
  match columnar grid with
  | Ok t -> t
  | Error d ->
    invalid_arg ("Partition.columnar: " ^ d.Rfloor_diag.Diagnostic.message)

let width t = Grid.width t.grid
let height t = Grid.height t.grid

let portion_of_column t col =
  if col < 1 || col > width t then
    invalid_arg (Printf.sprintf "Partition.portion_of_column: %d" col);
  (* portions are sorted left to right; binary search is overkill *)
  let rec find i =
    let p = t.portions.(i) in
    if col <= p.x2 then p else find (i + 1)
  in
  find 0

let column_type t col = (portion_of_column t col).tile
let column_tid t col = (portion_of_column t col).tid

let frames_of_demand t d =
  Resource.demand_frames ~frames:(Grid.frames t.grid) d

(* Canonical left-to-right tile-type sequence: tids renumbered by first
   appearance, so two columnar devices whose portion sequences differ
   only by a renaming of tile types map to the same list. *)
let type_sequence t =
  let next = ref 0 in
  let canon = Hashtbl.create 8 in
  Array.to_list
    (Array.map
       (fun p ->
         let c =
           match Hashtbl.find_opt canon p.tid with
           | Some c -> c
           | None ->
             incr next;
             Hashtbl.add canon p.tid !next;
             !next
         in
         (c, portion_width p))
       t.portions)

let check_adjacent_types_differ t =
  let ok = ref true in
  for i = 0 to Array.length t.portions - 2 do
    if
      Resource.equal_tile_type t.portions.(i).tile t.portions.(i + 1).tile
    then ok := false
  done;
  !ok

let check_ordered t =
  let n = Array.length t.portions in
  let ok = ref (n > 0) in
  for i = 0 to n - 1 do
    let p = t.portions.(i) in
    if p.index <> i + 1 || p.x1 > p.x2 then ok := false;
    if i > 0 && t.portions.(i - 1).x2 + 1 <> p.x1 then ok := false
  done;
  !ok && t.portions.(0).x1 = 1 && t.portions.(n - 1).x2 = width t

let check_cover_disjoint t =
  let w = width t in
  let covered = Array.make w 0 in
  Array.iter
    (fun p ->
      for col = p.x1 to p.x2 do
        covered.(col - 1) <- covered.(col - 1) + 1
      done)
    t.portions;
  Array.for_all (fun c -> c = 1) covered
  && Array.length t.portions > 0
  && t.portions.(0).x1 = 1
  && t.portions.(Array.length t.portions - 1).x2 = w

let pp ppf t =
  Format.fprintf ppf "%d portions over %dx%d (%d types):@." (Array.length t.portions)
    (width t) (height t) t.n_types;
  Array.iter
    (fun p ->
      Format.fprintf ppf "  P%d: cols %d-%d %a@." p.index p.x1 p.x2
        Resource.pp_tile_type p.tile)
    t.portions;
  List.iter
    (fun r -> Format.fprintf ppf "  forbidden %a@." Rect.pp r)
    t.forbidden
