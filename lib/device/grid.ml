type t = {
  g_name : string;
  g_width : int;
  g_height : int;
  g_tiles : Resource.tile_type array; (* row-major, index (row-1)*w + (col-1) *)
  g_frames : Resource.kind -> int;
  g_forbidden : Rect.t list;
}

let name g = g.g_name
let width g = g.g_width
let height g = g.g_height
let frames g = g.g_frames
let forbidden g = g.g_forbidden

let check_coords g col row fn =
  if col < 1 || col > g.g_width || row < 1 || row > g.g_height then
    invalid_arg
      (Printf.sprintf "Grid.%s: (%d,%d) outside %dx%d" fn col row g.g_width
         g.g_height)

let tile g col row =
  check_coords g col row "tile";
  g.g_tiles.(((row - 1) * g.g_width) + (col - 1))

let create ?(name = "device") ?(frames = Resource.default_frames)
    ?(forbidden = []) ~width ~height f =
  if width <= 0 || height <= 0 then
    invalid_arg "Grid.create: non-positive dimensions";
  List.iter
    (fun r ->
      if not (Rect.within ~width ~height r) then
        invalid_arg
          (Printf.sprintf "Grid.create: forbidden area %s outside device"
             (Rect.to_string r)))
    forbidden;
  let tiles =
    Array.init (width * height) (fun i ->
        let row = (i / width) + 1 and col = (i mod width) + 1 in
        f col row)
  in
  {
    g_name = name;
    g_width = width;
    g_height = height;
    g_tiles = tiles;
    g_frames = frames;
    g_forbidden = forbidden;
  }

let of_columns ?name ?frames ?forbidden ~rows types =
  let arr = Array.of_list types in
  let width = Array.length arr in
  if width = 0 then invalid_arg "Grid.of_columns: empty column list";
  create ?name ?frames ?forbidden ~width ~height:rows (fun col _ -> arr.(col - 1))

let of_strings ?name ?frames ?forbidden lines =
  match lines with
  | [] -> invalid_arg "Grid.of_strings: no rows"
  | first :: _ ->
    let width = String.length first in
    let height = List.length lines in
    let rows = Array.of_list lines in
    Array.iter
      (fun l ->
        if String.length l <> width then
          invalid_arg "Grid.of_strings: ragged rows")
      rows;
    create ?name ?frames ?forbidden ~width ~height (fun col row ->
        let c = rows.(row - 1).[col - 1] in
        match Resource.kind_of_char c with
        | Some k -> Resource.tile_type k
        | None -> invalid_arg (Printf.sprintf "Grid.of_strings: bad tile '%c'" c))

let in_forbidden g col row =
  List.exists (fun r -> Rect.contains_point r col row) g.g_forbidden

let rect_hits_forbidden g rect =
  List.exists (fun r -> Rect.overlaps r rect) g.g_forbidden

let count_tiles g rect =
  if not (Rect.within ~width:g.g_width ~height:g.g_height rect) then
    invalid_arg
      (Printf.sprintf "Grid.count_tiles: %s outside device" (Rect.to_string rect));
  let counts = List.map (fun k -> (k, ref 0)) Resource.all_kinds in
  for row = rect.Rect.y to Rect.y2 rect do
    for col = rect.Rect.x to Rect.x2 rect do
      let { Resource.kind; _ } = tile g col row in
      incr (List.assoc kind counts)
    done
  done;
  List.filter_map
    (fun (k, r) -> if !r > 0 then Some (k, !r) else None)
    counts

let total_tiles g =
  count_tiles g (Rect.make ~x:1 ~y:1 ~w:g.g_width ~h:g.g_height)

let usable_tiles g =
  let counts = List.map (fun k -> (k, ref 0)) Resource.all_kinds in
  for row = 1 to g.g_height do
    for col = 1 to g.g_width do
      if not (in_forbidden g col row) then
        let { Resource.kind; _ } = tile g col row in
        incr (List.assoc kind counts)
    done
  done;
  List.filter_map
    (fun (k, r) -> if !r > 0 then Some (k, !r) else None)
    counts

let free_intervals g ~occupied col =
  if col < 1 || col > g.g_width then
    invalid_arg
      (Printf.sprintf "Grid.free_intervals: column %d outside 1..%d" col
         g.g_width);
  let blocked row =
    in_forbidden g col row
    || List.exists (fun r -> Rect.contains_point r col row) occupied
  in
  let rec scan row acc =
    if row > g.g_height then List.rev acc
    else if blocked row then scan (row + 1) acc
    else begin
      let stop = ref row in
      while !stop < g.g_height && not (blocked (!stop + 1)) do
        incr stop
      done;
      scan (!stop + 2) ((row, !stop) :: acc)
    end
  in
  scan 1 []

let render ?(marks = []) g =
  let b = Buffer.create ((g.g_width + 1) * g.g_height) in
  for row = 1 to g.g_height do
    for col = 1 to g.g_width do
      let c =
        if in_forbidden g col row then '#'
        else
          match
            List.find_opt (fun (r, _) -> Rect.contains_point r col row) marks
          with
          | Some (_, m) -> m
          | None ->
            let ty = tile g col row in
            Char.lowercase_ascii (Resource.kind_to_char ty.Resource.kind)
      in
      Buffer.add_char b c
    done;
    if row < g.g_height then Buffer.add_char b '\n'
  done;
  Buffer.contents b

let pp ppf g =
  Format.fprintf ppf "%s (%dx%d)@.%s" g.g_name g.g_width g.g_height (render g)
