(** The FPGA tile grid: a [width] x [height] array of tile types plus
    the forbidden areas (hard blocks such as the PowerPC of the
    Virtex-5 FX70T) and the per-kind configuration-frame counts. *)

type t

val create :
  ?name:string ->
  ?frames:(Resource.kind -> int) ->
  ?forbidden:Rect.t list ->
  width:int ->
  height:int ->
  (int -> int -> Resource.tile_type) ->
  t
(** [create ~width ~height f] builds a grid where tile [(col, row)]
    (1-based) has type [f col row].
    @raise Invalid_argument if a forbidden rectangle falls outside the
    device. *)

val of_columns :
  ?name:string ->
  ?frames:(Resource.kind -> int) ->
  ?forbidden:Rect.t list ->
  rows:int ->
  Resource.tile_type list ->
  t
(** Uniform columns: every tile of column [i] has the [i]-th type. *)

val of_strings :
  ?name:string ->
  ?frames:(Resource.kind -> int) ->
  ?forbidden:Rect.t list ->
  string list ->
  t
(** ASCII rows, top row first: ['C'] CLB, ['B'] BRAM, ['D'] DSP,
    ['I'] IO.  A digit suffix is not supported; use {!create} for
    variants.  Rows must have equal length.
    @raise Invalid_argument on bad characters or ragged rows. *)

val name : t -> string
val width : t -> int
val height : t -> int
val tile : t -> int -> int -> Resource.tile_type
(** [tile g col row], 1-based. @raise Invalid_argument out of range. *)

val frames : t -> Resource.kind -> int
val forbidden : t -> Rect.t list

val in_forbidden : t -> int -> int -> bool
(** Is tile [(col,row)] covered by a forbidden area? *)

val rect_hits_forbidden : t -> Rect.t -> bool

val count_tiles : t -> Rect.t -> Resource.demand
(** Tiles per kind covered by a rectangle (forbidden tiles included —
    callers exclude forbidden-overlapping rectangles up front). *)

val total_tiles : t -> Resource.demand
(** Whole-device tile census. *)

val usable_tiles : t -> Resource.demand
(** Whole-device tile census excluding tiles under forbidden areas —
    the resources a placement can actually cover. *)

val free_intervals : t -> occupied:Rect.t list -> int -> (int * int) list
(** [free_intervals g ~occupied col] lists the maximal vertical runs
    [(row_lo, row_hi)] (1-based, inclusive, ascending) of column [col]
    whose tiles are neither forbidden nor covered by any rectangle in
    [occupied] — the columnar ground truth that online free-space
    tracking builds on.
    @raise Invalid_argument if [col] is out of range. *)

val render : ?marks:(Rect.t * char) list -> t -> string
(** ASCII picture of the device, one row per line, top row first.
    Tiles covered by a mark rectangle show the mark character;
    forbidden tiles show ['#']. *)

val pp : Format.formatter -> t -> unit
