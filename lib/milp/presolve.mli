(** Lightweight MILP presolve: iterated bound tightening.

    Works in place on variable bounds only (rows are never removed or
    rewritten), so solutions of the presolved problem are exactly
    solutions of the original.  Detects some infeasibilities early and
    shrinks big-M boxes, which directly helps {!Branch_bound}. *)

type outcome =
  | Tightened of int  (** number of bound changes applied *)
  | Proven_infeasible

val tighten :
  ?max_rounds:int ->
  ?trace:Rfloor_trace.t ->
  ?metrics:Rfloor_metrics.Registry.t ->
  Lp.t ->
  outcome
(** Activity-based bound tightening.  For each row, the residual
    activity range implies bounds on each participating variable;
    integer variables additionally have fractional bounds rounded.
    Iterates to a fixed point or [max_rounds] (default 10).  [trace]
    (default {!Rfloor_trace.disabled}) brackets the pass in a
    [Presolve] span and reports the outcome as a [Message].  [metrics]
    (default {!Rfloor_metrics.Registry.null}) counts tightening rounds
    ([rfloor_presolve_rounds_total]), bound changes
    ([rfloor_presolve_bound_changes_total]) and infeasibility proofs
    ([rfloor_presolve_infeasible_total]). *)
