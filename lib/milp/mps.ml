let fprintf = Format.fprintf

let sanitize = Lp_format.sanitize

let write ppf lp =
  let n = Lp.num_vars lp in
  let vname = Array.init n (fun v -> sanitize (Lp.var_name lp v)) in
  let rname = Array.init (Lp.num_constrs lp) (fun i -> sanitize (Lp.constr_name lp i)) in
  fprintf ppf "NAME %s@." (sanitize (Lp.name lp));
  (match Lp.objective_dir lp with
  | Lp.Minimize -> fprintf ppf "OBJSENSE@. MIN@."
  | Lp.Maximize -> fprintf ppf "OBJSENSE@. MAX@.");
  fprintf ppf "ROWS@. N obj@.";
  Lp.iter_constrs lp (fun i _ sense _ ->
      let tag = match sense with Lp.Le -> "L" | Lp.Ge -> "G" | Lp.Eq -> "E" in
      fprintf ppf " %s %s@." tag rname.(i));
  fprintf ppf "COLUMNS@.";
  (* column-wise: gather each variable's rows *)
  let cols = Array.make n [] in
  Lp.iter_constrs lp (fun i terms _ _ ->
      List.iter (fun (c, v) -> cols.(v) <- (rname.(i), c) :: cols.(v)) terms);
  let integer_marker = ref false in
  let set_marker ppf want =
    if want && not !integer_marker then begin
      fprintf ppf " MARKER 'MARKER' 'INTORG'@.";
      integer_marker := true
    end
    else if (not want) && !integer_marker then begin
      fprintf ppf " MARKER 'MARKER' 'INTEND'@.";
      integer_marker := false
    end
  in
  for v = 0 to n - 1 do
    let is_int = Lp.var_kind lp v <> Lp.Continuous in
    set_marker ppf is_int;
    let c = Lp.objective_coeff lp v in
    if c <> 0. then fprintf ppf " %s obj %.12g@." vname.(v) c;
    List.iter
      (fun (rn, coef) -> fprintf ppf " %s %s %.12g@." vname.(v) rn coef)
      (List.rev cols.(v))
  done;
  set_marker ppf false;
  fprintf ppf "RHS@.";
  Lp.iter_constrs lp (fun i _ _ rhs ->
      if rhs <> 0. then fprintf ppf " RHS %s %.12g@." rname.(i) rhs);
  if Lp.objective_constant lp <> 0. then
    (* MPS convention: the RHS of the objective row is the negated constant *)
    fprintf ppf " RHS obj %.12g@." (-.Lp.objective_constant lp);
  fprintf ppf "BOUNDS@.";
  for v = 0 to n - 1 do
    let lb = Lp.var_lb lp v and ub = Lp.var_ub lp v in
    if lb = ub then fprintf ppf " FX BND %s %.12g@." vname.(v) lb
    else begin
      if lb = neg_infinity && ub = infinity then fprintf ppf " FR BND %s@." vname.(v)
      else begin
        if lb = neg_infinity then fprintf ppf " MI BND %s@." vname.(v)
        else if lb <> 0. then fprintf ppf " LO BND %s %.12g@." vname.(v) lb;
        if ub <> infinity then fprintf ppf " UP BND %s %.12g@." vname.(v) ub
      end
    end
  done;
  fprintf ppf "ENDATA@."

let to_string lp =
  let b = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer b in
  write ppf lp;
  Format.pp_print_flush ppf ();
  Buffer.contents b

let to_file path lp =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      write ppf lp;
      Format.pp_print_flush ppf ())

(* ------------------------------------------------------------------ *)
(* Parser for the free-MPS subset the writer emits (plus the common
   variations: data pairs two-per-line, PL/BV bound types, OBJSENSE on
   one line).  Any structural violation returns [Error], never an
   exception — the fuzz suite feeds this deliberately broken files. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type psection = S_none | S_rows | S_columns | S_rhs | S_bounds

let parse text =
  try
    let lines =
      String.split_on_char '\n' text
      |> List.filter_map (fun l ->
             let l = String.trim l in
             if l = "" || l.[0] = '*' then None
             else
               Some
                 (String.split_on_char ' ' l
                 |> List.concat_map (String.split_on_char '\t')
                 |> List.filter (fun t -> t <> "")))
    in
    let num s =
      match float_of_string_opt s with
      | Some f -> f
      | None -> fail "expected a number, got %S" s
    in
    let name = ref "parsed" in
    let dir = ref Lp.Minimize in
    (* rows in declaration order; obj row name; terms accumulated per row *)
    let obj_row = ref None in
    let row_order = ref [] (* reversed (name, sense) *) in
    let row_tbl = Hashtbl.create 64 (* name -> terms ref (reversed) *) in
    let row_rhs = Hashtbl.create 64 in
    let obj_terms = ref [] and obj_constant = ref 0. in
    (* columns in first-appearance order *)
    let col_order = ref [] (* reversed names *) in
    let col_tbl = Hashtbl.create 64 (* name -> is_integer *) in
    let col_bounds = Hashtbl.create 64 (* name -> (lb option, ub option, fixed/free markers applied) *) in
    let integer_marker = ref false in
    let expect_objsense = ref false in
    let section = ref S_none in
    let ended = ref false in
    let declare_col c =
      match Hashtbl.find_opt col_tbl c with
      | None ->
        Hashtbl.replace col_tbl c !integer_marker;
        col_order := c :: !col_order
      | Some was_integer ->
        if was_integer <> !integer_marker then
          fail "column %s appears both inside and outside INTORG markers" c
    in
    let add_entry c r v =
      declare_col c;
      match !obj_row with
      | Some o when r = o -> obj_terms := (v, c) :: !obj_terms
      | _ -> (
        match Hashtbl.find_opt row_tbl r with
        | Some terms -> terms := (v, c) :: !terms
        | None -> fail "COLUMNS references undeclared row %s" r)
    in
    let add_rhs r v =
      match !obj_row with
      | Some o when r = o ->
        (* MPS convention: objective RHS is the negated constant *)
        obj_constant := -.v
      | _ ->
        if not (Hashtbl.mem row_tbl r) then fail "RHS references undeclared row %s" r;
        Hashtbl.replace row_rhs r v
    in
    let rec pairs f = function
      | [] -> ()
      | [ t ] -> fail "dangling field %S (expected name/value pairs)" t
      | a :: b :: rest ->
        f a (num b);
        pairs f rest
    in
    let bound_of c = try Hashtbl.find col_bounds c with Not_found -> (None, None) in
    let set_bound c lb ub =
      if not (Hashtbl.mem col_tbl c) then
        fail "BOUNDS references undeclared column %s" c;
      Hashtbl.replace col_bounds c (lb, ub)
    in
    List.iter
      (fun tokens ->
        if not !ended then
          match tokens with
          | [] -> ()
          | first :: rest -> (
            let kw = String.uppercase_ascii first in
            if !expect_objsense && rest = [] && (kw = "MIN" || kw = "MAX") then begin
              dir := (if kw = "MIN" then Lp.Minimize else Lp.Maximize);
              expect_objsense := false
            end
            else begin
              expect_objsense := false;
              match kw with
              | "NAME" ->
                (match rest with n :: _ -> name := n | [] -> ())
              | "OBJSENSE" -> (
                match rest with
                | [] -> expect_objsense := true
                | s :: _ -> (
                  match String.uppercase_ascii s with
                  | "MIN" | "MINIMIZE" -> dir := Lp.Minimize
                  | "MAX" | "MAXIMIZE" -> dir := Lp.Maximize
                  | s -> fail "bad OBJSENSE %S" s))
              | "ROWS" -> section := S_rows
              | "COLUMNS" -> section := S_columns
              | "RHS" when rest = [] -> section := S_rhs
              | "BOUNDS" -> section := S_bounds
              | "RANGES" -> fail "RANGES section not supported"
              | "ENDATA" -> ended := true
              | _ -> (
                match !section with
                | S_none -> fail "data line %S before any section" first
                | S_rows -> (
                  let rname =
                    match rest with
                    | [ r ] -> r
                    | _ -> fail "ROWS line needs exactly 'sense name'"
                  in
                  if Hashtbl.mem row_tbl rname || !obj_row = Some rname then
                    fail "duplicate row name %s" rname;
                  match kw with
                  | "N" ->
                    if !obj_row = None then obj_row := Some rname
                    else fail "multiple objective (N) rows"
                  | "L" | "G" | "E" ->
                    let sense =
                      match kw with "L" -> Lp.Le | "G" -> Lp.Ge | _ -> Lp.Eq
                    in
                    Hashtbl.replace row_tbl rname (ref []);
                    row_order := (rname, sense) :: !row_order
                  | s -> fail "bad row sense %S" s)
                | S_columns ->
                  if List.exists (fun t -> t = "'INTORG'") tokens then
                    integer_marker := true
                  else if List.exists (fun t -> t = "'INTEND'") tokens then
                    integer_marker := false
                  else pairs (add_entry first) rest
                | S_rhs ->
                  (* first token is the RHS set label; the rest are pairs *)
                  pairs add_rhs rest
                | S_bounds -> (
                  (* kw = bound type, rest = set-label col [value] *)
                  match (kw, rest) with
                  | "FR", [ _; c ] -> set_bound c (Some neg_infinity) (Some infinity)
                  | "MI", [ _; c ] -> set_bound c (Some neg_infinity) (snd (bound_of c))
                  | "PL", [ _; c ] -> set_bound c (fst (bound_of c)) (Some infinity)
                  | "BV", [ _; c ] -> set_bound c (Some 0.) (Some 1.)
                  | "FX", [ _; c; v ] ->
                    let v = num v in
                    set_bound c (Some v) (Some v)
                  | "LO", [ _; c; v ] -> set_bound c (Some (num v)) (snd (bound_of c))
                  | "UP", [ _; c; v ] -> set_bound c (fst (bound_of c)) (Some (num v))
                  | t, _ -> fail "bad bound line (type %S)" t))
            end))
      lines;
    if !obj_row = None && !row_order = [] && !col_order = [] then
      fail "no ROWS/COLUMNS data found";
    let lp = Lp.create ~name:!name () in
    let vars = Hashtbl.create 64 in
    List.iter
      (fun c ->
        let is_int = Hashtbl.find col_tbl c in
        let lb, ub = try Hashtbl.find col_bounds c with Not_found -> (None, None) in
        let lb = Option.value lb ~default:0. in
        let ub = Option.value ub ~default:infinity in
        if lb > ub then fail "column %s has lb %g > ub %g" c lb ub;
        let kind = if is_int then Lp.Integer else Lp.Continuous in
        Hashtbl.replace vars c (Lp.add_var lp ~name:c ~lb ~ub ~kind ()))
      (List.rev !col_order);
    let var c = Hashtbl.find vars c in
    List.iter
      (fun (rname, sense) ->
        let terms =
          List.rev_map (fun (v, c) -> (v, var c)) !(Hashtbl.find row_tbl rname)
        in
        let rhs = try Hashtbl.find row_rhs rname with Not_found -> 0. in
        Lp.add_constr lp ~name:rname terms sense rhs)
      (List.rev !row_order);
    Lp.set_objective lp !dir ~constant:!obj_constant
      (List.rev_map (fun (v, c) -> (v, var c)) !obj_terms);
    Ok lp
  with
  | Parse_error msg | Failure msg | Invalid_argument msg ->
    Error
      (Rfloor_diag.Diagnostic.diagf ~code:"RF303" Rfloor_diag.Diagnostic.Error
         Rfloor_diag.Diagnostic.Model "%s" msg)

let parse_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        parse (really_input_string ic len))
  with
  | Ok lp -> Ok lp
  | Error d -> Error { d with Rfloor_diag.Diagnostic.location = File path }
  | exception Sys_error msg ->
    Error
      (Rfloor_diag.Diagnostic.diagf ~code:"RF303" Rfloor_diag.Diagnostic.Error
         (Rfloor_diag.Diagnostic.File path) "%s" msg)
