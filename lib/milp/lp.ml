type var = int

type var_kind = Continuous | Integer | Binary

type dir = Minimize | Maximize

type sense = Le | Ge | Eq

type term = float * var

type row = { c_name : string; c_terms : term list; c_sense : sense; mutable c_rhs : float }

type vinfo = {
  v_name : string;
  mutable v_lb : float;
  mutable v_ub : float;
  mutable v_kind : var_kind;
}

type t = {
  p_name : string;
  mutable vars : vinfo array;
  mutable nvars : int;
  mutable rows : row array;
  mutable nrows : int;
  mutable obj_dir : dir;
  mutable obj_constant : float;
  mutable obj : float array; (* dense coefficients, grown with vars *)
}

let create ?(name = "lp") () =
  {
    p_name = name;
    vars = [||];
    nvars = 0;
    rows = [||];
    nrows = 0;
    obj_dir = Minimize;
    obj_constant = 0.;
    obj = [||];
  }

let name t = t.p_name

let grow_vars t =
  let cap = Array.length t.vars in
  if t.nvars >= cap then begin
    let ncap = max 16 (2 * cap) in
    let dummy = { v_name = ""; v_lb = 0.; v_ub = 0.; v_kind = Continuous } in
    let nv = Array.make ncap dummy in
    Array.blit t.vars 0 nv 0 t.nvars;
    t.vars <- nv;
    let no = Array.make ncap 0. in
    Array.blit t.obj 0 no 0 t.nvars;
    t.obj <- no
  end

let grow_rows t =
  let cap = Array.length t.rows in
  if t.nrows >= cap then begin
    let ncap = max 16 (2 * cap) in
    let dummy = { c_name = ""; c_terms = []; c_sense = Eq; c_rhs = 0. } in
    let nr = Array.make ncap dummy in
    Array.blit t.rows 0 nr 0 t.nrows;
    t.rows <- nr
  end

let add_var t ?name ?(lb = 0.) ?(ub = infinity) ?(kind = Continuous) () =
  grow_vars t;
  let i = t.nvars in
  let v_name = match name with Some n -> n | None -> Printf.sprintf "x%d" i in
  let lb, ub =
    match kind with Binary -> (max lb 0., min ub 1.) | Continuous | Integer -> (lb, ub)
  in
  if lb > ub then
    invalid_arg (Printf.sprintf "Lp.add_var %s: lb %g > ub %g" v_name lb ub);
  t.vars.(i) <- { v_name; v_lb = lb; v_ub = ub; v_kind = kind };
  t.obj.(i) <- 0.;
  t.nvars <- i + 1;
  i

let check_var t v fn =
  if v < 0 || v >= t.nvars then
    invalid_arg (Printf.sprintf "Lp.%s: variable %d out of range [0,%d)" fn v t.nvars)

(* Sum duplicate variables and drop (near-)zero coefficients so that
   downstream solvers can assume each variable appears once per row. *)
let normalize_terms t fn terms =
  let tbl = Hashtbl.create (List.length terms) in
  let order = ref [] in
  let add (c, v) =
    check_var t v fn;
    match Hashtbl.find_opt tbl v with
    | Some r -> r := !r +. c
    | None ->
      let r = ref c in
      Hashtbl.replace tbl v r;
      order := v :: !order
  in
  List.iter add terms;
  List.rev !order
  |> List.filter_map (fun v ->
         let c = !(Hashtbl.find tbl v) in
         if abs_float c < 1e-12 then None else Some (c, v))

let add_constr t ?name terms sense rhs =
  grow_rows t;
  let i = t.nrows in
  let c_name = match name with Some n -> n | None -> Printf.sprintf "c%d" i in
  let c_terms = normalize_terms t "add_constr" terms in
  t.rows.(i) <- { c_name; c_terms; c_sense = sense; c_rhs = rhs };
  t.nrows <- i + 1

let set_objective t dir ?(constant = 0.) terms =
  t.obj_dir <- dir;
  t.obj_constant <- constant;
  Array.fill t.obj 0 t.nvars 0.;
  List.iter (fun (c, v) -> t.obj.(v) <- c) (normalize_terms t "set_objective" terms)

let num_vars t = t.nvars
let num_constrs t = t.nrows

let var_name t v = check_var t v "var_name"; t.vars.(v).v_name
let var_lb t v = check_var t v "var_lb"; t.vars.(v).v_lb
let var_ub t v = check_var t v "var_ub"; t.vars.(v).v_ub
let var_kind t v = check_var t v "var_kind"; t.vars.(v).v_kind

let set_bounds t v ~lb ~ub =
  check_var t v "set_bounds";
  if lb > ub then
    invalid_arg
      (Printf.sprintf "Lp.set_bounds %s: lb %g > ub %g" t.vars.(v).v_name lb ub);
  t.vars.(v).v_lb <- lb;
  t.vars.(v).v_ub <- ub

let set_kind t v kind = check_var t v "set_kind"; t.vars.(v).v_kind <- kind

let objective_dir t = t.obj_dir
let objective_constant t = t.obj_constant

let objective_terms t =
  let acc = ref [] in
  for v = t.nvars - 1 downto 0 do
    if t.obj.(v) <> 0. then acc := (t.obj.(v), v) :: !acc
  done;
  !acc

let objective_coeff t v = check_var t v "objective_coeff"; t.obj.(v)

let check_row t i fn =
  if i < 0 || i >= t.nrows then
    invalid_arg (Printf.sprintf "Lp.%s: row %d out of range [0,%d)" fn i t.nrows)

let constr_name t i = check_row t i "constr_name"; t.rows.(i).c_name
let constr_terms t i = check_row t i "constr_terms"; t.rows.(i).c_terms
let constr_sense t i = check_row t i "constr_sense"; t.rows.(i).c_sense
let constr_rhs t i = check_row t i "constr_rhs"; t.rows.(i).c_rhs
let set_rhs t i rhs = check_row t i "set_rhs"; t.rows.(i).c_rhs <- rhs

let iter_constrs t f =
  for i = 0 to t.nrows - 1 do
    let r = t.rows.(i) in
    f i r.c_terms r.c_sense r.c_rhs
  done

let fold_constrs t ~init f =
  let acc = ref init in
  for i = 0 to t.nrows - 1 do
    let r = t.rows.(i) in
    acc := f !acc i r.c_terms r.c_sense r.c_rhs
  done;
  !acc

let integer_vars t =
  let acc = ref [] in
  for v = t.nvars - 1 downto 0 do
    match t.vars.(v).v_kind with
    | Integer | Binary -> acc := v :: !acc
    | Continuous -> ()
  done;
  !acc

let num_integer_vars t = List.length (integer_vars t)

let copy t =
  {
    t with
    vars = Array.map (fun v -> { v with v_name = v.v_name }) t.vars;
    rows = Array.map (fun r -> { r with c_rhs = r.c_rhs }) t.rows;
    obj = Array.copy t.obj;
  }

let relax t =
  let t' = copy t in
  for v = 0 to t'.nvars - 1 do
    t'.vars.(v).v_kind <- Continuous
  done;
  t'

let eval_terms x terms = List.fold_left (fun acc (c, v) -> acc +. (c *. x.(v))) 0. terms

let objective_value t x =
  let s = ref t.obj_constant in
  for v = 0 to t.nvars - 1 do
    s := !s +. (t.obj.(v) *. x.(v))
  done;
  !s

let row_violation sense lhs rhs =
  match sense with
  | Le -> max 0. (lhs -. rhs)
  | Ge -> max 0. (rhs -. lhs)
  | Eq -> abs_float (lhs -. rhs)

let constr_violation t x =
  let worst = ref 0. in
  iter_constrs t (fun _ terms sense rhs ->
      worst := max !worst (row_violation sense (eval_terms x terms) rhs));
  !worst

let bounds_violation t x =
  let worst = ref 0. in
  for v = 0 to t.nvars - 1 do
    let { v_lb; v_ub; _ } = t.vars.(v) in
    worst := max !worst (max (v_lb -. x.(v)) (x.(v) -. v_ub))
  done;
  max 0. !worst

let is_integral ?(eps = 1e-6) t x =
  List.for_all
    (fun v -> abs_float (x.(v) -. Float.round x.(v)) <= eps)
    (integer_vars t)

let validate ?(eps = 1e-6) t x =
  if Array.length x <> t.nvars then
    Error
      (Printf.sprintf "assignment has %d entries, problem has %d variables"
         (Array.length x) t.nvars)
  else
    let bad = ref None in
    iter_constrs t (fun i terms sense rhs ->
        if !bad = None then
          let viol = row_violation sense (eval_terms x terms) rhs in
          if viol > eps then
            bad := Some (Printf.sprintf "row %s violated by %g" t.rows.(i).c_name viol));
    (match !bad with
    | None ->
      for v = 0 to t.nvars - 1 do
        if !bad = None then begin
          let { v_name; v_lb; v_ub; v_kind } = t.vars.(v) in
          if x.(v) < v_lb -. eps || x.(v) > v_ub +. eps then
            bad :=
              Some
                (Printf.sprintf "variable %s = %g outside [%g, %g]" v_name x.(v) v_lb
                   v_ub)
          else
            match v_kind with
            | Integer | Binary ->
              if abs_float (x.(v) -. Float.round x.(v)) > eps then
                bad := Some (Printf.sprintf "variable %s = %g not integral" v_name x.(v))
            | Continuous -> ()
        end
      done
    | Some _ -> ());
    match !bad with None -> Ok () | Some msg -> Error msg

let pp_stats ppf t =
  Format.fprintf ppf "%s: %d vars (%d integer), %d rows" t.p_name t.nvars
    (num_integer_vars t) t.nrows
