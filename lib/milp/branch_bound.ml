type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type stop_reason = Budget | Cancelled

type result = {
  status : status;
  incumbent : (float * float array) option;
  best_bound : float;
  nodes : int;
  simplex_iterations : int;
  elapsed : float;
  stop : stop_reason option;
}

type options = {
  time_limit : float option;
  node_limit : int option;
  mip_gap : float;
  int_eps : float;
  priorities : float array option;
  trace : Rfloor_trace.t;
  gomory_rounds : int;
  metrics : Rfloor_metrics.Registry.t;
  cancel : unit -> bool;
  warm_lp : bool;
  external_bound : unit -> float;
}

let never_cancel () = false
let no_external_bound () = infinity

let default_options =
  {
    time_limit = None;
    node_limit = None;
    mip_gap = 1e-6;
    int_eps = 1e-6;
    priorities = None;
    trace = Rfloor_trace.disabled;
    gomory_rounds = 0;
    metrics = Rfloor_metrics.Registry.null;
    cancel = never_cancel;
    warm_lp = true;
    external_bound = no_external_bound;
  }

(* Per-LP profiling handles shared with Parallel_bb: same series names,
   so sequential and parallel solves land in the same histograms. *)
let lp_histograms reg =
  let module R = Rfloor_metrics.Registry in
  ( R.histogram reg ~help:"Simplex iterations per LP relaxation"
      ~buckets:R.count_buckets "rfloor_simplex_iterations_per_lp",
    R.histogram reg ~help:"Wall time per LP relaxation solve"
      "rfloor_lp_solve_seconds" )

let objective_key dir obj =
  match dir with Lp.Minimize -> obj | Lp.Maximize -> -.obj

type node = {
  n_lb : float array;
  n_ub : float array;
  n_bound : float;
  n_depth : int;
  n_basis : Simplex.Basis.t option;
      (* parent's optimal basis; seeds the dual-simplex warm start *)
}

let frac x = x -. Float.round x

(* Pick the branching variable: among fractional integer variables,
   highest priority first, then most fractional. *)
let pick_branch ~int_eps ~priorities int_vars x =
  let best = ref None in
  List.iter
    (fun v ->
      let f = abs_float (frac x.(v)) in
      if f > int_eps then begin
        let prio = match priorities with Some p -> p.(v) | None -> 0. in
        let score = (prio, f) in
        match !best with
        | Some (_, s) when s >= score -> ()
        | _ -> best := Some (v, score)
      end)
    int_vars;
  match !best with None -> None | Some (v, _) -> Some v

let solve ?(options = default_options) ?(worker = 0) ?incumbent lp =
  let trace = options.trace in
  (* [mlive] captured once: when metrics are off, the per-node path
     below skips the clock reads entirely. *)
  let mlive = Rfloor_metrics.Registry.live options.metrics in
  let h_lp_iters, h_lp_seconds = lp_histograms options.metrics in
  (* LP counters registered once per run, not per node: registration
     takes the registry mutex, counter updates are lock-free *)
  let instr = if mlive then Some (Simplex.instruments options.metrics) else None in
  let t0 = Unix.gettimeofday () in
  (* root-node branch-and-cut: strengthen a private copy with GMI cuts *)
  let lp =
    if options.gomory_rounds <= 0 then lp
    else begin
      let lp' = Lp.copy lp in
      let added = Gomory.add_root_cuts ~rounds:options.gomory_rounds lp' in
      Rfloor_trace.cuts_added trace ~worker ~rounds:options.gomory_rounds
        ~cuts:added;
      lp'
    end
  in
  let dir = Lp.objective_dir lp in
  let key = objective_key dir in
  let unkey k = match dir with Lp.Minimize -> k | Lp.Maximize -> -.k in
  let core = Simplex.Core.of_lp lp in
  let n = Lp.num_vars lp in
  let int_vars = Lp.integer_vars lp in
  let root_lb = Array.init n (fun v -> Lp.var_lb lp v) in
  let root_ub = Array.init n (fun v -> Lp.var_ub lp v) in
  (* integer variables can have their bounds snapped to integers *)
  List.iter
    (fun v ->
      if Float.is_finite root_lb.(v) then root_lb.(v) <- Float.round (ceil (root_lb.(v) -. 1e-9));
      if Float.is_finite root_ub.(v) then root_ub.(v) <- Float.round (floor (root_ub.(v) +. 1e-9)))
    int_vars;
  let inc_x = ref None and inc_key = ref infinity in
  (match incumbent with
  | None -> ()
  | Some x -> (
    match Lp.validate ~eps:1e-5 lp x with
    | Ok () ->
      inc_x := Some (Array.copy x);
      inc_key := key (Lp.objective_value lp x);
      (* announce the installed warm start so progress consumers have
         an incumbent from node zero *)
      Rfloor_trace.incumbent trace ~worker ~objective:(unkey !inc_key) ~node:0
    | Error msg ->
      Rfloor_trace.warn trace ~worker
        (Printf.sprintf "warm incumbent rejected: %s" msg)));
  let nodes = ref 0 and iters = ref 0 in
  let incomplete = ref false in
  let cancelled = ref false in
  (* stack of open nodes; each carries the bound inherited from its
     parent's LP relaxation *)
  let stack =
    ref
      [ { n_lb = root_lb; n_ub = root_ub; n_bound = neg_infinity; n_depth = 0;
          n_basis = None } ]
  in
  let root_bound = ref neg_infinity in
  let unbounded = ref false in
  let stopped = ref false in
  (* Prune cutoff: the better of the own incumbent and any externally
     known feasible objective (a portfolio peer's incumbent).  Nodes
     whose bound cannot beat the cutoff are fathomed; when both are
     infinite the cutoff is NaN and every comparison is false, so
     nothing prunes.  External pruning can exhaust the tree without an
     own incumbent: the resulting [Infeasible] then means "nothing
     strictly better than the external solution exists", which is what
     a racing caller needs. *)
  let cutoff () =
    let e = options.external_bound () in
    let k = if Float.is_finite e then min !inc_key (key e) else !inc_key in
    k -. (options.mip_gap *. max 1. (abs_float k))
  in
  let out_of_budget () =
    (match options.time_limit with
    | Some tl -> Unix.gettimeofday () -. t0 > tl
    | None -> false)
    || match options.node_limit with Some nl -> !nodes >= nl | None -> false
  in
  while (not !stopped) && !stack <> [] do
    match !stack with
    | [] -> ()
    | node :: rest ->
      stack := rest;
      if !unbounded then stopped := true
      else if options.cancel () then begin
        (* cooperative cancellation: hand the node back so the final
           dual bound still covers it, exactly like a budget stop *)
        incomplete := true;
        cancelled := true;
        stack := node :: !stack;
        stopped := true;
        Rfloor_trace.stopped trace ~worker "cancel"
      end
      else if out_of_budget () then begin
        incomplete := true;
        stack := node :: !stack;
        stopped := true;
        Rfloor_trace.stopped trace ~worker "budget"
      end
      else if node.n_bound >= cutoff () then () (* pruned by bound *)
      else begin
        incr nodes;
        Rfloor_trace.node_explored trace ~iters:!iters ~worker
          ~depth:node.n_depth ~bound:(unkey node.n_bound);
        let t_lp = if mlive then Unix.gettimeofday () else 0. in
        let warm = if options.warm_lp then node.n_basis else None in
        let solve_node () =
          Simplex.Core.solve_warm ~lb:node.n_lb ~ub:node.n_ub ?warm ?instr
            ~trace ~worker core
        in
        let r, node_basis =
          if node.n_depth = 0 then
            Rfloor_trace.span trace ~worker Rfloor_trace.Event.Root_lp
              solve_node
          else solve_node ()
        in
        if mlive then begin
          Rfloor_metrics.Registry.Histogram.observe h_lp_seconds
            (Unix.gettimeofday () -. t_lp);
          Rfloor_metrics.Registry.Histogram.observe h_lp_iters
            (float_of_int r.Simplex.iterations)
        end;
        iters := !iters + r.Simplex.iterations;
        match r.Simplex.status with
        | Simplex.Infeasible -> ()
        | Simplex.Iter_limit -> incomplete := true
        | Simplex.Unbounded ->
          (* a child's relaxation is a subset of the root's: an unbounded
             ray in any node is a ray of the root relaxation *)
          unbounded := true
        | Simplex.Optimal -> (
          let bound = key r.Simplex.objective in
          if node.n_depth = 0 then root_bound := bound;
          if bound >= cutoff () then ()
          else
            match
              pick_branch ~int_eps:options.int_eps ~priorities:options.priorities
                int_vars r.Simplex.x
            with
            | None ->
              (* integer feasible: snap integers and accept *)
              let x = Array.copy r.Simplex.x in
              List.iter (fun v -> x.(v) <- Float.round x.(v)) int_vars;
              let obj_key = key (Lp.objective_value lp x) in
              if obj_key < !inc_key then begin
                inc_key := obj_key;
                inc_x := Some x;
                Rfloor_trace.incumbent trace ~worker
                  ~objective:(unkey obj_key) ~node:!nodes
              end
            | Some v ->
              let f = r.Simplex.x.(v) in
              let fl = Float.round (floor (f +. options.int_eps)) in
              let down () =
                let ub = Array.copy node.n_ub in
                ub.(v) <- min ub.(v) fl;
                { n_lb = Array.copy node.n_lb; n_ub = ub; n_bound = bound;
                  n_depth = node.n_depth + 1; n_basis = node_basis }
              and up () =
                let lb = Array.copy node.n_lb in
                lb.(v) <- max lb.(v) (fl +. 1.);
                { n_lb = lb; n_ub = Array.copy node.n_ub; n_bound = bound;
                  n_depth = node.n_depth + 1; n_basis = node_basis }
              in
              (* explore the child nearest to the LP value first *)
              let first, second = if frac f <= 0. then (down (), up ()) else (up (), down ()) in
              stack := first :: second :: !stack)
      end
  done;
  (* A sound dual bound: if the search completed, the incumbent key;
     otherwise the min over open-node parent bounds (or the root bound if
     an open node predates its first LP solve). *)
  let bound_key =
    if !unbounded then neg_infinity
    else if !stack = [] && not !incomplete then !inc_key
    else
      List.fold_left
        (fun acc nd ->
          min acc (if nd.n_bound = neg_infinity then !root_bound else nd.n_bound))
        !inc_key !stack
  in
  (* one monotone sample against the call's own start; the clamp keeps
     elapsed non-negative even if the wall clock steps backwards, and a
     node handed back by a cooperative stop is never double-charged
     because no per-node time accumulates anywhere *)
  let elapsed = Float.max 0. (Unix.gettimeofday () -. t0) in
  Rfloor_trace.add_worker_totals trace ~worker ~nodes:!nodes ~iterations:!iters;
  let status =
    if !unbounded then Unbounded
    else
      match (!inc_x, !stack = [] && not !incomplete) with
      | Some _, true -> Optimal
      | Some _, false -> Feasible
      | None, true -> Infeasible
      | None, false -> Unknown
  in
  let stop =
    if !unbounded then None (* conclusive, even with open nodes left *)
    else if !cancelled then Some Cancelled
    else if !stack <> [] || !incomplete then Some Budget
    else None
  in
  {
    status;
    incumbent = (match !inc_x with Some x -> Some (unkey !inc_key, x) | None -> None);
    best_bound = unkey bound_key;
    nodes = !nodes;
    simplex_iterations = !iters;
    elapsed;
    stop;
  }
