type sym_member = {
  sm_x : Lp.var;
  sm_ymin : Lp.term list;
  sm_drop : Lp.var option;
}

(* P(c) = scale * x + ymin with scale = height+1 is injective over kept
   copies of a group (equal dims + non-overlap force distinct (x, ymin))
   and integer-valued at integer points, so a strict order is exactly
   "P_i + 1 <= P_{i+1}". *)
let add_symmetry_cuts lp ~width ~height groups =
  let scale = float_of_int (height + 1) in
  (* M must dominate max P(c_i) - min P(c_{i+1}) so that one dropped
     copy fully relaxes the ordering row *)
  let big_m = (scale *. float_of_int width) +. float_of_int height in
  let added = ref 0 in
  let neg terms = List.map (fun (c, v) -> (-.c, v)) terms in
  List.iter
    (fun group ->
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          (* P(a) - P(b) - M*(v_a + v_b) <= -1 *)
          let relax =
            List.filter_map
              (fun d -> Option.map (fun v -> (-.big_m, v)) d)
              [ a.sm_drop; b.sm_drop ]
          in
          Lp.add_constr lp
            (((scale, a.sm_x) :: a.sm_ymin)
            @ ((-.scale, b.sm_x) :: neg b.sm_ymin)
            @ relax)
            Lp.Le (-1.);
          incr added;
          (* drops at the tail: v_a <= v_b keeps kept copies
             index-consecutive so the pairwise chain stays binding *)
          (match (a.sm_drop, b.sm_drop) with
          | Some va, Some vb ->
            Lp.add_constr lp [ (1., va); (-1., vb) ] Lp.Le 0.;
            incr added
          | _ -> ());
          pairs rest
        | [] | [ _ ] -> ()
      in
      pairs group)
    groups;
  !added

let activity lp terms =
  List.fold_left
    (fun (lo, hi) (c, v) ->
      let lb = Lp.var_lb lp v and ub = Lp.var_ub lp v in
      if c >= 0. then (lo +. (c *. lb), hi +. (c *. ub))
      else (lo +. (c *. ub), hi +. (c *. lb)))
    (0., 0.) terms

type packing_row = {
  pr_name : string;
  pr_terms : Lp.term list;
  pr_rhs : float;
}

let add_packing_cuts lp rows =
  let added = ref 0 in
  List.iter
    (fun row ->
      if row.pr_terms <> [] then begin
        let _, hi = activity lp row.pr_terms in
        if hi > row.pr_rhs +. 1e-9 then begin
          Lp.add_constr lp ~name:row.pr_name row.pr_terms Lp.Le row.pr_rhs;
          incr added
        end
      end)
    rows;
  !added
