type outcome = Tightened of int | Proven_infeasible

exception Infeasible_exn

let round_integer_bounds lp v =
  match Lp.var_kind lp v with
  | Lp.Continuous -> ()
  | Lp.Integer | Lp.Binary ->
    let lb = Lp.var_lb lp v and ub = Lp.var_ub lp v in
    let lb' = if Float.is_finite lb then ceil (lb -. 1e-9) else lb in
    let ub' = if Float.is_finite ub then floor (ub +. 1e-9) else ub in
    if lb' > ub' +. 1e-9 then raise Infeasible_exn;
    if lb' <> lb || ub' <> ub then Lp.set_bounds lp v ~lb:lb' ~ub:ub'

(* Minimum / maximum activity of [terms] excluding variable [skip]. *)
let activity_range lp terms ~skip =
  let lo = ref 0. and hi = ref 0. in
  List.iter
    (fun (c, v) ->
      if v <> skip then begin
        let lb = Lp.var_lb lp v and ub = Lp.var_ub lp v in
        if c > 0. then begin
          lo := !lo +. (c *. lb);
          hi := !hi +. (c *. ub)
        end
        else begin
          lo := !lo +. (c *. ub);
          hi := !hi +. (c *. lb)
        end
      end)
    terms;
  (!lo, !hi)

let tighten_body ~max_rounds ~rounds_out lp =
  let changes = ref 0 in
  let eps = 1e-9 in
  let round = ref 0 in
  rounds_out := 0;
  try
    List.iter (fun v -> round_integer_bounds lp v) (Lp.integer_vars lp);
    let changed = ref true in
    while !changed && !round < max_rounds do
      changed := false;
      incr round;
      Lp.iter_constrs lp (fun _ terms sense rhs ->
          List.iter
            (fun (c, v) ->
              let lo, hi = activity_range lp terms ~skip:v in
              let lb = Lp.var_lb lp v and ub = Lp.var_ub lp v in
              (* c*v + rest {<=,>=,=} rhs *)
              let new_ub_from le_rhs =
                (* c*v <= le_rhs - lo *)
                if Float.is_finite lo then
                  let bound = (le_rhs -. lo) /. c in
                  if c > 0. then
                    (if bound < ub -. eps then begin
                       if bound < lb -. 1e-7 then raise Infeasible_exn;
                       Lp.set_bounds lp v ~lb ~ub:(max lb bound);
                       incr changes;
                       changed := true
                     end)
                  else if bound > lb +. eps then begin
                    if bound > ub +. 1e-7 then raise Infeasible_exn;
                    Lp.set_bounds lp v ~lb:(min ub bound) ~ub;
                    incr changes;
                    changed := true
                  end
              in
              let new_lb_from ge_rhs =
                (* c*v >= ge_rhs - hi *)
                if Float.is_finite hi then
                  let bound = (ge_rhs -. hi) /. c in
                  if c > 0. then
                    (if bound > Lp.var_lb lp v +. eps then begin
                       let ub = Lp.var_ub lp v in
                       if bound > ub +. 1e-7 then raise Infeasible_exn;
                       Lp.set_bounds lp v ~lb:(min ub bound) ~ub;
                       incr changes;
                       changed := true
                     end)
                  else
                    let lb = Lp.var_lb lp v and ub = Lp.var_ub lp v in
                    if bound < ub -. eps then begin
                      if bound < lb -. 1e-7 then raise Infeasible_exn;
                      Lp.set_bounds lp v ~lb ~ub:(max lb bound);
                      incr changes;
                      changed := true
                    end
              in
              (match sense with
              | Lp.Le -> new_ub_from rhs
              | Lp.Ge -> new_lb_from rhs
              | Lp.Eq ->
                new_ub_from rhs;
                new_lb_from rhs);
              round_integer_bounds lp v)
            terms)
    done;
    rounds_out := !round;
    Tightened !changes
  with Infeasible_exn ->
    rounds_out := !round;
    Proven_infeasible

let tighten ?(max_rounds = 10) ?(trace = Rfloor_trace.disabled)
    ?(metrics = Rfloor_metrics.Registry.null) lp =
  Rfloor_trace.span trace Rfloor_trace.Event.Presolve (fun () ->
      let rounds = ref 0 in
      let outcome = tighten_body ~max_rounds ~rounds_out:rounds lp in
      let module R = Rfloor_metrics.Registry in
      if R.live metrics then begin
        R.Counter.add
          (R.counter metrics ~help:"Presolve tightening rounds run"
             "rfloor_presolve_rounds_total")
          !rounds;
        match outcome with
        | Tightened n ->
          R.Counter.add
            (R.counter metrics ~help:"Presolve bound changes applied"
               "rfloor_presolve_bound_changes_total")
            n
        | Proven_infeasible ->
          R.Counter.incr
            (R.counter metrics ~help:"Presolve infeasibility proofs"
               "rfloor_presolve_infeasible_total")
      end;
      (match outcome with
      | Tightened n when n > 0 ->
        Rfloor_trace.messagef trace "presolve: %d bound changes" n
      | Tightened _ -> ()
      | Proven_infeasible ->
        Rfloor_trace.messagef trace "presolve: proven infeasible");
      outcome)
