module Bb = Branch_bound
module Sync = Rfloor_sync

let workers_from_env ?(default = 1) ?(trace = Rfloor_trace.disabled) () =
  match Sys.getenv_opt "RFLOOR_WORKERS" with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some n ->
      Rfloor_trace.warn trace
        (Printf.sprintf "RFLOOR_WORKERS=%d is not positive; clamping to 1" n);
      1
    | None ->
      Rfloor_trace.warn trace
        (Printf.sprintf "RFLOOR_WORKERS=%s does not parse as an integer; using %d"
           (String.trim s) default);
      default)

(* An open subproblem, serialized as a bound overlay on the root LP.
   Carrying the full arrays (not deltas) keeps claiming O(1) for the
   thief: the shared Simplex.Core is immutable, so a worker can solve
   any overlay without rebuilding anything. *)
type task = {
  t_lb : float array;
  t_ub : float array;
  t_bound : float;
  t_depth : int;
  t_basis : Simplex.Basis.t option;
      (* parent's optimal basis — immutable, so a donated task carries
         its warm-start seed safely across domains *)
}

(* The shared incumbent: primal key (minimization order) plus the
   point.  A single immutable record per update makes the CAS loop
   race-free — readers always see a consistent (key, x) pair. *)
type inc = { i_key : float; i_x : float array option }

let frac x = x -. Float.round x

(* Same branching rule as Branch_bound.pick_branch: highest priority,
   then most fractional.  Duplicated rather than exported so the two
   solvers stay independently readable. *)
let pick_branch ~int_eps ~priorities int_vars x =
  let best = ref None in
  List.iter
    (fun v ->
      let f = abs_float (frac x.(v)) in
      if f > int_eps then begin
        let prio = match priorities with Some p -> p.(v) | None -> 0. in
        let score = (prio, f) in
        match !best with
        | Some (_, s) when s >= score -> ()
        | _ -> best := Some (v, score)
      end)
    int_vars;
  match !best with None -> None | Some (v, _) -> Some v

let solve ?(options = Bb.default_options) ?(workers = 1) ?incumbent lp =
  let workers = max 1 workers in
  let trace = options.Bb.trace in
  (* Histogram handles are registered once, before any domain spawns;
     observations are lock-free atomics so all workers share them. *)
  let mlive = Rfloor_metrics.Registry.live options.Bb.metrics in
  let h_lp_iters, h_lp_seconds = Bb.lp_histograms options.Bb.metrics in
  (* LP counters registered once before any domain spawns; updates are
     lock-free atomics shared by all workers *)
  let instr =
    if mlive then Some (Simplex.instruments options.Bb.metrics) else None
  in
  let t0 = Unix.gettimeofday () in
  (* Root branch-and-cut runs once, before any worker exists; ditto any
     caller-side preflight (Core.Solver lints the root model exactly
     once and hands us the vetted LP). *)
  let lp =
    if options.Bb.gomory_rounds <= 0 then lp
    else begin
      let lp' = Lp.copy lp in
      let added = Gomory.add_root_cuts ~rounds:options.Bb.gomory_rounds lp' in
      Rfloor_trace.cuts_added trace ~worker:0
        ~rounds:options.Bb.gomory_rounds ~cuts:added;
      lp'
    end
  in
  let dir = Lp.objective_dir lp in
  let key = Bb.objective_key dir in
  let unkey k = match dir with Lp.Minimize -> k | Lp.Maximize -> -.k in
  let core = Simplex.Core.of_lp lp in
  let n = Lp.num_vars lp in
  let int_vars = Lp.integer_vars lp in
  let root_lb = Array.init n (fun v -> Lp.var_lb lp v) in
  let root_ub = Array.init n (fun v -> Lp.var_ub lp v) in
  List.iter
    (fun v ->
      if Float.is_finite root_lb.(v) then root_lb.(v) <- Float.round (ceil (root_lb.(v) -. 1e-9));
      if Float.is_finite root_ub.(v) then root_ub.(v) <- Float.round (floor (root_ub.(v) +. 1e-9)))
    int_vars;
  (* ---- shared state ---- *)
  let inc = Sync.Atomic.make ~name:"bb.incumbent" { i_key = infinity; i_x = None } in
  let nodes = Sync.Atomic.make ~name:"bb.nodes" 0
  and iters = Sync.Atomic.make ~name:"bb.iters" 0 in
  let unbounded = Sync.Atomic.make ~name:"bb.unbounded" false in
  let incomplete = Sync.Atomic.make ~name:"bb.incomplete" false in
  let over_budget = Sync.Atomic.make ~name:"bb.over_budget" false in
  let cancelled = Sync.Atomic.make ~name:"bb.cancelled" false in
  (* one-shot guard so a budget stop traces once, not once per worker *)
  let budget_emitted = Sync.Atomic.make ~name:"bb.budget_emitted" false in
  let root_bound = Sync.Atomic.make ~name:"bb.root_bound" neg_infinity in
  (* Global deque of open subproblems.  Push/claim are mutex-guarded;
     [qlen] is a racy size estimate that only steers the donation
     heuristic, and [active] counts workers mid-dive so that an empty
     deque plus zero active workers means the frontier is exhausted.
     [active] is incremented inside the claim critical section, so no
     worker can observe "empty and idle" while a task is in flight. *)
  let qm = Sync.Mutex.create ~name:"bb.queue" () in
  let queue : task Queue.t = Queue.create () in
  let qlen = Sync.Atomic.make ~name:"bb.qlen" 0 in
  let active = Sync.Atomic.make ~name:"bb.active" 0 in
  let push_tasks ts =
    if ts <> [] then begin
      Sync.Mutex.lock qm;
      List.iter (fun t -> Queue.add t queue) ts;
      Sync.Mutex.unlock qm;
      ignore (Sync.Atomic.fetch_and_add qlen (List.length ts))
    end
  in
  let try_claim () =
    Sync.Mutex.lock qm;
    let r =
      if Queue.is_empty queue then None
      else begin
        Sync.Atomic.incr active;
        ignore (Sync.Atomic.fetch_and_add qlen (-1));
        Some (Queue.pop queue)
      end
    in
    Sync.Mutex.unlock qm;
    r
  in
  (* Per-worker node/iteration tallies: each slot is touched only by
     its own domain, then flushed to the tracer after the joins. *)
  let local_nodes = Array.make workers 0 in
  let local_iters = Array.make workers 0 in
  (* Lock-free incumbent improvement: retry the CAS until we either
     install the better point or observe someone else already did. *)
  let rec improve k x =
    let cur = Sync.Atomic.get inc in
    if k < cur.i_key then
      if Sync.Atomic.compare_and_set inc cur { i_key = k; i_x = Some x } then true
      else improve k x
    else false
  in
  (match incumbent with
  | None -> ()
  | Some x -> (
    match Lp.validate ~eps:1e-5 lp x with
    | Ok () ->
      let k = key (Lp.objective_value lp x) in
      if improve k (Array.copy x) then
        (* announce the installed warm start so progress consumers have
           an incumbent from node zero *)
        Rfloor_trace.incumbent trace ~worker:0 ~objective:(unkey k) ~node:0
    | Error msg ->
      Rfloor_trace.warn trace ~worker:0
        (Printf.sprintf "warm incumbent rejected: %s" msg)));
  (* Prune cutoff against the better of the shared incumbent and any
     external (portfolio-peer) feasible objective; NaN when both are
     infinite so nothing prunes.  Mirrors Branch_bound.cutoff. *)
  let cutoff () =
    let ik = (Sync.Atomic.get inc).i_key in
    let e = options.Bb.external_bound () in
    let k = if Float.is_finite e then min ik (key e) else ik in
    k -. (options.Bb.mip_gap *. max 1. (abs_float k))
  in
  let out_of_budget () =
    Sync.Atomic.get over_budget
    ||
    let over =
      (match options.Bb.time_limit with
      | Some tl -> Unix.gettimeofday () -. t0 > tl
      | None -> false)
      || match options.Bb.node_limit with
         | Some nl -> Sync.Atomic.get nodes >= nl
         | None -> false
    in
    if over then Sync.Atomic.set over_budget true;
    over
  in
  let stop_requested () =
    Sync.Atomic.get unbounded || Sync.Atomic.get over_budget || Sync.Atomic.get cancelled
  in
  (* Donate the shallowest (largest) open subtrees whenever the global
     deque runs short — the stealing happens on the donor's side so the
     deque never needs per-node locking on the hot dive path. *)
  let donate w stack =
    if workers > 1 && Sync.Atomic.get qlen < workers then begin
      let len = List.length !stack in
      if len > 3 then begin
        let keep = (len + 1) / 2 in
        let rec split i acc rest =
          if i >= keep then (List.rev acc, rest)
          else
            match rest with
            | [] -> (List.rev acc, [])
            | x :: tl -> split (i + 1) (x :: acc) tl
        in
        let mine, give = split 0 [] !stack in
        stack := mine;
        push_tasks give;
        Rfloor_trace.steal trace ~worker:w ~tasks:(List.length give)
      end
    end
  in
  (* One claimed subtree: a sequential depth-first dive, identical in
     shape to Branch_bound's loop, pruning against the shared
     incumbent.  On a budget stop the unexplored nodes go back to the
     deque so the final dual bound still covers them. *)
  let process w task =
    let stack = ref [ task ] in
    let running = ref true in
    while !running do
      match !stack with
      | [] -> running := false
      | node :: rest ->
        stack := rest;
        if Sync.Atomic.get unbounded then begin
          stack := [];
          running := false
        end
        else if options.Bb.cancel () then begin
          (* cooperative cancellation: return the dive's open nodes to
             the deque so the final dual bound still covers them *)
          Sync.Atomic.set incomplete true;
          if Sync.Atomic.compare_and_set cancelled false true then
            Rfloor_trace.stopped trace ~worker:w "cancel";
          push_tasks (node :: !stack);
          stack := [];
          running := false
        end
        else if out_of_budget () then begin
          Sync.Atomic.set incomplete true;
          if Sync.Atomic.compare_and_set budget_emitted false true then
            Rfloor_trace.stopped trace ~worker:w "budget";
          push_tasks (node :: !stack);
          stack := [];
          running := false
        end
        else begin
          if node.t_bound >= cutoff () then () (* pruned by bound *)
          else begin
            ignore (Sync.Atomic.fetch_and_add nodes 1);
            local_nodes.(w) <- local_nodes.(w) + 1;
            Rfloor_trace.node_explored trace ~iters:local_iters.(w) ~worker:w
              ~depth:node.t_depth ~bound:(unkey node.t_bound);
            let t_lp = if mlive then Unix.gettimeofday () else 0. in
            let warm = if options.Bb.warm_lp then node.t_basis else None in
            let solve_node () =
              Simplex.Core.solve_warm ~lb:node.t_lb ~ub:node.t_ub ?warm
                ?instr ~trace ~worker:w core
            in
            let r, node_basis =
              if node.t_depth = 0 then
                Rfloor_trace.span trace ~worker:w Rfloor_trace.Event.Root_lp
                  solve_node
              else solve_node ()
            in
            if mlive then begin
              Rfloor_metrics.Registry.Histogram.observe h_lp_seconds
                (Unix.gettimeofday () -. t_lp);
              Rfloor_metrics.Registry.Histogram.observe h_lp_iters
                (float_of_int r.Simplex.iterations)
            end;
            ignore (Sync.Atomic.fetch_and_add iters r.Simplex.iterations);
            local_iters.(w) <- local_iters.(w) + r.Simplex.iterations;
            match r.Simplex.status with
            | Simplex.Infeasible -> ()
            | Simplex.Iter_limit -> Sync.Atomic.set incomplete true
            | Simplex.Unbounded ->
              (* any node's ray is a ray of the root relaxation *)
              Sync.Atomic.set unbounded true
            | Simplex.Optimal -> (
              let bound = key r.Simplex.objective in
              if node.t_depth = 0 then Sync.Atomic.set root_bound bound;
              if bound >= cutoff () then ()
              else
                match
                  pick_branch ~int_eps:options.Bb.int_eps
                    ~priorities:options.Bb.priorities int_vars r.Simplex.x
                with
                | None ->
                  let x = Array.copy r.Simplex.x in
                  List.iter (fun v -> x.(v) <- Float.round x.(v)) int_vars;
                  let obj_key = key (Lp.objective_value lp x) in
                  if improve obj_key x then
                    Rfloor_trace.incumbent trace ~worker:w
                      ~objective:(unkey obj_key) ~node:(Sync.Atomic.get nodes)
                | Some v ->
                  let f = r.Simplex.x.(v) in
                  let fl = Float.round (floor (f +. options.Bb.int_eps)) in
                  let down () =
                    let ub = Array.copy node.t_ub in
                    ub.(v) <- min ub.(v) fl;
                    { t_lb = Array.copy node.t_lb; t_ub = ub; t_bound = bound;
                      t_depth = node.t_depth + 1; t_basis = node_basis }
                  and up () =
                    let lb = Array.copy node.t_lb in
                    lb.(v) <- max lb.(v) (fl +. 1.);
                    { t_lb = lb; t_ub = Array.copy node.t_ub; t_bound = bound;
                      t_depth = node.t_depth + 1; t_basis = node_basis }
                  in
                  let first, second =
                    if frac f <= 0. then (down (), up ()) else (up (), down ())
                  in
                  stack := first :: second :: !stack;
                  donate w stack)
          end
        end
    done
  in
  let rec worker_loop w idle_spins =
    if stop_requested () then ()
    else begin
      let claimed = try_claim () in
      Rfloor_trace.steal_attempt trace ~success:(claimed <> None);
      match claimed with
      | Some t ->
        Fun.protect
          ~finally:(fun () -> Sync.Atomic.decr active)
          (fun () -> process w t);
        worker_loop w 0
      | None ->
        if Sync.Atomic.get active = 0 then () (* frontier exhausted *)
        else begin
          if idle_spins = 0 then Rfloor_trace.worker_idle trace ~worker:w;
          if idle_spins < 200 then Domain.cpu_relax () else Unix.sleepf 0.0002;
          worker_loop w (idle_spins + 1)
        end
    end
  in
  push_tasks
    [ { t_lb = root_lb; t_ub = root_ub; t_bound = neg_infinity; t_depth = 0;
        t_basis = None } ];
  let domains =
    List.init (workers - 1) (fun i -> Sync.Domain.spawn ~name:(Printf.sprintf "bb.worker%d" (i + 1))
          (fun () -> worker_loop (i + 1) 0))
  in
  worker_loop 0 0;
  List.iter Sync.Domain.join domains;
  for w = 0 to workers - 1 do
    Rfloor_trace.add_worker_totals trace ~worker:w ~nodes:local_nodes.(w)
      ~iterations:local_iters.(w)
  done;
  let leftover =
    Sync.Mutex.lock qm;
    let l = List.of_seq (Queue.to_seq queue) in
    Sync.Mutex.unlock qm;
    l
  in
  let final = Sync.Atomic.get inc in
  let complete = leftover = [] && not (Sync.Atomic.get incomplete) in
  let bound_key =
    if Sync.Atomic.get unbounded then neg_infinity
    else if complete then final.i_key
    else
      List.fold_left
        (fun acc t ->
          min acc
            (if t.t_bound = neg_infinity then Sync.Atomic.get root_bound else t.t_bound))
        final.i_key leftover
  in
  let status =
    if Sync.Atomic.get unbounded then Bb.Unbounded
    else
      match (final.i_x, complete) with
      | Some _, true -> Bb.Optimal
      | Some _, false -> Bb.Feasible
      | None, true -> Bb.Infeasible
      | None, false -> Bb.Unknown
  in
  let stop =
    if Sync.Atomic.get unbounded then None (* conclusive, even with open nodes *)
    else if Sync.Atomic.get cancelled then Some Bb.Cancelled
    else if not complete then Some Bb.Budget
    else None
  in
  {
    Bb.status;
    incumbent =
      (match final.i_x with Some x -> Some (unkey final.i_key, x) | None -> None);
    best_bound = unkey bound_key;
    nodes = Sync.Atomic.get nodes;
    simplex_iterations = Sync.Atomic.get iters;
    (* single monotone sample, clamped: re-queued nodes from a
       cooperative stop never double-charge the elapsed time *)
    elapsed = Float.max 0. (Unix.gettimeofday () -. t0);
    stop;
  }
