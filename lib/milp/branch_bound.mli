(** Branch-and-bound for mixed-integer linear programs.

    LP relaxations are solved with {!Simplex}; branching is on the most
    fractional integer variable (optionally weighted by user priorities),
    depth-first with best-child-first ordering so feasible incumbents
    appear early.  Supports time/node limits, a relative MIP gap, warm
    incumbents, and lexicographic re-optimization via {!val:solve}. *)

type status =
  | Optimal  (** incumbent proven optimal (within the MIP gap) *)
  | Feasible  (** stopped early with an incumbent *)
  | Infeasible
  | Unbounded
  | Unknown  (** stopped early without an incumbent *)

type stop_reason =
  | Budget  (** time limit, node limit, or a simplex iteration cap *)
  | Cancelled  (** the cooperative [cancel] token fired *)

type result = {
  status : status;
  incumbent : (float * float array) option;
      (** Objective (original direction, with constant) and variable values. *)
  best_bound : float;
      (** Valid dual bound on the optimum, original direction. *)
  nodes : int;
  simplex_iterations : int;
  elapsed : float;
      (** Wall-clock seconds ([Unix.gettimeofday]-based).  Wall clock —
          not CPU time — so that a parallel run ({!Parallel_bb}) reports
          the time the caller actually waited.  Sampled exactly once
          against this call's own start and clamped non-negative, so a
          node handed back by a cooperative stop can never be charged
          twice. *)
  stop : stop_reason option;
      (** Why the search ended early; [None] when it ran to completion
          (status [Optimal], [Infeasible] or [Unbounded]).  [Cancelled]
          wins when both a cancel and a budget stop raced. *)
}

type options = {
  time_limit : float option;  (** wall-clock seconds *)
  node_limit : int option;
  mip_gap : float;  (** relative gap for pruning/termination, default 1e-6 *)
  int_eps : float;  (** integrality tolerance, default 1e-6 *)
  priorities : float array option;
      (** Branching priorities per variable; higher branches first. *)
  trace : Rfloor_trace.t;
      (** Structured observability: per-node events, incumbents, root
          cuts, warnings.  Default {!Rfloor_trace.disabled} (zero cost).
          To recover the old [log : string -> unit] behaviour, build a
          tracer over {!Rfloor_trace.Sink.of_log_fn}. *)
  gomory_rounds : int;
      (** rounds of root-node Gomory cuts (branch and cut); default 0 *)
  metrics : Rfloor_metrics.Registry.t;
      (** Aggregate profiling: per-LP simplex iteration-count and
          wall-time histograms ([rfloor_simplex_iterations_per_lp],
          [rfloor_lp_solve_seconds]).  Default
          {!Rfloor_metrics.Registry.null} — with it, the per-node hot
          path does no histogram work beyond a load-and-branch and
          reads no clocks. *)
  cancel : unit -> bool;
      (** Cooperative cancellation token, polled at every loop head
          (before each node's LP solve).  Returning [true] stops the
          search with [stop = Some Cancelled], keeping the incumbent
          found so far.  Default {!never_cancel}. *)
  warm_lp : bool;
      (** Warm-start each child node's LP from its parent's optimal
          basis through the dual simplex ({!Simplex.Core.solve_warm});
          any doubtful warm solve falls back to a cold solve, so this
          only changes speed, never results.  Default [true]. *)
  external_bound : unit -> float;
      (** Objective value (original direction) of a feasible solution
          known outside this solve — a racing portfolio peer's
          incumbent.  Polled at every pruning decision and combined with
          the own incumbent into the fathoming cutoff.  With an active
          external bound, a completed search without an own incumbent
          reports [Infeasible], meaning "nothing strictly better than
          the external solution exists" — the caller owning that
          external solution must interpret it as an optimality proof for
          it.  Default {!no_external_bound}. *)
}

val never_cancel : unit -> bool
(** The default [cancel] token: always [false]. *)

val no_external_bound : unit -> float
(** The default [external_bound]: always [infinity] (no effect). *)

val default_options : options

val solve :
  ?options:options -> ?worker:int -> ?incumbent:float array -> Lp.t -> result
(** [solve lp] optimizes the MILP.  [incumbent], if given, must be an
    integer-feasible assignment; it seeds the primal bound.  [worker]
    (default 0) tags this solve's trace events and per-worker totals. *)

val objective_key : Lp.dir -> float -> float
(** Normalizes an objective value to minimization order (used by callers
    comparing bounds across directions). *)

val lp_histograms :
  Rfloor_metrics.Registry.t ->
  Rfloor_metrics.Registry.Histogram.t * Rfloor_metrics.Registry.Histogram.t
(** [(iterations_per_lp, lp_seconds)] profiling handles for per-LP
    observations — shared with {!Parallel_bb} so sequential and
    parallel solves feed the same series. *)
