(** Work-stealing parallel branch-and-bound on OCaml 5 domains.

    Same search as {!Branch_bound} — LP relaxations via {!Simplex},
    most-fractional branching, depth-first dives — but the open-node
    frontier is shared between [workers] domains:

    - the incumbent lives in a single {!Atomic.t} cell updated by a
      lock-free compare-and-set loop, so every worker prunes against
      the globally best primal bound;
    - open subproblems are serialized as bound-tightening overlays
      (full lower/upper-bound arrays) on the root LP; a worker popping
      one rebuilds nothing — the preprocessed {!Simplex.Core} is
      immutable after construction and shared read-only by all domains;
    - each worker dives depth-first on a private stack and periodically
      donates the shallowest (largest) subtrees to the global deque
      whenever it runs short, which is work stealing with the donor
      paying the transfer;
    - termination is cooperative: workers exit when the deque is empty
      and no worker is mid-dive, or when a proven gap / time limit /
      node limit / [options.cancel] token fires (remaining open nodes
      are returned to the deque so the reported dual bound stays sound;
      [result.stop] distinguishes a cancel from a budget stop, and a
      single [Stopped] trace event is emitted for the whole pool).

    Results are a {!Branch_bound.result}: [nodes] and
    [simplex_iterations] are aggregated across workers and [elapsed] is
    wall-clock.  Node counts and which optimal solution is returned
    vary run to run; the objective value and status do not (within
    [mip_gap]) — the differential test suite enforces exactly that
    against the sequential solver. *)

val solve :
  ?options:Branch_bound.options ->
  ?workers:int ->
  ?incumbent:float array ->
  Lp.t ->
  Branch_bound.result
(** [solve ~workers lp] optimizes the MILP with [workers] domains
    (default 1: the parallel machinery on a single worker, no spawns).
    [options.trace] events carry the emitting worker's id; sinks
    serialize concurrent emitters internally, and per-worker node and
    simplex-iteration totals are flushed to the tracer after the joins.
    Root Gomory cuts ([options.gomory_rounds]) are generated once on
    the root model before workers start. *)

val workers_from_env : ?default:int -> ?trace:Rfloor_trace.t -> unit -> int
(** Worker count from the [RFLOOR_WORKERS] environment variable.
    A parsable but non-positive value (["0"], ["-2"]) is clamped to 1;
    an unparsable value (["abc"]) falls back to [default] (1); both emit
    a [Warning] event on [trace] (default {!Rfloor_trace.disabled}).
    Shared by [bin/rfloor_cli] and [bench/main]. *)
