(** Problem-structure cutting planes for the floorplanning MILP.

    Two families, both added to the model at build time (before any
    branch-and-bound node is explored):

    {b Symmetry-breaking cuts.}  The [k] free-compatible areas requested
    for one region are pairwise interchangeable: they satisfy identical
    constraint sets (Eq. 6/7/9/10 against the same target, the same
    non-overlap disjunctions, the same soft weight), so every solution
    is one of up to [k!] permutations of the same geometric object.
    {!add_symmetry_cuts} imposes a lexicographic order on the copies via
    the scalar position key [P(c) = (height+1)*x(c) + ymin(c)]: two kept
    copies have equal width and height (forced by Eq. 6/9), and
    non-overlapping equal-dimension rectangles cannot share [(x, ymin)],
    so [P] is injective over the kept copies of a group and some
    permutation of every solution satisfies [P(c_i) + 1 <= P(c_i+1)].
    For soft copies the order is relaxed by [M*(v_i + v_i+1)] (a dropped
    copy's geometry is unconstrained) and a second family [v_i <= v_i+1]
    pushes the dropped copies to the tail of the group, which keeps the
    kept copies index-consecutive so the pairwise chain stays binding.

    {b Portion-packing / capacity cuts.}  From the columnar structure of
    Properties .3/.4: the per-row slices of non-overlapping regions
    inside one portion cannot exceed the portion width, and the tiles
    covered per resource kind cannot exceed the device's usable tiles of
    that kind.  These rows are implied for integer points but tighten
    the LP relaxation.  {!add_packing_cuts} screens each candidate row
    with its activity range (the {!activity} machinery the model lint
    uses for bound-infeasibility checks): a row whose maximum activity
    already satisfies the bound is implied by the variable bounds alone
    and is not added. *)

type sym_member = {
  sm_x : Lp.var;  (** leftmost column, integer variable *)
  sm_ymin : Lp.term list;
      (** linear expression of the top row, integer-valued at integer
          points (e.g. [sum (r+1) * s(r)] over start indicators) *)
  sm_drop : Lp.var option;  (** violation binary of a soft copy *)
}

val add_symmetry_cuts :
  Lp.t -> width:int -> height:int -> sym_member list list -> int
(** [add_symmetry_cuts lp ~width ~height groups] adds the lexicographic
    ordering constraints for each group of interchangeable members and
    returns the number of rows added.  Groups with fewer than two
    members contribute nothing.  Unsafe when other constraints already
    distinguish the members of a group (e.g. HO-mode pair relations
    mention them) — the caller must not pass such groups. *)

val activity : Lp.t -> Lp.term list -> float * float
(** [(min, max)] activity of a linear expression over the variable
    bounds of [lp] (infinite when a contributing bound is infinite). *)

type packing_row = {
  pr_name : string;
  pr_terms : Lp.term list;
  pr_rhs : float;  (** row sense is [terms <= rhs] *)
}

val add_packing_cuts : Lp.t -> packing_row list -> int
(** Adds the rows whose activity range does not already imply them
    (max activity > rhs) and returns the number added.  Rows with no
    terms are skipped.  Every row passed must be valid for all integer
    solutions; this function only screens for usefulness, never for
    validity. *)
