(* Sparse LU of a simplex basis with a product-form update file.

   The factorization is left-looking: column j of the basis is
   scattered into a dense scratch vector, eliminated against the
   already-computed columns in pivot-step order, and the largest
   remaining entry (partial pivoting) becomes the step-j pivot.  L is
   stored column-wise in original-row coordinates with a unit diagonal
   implied; U is stored column-wise in pivot-step coordinates with an
   explicit diagonal.

   Basis changes append product-form etas (r, w, w_r) where w is the
   ftran image of the incoming column: the new basis is B·E with E the
   identity whose column r is w, so ftran applies the eta inverses
   oldest-first after the LU solve and btran applies the transposes
   newest-first before it. *)

exception Singular

type eta = {
  e_r : int; (* basis position of the replaced column *)
  e_entries : (int * float) array; (* nonzeros of w, position-indexed *)
  e_pivot : float; (* w.(e_r) *)
}

type t = {
  m : int;
  perm : int array; (* pivot step -> original row *)
  rowpos : int array; (* original row -> pivot step *)
  lcols : (int * float) array array; (* per step: (orig row, multiplier) *)
  ucols : (int * float) array array; (* per step: (earlier step, coef) *)
  diag : float array;
  lu_fill : int;
  mutable etas : eta array; (* first n_etas slots, oldest first *)
  mutable n_etas : int;
  mutable eta_fill : int;
  mutable unstable : bool;
  fw : float array; (* solve scratch *)
}

let size t = t.m

let factor_pivot_tol = 1e-12
let eta_drop_tol = 1e-13
let eta_pivot_tol = 1e-9
let base_eta_cap = 64

let factor ~m col_iter basis =
  let perm = Array.make m (-1) in
  let rowpos = Array.make m (-1) in
  let lcols = Array.make m [||] in
  let ucols = Array.make m [||] in
  let diag = Array.make m 0. in
  let x = Array.make m 0. in
  let touched = Array.make m false in
  let touch_list = Array.make m 0 in
  let fill = ref 0 in
  for j = 0 to m - 1 do
    let nt = ref 0 in
    let touch r =
      if not touched.(r) then begin
        touched.(r) <- true;
        touch_list.(!nt) <- r;
        incr nt
      end
    in
    col_iter basis.(j) (fun r c ->
        touch r;
        x.(r) <- x.(r) +. c);
    (* left-looking elimination in step order; updates from step k only
       reach rows pivoted later, so an ascending scan is complete *)
    let uacc = ref [] in
    for k = 0 to j - 1 do
      let pr = perm.(k) in
      if touched.(pr) && x.(pr) <> 0. then begin
        let ukj = x.(pr) in
        uacc := (k, ukj) :: !uacc;
        Array.iter
          (fun (r, mult) ->
            touch r;
            x.(r) <- x.(r) -. (mult *. ukj))
          lcols.(k)
      end
    done;
    let best = ref (-1) and bestv = ref 0. in
    for ti = 0 to !nt - 1 do
      let r = touch_list.(ti) in
      if rowpos.(r) < 0 then begin
        let a = abs_float x.(r) in
        if a > !bestv then begin
          bestv := a;
          best := r
        end
      end
    done;
    if !best < 0 || !bestv < factor_pivot_tol then raise Singular;
    let pr = !best in
    let d = x.(pr) in
    diag.(j) <- d;
    perm.(j) <- pr;
    rowpos.(pr) <- j;
    let lacc = ref [] in
    for ti = 0 to !nt - 1 do
      let r = touch_list.(ti) in
      if rowpos.(r) < 0 && x.(r) <> 0. then lacc := (r, x.(r) /. d) :: !lacc;
      touched.(r) <- false;
      x.(r) <- 0.
    done;
    lcols.(j) <- Array.of_list !lacc;
    ucols.(j) <- Array.of_list !uacc;
    fill := !fill + Array.length lcols.(j) + Array.length ucols.(j) + 1
  done;
  {
    m;
    perm;
    rowpos;
    lcols;
    ucols;
    diag;
    lu_fill = !fill;
    etas = [||];
    n_etas = 0;
    eta_fill = 0;
    unstable = false;
    fw = Array.make m 0.;
  }

let ftran t b =
  let m = t.m in
  let z = t.fw in
  (* L-solve: read b in original-row space, collect z in step space *)
  for k = 0 to m - 1 do
    let zk = b.(t.perm.(k)) in
    z.(k) <- zk;
    if zk <> 0. then
      Array.iter (fun (r, mult) -> b.(r) <- b.(r) -. (mult *. zk)) t.lcols.(k)
  done;
  (* U back-substitution; b's row-space values are dead, reuse it for
     the basis-position result *)
  for j = m - 1 downto 0 do
    let yj = z.(j) /. t.diag.(j) in
    if yj <> 0. then
      Array.iter (fun (k, u) -> z.(k) <- z.(k) -. (u *. yj)) t.ucols.(j);
    b.(j) <- yj
  done;
  (* eta inverses, oldest first *)
  for i = 0 to t.n_etas - 1 do
    let e = t.etas.(i) in
    let br = b.(e.e_r) in
    if br <> 0. then begin
      let tp = br /. e.e_pivot in
      Array.iter
        (fun (idx, wv) ->
          if idx = e.e_r then b.(idx) <- tp
          else b.(idx) <- b.(idx) -. (wv *. tp))
        e.e_entries
    end
  done

let btran t c =
  let m = t.m in
  (* transposed etas, newest first; c stays basis-position indexed *)
  for i = t.n_etas - 1 downto 0 do
    let e = t.etas.(i) in
    let s = ref 0. in
    Array.iter
      (fun (idx, wv) -> if idx <> e.e_r then s := !s +. (wv *. c.(idx)))
      e.e_entries;
    c.(e.e_r) <- (c.(e.e_r) -. !s) /. e.e_pivot
  done;
  (* U^T forward solve into step space *)
  let v = t.fw in
  for j = 0 to m - 1 do
    let s = ref c.(j) in
    Array.iter (fun (k, u) -> s := !s -. (u *. v.(k))) t.ucols.(j);
    v.(j) <- !s /. t.diag.(j)
  done;
  (* L^T backward solve; lcols.(k) rows pivot strictly after step k, so
     the in-place descending sweep only reads finished entries *)
  for k = m - 1 downto 0 do
    let s = ref v.(k) in
    Array.iter
      (fun (r, mult) -> s := !s -. (mult *. v.(t.rowpos.(r))))
      t.lcols.(k);
    v.(k) <- !s
  done;
  for k = 0 to m - 1 do
    c.(t.perm.(k)) <- v.(k)
  done

let push t e =
  if t.n_etas = Array.length t.etas then begin
    let cap = max 8 (2 * Array.length t.etas) in
    let a = Array.make cap e in
    Array.blit t.etas 0 a 0 t.n_etas;
    t.etas <- a
  end;
  t.etas.(t.n_etas) <- e;
  t.n_etas <- t.n_etas + 1

let update t r w =
  let entries = ref [] and count = ref 0 and maxa = ref 0. in
  for i = t.m - 1 downto 0 do
    let wi = w.(i) in
    if wi <> 0. && (i = r || abs_float wi > eta_drop_tol) then begin
      entries := (i, wi) :: !entries;
      incr count;
      let a = abs_float wi in
      if a > !maxa then maxa := a
    end
  done;
  let wr = w.(r) in
  push t { e_r = r; e_entries = Array.of_list !entries; e_pivot = wr };
  t.eta_fill <- t.eta_fill + !count;
  if abs_float wr < eta_pivot_tol *. (1. +. !maxa) then t.unstable <- true

let eta_count t = t.n_etas
let fill t = t.lu_fill
let unstable t = t.unstable

let needs_refactor ?(cap = base_eta_cap) t =
  t.unstable || t.n_etas >= cap || t.eta_fill > 4 * (t.lu_fill + t.m)

let perm t = Array.copy t.perm

let dense_l t =
  let m = t.m in
  let a = Array.init m (fun _ -> Array.make m 0.) in
  for k = 0 to m - 1 do
    a.(k).(k) <- 1.;
    Array.iter (fun (r, mult) -> a.(t.rowpos.(r)).(k) <- mult) t.lcols.(k)
  done;
  a

let dense_u t =
  let m = t.m in
  let a = Array.init m (fun _ -> Array.make m 0.) in
  for j = 0 to m - 1 do
    a.(j).(j) <- t.diag.(j);
    Array.iter (fun (k, u) -> a.(k).(j) <- u) t.ucols.(j)
  done;
  a
