(** Bounded-variable revised primal simplex.

    Solves the continuous relaxation of an {!Lp.t}: all variable kinds are
    ignored, only bounds matter.  Two-phase method with artificial
    variables, Dantzig pricing with a Bland's-rule fallback against
    cycling, and periodic basis refactorization for numerical hygiene. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit

type outcome = {
  status : status;
  objective : float;
      (** Objective in the problem's own direction, including the
          constant.  Meaningful only when [status = Optimal]. *)
  x : float array;  (** Structural variable values (length [Lp.num_vars]). *)
  iterations : int;
}

val solve :
  ?max_iters:int ->
  ?trace:Rfloor_trace.t ->
  ?metrics:Rfloor_metrics.Registry.t ->
  Lp.t ->
  outcome
(** One-shot solve of the LP relaxation.  [trace] (default
    {!Rfloor_trace.disabled}) brackets the solve in an [Lp_solve]
    span.  [metrics] (default {!Rfloor_metrics.Registry.null}) records
    the solve into the [rfloor_lp_solve_seconds] and
    [rfloor_simplex_iterations_per_lp] histograms. *)

module Core : sig
  (** Preprocessed problem reusable across many solves that differ only
      in variable bounds — the branch-and-bound workhorse. *)

  type t

  val of_lp : Lp.t -> t
  val num_vars : t -> int
  val num_rows : t -> int

  val solve :
    ?max_iters:int -> ?lb:float array -> ?ub:float array -> t -> outcome
  (** [solve ~lb ~ub core] solves with structural variable bounds
      overridden by [lb]/[ub] (full arrays of length [num_vars]). *)

  val solve_with_basis :
    ?max_iters:int ->
    ?lb:float array ->
    ?ub:float array ->
    t ->
    outcome * (int array * bool array * float array) option
  (** Like {!solve}; on an optimal finish additionally returns
      [(basis, at_upper, values)]: the basic column of each row, whether
      each structural/slack column rests at its upper bound, and the
      structural+slack values — what {!Gomory} needs to derive cuts.
      Columns are numbered structurals first, then one slack per row. *)
end
