(** Bounded-variable sparse revised simplex.

    Solves the continuous relaxation of an {!Lp.t}: all variable kinds
    are ignored, only bounds matter.  Two-phase method with artificial
    variables over an LU-factorized basis ({!Lu}) that is extended by
    product-form updates and refactorized on fill/stability triggers;
    devex pricing with a Bland's-rule fallback against cycling and a
    Harris-style two-pass ratio test.  Branch-and-bound children can
    re-solve warm from a parent {!Basis.t} snapshot through a dual
    simplex path ({!Core.solve_warm}); any doubt on that path falls
    back to the cold two-phase solve, which stays the correctness
    anchor — statuses, objectives and primal solutions are identical
    between the two paths up to solver tolerances. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit

type outcome = {
  status : status;
  objective : float;
      (** Objective in the problem's own direction, including the
          constant.  Meaningful only when [status = Optimal]. *)
  x : float array;  (** Structural variable values (length [Lp.num_vars]). *)
  iterations : int;
}

type instruments
(** Pre-registered LP metrics counters, created once per solver run
    (registration takes the registry mutex; counter updates are
    lock-free and domain-safe). *)

val instruments : Rfloor_metrics.Registry.t -> instruments
(** Registers and returns the LP counters:
    [rfloor_lp_factorizations_total] (fresh sparse LU builds),
    [rfloor_lp_ft_updates_total] (product-form basis updates) and
    [rfloor_lp_warm_starts_total] (re-solves served warm by the dual
    simplex). *)

module Basis : sig
  type t
  (** Opaque immutable basis snapshot: the basic column of every row
      plus the bound status of every structural/slack column.  Safe to
      share across domains. *)
end

val solve :
  ?max_iters:int ->
  ?trace:Rfloor_trace.t ->
  ?metrics:Rfloor_metrics.Registry.t ->
  Lp.t ->
  outcome
(** One-shot solve of the LP relaxation.  [trace] (default
    {!Rfloor_trace.disabled}) brackets the solve in an [Lp_solve]
    span.  [metrics] (default {!Rfloor_metrics.Registry.null}) records
    the solve into the [rfloor_lp_solve_seconds] and
    [rfloor_simplex_iterations_per_lp] histograms and the
    {!instruments} counters. *)

module Core : sig
  (** Preprocessed problem reusable across many solves that differ only
      in variable bounds — the branch-and-bound workhorse. *)

  type t

  val of_lp : Lp.t -> t
  val num_vars : t -> int
  val num_rows : t -> int

  val solve :
    ?max_iters:int -> ?lb:float array -> ?ub:float array -> t -> outcome
  (** [solve ~lb ~ub core] solves with structural variable bounds
      overridden by [lb]/[ub] (full arrays of length [num_vars]). *)

  val solve_with_basis :
    ?max_iters:int ->
    ?lb:float array ->
    ?ub:float array ->
    t ->
    outcome * (int array * bool array * float array) option
  (** Like {!solve}; on an optimal finish additionally returns
      [(basis, at_upper, values)]: the basic column of each row, whether
      each structural/slack column rests at its upper bound, and the
      structural+slack values — what {!Gomory} needs to derive cuts.
      Columns are numbered structurals first, then one slack per row. *)

  val solve_warm :
    ?max_iters:int ->
    ?lb:float array ->
    ?ub:float array ->
    ?warm:Basis.t ->
    ?instr:instruments ->
    ?trace:Rfloor_trace.t ->
    ?worker:int ->
    t ->
    outcome * Basis.t option
  (** Like {!solve}, plus the warm-start protocol: with [warm] the
      solve first tries a dual simplex run from the parent basis
      (correct after branching bound flips, where the parent basis
      stays dual feasible) and falls back to the cold two-phase solve
      whenever the warm path cannot certify the result.  On an optimal
      finish the returned {!Basis.t} snapshot seeds the children.
      [instr] counts factorizations, product-form updates and warm
      starts; [trace]/[worker] emit [Lp_refactor]/[Lp_warm] events. *)
end
