(** Sparse LU factorization of a simplex basis, with a product-form
    update file.

    [factor] computes a left-looking (Gilbert–Peierls style) sparse LU
    with partial pivoting of the basis matrix [B] whose column [j] is
    the constraint column of the variable basic in position [j]:
    [L·U = P·B] for a row permutation [P].  After a pivot the
    factorization is extended with a product-form eta instead of being
    recomputed ({!update}); {!needs_refactor} reports when the eta file
    has grown past its cap, accumulated fill, or absorbed a pivot too
    small to be trusted — the caller then refactorizes from scratch.

    Vector index conventions (dimension [m] throughout):
    - {!ftran} solves [B·w = b]: input indexed by original row, result
      indexed by basis position.
    - {!btran} solves [Bᵀ·y = c]: input indexed by basis position,
      result indexed by original row. *)

type t

exception Singular
(** Raised by {!factor} when the basis matrix is numerically singular
    (no acceptable pivot in some column). *)

val factor : m:int -> (int -> (int -> float -> unit) -> unit) -> int array -> t
(** [factor ~m col_iter basis] factorizes the [m]×[m] basis whose
    position-[j] column is the column of variable [basis.(j)];
    [col_iter v f] must call [f row coef] for every structural nonzero
    of variable [v]'s column.  Raises {!Singular}. *)

val size : t -> int
(** Dimension [m]. *)

val ftran : t -> float array -> unit
(** [ftran t b] overwrites [b] (length [m], original-row indexed) with
    the solution of [B·w = b], basis-position indexed. *)

val btran : t -> float array -> unit
(** [btran t c] overwrites [c] (length [m], basis-position indexed)
    with the solution of [Bᵀ·y = c], original-row indexed. *)

val update : t -> int -> float array -> unit
(** [update t r w] records that the basic column in position [r] was
    replaced by a column whose ftran image is [w] (basis-position
    indexed, as returned by {!ftran}); [w] is copied.  The spike pivot
    [w.(r)] must be nonzero — a tiny value is accepted but flags the
    factorization as {!needs_refactor}. *)

val eta_count : t -> int
(** Number of product-form updates since the last fresh factorization. *)

val fill : t -> int
(** Nonzeros stored in [L] and [U] (excluding the eta file). *)

val unstable : t -> bool
(** True once some eta pivot was small enough to endanger accuracy. *)

val needs_refactor : ?cap:int -> t -> bool
(** True when the update file is no longer trustworthy or economical:
    [eta_count >= cap] (default 64), eta fill has outgrown the factor
    fill, or some eta pivot was dangerously small. *)

(** {2 Test accessors}

    Dense reconstructions for the property-test suite; O(m²). *)

val perm : t -> int array
(** [perm t].(k) is the original row chosen as pivot at step [k]. *)

val dense_l : t -> float array array
(** Unit-lower-triangular [L] in pivot-step coordinates. *)

val dense_u : t -> float array array
(** Upper-triangular [U] in pivot-step coordinates. *)
