(** Linear / mixed-integer program builder.

    An [Lp.t] is a mutable problem under construction: variables with
    bounds and kinds, linear constraints, and a linear objective.  The
    representation is solver-agnostic; {!Simplex} and {!Branch_bound}
    consume it, {!Lp_format} and {!Mps} serialize it. *)

type var = int
(** Variable handle: index in creation order, dense from 0. *)

type var_kind =
  | Continuous
  | Integer
  | Binary  (** integer restricted to [{0,1}] *)

type dir = Minimize | Maximize

type sense = Le | Ge | Eq

type term = float * var
(** A linear term [coeff * variable]. *)

type t

val create : ?name:string -> unit -> t

val name : t -> string

val add_var :
  t -> ?name:string -> ?lb:float -> ?ub:float -> ?kind:var_kind -> unit -> var
(** Fresh variable.  Defaults: [lb = 0.], [ub = infinity],
    [kind = Continuous].  [Binary] forces bounds into [[0, 1]].
    Lower bounds may be [neg_infinity]. *)

val add_constr : t -> ?name:string -> term list -> sense -> float -> unit
(** [add_constr t terms sense rhs] adds the row [terms sense rhs].
    Terms are normalized: duplicates summed, zero coefficients dropped.
    @raise Invalid_argument on an out-of-range variable. *)

val set_objective : t -> dir -> ?constant:float -> term list -> unit
(** Replaces the objective.  [constant] is added to reported values. *)

val num_vars : t -> int
val num_constrs : t -> int
val num_integer_vars : t -> int

val var_name : t -> var -> string
val var_lb : t -> var -> float
val var_ub : t -> var -> float
val var_kind : t -> var -> var_kind
val set_bounds : t -> var -> lb:float -> ub:float -> unit
val set_kind : t -> var -> var_kind -> unit

val objective_dir : t -> dir
val objective_constant : t -> float
val objective_terms : t -> term list
val objective_coeff : t -> var -> float

val constr_name : t -> int -> string
val constr_terms : t -> int -> term list
val constr_sense : t -> int -> sense
val constr_rhs : t -> int -> float
val set_rhs : t -> int -> float -> unit

val iter_constrs : t -> (int -> term list -> sense -> float -> unit) -> unit

val fold_constrs :
  t -> init:'a -> ('a -> int -> term list -> sense -> float -> 'a) -> 'a
(** [fold_constrs t ~init f] folds [f] over the rows in index order —
    the iteration primitive for analysis passes, so they need no index
    loops over {!constr_terms}. *)

val integer_vars : t -> var list
(** Variables of kind [Integer] or [Binary], ascending. *)

val relax : t -> t
(** Copy with every variable made [Continuous] (LP relaxation). *)

val copy : t -> t

val eval_terms : float array -> term list -> float
(** [eval_terms x terms] is [sum coeff * x.(v)]. *)

val constr_violation : t -> float array -> float
(** Maximum violation of any row under assignment [x]; [0.] if feasible. *)

val bounds_violation : t -> float array -> float

val objective_value : t -> float array -> float

val is_integral : ?eps:float -> t -> float array -> bool
(** All integer variables within [eps] (default [1e-6]) of an integer. *)

val validate : ?eps:float -> t -> float array -> (unit, string) result
(** Feasibility check (rows, bounds, integrality) with diagnostics. *)

val pp_stats : Format.formatter -> t -> unit
