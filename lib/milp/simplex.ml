(* Sparse revised simplex over an LU-factorized basis.

   The basis inverse is never formed: every iteration works through
   {!Lu} ftran/btran solves against a sparse LU of the basis, extended
   by product-form etas after each pivot and refactorized from scratch
   when the eta file grows past its cap, accumulates fill, or absorbs a
   pivot too small to trust.  Pricing is devex (reference-framework
   weights, reset on phase switches or weight blow-up) with a
   Bland's-rule fallback after a long degenerate streak; the ratio test
   is a two-pass Harris test that relaxes bounds by a small tolerance
   in pass one and then picks the numerically largest eligible pivot.

   Besides the classic cold two-phase primal solve there is a dual
   simplex path ({!Core.solve_warm}) for branch-and-bound children: a
   parent-optimal basis stays dual feasible after a branching bound
   flip, so the child re-solve starts from the parent {!Basis.t}
   snapshot and drives out primal infeasibility with dual pivots.
   Every doubt on that path — singular factorization, dual
   infeasibility beyond tolerance, no eligible entering column, an
   overshot entering bound, an iteration cap — falls back to the cold
   solve, which remains the correctness anchor. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit

type outcome = {
  status : status;
  objective : float;
  x : float array;
  iterations : int;
}

let feas_eps = 1e-7
let dual_eps = 1e-7
let pivot_eps = 1e-9
let harris_tol = 1e-8 (* pass-one bound relaxation of the ratio test *)
let bland_after = 400 (* consecutive degenerate pivots before Bland's rule *)
let base_eta_cap = 64 (* product-form updates between refactorizations *)
let devex_reset = 1e8 (* weight blow-up that resets the reference frame *)
let warm_dual_tol = 1e-6 (* dual infeasibility accepted at warm install *)

module R = Rfloor_metrics.Registry

type instruments = {
  i_factor : R.Counter.t;
  i_ft : R.Counter.t;
  i_warm : R.Counter.t;
}

let instruments reg =
  {
    i_factor =
      R.counter reg ~help:"LP basis factorizations (fresh sparse LU builds)"
        "rfloor_lp_factorizations_total";
    i_ft =
      R.counter reg
        ~help:"Product-form basis updates between LP refactorizations"
        "rfloor_lp_ft_updates_total";
    i_warm =
      R.counter reg
        ~help:"LP re-solves served warm by the dual simplex from a parent basis"
        "rfloor_lp_warm_starts_total";
  }

module P = struct
  (* Columns are laid out as: structural vars [0, n), slacks [n, n+m),
     artificials [n+m, n+2m).  Slack and artificial columns are unit
     vectors and never stored explicitly. *)
  type t = {
    n : int;
    m : int;
    cols : (int * float) array array; (* structural sparse columns *)
    cost : float array; (* minimization costs for structural vars *)
    dir : Lp.dir;
    obj_constant : float;
    b : float array;
    lb0 : float array; (* default bounds, length n + 2m *)
    ub0 : float array;
  }

  let num_vars t = t.n
  let num_rows t = t.m

  let of_lp lp =
    let n = Lp.num_vars lp in
    let m = Lp.num_constrs lp in
    let cols_acc = Array.make n [] in
    let b = Array.make m 0. in
    Lp.iter_constrs lp (fun i terms _ rhs ->
        b.(i) <- rhs;
        List.iter (fun (c, v) -> cols_acc.(v) <- (i, c) :: cols_acc.(v)) terms);
    let cols = Array.map (fun l -> Array.of_list (List.rev l)) cols_acc in
    let dir = Lp.objective_dir lp in
    let sign = match dir with Lp.Minimize -> 1. | Lp.Maximize -> -1. in
    let cost = Array.init n (fun v -> sign *. Lp.objective_coeff lp v) in
    let total = n + m + m in
    let lb0 = Array.make total 0. and ub0 = Array.make total 0. in
    for v = 0 to n - 1 do
      lb0.(v) <- Lp.var_lb lp v;
      ub0.(v) <- Lp.var_ub lp v
    done;
    Lp.iter_constrs lp (fun i _ sense _ ->
        (* row + slack = rhs, so: Le -> slack >= 0; Ge -> slack <= 0 *)
        let l, u =
          match sense with
          | Lp.Le -> (0., infinity)
          | Lp.Ge -> (neg_infinity, 0.)
          | Lp.Eq -> (0., 0.)
        in
        lb0.(n + i) <- l;
        ub0.(n + i) <- u);
    (* artificial bounds are set per-solve from the initial residual *)
    { n; m; cols; cost; dir; obj_constant = Lp.objective_constant lp; b; lb0; ub0 }
end

module Basis = struct
  (* Immutable basis snapshot: the basic column of every position plus
     the bound status of every structural/slack column (0 = at lower,
     1 = at upper, 2 = free at zero).  Statuses are re-clamped against
     the child's bounds at install time, which is exactly what a
     branching bound flip needs. *)
  type t = { bs_m : int; bs_nm : int; bs_basis : int array; bs_status : int array }
end

type state = {
  core : P.t;
  total : int; (* n + 2m *)
  lb : float array;
  ub : float array;
  cost : float array; (* current phase costs, length total *)
  x : float array;
  basis : int array; (* variable basic in each position *)
  basic_row : int array; (* variable -> basis position, or -1 *)
  mutable lu : Lu.t;
  y : float array; (* duals, original-row indexed scratch *)
  w : float array; (* ftran image of the entering column, scratch *)
  rho : float array; (* btran image of a unit vector (pivot row), scratch *)
  dw : float array; (* devex reference weights, length total *)
  mutable iters : int;
  mutable ecap : int; (* current eta cap (pushed out on singular refactor) *)
  mutable degen_streak : int;
  instr : instruments option;
  trace : Rfloor_trace.t;
  t_worker : int;
}

let col_iter st j f =
  let n = st.core.P.n in
  if j < n then Array.iter (fun (r, c) -> f r c) st.core.P.cols.(j)
  else f (if j < n + st.core.P.m then j - n else j - n - st.core.P.m) 1.

exception Singular_basis

let count_factor st reason =
  (match st.instr with Some i -> R.Counter.incr i.i_factor | None -> ());
  Rfloor_trace.lp_refactor st.trace ~worker:st.t_worker reason

let factorize st reason =
  match Lu.factor ~m:st.core.P.m (col_iter st) st.basis with
  | lu ->
    st.lu <- lu;
    st.ecap <- base_eta_cap;
    count_factor st reason
  | exception Lu.Singular -> raise Singular_basis

(* Recompute basic variable values from nonbasic values. *)
let compute_basics st =
  let m = st.core.P.m in
  let r = Array.copy st.core.P.b in
  for j = 0 to st.total - 1 do
    if st.basic_row.(j) < 0 && st.x.(j) <> 0. then
      col_iter st j (fun i c -> r.(i) <- r.(i) -. (c *. st.x.(j)))
  done;
  Lu.ftran st.lu r;
  for i = 0 to m - 1 do
    st.x.(st.basis.(i)) <- r.(i)
  done

let refactor st reason =
  factorize st reason;
  compute_basics st

(* Refactorization on the eta-file triggers; a singular fresh factor
   keeps the still-valid eta file and pushes the cap out instead. *)
let maybe_refactor st =
  if Lu.needs_refactor ~cap:st.ecap st.lu then begin
    let reason = if Lu.unstable st.lu then "stability" else "periodic" in
    try refactor st reason
    with Singular_basis -> st.ecap <- Lu.eta_count st.lu + base_eta_cap
  end

(* w := B^-1 * column j *)
let ftran st j =
  Array.fill st.w 0 st.core.P.m 0.;
  col_iter st j (fun r c -> st.w.(r) <- st.w.(r) +. c);
  Lu.ftran st.lu st.w

(* y := (B^-1)^T * cost_B, original-row indexed *)
let btran_costs st =
  let m = st.core.P.m in
  for i = 0 to m - 1 do
    st.y.(i) <- st.cost.(st.basis.(i))
  done;
  Lu.btran st.lu st.y

(* rho := row r of B^-1, original-row indexed *)
let pivot_row st r =
  let m = st.core.P.m in
  Array.fill st.rho 0 m 0.;
  st.rho.(r) <- 1.;
  Lu.btran st.lu st.rho

let reduced_cost st j =
  let d = ref st.cost.(j) in
  col_iter st j (fun r c -> d := !d -. (st.y.(r) *. c));
  !d

let row_coef st j =
  let a = ref 0. in
  col_iter st j (fun r c -> a := !a +. (st.rho.(r) *. c));
  !a

(* Devex reference-framework weight update after a basis change: [q]
   enters, position [r] leaves, [arq] is the pivot element.  Uses the
   pre-update factorization, so it must run before [Lu.update]. *)
let devex_update st r q arq =
  pivot_row st r;
  let wq = st.dw.(q) in
  let arq2 = arq *. arq in
  let maxw = ref 0. in
  for j = 0 to st.total - 1 do
    if j <> q && st.basic_row.(j) < 0 && st.lb.(j) < st.ub.(j) then begin
      let arj = row_coef st j in
      if arj <> 0. then begin
        let cand = wq *. (arj *. arj) /. arq2 in
        if cand > st.dw.(j) then st.dw.(j) <- cand
      end;
      if st.dw.(j) > !maxw then maxw := st.dw.(j)
    end
  done;
  st.dw.(st.basis.(r)) <- Float.max (wq /. arq2) 1.;
  if !maxw > devex_reset then Array.fill st.dw 0 st.total 1.

(* Entering-variable choice.  Returns (j, sigma) where sigma = +1 to
   increase from lower bound, -1 to decrease from upper bound.  Devex
   score d^2 / weight; Bland mode takes the first improving index. *)
let price st ~bland =
  btran_costs st;
  let best = ref (-1) and best_sigma = ref 1. and best_score = ref 0. in
  let consider j =
    if st.basic_row.(j) < 0 && st.lb.(j) < st.ub.(j) then begin
      let d = reduced_cost st j in
      let at_lb = st.x.(j) <= st.lb.(j) +. feas_eps in
      let at_ub = st.x.(j) >= st.ub.(j) -. feas_eps in
      let free = (not at_lb) && not at_ub in
      let improving_dir =
        if (at_lb || free) && d < -.dual_eps then Some 1.
        else if (at_ub || free) && d > dual_eps then Some (-1.)
        else None
      in
      match improving_dir with
      | None -> false
      | Some sigma ->
        let score = if bland then 1. else d *. d /. st.dw.(j) in
        if !best < 0 || score > !best_score then begin
          best := j;
          best_sigma := sigma;
          best_score := score;
          true
        end
        else false
    end
    else false
  in
  if bland then begin
    try
      for j = 0 to st.total - 1 do
        if consider j then raise Exit
      done
    with Exit -> ()
  end
  else
    for j = 0 to st.total - 1 do
      ignore (consider j)
    done;
  if !best < 0 then None else Some (!best, !best_sigma)

type step = Step_ok | Step_unbounded

type ratio = Ratio_flip | Ratio_pivot of int * float * bool | Ratio_unbounded

(* Harris two-pass ratio test over st.w for entering column j moving in
   direction sigma; Bland mode keeps the classic single pass with
   smallest-index tie-breaking. *)
let ratio_test st ~bland j sigma =
  let m = st.core.P.m in
  let own_limit =
    let range = st.ub.(j) -. st.lb.(j) in
    if Float.is_finite range then range else infinity
  in
  if bland then begin
    let limit = ref own_limit and leave = ref (-1) and leave_to_ub = ref false in
    for i = 0 to m - 1 do
      let wi = st.w.(i) *. sigma in
      if abs_float wi > pivot_eps then begin
        let bi = st.basis.(i) in
        let xi = st.x.(bi) in
        let t, to_ub =
          if wi > 0. then ((xi -. st.lb.(bi)) /. wi, false)
          else ((st.ub.(bi) -. xi) /. -.wi, true)
        in
        let t = max t 0. in
        if t < !limit -. 1e-10 then begin
          limit := t;
          leave := i;
          leave_to_ub := to_ub
        end
        else if t <= !limit +. 1e-10 && !leave >= 0 && bi < st.basis.(!leave)
        then begin
          leave := i;
          leave_to_ub := to_ub
        end
      end
    done;
    if !limit = infinity then Ratio_unbounded
    else if !leave < 0 then Ratio_flip
    else Ratio_pivot (!leave, !limit, !leave_to_ub)
  end
  else begin
    (* pass 1: tightest ratio with bounds relaxed by harris_tol *)
    let theta_max = ref infinity in
    for i = 0 to m - 1 do
      let wi = st.w.(i) *. sigma in
      if abs_float wi > pivot_eps then begin
        let bi = st.basis.(i) in
        let room =
          if wi > 0. then st.x.(bi) -. st.lb.(bi) else st.ub.(bi) -. st.x.(bi)
        in
        let t = (room +. harris_tol) /. abs_float wi in
        if t < !theta_max then theta_max := t
      end
    done;
    if own_limit <= !theta_max then
      if own_limit = infinity then Ratio_unbounded else Ratio_flip
    else begin
      (* pass 2: numerically largest pivot among eligible rows *)
      let leave = ref (-1)
      and leave_to_ub = ref false
      and best_piv = ref 0.
      and leave_t = ref 0. in
      for i = 0 to m - 1 do
        let wi = st.w.(i) *. sigma in
        if abs_float wi > pivot_eps then begin
          let bi = st.basis.(i) in
          let room, to_ub =
            if wi > 0. then (st.x.(bi) -. st.lb.(bi), false)
            else (st.ub.(bi) -. st.x.(bi), true)
          in
          let t = max 0. (room /. abs_float wi) in
          if t <= !theta_max && abs_float st.w.(i) > !best_piv then begin
            best_piv := abs_float st.w.(i);
            leave := i;
            leave_to_ub := to_ub;
            leave_t := t
          end
        end
      done;
      if !leave < 0 then Ratio_unbounded
      else Ratio_pivot (!leave, !leave_t, !leave_to_ub)
    end
  end

(* Ratio test + pivot for entering column [j] moving in direction
   [sigma].  Implements bound flips and basis changes. *)
let step st ~bland j sigma =
  ftran st j;
  let m = st.core.P.m in
  match ratio_test st ~bland j sigma with
  | Ratio_unbounded -> Step_unbounded
  | Ratio_flip ->
    let t = st.ub.(j) -. st.lb.(j) in
    if t > feas_eps then st.degen_streak <- 0
    else st.degen_streak <- st.degen_streak + 1;
    for i = 0 to m - 1 do
      let bi = st.basis.(i) in
      st.x.(bi) <- st.x.(bi) -. (sigma *. t *. st.w.(i))
    done;
    (* snap to the opposite bound to kill drift *)
    st.x.(j) <- (if sigma > 0. then st.ub.(j) else st.lb.(j));
    Step_ok
  | Ratio_pivot (r, t, to_ub) ->
    if t > feas_eps then st.degen_streak <- 0
    else st.degen_streak <- st.degen_streak + 1;
    st.x.(j) <- st.x.(j) +. (sigma *. t);
    if t > 0. then
      for i = 0 to m - 1 do
        let bi = st.basis.(i) in
        st.x.(bi) <- st.x.(bi) -. (sigma *. t *. st.w.(i))
      done;
    let out = st.basis.(r) in
    st.x.(out) <- (if to_ub then st.ub.(out) else st.lb.(out));
    if not bland then devex_update st r j st.w.(r);
    Lu.update st.lu r st.w;
    (match st.instr with Some i -> R.Counter.incr i.i_ft | None -> ());
    st.basis.(r) <- j;
    st.basic_row.(out) <- -1;
    st.basic_row.(j) <- r;
    maybe_refactor st;
    Step_ok

let iterate st ~max_iters ~phase1 =
  let unbounded = ref false and hit_limit = ref false in
  let continue_ = ref true in
  while !continue_ do
    if st.iters >= max_iters then begin
      hit_limit := true;
      continue_ := false
    end
    else begin
      let bland = st.degen_streak > bland_after in
      match price st ~bland with
      | None -> continue_ := false
      | Some (j, sigma) -> (
        st.iters <- st.iters + 1;
        match step st ~bland j sigma with
        | Step_ok -> ()
        | Step_unbounded ->
          if phase1 then
            (* phase-1 objective is bounded below by 0; an "unbounded"
              ray here is numerical noise *)
            continue_ := false
          else begin
            unbounded := true;
            continue_ := false
          end)
    end
  done;
  if !unbounded then Unbounded else if !hit_limit then Iter_limit else Optimal

let current_cost st =
  let s = ref 0. in
  for j = 0 to st.total - 1 do
    if st.cost.(j) <> 0. then s := !s +. (st.cost.(j) *. st.x.(j))
  done;
  !s

let snapshot st =
  let n = st.core.P.n and m = st.core.P.m in
  let status =
    Array.init (n + m) (fun j ->
        if st.basic_row.(j) >= 0 then 0
        else begin
          let at_lb =
            Float.is_finite st.lb.(j) && st.x.(j) <= st.lb.(j) +. feas_eps
          in
          let at_ub =
            Float.is_finite st.ub.(j) && st.x.(j) >= st.ub.(j) -. feas_eps
          in
          if at_lb then 0 else if at_ub then 1 else 2
        end)
  in
  { Basis.bs_m = m; bs_nm = n + m; bs_basis = Array.copy st.basis;
    bs_status = status }

(* Shared optimal exit: final refactorization for numerical hygiene
   (skipped when the factorization is already fresh), basis reporting
   for cut generation, warm snapshot, objective in the problem's own
   direction. *)
let finish_optimal st ?basis_sink ?snapshot_sink () =
  let core = st.core in
  let n = core.P.n and m = core.P.m in
  if Lu.eta_count st.lu > 0 then
    (try refactor st "final" with Singular_basis -> ());
  (match basis_sink with
  | None -> ()
  | Some sink ->
    (* basis info for cut generation: basic column per row plus, for
       every structural/slack column, whether it sits at its upper
       bound; artificials are fixed at 0 and never reported at upper *)
    let at_upper =
      Array.init (n + m) (fun j ->
          st.basic_row.(j) < 0
          && Float.is_finite st.ub.(j)
          && st.x.(j) >= st.ub.(j) -. feas_eps
          && not (st.x.(j) <= st.lb.(j) +. feas_eps && st.lb.(j) = st.ub.(j)))
    in
    let values = Array.sub st.x 0 (n + m) in
    sink := Some (Array.copy st.basis, at_upper, values));
  (match snapshot_sink with
  | None -> ()
  | Some sink -> sink := Some (snapshot st));
  let internal = ref 0. in
  for v = 0 to n - 1 do
    internal := !internal +. (core.P.cost.(v) *. st.x.(v))
  done;
  let objective =
    core.P.obj_constant
    +. (match core.P.dir with Lp.Minimize -> !internal | Lp.Maximize -> -. !internal)
  in
  { status = Optimal; objective; x = Array.sub st.x 0 n; iterations = st.iters }

let make_state ?instr ?(trace = Rfloor_trace.disabled) ?(worker = 0) core wlb
    wub =
  let n = core.P.n and m = core.P.m in
  let total = n + m + m in
  {
    core;
    total;
    lb = wlb;
    ub = wub;
    cost = Array.make total 0.;
    x = Array.make total 0.;
    basis = Array.init m (fun i -> n + m + i);
    basic_row = Array.make total (-1);
    (* empty placeholder; [factorize] installs the real factorization
       before any solve touches it *)
    lu = Lu.factor ~m:0 (fun _ _ -> ()) [||];
    y = Array.make m 0.;
    w = Array.make m 0.;
    rho = Array.make m 0.;
    dw = Array.make total 1.;
    iters = 0;
    ecap = base_eta_cap;
    degen_streak = 0;
    instr;
    trace;
    t_worker = worker;
  }

let working_bounds core lb ub =
  let n = core.P.n in
  let wlb = Array.copy core.P.lb0 and wub = Array.copy core.P.ub0 in
  (match lb with Some l -> Array.blit l 0 wlb 0 n | None -> ());
  (match ub with Some u -> Array.blit u 0 wub 0 n | None -> ());
  let bad = ref false in
  for v = 0 to n - 1 do
    if wlb.(v) > wub.(v) +. 1e-12 then bad := true
  done;
  (wlb, wub, !bad)

let default_max_iters core =
  20_000 + (60 * (core.P.m + core.P.n))

let solve_core ?max_iters ?lb ?ub ?basis_sink ?snapshot_sink ?instr
    ?(trace = Rfloor_trace.disabled) ?(worker = 0) (core : P.t) =
  let n = core.P.n and m = core.P.m in
  let max_iters =
    match max_iters with Some k -> k | None -> default_max_iters core
  in
  let wlb, wub, bad_bounds = working_bounds core lb ub in
  if bad_bounds then
    { status = Infeasible; objective = nan; x = Array.make n nan; iterations = 0 }
  else begin
    let st = make_state ?instr ~trace ~worker core wlb wub in
    for i = 0 to m - 1 do
      st.basic_row.(n + m + i) <- i
    done;
    (* nonbasic start: nearest finite bound, or 0 for free variables *)
    for j = 0 to n + m - 1 do
      st.x.(j) <-
        (if Float.is_finite st.lb.(j) then st.lb.(j)
         else if Float.is_finite st.ub.(j) then st.ub.(j)
         else 0.)
    done;
    (* artificial values = residuals; sign determines their bounds and
       phase-1 costs *)
    let resid = Array.copy core.P.b in
    for j = 0 to n + m - 1 do
      if st.x.(j) <> 0. then
        col_iter st j (fun r c -> resid.(r) <- resid.(r) -. (c *. st.x.(j)))
    done;
    let need_phase1 = ref false in
    for i = 0 to m - 1 do
      let s = n + i and a = n + m + i in
      if resid.(i) >= st.lb.(s) -. 1e-12 && resid.(i) <= st.ub.(s) +. 1e-12
      then begin
        (* slack crash: the row is satisfied with its own slack basic;
           the artificial is fixed out, phase 1 never touches it *)
        st.basis.(i) <- s;
        st.basic_row.(s) <- i;
        st.basic_row.(a) <- -1;
        st.x.(s) <- min st.ub.(s) (max st.lb.(s) resid.(i));
        st.x.(a) <- 0.;
        st.lb.(a) <- 0.;
        st.ub.(a) <- 0.;
        st.cost.(a) <- 0.
      end
      else begin
        st.x.(a) <- resid.(i);
        if resid.(i) >= 0. then begin
          st.lb.(a) <- 0.;
          st.ub.(a) <- infinity;
          st.cost.(a) <- 1.
        end
        else begin
          st.lb.(a) <- neg_infinity;
          st.ub.(a) <- 0.;
          st.cost.(a) <- -1.
        end;
        if abs_float resid.(i) > feas_eps then need_phase1 := true
      end
    done;
    (* the crash basis is a mix of unit slack/artificial columns, so
       this first factorization is trivially nonsingular *)
    (try factorize st "initial" with Singular_basis -> assert false);
    let fail_status status =
      { status; objective = nan; x = Array.sub st.x 0 n; iterations = st.iters }
    in
    let phase1_result =
      if not !need_phase1 then Optimal
      else begin
        let r = iterate st ~max_iters ~phase1:true in
        match r with
        | Iter_limit -> Iter_limit
        | Optimal | Unbounded | Infeasible ->
          if abs_float (current_cost st) > 1e-6 then Infeasible else Optimal
      end
    in
    match phase1_result with
    | Iter_limit -> fail_status Iter_limit
    | Infeasible -> fail_status Infeasible
    | Unbounded | Optimal -> (
      (* fix artificials at zero and install phase-2 costs *)
      for i = 0 to m - 1 do
        let a = n + m + i in
        st.lb.(a) <- 0.;
        st.ub.(a) <- 0.;
        st.cost.(a) <- 0.;
        if st.basic_row.(a) < 0 then st.x.(a) <- 0.
      done;
      Array.fill st.cost 0 st.total 0.;
      Array.blit core.P.cost 0 st.cost 0 n;
      st.degen_streak <- 0;
      Array.fill st.dw 0 st.total 1.;
      match iterate st ~max_iters:(max_iters + st.iters) ~phase1:false with
      | Iter_limit -> fail_status Iter_limit
      | Infeasible -> fail_status Infeasible
      | Unbounded -> fail_status Unbounded
      | Optimal -> finish_optimal st ?basis_sink ?snapshot_sink ())
  end

(* ------------------------------------------------------------------ *)
(* Dual simplex warm start *)

(* Install a parent basis snapshot against the current bounds and try
   to finish the solve with dual pivots.  Returns [None] whenever the
   warm path cannot certify the result — the caller then falls back to
   the cold two-phase solve. *)
let try_warm ~max_iters ~warm ?instr ~trace ~worker ~wlb ~wub
    ?basis_sink ?snapshot_sink (core : P.t) =
  let n = core.P.n and m = core.P.m in
  if warm.Basis.bs_m <> m || warm.Basis.bs_nm <> n + m then None
  else begin
    let st = make_state ?instr ~trace ~worker core wlb wub in
    Array.blit warm.Basis.bs_basis 0 st.basis 0 m;
    let valid = ref true in
    for i = 0 to m - 1 do
      let j = st.basis.(i) in
      if j < 0 || j >= st.total || st.basic_row.(j) >= 0 then valid := false
      else st.basic_row.(j) <- i
    done;
    if not !valid then None
    else begin
      (* artificials are fixed out of a warm solve *)
      for i = 0 to m - 1 do
        let a = n + m + i in
        st.lb.(a) <- 0.;
        st.ub.(a) <- 0.;
        st.cost.(a) <- 0.
      done;
      Array.blit core.P.cost 0 st.cost 0 n;
      match factorize st "warm" with
      | exception Singular_basis -> None
      | () ->
        (* nonbasic values from the recorded statuses, clamped to the
           (possibly flipped) current bounds *)
        for j = 0 to st.total - 1 do
          if st.basic_row.(j) < 0 then begin
            let status =
              if j < n + m then warm.Basis.bs_status.(j) else 0
            in
            st.x.(j) <-
              (match status with
              | 1 ->
                if Float.is_finite st.ub.(j) then st.ub.(j)
                else if Float.is_finite st.lb.(j) then st.lb.(j)
                else 0.
              | 2 -> 0.
              | _ ->
                if Float.is_finite st.lb.(j) then st.lb.(j)
                else if Float.is_finite st.ub.(j) then st.ub.(j)
                else 0.)
          end
        done;
        compute_basics st;
        (* the parent basis must still be dual feasible *)
        btran_costs st;
        let dual_ok = ref true in
        for j = 0 to st.total - 1 do
          if !dual_ok && st.basic_row.(j) < 0 && st.lb.(j) < st.ub.(j) then begin
            let d = reduced_cost st j in
            let at_lb = st.x.(j) <= st.lb.(j) +. feas_eps in
            let at_ub = st.x.(j) >= st.ub.(j) -. feas_eps in
            if at_lb && not at_ub then begin
              if d < -.warm_dual_tol then dual_ok := false
            end
            else if at_ub && not at_lb then begin
              if d > warm_dual_tol then dual_ok := false
            end
            else if (not at_lb) && not at_ub then begin
              if abs_float d > warm_dual_tol then dual_ok := false
            end
          end
        done;
        if not !dual_ok then None
        else begin
          let dual_cap = min max_iters (200 + (2 * m)) in
          let dual_iters = ref 0 in
          let ok = ref true and feasible = ref false in
          while !ok && not !feasible do
            (* most violated basic variable leaves *)
            let r = ref (-1) and viol = ref feas_eps and below = ref false in
            for i = 0 to m - 1 do
              let bi = st.basis.(i) in
              let under = st.lb.(bi) -. st.x.(bi) in
              let over = st.x.(bi) -. st.ub.(bi) in
              if under > !viol then begin
                viol := under;
                r := i;
                below := true
              end;
              if over > !viol then begin
                viol := over;
                r := i;
                below := false
              end
            done;
            if !r < 0 then feasible := true
            else if !dual_iters >= dual_cap then ok := false
            else begin
              incr dual_iters;
              btran_costs st;
              pivot_row st !r;
              (* dual ratio test: smallest |d_j / alpha_rj| among
                 columns whose move repairs the violation without
                 breaking dual feasibility; tie-break on pivot size *)
              let q = ref (-1) and best_ratio = ref infinity and best_piv = ref 0. in
              for j = 0 to st.total - 1 do
                if st.basic_row.(j) < 0 && st.lb.(j) < st.ub.(j) then begin
                  let arj = row_coef st j in
                  if abs_float arj > pivot_eps then begin
                    let at_lb = st.x.(j) <= st.lb.(j) +. feas_eps in
                    let at_ub = st.x.(j) >= st.ub.(j) -. feas_eps in
                    let free = (not at_lb) && not at_ub in
                    let eligible =
                      if free then true
                      else if !below then
                        (at_lb && arj < 0.) || (at_ub && arj > 0.)
                      else (at_lb && arj > 0.) || (at_ub && arj < 0.)
                    in
                    if eligible then begin
                      let d = reduced_cost st j in
                      let ratio = abs_float d /. abs_float arj in
                      if
                        ratio < !best_ratio -. 1e-12
                        || (ratio < !best_ratio +. 1e-12
                           && abs_float arj > !best_piv)
                      then begin
                        best_ratio := ratio;
                        best_piv := abs_float arj;
                        q := j
                      end
                    end
                  end
                end
              done;
              if !q < 0 then ok := false
              else begin
                ftran st !q;
                let wr = st.w.(!r) in
                if abs_float wr <= pivot_eps then ok := false
                else begin
                  let out = st.basis.(!r) in
                  let target =
                    if !below then st.lb.(out) else st.ub.(out)
                  in
                  let delta = target -. st.x.(out) in
                  let dq = -.delta /. wr in
                  let newq = st.x.(!q) +. dq in
                  if
                    newq < st.lb.(!q) -. feas_eps
                    || newq > st.ub.(!q) +. feas_eps
                  then
                    (* the entering variable would overshoot its own
                       bound (needs a bound-flipping ratio test) *)
                    ok := false
                  else begin
                    st.iters <- st.iters + 1;
                    for i = 0 to m - 1 do
                      let bi = st.basis.(i) in
                      st.x.(bi) <- st.x.(bi) -. (dq *. st.w.(i))
                    done;
                    st.x.(!q) <- newq;
                    st.x.(out) <- target;
                    Lu.update st.lu !r st.w;
                    (match st.instr with
                    | Some i -> R.Counter.incr i.i_ft
                    | None -> ());
                    st.basis.(!r) <- !q;
                    st.basic_row.(out) <- -1;
                    st.basic_row.(!q) <- !r;
                    maybe_refactor st
                  end
                end
              end
            end
          done;
          if not !ok then None
          else begin
            (* primal cleanup: normally zero iterations, but catches
               tolerance drift accumulated by the dual pivots *)
            st.degen_streak <- 0;
            match iterate st ~max_iters ~phase1:false with
            | Optimal ->
              Some (finish_optimal st ?basis_sink ?snapshot_sink ())
            | Iter_limit | Infeasible | Unbounded -> None
          end
        end
    end
  end

(* ------------------------------------------------------------------ *)
(* Public entry points *)

let solve ?max_iters ?(trace = Rfloor_trace.disabled)
    ?(metrics = Rfloor_metrics.Registry.null) lp =
  Rfloor_trace.span trace Rfloor_trace.Event.Lp_solve (fun () ->
      let mlive = R.live metrics in
      let instr = if mlive then Some (instruments metrics) else None in
      let t0 = if mlive then Unix.gettimeofday () else 0. in
      let r = solve_core ?max_iters ?instr ~trace (P.of_lp lp) in
      if mlive then begin
        R.Histogram.observe
          (R.histogram metrics ~help:"Wall time per LP relaxation solve"
             "rfloor_lp_solve_seconds")
          (Unix.gettimeofday () -. t0);
        R.Histogram.observe
          (R.histogram metrics ~help:"Simplex iterations per LP relaxation"
             ~buckets:R.count_buckets "rfloor_simplex_iterations_per_lp")
          (float_of_int r.iterations)
      end;
      r)

module Core = struct
  include P

  let solve ?max_iters ?lb ?ub t = solve_core ?max_iters ?lb ?ub t

  let solve_with_basis ?max_iters ?lb ?ub t =
    let sink = ref None in
    let outcome = solve_core ?max_iters ?lb ?ub ~basis_sink:sink t in
    (outcome, !sink)

  let solve_warm ?max_iters ?lb ?ub ?warm ?instr
      ?(trace = Rfloor_trace.disabled) ?(worker = 0) t =
    let max_iters' =
      match max_iters with Some k -> k | None -> default_max_iters t
    in
    let snap = ref None in
    let wlb, wub, bad_bounds = working_bounds t lb ub in
    if bad_bounds then
      ( { status = Infeasible; objective = nan;
          x = Array.make t.P.n nan; iterations = 0 },
        None )
    else begin
      let warm_result =
        match warm with
        | None -> None
        | Some parent ->
          try_warm ~max_iters:max_iters' ~warm:parent ?instr ~trace ~worker
            ~wlb ~wub ~snapshot_sink:snap t
      in
      match warm_result with
      | Some outcome ->
        (match instr with Some i -> R.Counter.incr i.i_warm | None -> ());
        Rfloor_trace.lp_warm trace ~worker "dual";
        (outcome, !snap)
      | None ->
        if Option.is_some warm then Rfloor_trace.lp_warm trace ~worker "fallback";
        let outcome =
          solve_core ?max_iters ?lb ?ub ~snapshot_sink:snap ?instr ~trace
            ~worker t
        in
        (outcome, !snap)
    end
end
