(** Fixed-format-free MPS writer and (subset) parser (modern free MPS
    accepted by CPLEX, Gurobi, HiGHS, SCIP).  Complements {!Lp_format}
    for toolchains that prefer MPS. *)

val write : Format.formatter -> Lp.t -> unit
val to_string : Lp.t -> string
val to_file : string -> Lp.t -> unit

val parse : string -> (Lp.t, Rfloor_diag.Diagnostic.t) result
(** Parses the free-MPS subset the writer produces: NAME, OBJSENSE,
    ROWS, COLUMNS with INTORG/INTEND markers, RHS (objective RHS read
    as the negated constant), BOUNDS (FX/FR/MI/PL/LO/UP/BV).  Variables
    are created in first-appearance order, rows in declaration order,
    so [write (parse (write lp))] is a fixpoint after one round trip.
    Structural violations — truncated data pairs, undeclared row or
    column references, duplicate row names, a column redeclared across
    integrality markers, RANGES — return an [RF303] diagnostic, never
    raise. *)

val parse_file : string -> (Lp.t, Rfloor_diag.Diagnostic.t) result
(** Like {!parse}; unreadable files also map to [RF303], and the
    diagnostic's location carries the path. *)
