(** Racing solver portfolio: generic incumbent board and race harness.

    A portfolio runs N solver strategies concurrently, one OCaml domain
    each, racing toward the first {e conclusive} result (proved optimal
    or proved infeasible).  Members cooperate through two small pieces
    of shared state, both built on {!Rfloor_sync} so the concurrency
    analyzers see every access:

    - an {b incumbent board}: a lock-free min-key cell where heuristic
      members publish (objective key, solution) pairs and exact members
      read the best known key as an external objective bound;
    - a {b stop flag} folded into each member's cancellation token: the
      first member to produce a conclusive result wins the race and
      cancels the rest.

    The harness is solver-agnostic — members are closures, results any
    type — so it is testable without building a single MILP.  The
    solver-specific wiring (building member closures from
    [Solver.Strategy.t], mapping an exact member's "nothing better than
    the external bound" infeasibility back to optimality of the board
    plan) lives in [Rfloor.Solver]. *)

(** {1 Incumbent board} *)

type 'a board
(** Atomic cell holding the best published [(key, value)] so far —
    smallest key wins; publications with a worse key are ignored. *)

val board : ?name:string -> unit -> 'a board
(** [name] labels the underlying atomic in {!Rfloor_sync} recordings. *)

val publish : 'a board -> float -> 'a -> bool
(** [publish b key v] installs [(key, v)] iff [key] is strictly
    smaller than the current best; returns whether it won.  Lock-free
    (CAS retry loop). *)

val best : 'a board -> (float * 'a) option
val best_key : 'a board -> float
(** [infinity] when nothing has been published. *)

(** {1 Race harness} *)

type 'r member = {
  m_label : string;
  m_run : cancelled:(unit -> bool) -> 'r;
      (** Runs the strategy to completion, polling [cancelled]
          cooperatively; must return (not raise) when cancelled,
          reporting whatever partial result it has. *)
}

type 'r completion = {
  c_label : string;
  c_index : int;  (** position in the members list *)
  c_result : ('r, exn) result;  (** [Error] if the member raised *)
  c_elapsed : float;  (** wall-clock seconds for this member *)
  c_winner : bool;  (** this member ended the race *)
}

val race :
  ?cancel:(unit -> bool) ->
  conclusive:('r -> bool) ->
  'r member list ->
  'r completion list * int option
(** Runs every member on its own domain and waits for all of them.
    The first member whose result satisfies [conclusive] wins: the
    shared stop flag is raised so every other member's [cancelled]
    token fires, and its index is returned.  [cancel] is the caller's
    own token (deadline, user interrupt), OR-ed into every member's.
    Members that raise never win.  Completions are returned in member
    order; [None] when no member was conclusive. *)
