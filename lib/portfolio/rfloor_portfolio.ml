module Sync = Rfloor_sync

type 'a board = (float * 'a) option Sync.Atomic.t

let board ?(name = "portfolio.board") () = Sync.Atomic.make ~name None

let rec publish b key v =
  let cur = Sync.Atomic.get b in
  let better = match cur with None -> true | Some (k, _) -> key < k in
  if not better then false
  else if Sync.Atomic.compare_and_set b cur (Some (key, v)) then true
  else publish b key v

let best = Sync.Atomic.get

let best_key b =
  match Sync.Atomic.get b with None -> infinity | Some (k, _) -> k

type 'r member = {
  m_label : string;
  m_run : cancelled:(unit -> bool) -> 'r;
}

type 'r completion = {
  c_label : string;
  c_index : int;
  c_result : ('r, exn) result;
  c_elapsed : float;
  c_winner : bool;
}

let race ?(cancel = fun () -> false) ~conclusive members =
  match members with
  | [] -> ([], None)
  | _ ->
    let n = List.length members in
    let stop = Sync.Atomic.make ~name:"portfolio.stop" false in
    let winner = Sync.Atomic.make ~name:"portfolio.winner" None in
    let cancelled () = cancel () || Sync.Atomic.get stop in
    (* Each slot is written once by its own domain before it exits;
       the joins below are the happens-before edges that make the
       plain array safe. *)
    let slots = Array.make n None in
    let run i m () =
      let t0 = Unix.gettimeofday () in
      let result = try Ok (m.m_run ~cancelled) with e -> Error e in
      let won =
        match result with
        | Ok r when conclusive r ->
          if Sync.Atomic.compare_and_set winner None (Some i) then begin
            Sync.Atomic.set stop true;
            true
          end
          else false
        | Ok _ | Error _ -> false
      in
      slots.(i) <-
        Some
          {
            c_label = m.m_label;
            c_index = i;
            c_result = result;
            c_elapsed = Unix.gettimeofday () -. t0;
            c_winner = won;
          }
    in
    let domains =
      List.mapi
        (fun i m ->
          Sync.Domain.spawn ~name:("portfolio." ^ m.m_label) (run i m))
        members
    in
    List.iter Sync.Domain.join domains;
    let completions =
      Array.to_list slots
      |> List.map (function
           | Some c -> c
           | None -> invalid_arg "Rfloor_portfolio.race: missing slot")
    in
    (completions, Sync.Atomic.get winner)
