open Device
module Bb = Milp.Branch_bound
module Diag = Rfloor_diag.Diagnostic
module T = Rfloor_trace

type engine = O | Ho of Floorplan.t option

type objective_mode =
  | Lexicographic
  | Weighted of Objective.weights
  | Feasibility_only

type options = {
  engine : engine;
  objective_mode : objective_mode;
  time_limit : float option;
  node_limit : int option;
  paper_literal_l : bool;
  warm_start : bool;
  warm_lp : bool;
  preflight : bool;
  workers : int;
  trace : T.sink;
  metrics : Rfloor_metrics.Registry.t;
  cancel : unit -> bool;
}

module Options = struct
  type t = options

  let make ?(engine = O) ?(objective_mode = Lexicographic) ?(time_limit = 60.)
      ?node_limit ?(paper_literal_l = false) ?(warm_start = true)
      ?(warm_lp = true) ?(preflight = true) ?(workers = 1)
      ?(trace = T.Sink.null) ?(metrics = Rfloor_metrics.Registry.null)
      ?(cancel = Bb.never_cancel) () =
    {
      engine;
      objective_mode;
      (* "no limit" is spelled [~time_limit:infinity] (or any non-finite
         value); the record keeps the [float option] representation *)
      time_limit = (if Float.is_finite time_limit then Some time_limit else None);
      node_limit;
      paper_literal_l;
      warm_start;
      warm_lp;
      preflight;
      workers;
      trace;
      metrics;
      cancel;
    }
end

let default_options = Options.make ()

type status = Optimal | Feasible | Infeasible | Unknown

type stop_reason = Bb.stop_reason = Budget | Cancelled

type outcome = {
  plan : Floorplan.t option;
  wasted : int option;
  wirelength : float option;
  fc_identified : int;
  status : status;
  objective_value : float option;
  nodes : int;
  simplex_iterations : int;
  elapsed : float;
  stop : stop_reason option;
  diagnostics : Diag.t list;
  report : T.Report.t;
}

(* Resolve the HO seed once so the pair relations and the warm start are
   consistent (an inconsistent warm incumbent would be rejected). *)
let resolve_seed options part spec =
  match options.engine with
  | O -> None
  | Ho (Some seed) -> Some seed
  | Ho None -> Ho.seed_of_search part spec

let pair_relations spec = function
  | Some seed -> Ho.relations spec seed
  | None -> []

let bb_options options trace model stage_time =
  {
    Bb.default_options with
    Bb.time_limit = stage_time;
    node_limit = options.node_limit;
    priorities = Some (Model.branching_priorities model);
    trace;
    metrics = options.metrics;
    cancel = options.cancel;
    warm_lp = options.warm_lp;
  }

let warm_plan options part spec =
  if not options.warm_start then None
  else
    let sopts =
      {
        Search.Engine.default_options with
        time_limit = Some 5.;
        optimize_wirelength = false;
      }
    in
    (Search.Engine.solve ~options:sopts part spec).Search.Engine.plan

(* Sequential solver for workers <= 1, the domain-parallel one above
   that.  Both consume the same options and produce the same result
   type, so everything downstream is solver-agnostic. *)
let bb_solve options bbopts ?incumbent lp =
  if options.workers <= 1 then Bb.solve ~options:bbopts ?incumbent lp
  else Milp.Parallel_bb.solve ~options:bbopts ~workers:options.workers ?incumbent lp

(* Run branch-and-bound on a model, optionally warm-started.  The
   model-lint preflight runs first — once, on the root model; workers
   of a parallel run share that single vetted LP, they never re-lint.
   An error-severity finding (e.g. a bound-infeasible row) proves the
   stage infeasible without a single branch-and-bound node. *)
let run_stage options trace model ~stage_time ~warm ~add_diags =
  let lp = Model.lp model in
  let lint =
    if options.preflight then
      T.span trace T.Event.Lint (fun () -> Rfloor_analysis.Preflight.model lp)
    else []
  in
  add_diags lint;
  if Diag.has_errors lint then
    {
      Bb.status = Bb.Infeasible;
      incumbent = None;
      best_bound =
        (match Milp.Lp.objective_dir lp with
        | Milp.Lp.Minimize -> infinity
        | Milp.Lp.Maximize -> neg_infinity);
      nodes = 0;
      simplex_iterations = 0;
      elapsed = 0.;
      stop = None;
    }
  else begin
    ignore (Milp.Presolve.tighten ~trace ~metrics:options.metrics lp);
    let incumbent =
      match warm with
      | None -> None
      | Some plan -> (
        let x = Model.encode model plan in
        match Milp.Lp.validate ~eps:1e-5 lp x with
        | Ok () -> Some x
        | Error msg ->
          T.warn trace (Printf.sprintf "warm start rejected: %s" msg);
          None)
    in
    T.span trace T.Event.Branch_bound (fun () ->
        bb_solve options (bb_options options trace model stage_time) ?incumbent
          lp)
  end

let build_model trace model_options part spec =
  T.span trace T.Event.Build (fun () ->
      Model.build ~options:model_options part spec)

let status_of_bb = function
  | Bb.Optimal -> Optimal
  | Bb.Feasible -> Feasible
  | Bb.Infeasible -> Infeasible
  | Bb.Unbounded | Bb.Unknown -> Unknown

let finish options trace part spec model (r : Bb.result) extra_nodes extra_iters
    extra_time diags =
  let plan, fc, wasted, wirelength =
    T.span trace T.Event.Decode (fun () ->
        let plan, fc =
          match r.Bb.incumbent with
          | Some (_, x) ->
            (Some (Model.decode model x), Model.fc_identified model x)
          | None -> (None, 0)
        in
        let wasted =
          Option.map (fun p -> Floorplan.wasted_frames part spec p) plan
        in
        let wirelength = Option.map (fun p -> Floorplan.wirelength spec p) plan in
        (plan, fc, wasted, wirelength))
  in
  (* independent re-check of the decoded plan (Eq. 6-10 and validity);
     findings here would point at a model or decoder bug *)
  let audit =
    match plan with
    | Some p when options.preflight ->
      T.span trace T.Event.Audit (fun () ->
          let ds = Rfloor_analysis.Solution_audit.run part spec p in
          List.iter
            (fun d -> T.messagef trace "audit: %a" Diag.pp d)
            ds;
          ds)
    | _ -> []
  in
  let nodes = r.Bb.nodes + extra_nodes in
  let simplex_iterations = r.Bb.simplex_iterations + extra_iters in
  let elapsed = r.Bb.elapsed +. extra_time in
  {
    plan;
    wasted;
    wirelength;
    fc_identified = fc;
    status = status_of_bb r.Bb.status;
    objective_value = Option.map fst r.Bb.incumbent;
    nodes;
    simplex_iterations;
    elapsed;
    stop = r.Bb.stop;
    diagnostics = diags @ audit;
    report = T.report trace ~nodes ~simplex_iterations ~elapsed;
  }

let solve ?(options = default_options) part (spec : Spec.t) =
  (* One live tracer per solve, even with the null sink: the metrics
     behind [outcome.report] always accumulate; events only flow when a
     real sink is attached.  A live metrics registry tees its
     event-folding sink onto the caller's, so the registry sees the
     whole event stream (phases, incumbents, steals) in addition to the
     direct simplex/presolve instrumentation. *)
  let sink =
    if Rfloor_metrics.Registry.live options.metrics then
      T.Sink.tee options.trace (Rfloor_metrics.Trace_sink.sink options.metrics)
    else options.trace
  in
  let trace = T.create ~sink () in
  (* spec/partition preflight: error findings prove infeasibility before
     any model is built or any node is explored *)
  let diags = ref [] in
  let add_diags ds =
    List.iter (fun d -> T.messagef trace "preflight: %a" Diag.pp d) ds;
    diags := !diags @ ds
  in
  if options.preflight then
    add_diags
      (T.span trace T.Event.Lint (fun () ->
           Rfloor_analysis.Preflight.spec part spec));
  if Diag.has_errors !diags then
    {
      plan = None;
      wasted = None;
      wirelength = None;
      fc_identified = 0;
      status = Infeasible;
      objective_value = None;
      nodes = 0;
      simplex_iterations = 0;
      elapsed = 0.;
      stop = None;
      diagnostics = !diags;
      report = T.report trace ~nodes:0 ~simplex_iterations:0 ~elapsed:0.;
    }
  else begin
    let seed = resolve_seed options part spec in
    let relations = pair_relations spec seed in
    let warm =
      match seed with Some _ -> seed | None -> warm_plan options part spec
    in
    let model_options objective extra_waste_cap =
      {
        Model.objective;
        paper_literal_l = options.paper_literal_l;
        pair_relations = relations;
        extra_waste_cap;
      }
    in
    match options.objective_mode with
    | Feasibility_only ->
      let model =
        build_model trace (model_options Model.Feasibility None) part
          spec
      in
      finish options trace part spec model
        (run_stage options trace model ~stage_time:options.time_limit ~warm
           ~add_diags)
        0 0 0. !diags
    | Weighted w ->
      let model =
        build_model trace (model_options (Model.Weighted w) None) part
          spec
      in
      finish options trace part spec model
        (run_stage options trace model ~stage_time:options.time_limit ~warm
           ~add_diags)
        0 0 0. !diags
    | Lexicographic -> (
      let split f = Option.map (fun t -> t *. f) options.time_limit in
      let m1 =
        build_model trace (model_options Model.Wasted_frames_only None)
          part spec
      in
      let r1 =
        run_stage options trace m1 ~stage_time:(split 0.6) ~warm ~add_diags
      in
      match r1.Bb.incumbent with
      | None -> finish options trace part spec m1 r1 0 0 0. !diags
      | Some (w1, x1) ->
        T.messagef trace "stage 1: wasted frames = %.0f (%s)" w1
          (match r1.Bb.status with
          | Bb.Optimal -> "optimal"
          | _ -> "best found");
        T.restart trace "stage2-wirelength";
        let plan1 = Model.decode m1 x1 in
        let m2 =
          build_model trace
            (model_options Model.Wirelength_only (Some (w1 +. 0.5)))
            part spec
        in
        (* stage-2 warm start: prefer the candidate with the best wire
           length among plans matching the stage-1 waste *)
        let warm2 =
          let ok p =
            float_of_int (Floorplan.wasted_frames part spec p) <= w1 +. 0.5
          in
          let candidates = List.filter ok (plan1 :: Option.to_list warm) in
          match
            List.sort
              (fun a b ->
                compare (Floorplan.wirelength spec a)
                  (Floorplan.wirelength spec b))
              candidates
          with
          | best :: _ -> Some best
          | [] -> Some plan1
        in
        let r2 =
          run_stage options trace m2 ~stage_time:(split 0.4) ~warm:warm2
            ~add_diags
        in
        let r2 =
          match r2.Bb.incumbent with
          | Some _ -> r2
          | None -> { r2 with Bb.incumbent = r1.Bb.incumbent }
        in
        let out =
          finish options trace part spec m2 r2 r1.Bb.nodes
            r1.Bb.simplex_iterations r1.Bb.elapsed !diags
        in
        (* stage-2 optimality only refines wire length; overall optimality
           additionally needs stage 1 proven *)
        let status =
          match (r1.Bb.status, out.status) with
          | Bb.Optimal, Optimal -> Optimal
          | _, Infeasible -> Feasible (* stage 2 budget died; stage 1 plan holds *)
          | _, s -> (match s with Optimal -> Feasible | s -> s)
        in
        { out with status })
  end

let export_lp ?(options = default_options) part spec =
  let relations = pair_relations spec (resolve_seed options part spec) in
  let objective =
    match options.objective_mode with
    | Feasibility_only -> Model.Feasibility
    | Weighted w -> Model.Weighted w
    | Lexicographic -> Model.Wasted_frames_only
  in
  let model =
    Model.build
      ~options:
        {
          Model.objective;
          paper_literal_l = options.paper_literal_l;
          pair_relations = relations;
          extra_waste_cap = None;
        }
      part spec
  in
  Milp.Lp_format.to_string (Model.lp model)

let pp_outcome ppf o =
  Format.fprintf ppf "status=%s wasted=%s wirelength=%s fc=%d nodes=%d %.1fs"
    (match o.status with
    | Optimal -> "optimal"
    | Feasible -> "feasible"
    | Infeasible -> "infeasible"
    | Unknown -> "unknown")
    (match o.wasted with Some w -> string_of_int w | None -> "-")
    (match o.wirelength with Some w -> Printf.sprintf "%.1f" w | None -> "-")
    o.fc_identified o.nodes o.elapsed;
  (match o.stop with
  | Some Budget -> Format.fprintf ppf " stop=budget"
  | Some Cancelled -> Format.fprintf ppf " stop=cancelled"
  | None -> ());
  let nerr = Diag.count Diag.Error o.diagnostics
  and nwarn = Diag.count Diag.Warning o.diagnostics in
  if nerr > 0 || nwarn > 0 then
    Format.fprintf ppf " diagnostics=%dE/%dW" nerr nwarn
