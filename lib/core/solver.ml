open Device
module Bb = Milp.Branch_bound
module Diag = Rfloor_diag.Diagnostic
module T = Rfloor_trace

type engine = O | Ho of Floorplan.t option

module Strategy = struct
  type t =
    | Milp of {
        workers : int;
        engine : engine;
        warm_start : bool;
        time_limit : float option;
      }
    | Combinatorial of { time_limit : float option }
    | Lns of { seed : int; time_limit : float option }
    | Portfolio of t list

  let norm_budget = function
    | Some l when Float.is_finite l && l > 0. -> Some l
    | _ -> None

  let milp ?(workers = 1) ?(engine = O) ?(warm_start = true) ?time_limit () =
    Milp
      {
        workers = max 1 workers;
        engine;
        warm_start;
        time_limit = norm_budget time_limit;
      }

  let combinatorial ?time_limit () =
    Combinatorial { time_limit = norm_budget time_limit }

  let lns ?(seed = 1) ?time_limit () =
    Lns { seed; time_limit = norm_budget time_limit }

  let rec flatten = function
    | Portfolio ms -> List.concat_map flatten ms
    | s -> [ s ]

  let portfolio ts =
    match List.concat_map flatten ts with
    | [] -> invalid_arg "Solver.Strategy.portfolio: empty member list"
    | ms -> Portfolio ms

  let budget = function
    | Milp m -> m.time_limit
    | Combinatorial c -> c.time_limit
    | Lns l -> l.time_limit
    | Portfolio _ -> None

  let rec to_string t =
    let suffix = function
      | None -> ""
      | Some s -> Printf.sprintf "@%g" s
    in
    match t with
    | Milp { workers; engine; warm_start = _; time_limit } ->
      let stem = match engine with O -> "milp" | Ho _ -> "milp-ho" in
      let w = if workers > 1 then Printf.sprintf ":%d" workers else "" in
      stem ^ w ^ suffix time_limit
    | Combinatorial { time_limit } -> "combinatorial" ^ suffix time_limit
    | Lns { seed; time_limit } ->
      Printf.sprintf "lns:%d%s" seed (suffix time_limit)
    | Portfolio ms ->
      Printf.sprintf "portfolio:[%s]"
        (String.concat "," (List.map to_string ms))

  let of_string s =
    let err () =
      Error
        (Diag.diagf ~code:"RF502" Diag.Error (Diag.Strategy (String.trim s))
           "unparsable strategy (expected milp[:W] | milp-ho[:W] | \
            combinatorial | lns[:SEED] | portfolio:[s1,s2,...]; members \
            may carry an @SECONDS budget)")
    in
    let parse_budget tok =
      match String.index_opt tok '@' with
      | None -> Some (tok, None)
      | Some i -> (
        let b = String.sub tok (i + 1) (String.length tok - i - 1) in
        match float_of_string_opt b with
        | Some f when Float.is_finite f && f > 0. ->
          Some (String.sub tok 0 i, Some f)
        | _ -> None)
    in
    let parse_atom tok =
      match parse_budget (String.trim tok) with
      | None -> None
      | Some (stem, time_limit) -> (
        let name, arg =
          match String.index_opt stem ':' with
          | None -> (stem, None)
          | Some i ->
            ( String.sub stem 0 i,
              Some (String.sub stem (i + 1) (String.length stem - i - 1)) )
        in
        let positive_int v =
          match int_of_string_opt v with
          | Some n when n >= 1 -> Some n
          | _ -> None
        in
        match (name, arg) with
        | "milp", None ->
          Some
            (Milp { workers = 1; engine = O; warm_start = true; time_limit })
        | "milp", Some w ->
          Option.map
            (fun w ->
              Milp { workers = w; engine = O; warm_start = true; time_limit })
            (positive_int w)
        | "milp-ho", None ->
          Some
            (Milp
               { workers = 1; engine = Ho None; warm_start = true; time_limit })
        | "milp-ho", Some w ->
          Option.map
            (fun w ->
              Milp
                { workers = w; engine = Ho None; warm_start = true; time_limit })
            (positive_int w)
        | "combinatorial", None -> Some (Combinatorial { time_limit })
        | "lns", None -> Some (Lns { seed = 1; time_limit })
        | "lns", Some sd ->
          Option.map
            (fun sd -> Lns { seed = sd; time_limit })
            (int_of_string_opt sd)
        | _ -> None)
    in
    let s' = String.trim s in
    let pfx = "portfolio:[" in
    let plen = String.length pfx in
    if String.length s' > plen && String.sub s' 0 plen = pfx then
      if s'.[String.length s' - 1] <> ']' then err ()
      else
        let inner = String.sub s' plen (String.length s' - plen - 1) in
        let toks =
          String.split_on_char ',' inner
          |> List.map String.trim
          |> List.filter (fun t -> t <> "")
        in
        if toks = [] then err ()
        else
          let ms = List.map parse_atom toks in
          if List.exists Option.is_none ms then err ()
          else Ok (Portfolio (List.filter_map Fun.id ms))
    else match parse_atom s' with Some t -> Ok t | None -> err ()
end

type objective_mode =
  | Lexicographic
  | Weighted of Objective.weights
  | Feasibility_only

type options = {
  strategy : Strategy.t;
  objective_mode : objective_mode;
  time_limit : float option;
  node_limit : int option;
  paper_literal_l : bool;
  warm_lp : bool;
  preflight : bool;
  cuts : bool;
  trace : T.sink;
  metrics : Rfloor_metrics.Registry.t;
  cancel : unit -> bool;
}

module Options = struct
  type t = options

  let make ?strategy ?(engine = O) ?(objective_mode = Lexicographic)
      ?(time_limit = 60.) ?node_limit ?(paper_literal_l = false)
      ?(warm_start = true) ?(warm_lp = true) ?(preflight = true) ?(cuts = true)
      ?(workers = 1) ?(trace = T.Sink.null)
      ?(metrics = Rfloor_metrics.Registry.null) ?(cancel = Bb.never_cancel) ()
      =
    let strategy =
      match strategy with
      | Some s -> s
      | None -> Strategy.milp ~workers ~engine ~warm_start ()
    in
    {
      strategy;
      objective_mode;
      (* "no limit" is spelled [~time_limit:infinity] (or any non-finite
         value); the record keeps the [float option] representation *)
      time_limit = (if Float.is_finite time_limit then Some time_limit else None);
      node_limit;
      paper_literal_l;
      warm_lp;
      preflight;
      cuts;
      trace;
      metrics;
      cancel;
    }
end

let default_options = Options.make ()

type status = Optimal | Feasible | Infeasible | Unknown

type stop_reason = Bb.stop_reason = Budget | Cancelled

type outcome = {
  plan : Floorplan.t option;
  wasted : int option;
  wirelength : float option;
  fc_identified : int;
  status : status;
  objective_value : float option;
  nodes : int;
  simplex_iterations : int;
  elapsed : float;
  stop : stop_reason option;
  diagnostics : Diag.t list;
  report : T.Report.t;
}

(* Per-member solving parameters, distilled from one [Strategy.Milp].
   The board hooks default to no-ops outside a portfolio. *)
type milp_cfg = {
  mg_engine : engine;
  mg_warm_start : bool;
  mg_workers : int;
  mg_budget : float option;
  mg_cancel : unit -> bool;
  mg_external_bound : unit -> float;
  mg_publish : (float -> Floorplan.t -> unit) option;
}

(* Member budgets never exceed the global budget; a larger request is
   clamped with an RF501 warning (satisfying it would let a losing
   member outlive the portfolio's own deadline). *)
let effective_budget ~global ~member ~label ~add_diags =
  match (global, member) with
  | None, m -> m
  | Some g, None -> Some g
  | Some g, Some m ->
    if m > g then begin
      add_diags
        [
          Diag.diagf ~code:"RF501" Diag.Warning (Diag.Strategy label)
            "member budget %gs exceeds the portfolio budget %gs; clamped" m g;
        ];
      Some g
    end
    else Some m

(* Resolve the HO seed once so the pair relations and the warm start are
   consistent (an inconsistent warm incumbent would be rejected). *)
let resolve_seed cfg part spec =
  match cfg.mg_engine with
  | O -> None
  | Ho (Some seed) -> Some seed
  | Ho None -> Ho.seed_of_search part spec

let pair_relations spec = function
  | Some seed -> Ho.relations spec seed
  | None -> []

let bb_options options cfg trace model stage_time ~ext =
  {
    Bb.default_options with
    Bb.time_limit = stage_time;
    node_limit = options.node_limit;
    priorities = Some (Model.branching_priorities model);
    trace;
    metrics = options.metrics;
    cancel = cfg.mg_cancel;
    warm_lp = options.warm_lp;
    external_bound =
      (if ext then cfg.mg_external_bound else Bb.no_external_bound);
  }

let warm_plan cfg part spec =
  if not cfg.mg_warm_start then None
  else
    let sopts =
      {
        Search.Engine.default_options with
        time_limit = Some 5.;
        optimize_wirelength = false;
      }
    in
    (Search.Engine.solve ~options:sopts part spec).Search.Engine.plan

(* Sequential solver for workers <= 1, the domain-parallel one above
   that.  Both consume the same options and produce the same result
   type, so everything downstream is solver-agnostic. *)
let bb_solve cfg bbopts ?incumbent lp =
  if cfg.mg_workers <= 1 then Bb.solve ~options:bbopts ?incumbent lp
  else
    Milp.Parallel_bb.solve ~options:bbopts ~workers:cfg.mg_workers ?incumbent
      lp

(* Run branch-and-bound on a model, optionally warm-started.  The
   model-lint preflight runs first — once, on the root model; workers
   of a parallel run share that single vetted LP, they never re-lint.
   An error-severity finding (e.g. a bound-infeasible row) proves the
   stage infeasible without a single branch-and-bound node.  [ext]
   arms the external objective bound (portfolio incumbent board) —
   only sound when the stage objective matches the published keys. *)
let run_stage options cfg trace model ~stage_time ~warm ~ext ~add_diags =
  let lp = Model.lp model in
  let lint =
    if options.preflight then
      T.span trace T.Event.Lint (fun () -> Rfloor_analysis.Preflight.model lp)
    else []
  in
  add_diags lint;
  if Diag.has_errors lint then
    {
      Bb.status = Bb.Infeasible;
      incumbent = None;
      best_bound =
        (match Milp.Lp.objective_dir lp with
        | Milp.Lp.Minimize -> infinity
        | Milp.Lp.Maximize -> neg_infinity);
      nodes = 0;
      simplex_iterations = 0;
      elapsed = 0.;
      stop = None;
    }
  else begin
    ignore (Milp.Presolve.tighten ~trace ~metrics:options.metrics lp);
    let incumbent =
      match warm with
      | None -> None
      | Some plan -> (
        let x = Model.encode model plan in
        match Milp.Lp.validate ~eps:1e-5 lp x with
        | Ok () -> Some x
        | Error msg ->
          T.warn trace (Printf.sprintf "warm start rejected: %s" msg);
          None)
    in
    T.span trace T.Event.Branch_bound (fun () ->
        bb_solve cfg
          (bb_options options cfg trace model stage_time ~ext)
          ?incumbent lp)
  end

let build_model options trace model_options part spec =
  let model =
    T.span trace T.Event.Build (fun () ->
        Model.build ~options:model_options part spec)
  in
  let n = Model.cuts_applied model in
  if n > 0 then begin
    T.cuts_added trace ~worker:0 ~rounds:1 ~cuts:n;
    Rfloor_metrics.Registry.Counter.add
      (Rfloor_metrics.Registry.counter options.metrics
         ~help:"Symmetry/packing cut rows added at model build time"
         "rfloor_cuts_applied_total")
      n
  end;
  model

let status_of_bb = function
  | Bb.Optimal -> Optimal
  | Bb.Feasible -> Feasible
  | Bb.Infeasible -> Infeasible
  | Bb.Unbounded | Bb.Unknown -> Unknown

let finish options trace part spec model (r : Bb.result) extra_nodes extra_iters
    extra_time diags =
  let plan, fc, wasted, wirelength =
    T.span trace T.Event.Decode (fun () ->
        let plan, fc =
          match r.Bb.incumbent with
          | Some (_, x) ->
            (Some (Model.decode model x), Model.fc_identified model x)
          | None -> (None, 0)
        in
        let wasted =
          Option.map (fun p -> Floorplan.wasted_frames part spec p) plan
        in
        let wirelength = Option.map (fun p -> Floorplan.wirelength spec p) plan in
        (plan, fc, wasted, wirelength))
  in
  (* independent re-check of the decoded plan (Eq. 6-10 and validity);
     findings here would point at a model or decoder bug *)
  let audit =
    match plan with
    | Some p when options.preflight ->
      T.span trace T.Event.Audit (fun () ->
          let ds = Rfloor_analysis.Solution_audit.run part spec p in
          List.iter
            (fun d -> T.messagef trace "audit: %a" Diag.pp d)
            ds;
          ds)
    | _ -> []
  in
  let nodes = r.Bb.nodes + extra_nodes in
  let simplex_iterations = r.Bb.simplex_iterations + extra_iters in
  let elapsed = r.Bb.elapsed +. extra_time in
  {
    plan;
    wasted;
    wirelength;
    fc_identified = fc;
    status = status_of_bb r.Bb.status;
    objective_value = Option.map fst r.Bb.incumbent;
    nodes;
    simplex_iterations;
    elapsed;
    stop = r.Bb.stop;
    diagnostics = diags @ audit;
    report = T.report trace ~nodes ~simplex_iterations ~elapsed;
  }

let solve_milp options cfg trace part spec ~add_diags ~diags =
  let seed = resolve_seed cfg part spec in
  let relations = pair_relations spec seed in
  let warm =
    match seed with Some _ -> seed | None -> warm_plan cfg part spec
  in
  let model_options objective extra_waste_cap =
    {
      Model.objective;
      paper_literal_l = options.paper_literal_l;
      pair_relations = relations;
      extra_waste_cap;
      cuts = options.cuts;
    }
  in
  let publish key plan =
    match cfg.mg_publish with Some pub -> pub key plan | None -> ()
  in
  match options.objective_mode with
  | Feasibility_only ->
    let model =
      build_model options trace (model_options Model.Feasibility None) part
        spec
    in
    finish options trace part spec model
      (run_stage options cfg trace model ~stage_time:cfg.mg_budget ~warm
         ~ext:false ~add_diags)
      0 0 0. !diags
  | Weighted w ->
    let model =
      build_model options trace (model_options (Model.Weighted w) None) part
        spec
    in
    finish options trace part spec model
      (run_stage options cfg trace model ~stage_time:cfg.mg_budget ~warm
         ~ext:false ~add_diags)
      0 0 0. !diags
  | Lexicographic -> (
    let split f = Option.map (fun t -> t *. f) cfg.mg_budget in
    let m1 =
      build_model options trace (model_options Model.Wasted_frames_only None)
        part spec
    in
    (* the external bound is armed only here: stage 1 minimizes exactly
       the wasted-frames key the board publishes *)
    let r1 =
      run_stage options cfg trace m1 ~stage_time:(split 0.6) ~warm ~ext:true
        ~add_diags
    in
    match r1.Bb.incumbent with
    | None -> finish options trace part spec m1 r1 0 0 0. !diags
    | Some (w1, x1) ->
      T.messagef trace "stage 1: wasted frames = %.0f (%s)" w1
        (match r1.Bb.status with
        | Bb.Optimal -> "optimal"
        | _ -> "best found");
      let plan1 = Model.decode m1 x1 in
      publish w1 plan1;
      T.restart trace "stage2-wirelength";
      let m2 =
        build_model options trace
          (model_options Model.Wirelength_only (Some (w1 +. 0.5)))
          part spec
      in
      (* stage-2 warm start: prefer the candidate with the best wire
         length among plans matching the stage-1 waste *)
      let warm2 =
        let ok p =
          float_of_int (Floorplan.wasted_frames part spec p) <= w1 +. 0.5
        in
        let candidates = List.filter ok (plan1 :: Option.to_list warm) in
        match
          List.sort
            (fun a b ->
              compare (Floorplan.wirelength spec a)
                (Floorplan.wirelength spec b))
            candidates
        with
        | best :: _ -> Some best
        | [] -> Some plan1
      in
      let r2 =
        run_stage options cfg trace m2 ~stage_time:(split 0.4) ~warm:warm2
          ~ext:false ~add_diags
      in
      let r2 =
        match r2.Bb.incumbent with
        | Some _ -> r2
        | None -> { r2 with Bb.incumbent = r1.Bb.incumbent }
      in
      let out =
        finish options trace part spec m2 r2 r1.Bb.nodes
          r1.Bb.simplex_iterations r1.Bb.elapsed !diags
      in
      (match (out.plan, out.wasted) with
      | Some p, Some w -> publish (float_of_int w) p
      | _ -> ());
      (* stage-2 optimality only refines wire length; overall optimality
         additionally needs stage 1 proven *)
      let status =
        match (r1.Bb.status, out.status) with
        | Bb.Optimal, Optimal -> Optimal
        | _, Infeasible -> Feasible (* stage 2 budget died; stage 1 plan holds *)
        | _, s -> (match s with Optimal -> Feasible | s -> s)
      in
      { out with status })

let engine_stop = function
  | Some Search.Engine.Budget -> Some Budget
  | Some Search.Engine.Cancelled -> Some Cancelled
  | None -> None

let heuristic_outcome trace diags (o : Search.Engine.outcome) ~can_prove =
  let status =
    match (o.Search.Engine.optimal, o.Search.Engine.plan) with
    | true, Some _ -> if can_prove then Optimal else Feasible
    | true, None -> if can_prove then Infeasible else Unknown
    | false, Some _ -> Feasible
    | false, None -> Unknown
  in
  let fc =
    match o.Search.Engine.plan with
    | Some p -> Floorplan.fc_count p
    | None -> 0
  in
  {
    plan = o.Search.Engine.plan;
    wasted = o.Search.Engine.wasted;
    wirelength = o.Search.Engine.wirelength;
    fc_identified = fc;
    status;
    objective_value = Option.map float_of_int o.Search.Engine.wasted;
    nodes = o.Search.Engine.nodes;
    simplex_iterations = 0;
    elapsed = o.Search.Engine.elapsed;
    stop = engine_stop o.Search.Engine.stop;
    diagnostics = diags;
    report =
      T.report trace ~nodes:o.Search.Engine.nodes ~simplex_iterations:0
        ~elapsed:o.Search.Engine.elapsed;
  }

let run_combinatorial options ~budget ~cancel ~publish trace part spec diags =
  let sopts =
    {
      Search.Engine.default_options with
      time_limit = budget;
      node_limit = options.node_limit;
      trace;
      cancel;
      on_improvement =
        Option.map
          (fun pub plan w -> pub (float_of_int w) plan)
          publish;
    }
  in
  let run =
    match options.objective_mode with
    | Feasibility_only -> Search.Engine.feasible
    | Lexicographic | Weighted _ -> Search.Engine.solve
  in
  let o = run ~options:sopts part spec in
  (* the engine optimizes the lexicographic objective; its optimality
     proof does not transfer to a Weighted objective *)
  let can_prove =
    match options.objective_mode with Weighted _ -> false | _ -> true
  in
  heuristic_outcome trace diags o ~can_prove

let run_lns options ~seed ~budget ~cancel ~publish trace part spec diags =
  let lopts =
    {
      Search.Lns.seed;
      time_limit = budget;
      iter_limit = options.node_limit;
      trace;
      cancel;
      on_improvement =
        Option.map
          (fun pub plan w -> pub (float_of_int w) plan)
          publish;
    }
  in
  let o = Search.Lns.solve ~options:lopts part spec in
  heuristic_outcome trace diags o ~can_prove:false

let conclusive o = o.status = Optimal || o.status = Infeasible

let run_portfolio options trace part spec ~add_diags ~diags members =
  let t0 = Unix.gettimeofday () in
  let global = options.time_limit in
  let deadline = Option.map (fun l -> t0 +. l) global in
  let base_cancel () =
    options.cancel ()
    || (match deadline with
       | Some d -> Unix.gettimeofday () > d
       | None -> false)
  in
  let board : Floorplan.t Rfloor_portfolio.board =
    Rfloor_portfolio.board ~name:"solver.board" ()
  in
  (* heuristic incumbents feed the exact members only when the stage-1
     key (wasted frames) is the objective being bounded *)
  let ext_ok = options.objective_mode = Lexicographic in
  let publish =
    if ext_ok then
      Some (fun key plan -> ignore (Rfloor_portfolio.publish board key plan))
    else None
  in
  (* budgets are clamped on the main domain, before spawning: member
     threads must not touch the shared diagnostics accumulator *)
  let member_thunk i s =
    let label = Strategy.to_string s in
    let budget =
      effective_budget ~global ~member:(Strategy.budget s) ~label ~add_diags
    in
    {
      Rfloor_portfolio.m_label = label;
      m_run =
        (fun ~cancelled ->
          (* per-member tracer: worker ids shifted by a per-member base
             so concurrent members share the caller's sink without
             colliding span nesting (null parent sink -> plain null-sink
             tracer, the old behaviour).  The opening Restart event maps
             the worker-id range back to the member label for progress
             streaming and timeline export. *)
          let mtrace = T.subtracer trace ~worker_base:((i + 1) * 1000) in
          if T.enabled trace then T.restart mtrace ("member:" ^ label);
          let mdiags = ref [] in
          let madd ds = mdiags := !mdiags @ ds in
          match s with
          | Strategy.Milp m ->
            let cfg =
              {
                mg_engine = m.engine;
                mg_warm_start = m.warm_start;
                mg_workers = m.workers;
                mg_budget = budget;
                mg_cancel = cancelled;
                mg_external_bound =
                  (if ext_ok then fun () -> Rfloor_portfolio.best_key board
                   else Bb.no_external_bound);
                mg_publish = publish;
              }
            in
            solve_milp options cfg mtrace part spec ~add_diags:madd
              ~diags:mdiags
          | Strategy.Combinatorial _ ->
            run_combinatorial options ~budget ~cancel:cancelled ~publish
              mtrace part spec []
          | Strategy.Lns l ->
            run_lns options ~seed:l.seed ~budget ~cancel:cancelled ~publish
              mtrace part spec []
          | Strategy.Portfolio _ ->
            (* flattened before spawning *)
            assert false);
    }
  in
  let members = List.concat_map Strategy.flatten members in
  let completions, winner =
    Rfloor_portfolio.race ~cancel:base_cancel ~conclusive
      (List.mapi member_thunk members)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let outcomes =
    List.filter_map
      (fun (c : outcome Rfloor_portfolio.completion) ->
        match c.Rfloor_portfolio.c_result with
        | Ok o -> Some (c, o)
        | Error e ->
          T.warn trace
            (Printf.sprintf "portfolio member %s raised: %s"
               c.Rfloor_portfolio.c_label (Printexc.to_string e));
          None)
      completions
  in
  (* losing members surface their cancellation on the caller's tracer:
     one Stopped event per cancelled loser, outside any solve segment *)
  List.iter
    (fun ((c : outcome Rfloor_portfolio.completion), o) ->
      if (not c.Rfloor_portfolio.c_winner) && o.stop = Some Cancelled then
        T.stopped trace ~worker:c.Rfloor_portfolio.c_index "cancel")
    outcomes;
  (match winner with
  | Some i ->
    let c = List.nth completions i in
    T.messagef trace "portfolio winner: %s" c.Rfloor_portfolio.c_label;
    Rfloor_metrics.Registry.Counter.incr
      (Rfloor_metrics.Registry.counter options.metrics
         ~help:"Portfolio races won, by member strategy"
         ~labels:[ ("strategy", c.Rfloor_portfolio.c_label) ]
         "rfloor_portfolio_wins_total")
  | None -> ());
  let member_outs = List.map snd outcomes in
  let nodes = List.fold_left (fun a o -> a + o.nodes) 0 member_outs in
  let iters =
    List.fold_left (fun a o -> a + o.simplex_iterations) 0 member_outs
  in
  let all_diags =
    List.sort_uniq Diag.compare
      (!diags @ List.concat_map (fun o -> o.diagnostics) member_outs)
  in
  let plan_key p =
    (Floorplan.wasted_frames part spec p, Floorplan.wirelength spec p)
  in
  let best_plan =
    let board_plan =
      Option.map
        (fun (_, p) -> Search.Engine.add_soft_areas part spec p)
        (Rfloor_portfolio.best board)
    in
    let cands =
      List.filter_map (fun o -> o.plan) member_outs
      @ Option.to_list board_plan
    in
    match List.sort (fun a b -> compare (plan_key a) (plan_key b)) cands with
    | [] -> None
    | p :: _ -> Some p
  in
  let outcome_of plan status stop =
    let wasted =
      Option.map (fun p -> Floorplan.wasted_frames part spec p) plan
    in
    {
      plan;
      wasted;
      wirelength = Option.map (fun p -> Floorplan.wirelength spec p) plan;
      fc_identified =
        (match plan with Some p -> Floorplan.fc_count p | None -> 0);
      status;
      objective_value = Option.map float_of_int wasted;
      nodes;
      simplex_iterations = iters;
      elapsed;
      stop;
      diagnostics = all_diags;
      report = T.report trace ~nodes ~simplex_iterations:iters ~elapsed;
    }
  in
  let refresh o =
    {
      o with
      nodes;
      simplex_iterations = iters;
      elapsed;
      diagnostics = all_diags;
      report = T.report trace ~nodes ~simplex_iterations:iters ~elapsed;
    }
  in
  match
    ( List.find_opt (fun o -> o.status = Optimal) member_outs,
      List.find_opt (fun o -> o.status = Infeasible) member_outs )
  with
  | Some o, _ -> refresh { o with stop = None }
  | None, Some o -> (
    match best_plan with
    | Some p when ext_ok ->
      (* the exact member completed its search against the board's
         bound: nothing strictly better than the published incumbent
         exists, so the best known plan is optimal *)
      outcome_of (Some p) Optimal None
    | Some p ->
      (* an infeasibility claim next to a feasible plan should be
         impossible without the external bound; trust the plan *)
      outcome_of (Some p) Feasible None
    | None -> refresh { o with stop = None })
  | None, None ->
    let stop =
      if options.cancel () then Some Cancelled
      else if
        List.exists (fun o -> o.stop <> None) member_outs || base_cancel ()
      then Some Budget
      else None
    in
    (match best_plan with
    | Some p -> outcome_of (Some p) Feasible stop
    | None -> outcome_of None Unknown stop)

let run_strategy options trace part spec ~add_diags ~diags strategy =
  match strategy with
  | Strategy.Milp m ->
    let budget =
      effective_budget ~global:options.time_limit ~member:m.time_limit
        ~label:(Strategy.to_string strategy) ~add_diags
    in
    let cfg =
      {
        mg_engine = m.engine;
        mg_warm_start = m.warm_start;
        mg_workers = m.workers;
        mg_budget = budget;
        mg_cancel = options.cancel;
        mg_external_bound = Bb.no_external_bound;
        mg_publish = None;
      }
    in
    solve_milp options cfg trace part spec ~add_diags ~diags
  | Strategy.Combinatorial c ->
    let budget =
      effective_budget ~global:options.time_limit ~member:c.time_limit
        ~label:(Strategy.to_string strategy) ~add_diags
    in
    run_combinatorial options ~budget ~cancel:options.cancel ~publish:None
      trace part spec !diags
  | Strategy.Lns l ->
    let budget =
      effective_budget ~global:options.time_limit ~member:l.time_limit
        ~label:(Strategy.to_string strategy) ~add_diags
    in
    run_lns options ~seed:l.seed ~budget ~cancel:options.cancel ~publish:None
      trace part spec !diags
  | Strategy.Portfolio members ->
    run_portfolio options trace part spec ~add_diags ~diags members

let solve ?(options = default_options) part (spec : Spec.t) =
  (* One live tracer per solve, even with the null sink: the metrics
     behind [outcome.report] always accumulate; events only flow when a
     real sink is attached.  A live metrics registry tees its
     event-folding sink onto the caller's, so the registry sees the
     whole event stream (phases, incumbents, steals) in addition to the
     direct simplex/presolve instrumentation. *)
  let sink =
    if Rfloor_metrics.Registry.live options.metrics then
      T.Sink.tee options.trace (Rfloor_metrics.Trace_sink.sink options.metrics)
    else options.trace
  in
  let trace = T.create ~sink () in
  (* spec/partition preflight: error findings prove infeasibility before
     any model is built or any node is explored *)
  let diags = ref [] in
  let add_diags ds =
    List.iter (fun d -> T.messagef trace "preflight: %a" Diag.pp d) ds;
    diags := !diags @ ds
  in
  if options.preflight then
    add_diags
      (T.span trace T.Event.Lint (fun () ->
           Rfloor_analysis.Preflight.spec part spec));
  if Diag.has_errors !diags then
    {
      plan = None;
      wasted = None;
      wirelength = None;
      fc_identified = 0;
      status = Infeasible;
      objective_value = None;
      nodes = 0;
      simplex_iterations = 0;
      elapsed = 0.;
      stop = None;
      diagnostics = !diags;
      report = T.report trace ~nodes:0 ~simplex_iterations:0 ~elapsed:0.;
    }
  else
    run_strategy options trace part spec ~add_diags ~diags options.strategy

let feasible ?(options = default_options) part spec =
  solve ~options:{ options with objective_mode = Feasibility_only } part spec

let export_lp ?(options = default_options) part spec =
  let engine =
    match options.strategy with
    | Strategy.Milp m -> m.engine
    | Strategy.Combinatorial _ | Strategy.Lns _ | Strategy.Portfolio _ -> O
  in
  let cfg =
    {
      mg_engine = engine;
      mg_warm_start = false;
      mg_workers = 1;
      mg_budget = None;
      mg_cancel = Bb.never_cancel;
      mg_external_bound = Bb.no_external_bound;
      mg_publish = None;
    }
  in
  let relations = pair_relations spec (resolve_seed cfg part spec) in
  let objective =
    match options.objective_mode with
    | Feasibility_only -> Model.Feasibility
    | Weighted w -> Model.Weighted w
    | Lexicographic -> Model.Wasted_frames_only
  in
  let model =
    Model.build
      ~options:
        {
          Model.objective;
          paper_literal_l = options.paper_literal_l;
          pair_relations = relations;
          extra_waste_cap = None;
          cuts = options.cuts;
        }
      part spec
  in
  Milp.Lp_format.to_string (Model.lp model)

let pp_outcome ppf o =
  Format.fprintf ppf "status=%s wasted=%s wirelength=%s fc=%d nodes=%d %.1fs"
    (match o.status with
    | Optimal -> "optimal"
    | Feasible -> "feasible"
    | Infeasible -> "infeasible"
    | Unknown -> "unknown")
    (match o.wasted with Some w -> string_of_int w | None -> "-")
    (match o.wirelength with Some w -> Printf.sprintf "%.1f" w | None -> "-")
    o.fc_identified o.nodes o.elapsed;
  (match o.stop with
  | Some Budget -> Format.fprintf ppf " stop=budget"
  | Some Cancelled -> Format.fprintf ppf " stop=cancelled"
  | None -> ());
  let nerr = Diag.count Diag.Error o.diagnostics
  and nwarn = Diag.count Diag.Warning o.diagnostics in
  if nerr > 0 || nwarn > 0 then
    Format.fprintf ppf " diagnostics=%dE/%dW" nerr nwarn
