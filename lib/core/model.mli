(** MILP model of the relocation-aware floorplanning problem.

    Builds the paper's formulation over a columnar-partitioned device:

    - geometry per entity (region or free-compatible area): leftmost
      column [x], width [w], per-portion coverage indicators [k]
      (derived from edge-position binaries), offset variables [o]
      (Eq. 4-5), row-coverage binaries [a] with contiguity, height [h];
    - horizontal overlap [u(n,p)] with each columnar portion, tight in
      both directions so that coverage equalities are sound;
    - per-row intersection [l(n,p,r)] for resource and wasted-frame
      accounting (the paper's variables);
    - pairwise non-overlap disjunctions, forbidden-area avoidance
      (Eq. 1-2);
    - compatibility of each free-compatible area with its region:
      equal heights (Eq. 6), equal portion counts (Eq. 7), equal
      tile-type sequences (Eq. 10), equal per-portion coverage (Eq. 9);
    - relocation as a constraint (hard) or as a metric (soft, with
      violation indicators [v(c)] relaxing Eq. 9-12 and non-overlap).

    The module returns the {!Milp.Lp.t} plus a handle used to decode a
    solver assignment back into a {!Device.Floorplan.t}. *)

type objective =
  | Weighted of Objective.weights  (** the paper's Eq. 14 *)
  | Wasted_frames_only
  | Wirelength_only
  | Feasibility  (** constant objective: any feasible point *)

type pair_relation = Left_of | Right_of | Above | Below
(** HO-mode restriction for an entity pair (from a sequence pair). *)

type options = {
  objective : objective;
  paper_literal_l : bool;
      (** Use only the paper's upper bounds on [l(n,p,r)] and the
          Eq. 9 sum-over-rows form (unsound waste accounting, kept for
          the ablation); default [false] = tight two-sided bounds. *)
  pair_relations : ((string * string) * pair_relation) list;
      (** HO: fixed relative positions; entity names as in {!entity_names}. *)
  extra_waste_cap : float option;
      (** Upper bound on total wasted frames (lexicographic stage 2). *)
  cuts : bool;
      (** Add the {!Milp.Cuts} families at build time (default [true]):
          lexicographic symmetry-breaking over the interchangeable
          free-compatible copies of each relocation request, plus
          portion-packing and per-kind capacity rows screened by
          activity range.  Symmetry cuts are skipped when
          [pair_relations] is non-empty (HO mode pins named copies).
          With symmetry cuts in the LP, {!encode} canonicalizes the copy
          order per target, so encoded valid plans stay feasible. *)
}

val default_options : options

type t
(** Model handle: the LP plus decoding tables. *)

val build : ?options:options -> Device.Partition.t -> Device.Spec.t -> t

val lp : t -> Milp.Lp.t

val cuts_applied : t -> int
(** Number of {!Milp.Cuts} rows added at build time (0 with
    [options.cuts = false]). *)

val entity_names : t -> string list
(** Regions first, then free-compatible areas named ["region/i"]. *)

val branching_priorities : t -> float array

val wasted_frames_terms : t -> Milp.Lp.term list
(** Linear expression of total wasted frames (regions only). *)

val wirelength_terms : t -> Milp.Lp.term list

val violation_terms : t -> (float * Milp.Lp.term) list
(** Per soft area: (weight, violation variable term). *)

val decode : t -> float array -> Device.Floorplan.t
(** Reads entity rectangles from a feasible assignment.  Soft areas
    whose violation variable is 1 are dropped. *)

val fc_identified : t -> float array -> int
(** Number of free-compatible areas identified in the assignment. *)

val encode : t -> Device.Floorplan.t -> float array
(** Inverse of {!decode}: builds a full variable assignment from a valid
    floorplan (used to warm-start branch-and-bound and to property-test
    the model: encoded valid plans must satisfy every constraint).
    Soft areas absent from the plan get their violation variable set.
    @raise Invalid_argument if a hard entity is missing. *)

val portion_indicators : t -> string -> float array -> (float * float) array
(** [(k(n,p), o(n,p))] per portion for an entity under an assignment —
    the quantities illustrated by Figure 3. *)
