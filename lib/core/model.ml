open Device
module Lp = Milp.Lp

type objective =
  | Weighted of Objective.weights
  | Wasted_frames_only
  | Wirelength_only
  | Feasibility

type pair_relation = Left_of | Right_of | Above | Below

type options = {
  objective : objective;
  paper_literal_l : bool;
  pair_relations : ((string * string) * pair_relation) list;
  extra_waste_cap : float option;
  cuts : bool;
}

let default_options =
  {
    objective = Weighted Objective.default_weights;
    paper_literal_l = false;
    pair_relations = [];
    extra_waste_cap = None;
    cuts = true;
  }

(* One placed entity: a reconfigurable region or a free-compatible area.
   Free-compatible areas are modelled as special regions (Section IV.A):
   they share all geometry variables but carry no resource demand. *)
type entity = {
  e_name : string;
  e_demand : Resource.demand option; (* None for free-compatible areas *)
  e_target : int option; (* index of the region a FC area duplicates *)
  e_soft : float option; (* Some weight = relocation as a metric *)
  (* variables *)
  vx : Lp.var;
  vw : Lp.var;
  va : Lp.var array; (* row coverage a(n,r), 1-based slot r *)
  vs : Lp.var array; (* row start s(n,r) *)
  vh : Lp.var;
  v_edge_a : Lp.var array; (* A(n,p) = [x >= P1(p)], slots 1..|P|+1 *)
  v_edge_b : Lp.var array; (* B(n,p) = [x+w-1 >= P1(p)] *)
  vk : Lp.var array; (* portion coverage k(n,p) *)
  vo : Lp.var array; (* offsets o(n,p), Eq. 4-5 *)
  vu : Lp.var array; (* horizontal portion overlap u(n,p) *)
  vl : Lp.var array array; (* l(n,p,r); empty for FC areas unless literal *)
  vv : Lp.var option; (* violation v(c) for soft areas, Section V *)
  v_cx : Lp.var;
  v_cy : Lp.var;
}

type t = {
  lp : Lp.t;
  part : Partition.t;
  spec : Spec.t;
  options : options;
  entities : entity array;
  priorities : float array;
  waste_terms : Lp.term list;
  waste_constant : float;
  wl_terms : Lp.term list;
  viol_terms : (float * Lp.term) list;
  pair_vars : ((int * int) * (Lp.var * Lp.var * Lp.var)) list;
  q_vars : ((int * Rect.t) * Lp.var) list;
  net_vars : (Spec.net * (Lp.var * Lp.var)) list;
  cuts_applied : int;
  sym_ordered : bool;
      (* symmetry-breaking cuts are in the LP: encode must canonicalize
         the free-compatible copy order per target *)
}

let lp t = t.lp
let cuts_applied t = t.cuts_applied
let entity_names t = Array.to_list (Array.map (fun e -> e.e_name) t.entities)
let wasted_frames_terms t = t.waste_terms
let wirelength_terms t = t.wl_terms
let violation_terms t = t.viol_terms
let branching_priorities t = t.priorities

let kind_of_tid part tid =
  part.Partition.types.(tid - 1).Resource.kind

let build ?(options = default_options) part (spec : Spec.t) =
  let lp = Lp.create ~name:(Milp.Lp_format.sanitize spec.Spec.s_name) () in
  let np = Array.length part.Partition.portions in
  let width = Partition.width part and height = Partition.height part in
  let widthf = float_of_int width and heightf = float_of_int height in
  let mx = widthf +. 1. in
  let portions = part.Partition.portions in
  let p1 p = float_of_int portions.(p - 1).Partition.x1 in
  let p2 p = float_of_int portions.(p - 1).Partition.x2 in
  let pwidth p = float_of_int (Partition.portion_width portions.(p - 1)) in
  let tid p = portions.(p - 1).Partition.tid in
  let frames = Grid.frames part.Partition.grid in
  let bin name = Lp.add_var lp ~name ~kind:Lp.Binary () in
  let real ?(lb = 0.) ?(ub = infinity) name = Lp.add_var lp ~name ~lb ~ub () in
  let fixed name value = Lp.add_var lp ~name ~lb:value ~ub:value () in
  let le ?name terms rhs = Lp.add_constr lp ?name terms Lp.Le rhs in
  let ge ?name terms rhs = Lp.add_constr lp ?name terms Lp.Ge rhs in
  let eq ?name terms rhs = Lp.add_constr lp ?name terms Lp.Eq rhs in

  (* ---------------- per-entity variables and geometry ---------------- *)
  let make_entity ~name ~demand ~target ~soft ~with_l =
    let n = name in
    let vx =
      Lp.add_var lp ~name:(n ^ ".x") ~lb:1. ~ub:widthf ~kind:Lp.Integer ()
    in
    let vw =
      Lp.add_var lp ~name:(n ^ ".w") ~lb:1. ~ub:widthf ~kind:Lp.Integer ()
    in
    (* x + w - 1 <= width *)
    le ~name:(n ^ ".fit") [ (1., vx); (1., vw) ] (widthf +. 1.);
    let va =
      Array.init height (fun r -> bin (Printf.sprintf "%s.a[%d]" n (r + 1)))
    in
    let vs =
      Array.init height (fun r ->
          real ~ub:1. (Printf.sprintf "%s.s[%d]" n (r + 1)))
    in
    let vh = real ~lb:1. ~ub:heightf (n ^ ".h") in
    (* h = sum a ; rows contiguous via start variables (mirror of Eq. 4-5):
       sum s = 1, s1 = a1, s(r) >= a(r) - a(r-1) *)
    eq ~name:(n ^ ".hdef")
      ((-1., vh) :: Array.to_list (Array.map (fun v -> (1., v)) va))
      0.;
    eq ~name:(n ^ ".sone") (Array.to_list (Array.map (fun v -> (1., v)) vs)) 1.;
    eq ~name:(n ^ ".s1") [ (1., vs.(0)); (-1., va.(0)) ] 0.;
    for r = 1 to height - 1 do
      ge [ (1., vs.(r)); (-1., va.(r)); (1., va.(r - 1)) ] 0.
    done;
    (* edge-position binaries: A(p) = [x >= P1(p)], B(p) = [x2 >= P1(p)].
       Slot p in 1..np+1 where np+1 is a virtual portion at width+1. *)
    let v_edge_a = Array.make (np + 2) (-1) in
    let v_edge_b = Array.make (np + 2) (-1) in
    v_edge_a.(1) <- fixed (n ^ ".A[1]") 1.;
    v_edge_b.(1) <- fixed (n ^ ".B[1]") 1.;
    v_edge_a.(np + 1) <- fixed (Printf.sprintf "%s.A[%d]" n (np + 1)) 0.;
    v_edge_b.(np + 1) <- fixed (Printf.sprintf "%s.B[%d]" n (np + 1)) 0.;
    for p = 2 to np do
      v_edge_a.(p) <- bin (Printf.sprintf "%s.A[%d]" n p);
      v_edge_b.(p) <- bin (Printf.sprintf "%s.B[%d]" n p);
      (* A: x >= P1p - M(1-A) ; x <= P1p - 1 + M A *)
      ge [ (1., vx); (-.mx, v_edge_a.(p)) ] (p1 p -. mx);
      le [ (1., vx); (-.mx, v_edge_a.(p)) ] (p1 p -. 1.);
      (* B over x2 = x + w - 1 *)
      ge [ (1., vx); (1., vw); (-.mx, v_edge_b.(p)) ] (p1 p +. 1. -. mx);
      le [ (1., vx); (1., vw); (-.mx, v_edge_b.(p)) ] (p1 p)
    done;
    (* monotonicity and A <= B *)
    for p = 1 to np do
      le [ (1., v_edge_a.(p + 1)); (-1., v_edge_a.(p)) ] 0.;
      le [ (1., v_edge_b.(p + 1)); (-1., v_edge_b.(p)) ] 0.;
      le [ (1., v_edge_a.(p)); (-1., v_edge_b.(p)) ] 0.
    done;
    (* portion coverage k(p) = B(p) - A(p+1) *)
    let vk = Array.make (np + 1) (-1) in
    for p = 1 to np do
      vk.(p) <- real ~ub:1. (Printf.sprintf "%s.k[%d]" n p);
      eq
        [ (1., vk.(p)); (-1., v_edge_b.(p)); (1., v_edge_a.(p + 1)) ]
        0.
    done;
    (* offsets o(p), Eq. 4 and Eq. 5 *)
    let vo = Array.make (np + 1) (-1) in
    for p = 1 to np do
      vo.(p) <- real ~ub:1. (Printf.sprintf "%s.o[%d]" n p)
    done;
    eq ~name:(n ^ ".o_unique")
      (List.init np (fun i -> (1., vo.(i + 1))))
      1.;
    eq [ (1., vo.(1)); (-1., vk.(1)) ] 0.;
    for p = 2 to np do
      ge [ (1., vo.(p)); (1., vk.(p - 1)); (-1., vk.(p)) ] 0.
    done;
    (* horizontal overlap u(p): upper bounds only; together with
       sum u = w and the fact that portions tile the device they force
       u(p) to the exact overlap width. *)
    let vu = Array.make (np + 1) (-1) in
    for p = 1 to np do
      let u = real ~ub:(pwidth p) (Printf.sprintf "%s.u[%d]" n p) in
      vu.(p) <- u;
      le [ (1., u); (-1., vw) ] 0.;
      (* u <= x2 - P1p + 1 + M(1-k) = x + w - P1p + M(1-k) *)
      le [ (1., u); (-1., vx); (-1., vw); (mx, vk.(p)) ] (mx -. p1 p);
      (* u <= P2p - x + 1 + M(1-k) *)
      le [ (1., u); (1., vx); (mx, vk.(p)) ] (p2 p +. 1. +. mx);
      (* u <= Wp * k *)
      le [ (1., u); (-.pwidth p, vk.(p)) ] 0.
    done;
    eq ~name:(n ^ ".u_sum")
      ((-1., vw) :: List.init np (fun i -> (1., vu.(i + 1))))
      0.;
    (* per-row intersections l(n,p,r) *)
    let vl =
      if with_l then
        Array.init (np + 1) (fun p ->
            if p = 0 then [||]
            else
              Array.init height (fun r ->
                  let l =
                    real ~ub:(pwidth p) (Printf.sprintf "%s.l[%d,%d]" n p (r + 1))
                  in
                  le [ (1., l); (-1., vu.(p)) ] 0.;
                  le [ (1., l); (-.pwidth p, va.(r)) ] 0.;
                  if not options.paper_literal_l then
                    (* tight from below: l >= u - Wp(1 - a) *)
                    ge
                      [ (1., l); (-1., vu.(p)); (-.pwidth p, va.(r)) ]
                      (-.pwidth p);
                  l))
      else [||]
    in
    let vv =
      match soft with
      | Some _ -> Some (bin (n ^ ".v"))
      | None -> None
    in
    (* centers for wire length: cx = x + (w-1)/2 ; cy = ymin + (h-1)/2
       with ymin = sum r * s(r) *)
    let v_cx = real ~lb:1. ~ub:widthf (n ^ ".cx") in
    let v_cy = real ~lb:1. ~ub:heightf (n ^ ".cy") in
    eq
      [ (1., v_cx); (-1., vx); (-0.5, vw) ]
      (-0.5);
    eq
      (((1., v_cy) :: (-0.5, vh)
       :: List.init height (fun r -> (-.float_of_int (r + 1), vs.(r)))))
      (-0.5);
    {
      e_name = name;
      e_demand = demand;
      e_target = target;
      e_soft = soft;
      vx;
      vw;
      va;
      vs;
      vh;
      v_edge_a;
      v_edge_b;
      vk;
      vo;
      vu;
      vl;
      vv;
      v_cx;
      v_cy;
    }
  in

  (* entity list: regions, then free-compatible areas *)
  let region_index = Hashtbl.create 8 in
  List.iteri
    (fun i (r : Spec.region) -> Hashtbl.replace region_index r.Spec.r_name i)
    spec.Spec.regions;
  let regions =
    List.map
      (fun (r : Spec.region) ->
        make_entity ~name:r.Spec.r_name ~demand:(Some r.Spec.demand)
          ~target:None ~soft:None ~with_l:true)
      spec.Spec.regions
  in
  let fcs =
    List.concat_map
      (fun (rr : Spec.reloc_req) ->
        let target = Hashtbl.find region_index rr.Spec.target in
        List.init rr.Spec.copies (fun i ->
            let name = Printf.sprintf "%s/%d" rr.Spec.target (i + 1) in
            let soft =
              match rr.Spec.mode with
              | Spec.Hard -> None
              | Spec.Soft w -> Some w
            in
            make_entity ~name ~demand:None ~target:(Some target) ~soft
              ~with_l:options.paper_literal_l))
      spec.Spec.relocs
  in
  let entities = Array.of_list (regions @ fcs) in
  let ne = Array.length entities in

  let soft_term e = match e.vv with Some v -> [ (1., v) ] | None -> [] in

  (* ---------------- resource demands (regions only) ---------------- *)
  Array.iter
    (fun e ->
      match e.e_demand with
      | None -> ()
      | Some demand ->
        List.iter
          (fun (k, need) ->
            if need > 0 then begin
              let terms = ref [] in
              for p = 1 to np do
                if Resource.equal_kind (kind_of_tid part (tid p)) k then
                  for r = 0 to height - 1 do
                    terms := (1., e.vl.(p).(r)) :: !terms
                  done
              done;
              ge
                ~name:(Printf.sprintf "%s.res.%s" e.e_name (Resource.kind_to_string k))
                !terms (float_of_int need)
            end)
          demand)
    entities;

  let pair_vars = ref [] and q_vars = ref [] and net_vars = ref [] in

  (* ---------------- forbidden areas (Eq. 1 and Eq. 2) ---------------- *)
  List.iter
    (fun (fa : Rect.t) ->
      Array.iteri
        (fun ei e ->
          let q = bin (Printf.sprintf "%s.q[%s]" e.e_name (Rect.to_string fa)) in
          q_vars := ((ei, fa), q) :: !q_vars;
          let xa1 = float_of_int fa.Rect.x in
          let xa2 = float_of_int (Rect.x2 fa) in
          (* Eq. 1: x + w <= xa1 + q * M *)
          le
            ([ (1., e.vx); (1., e.vw); (-.mx, q) ] @ List.map (fun (c, v) -> (-.mx *. c, v)) (soft_term e))
            xa1;
          (* Eq. 2: for rows of the area: x >= xa2 + 1 - (2 - q - a(r) [+ v]) * M *)
          for r = fa.Rect.y to Rect.y2 fa do
            (* x + M q + M a(r) - M v >= xa2 + 1 - 2M *)
            ge
              ([ (1., e.vx); (mx, q); (mx, e.va.(r - 1)) ]
              @ List.map (fun (c, v) -> (-.mx *. c, v)) (soft_term e))
              (xa2 +. 1. -. (2. *. mx))
          done)
        entities)
    part.Partition.forbidden;

  (* ---------------- pairwise non-overlap ---------------- *)
  let relation_of a b =
    let rec find = function
      | [] -> None
      | ((x, y), rel) :: rest ->
        if x = a.e_name && y = b.e_name then Some rel
        else if x = b.e_name && y = a.e_name then
          Some
            (match rel with
            | Left_of -> Right_of
            | Right_of -> Left_of
            | Above -> Below
            | Below -> Above)
        else find rest
    in
    find options.pair_relations
  in
  for i = 0 to ne - 1 do
    for j = i + 1 to ne - 1 do
      let a = entities.(i) and b = entities.(j) in
      let pname rel = Printf.sprintf "no[%s|%s].%s" a.e_name b.e_name rel in
      let soft = soft_term a @ soft_term b in
      let hl = bin (pname "left") in
      let hr = bin (pname "right") in
      let vv = bin (pname "vert") in
      pair_vars := ((i, j), (hl, hr, vv)) :: !pair_vars;
      (* hl = 1 -> a entirely left of b *)
      le [ (1., a.vx); (1., a.vw); (-1., b.vx); (mx, hl) ] mx;
      (* hr = 1 -> a entirely right of b *)
      le [ (1., b.vx); (1., b.vw); (-1., a.vx); (mx, hr) ] mx;
      (* vv = 1 -> row-disjoint *)
      for r = 0 to height - 1 do
        le [ (1., a.va.(r)); (1., b.va.(r)); (1., vv) ] 2.
      done;
      ge
        ([ (1., hl); (1., hr); (1., vv) ] @ soft)
        1.;
      (match relation_of a b with
      | None -> ()
      | Some rel ->
        let fix v x = Lp.set_bounds lp v ~lb:x ~ub:x in
        (match rel with
        | Left_of -> fix hl 1.
        | Right_of -> fix hr 1.
        | Above | Below ->
          fix vv 1.;
          (* orient the vertical split with the seed: a above b means every
             row of a is <= every row of b; encode via start rows *)
          let ymin e =
            List.init height (fun r -> (float_of_int (r + 1), e.vs.(r)))
          in
          let diff =
            match rel with
            | Above ->
              (* ymin_a + h_a <= ymin_b *)
              (ymin a @ [ (1., a.vh) ]) @ List.map (fun (c, v) -> (-.c, v)) (ymin b)
            | Below | Left_of | Right_of ->
              (ymin b @ [ (1., b.vh) ]) @ List.map (fun (c, v) -> (-.c, v)) (ymin a)
          in
          le (diff @ List.map (fun (c, v) -> (-.heightf *. c, v)) soft) 0.))
    done
  done;

  (* ---------------- compatibility of FC areas (Eq. 6/7/9/10) -------- *)
  Array.iter
    (fun c ->
      match c.e_target with
      | None -> ()
      | Some ti ->
        let n = entities.(ti) in
        let soft = soft_term c in
        let mh = heightf in
        (* Eq. 6: h_c = h_n (relaxed by v) *)
        le ([ (1., c.vh); (-1., n.vh) ] @ List.map (fun (w, v) -> (-.mh *. w, v)) soft) 0.;
        ge ([ (1., c.vh); (-1., n.vh) ] @ List.map (fun (w, v) -> (mh *. w, v)) soft) 0.;
        (* Eq. 7: equal number of covered portions *)
        let mk = float_of_int np in
        let ksum e sign = List.init np (fun p -> (sign, e.vk.(p + 1))) in
        le
          (ksum c 1. @ ksum n (-1.)
          @ List.map (fun (w, v) -> (-.mk *. w, v)) soft)
          0.;
        ge
          (ksum c 1. @ ksum n (-1.) @ List.map (fun (w, v) -> (mk *. w, v)) soft)
          0.;
        (* Eq. 9 / Eq. 10 over first-portion pairs (pc, pn) and relative
           index i >= 0 (for i < 0, k(n, pn+i) = 1 contradicts o(n, pn) = 1,
           so those rows are vacuous and omitted). *)
        for pc = 1 to np do
          for pn = 1 to np do
            let imax = min (np - pc) (np - pn) in
            for i = 0 to imax do
              let guard =
                [ (1., c.vo.(pc)); (1., n.vo.(pn)); (1., n.vk.(pn + i)) ]
              in
              if tid (pc + i) <> tid (pn + i) then
                (* Eq. 10 (tightened Eq. 8): type sequences must match *)
                le
                  (guard @ List.map (fun (w, v) -> (-1. *. w, v)) soft)
                  2.
              else begin
                (* Eq. 9: equal covered tiles per relative portion; with
                   tight u and equal heights, equal horizontal overlap *)
                if options.paper_literal_l then begin
                  (* Eq. 9 with the paper's M = maxW * |R| and l-sums *)
                  let m9 = widthf *. heightf in
                  let lsum e p sign =
                    List.init height (fun r -> (sign, e.vl.(p).(r)))
                  in
                  le
                    (lsum c (pc + i) 1. @ lsum n (pn + i) (-1.)
                    @ List.map (fun (_, v) -> (m9, v)) guard
                    @ List.map (fun (w, v) -> (-.m9 *. w, v)) soft)
                    (3. *. m9);
                  ge
                    (lsum c (pc + i) 1. @ lsum n (pn + i) (-1.)
                    @ List.map (fun (_, v) -> (-.m9, v)) guard
                    @ List.map (fun (w, v) -> (m9 *. w, v)) soft)
                    (-3. *. m9)
                end
                else begin
                  let m9 = widthf in
                  (* u_c - u_n <= M(3 - guard + v) ->
                     u_c - u_n + M*guard - M*v <= 3M *)
                  le
                    ([ (1., c.vu.(pc + i)); (-1., n.vu.(pn + i)) ]
                    @ List.map (fun (_, v) -> (m9, v)) guard
                    @ List.map (fun (w, v) -> (-.m9 *. w, v)) soft)
                    (3. *. m9);
                  ge
                    ([ (1., c.vu.(pc + i)); (-1., n.vu.(pn + i)) ]
                    @ List.map (fun (_, v) -> (-.m9, v)) guard
                    @ List.map (fun (w, v) -> (m9 *. w, v)) soft)
                    (-3. *. m9)
                end
              end
            done
          done
        done)
    entities;

  (* ---------------- structure cuts (Milp.Cuts) ---------------- *)
  (* Symmetry cuts order the interchangeable free-compatible copies of
     one relocation request; skipped under HO pair relations, which
     already pin specific named copies and would conflict with a forced
     order.  Packing/capacity cuts are valid for every integer point and
     are screened by activity range inside Milp.Cuts. *)
  let nr = List.length spec.Spec.regions in
  let sym_groups =
    if (not options.cuts) || options.pair_relations <> [] then []
    else begin
      let off = ref nr in
      List.filter_map
        (fun (rr : Spec.reloc_req) ->
          let ids = List.init rr.Spec.copies (fun i -> !off + i) in
          off := !off + rr.Spec.copies;
          if rr.Spec.copies >= 2 then Some ids else None)
        spec.Spec.relocs
    end
  in
  let cuts_applied =
    if not options.cuts then 0
    else begin
      let sym =
        Milp.Cuts.add_symmetry_cuts lp ~width ~height
          (List.map
             (fun ids ->
               List.map
                 (fun ei ->
                   let e = entities.(ei) in
                   {
                     Milp.Cuts.sm_x = e.vx;
                     sm_ymin =
                       List.init height (fun r ->
                           (float_of_int (r + 1), e.vs.(r)));
                     sm_drop = e.vv;
                   })
                 ids)
             sym_groups)
      in
      (* per-(portion, row) packing over region slices *)
      let rows = ref [] in
      for p = 1 to np do
        for r = 0 to height - 1 do
          let terms =
            Array.to_list entities
            |> List.filter_map (fun e ->
                   if e.e_demand <> None then Some (1., e.vl.(p).(r)) else None)
          in
          rows :=
            {
              Milp.Cuts.pr_name = Printf.sprintf "cut.pack[%d,%d]" p (r + 1);
              pr_terms = terms;
              pr_rhs = pwidth p;
            }
            :: !rows
        done
      done;
      (* per-kind usable-tile capacity *)
      let cap = ref [] in
      for col = 1 to width do
        let k = (Partition.column_type part col).Resource.kind in
        for row = 1 to height do
          if not (Grid.in_forbidden part.Partition.grid col row) then begin
            match
              List.find_opt (fun (k', _) -> Resource.equal_kind k k') !cap
            with
            | Some (_, c) -> incr c
            | None -> cap := (k, ref 1) :: !cap
          end
        done
      done;
      List.iter
        (fun (k, c) ->
          let terms =
            Array.to_list entities
            |> List.concat_map (fun e ->
                   if e.e_demand = None then []
                   else begin
                     let ts = ref [] in
                     for p = 1 to np do
                       if Resource.equal_kind (kind_of_tid part (tid p)) k then
                         for r = 0 to height - 1 do
                           ts := (1., e.vl.(p).(r)) :: !ts
                         done
                     done;
                     !ts
                   end)
          in
          rows :=
            {
              Milp.Cuts.pr_name =
                Printf.sprintf "cut.cap[%s]" (Resource.kind_to_string k);
              pr_terms = terms;
              pr_rhs = float_of_int !c;
            }
            :: !rows)
        !cap;
      sym + Milp.Cuts.add_packing_cuts lp !rows
    end
  in

  (* ---------------- objective pieces ---------------- *)
  let waste_terms = ref [] and waste_constant = ref 0. in
  Array.iter
    (fun e ->
      match e.e_demand with
      | None -> ()
      | Some demand ->
        for p = 1 to np do
          let fr = float_of_int (frames (kind_of_tid part (tid p))) in
          for r = 0 to height - 1 do
            waste_terms := (fr, e.vl.(p).(r)) :: !waste_terms
          done
        done;
        waste_constant :=
          !waste_constant -. float_of_int (Resource.demand_frames ~frames demand))
    entities;
  let wl_terms = ref [] in
  List.iter
    (fun (net : Spec.net) ->
      let ea = entities.(Hashtbl.find region_index net.Spec.src) in
      let eb = entities.(Hashtbl.find region_index net.Spec.dst) in
      let dx = real (Printf.sprintf "net[%s|%s].dx" ea.e_name eb.e_name) in
      let dy = real (Printf.sprintf "net[%s|%s].dy" ea.e_name eb.e_name) in
      ge [ (1., dx); (-1., ea.v_cx); (1., eb.v_cx) ] 0.;
      ge [ (1., dx); (1., ea.v_cx); (-1., eb.v_cx) ] 0.;
      ge [ (1., dy); (-1., ea.v_cy); (1., eb.v_cy) ] 0.;
      ge [ (1., dy); (1., ea.v_cy); (-1., eb.v_cy) ] 0.;
      net_vars := (net, (dx, dy)) :: !net_vars;
      wl_terms := (net.Spec.weight, dx) :: (net.Spec.weight, dy) :: !wl_terms)
    spec.Spec.nets;
  let viol_terms =
    Array.to_list entities
    |> List.filter_map (fun e ->
           match (e.e_soft, e.vv) with
           | Some w, Some v -> Some (w, (1., v))
           | _ -> None)
  in
  let perim_terms =
    Array.to_list entities
    |> List.concat_map (fun e ->
           if e.e_demand = None then []
           else [ (2., e.vw); (2., e.vh) ])
  in
  (match options.extra_waste_cap with
  | None -> ()
  | Some cap -> le ~name:"waste_cap" !waste_terms (cap -. !waste_constant));
  (match options.objective with
  | Feasibility -> Lp.set_objective lp Lp.Minimize []
  | Wasted_frames_only ->
    Lp.set_objective lp Lp.Minimize ~constant:!waste_constant !waste_terms
  | Wirelength_only -> Lp.set_objective lp Lp.Minimize !wl_terms
  | Weighted w ->
    let scale f terms = List.map (fun (c, v) -> (f *. c, v)) terms in
    let wlmax = max 1. (Objective.wl_max part spec) in
    let pmax = max 1. (Objective.perimeter_max part spec) in
    let rmax = max 1. (Objective.resources_max part) in
    let rlmax = max 1. (Objective.relocation_max spec) in
    let terms =
      scale (w.Objective.q_wirelength /. wlmax) !wl_terms
      @ scale (w.Objective.q_perimeter /. pmax) perim_terms
      @ scale (w.Objective.q_resources /. rmax) !waste_terms
      @ List.map
          (fun (cw, (c, v)) ->
            (w.Objective.q_relocation /. rlmax *. cw *. c, v))
          viol_terms
    in
    Lp.set_objective lp Lp.Minimize
      ~constant:(w.Objective.q_resources /. rmax *. !waste_constant)
      terms);

  (* branching priorities: violations first, then pairwise and edge
     binaries (they decide the combinatorial structure), then rows *)
  let priorities = Array.make (Lp.num_vars lp) 0. in
  Array.iter
    (fun e ->
      (match e.vv with Some v -> priorities.(v) <- 100. | None -> ());
      Array.iter (fun v -> if v >= 0 then priorities.(v) <- 10.) e.v_edge_a;
      Array.iter (fun v -> if v >= 0 then priorities.(v) <- 10.) e.v_edge_b;
      Array.iter (fun v -> priorities.(v) <- 5.) e.va;
      priorities.(e.vx) <- 8.;
      priorities.(e.vw) <- 8.)
    entities;
  {
    lp;
    part;
    spec;
    options;
    entities;
    priorities;
    waste_terms = !waste_terms;
    waste_constant = !waste_constant;
    wl_terms = !wl_terms;
    viol_terms;
    pair_vars = !pair_vars;
    q_vars = !q_vars;
    net_vars = !net_vars;
    cuts_applied;
    sym_ordered = sym_groups <> [];
  }

(* ---------------- decoding ---------------- *)

let entity_rect e (x : float array) =
  let xi = int_of_float (Float.round x.(e.vx)) in
  let rows =
    List.filter (fun r -> x.(e.va.(r - 1)) > 0.5)
      (List.init (Array.length e.va) (fun i -> i + 1))
  in
  match rows with
  | [] -> None
  | y :: _ ->
    let h = List.length rows in
    let w = int_of_float (Float.round x.(e.vw)) in
    Some (Rect.make ~x:xi ~y ~w ~h)

let decode t x =
  let placements = ref [] and fcs = ref [] in
  let counters = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      let dropped =
        match e.vv with Some v -> x.(v) > 0.5 | None -> false
      in
      match (entity_rect e x, e.e_target) with
      | None, _ -> ()
      | Some rect, None ->
        placements := { Floorplan.p_region = e.e_name; p_rect = rect } :: !placements
      | Some rect, Some ti ->
        if not dropped then begin
          let target = t.entities.(ti).e_name in
          let idx = try Hashtbl.find counters target + 1 with Not_found -> 1 in
          Hashtbl.replace counters target idx;
          fcs :=
            { Floorplan.fc_region = target; fc_index = idx; fc_rect = rect }
            :: !fcs
        end)
    t.entities;
  Floorplan.make (List.rev !placements) (List.rev !fcs)

let fc_identified t x =
  Array.to_list t.entities
  |> List.filter (fun e ->
         e.e_target <> None
         && (match e.vv with Some v -> x.(v) <= 0.5 | None -> true))
  |> List.length


(* ---------------- encoding a floorplan as an assignment -------------- *)

(* Rectangle of an entity in a plan: regions by name; free-compatible
   areas "target/i" by the i-th area of the target region.  Soft areas
   may be absent. *)
let plan_rect t plan e =
  match e.e_target with
  | None -> Floorplan.rect_of plan e.e_name
  | Some ti ->
    let target = t.entities.(ti).e_name in
    let idx =
      match String.rindex_opt e.e_name '/' with
      | Some i ->
        int_of_string (String.sub e.e_name (i + 1) (String.length e.e_name - i - 1))
      | None -> invalid_arg "Model.plan_rect: bad FC entity name"
    in
    let rects =
      List.filter (fun f -> f.Floorplan.fc_region = target) plan.Floorplan.fc_areas
      |> List.map (fun f -> f.Floorplan.fc_rect)
    in
    (* with symmetry cuts in the LP only the (x, ymin)-sorted copy order
       is feasible, so canonicalize; copies are interchangeable, the
       encoded point decodes to an equivalent plan *)
    let rects =
      if t.sym_ordered then
        List.sort
          (fun (a : Rect.t) (b : Rect.t) ->
            compare (a.Rect.x, a.Rect.y) (b.Rect.x, b.Rect.y))
          rects
      else rects
    in
    List.nth_opt rects (idx - 1)

let encode t plan =
  let x = Array.make (Lp.num_vars t.lp) 0. in
  let part = t.part in
  let np = Array.length part.Partition.portions in
  let height = Partition.height part in
  let p1 p = part.Partition.portions.(p - 1).Partition.x1 in
  let p2 p = part.Partition.portions.(p - 1).Partition.x2 in
  let rects =
    Array.map
      (fun e ->
        match (plan_rect t plan e, e.e_soft) with
        | Some r, _ -> Some r
        | None, Some _ -> None
        | None, None ->
          invalid_arg
            (Printf.sprintf "Model.encode: entity %s missing from the plan"
               e.e_name))
      t.entities
  in
  Array.iteri
    (fun ei e ->
      let dropped = rects.(ei) = None in
      let r =
        match rects.(ei) with
        | Some r -> r
        | None -> Rect.make ~x:1 ~y:1 ~w:1 ~h:1
      in
      let rx = r.Rect.x and rw = r.Rect.w and ry = r.Rect.y and rh = r.Rect.h in
      let rx2 = Rect.x2 r in
      x.(e.vx) <- float_of_int rx;
      x.(e.vw) <- float_of_int rw;
      for row = 1 to height do
        let covered = ry <= row && row <= Rect.y2 r in
        x.(e.va.(row - 1)) <- (if covered then 1. else 0.);
        x.(e.vs.(row - 1)) <- (if row = ry then 1. else 0.)
      done;
      x.(e.vh) <- float_of_int rh;
      for p = 1 to np + 1 do
        let pstart = if p <= np then p1 p else Partition.width part + 1 in
        if e.v_edge_a.(p) >= 0 then
          x.(e.v_edge_a.(p)) <- (if rx >= pstart then 1. else 0.);
        if e.v_edge_b.(p) >= 0 then
          x.(e.v_edge_b.(p)) <- (if rx2 >= pstart then 1. else 0.)
      done;
      let first = ref 0 in
      for p = 1 to np do
        let covered = rx <= p2 p && rx2 >= p1 p in
        x.(e.vk.(p)) <- (if covered then 1. else 0.);
        if covered && !first = 0 then first := p;
        let ov = min rx2 (p2 p) - max rx (p1 p) + 1 in
        let ov = max 0 ov in
        x.(e.vu.(p)) <- float_of_int ov;
        if Array.length e.vl > 0 then
          for row = 1 to height do
            let rc = ry <= row && row <= Rect.y2 r in
            x.(e.vl.(p).(row - 1)) <- (if rc then float_of_int ov else 0.)
          done
      done;
      if !first > 0 then x.(e.vo.(!first)) <- 1.;
      x.(e.v_cx) <- float_of_int rx +. ((float_of_int rw -. 1.) /. 2.);
      x.(e.v_cy) <- float_of_int ry +. ((float_of_int rh -. 1.) /. 2.);
      match e.vv with
      | Some v -> x.(v) <- (if dropped then 1. else 0.)
      | None -> ())
    t.entities;
  List.iter
    (fun ((ei, fa), q) ->
      match rects.(ei) with
      | None -> x.(q) <- 1.
      | Some r -> x.(q) <- (if Rect.x2 r < fa.Rect.x then 0. else 1.))
    t.q_vars;
  List.iter
    (fun ((i, j), (hl, hr, vv)) ->
      match (rects.(i), rects.(j)) with
      | Some a, Some b ->
        let rows_disjoint = Rect.y2 a < b.Rect.y || Rect.y2 b < a.Rect.y in
        x.(hl) <- (if Rect.x2 a < b.Rect.x then 1. else 0.);
        x.(hr) <- (if Rect.x2 b < a.Rect.x then 1. else 0.);
        x.(vv) <- (if rows_disjoint then 1. else 0.)
      | _ -> ())
    t.pair_vars;
  List.iter
    (fun ((net : Spec.net), (dx, dy)) ->
      let find name =
        let rec go i =
          if i >= Array.length t.entities then None
          else if t.entities.(i).e_name = name then rects.(i)
          else go (i + 1)
        in
        go 0
      in
      match (find net.Spec.src, find net.Spec.dst) with
      | Some a, Some b ->
        let ax, ay = Rect.center a and bx, by = Rect.center b in
        x.(dx) <- abs_float (ax -. bx);
        x.(dy) <- abs_float (ay -. by)
      | _ -> ())
    t.net_vars;
  x


let portion_indicators t name x =
  match Array.find_opt (fun e -> e.e_name = name) t.entities with
  | None -> invalid_arg ("Model.portion_indicators: unknown entity " ^ name)
  | Some e ->
    Array.init
      (Array.length e.vk - 1)
      (fun i -> (x.(e.vk.(i + 1)), x.(e.vo.(i + 1))))
