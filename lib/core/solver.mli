(** End-to-end floorplanning behind a first-class strategy API: build
    the MILP model (with symmetry/packing cuts), presolve, run
    branch-and-bound (optionally warm-started from the combinatorial
    engine) — or run the combinatorial engine itself, a
    disrupt-and-repair LNS, or a racing portfolio of any of them —
    then decode and validate the floorplan.

    Implements both algorithms of [10] as extended by the paper:
    O explores the full space; HO additionally fixes the pairwise
    relative positions extracted from a heuristic seed solution
    (including the free-compatible areas, Section II.A). *)

type engine =
  | O
  | Ho of Device.Floorplan.t option
      (** [Ho None] obtains a seed from {!Search.Engine} first. *)

(** How a solve is executed.  A strategy is orthogonal to the
    {!objective_mode}: it picks the machinery (exact MILP, exact
    combinatorial, heuristic LNS, or a racing portfolio of those), not
    the objective. *)
module Strategy : sig
  type t =
    | Milp of {
        workers : int;  (** [> 1] = {!Milp.Parallel_bb} domains *)
        engine : engine;
        warm_start : bool;
            (** Seed the MILP incumbent from a quick {!Search.Engine}
                run first. *)
        time_limit : float option;
            (** Per-member budget (seconds); inside a portfolio it is
                clamped to the portfolio's global budget (RF501). *)
      }
    | Combinatorial of { time_limit : float option }
        (** The exact combinatorial engine ({!Search.Engine}).  Proves
            lexicographic optimality/infeasibility; under a [Weighted]
            objective its result is reported as at best [Feasible]. *)
    | Lns of { seed : int; time_limit : float option }
        (** Disrupt-and-repair large-neighbourhood search
            ({!Search.Lns}); heuristic, never conclusive, useful as a
            fast incumbent source inside a portfolio. *)
    | Portfolio of t list
        (** Race the members on one OCaml domain each.  The first
            conclusive member (proved optimal or infeasible) cancels
            the rest; heuristic incumbents are published to a shared
            board and bound the exact members' stage-1 search.  The
            portfolio's deadline is {e global}
            ([options.time_limit]), not per member. *)

  val milp :
    ?workers:int ->
    ?engine:engine ->
    ?warm_start:bool ->
    ?time_limit:float ->
    unit ->
    t
  (** Defaults: 1 worker, engine [O], warm start on, no member budget.
      Non-finite or non-positive [time_limit] means none. *)

  val combinatorial : ?time_limit:float -> unit -> t
  val lns : ?seed:int -> ?time_limit:float -> unit -> t

  val portfolio : t list -> t
  (** Flattens nested portfolios into one member list.
      @raise Invalid_argument on an empty list. *)

  val to_string : t -> string
  (** Canonical text form: [milp], [milp:4], [milp-ho], [combinatorial],
      [lns:7], [portfolio:[milp:2,combinatorial]]; member budgets render
      as an [@SECONDS] suffix.  Lossy for [Ho (Some plan)] (the seed
      plan renders as plain [milp-ho]) and for [warm_start]. *)

  val of_string : string -> (t, Rfloor_diag.Diagnostic.t) result
  (** Inverse of {!to_string} for the grammar
      [milp[:W] | milp-ho[:W] | combinatorial | lns[:SEED] |
       portfolio:[s1,s2,...]], each member optionally suffixed
      [@SECONDS].  Nested portfolios are not part of the grammar.
      Errors carry code [RF502]. *)
end

type objective_mode =
  | Lexicographic
      (** Section VI's objective: minimize wasted frames, then minimize
          wire length without increasing the frame cost. *)
  | Weighted of Objective.weights  (** Eq. 14 *)
  | Feasibility_only

type options = {
  strategy : Strategy.t;
      (** Execution strategy (default [Strategy.milp ()]).  Replaces
          the former [engine]/[warm_start]/[workers] fields; those
          survive as deprecated keyword arguments of {!Options.make}. *)
  objective_mode : objective_mode;
  time_limit : float option;
      (** Global budget.  For a [Portfolio] strategy this is the
          race's wall-clock deadline, shared by all members; a member's
          own [time_limit] can only shrink its share (RF501 warns and
          clamps a larger request). *)
  node_limit : int option;
  paper_literal_l : bool;
  warm_lp : bool;
      (** Warm-start each branch-and-bound child's LP from its parent's
          optimal basis via the dual simplex (default [true]).  Purely a
          speed knob: any doubtful warm solve falls back to a cold
          solve, so results never depend on it.  Distinct from the
          strategy's [warm_start], which seeds the MILP incumbent from
          the combinatorial engine. *)
  preflight : bool;
      (** Run the {!Rfloor_analysis} spec and model lints before
          solving and audit the decoded plan after (default [true]).
          Error-severity findings short-circuit to [Infeasible] with
          the diagnostics attached to the outcome.  The model lint runs
          once on the root model regardless of worker count. *)
  cuts : bool;
      (** Add the {!Milp.Cuts} families (relocation-symmetry chains,
          portion-packing/capacity rows) at model build time (default
          [true]).  Purely a search-speed knob: cuts never change the
          optimum.  The count of added rows lands in the
          [rfloor_cuts_applied_total] counter and a [Cut_added] trace
          event. *)
  trace : Rfloor_trace.sink;
      (** Where structured solver events go (default
          {!Rfloor_trace.Sink.null}: no events, but [outcome.report] is
          still populated).  Portfolio members run on private null-sink
          tracers; the caller's sink sees the race-level events (one
          [Stopped "cancel"] per cancelled losing member, the winner
          announcement). *)
  metrics : Rfloor_metrics.Registry.t;
      (** Aggregate profiling (default {!Rfloor_metrics.Registry.null}:
          one load-and-branch per hot-path site).  A live registry
          receives direct simplex/presolve instrumentation plus a
          {!Rfloor_metrics.Trace_sink} fold of the whole event stream;
          portfolio races additionally bump
          [rfloor_portfolio_wins_total{strategy=...}]. *)
  cancel : unit -> bool;
      (** Cooperative cancellation token, polled at every search loop
          head (all strategies).  When it returns [true] the solve
          stops cleanly with [outcome.stop = Some Cancelled] and the
          best incumbent found so far.  Default
          {!Milp.Branch_bound.never_cancel}. *)
}

module Options : sig
  type t = options

  val make :
    ?strategy:Strategy.t ->
    ?engine:engine ->
    ?objective_mode:objective_mode ->
    ?time_limit:float ->
    ?node_limit:int ->
    ?paper_literal_l:bool ->
    ?warm_start:bool ->
    ?warm_lp:bool ->
    ?preflight:bool ->
    ?cuts:bool ->
    ?workers:int ->
    ?trace:Rfloor_trace.sink ->
    ?metrics:Rfloor_metrics.Registry.t ->
    ?cancel:(unit -> bool) ->
    unit ->
    t
  (** The single construction point for solver options — the CLI, the
      service, the bench and the examples all build through it, so the
      defaults ([Strategy.milp ()], [Lexicographic], [time_limit] 60
      seconds, no node limit, cuts/preflight on, null trace sink,
      never-firing [cancel]) are defined exactly once.  "No time limit"
      is spelled explicitly: [~time_limit:infinity] (any non-finite
      value maps to [None] in the record).

      [?engine], [?warm_start] and [?workers] are the deprecated
      pre-strategy spelling: they are consulted only when [?strategy]
      is absent, building [Strategy.milp ~workers ~engine ~warm_start ()].
      When [?strategy] is given they are ignored. *)
end

val default_options : options
(** [Options.make ()]. *)

type status = Optimal | Feasible | Infeasible | Unknown

type stop_reason = Milp.Branch_bound.stop_reason =
  | Budget  (** time / node / simplex-iteration limit *)
  | Cancelled  (** the cooperative [cancel] token fired *)

type outcome = {
  plan : Device.Floorplan.t option;
  wasted : int option;
  wirelength : float option;
  fc_identified : int;
  status : status;
  objective_value : float option;
  nodes : int;
      (** For a portfolio: summed over all members (branch-and-bound
          nodes and heuristic iterations alike). *)
  simplex_iterations : int;
  elapsed : float;
  stop : stop_reason option;
      (** Why the (final-stage) search ended early; [None] when it ran
          to completion.  With [stop = Some _] the [status] is at best
          [Feasible] and [plan] holds the incumbent at the stop. *)
  diagnostics : Rfloor_diag.Diagnostic.t list;
      (** Preflight lint findings plus the post-solve solution audit;
          on a preflight [Infeasible] these explain the verdict.  A
          portfolio deduplicates its members' findings and may add
          RF501 budget-clamp warnings. *)
  report : Rfloor_trace.Report.t;
      (** Per-phase wall time, per-worker node totals, incumbent/steal
          counters.  Its [nodes], [simplex_iterations] and [elapsed]
          always equal the fields above, tracing enabled or not. *)
}

val solve :
  ?options:options -> Device.Partition.t -> Device.Spec.t -> outcome

val feasible :
  ?options:options -> Device.Partition.t -> Device.Spec.t -> outcome
(** [solve] with [objective_mode] forced to [Feasibility_only]: the
    paper's feasibility question — is there {e any} valid floorplan? —
    under whatever strategy the options select.  [status = Optimal]
    with a plan means "feasible, here is a witness"; [Infeasible] is a
    proof that no valid floorplan exists.  This is the single entry
    point behind [rfloor_cli feasibility]; it shares {!type:outcome}
    (and hence the CLI printer) with [solve]. *)

val export_lp :
  ?options:options -> Device.Partition.t -> Device.Spec.t -> string
(** CPLEX-LP text of the (first-stage) model, for external solvers.
    Honours [options.cuts]; a non-MILP strategy exports the plain O
    model. *)

val pp_outcome : Format.formatter -> outcome -> unit
