(** End-to-end MILP floorplanning: build the model, presolve, run
    branch-and-bound (optionally warm-started from the combinatorial
    engine), decode and validate the floorplan.

    Implements both algorithms of [10] as extended by the paper:
    O explores the full space; HO additionally fixes the pairwise
    relative positions extracted from a heuristic seed solution
    (including the free-compatible areas, Section II.A). *)

type engine =
  | O
  | Ho of Device.Floorplan.t option
      (** [Ho None] obtains a seed from {!Search.Engine} first. *)

type objective_mode =
  | Lexicographic
      (** Section VI's objective: minimize wasted frames, then minimize
          wire length without increasing the frame cost. *)
  | Weighted of Objective.weights  (** Eq. 14 *)
  | Feasibility_only

type options = {
  engine : engine;
  objective_mode : objective_mode;
  time_limit : float option;
  node_limit : int option;
  paper_literal_l : bool;
  warm_start : bool;
  warm_lp : bool;
      (** Warm-start each branch-and-bound child's LP from its parent's
          optimal basis via the dual simplex (default [true]).  Purely a
          speed knob: any doubtful warm solve falls back to a cold
          solve, so results never depend on it.  Distinct from
          [warm_start], which seeds the MILP incumbent from the
          combinatorial engine. *)
  preflight : bool;
      (** Run the {!Rfloor_analysis} spec and model lints before
          solving and audit the decoded plan after (default [true]).
          Error-severity findings short-circuit to [Infeasible] with
          the diagnostics attached to the outcome.  The model lint runs
          once on the root model regardless of [workers]. *)
  workers : int;
      (** Branch-and-bound worker domains (default [1] = the sequential
          {!Milp.Branch_bound}; [> 1] = {!Milp.Parallel_bb}).  Both
          report aggregated [nodes]/[simplex_iterations] and wall-clock
          [elapsed]. *)
  trace : Rfloor_trace.sink;
      (** Where structured solver events go (default
          {!Rfloor_trace.Sink.null}: no events, but [outcome.report] is
          still populated).  Use {!Rfloor_trace.Sink.of_log_fn} to
          migrate an old [log : string -> unit] callback. *)
  metrics : Rfloor_metrics.Registry.t;
      (** Aggregate profiling (default {!Rfloor_metrics.Registry.null}:
          one load-and-branch per hot-path site).  A live registry
          receives direct simplex/presolve instrumentation plus a
          {!Rfloor_metrics.Trace_sink} fold of the whole event stream
          (per-phase wall time, node throughput, steal latency, the
          incumbent-improvement curve); snapshot it after the solve with
          {!Rfloor_metrics.Registry.snapshot}. *)
  cancel : unit -> bool;
      (** Cooperative cancellation token, polled at every
          branch-and-bound loop head (sequential and parallel).  When it
          returns [true] the solve stops cleanly with
          [outcome.stop = Some Cancelled] and the best incumbent found
          so far.  Default {!Milp.Branch_bound.never_cancel}. *)
}

module Options : sig
  type t = options

  val make :
    ?engine:engine ->
    ?objective_mode:objective_mode ->
    ?time_limit:float ->
    ?node_limit:int ->
    ?paper_literal_l:bool ->
    ?warm_start:bool ->
    ?warm_lp:bool ->
    ?preflight:bool ->
    ?workers:int ->
    ?trace:Rfloor_trace.sink ->
    ?metrics:Rfloor_metrics.Registry.t ->
    ?cancel:(unit -> bool) ->
    unit ->
    t
  (** The single construction point for solver options — the CLI, the
      bench and the examples all build through it, so the defaults
      ([engine O], [Lexicographic], [time_limit] 60 seconds, no node
      limit, warm start and preflight on, one worker, null trace sink,
      never-firing [cancel]) are defined exactly once.  "No time limit"
      is spelled explicitly: [~time_limit:infinity] (any non-finite
      value maps to [None] in the record). *)
end

val default_options : options
(** [Options.make ()]. *)

type status = Optimal | Feasible | Infeasible | Unknown

type stop_reason = Milp.Branch_bound.stop_reason =
  | Budget  (** time / node / simplex-iteration limit *)
  | Cancelled  (** the cooperative [cancel] token fired *)

type outcome = {
  plan : Device.Floorplan.t option;
  wasted : int option;
  wirelength : float option;
  fc_identified : int;
  status : status;
  objective_value : float option;
  nodes : int;
  simplex_iterations : int;
  elapsed : float;
  stop : stop_reason option;
      (** Why the (final-stage) search ended early; [None] when it ran
          to completion.  With [stop = Some _] the [status] is at best
          [Feasible] and [plan] holds the incumbent at the stop. *)
  diagnostics : Rfloor_diag.Diagnostic.t list;
      (** Preflight lint findings plus the post-solve solution audit;
          on a preflight [Infeasible] these explain the verdict. *)
  report : Rfloor_trace.Report.t;
      (** Per-phase wall time, per-worker node totals, incumbent/steal
          counters.  Its [nodes], [simplex_iterations] and [elapsed]
          always equal the fields above, tracing enabled or not. *)
}

val solve :
  ?options:options -> Device.Partition.t -> Device.Spec.t -> outcome

val export_lp :
  ?options:options -> Device.Partition.t -> Device.Spec.t -> string
(** CPLEX-LP text of the (first-stage) model, for external solvers. *)

val pp_outcome : Format.formatter -> outcome -> unit
