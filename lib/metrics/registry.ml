(* Concurrency-safe metrics registry.  See registry.mli for the cost
   model: null handles are Noop constructors (one load-and-branch per
   update), live handles update atomics lock-free, and only
   registration/snapshot take the mutex.  All synchronization goes
   through the instrumented Rfloor_sync layer. *)

module Sync = Rfloor_sync

(* Float accumulation without a lock: CAS on the bit pattern. *)
let add_float_bits a x =
  let rec go () =
    let cur = Sync.Atomic.get a in
    let next = Int64.bits_of_float (Int64.float_of_bits cur +. x) in
    if not (Sync.Atomic.compare_and_set a cur next) then go ()
  in
  go ()

module Counter = struct
  type t = Noop | C of int Sync.Atomic.t

  let incr = function Noop -> () | C a -> Sync.Atomic.incr a

  let add t n =
    match t with
    | Noop -> ()
    | C a -> if n > 0 then ignore (Sync.Atomic.fetch_and_add a n)

  let value = function Noop -> 0 | C a -> Sync.Atomic.get a
end

module Gauge = struct
  type t = Noop | G of int64 Sync.Atomic.t

  let set t v =
    match t with Noop -> () | G a -> Sync.Atomic.set a (Int64.bits_of_float v)

  let value = function
    | Noop -> 0.
    | G a -> Int64.float_of_bits (Sync.Atomic.get a)
end

module Histogram = struct
  type t =
    | Noop
    | H of {
        bounds : float array; (* finite, strictly increasing *)
        buckets : int Sync.Atomic.t array; (* length bounds + 1; last = +Inf *)
        total : int Sync.Atomic.t;
        sum_bits : int64 Sync.Atomic.t;
      }

  let bucket_index bounds v =
    (* first bound >= v; linear scan — bucket arrays are short (< 16) *)
    let n = Array.length bounds in
    let i = ref 0 in
    while !i < n && v > bounds.(!i) do
      incr i
    done;
    !i

  let observe t v =
    match t with
    | Noop -> ()
    | H h ->
      Sync.Atomic.incr h.buckets.(bucket_index h.bounds v);
      Sync.Atomic.incr h.total;
      add_float_bits h.sum_bits v

  let count = function Noop -> 0 | H h -> Sync.Atomic.get h.total
  let sum = function Noop -> 0. | H h -> Int64.float_of_bits (Sync.Atomic.get h.sum_bits)
end

let seconds_buckets =
  [| 1e-4; 3e-4; 1e-3; 3e-3; 0.01; 0.03; 0.1; 0.3; 1.; 3.; 10.; 60. |]

let count_buckets = [| 10.; 30.; 100.; 300.; 1000.; 3000.; 10_000.; 100_000. |]

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t

type series = {
  s_name : string;
  s_labels : (string * string) list; (* sorted by key *)
  s_help : string;
  s_instrument : instrument;
}

type live = { m : Sync.Mutex.t; series : series list Sync.Shared.t (* newest first *) }
type t = Null | Live of live

let null = Null
let create () = Live
    { m = Sync.Mutex.create ~name:"metrics.registry" ();
      series = Sync.Shared.make ~name:"metrics.registry.series" [] }
let live = function Null -> false | Live _ -> true

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* Find-or-create under the registry mutex.  [same] checks that a
   pre-existing instrument is compatible with the request. *)
let register reg name labels help same fresh wrap =
  match reg with
  | Null -> None
  | Live r ->
    if name = "" then invalid_arg "Registry: empty metric name";
    let labels = norm_labels labels in
    Sync.Mutex.lock r.m;
    Fun.protect ~finally:(fun () -> Sync.Mutex.unlock r.m) @@ fun () ->
    (match
       List.find_opt
         (fun s -> s.s_name = name && s.s_labels = labels)
         (Sync.Shared.get r.series)
     with
    | Some s -> (
      match same s.s_instrument with
      | Some v -> Some v
      | None ->
        invalid_arg
          (Printf.sprintf
             "Registry: %s already registered as a %s with different kind or \
              buckets"
             name (kind_name s.s_instrument)))
    | None ->
      (* Prometheus semantics: one kind (and, for histograms, one
         bucket layout) per metric name across all label sets *)
      (match
         List.find_opt (fun s -> s.s_name = name) (Sync.Shared.get r.series)
       with
      | Some s when same s.s_instrument = None ->
        invalid_arg
          (Printf.sprintf
             "Registry: %s already registered as a %s with different kind or \
              buckets"
             name (kind_name s.s_instrument))
      | _ -> ());
      let v = fresh () in
      Sync.Shared.set r.series
        ({ s_name = name; s_labels = labels; s_help = help;
           s_instrument = wrap v }
        :: Sync.Shared.get r.series);
      Some v)

let counter reg ?(help = "") ?(labels = []) name =
  match
    register reg name labels help
      (function I_counter c -> Some c | _ -> None)
      (fun () -> Counter.C (Sync.Atomic.make 0))
      (fun c -> I_counter c)
  with
  | Some c -> c
  | None -> Counter.Noop

let gauge reg ?(help = "") ?(labels = []) name =
  match
    register reg name labels help
      (function I_gauge g -> Some g | _ -> None)
      (fun () -> Gauge.G (Sync.Atomic.make (Int64.bits_of_float 0.)))
      (fun g -> I_gauge g)
  with
  | Some g -> g
  | None -> Gauge.Noop

let check_bounds bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Registry.histogram: empty bucket list";
  for i = 0 to n - 1 do
    if not (Float.is_finite bounds.(i)) then
      invalid_arg "Registry.histogram: non-finite bucket bound";
    if i > 0 && bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Registry.histogram: bucket bounds must strictly increase"
  done

let histogram reg ?(help = "") ?(labels = []) ?(buckets = seconds_buckets) name =
  match
    register reg name labels help
      (function
        | I_histogram (Histogram.H { bounds; _ } as hist) when bounds = buckets ->
          Some hist
        | I_histogram _ -> None
        | _ -> None)
      (fun () ->
        check_bounds buckets;
        Histogram.H
          {
            bounds = Array.copy buckets;
            buckets = Array.init (Array.length buckets + 1) (fun _ -> Sync.Atomic.make 0);
            total = Sync.Atomic.make 0;
            sum_bits = Sync.Atomic.make (Int64.bits_of_float 0.);
          })
      (fun h -> I_histogram h)
  with
  | Some h -> h
  | None -> Histogram.Noop

(* ------------------------------------------------------------------ *)
(* Snapshots *)

module Snapshot = struct
  type metric =
    | Counter of { name : string; help : string; labels : (string * string) list; value : int }
    | Gauge of { name : string; help : string; labels : (string * string) list; value : float }
    | Histogram of {
        name : string;
        help : string;
        labels : (string * string) list;
        buckets : (float * int) array;
        sum : float;
        count : int;
      }

  type t = metric list

  let name = function
    | Counter c -> c.name
    | Gauge g -> g.name
    | Histogram h -> h.name

  let labels = function
    | Counter c -> c.labels
    | Gauge g -> g.labels
    | Histogram h -> h.labels
end

let snapshot reg =
  match reg with
  | Null -> []
  | Live r ->
    let series =
      Sync.Mutex.lock r.m;
      let s = Sync.Shared.get r.series in
      Sync.Mutex.unlock r.m;
      s
    in
    let one s =
      match s.s_instrument with
      | I_counter c ->
        Snapshot.Counter
          { name = s.s_name; help = s.s_help; labels = s.s_labels;
            value = Counter.value c }
      | I_gauge g ->
        Snapshot.Gauge
          { name = s.s_name; help = s.s_help; labels = s.s_labels;
            value = Gauge.value g }
      | I_histogram Histogram.Noop ->
        (* unreachable: live registries never store Noop *)
        Snapshot.Histogram
          { name = s.s_name; help = s.s_help; labels = s.s_labels;
            buckets = [||]; sum = 0.; count = 0 }
      | I_histogram (Histogram.H { bounds; buckets = cells; sum_bits; _ }) ->
        (* one consistent read per cell, then cumulate Prometheus-style;
           the reported count is the sum of the same reads so the final
           cumulative bucket always equals it *)
        let nb = Array.length bounds in
        let raw = Array.map Sync.Atomic.get cells in
        let total = Array.fold_left ( + ) 0 raw in
        let cum = ref 0 in
        let buckets =
          Array.init (nb + 1) (fun i ->
              cum := !cum + raw.(i);
              ((if i < nb then bounds.(i) else infinity), !cum))
        in
        Snapshot.Histogram
          { name = s.s_name; help = s.s_help; labels = s.s_labels;
            buckets; sum = Int64.float_of_bits (Sync.Atomic.get sum_bits);
            count = total }
    in
    List.sort
      (fun a b ->
        match String.compare (Snapshot.name a) (Snapshot.name b) with
        | 0 -> compare (Snapshot.labels a) (Snapshot.labels b)
        | c -> c)
      (List.map one series)

let schema_version = "rfloor-metrics/1"

(* ---- Prometheus text exposition ---- *)

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels labels =
  match labels with
  | [] -> ""
  | _ ->
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
            labels))

let prom_float f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else Json.num_to_string f

let to_prometheus (snap : Snapshot.t) =
  let b = Buffer.create 1024 in
  let last_header = ref "" in
  let header name kind help =
    if !last_header <> name then begin
      last_header := name;
      if help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (m : Snapshot.metric) ->
      match m with
      | Snapshot.Counter c ->
        header c.name "counter" c.help;
        Buffer.add_string b
          (Printf.sprintf "%s%s %d\n" c.name (prom_labels c.labels) c.value)
      | Snapshot.Gauge g ->
        header g.name "gauge" g.help;
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" g.name (prom_labels g.labels)
             (prom_float g.value))
      | Snapshot.Histogram h ->
        header h.name "histogram" h.help;
        Array.iter
          (fun (le, cum) ->
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" h.name
                 (prom_labels (h.labels @ [ ("le", prom_float le) ]))
                 cum))
          h.buckets;
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" h.name (prom_labels h.labels)
             (prom_float h.sum));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" h.name (prom_labels h.labels)
             h.count))
    snap;
  Buffer.contents b

(* ---- versioned JSON ---- *)

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let to_json_value (snap : Snapshot.t) =
  let metric (m : Snapshot.metric) =
    match m with
    | Snapshot.Counter c ->
      Json.Obj
        [ ("name", Json.Str c.name); ("kind", Json.Str "counter");
          ("help", Json.Str c.help); ("labels", labels_json c.labels);
          ("value", Json.Num (float_of_int c.value)) ]
    | Snapshot.Gauge g ->
      Json.Obj
        [ ("name", Json.Str g.name); ("kind", Json.Str "gauge");
          ("help", Json.Str g.help); ("labels", labels_json g.labels);
          ("value", if Float.is_finite g.value then Json.Num g.value else Json.Null) ]
    | Snapshot.Histogram h ->
      Json.Obj
        [ ("name", Json.Str h.name); ("kind", Json.Str "histogram");
          ("help", Json.Str h.help); ("labels", labels_json h.labels);
          ( "buckets",
            Json.Arr
              (Array.to_list
                 (Array.map
                    (fun (le, cum) ->
                      Json.Arr
                        [ (if Float.is_finite le then Json.Num le else Json.Null);
                          Json.Num (float_of_int cum) ])
                    h.buckets)) );
          ("sum", if Float.is_finite h.sum then Json.Num h.sum else Json.Null);
          ("count", Json.Num (float_of_int h.count)) ]
  in
  Json.Obj
    [ ("schema", Json.Str schema_version);
      ("metrics", Json.Arr (List.map metric snap)) ]

let to_json snap = Json.to_string (to_json_value snap)

(* ---- validation ---- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let validate_labels v =
  match Json.member "labels" v with
  | None -> Ok []
  | Some (Json.Obj fields) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (k, Json.Str s) :: rest -> go ((k, s) :: acc) rest
      | (k, _) :: _ -> Error (Printf.sprintf "label %S must be a string" k)
    in
    go [] fields
  | Some _ -> Error "field \"labels\" must be an object"

let validate_metric v =
  let* name = Json.get_string "name" v in
  if name = "" then Error "empty metric name"
  else
    let* kind = Json.get_string "kind" v in
    let* labels = validate_labels v in
    let* () =
      match kind with
      | "counter" ->
        let* value = Json.get_int "value" v in
        if value < 0 then
          Error (Printf.sprintf "counter %s has negative value %d" name value)
        else Ok ()
      | "gauge" ->
        let* _ = Json.get_num_opt "value" v in
        Ok ()
      | "histogram" ->
        let* buckets = Json.get_arr "buckets" v in
        let* count = Json.get_int "count" v in
        if count < 0 then
          Error (Printf.sprintf "histogram %s has negative count" name)
        else if buckets = [] then
          Error (Printf.sprintf "histogram %s has no buckets" name)
        else
          let* _ = Json.get_num_opt "sum" v in
          let rec check prev_le prev_cum last_null = function
            | [] ->
              if not last_null then
                Error
                  (Printf.sprintf
                     "histogram %s lacks the +Inf (null) final bucket" name)
              else if prev_cum <> count then
                Error
                  (Printf.sprintf
                     "histogram %s: final cumulative count %d <> count %d" name
                     prev_cum count)
              else Ok ()
            | Json.Arr [ le; Json.Num cum ] :: rest ->
              if last_null then
                Error
                  (Printf.sprintf "histogram %s: bucket after +Inf" name)
              else if not (Float.is_integer cum) || cum < 0. then
                Error
                  (Printf.sprintf
                     "histogram %s: bucket count must be a non-negative integer"
                     name)
              else
                let cum = int_of_float cum in
                if cum < prev_cum then
                  Error
                    (Printf.sprintf
                       "histogram %s: cumulative bucket counts decrease" name)
                else (
                  match le with
                  | Json.Null -> check prev_le cum true rest
                  | Json.Num le ->
                    if (match prev_le with Some p -> le <= p | None -> false)
                    then
                      Error
                        (Printf.sprintf
                           "histogram %s: bucket bounds must strictly increase"
                           name)
                    else check (Some le) cum false rest
                  | _ ->
                    Error
                      (Printf.sprintf
                         "histogram %s: bucket bound must be a number or null"
                         name))
            | _ ->
              Error
                (Printf.sprintf
                   "histogram %s: each bucket must be a [bound, count] pair"
                   name)
          in
          check None 0 false buckets
      | k -> Error (Printf.sprintf "unknown metric kind %S" k)
    in
    Ok (name, labels)

let validate_json_value doc =
  let* schema = Json.get_string "schema" doc in
  if schema <> schema_version then
    Error (Printf.sprintf "unknown schema %S (expected %S)" schema schema_version)
  else
    let* metrics = Json.get_arr "metrics" doc in
    let rec go seen n = function
      | [] -> Ok n
      | m :: rest ->
        let* key = validate_metric m in
        if List.mem key seen then
          Error (Printf.sprintf "duplicate series %s" (fst key))
        else go (key :: seen) (n + 1) rest
    in
    go [] 0 metrics

let validate_json text =
  match Json.parse text with
  | Error e -> Error e
  | Ok doc -> validate_json_value doc
