module T = Rfloor_trace
module E = T.Event

let sink reg =
  if not (Registry.live reg) then T.Sink.null
  else begin
    let counter ?help name = Registry.counter reg ?help name in
    let events =
      counter ~help:"Trace events folded into this registry"
        "rfloor_trace_events_total"
    in
    let nodes =
      counter ~help:"Branch-and-bound nodes explored" "rfloor_nodes_total"
    in
    let incumbents =
      counter ~help:"Incumbent improvements" "rfloor_incumbents_total"
    in
    let incumbent_obj =
      Registry.gauge reg ~help:"Objective of the latest incumbent"
        "rfloor_incumbent_objective"
    in
    let incumbent_at =
      Registry.histogram reg
        ~help:"Seconds from solve start to each incumbent improvement"
        "rfloor_incumbent_seconds"
    in
    let steals = counter ~help:"Donation events" "rfloor_steals_total" in
    let steal_tasks =
      counter ~help:"Subproblems donated to the shared deque"
        "rfloor_steal_tasks_total"
    in
    let steal_latency =
      Registry.histogram reg
        ~help:"Idle-to-next-node latency per starved worker"
        ~buckets:[| 1e-5; 1e-4; 1e-3; 0.01; 0.1; 1.; 10. |]
        "rfloor_steal_latency_seconds"
    in
    let cuts = counter ~help:"Gomory cuts added" "rfloor_cuts_total" in
    let idle = counter ~help:"Worker idle transitions" "rfloor_idle_total" in
    let restarts =
      counter ~help:"Optimization stage restarts" "rfloor_restarts_total"
    in
    let stops =
      counter ~help:"Early solver stops (cancel or budget)"
        "rfloor_stops_total"
    in
    let warnings = counter ~help:"Warning events" "rfloor_warnings_total" in
    let refactors =
      counter ~help:"LP basis refactorizations seen in the trace"
        "rfloor_trace_lp_refactor_total"
    in
    let warm_events =
      counter ~help:"Warm-started LP re-solves seen in the trace"
        "rfloor_trace_lp_warm_total"
    in
    let moves =
      counter ~help:"Online relocation moves seen in the trace"
        "rfloor_trace_moves_total"
    in
    (* per-phase histograms and per-worker counters, created on first
       sight; the tables below are only touched under the sink mutex *)
    let phase_hist : (E.phase, Registry.Histogram.t) Hashtbl.t =
      Hashtbl.create 8
    in
    let phase_histogram phase =
      match Hashtbl.find_opt phase_hist phase with
      | Some h -> h
      | None ->
        let h =
          Registry.histogram reg ~help:"Wall time per solver phase span"
            ~labels:[ ("phase", E.phase_name phase) ]
            "rfloor_phase_seconds"
        in
        Hashtbl.add phase_hist phase h;
        h
    in
    let worker_nodes : (int, Registry.Counter.t) Hashtbl.t = Hashtbl.create 8 in
    let worker_counter w =
      match Hashtbl.find_opt worker_nodes w with
      | Some c -> c
      | None ->
        let c =
          Registry.counter reg ~help:"Nodes explored per worker"
            ~labels:[ ("worker", string_of_int w) ]
            "rfloor_worker_nodes_total"
        in
        Hashtbl.add worker_nodes w c;
        c
    in
    let open_spans : (int * E.phase, float) Hashtbl.t = Hashtbl.create 8 in
    let idle_since : (int, float) Hashtbl.t = Hashtbl.create 8 in
    T.Sink.of_fn (fun (e : E.t) ->
        Registry.Counter.incr events;
        match e.E.payload with
        | E.Span_start phase -> Hashtbl.replace open_spans (e.E.worker, phase) e.E.at
        | E.Span_end phase -> (
          let k = (e.E.worker, phase) in
          match Hashtbl.find_opt open_spans k with
          | Some t0 ->
            Hashtbl.remove open_spans k;
            Registry.Histogram.observe (phase_histogram phase)
              (max 0. (e.E.at -. t0))
          | None -> ())
        | E.Node_explored _ ->
          Registry.Counter.incr nodes;
          Registry.Counter.incr (worker_counter e.E.worker);
          (match Hashtbl.find_opt idle_since e.E.worker with
          | Some t0 ->
            Hashtbl.remove idle_since e.E.worker;
            Registry.Histogram.observe steal_latency (max 0. (e.E.at -. t0))
          | None -> ())
        | E.Incumbent { objective; _ } ->
          Registry.Counter.incr incumbents;
          Registry.Gauge.set incumbent_obj objective;
          Registry.Histogram.observe incumbent_at e.E.at
        | E.Cut_added { cuts = c; _ } -> Registry.Counter.add cuts c
        | E.Steal { tasks } ->
          Registry.Counter.incr steals;
          Registry.Counter.add steal_tasks tasks
        | E.Worker_idle ->
          Registry.Counter.incr idle;
          Hashtbl.replace idle_since e.E.worker e.E.at
        | E.Restart _ -> Registry.Counter.incr restarts
        | E.Stopped _ -> Registry.Counter.incr stops
        | E.Lp_refactor _ -> Registry.Counter.incr refactors
        | E.Lp_warm _ -> Registry.Counter.incr warm_events
        | E.Move _ -> Registry.Counter.incr moves
        | E.Warning _ -> Registry.Counter.incr warnings
        | E.Message _ -> ())
  end
