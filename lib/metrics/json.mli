(** Minimal JSON values: enough to parse and re-emit the metrics
    snapshots and bench artifacts this library defines.

    The parser accepts full JSON (nested objects, arrays, escapes);
    duplicate object keys are rejected, as are non-finite number
    literals (there are none in JSON anyway — the writers in this
    library encode [nan]/[inf] as [null], matching
    {!Rfloor_trace.Event.to_json}). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** key order preserved; keys unique *)

val parse : string -> (t, string) result
(** Parses a complete document; trailing non-whitespace is an error.
    Errors carry a character offset. *)

val to_string : t -> string
(** Compact (no whitespace).  Integral numbers with magnitude below
    [1e15] print without a decimal point, so counters survive a
    parse/print round trip byte-identically. *)

val num_to_string : float -> string
(** The number rendering {!to_string} uses ([null] for non-finite). *)

(** {1 Accessors} — each returns [Error] naming the missing/mistyped
    field, for building validators. *)

val member : string -> t -> t option
(** [member k (Obj ...)] — [None] on absent key or non-object. *)

val get_string : string -> t -> (string, string) result
val get_num : string -> t -> (float, string) result
val get_int : string -> t -> (int, string) result
val get_arr : string -> t -> (t list, string) result

val get_num_opt : string -> t -> (float option, string) result
(** Absent or [null] is [Ok None]; a non-number is an error. *)
