type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | Some c' -> fail (Printf.sprintf "expected '%c', got '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "dangling escape";
        let e = text.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub text !pos 4 in
          pos := !pos + 4;
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          (* non-ASCII folded to '?', same policy as the trace parser *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else Buffer.add_char b '?'
        | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec pairs () =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          if List.mem_assoc k !fields then
            fail (Printf.sprintf "duplicate key %S" k);
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            pairs ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        pairs ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elems () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems ()
          | Some ']' -> incr pos
          | _ -> fail "expected ',' or ']'"
        in
        elems ();
        Arr (List.rev !items)
      end
    | Some ('t' | 'f' | 'n') ->
      let kw k v =
        let l = String.length k in
        if !pos + l <= n && String.sub text !pos l = k then begin
          pos := !pos + l;
          v
        end
        else fail "bad literal"
      in
      if text.[!pos] = 't' then kw "true" (Bool true)
      else if text.[!pos] = 'f' then kw "false" (Bool false)
      else kw "null" Null
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        &&
        match text.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        incr pos
      done;
      if !pos = start then fail "expected a value";
      let s = String.sub text start (!pos - start) in
      (match float_of_string_opt s with
      | Some f when Float.is_finite f -> Num f
      | Some _ -> fail (Printf.sprintf "non-finite number %S" s)
      | None -> fail (Printf.sprintf "bad number %S" s))
    | None -> fail "expected a value, got end of input"
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters after document";
    Ok v
  with Bad (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && abs_float f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (num_to_string f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          go v)
        items;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          go v)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let get_string k v =
  match member k v with
  | Some (Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)
  | None -> Error (Printf.sprintf "missing field %S" k)

let get_num k v =
  match member k v with
  | Some (Num f) -> Ok f
  | Some _ -> Error (Printf.sprintf "field %S must be a number" k)
  | None -> Error (Printf.sprintf "missing field %S" k)

let get_int k v =
  match get_num k v with
  | Error _ as e -> e
  | Ok f ->
    if Float.is_integer f then Ok (int_of_float f)
    else Error (Printf.sprintf "field %S must be an integer" k)

let get_arr k v =
  match member k v with
  | Some (Arr items) -> Ok items
  | Some _ -> Error (Printf.sprintf "field %S must be an array" k)
  | None -> Error (Printf.sprintf "missing field %S" k)

let get_num_opt k v =
  match member k v with
  | Some (Num f) -> Ok (Some f)
  | Some Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a number or null" k)
