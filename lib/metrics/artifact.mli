(** Persistent bench artifacts and regression gating.

    A bench run serializes one {!type:t} per invocation (schema
    ["rfloor-bench/1"]): the run's provenance (label, git revision,
    worker count, per-solve budget) plus one {!entry} per solved
    instance, carrying the headline numbers, the solver's
    {!Rfloor_trace.Report} JSON and a {!Registry} metrics snapshot.

    {!compare} diffs two artifacts entry-by-entry (matched on instance
    name) under configurable {!thresholds} and returns human-readable
    regression descriptions — an empty list means the gate passes. *)

type entry = {
  e_instance : string;
  e_status : string;
      (** solver entries: ["optimal"], ["feasible"], ["infeasible"],
          ["unknown"]; online-replay entries: ["ok"], ["violated"] *)
  e_objective : float option;
  e_wasted : float option;
  e_nodes : int;
  e_simplex_iterations : int;
  e_elapsed : float;
  e_report : Json.t option;  (** {!Rfloor_trace.Report.to_json}, parsed *)
  e_metrics : Json.t option;  (** {!Registry.to_json_value} snapshot *)
}

type t = {
  a_label : string;
  a_created : float;  (** Unix epoch seconds, supplied by the writer *)
  a_git_rev : string;  (** ["unknown"] when not in a checkout *)
  a_workers : int;
  a_budget : float;  (** per-solve budget, seconds *)
  a_entries : entry list;
}

val schema_version : string
(** ["rfloor-bench/1"]. *)

val to_json_value : t -> Json.t
val to_string : t -> string

val of_json_value : Json.t -> (t, string) result
val of_string : string -> (t, string) result

val validate : string -> (int, string) result
(** Full schema check of a serialized artifact, including
    {!Registry.validate_json_value} on every embedded metrics snapshot.
    Returns the number of entries. *)

(** {1 Regression gating} *)

type thresholds = {
  max_slowdown : float;
      (** flag when [new.elapsed > max_slowdown * old.elapsed] *)
  max_node_growth : float;
      (** flag when [new.nodes > max_node_growth * max old.nodes 1] *)
  min_seconds : float;
      (** runs where both elapsed times are below this floor are never
          flagged for slowdown — they are noise *)
}

val default_thresholds : thresholds
(** [{ max_slowdown = 1.5; max_node_growth = 3.0; min_seconds = 0.05 }] *)

val compare : ?thresholds:thresholds -> old_:t -> t -> string list
(** [compare ~old_ new_] — one line per regression: instances missing
    from [new_], status
    worsening (optimal > feasible > infeasible > unknown), objective or
    wasted-frames degradation, slowdown and node-count blowup beyond
    the thresholds.  Instances only present in [new_] are not flagged. *)
