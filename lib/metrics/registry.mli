(** Concurrency-safe metrics registry: counters, gauges, fixed-bucket
    histograms.

    Cost model (the same bar as {!Rfloor_trace}'s null sink): every
    instrument handle obtained from {!null} is a [Noop] constructor, so
    a hot-path update ([Counter.incr], [Histogram.observe]) on a dead
    registry is a single load-and-branch — no atomic, no allocation.
    On a live registry updates are lock-free ([Atomic] increments; a
    CAS loop for float accumulation); only registration and
    {!snapshot} take the registry mutex, and both are per-solve-rare.

    Registration is idempotent: asking for the same (name, labels)
    twice returns the same instrument, so a registry can be reused
    across solves and the series accumulate.  Re-registering a name
    under a different metric kind, or a histogram under different
    buckets, raises [Invalid_argument].

    Snapshots export two ways: Prometheus text exposition
    ({!to_prometheus}) and versioned JSON ({!to_json}, schema
    ["rfloor-metrics/1"], validated by {!validate_json}). *)

type t

val null : t
(** The dead registry: hands out no-op instruments, snapshots empty. *)

val create : unit -> t
val live : t -> bool

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  (** Negative increments are ignored — counters are monotone. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
end

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  Histogram.t
(** [buckets] are finite strictly-increasing upper bounds; an implicit
    [+Inf] bucket is always appended.  Default: {!seconds_buckets}. *)

val seconds_buckets : float array
(** Wall-time buckets, 100 µs … 60 s, roughly ×3 spaced. *)

val count_buckets : float array
(** Event-count buckets (simplex pivots per LP, nodes, ...), 10 … 1e5. *)

(** {1 Snapshots and export} *)

module Snapshot : sig
  type metric =
    | Counter of { name : string; help : string; labels : (string * string) list; value : int }
    | Gauge of { name : string; help : string; labels : (string * string) list; value : float }
    | Histogram of {
        name : string;
        help : string;
        labels : (string * string) list;
        buckets : (float * int) array;
            (** (upper bound, cumulative count); last bound is [infinity] *)
        sum : float;
        count : int;
      }

  type t = metric list
  (** Sorted by (name, labels). *)
end

val snapshot : t -> Snapshot.t

val schema_version : string
(** ["rfloor-metrics/1"], the ["schema"] field of the JSON export. *)

val to_prometheus : Snapshot.t -> string
(** Prometheus text exposition format, ending in a newline.  Histogram
    series expand to [_bucket{...,le="..."}], [_sum] and [_count]. *)

val to_json : Snapshot.t -> string
(** One versioned JSON object.  [+Inf] bucket bounds encode as [null];
    non-finite sums likewise. *)

val to_json_value : Snapshot.t -> Json.t

val validate_json : string -> (int, string) result
(** Schema check of a {!to_json} document: schema version, unique
    (name, labels) series, non-negative counters and counts, strictly
    increasing bucket bounds with a trailing [null], non-decreasing
    cumulative bucket counts topping out at the series count.  Returns
    the number of metrics. *)

val validate_json_value : Json.t -> (int, string) result
(** {!validate_json} on an already-parsed document (used by the bench
    artifact validator on embedded snapshots). *)
