(* Bench artifacts: versioned JSON serialization and threshold-based
   regression comparison.  See artifact.mli. *)

type entry = {
  e_instance : string;
  e_status : string;
  e_objective : float option;
  e_wasted : float option;
  e_nodes : int;
  e_simplex_iterations : int;
  e_elapsed : float;
  e_report : Json.t option;
  e_metrics : Json.t option;
}

type t = {
  a_label : string;
  a_created : float;
  a_git_rev : string;
  a_workers : int;
  a_budget : float;
  a_entries : entry list;
}

let schema_version = "rfloor-bench/1"

(* ---- serialization ---- *)

let opt_num = function Some f when Float.is_finite f -> Json.Num f | _ -> Json.Null
let opt_obj = function Some j -> j | None -> Json.Null

let entry_json e =
  Json.Obj
    [ ("instance", Json.Str e.e_instance);
      ("status", Json.Str e.e_status);
      ("objective", opt_num e.e_objective);
      ("wasted", opt_num e.e_wasted);
      ("nodes", Json.Num (float_of_int e.e_nodes));
      ("simplex_iterations", Json.Num (float_of_int e.e_simplex_iterations));
      ("elapsed", Json.Num e.e_elapsed);
      ("report", opt_obj e.e_report);
      ("metrics", opt_obj e.e_metrics) ]

let to_json_value a =
  Json.Obj
    [ ("schema", Json.Str schema_version);
      ("label", Json.Str a.a_label);
      ("created", Json.Num a.a_created);
      ("git_rev", Json.Str a.a_git_rev);
      ("workers", Json.Num (float_of_int a.a_workers));
      ("budget", Json.Num a.a_budget);
      ("entries", Json.Arr (List.map entry_json a.a_entries)) ]

let to_string a = Json.to_string (to_json_value a)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let entry_of_json v =
  let* e_instance = Json.get_string "instance" v in
  if e_instance = "" then Error "entry with empty instance name"
  else
    let* e_status = Json.get_string "status" v in
    let* () =
      if
        List.mem e_status
          [ "optimal"; "feasible"; "infeasible"; "unknown"; "ok"; "violated" ]
      then Ok ()
      else Error (Printf.sprintf "%s: unknown status %S" e_instance e_status)
    in
    let* e_objective = Json.get_num_opt "objective" v in
    let* e_wasted = Json.get_num_opt "wasted" v in
    let* e_nodes = Json.get_int "nodes" v in
    let* e_simplex_iterations = Json.get_int "simplex_iterations" v in
    let* e_elapsed = Json.get_num "elapsed" v in
    if e_nodes < 0 then Error (Printf.sprintf "%s: negative node count" e_instance)
    else if e_simplex_iterations < 0 then
      Error (Printf.sprintf "%s: negative simplex iterations" e_instance)
    else if e_elapsed < 0. then
      Error (Printf.sprintf "%s: negative elapsed time" e_instance)
    else
      let non_null k =
        match Json.member k v with Some Json.Null | None -> None | j -> j
      in
      Ok
        { e_instance; e_status; e_objective; e_wasted; e_nodes;
          e_simplex_iterations; e_elapsed; e_report = non_null "report";
          e_metrics = non_null "metrics" }

let of_json_value doc =
  let* schema = Json.get_string "schema" doc in
  if schema <> schema_version then
    Error (Printf.sprintf "unknown schema %S (expected %S)" schema schema_version)
  else
    let* a_label = Json.get_string "label" doc in
    let* a_created = Json.get_num "created" doc in
    let* a_git_rev = Json.get_string "git_rev" doc in
    let* a_workers = Json.get_int "workers" doc in
    let* a_budget = Json.get_num "budget" doc in
    let* entries = Json.get_arr "entries" doc in
    let rec go seen acc = function
      | [] -> Ok (List.rev acc)
      | v :: rest ->
        let* e = entry_of_json v in
        if List.mem e.e_instance seen then
          Error (Printf.sprintf "duplicate instance %S" e.e_instance)
        else go (e.e_instance :: seen) (e :: acc) rest
    in
    let* a_entries = go [] [] entries in
    Ok { a_label; a_created; a_git_rev; a_workers; a_budget; a_entries }

let of_string text =
  match Json.parse text with
  | Error e -> Error e
  | Ok doc -> of_json_value doc

let validate text =
  let* a = of_string text in
  let rec go = function
    | [] -> Ok (List.length a.a_entries)
    | e :: rest -> (
      match e.e_metrics with
      | None -> go rest
      | Some m -> (
        match Registry.validate_json_value m with
        | Ok _ -> go rest
        | Error msg ->
          Error (Printf.sprintf "%s: invalid metrics snapshot: %s" e.e_instance msg)))
  in
  go a.a_entries

(* ---- regression comparison ---- *)

type thresholds = {
  max_slowdown : float;
  max_node_growth : float;
  min_seconds : float;
}

let default_thresholds =
  { max_slowdown = 1.5; max_node_growth = 3.0; min_seconds = 0.05 }

let status_rank = function
  | "optimal" | "ok" -> 3
  | "feasible" -> 2
  | "infeasible" -> 1
  (* "violated" and "unknown" both rank lowest: any drop into them flags *)
  | _ -> 0

let compare ?(thresholds = default_thresholds) ~old_ new_ =
  let out = ref [] in
  let flag fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  List.iter
    (fun (o : entry) ->
      match
        List.find_opt (fun n -> n.e_instance = o.e_instance) new_.a_entries
      with
      | None -> flag "%s: missing from new artifact" o.e_instance
      | Some n ->
        if status_rank n.e_status < status_rank o.e_status then
          flag "%s: status worsened %s -> %s" o.e_instance o.e_status n.e_status;
        (match (o.e_wasted, n.e_wasted) with
        | Some a, Some b when b > a ->
          flag "%s: wasted frames worsened %g -> %g" o.e_instance a b
        | _ -> ());
        (match (o.e_objective, n.e_objective) with
        | Some a, Some b when b > a +. 1e-9 ->
          flag "%s: objective worsened %g -> %g" o.e_instance a b
        | _ -> ());
        if
          Float.max o.e_elapsed n.e_elapsed >= thresholds.min_seconds
          && n.e_elapsed > thresholds.max_slowdown *. o.e_elapsed
        then
          flag "%s: %.2fx slowdown (%.3fs -> %.3fs, threshold %.2fx)"
            o.e_instance
            (n.e_elapsed /. Float.max 1e-9 o.e_elapsed)
            o.e_elapsed n.e_elapsed thresholds.max_slowdown;
        if
          float_of_int n.e_nodes
          > thresholds.max_node_growth *. float_of_int (max o.e_nodes 1)
        then
          flag "%s: node count grew %d -> %d (threshold %.2fx)" o.e_instance
            o.e_nodes n.e_nodes thresholds.max_node_growth)
    old_.a_entries;
  List.rev !out
