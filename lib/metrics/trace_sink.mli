(** Fold {!Rfloor_trace} events into a {!Registry.t}.

    [sink reg] is an {!Rfloor_trace.sink} that aggregates the event
    stream into Prometheus-style series:

    - [rfloor_phase_seconds{phase=...}] — histogram of span wall times
      (matched [Span_start]/[Span_end] pairs per worker);
    - [rfloor_nodes_total] and [rfloor_worker_nodes_total{worker=...}]
      — node throughput;
    - [rfloor_incumbents_total], [rfloor_incumbent_objective] (gauge)
      and [rfloor_incumbent_seconds] (histogram of improvement times
      since the tracer's epoch) — the incumbent-improvement curve;
    - [rfloor_steals_total], [rfloor_steal_tasks_total] and
      [rfloor_steal_latency_seconds] — the latency histogram measures
      idle-to-next-node gaps per worker, i.e. how long a starved
      worker waited for stolen work;
    - [rfloor_cuts_total], [rfloor_idle_total], [rfloor_restarts_total],
      [rfloor_warnings_total], [rfloor_trace_events_total].

    On the {!Registry.null} registry this returns
    {!Rfloor_trace.Sink.null}, so attaching metrics to a solve is free
    when metrics are off.  The sink's internal span/idle tables are
    protected by the per-sink mutex every {!Rfloor_trace.sink} already
    serializes behind, so one sink can serve all domains of a parallel
    solve. *)

val sink : Registry.t -> Rfloor_trace.sink
