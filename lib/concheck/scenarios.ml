(* The concurrency scenarios the repo actually worries about, modeled
   at the granularity where their interleavings differ, plus
   self-tests that prove the analyzers still have teeth.

   Each scenario mirrors a real structure: the incumbent CAS loop of
   Parallel_bb, its work deque, the service LRU cache (used directly,
   not modeled), and the cancel-vs-drain handoff of the job pool.  A
   deliberately broken incumbent variant (blind write after a stale
   read) must produce a violation, otherwise the explorer itself is
   reported broken. *)

module D = Rfloor_diag.Diagnostic
module Sync = Rfloor_sync
module Cache = Rfloor_service.Cache

(* deterministic per-seed variation of the scenario data *)
let lcg seed =
  let s = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod bound

(* ------------------------------------------------------------------ *)
(* Incumbent CAS loop (Parallel_bb.improve): concurrent minimization
   must end at the minimum of all proposals.  [cas] models the real
   compare-and-set loop; [blind] models the bug the loop exists to
   prevent — write-after-stale-read loses an update under some
   schedule, which the explorer must find. *)

let incumbent_cas ~blind proposals =
  let initial = 1000 in
  let latest = ref (ref initial) in
  let threads () =
    let best = ref initial in
    latest := best;
    List.map
      (fun v ->
        let pc = ref `Read in
        let obs = ref 0 in
        fun () ->
          match !pc with
          | `Read ->
            obs := !best;
            pc := `Write;
            true
          | `Write ->
            (if v >= !obs then pc := `Done
             else if blind then begin
               best := v;
               pc := `Done
             end
             else if !best = !obs then begin
               (* CAS success: compare and set in one atomic step *)
               best := v;
               pc := `Done
             end
             else pc := `Read (* CAS failure: retry from a fresh read *));
            true
          | `Done -> false)
      proposals
  in
  let check () =
    let expect = List.fold_left min initial proposals in
    let got = !(!latest) in
    if got = expect then Ok ()
    else
      Error
        (Printf.sprintf "final incumbent %d, expected the minimum %d" got
           expect)
  in
  {
    Explorer.name =
      (if blind then "incumbent_cas_blind_write" else "incumbent_cas");
    threads;
    check;
    fingerprint = None (* thread-local pcs are not visible to a digest *);
  }

(* ------------------------------------------------------------------ *)
(* Work deque, steal vs. pop (Parallel_bb's global queue): claims are
   whole critical sections, so every task must be consumed exactly
   once no matter how two consumers and the producer interleave. *)

let deque_steal_vs_pop tasks =
  let queue = ref [] in
  let consumed = Array.make 2 [] in
  let latest_fp = ref (fun () -> "") in
  let threads () =
    queue := [];
    consumed.(0) <- [];
    consumed.(1) <- [];
    (latest_fp :=
       fun () ->
         Printf.sprintf "q=%s c0=%s c1=%s"
           (String.concat "," (List.map string_of_int !queue))
           (String.concat "," (List.map string_of_int consumed.(0)))
           (String.concat "," (List.map string_of_int consumed.(1))));
    let producer =
      let remaining = ref tasks in
      fun () ->
        match !remaining with
        | [] -> false
        | t :: rest ->
          (* push: one critical section *)
          queue := !queue @ [ t ];
          remaining := rest;
          true
    in
    let consumer i =
      let done_ = ref false in
      fun () ->
        if !done_ then false
        else begin
          (* claim: one critical section — pop the head or observe
             empty and stop *)
          (match !queue with
          | [] -> done_ := true
          | t :: rest ->
            queue := rest;
            consumed.(i) <- t :: consumed.(i));
          true
        end
    in
    [ producer; consumer 0; consumer 1 ]
  in
  let check () =
    let all = !queue @ consumed.(0) @ consumed.(1) in
    let sorted = List.sort compare all in
    if sorted = List.sort compare tasks then Ok ()
    else
      Error
        (Printf.sprintf
           "task conservation broken: produced {%s}, accounted {%s}"
           (String.concat "," (List.map string_of_int tasks))
           (String.concat "," (List.map string_of_int sorted)))
  in
  {
    Explorer.name = "deque_steal_vs_pop";
    threads;
    check;
    fingerprint = Some (fun () -> !latest_fp ());
  }

(* ------------------------------------------------------------------ *)
(* LRU hit vs. evict, against the real service cache at capacity 2:
   a writer inserting three entries races a reader hitting the first
   two keys.  The size bound and key uniqueness must hold at every
   terminal schedule, and any hit must return the entry stored under
   that key. *)

let entry k =
  {
    Cache.instance_key = k;
    options_key = "opts";
    instance_text = "text:" ^ k;
    options_text = "otext";
    status = Rfloor.Solver.Optimal;
    wasted = Some 0;
    wirelength = None;
    objective = Some 1.;
    fc_identified = 0;
    plan = None;
  }

let lru_hit_vs_evict () =
  let latest = ref (Cache.create ~capacity:2 ()) in
  let hits : (string * Cache.hit option) list ref = ref [] in
  let threads () =
    let c = Cache.create ~capacity:2 () in
    latest := c;
    hits := [];
    let writer =
      let remaining = ref [ "k1"; "k2"; "k3" ] in
      fun () ->
        match !remaining with
        | [] -> false
        | k :: rest ->
          Cache.store c (entry k);
          remaining := rest;
          true
    in
    let reader =
      let remaining = ref [ "k1"; "k2" ] in
      fun () ->
        match !remaining with
        | [] -> false
        | k :: rest ->
          let h =
            Cache.find c ~instance_key:k ~instance_text:("text:" ^ k)
              ~options_key:"opts" ~options_text:"otext"
          in
          hits := (k, h) :: !hits;
          remaining := rest;
          true
    in
    [ writer; reader ]
  in
  let check () =
    let c = !latest in
    let n = Cache.length c in
    let keys = Cache.keys c in
    let rec dup = function
      | a :: (b :: _ as rest) -> if a = b then true else dup rest
      | _ -> false
    in
    if n > 2 then Error (Printf.sprintf "size bound broken: %d entries" n)
    else if List.length keys <> n then
      Error "key listing disagrees with the length"
    else if dup keys then Error "duplicate canonical keys"
    else
      List.fold_left
        (fun acc (k, h) ->
          match (acc, h) with
          | Error _, _ -> acc
          | Ok (), (None | Some (Cache.Near _)) -> Ok ()
          | Ok (), Some (Cache.Exact e) ->
            if e.Cache.instance_key = k && e.Cache.instance_text = "text:" ^ k
            then Ok ()
            else Error (Printf.sprintf "hit for %s returned a foreign entry" k))
        (Ok ()) !hits
  in
  {
    Explorer.name = "lru_hit_vs_evict";
    threads;
    check;
    fingerprint =
      Some
        (fun () ->
          String.concat "," (Cache.keys !latest)
          ^ "|"
          ^ String.concat ";"
              (List.map
                 (fun (k, h) ->
                   k ^ "="
                   ^
                   match h with
                   | None -> "miss"
                   | Some (Cache.Exact _) -> "exact"
                   | Some (Cache.Near _) -> "near")
                 !hits));
  }

(* ------------------------------------------------------------------ *)
(* Cancel vs. drain (the pool's cooperative cancellation): a worker
   checks the flag between unit steps; a canceller sets it once.  The
   job must finish exactly once, and a "stopped" outcome implies the
   flag really was set. *)

let cancel_vs_drain ~steps =
  let latest = ref (ref false, ref 0, ref None) in
  let threads () =
    let flag = ref false in
    let progress = ref 0 in
    let result = ref None in
    latest := (flag, progress, result);
    let worker =
      fun () ->
        match !result with
        | Some _ -> false
        | None ->
          (* one check-then-work step *)
          if !flag then begin
            result := Some "stopped";
            true
          end
          else if !progress >= steps then begin
            result := Some "completed";
            true
          end
          else begin
            incr progress;
            true
          end
    in
    let canceller =
      let done_ = ref false in
      fun () ->
        if !done_ then false
        else begin
          flag := true;
          done_ := true;
          true
        end
    in
    [ worker; canceller ]
  in
  let check () =
    let flag, progress, result = !latest in
    match !result with
    | None -> Error "job never finished"
    | Some "stopped" when not !flag -> Error "stopped without a cancel"
    | Some _ when !progress > steps ->
      Error (Printf.sprintf "progress %d overran %d steps" !progress steps)
    | Some _ -> Ok ()
  in
  {
    Explorer.name = "cancel_vs_drain";
    threads;
    check;
    fingerprint =
      Some
        (fun () ->
          let flag, progress, result = !latest in
          Printf.sprintf "%b/%d/%s" !flag !progress
            (Option.value ~default:"-" !result));
  }

(* ------------------------------------------------------------------ *)
(* The suite *)

let all ~seed =
  let rand = lcg seed in
  let proposals = List.init 3 (fun _ -> 1 + rand 999) in
  let tasks = List.init 3 (fun i -> ((i + 1) * 100) + rand 100) in
  [
    incumbent_cas ~blind:false proposals;
    deque_steal_vs_pop tasks;
    lru_hit_vs_evict ();
    cancel_vs_drain ~steps:3;
  ]

let run_all ?max_replays ~seed () =
  let rand = lcg (seed + 1) in
  let outcomes =
    List.map (Explorer.explore ?max_replays) (all ~seed)
  in
  let diags = List.concat_map Explorer.diagnostics outcomes in
  (* teeth check: the broken incumbent must be caught *)
  let blind =
    Explorer.explore ?max_replays
      (incumbent_cas ~blind:true (List.init 3 (fun _ -> 1 + rand 999)))
  in
  let teeth =
    match blind.Explorer.o_violation with
    | Some _ -> [] (* the explorer caught the seeded bug, as it must *)
    | None ->
      [
        D.diagf ~code:"RF420" D.Error
          (D.Schedule blind.Explorer.o_name)
          "seeded lost-update bug was NOT caught after %d schedules: the \
           explorer has lost its teeth"
          blind.Explorer.o_schedules;
      ]
  in
  (outcomes @ [ blind ], diags @ teeth)

(* ------------------------------------------------------------------ *)
(* Race-detector self-test, with real domains under the recorder *)

type self_test = {
  st_name : string;
  st_expected : string;  (** what the detector is expected to report *)
  st_pass : bool;
  st_detail : string;
}

let record_two_domains body =
  Sync.Recorder.start ();
  let cell = Sync.Shared.make ~name:"selftest.cell" 0 in
  let ctx = body cell in
  let log = Sync.Recorder.stop () in
  (log, ctx)

let detector_self_test () =
  (* 1. unsynchronized cross-domain writes: must race *)
  let log_racy, () =
    record_two_domains (fun cell ->
        let d =
          Sync.Domain.spawn ~name:"selftest.racy" (fun () ->
              for _ = 1 to 3 do
                Sync.Shared.set cell (Sync.Shared.get cell + 1)
              done)
        in
        for _ = 1 to 3 do
          Sync.Shared.set cell (Sync.Shared.get cell + 1)
        done;
        Sync.Domain.join d)
  in
  let r_racy, _ = Race.analyze log_racy in
  (* 2. mutex-protected: must be clean *)
  let log_safe, () =
    record_two_domains (fun cell ->
        let mu = Sync.Mutex.create ~name:"selftest.mu" () in
        let bump () =
          Sync.Mutex.protect mu (fun () ->
              Sync.Shared.set cell (Sync.Shared.get cell + 1))
        in
        let d =
          Sync.Domain.spawn ~name:"selftest.safe" (fun () ->
              for _ = 1 to 3 do
                bump ()
              done)
        in
        for _ = 1 to 3 do
          bump ()
        done;
        Sync.Domain.join d)
  in
  let r_safe, _ = Race.analyze log_safe in
  (* 3. CAS-spinlock-protected: ordered (no race) but lock-free, so
     the Eraser screen must still warn about the empty lockset *)
  let log_spin, () =
    record_two_domains (fun cell ->
        let lock = Sync.Atomic.make ~name:"selftest.spin" false in
        let bump () =
          while not (Sync.Atomic.compare_and_set lock false true) do
            ()
          done;
          Sync.Shared.set cell (Sync.Shared.get cell + 1);
          Sync.Atomic.set lock false
        in
        let d =
          Sync.Domain.spawn ~name:"selftest.spin" (fun () ->
              for _ = 1 to 2 do
                bump ()
              done)
        in
        for _ = 1 to 2 do
          bump ()
        done;
        Sync.Domain.join d)
  in
  let r_spin, _ = Race.analyze log_spin in
  let results =
    [
      {
        st_name = "racy_unsynchronized_writes";
        st_expected = "at least one RF410 race";
        st_pass = r_racy.Race.races <> [];
        st_detail =
          Printf.sprintf "%d races over %d events"
            (List.length r_racy.Race.races)
            r_racy.Race.events;
      };
      {
        st_name = "mutex_protected_writes";
        st_expected = "no races, no lockset warnings";
        st_pass =
          r_safe.Race.races = [] && r_safe.Race.lockset_warnings = [];
        st_detail =
          Printf.sprintf "%d races, %d warnings over %d events"
            (List.length r_safe.Race.races)
            (List.length r_safe.Race.lockset_warnings)
            r_safe.Race.events;
      };
      {
        st_name = "cas_spinlock_writes";
        st_expected = "no races, one RF411 lockset warning";
        st_pass =
          r_spin.Race.races = []
          && List.length r_spin.Race.lockset_warnings = 1;
        st_detail =
          Printf.sprintf "%d races, %d warnings over %d events"
            (List.length r_spin.Race.races)
            (List.length r_spin.Race.lockset_warnings)
            r_spin.Race.events;
      };
    ]
  in
  let diags =
    List.concat_map
      (fun r ->
        if r.st_pass then []
        else
          [
            D.diagf ~code:"RF410" D.Error (D.Sync r.st_name)
              "race-detector self-test failed: expected %s, got %s"
              r.st_expected r.st_detail;
          ])
      results
  in
  (results, diags)
