(* FastTrack-style dynamic race detection over Rfloor_sync event logs.

   The log is replayed in recorded order (which the sync layer
   guarantees equals execution order).  Each domain carries a vector
   clock; mutexes, atomics, condition variables and spawn/join tokens
   carry release clocks that build the happens-before relation.  The
   accesses actually *checked* are the Plain_read/Plain_write events of
   [Rfloor_sync.Shared] cells — atomics are never data-racy by
   definition, they only order.

   A second, coarser screen runs alongside: Eraser-style locksets.  A
   cell written by several domains whose accesses share no common lock
   gets a warning even when the particular log happens to order every
   pair (the classic "this schedule got lucky" case). *)

module Sync = Rfloor_sync
module D = Rfloor_diag.Diagnostic

(* ------------------------------------------------------------------ *)
(* Vector clocks, over a dense renaming of the domain ids in the log *)

module Vc = struct
  type t = int array

  let make n = Array.make n 0
  let copy = Array.copy

  let join a b =
    for i = 0 to Array.length a - 1 do
      if b.(i) > a.(i) then a.(i) <- b.(i)
    done

  (* [leq_at c d i]: does the event stamped [c] happen-before a point
     whose clock is [d], judged at component [i] (the stamping
     domain)?  FastTrack's epoch test. *)
  let ordered ~writer_clock ~writer_dom ~reader_clock =
    writer_clock.(writer_dom) <= reader_clock.(writer_dom)
end

type access = {
  a_dom : int; (* dense domain index *)
  a_clock : Vc.t; (* clock snapshot at the access *)
  a_seq : int; (* log position, for the report *)
}

type cell = {
  c_name : string;
  mutable c_last_write : access option;
  mutable c_reads : (int * access) list; (* per-domain last read *)
  mutable c_lockset : int list option; (* None = no access yet *)
  mutable c_domains : int list; (* distinct accessing domains *)
  mutable c_written : bool;
  mutable c_raced : bool;
}

type report = {
  races : (string * int * int) list; (* cell name, seq of the two accesses *)
  lockset_warnings : string list; (* cell names *)
  events : int;
  domains : int;
  cells : int;
}

let intersect a b = List.filter (fun x -> List.mem x b) a

let analyze (log : Sync.Event.t list) : report * D.t list =
  (* dense domain numbering *)
  let dom_ids = Hashtbl.create 8 in
  List.iter
    (fun (e : Sync.Event.t) ->
      if not (Hashtbl.mem dom_ids e.Sync.Event.domain) then
        Hashtbl.add dom_ids e.Sync.Event.domain (Hashtbl.length dom_ids))
    log;
  let ndom = max 1 (Hashtbl.length dom_ids) in
  let dom d = Hashtbl.find dom_ids d in
  let clocks = Array.init ndom (fun _ -> Vc.make ndom) in
  (* a domain's own component starts at 1 so that even its first
     event carries a stamp no fresh clock satisfies: [0 <= 0] must
     not count as a happens-before edge *)
  Array.iteri (fun i c -> c.(i) <- 1) clocks;
  (* per-object release clocks *)
  let lock_clocks : (int, Vc.t) Hashtbl.t = Hashtbl.create 16 in
  let atomic_clocks : (int, Vc.t) Hashtbl.t = Hashtbl.create 16 in
  let cond_clocks : (int, Vc.t) Hashtbl.t = Hashtbl.create 16 in
  let spawn_clocks : (int, Vc.t) Hashtbl.t = Hashtbl.create 16 in
  (* per-domain held locks, for the Eraser screen *)
  let held : int list array = Array.make ndom [] in
  let cells : (int, cell) Hashtbl.t = Hashtbl.create 16 in
  let races = ref [] in
  let diags = ref [] in
  let get_cell id name =
    match Hashtbl.find_opt cells id with
    | Some c -> c
    | None ->
      let c =
        { c_name = name; c_last_write = None; c_reads = [];
          c_lockset = None; c_domains = []; c_written = false;
          c_raced = false }
      in
      Hashtbl.add cells id c;
      c
  in
  let race cell (prev : access) (cur : access) =
    if not cell.c_raced then begin
      cell.c_raced <- true;
      races := (cell.c_name, prev.a_seq, cur.a_seq) :: !races;
      diags :=
        D.diagf ~code:"RF410" D.Error (D.Sync cell.c_name)
          "conflicting unordered accesses: event #%d and event #%d touch %s \
           from different domains with no happens-before edge"
          prev.a_seq cur.a_seq cell.c_name
        :: !diags
    end
  in
  let join_from tbl id c =
    match Hashtbl.find_opt tbl id with
    | Some r -> Vc.join c r
    | None -> ()
  in
  let store_copy tbl id c = Hashtbl.replace tbl id (Vc.copy c) in
  let seq_of (e : Sync.Event.t) = e.Sync.Event.seq in
  List.iter
    (fun (e : Sync.Event.t) ->
      let d = dom e.Sync.Event.domain in
      let c = clocks.(d) in
      let id = e.Sync.Event.obj in
      (match e.Sync.Event.op with
      | Sync.Event.Lock_acquire ->
        join_from lock_clocks id c;
        held.(d) <- id :: held.(d)
      | Sync.Event.Lock_release ->
        store_copy lock_clocks id c;
        held.(d) <- List.filter (fun m -> m <> id) held.(d)
      | Sync.Event.Cond_wait_begin ->
        (* wait releases the paired mutex *)
        let mu = e.Sync.Event.aux in
        store_copy lock_clocks mu c;
        held.(d) <- List.filter (fun m -> m <> mu) held.(d)
      | Sync.Event.Cond_wait_end ->
        (* wakeup: joins the signaler's clock and re-acquires the mutex *)
        let mu = e.Sync.Event.aux in
        join_from cond_clocks id c;
        join_from lock_clocks mu c;
        held.(d) <- mu :: held.(d)
      | Sync.Event.Cond_signal | Sync.Event.Cond_broadcast ->
        (match Hashtbl.find_opt cond_clocks id with
        | Some r -> Vc.join r c
        | None -> Hashtbl.add cond_clocks id (Vc.copy c))
      | Sync.Event.Atomic_write | Sync.Event.Atomic_cas true ->
        (* read-modify-write: both-ways join, the atomic's clock
           becomes the join of every writer so far *)
        join_from atomic_clocks id c;
        store_copy atomic_clocks id c
      | Sync.Event.Atomic_read | Sync.Event.Atomic_cas false ->
        join_from atomic_clocks id c
      | Sync.Event.Spawn -> store_copy spawn_clocks id c
      | Sync.Event.Child_run -> join_from spawn_clocks id c
      | Sync.Event.Join -> (
        (* [obj] is the raw child domain id; its events all precede
           this one in the log, so its current clock is final *)
        match Hashtbl.find_opt dom_ids id with
        | Some child -> Vc.join c clocks.(child)
        | None -> ())
      | Sync.Event.Plain_read ->
        let cell = get_cell id e.Sync.Event.name in
        let cur = { a_dom = d; a_clock = Vc.copy c; a_seq = seq_of e } in
        (match cell.c_last_write with
        | Some w
          when w.a_dom <> d
               && not
                    (Vc.ordered ~writer_clock:w.a_clock ~writer_dom:w.a_dom
                       ~reader_clock:c) ->
          race cell w cur
        | _ -> ());
        cell.c_reads <-
          (d, cur) :: List.filter (fun (d', _) -> d' <> d) cell.c_reads;
        cell.c_lockset <-
          Some
            (match cell.c_lockset with
            | None -> held.(d)
            | Some ls -> intersect ls held.(d));
        if not (List.mem d cell.c_domains) then
          cell.c_domains <- d :: cell.c_domains
      | Sync.Event.Plain_write ->
        let cell = get_cell id e.Sync.Event.name in
        let cur = { a_dom = d; a_clock = Vc.copy c; a_seq = seq_of e } in
        (match cell.c_last_write with
        | Some w
          when w.a_dom <> d
               && not
                    (Vc.ordered ~writer_clock:w.a_clock ~writer_dom:w.a_dom
                       ~reader_clock:c) ->
          race cell w cur
        | _ -> ());
        List.iter
          (fun (d', (r : access)) ->
            if
              d' <> d
              && not
                   (Vc.ordered ~writer_clock:r.a_clock ~writer_dom:d'
                      ~reader_clock:c)
            then race cell r cur)
          cell.c_reads;
        cell.c_last_write <- Some cur;
        cell.c_written <- true;
        cell.c_lockset <-
          Some
            (match cell.c_lockset with
            | None -> held.(d)
            | Some ls -> intersect ls held.(d));
        if not (List.mem d cell.c_domains) then
          cell.c_domains <- d :: cell.c_domains);
      c.(d) <- c.(d) + 1)
    log;
  (* Eraser screen: shared, written, no common lock, and not already
     reported as a concrete race *)
  let lockset_warnings = ref [] in
  Hashtbl.iter
    (fun _ cell ->
      if
        cell.c_written
        && List.length cell.c_domains > 1
        && cell.c_lockset = Some []
        && not cell.c_raced
      then begin
        lockset_warnings := cell.c_name :: !lockset_warnings;
        diags :=
          D.diagf ~code:"RF411" D.Warning (D.Sync cell.c_name)
            "written from %d domains with an empty common lockset; this \
             schedule happened to order every access, others may not"
            (List.length cell.c_domains)
          :: !diags
      end)
    cells;
  ( {
      races = List.rev !races;
      lockset_warnings = List.sort String.compare !lockset_warnings;
      events = List.length log;
      domains = ndom;
      cells = Hashtbl.length cells;
    },
    List.sort D.compare !diags )
