(** Dynamic race detection over {!Rfloor_sync} event logs.

    A FastTrack-style vector-clock pass replays the log (whose order
    the sync layer guarantees equals execution order), building
    happens-before edges from mutex release/acquire pairs, atomic
    writes and successful CASes, condition signal/wait, and domain
    spawn/join.  The accesses it checks are the [Plain_read] /
    [Plain_write] events of {!Rfloor_sync.Shared} cells; a pair of
    conflicting, unordered accesses from different domains is a data
    race ([RF410]).

    An Eraser-style lockset screen runs alongside: a cell written from
    several domains whose accesses share no common lock draws a
    warning ([RF411]) even when this particular schedule ordered every
    pair. *)

type report = {
  races : (string * int * int) list;
      (** cell name and the two unordered event sequence numbers *)
  lockset_warnings : string list;  (** cell names, sorted *)
  events : int;
  domains : int;
  cells : int;  (** distinct shared cells touched *)
}

val analyze :
  Rfloor_sync.Event.t list -> report * Rfloor_diag.Diagnostic.t list
(** Diagnostics are deduplicated to one per shared cell and sorted. *)
