(** Static source lint for raw synchronization primitives
    ([RF401]..[RF403]).

    Flags [Mutex.]/[Condition.]/[Atomic.] module-path uses that
    resolve to the standard library — unqualified, or rooted at
    [Stdlib] — anywhere outside [lib/sync], the one module allowed to
    touch the raw primitives.  Qualified uses ([Rfloor_sync.Mutex.t],
    [Sync.Atomic.get]) pass.  Comments and string literals are
    stripped (line numbers preserved) before scanning. *)

val scan_text : path:string -> string -> Rfloor_diag.Diagnostic.t list
(** Scan one source text; [path] is used for locations only. *)

val scan_file : string -> Rfloor_diag.Diagnostic.t list

val scan_roots : string list -> Rfloor_diag.Diagnostic.t list
(** Scan every [.ml]/[.mli] under the given directories (files are
    accepted too), skipping [_build], [.git] and any directory named
    [sync].  Missing roots are ignored. *)
