(* Deterministic interleaving exploration by stateless replay.

   A scenario is a recipe for fresh state plus a list of threads, each
   a [unit -> bool] step function over that state (true = performed a
   step, false = already finished — and a finished thread's step must
   be a no-op).  The explorer enumerates every interleaving of the
   threads' steps by depth-first search over schedule prefixes,
   re-executing each prefix from a fresh state — the state itself
   never needs to be snapshotted or undone, so scenarios can close
   over arbitrary mutable structures (including the real service
   cache).

   Steps must be non-blocking: whatever a thread would wait for has to
   be modeled at whole-critical-section granularity (one step = one
   lock/act/unlock) or CAS granularity.  That is exactly the
   granularity at which the production code's interleavings differ.

   An optional state fingerprint enables DPOR-lite pruning: two
   prefixes with the same per-thread progress and the same fingerprint
   reach identical subtrees, so the second is skipped.  This keeps the
   4-5 step scenarios below a few thousand replays. *)

module D = Rfloor_diag.Diagnostic

type scenario = {
  name : string;
  threads : unit -> (unit -> bool) list;
      (** allocate fresh state and return its step functions *)
  check : unit -> (unit, string) result;
      (** safety property of the state allocated by the latest
          [threads] call, evaluated at every terminal schedule *)
  fingerprint : (unit -> string) option;
      (** digest of the latest state, for pruning; must capture
          everything the remaining steps and [check] depend on *)
}

type outcome = {
  o_name : string;
  o_schedules : int;  (** terminal schedules checked *)
  o_replays : int;  (** prefix replays performed (cost measure) *)
  o_pruned : int;  (** subtrees skipped by fingerprint memoization *)
  o_violation : (int list * string) option;
      (** first failing schedule (thread indices) and the message *)
  o_exhausted : bool;  (** false iff the replay budget ran out *)
}

let explore ?(max_replays = 2_000_000) (s : scenario) : outcome =
  let replays = ref 0 in
  let schedules = ref 0 in
  let pruned = ref 0 in
  let violation = ref None in
  let exhausted = ref true in
  let memo : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  (* Replay [prefix] (oldest step first) from fresh state; returns the
     step functions with their internal positions advanced. *)
  let replay prefix =
    incr replays;
    let ths = Array.of_list (s.threads ()) in
    List.iter (fun i -> ignore (ths.(i) ())) prefix;
    ths
  in
  let n = List.length (s.threads ()) in
  (* [prefix] is newest-first; [counts] is per-thread steps taken *)
  let rec dfs prefix counts =
    if !violation <> None || not !exhausted then ()
    else if !replays > max_replays then exhausted := false
    else begin
      let sched = List.rev prefix in
      (* Probe each thread on its own replay: [true] means the thread
         is still running, and the replayed state then reflects
         [sched @ [i]] — exactly what the fingerprint needs. *)
      let enabled = ref [] in
      for i = n - 1 downto 0 do
        let ths = replay sched in
        if ths.(i) () then begin
          let fp_key =
            match s.fingerprint with
            | None -> None
            | Some fp ->
              Some
                (String.concat ","
                   (List.mapi
                      (fun j c -> string_of_int (if j = i then c + 1 else c))
                      counts)
                ^ "|" ^ fp ())
          in
          enabled := (i, fp_key) :: !enabled
        end
      done;
      match !enabled with
      | [] ->
        incr schedules;
        ignore (replay sched);
        (match s.check () with
        | Ok () -> ()
        | Error msg -> violation := Some (sched, msg))
      | en ->
        List.iter
          (fun (i, fp_key) ->
            if !violation = None && !exhausted then begin
              let skip =
                match fp_key with
                | None -> false
                | Some key ->
                  if Hashtbl.mem memo key then true
                  else begin
                    Hashtbl.add memo key ();
                    false
                  end
              in
              if skip then incr pruned
              else
                dfs (i :: prefix)
                  (List.mapi (fun j c -> if j = i then c + 1 else c) counts)
            end)
          en
    end
  in
  dfs [] (List.init n (fun _ -> 0));
  {
    o_name = s.name;
    o_schedules = !schedules;
    o_replays = !replays;
    o_pruned = !pruned;
    o_violation = !violation;
    o_exhausted = !exhausted;
  }

let pp_schedule ppf sched =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (List.map string_of_int sched))

let diagnostics (o : outcome) : D.t list =
  let d = [] in
  let d =
    if o.o_exhausted then d
    else
      D.diagf ~code:"RF421" D.Error (D.Schedule o.o_name)
        "replay budget exceeded after %d replays (%d schedules checked); \
         shrink the scenario or raise the budget"
        o.o_replays o.o_schedules
      :: d
  in
  match o.o_violation with
  | None -> d
  | Some (sched, msg) ->
    D.diagf ~code:"RF420" D.Error (D.Schedule o.o_name)
      "schedule %a violates the safety property: %s" pp_schedule sched msg
    :: d
