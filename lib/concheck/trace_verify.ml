(* Causal-invariant verification of JSONL solve traces (RF430..RF435).

   The tracer's own [validate_jsonl] checks shape (parsable lines,
   balanced span counts).  This pass checks *meaning*:

   - spans must nest properly per worker, not merely balance (RF431);
   - each worker's timestamps must be monotone (RF432) — workers
     write through one locked sink, but each event's timestamp is
     taken before the lock, so only the per-worker subsequences are
     ordered;
   - incumbent objectives must be monotone within one branch-and-bound
     segment, judged per worker (RF433): the global CAS order makes
     every worker's subsequence monotone, but cross-worker event
     order in the file can legally invert the global sequence;
   - counters must be conserved within a segment (RF434): nodes at
     depth d can only come from branching nodes at depth d-1 (at most
     two each), and donated tasks can only be the root or children of
     explored nodes;
   - one stop per reason per segment (RF435).

   A "segment" is one [Span_start Branch_bound] .. [Span_end
   Branch_bound] window; events outside any segment are exempt from
   the solver-specific checks (other engines emit their own event
   mixes), but never from RF431/RF432. *)

module T = Rfloor_trace
module D = Rfloor_diag.Diagnostic

type stats = {
  v_lines : int;  (** non-blank lines *)
  v_events : int;  (** parsed events *)
  v_segments : int;  (** branch-and-bound segments *)
  v_workers : int;  (** distinct worker ids *)
}

(* per-(segment, worker) incumbent histories and the like are small;
   assoc lists keep this dependency-free *)
let assoc_update k ~default f l =
  let cur = Option.value ~default (List.assoc_opt k l) in
  (k, f cur) :: List.remove_assoc k l

let monotone objs =
  (* consistent direction, non-strict; [objs] oldest first *)
  let rec dir = function
    | a :: (b :: _ as rest) ->
      if b > a then Some `Up else if b < a then Some `Down else dir rest
    | _ -> None
  in
  match dir objs with
  | None -> true
  | Some d ->
    let ok (a, b) = match d with `Up -> b >= a | `Down -> b <= a in
    let rec pairs = function
      | a :: (b :: _ as rest) -> ok (a, b) && pairs rest
      | _ -> true
    in
    pairs objs

let verify text =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let lines = ref 0 in
  let events = ref 0 in
  let seg = ref (-1) in
  let in_seg = ref false in
  let workers = ref [] in
  (* RF431: per-worker stack of open phases, with the opening line *)
  let spans : (int * (T.Event.phase * int) list) list ref = ref [] in
  (* RF432: per-worker last timestamp *)
  let last_at : (int * (float * int)) list ref = ref [] in
  (* RF433: (seg, worker) -> objectives, newest first *)
  let incumbents : ((int * int) * float list) list ref = ref [] in
  (* RF434: seg -> (depth -> node count), seg -> donated tasks *)
  let depth_counts : (int * (int * int) list) list ref = ref [] in
  let donated : (int * int) list ref = ref [] in
  (* RF435: (seg, reason) -> line of first stop *)
  let stops : ((int * string) * int) list ref = ref [] in
  List.iteri
    (fun idx line ->
      let ln = idx + 1 in
      let line = String.trim line in
      if line <> "" then begin
        incr lines;
        match T.Event.of_json line with
        | Error msg ->
          add (D.diagf ~code:"RF430" D.Error (D.Trace ln) "%s" msg)
        | Ok e ->
          incr events;
          let w = e.T.Event.worker in
          if not (List.mem w !workers) then workers := w :: !workers;
          (* RF432 *)
          (match List.assoc_opt w !last_at with
          | Some (prev, prev_ln) when e.T.Event.at < prev ->
            add
              (D.diagf ~code:"RF432" D.Error (D.Trace ln)
                 "worker %d timestamp %.6f precedes %.6f (line %d)" w
                 e.T.Event.at prev prev_ln)
          | _ -> ());
          last_at := (w, (e.T.Event.at, ln)) :: List.remove_assoc w !last_at;
          (match e.T.Event.payload with
          | T.Event.Span_start p ->
            if p = T.Event.Branch_bound then begin
              incr seg;
              in_seg := true
            end;
            spans := assoc_update w ~default:[] (fun st -> (p, ln) :: st) !spans
          | T.Event.Span_end p ->
            (match Option.value ~default:[] (List.assoc_opt w !spans) with
            | (top, _) :: rest when top = p ->
              spans := (w, rest) :: List.remove_assoc w !spans
            | (top, top_ln) :: _ ->
              add
                (D.diagf ~code:"RF431" D.Error (D.Trace ln)
                   "worker %d ends span %s while %s (line %d) is innermost" w
                   (T.Event.phase_name p) (T.Event.phase_name top) top_ln)
            | [] ->
              add
                (D.diagf ~code:"RF431" D.Error (D.Trace ln)
                   "worker %d ends span %s with no span open" w
                   (T.Event.phase_name p)));
            if p = T.Event.Branch_bound then in_seg := false
          | T.Event.Incumbent { objective; _ } ->
            if !in_seg then
              incumbents :=
                assoc_update (!seg, w) ~default:[]
                  (fun l -> objective :: l)
                  !incumbents
          | T.Event.Node_explored { depth; _ } ->
            if !in_seg then
              depth_counts :=
                assoc_update !seg ~default:[]
                  (fun per -> assoc_update depth ~default:0 (fun c -> c + 1) per)
                  !depth_counts
          | T.Event.Steal { tasks } ->
            if !in_seg then
              donated :=
                assoc_update !seg ~default:0 (fun c -> c + tasks) !donated
          | T.Event.Stopped { reason } ->
            if !in_seg then begin
              match List.assoc_opt (!seg, reason) !stops with
              | Some first_ln ->
                add
                  (D.diagf ~code:"RF435" D.Error (D.Trace ln)
                     "duplicate Stopped %S in segment %d (first at line %d)"
                     reason !seg first_ln)
              | None -> stops := ((!seg, reason), ln) :: !stops
            end
          | _ -> ())
      end)
    (String.split_on_char '\n' text);
  (* RF431: spans left open *)
  List.iter
    (fun (w, st) ->
      List.iter
        (fun (p, ln) ->
          add
            (D.diagf ~code:"RF431" D.Error (D.Trace ln)
               "worker %d span %s never ends" w (T.Event.phase_name p)))
        st)
    !spans;
  (* RF433 *)
  List.iter
    (fun ((s, w), objs) ->
      if not (monotone (List.rev objs)) then
        add
          (D.diagf ~code:"RF433" D.Error (D.Sync (Printf.sprintf "segment %d" s))
             "worker %d incumbent objectives are not monotone: %s" w
             (String.concat " -> "
                (List.rev_map (Printf.sprintf "%.6g") objs))))
    !incumbents;
  (* RF434: depth conservation and donation bound, per segment *)
  List.iter
    (fun (s, per) ->
      let count d = Option.value ~default:0 (List.assoc_opt d per) in
      List.iter
        (fun (d, c) ->
          if d > 0 && c > 2 * count (d - 1) then
            add
              (D.diagf ~code:"RF434" D.Error
                 (D.Sync (Printf.sprintf "segment %d" s))
                 "%d nodes at depth %d but only %d at depth %d (max two \
                  children per branching node)"
                 c d (count (d - 1)) (d - 1)))
        per)
    !depth_counts;
  List.iter
    (fun (s, tasks) ->
      let nodes =
        List.fold_left
          (fun acc (_, c) -> acc + c)
          0
          (Option.value ~default:[] (List.assoc_opt s !depth_counts))
      in
      if tasks > 1 + (2 * nodes) then
        add
          (D.diagf ~code:"RF434" D.Error
             (D.Sync (Printf.sprintf "segment %d" s))
             "%d tasks donated but only %d nodes explored can have created \
              them"
             tasks nodes))
    !donated;
  ( {
      v_lines = !lines;
      v_events = !events;
      v_segments = !seg + 1;
      v_workers = List.length !workers;
    },
    List.sort D.compare !diags )
