(** Causal-invariant verification of JSONL solve traces
    ([RF430]..[RF435]).

    Goes beyond the tracer's shape validation: spans must nest
    properly per worker (not just balance), per-worker timestamps must
    be monotone, incumbent objectives must be monotone within one
    branch-and-bound segment judged per worker, node counts per depth
    and donated-task totals must be conserved within a segment, and
    each stop reason may appear at most once per segment.

    A segment is one [branch_bound] span window; events outside any
    segment are exempt from the solver-specific checks (other engines
    emit different event mixes) but still subject to nesting and
    timestamp checks. *)

type stats = {
  v_lines : int;
  v_events : int;
  v_segments : int;
  v_workers : int;
}

val verify : string -> stats * Rfloor_diag.Diagnostic.t list
(** [verify jsonl_text] returns summary statistics and the sorted
    findings (empty = the trace satisfies every invariant). *)
