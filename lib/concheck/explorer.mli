(** Exhaustive deterministic interleaving exploration of small
    concurrent scenarios, by stateless replay.

    Threads are modeled as [unit -> bool] step functions over shared
    mutable state allocated by {!scenario.threads}: [true] means the
    thread performed one step, [false] that it has finished (a
    finished thread's step must be a no-op).  Steps must be
    non-blocking — model lock-protected code at
    whole-critical-section granularity, lock-free code at CAS
    granularity.

    The explorer runs every interleaving of the steps (depth-first
    over schedule prefixes, re-executing each prefix from fresh
    state), evaluates {!scenario.check} at every terminal schedule,
    and reports the first violating schedule.  The optional
    fingerprint prunes converged prefixes (same per-thread progress,
    same state digest ⇒ same subtree). *)

type scenario = {
  name : string;
  threads : unit -> (unit -> bool) list;
  check : unit -> (unit, string) result;
  fingerprint : (unit -> string) option;
}

type outcome = {
  o_name : string;
  o_schedules : int;
  o_replays : int;
  o_pruned : int;
  o_violation : (int list * string) option;
  o_exhausted : bool;
}

val explore : ?max_replays:int -> scenario -> outcome
(** Default budget: 2,000,000 replays.  Exploration stops at the
    first violation or when the budget runs out ([o_exhausted =
    false]). *)

val diagnostics : outcome -> Rfloor_diag.Diagnostic.t list
(** [RF420] for a violation, [RF421] for an exceeded budget; empty
    when the scenario exhausted cleanly. *)
