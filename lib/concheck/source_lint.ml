(* RF401..RF403: raw synchronization primitives outside lib/sync.

   Everything concurrent in this repo is supposed to build its
   mutexes, condition variables and atomics from [Rfloor_sync], so the
   recorder can see them.  This pass scans OCaml sources for the
   tokens [Mutex], [Condition] and [Atomic] used as a module path
   root: an occurrence is flagged when it is unqualified (resolving to
   the standard library) or explicitly rooted at [Stdlib].  Qualified
   uses like [Sync.Mutex.lock] or type annotations like
   [Rfloor_sync.Mutex.t] pass, because there the token is preceded by
   a ['.'] whose qualifier is not [Stdlib].

   Comments (nested) and string literals are stripped first, with line
   structure preserved, so prose and log messages never trip the
   lint.  Character literals and prime-suffixed identifiers ([foo'])
   are handled when deciding whether a quote opens a char literal. *)

module D = Rfloor_diag.Diagnostic

(* Blank out comments and string literals, keeping every '\n' so line
   numbers survive. *)
let strip source =
  let n = String.length source in
  let b = Buffer.create n in
  let i = ref 0 in
  let keep c = Buffer.add_char b c in
  let blank c = Buffer.add_char b (if c = '\n' then '\n' else ' ') in
  let is_ident c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
    | _ -> false
  in
  let rec comment depth =
    if !i >= n then ()
    else begin
      let c = source.[!i] in
      if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
        blank c;
        blank '*';
        i := !i + 2;
        comment (depth + 1)
      end
      else if c = '*' && !i + 1 < n && source.[!i + 1] = ')' then begin
        blank c;
        blank ')';
        i := !i + 2;
        if depth > 1 then comment (depth - 1)
      end
      else begin
        blank c;
        incr i;
        comment depth
      end
    end
  in
  let string_lit () =
    (* opening quote already consumed and blanked *)
    let fin = ref false in
    while not !fin && !i < n do
      let c = source.[!i] in
      if c = '\\' && !i + 1 < n then begin
        blank c;
        blank source.[!i + 1];
        i := !i + 2
      end
      else begin
        blank c;
        incr i;
        if c = '"' then fin := true
      end
    done
  in
  while !i < n do
    let c = source.[!i] in
    if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then comment 0
    else if c = '"' then begin
      blank c;
      incr i;
      string_lit ()
    end
    else if c = '\'' then begin
      (* char literal iff not an identifier prime and the quote closes
         within a literal's width: 'x' (3), '\n' (4), '\065'/'\xFF' (6) *)
      let prev_ident = !i > 0 && is_ident source.[!i - 1] in
      let close_at =
        if prev_ident || !i + 2 >= n then None
        else if source.[!i + 1] <> '\\' && source.[!i + 2] = '\'' then
          Some (!i + 2)
        else if source.[!i + 1] = '\\' then begin
          let k = ref (!i + 2) in
          while !k < n && !k <= !i + 5 && source.[!k] <> '\'' do
            incr k
          done;
          if !k < n && source.[!k] = '\'' then Some !k else None
        end
        else None
      in
      match close_at with
      | Some last ->
        for j = !i to last do
          blank source.[j]
        done;
        i := last + 1
      | None ->
        keep c;
        incr i
    end
    else begin
      keep c;
      incr i
    end
  done;
  Buffer.contents b

let raw_modules = [ ("Mutex", "RF401"); ("Condition", "RF402"); ("Atomic", "RF403") ]

let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* the identifier just before [pos] (skipping nothing else); "" if the
   preceding char is not part of one *)
let ident_before text pos =
  let j = ref pos in
  while !j > 0 && is_ident_char text.[!j - 1] do
    decr j
  done;
  String.sub text !j (pos - !j)

let scan_text ~path text =
  let text = strip text in
  let n = String.length text in
  let line = ref 1 in
  let diags = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if
      (match c with 'A' .. 'Z' -> true | _ -> false)
      && ((!i = 0) || not (is_ident_char text.[!i - 1]))
    then begin
      let j = ref !i in
      while !j < n && is_ident_char text.[!j] do
        incr j
      done;
      let token = String.sub text !i (!j - !i) in
      (match List.assoc_opt token raw_modules with
      | None -> ()
      | Some code ->
        (* qualified occurrence: OK unless the qualifier root is
           Stdlib; unqualified: flagged *)
        let flagged =
          if !i >= 1 && text.[!i - 1] = '.' then
            String.equal (ident_before text (!i - 1)) "Stdlib"
          else true
        in
        (* a bare token that is not itself used as a module path
           (no following '.') is someone's constructor or module
           definition, not a primitive use *)
        let used_as_path = !j < n && text.[!j] = '.' in
        if flagged && used_as_path then
          diags :=
            D.diagf ~code D.Error
              (D.Source (path, !line))
              "raw %s primitive; use Rfloor_sync.%s so the recorder can see \
               it"
              token token
            :: !diags);
      i := !j
    end
    else incr i
  done;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Filesystem walk *)

let is_ml_file name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

let excluded_dir name =
  match name with
  | "_build" | ".git" | "sync" -> true (* lib/sync is the one allowed home *)
  | _ -> false

let rec walk acc path =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if excluded_dir entry then acc
        else walk acc (Filename.concat path entry))
      acc entries
  end
  else if is_ml_file path then path :: acc
  else acc

let scan_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  scan_text ~path text

let scan_roots roots =
  let files =
    List.concat_map
      (fun root -> if Sys.file_exists root then List.rev (walk [] root) else [])
      roots
  in
  List.concat_map scan_file files
