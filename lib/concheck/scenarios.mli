(** The concurrency scenarios this repo worries about, as
    {!Explorer.scenario}s, plus self-tests that prove the analyzers
    still catch seeded bugs.

    Scenarios mirror real structures at the granularity where their
    interleavings differ: the incumbent CAS loop of [Parallel_bb], its
    work deque, the service LRU cache (exercised directly, not
    modeled) and the pool's cooperative cancel-vs-drain handoff. *)

val incumbent_cas : blind:bool -> int list -> Explorer.scenario
(** Concurrent minimization of a shared incumbent.  [blind:true]
    replaces the CAS with a write-after-stale-read — the lost-update
    bug the explorer must be able to find. *)

val deque_steal_vs_pop : int list -> Explorer.scenario
(** One producer, two claiming consumers over a shared deque;
    every task must be consumed exactly once. *)

val lru_hit_vs_evict : unit -> Explorer.scenario
(** Writer inserting three entries into a capacity-2
    {!Rfloor_service.Cache} races a reader hitting the first two keys;
    size bound, key uniqueness and hit coherence must hold under every
    schedule. *)

val cancel_vs_drain : steps:int -> Explorer.scenario
(** A worker polling a cancel flag between unit steps races the
    canceller; the job finishes exactly once and "stopped" implies the
    flag was set. *)

val all : seed:int -> Explorer.scenario list
(** The correct-by-construction suite, with scenario data varied
    deterministically by [seed]. *)

val run_all :
  ?max_replays:int ->
  seed:int ->
  unit ->
  Explorer.outcome list * Rfloor_diag.Diagnostic.t list
(** Explores {!all} plus the deliberately broken incumbent variant.
    Diagnostics are empty iff every correct scenario exhausted its
    schedules violation-free {e and} the broken variant was caught. *)

type self_test = {
  st_name : string;
  st_expected : string;
  st_pass : bool;
  st_detail : string;
}

val detector_self_test :
  unit -> self_test list * Rfloor_diag.Diagnostic.t list
(** Runs real two-domain workloads under the {!Rfloor_sync.Recorder}
    and checks the race detector both ways: unsynchronized writes must
    race, mutex-protected writes must not, and CAS-spinlock-protected
    writes must draw exactly the empty-lockset warning.  Installs and
    removes the global recorder. *)
