type severity = Error | Warning | Info

type location =
  | Device
  | Portion of int
  | Region of string
  | Reloc of string
  | Area of string * int
  | Variable of string
  | Constraint of string
  | Family of string
  | Design
  | Model
  | File of string
  | Env of string
  | Source of string * int
  | Sync of string
  | Schedule of string
  | Trace of int
  | Strategy of string
  | Http of string
  | Layout of string

type t = {
  code : string;
  severity : severity;
  location : location;
  message : string;
}

let diagf ~code severity location fmt =
  Format.kasprintf (fun message -> { code; severity; location; message }) fmt

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let location_to_string = function
  | Device -> "device"
  | Portion i -> Printf.sprintf "portion %d" i
  | Region r -> Printf.sprintf "region(%s)" r
  | Reloc r -> Printf.sprintf "reloc(%s)" r
  | Area (r, i) -> Printf.sprintf "area(%s/%d)" r i
  | Variable v -> Printf.sprintf "var(%s)" v
  | Constraint c -> Printf.sprintf "row(%s)" c
  | Family f -> Printf.sprintf "family(%s)" f
  | Design -> "design"
  | Model -> "model"
  | File p -> Printf.sprintf "file(%s)" p
  | Env v -> Printf.sprintf "env(%s)" v
  | Source (f, l) -> Printf.sprintf "%s:%d" f l
  | Sync o -> Printf.sprintf "sync(%s)" o
  | Schedule s -> Printf.sprintf "schedule(%s)" s
  | Trace l -> Printf.sprintf "trace line %d" l
  | Strategy s -> Printf.sprintf "strategy(%s)" s
  | Http h -> Printf.sprintf "http(%s)" h
  | Layout m -> Printf.sprintf "layout(%s)" m

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
    match Stdlib.compare a.code b.code with
    | 0 -> Stdlib.compare a.message b.message
    | c -> c)
  | c -> c

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let pp ppf d =
  Format.fprintf ppf "%s %-7s %s: %s" d.code
    (severity_to_string d.severity)
    (location_to_string d.location)
    d.message

(* minimal atom quoting for the s-expression output *)
let sexp_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_char buf '\\'; Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let location_to_sexp = function
  | Device -> "(device)"
  | Portion i -> Printf.sprintf "(portion %d)" i
  | Region r -> Printf.sprintf "(region %s)" (sexp_string r)
  | Reloc r -> Printf.sprintf "(reloc %s)" (sexp_string r)
  | Area (r, i) -> Printf.sprintf "(area %s %d)" (sexp_string r) i
  | Variable v -> Printf.sprintf "(variable %s)" (sexp_string v)
  | Constraint c -> Printf.sprintf "(constraint %s)" (sexp_string c)
  | Family f -> Printf.sprintf "(family %s)" (sexp_string f)
  | Design -> "(design)"
  | Model -> "(model)"
  | File p -> Printf.sprintf "(file %s)" (sexp_string p)
  | Env v -> Printf.sprintf "(env %s)" (sexp_string v)
  | Source (f, l) -> Printf.sprintf "(source %s %d)" (sexp_string f) l
  | Sync o -> Printf.sprintf "(sync %s)" (sexp_string o)
  | Schedule s -> Printf.sprintf "(schedule %s)" (sexp_string s)
  | Trace l -> Printf.sprintf "(trace %d)" l
  | Strategy s -> Printf.sprintf "(strategy %s)" (sexp_string s)
  | Http h -> Printf.sprintf "(http %s)" (sexp_string h)
  | Layout m -> Printf.sprintf "(layout %s)" (sexp_string m)

let to_sexp d =
  Printf.sprintf "((code %s) (severity %s) (location %s) (message %s))" d.code
    (severity_to_string d.severity)
    (location_to_sexp d.location)
    (sexp_string d.message)

let summary ds =
  let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  Printf.sprintf "%s, %s, %s"
    (plural (count Error ds) "error")
    (plural (count Warning ds) "warning")
    (plural (count Info ds) "info")

let pp_report ppf ds =
  let ds = List.sort compare ds in
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
  Format.fprintf ppf "%s@." (summary ds)

let report_to_sexp ds =
  let ds = List.sort compare ds in
  Printf.sprintf "(%s)" (String.concat "\n " (List.map to_sexp ds))

let all_codes =
  [
    ("RF001", Error, "columnar portions violate Property .4 (left-to-right order / full-width tiling)");
    ("RF002", Error, "adjacent columnar portions share a tile type (Property .3)");
    ("RF003", Error, "forbidden area outside the device bounds");
    ("RF004", Error, "a region's demand exceeds the device's usable tiles of some kind");
    ("RF005", Error, "summed region demands exceed the device's usable tiles of some kind");
    ("RF006", Error, "relocation request provably unsatisfiable: fewer compatible windows than requested areas");
    ("RF007", Warning, "relocation request likely unsatisfiable: disjoint-window estimate below requested areas");
    ("RF008", Error, "dangling reference: net endpoint or relocation target names no region");
    ("RF009", Error, "region unplaceable: no rectangle on the device satisfies its demand");
    ("RF010", Error, "device not columnar-partitionable (mixed column or entirely-forbidden column)");
    ("RF101", Info, "empty constraint row (no terms after normalization)");
    ("RF102", Warning, "duplicate constraint row (same terms, sense and right-hand side)");
    ("RF103", Info, "dominated constraint row (same terms and sense, weaker right-hand side)");
    ("RF104", Info, "variables fixed by equal lower and upper bounds");
    ("RF105", Warning, "integer variable with an infinite bound (unbranchable box)");
    ("RF106", Error, "row infeasible under variable bounds (or conflicting equality rows)");
    ("RF107", Warning, "ill-conditioned constraint family: coefficient magnitude spread suggests a degenerate big-M");
    ("RF201", Error, "free-compatible area height differs from its region (Eq. 6)");
    ("RF202", Error, "free-compatible area covers a different number of portions than its region (Eq. 7)");
    ("RF203", Error, "free-compatible area tile-type sequence differs from its region (Eq. 8/10)");
    ("RF204", Error, "free-compatible area per-portion tile counts differ from its region (Eq. 9)");
    ("RF205", Error, "free-compatible area is not free (overlap or out of bounds)");
    ("RF206", Error, "hard relocation request satisfied by fewer areas than requested");
    ("RF207", Info, "soft relocation request satisfied by fewer areas than requested");
    ("RF208", Error, "invalid placement (missing/duplicate region, overlap, forbidden, or unmet demand)");
    ("RF301", Error, "device file unreadable or malformed");
    ("RF302", Error, "design file unreadable or malformed");
    ("RF303", Error, "MPS model file unreadable or malformed");
    ("RF304", Warning, "RFLOOR_BENCH_BUDGET malformed or non-positive; defaulted/clamped");
    ("RF401", Error, "raw Mutex primitive used outside lib/sync (use Rfloor_sync.Mutex)");
    ("RF402", Error, "raw Condition primitive used outside lib/sync (use Rfloor_sync.Condition)");
    ("RF403", Error, "raw Atomic primitive used outside lib/sync (use Rfloor_sync.Atomic)");
    ("RF410", Error, "data race: conflicting unordered accesses to a shared cell (vector-clock analysis)");
    ("RF411", Warning, "shared cell accessed by several domains with an empty common lockset");
    ("RF420", Error, "interleaving explorer found a schedule violating a scenario safety property");
    ("RF421", Error, "interleaving explorer exceeded its schedule budget before exhausting the scenario");
    ("RF430", Error, "trace event line unparsable during verification");
    ("RF431", Error, "trace span nesting unbalanced or out of order");
    ("RF432", Error, "per-worker trace timestamps not monotone");
    ("RF433", Error, "incumbent objective not monotone within a branch-and-bound segment");
    ("RF434", Error, "trace counter conservation violated (nodes vs. spans, steal tasks vs. frontier)");
    ("RF435", Error, "duplicate Stopped event for one stop reason within a solve segment");
    ("RF501", Warning, "portfolio member budget exceeds the portfolio budget; clamped to the global deadline");
    ("RF502", Error, "strategy string unparsable (expected milp[:W] | milp-ho[:W] | combinatorial | lns[:SEED] | portfolio:[...], optional @SECONDS budget)");
    ("RF601", Error, "telemetry endpoint unusable (bad --telemetry port, or bind/listen failed)");
    ("RF602", Warning, "malformed HTTP request on the telemetry endpoint; answered 400 and kept serving");
    ("RF603", Warning, "progress interval malformed or out of range; clamped/defaulted");
    ("RF701", Error, "online arrival rejected: no free-compatible rectangle, and defragmentation cannot admit it");
    ("RF702", Error, "online request names a duplicate or unknown module");
    ("RF703", Error, "online request before a layout device was established");
    ("RF704", Warning, "defragmentation fell back to a full re-placement solve (no-break guarantee waived)");
    ("RF705", Error, "planned relocation refused by the bitstream relocation filter");
    ("RF706", Warning, "online search bound malformed or out of range; clamped/defaulted");
  ]

let describe code =
  List.find_map
    (fun (c, _, d) -> if String.equal c code then Some d else None)
    all_codes
