(** Diagnostics shared by every layer of the floorplanner.

    Every finding carries a stable code ([RF001]...), a severity, a
    location (region, portion, variable, constraint family, file, ...)
    and a human-readable message.  Reports render either as
    one-line-per-finding text or as s-expressions for tooling.

    This module lives in its own dependency-free library so that the
    loaders ({!Device.Io}), the partitioner ({!Device.Partition}), the
    model parsers ({!Milp.Mps}) and the static-analysis passes
    ({!Rfloor_analysis}) all speak the same error type; the CLI renders
    a parse failure and a lint finding identically. *)

type severity = Error | Warning | Info

type location =
  | Device  (** the device / partition as a whole *)
  | Portion of int  (** columnar portion, 1-based index *)
  | Region of string
  | Reloc of string  (** relocation request, by target region *)
  | Area of string * int  (** free-compatible area: region, copy index *)
  | Variable of string  (** MILP variable, by name *)
  | Constraint of string  (** MILP row, by name *)
  | Family of string  (** MILP constraint family (name stem) *)
  | Design  (** the design spec as a whole *)
  | Model  (** the MILP as a whole *)
  | File of string  (** an input file, by path (loaders/parsers) *)
  | Env of string  (** an environment variable, by name *)
  | Source of string * int  (** a source location: path, 1-based line *)
  | Sync of string  (** a synchronization object, by registration name *)
  | Schedule of string  (** an interleaving-explorer scenario, by name *)
  | Trace of int  (** a JSONL trace line, 1-based *)
  | Strategy of string  (** a solver strategy, by its string form *)
  | Http of string  (** telemetry HTTP plane: a port, path or peer *)
  | Layout of string  (** an online layout entry, by module name *)

type t = {
  code : string;
  severity : severity;
  location : location;
  message : string;
}

val diagf :
  code:string ->
  severity ->
  location ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [diagf ~code sev loc fmt ...] builds a diagnostic with a formatted
    message. *)

val severity_to_string : severity -> string
val location_to_string : location -> string
val compare : t -> t -> int
(** Orders by severity (errors first), then code, then message. *)

val errors : t list -> t list
val has_errors : t list -> bool
val count : severity -> t list -> int

val pp : Format.formatter -> t -> unit
(** One line: [RF006 error   reloc(Signal Decoder): message]. *)

val to_sexp : t -> string
(** [((code RF006) (severity error) (location (reloc "...")) (message "..."))]. *)

val pp_report : Format.formatter -> t list -> unit
(** Sorted findings, one per line, followed by a summary line. *)

val report_to_sexp : t list -> string
(** All findings as one s-expression list, sorted. *)

val summary : t list -> string
(** ["2 errors, 1 warning, 3 infos"]. *)

val describe : string -> string option
(** Short description of a diagnostic code, for [--codes] listings. *)

val all_codes : (string * severity * string) list
(** The full [RFxxx] table: code, worst severity it is emitted at, and
    a one-line description (the table documented in DESIGN.md). *)
