(** Exact combinatorial floorplanner.

    Branch-and-bound over explicit candidate rectangles.  Independent of
    the MILP formulation, it serves both as a cross-check (both engines
    must find equal optima) and as the fast engine for full-size
    devices.  Optimizes the paper's evaluation objective
    lexicographically: minimal wasted frames first, then minimal wire
    length among minimal-waste floorplans.

    Hard relocation requests (Section IV) are honoured during the
    search: a solution is complete only when every requested
    free-compatible area is placed.  Soft requests (Section V) are
    satisfied best-effort on the optimal floorplan afterwards; the MILP
    engine handles them natively. *)

type stop_reason =
  | Budget  (** time or node limit *)
  | Cancelled  (** the cooperative [cancel] token fired *)

type options = {
  time_limit : float option;  (** CPU seconds *)
  node_limit : int option;
  optimize_wirelength : bool;  (** run the second, wire-length phase *)
  region_order : string list option;
      (** placement order; default: decreasing frame demand *)
  trace : Rfloor_trace.t;
      (** Incumbent/restart events and per-stage [Branch_bound] spans;
          default {!Rfloor_trace.disabled}.  Per-node events are not
          emitted — this engine explores millions of tiny nodes. *)
  cancel : unit -> bool;
      (** Cooperative cancellation token, polled every 1024 nodes with
          the budget checks.  When it fires the search stops with
          [stop = Some Cancelled], keeping the best plan found.
          Default: never fires. *)
  on_improvement : (Device.Floorplan.t -> int -> unit) option;
      (** Called on every waste-improving incumbent with the plan (soft
          areas not yet added) and its wasted frames — lets a racing
          portfolio publish bounds while the search runs.  Called from
          the search loop: keep it cheap and thread-safe.  Default
          [None]. *)
}

val default_options : options

type outcome = {
  plan : Device.Floorplan.t option;
  wasted : int option;  (** wasted frames of [plan] *)
  wirelength : float option;
  optimal : bool;  (** proven optimal (not stopped by a budget) *)
  nodes : int;
  elapsed : float;
  stop : stop_reason option;
      (** Why the search ended early; [None] when it ran to
          completion (including a feasibility stop-at-first hit). *)
}

val add_soft_areas :
  Device.Partition.t -> Device.Spec.t -> Device.Floorplan.t ->
  Device.Floorplan.t
(** Greedy best-effort placement of the spec's soft free-compatible
    areas onto a complete floorplan (also used by {!Lns}). *)

val solve : ?options:options -> Device.Partition.t -> Device.Spec.t -> outcome
(** Full lexicographic optimization. *)

val feasible :
  ?options:options -> Device.Partition.t -> Device.Spec.t -> outcome
(** Stops at the first complete solution (the paper's feasibility test);
    [optimal = true] with [plan = None] is a proof of infeasibility. *)
