(** Exact combinatorial floorplanner.

    Branch-and-bound over explicit candidate rectangles.  Independent of
    the MILP formulation, it serves both as a cross-check (both engines
    must find equal optima) and as the fast engine for full-size
    devices.  Optimizes the paper's evaluation objective
    lexicographically: minimal wasted frames first, then minimal wire
    length among minimal-waste floorplans.

    Hard relocation requests (Section IV) are honoured during the
    search: a solution is complete only when every requested
    free-compatible area is placed.  Soft requests (Section V) are
    satisfied best-effort on the optimal floorplan afterwards; the MILP
    engine handles them natively. *)

type options = {
  time_limit : float option;  (** CPU seconds *)
  node_limit : int option;
  optimize_wirelength : bool;  (** run the second, wire-length phase *)
  region_order : string list option;
      (** placement order; default: decreasing frame demand *)
  trace : Rfloor_trace.t;
      (** Incumbent/restart events and per-stage [Branch_bound] spans;
          default {!Rfloor_trace.disabled}.  Per-node events are not
          emitted — this engine explores millions of tiny nodes. *)
}

val default_options : options

type outcome = {
  plan : Device.Floorplan.t option;
  wasted : int option;  (** wasted frames of [plan] *)
  wirelength : float option;
  optimal : bool;  (** proven optimal (not stopped by a budget) *)
  nodes : int;
  elapsed : float;
}

val solve : ?options:options -> Device.Partition.t -> Device.Spec.t -> outcome
(** Full lexicographic optimization. *)

val feasible :
  ?options:options -> Device.Partition.t -> Device.Spec.t -> outcome
(** Stops at the first complete solution (the paper's feasibility test);
    [optimal = true] with [plan = None] is a proof of infeasibility. *)
