open Device
module T = Rfloor_trace

type options = {
  seed : int;
  time_limit : float option;
  iter_limit : int option;
  trace : Rfloor_trace.t;
  cancel : unit -> bool;
  on_improvement : (Floorplan.t -> int -> unit) option;
}

let default_options =
  {
    seed = 1;
    time_limit = None;
    iter_limit = None;
    trace = Rfloor_trace.disabled;
    cancel = (fun () -> false);
    on_improvement = None;
  }

(* splitmix64: deterministic across platforms, one int64 of state. *)
module Prng = struct
  type t = { mutable state : int64 }

  let make seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    if bound <= 1 then 0
    else
      Int64.to_int
        (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let shuffle t a =
    for i = Array.length a - 1 downto 1 do
      let j = int t (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done
end

type entity = {
  e_region : Spec.region;
  e_cands : Candidates.candidate array; (* waste ascending *)
}

(* Hard relocation requests, keyed by target, in spec order. *)
let hard_reqs (spec : Spec.t) =
  List.filter
    (fun (rr : Spec.reloc_req) -> rr.Spec.mode = Spec.Hard)
    spec.Spec.relocs

(* A working solution: region placements plus hard free-compatible
   copies.  Soft areas are only added to the final answer. *)
type state = {
  placements : (string * Rect.t) list;
  fc : Floorplan.fc_area list;
}

let plan_of st =
  Floorplan.make
    (List.map
       (fun (name, rect) -> { Floorplan.p_region = name; p_rect = rect })
       st.placements)
    st.fc

let rects_of st = List.map snd st.placements @ List.map (fun (a : Floorplan.fc_area) -> a.Floorplan.fc_rect) st.fc

(* Pick uniformly among the first [k] candidates that fit — waste
   order first keeps the construction greedy, the random pick keeps
   restarts diverse. *)
let place_one rng occupied (e : entity) =
  let k = 5 in
  let feas = ref [] and n = ref 0 and i = ref 0 in
  let cands = e.e_cands in
  while !n < k && !i < Array.length cands do
    let r = cands.(!i).Candidates.rect in
    if not (List.exists (Rect.overlaps r) occupied) then begin
      feas := r :: !feas;
      incr n
    end;
    incr i
  done;
  match !feas with
  | [] -> None
  | l ->
    let a = Array.of_list l in
    Some a.(Prng.int rng (Array.length a))

(* First-fit the hard free-compatible copies of one target, with a
   small random choice among the cheapest sites. *)
let place_hard_fc rng part occupied (rr : Spec.reloc_req) target_rect =
  let occ = ref occupied and placed = ref [] in
  let ok = ref true in
  for idx = 1 to rr.Spec.copies do
    if !ok then begin
      let sites =
        Compat.free_compatible_sites ~occupied:!occ part target_rect
      in
      (* keep at most 3 options per copy to stay cheap *)
      let opts =
        List.filteri (fun i _ -> i < 3) sites
      in
      match opts with
      | [] -> ok := false
      | l ->
        let a = Array.of_list l in
        let site = a.(Prng.int rng (Array.length a)) in
        occ := site :: !occ;
        placed :=
          { Floorplan.fc_region = rr.Spec.target; fc_index = idx;
            fc_rect = site }
          :: !placed
    end
  done;
  if !ok then Some (List.rev !placed, !occ) else None

(* Place [ents] (in the given order) on top of [st], then the hard
   free-compatible copies of exactly those regions.  None on failure. *)
let repair rng part hard ents st =
  let rec regions st = function
    | [] -> Some st
    | e :: rest -> (
      match place_one rng (rects_of st) e with
      | None -> None
      | Some rect ->
        regions
          { st with
            placements =
              st.placements @ [ (e.e_region.Spec.r_name, rect) ] }
          rest)
  in
  match regions st ents with
  | None -> None
  | Some st ->
    let names = List.map (fun e -> e.e_region.Spec.r_name) ents in
    let rec fcs st = function
      | [] -> Some st
      | (rr : Spec.reloc_req) :: rest ->
        if not (List.mem rr.Spec.target names) then fcs st rest
        else begin
          match List.assoc_opt rr.Spec.target st.placements with
          | None -> None
          | Some rect -> (
            match place_hard_fc rng part (rects_of st) rr rect with
            | None -> None
            | Some (areas, _) -> fcs { st with fc = st.fc @ areas } rest)
        end
    in
    fcs st hard

let construct rng part hard ents =
  let order = Array.copy ents in
  Prng.shuffle rng order;
  (* bias: half the time keep the biggest regions first, like the
     exact engine's default order *)
  let ents =
    if Prng.int rng 2 = 0 then Array.to_list order
    else
      List.sort
        (fun a b ->
          compare
            (Array.length a.e_cands)
            (Array.length b.e_cands))
        (Array.to_list order)
  in
  repair rng part hard ents { placements = []; fc = [] }

let key part spec st =
  let plan = plan_of st in
  (Floorplan.wasted_frames part spec plan, Floorplan.wirelength spec plan)

let solve ?(options = default_options) part (spec : Spec.t) =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let rng = Prng.make options.seed in
  let trace = options.trace in
  let hard = hard_reqs spec in
  let ents =
    List.map
      (fun (r : Spec.region) ->
        {
          e_region = r;
          e_cands = Array.of_list (Candidates.enumerate part r.Spec.demand);
        })
      spec.Spec.regions
    |> Array.of_list
  in
  let unplaceable =
    Array.exists (fun e -> Array.length e.e_cands = 0) ents
  in
  let best = ref None and best_key = ref (max_int, infinity) in
  let iters = ref 0 in
  let stop = ref None in
  let over_budget () =
    (match options.time_limit with
    | Some l when elapsed () >= l -> true
    | _ -> (
      match options.iter_limit with
      | Some l when !iters >= l -> true
      | _ -> false))
  in
  let record st =
    let k = key part spec st in
    if compare k !best_key < 0 then begin
      best := Some st;
      best_key := k;
      T.incumbent trace ~worker:0 ~objective:(float_of_int (fst k))
        ~node:!iters;
      (match options.on_improvement with
      | Some f -> f (plan_of st) (fst k)
      | None -> ());
      true
    end
    else false
  in
  if not unplaceable then
    T.span trace T.Event.Branch_bound (fun () ->
        let current = ref None in
        let stale = ref 0 in
        let running = ref true in
        while !running do
          incr iters;
          if options.cancel () then begin
            stop := Some Engine.Cancelled;
            T.stopped trace ~worker:0 "cancel";
            running := false
          end
          else if over_budget () then begin
            stop := Some Engine.Budget;
            T.stopped trace ~worker:0 "budget";
            running := false
          end
          else begin
            (match !current with
            | None -> (
              match construct rng part hard (Array.copy ents) with
              | Some st ->
                current := Some st;
                ignore (record st)
              | None -> ())
            | Some st ->
              (* disrupt: drop 1-2 random regions and their copies *)
              let n = List.length st.placements in
              if n = 0 then running := false
              else begin
                let k = 1 + Prng.int rng (min 2 n) in
                let victims = ref [] in
                while List.length !victims < k do
                  let name, _ =
                    List.nth st.placements
                      (Prng.int rng n)
                  in
                  if not (List.mem name !victims) then
                    victims := name :: !victims
                done;
                let keep_p =
                  List.filter
                    (fun (nm, _) -> not (List.mem nm !victims))
                    st.placements
                and keep_fc =
                  List.filter
                    (fun (a : Floorplan.fc_area) ->
                      not (List.mem a.Floorplan.fc_region !victims))
                    st.fc
                in
                let removed =
                  List.filter
                    (fun e ->
                      List.mem e.e_region.Spec.r_name !victims)
                    (Array.to_list ents)
                in
                let removed = Array.of_list removed in
                Prng.shuffle rng removed;
                match
                  repair rng part hard (Array.to_list removed)
                    { placements = keep_p; fc = keep_fc }
                with
                | Some st' when compare (key part spec st') (key part spec st) < 0 ->
                  current := Some st';
                  if record st' then stale := 0 else incr stale
                | _ -> incr stale
              end);
            if !stale > 80 then begin
              stale := 0;
              current := None;
              T.restart trace ~worker:0 "lns-reconstruct"
            end
          end
        done);
  T.add_worker_totals trace ~worker:0 ~nodes:!iters ~iterations:0;
  let plan = Option.map plan_of !best in
  let plan = Option.map (Engine.add_soft_areas part spec) plan in
  {
    Engine.plan;
    wasted =
      Option.map (fun p -> Floorplan.wasted_frames part spec p) plan;
    wirelength = Option.map (fun p -> Floorplan.wirelength spec p) plan;
    optimal = false;
    nodes = !iters;
    elapsed = elapsed ();
    stop = !stop;
  }
