open Device

type stop_reason = Budget | Cancelled

type options = {
  time_limit : float option;
  node_limit : int option;
  optimize_wirelength : bool;
  region_order : string list option;
  trace : Rfloor_trace.t;
  cancel : unit -> bool;
  on_improvement : (Floorplan.t -> int -> unit) option;
}

let default_options =
  {
    time_limit = None;
    node_limit = None;
    optimize_wirelength = true;
    region_order = None;
    trace = Rfloor_trace.disabled;
    cancel = (fun () -> false);
    on_improvement = None;
  }

type outcome = {
  plan : Floorplan.t option;
  wasted : int option;
  wirelength : float option;
  optimal : bool;
  nodes : int;
  elapsed : float;
  stop : stop_reason option;
}

exception Budget_exhausted
exception Cancelled_exn
exception Found_one

type entity = {
  e_region : Spec.region;
  e_cands : Candidates.candidate array; (* waste ascending *)
  e_hard_copies : int;
}

let hard_copies (spec : Spec.t) name =
  List.fold_left
    (fun acc (rr : Spec.reloc_req) ->
      match rr.Spec.mode with
      | Spec.Hard when rr.Spec.target = name -> acc + rr.Spec.copies
      | Spec.Hard | Spec.Soft _ -> acc)
    0 spec.Spec.relocs

let order_entities options (spec : Spec.t) part =
  let frames = Grid.frames part.Partition.grid in
  let weight (r : Spec.region) =
    Resource.demand_frames ~frames r.Spec.demand
  in
  let regions =
    match options.region_order with
    | None ->
      List.sort (fun a b -> compare (weight b) (weight a)) spec.Spec.regions
    | Some names ->
      let explicit =
        List.filter_map (fun n -> Spec.find_region spec n) names
      in
      let missing =
        List.filter
          (fun (r : Spec.region) ->
            not (List.mem r.Spec.r_name names))
          spec.Spec.regions
      in
      explicit @ missing
  in
  List.map
    (fun (r : Spec.region) ->
      {
        e_region = r;
        e_cands = Array.of_list (Candidates.enumerate part r.Spec.demand);
        e_hard_copies = hard_copies spec r.Spec.r_name;
      })
    regions

(* Greedy best-effort placement of soft free-compatible areas on a
   finished floorplan, heaviest weight first. *)
let add_soft_areas part (spec : Spec.t) plan =
  let soft =
    List.filter_map
      (fun (rr : Spec.reloc_req) ->
        match rr.Spec.mode with
        | Spec.Soft w -> Some (w, rr)
        | Spec.Hard -> None)
      spec.Spec.relocs
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  let occupied = ref (Floorplan.all_rects plan) in
  let extra = ref [] in
  List.iter
    (fun (_, (rr : Spec.reloc_req)) ->
      match Floorplan.rect_of plan rr.Spec.target with
      | None -> ()
      | Some rect ->
        let base = List.length (Floorplan.fc_for plan rr.Spec.target) in
        let placed = ref 0 in
        let sites =
          Compat.free_compatible_sites ~occupied:!occupied part rect
        in
        List.iter
          (fun site ->
            if
              !placed < rr.Spec.copies
              && not (List.exists (Rect.overlaps site) !occupied)
            then begin
              incr placed;
              occupied := site :: !occupied;
              extra :=
                {
                  Floorplan.fc_region = rr.Spec.target;
                  fc_index = base + !placed;
                  fc_rect = site;
                }
                :: !extra
            end)
          sites)
    soft;
  { plan with Floorplan.fc_areas = plan.Floorplan.fc_areas @ List.rev !extra }

type search_mode =
  | Min_waste of { stop_at_first : bool }
  | Min_wirelength of { waste_budget : int }

(* Core branch and bound.  Places entities in order; immediately after a
   region, its hard free-compatible copies are placed (all combinations
   of disjoint compatible sites are explored, in canonical order to
   avoid permutation symmetry). *)
let kind_index = function
  | Resource.Clb -> 0
  | Resource.Bram -> 1
  | Resource.Dsp -> 2
  | Resource.Io -> 3

let coverage_of part rect =
  let cov = Array.make 4 0 in
  List.iter
    (fun (k, n) -> cov.(kind_index k) <- n)
    (Compat.covered_demand part rect);
  cov

let search ~options ~mode part (spec : Spec.t) entities =
  Rfloor_trace.span options.trace Rfloor_trace.Event.Branch_bound @@ fun () ->
  let t0 = Sys.time () in
  let nodes = ref 0 in
  let stopped = ref None in
  let entities = Array.of_list entities in
  let n = Array.length entities in
  let min_remaining = Array.make (n + 1) 0 in
  let unplaceable = ref false in
  for i = n - 1 downto 0 do
    let c = entities.(i).e_cands in
    if Array.length c = 0 then unplaceable := true
    else min_remaining.(i) <- min_remaining.(i + 1) + c.(0).Candidates.waste
  done;
  (* Per-kind tile capacity pruning: placed coverage plus a lower bound
     on the coverage of every remaining entity (regions and their
     compatible copies, which cover exactly what the region covers) can
     never exceed the device's usable tiles of that kind.  This is what
     proves the matched-filter / video-decoder duplication infeasible
     quickly: DSP tiles are exactly exhausted, so any DSP-wasting
     candidate dies immediately. *)
  let capacity =
    let cap = Array.make 4 0 in
    let g = part.Partition.grid in
    for col = 1 to Partition.width part do
      let k = kind_index (Partition.column_type part col).Resource.kind in
      for row = 1 to Partition.height part do
        if not (Grid.in_forbidden g col row) then cap.(k) <- cap.(k) + 1
      done
    done;
    cap
  in
  let cand_coverage =
    Array.map
      (fun e ->
        Array.map (fun c -> coverage_of part c.Candidates.rect) e.e_cands)
      entities
  in
  let min_cov_suffix = Array.make_matrix (n + 1) 4 0 in
  for i = n - 1 downto 0 do
    let covs = cand_coverage.(i) in
    let mult = 1 + entities.(i).e_hard_copies in
    for k = 0 to 3 do
      let m = ref max_int in
      Array.iter (fun cov -> if cov.(k) < !m then m := cov.(k)) covs;
      let m = if !m = max_int then 0 else !m in
      min_cov_suffix.(i).(k) <- min_cov_suffix.(i + 1).(k) + (mult * m)
    done
  done;
  let best_waste = ref max_int and best_wl = ref infinity in
  let best_plan = ref None in
  let budget_check () =
    incr nodes;
    if !nodes land 1023 = 0 then begin
      if options.cancel () then raise Cancelled_exn;
      (match options.node_limit with
      | Some nl when !nodes >= nl -> raise Budget_exhausted
      | _ -> ());
      match options.time_limit with
      | Some tl when Sys.time () -. t0 > tl -> raise Budget_exhausted
      | _ -> ()
    end
  in
  (* nets indexed for incremental wire length *)
  let net_list = spec.Spec.nets in
  let wl_between placements =
    (* wire length over nets whose two endpoints are both placed *)
    List.fold_left
      (fun acc (nt : Spec.net) ->
        match
          ( List.assoc_opt nt.Spec.src placements,
            List.assoc_opt nt.Spec.dst placements )
        with
        | Some a, Some b -> acc +. (nt.Spec.weight *. Rect.manhattan_centers a b)
        | _ -> acc)
      0. net_list
  in
  let record placements fcs waste =
    let plan =
      Floorplan.make
        (List.rev_map
           (fun (name, rect) -> { Floorplan.p_region = name; p_rect = rect })
           placements)
        (List.rev fcs)
    in
    let wl = wl_between placements in
    match mode with
    | Min_waste { stop_at_first } ->
      if waste < !best_waste then begin
        best_waste := waste;
        best_wl := wl;
        best_plan := Some plan;
        Rfloor_trace.incumbent options.trace ~worker:0
          ~objective:(float_of_int waste) ~node:!nodes;
        (match options.on_improvement with
        | Some f -> f plan waste
        | None -> ());
        if stop_at_first then raise Found_one
      end
    | Min_wirelength _ ->
      if wl < !best_wl -. 1e-9 then begin
        best_wl := wl;
        best_waste := min !best_waste waste;
        best_plan := Some plan;
        Rfloor_trace.incumbent options.trace ~worker:0 ~objective:wl
          ~node:!nodes
      end
  in
  let waste_cap () =
    match mode with
    | Min_waste _ -> !best_waste
    | Min_wirelength { waste_budget } -> waste_budget + 1
  in
  let overlaps_any rect placed =
    List.exists (fun (_, r) -> Rect.overlaps rect r) placed
  in
  (* choose [k] pairwise-disjoint sites from [sites] (already compatible
     and forbidden-free), indices strictly increasing *)
  let rec choose_sites k start sites placed acc kont =
    if k = 0 then kont (List.rev acc)
    else begin
      let nsites = Array.length sites in
      for idx = start to nsites - k do
        let site = sites.(idx) in
        if
          (not (overlaps_any site placed))
          && not (List.exists (Rect.overlaps site) acc)
        then
          choose_sites (k - 1) (idx + 1) sites placed (site :: acc) kont
      done
    end
  in
  let used = Array.make 4 0 in
  let rec place i placed placements fcs waste wl =
    budget_check ();
    if i = n then record placements fcs waste
    else begin
      let e = entities.(i) in
      let cands = e.e_cands in
      let ncands = Array.length cands in
      let mult = 1 + e.e_hard_copies in
      let continue_ = ref true in
      let ci = ref 0 in
      while !continue_ && !ci < ncands do
        let cidx = !ci in
        let c = cands.(cidx) in
        incr ci;
        let lb = waste + c.Candidates.waste + min_remaining.(i + 1) in
        if lb >= waste_cap () then continue_ := false (* waste-sorted: stop *)
        else begin
          let cov = cand_coverage.(i).(cidx) in
          let cap_ok = ref true in
          for k = 0 to 3 do
            if
              used.(k) + (mult * cov.(k)) + min_cov_suffix.(i + 1).(k)
              > capacity.(k)
            then cap_ok := false
          done;
          let rect = c.Candidates.rect in
          if !cap_ok && not (overlaps_any rect placed) then begin
            let name = e.e_region.Spec.r_name in
            let placements' = (name, rect) :: placements in
            let wl' =
              List.fold_left
                (fun acc (nt : Spec.net) ->
                  let other =
                    if nt.Spec.src = name then Some nt.Spec.dst
                    else if nt.Spec.dst = name then Some nt.Spec.src
                    else None
                  in
                  match other with
                  | None -> acc
                  | Some o -> (
                    match List.assoc_opt o placements with
                    | None -> acc
                    | Some r ->
                      acc +. (nt.Spec.weight *. Rect.manhattan_centers rect r)))
                wl net_list
            in
            let wl_prune =
              match mode with
              | Min_wirelength _ -> wl' >= !best_wl -. 1e-9
              | Min_waste _ -> false
            in
            if not wl_prune then begin
              for k = 0 to 3 do
                used.(k) <- used.(k) + (mult * cov.(k))
              done;
              let placed' = (name, rect) :: placed in
              (if e.e_hard_copies = 0 then
                place (i + 1) placed' placements' fcs (waste + c.Candidates.waste) wl'
              else begin
                (* place the hard free-compatible copies now *)
                let sites =
                  Array.of_list (Compat.relocation_sites part rect)
                in
                let sites =
                  Array.of_list
                    (List.filter
                       (fun s -> not (Rect.equal s rect))
                       (Array.to_list sites))
                in
                choose_sites e.e_hard_copies 0 sites placed' [] (fun chosen ->
                    budget_check ();
                    let fcs' =
                      List.mapi
                        (fun k site ->
                          {
                            Floorplan.fc_region = name;
                            fc_index = k + 1;
                            fc_rect = site;
                          })
                        chosen
                      @ fcs
                    in
                    let placed'' =
                      List.map (fun s -> ("fc:" ^ name, s)) chosen @ placed'
                    in
                    place (i + 1) placed'' placements' fcs'
                      (waste + c.Candidates.waste)
                      wl')
              end);
              for k = 0 to 3 do
                used.(k) <- used.(k) - (mult * cov.(k))
              done
            end
          end
        end
      done
    end
  in
  let optimal = ref true in
  if not !unplaceable then begin
    try place 0 [] [] [] 0 0. with
    | Budget_exhausted ->
      stopped := Some Budget;
      optimal := false
    | Cancelled_exn ->
      stopped := Some Cancelled;
      optimal := false;
      Rfloor_trace.stopped options.trace ~worker:0 "cancel"
    | Found_one -> ()
  end;
  let elapsed = Sys.time () -. t0 in
  Rfloor_trace.add_worker_totals options.trace ~worker:0 ~nodes:!nodes
    ~iterations:0;
  ( !best_plan,
    (if !best_waste = max_int then None else Some !best_waste),
    (if !best_wl = infinity then None else Some !best_wl),
    !optimal,
    !nodes,
    elapsed,
    !stopped )

let finish part spec (plan, waste, wl, optimal, nodes, elapsed, stop) =
  let plan = Option.map (add_soft_areas part spec) plan in
  (* recompute metrics on the final plan for reporting hygiene *)
  let wasted =
    match (plan, waste) with
    | Some p, _ -> Some (Floorplan.wasted_frames part spec p)
    | None, w -> w
  in
  let wirelength =
    match plan with Some p -> Some (Floorplan.wirelength spec p) | None -> wl
  in
  { plan; wasted; wirelength; optimal; nodes; elapsed; stop }

let solve ?(options = default_options) part spec =
  let entities = order_entities options spec part in
  let r1 =
    search ~options ~mode:(Min_waste { stop_at_first = false }) part spec
      entities
  in
  let plan1, waste1, _, opt1, nodes1, el1, stop1 = r1 in
  match (plan1, waste1) with
  | None, _ | _, None ->
    finish part spec (plan1, waste1, None, opt1, nodes1, el1, stop1)
  | Some _, Some w when options.optimize_wirelength && opt1 ->
    Rfloor_trace.restart options.trace "wirelength";
    let plan2, waste2, wl2, opt2, nodes2, el2, stop2 =
      search ~options ~mode:(Min_wirelength { waste_budget = w }) part spec
        entities
    in
    let plan = match plan2 with Some p -> Some p | None -> plan1 in
    finish part spec
      ( plan,
        (match waste2 with Some _ -> Some w | None -> waste1),
        wl2,
        opt1 && opt2,
        nodes1 + nodes2,
        el1 +. el2,
        (match stop2 with Some _ -> stop2 | None -> stop1) )
  | Some _, Some _ -> finish part spec r1

let feasible ?(options = default_options) part spec =
  let entities = order_entities options spec part in
  let r =
    search ~options ~mode:(Min_waste { stop_at_first = true }) part spec
      entities
  in
  finish part spec r
