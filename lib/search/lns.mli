(** Disrupt-and-repair large-neighbourhood search.

    A randomized heuristic companion to {!Engine}: greedy randomized
    construction of a complete floorplan (regions plus hard
    free-compatible copies), then repeated disruption — remove one or
    two random regions together with their free-compatible areas — and
    greedy randomized repair, accepting lexicographic
    (wasted frames, wire length) improvements.  After a stretch of
    non-improving iterations the incumbent is abandoned and a fresh
    construction starts.

    Never proves optimality or infeasibility ([optimal] is always
    [false]); its value is cheap incumbents published early through
    [on_improvement], which a racing portfolio feeds to the MILP
    members as objective bounds.  Deterministic for a fixed [seed]. *)

type options = {
  seed : int;  (** PRNG seed; same seed, same trajectory *)
  time_limit : float option;  (** wall-clock seconds *)
  iter_limit : int option;  (** disrupt-and-repair iterations *)
  trace : Rfloor_trace.t;
  cancel : unit -> bool;
      (** Cooperative cancellation, polled once per iteration. *)
  on_improvement : (Device.Floorplan.t -> int -> unit) option;
      (** Called on each accepted incumbent with the plan (soft areas
          not yet added) and its wasted frames. *)
}

val default_options : options

val solve :
  ?options:options -> Device.Partition.t -> Device.Spec.t -> Engine.outcome
(** Runs until the budget, the cancel token, or [iter_limit].
    [outcome.nodes] counts iterations; [outcome.stop] reports why the
    loop ended ([None] only when a region is unplaceable outright and
    the search gives up immediately). *)
