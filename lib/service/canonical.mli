(** Instance canonicalization: a stable content key for a floorplanning
    problem (device as partitioned, specification, answer-defining
    solver options), the basis of the {!Cache}.

    Two instances get the same key whenever one maps onto the other by

    - relabeling the regions (the canonical region order comes from a
      Weisfeiler-Lehman-style refinement over demands, relocation
      requests and the net graph, not from names), and/or
    - renaming tile types / kinds while preserving the left-to-right
      columnar portion sequence and the per-kind frame counts — the
      tile-type-sequence equivalence behind Properties .3/.4
      ({!Device.Partition.type_sequence}).

    The mapping is one-directional by construction: equal canonical
    {e text} implies isomorphic instances (the text fully determines
    the instance up to the renaming), while symmetric designs may
    canonicalize to different texts under relabeling — a missed cache
    hit, never a false one.  Keys are 32-hex-character two-lane FNV-1a
    hashes of the text; cache layers must compare the stored text on a
    key match to rule out hash collisions. *)

type t = {
  instance_key : string;  (** 32 hex chars over [instance_text] *)
  instance_text : string;  (** full canonical serialization *)
  order : string array;  (** canonical region index -> region name *)
  index_of : (string, int) Hashtbl.t;  (** inverse of [order] *)
}

val of_instance : Device.Partition.t -> Device.Spec.t -> t

val region_count : t -> int
val region_name : t -> int -> string

val region_index : t -> string -> int
(** @raise Invalid_argument on a name foreign to the instance. *)

(** {1 Canonical floorplans}

    Plans are cached in canonical form — region {e indices}, not names —
    so a hit on a relabeled instance rebinds to that instance's names. *)

type plan = {
  placements : (int * Device.Rect.t) list;  (** (canonical region index, rect) *)
  fc_areas : (int * int * Device.Rect.t) list;
      (** (canonical region index, copy index, rect) *)
}

val encode_plan : t -> Device.Floorplan.t -> plan
val decode_plan : t -> plan -> Device.Floorplan.t
val plan_to_string : plan -> string

(** {1 Option keys} *)

val options_key : t -> Rfloor.Solver.options -> string * string
(** [(key, text)] over the answer-defining options only: engine (with a
    canonicalized HO seed if one is supplied), objective mode and
    [paper_literal_l].  Budgets ([time_limit], [node_limit]), [workers],
    [warm_start] and observability options are deliberately excluded:
    the cache serves exact hits only from [Optimal] entries, and an
    optimal answer does not depend on them. *)

val hash_hex : string -> string
(** The two-lane FNV-1a hash used for both key families. *)
