open Device

(* ---------------- hashing ---------------- *)

(* FNV-1a, 64-bit, two independent lanes (different offset bases) so a
   key is 32 hex characters.  Collisions are additionally ruled out at
   the cache layer by comparing the full canonical text on every hit. *)
let fnv_prime = 0x100000001b3L
let lane1_offset = 0xcbf29ce484222325L
let lane2_offset = Int64.logxor 0xcbf29ce484222325L 0x9e3779b97f4a7c15L

let fnv1a init s =
  let h = ref init in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let hash_hex s = Printf.sprintf "%016Lx%016Lx" (fnv1a lane1_offset s) (fnv1a lane2_offset s)

(* ---------------- canonical instances ---------------- *)

type t = {
  instance_key : string;
  instance_text : string;
  order : string array;
  index_of : (string, int) Hashtbl.t;
}

let region_count t = Array.length t.order
let region_name t i = t.order.(i)

let region_index t name =
  match Hashtbl.find_opt t.index_of name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Canonical.region_index: %s" name)

(* Numbers are printed with %.17g so distinct floats stay distinct and
   equal floats serialize identically. *)
let fl x = Printf.sprintf "%.17g" x

let rect_str (r : Rect.t) = Printf.sprintf "%d,%d,%d,%d" r.Rect.x r.Rect.y r.Rect.w r.Rect.h

(* Canonical kind numbering: kinds are anonymized — renamed by first
   appearance in the left-to-right portion sequence — so the key only
   retains what the solvers consume (equality and per-kind frames).
   Kinds that appear in demands but in no portion are numbered after,
   in the fixed [Resource.all_kinds] order (deterministic; renamings
   among such kinds are simply not recognized — a missed hit, never a
   false one). *)
let kind_numbering part (spec : Spec.t) =
  let canon : (Resource.kind, int) Hashtbl.t = Hashtbl.create 4 in
  let next = ref 0 in
  let visit k =
    if not (Hashtbl.mem canon k) then begin
      incr next;
      Hashtbl.add canon k !next
    end
  in
  Array.iter (fun p -> visit p.Partition.tile.Resource.kind) part.Partition.portions;
  List.iter
    (fun k ->
      let demanded =
        List.exists
          (fun r -> List.exists (fun (k', c) -> k' = k && c > 0) r.Spec.demand)
          spec.Spec.regions
      in
      if demanded then visit k)
    Resource.all_kinds;
  canon

let canon_demand kinds (d : Resource.demand) =
  List.filter_map
    (fun (k, c) ->
      if c <= 0 then None
      else
        match Hashtbl.find_opt kinds k with
        | Some ck -> Some (ck, c)
        | None -> None)
    d
  |> List.sort compare

let demand_str d =
  String.concat "," (List.map (fun (ck, c) -> Printf.sprintf "%d:%d" ck c) d)

let reloc_str (rl : Spec.reloc_req) =
  Printf.sprintf "%d:%s" rl.Spec.copies
    (match rl.Spec.mode with
    | Spec.Hard -> "hard"
    | Spec.Soft w -> "soft:" ^ fl w)

(* Weisfeiler-Lehman-style refinement over the net graph: a region's
   signature starts from its relabeling-invariant content (demand,
   relocation requests) and is refined by the sorted multiset of
   (neighbor signature, net weight) pairs.  Three rounds distinguish
   everything the solve can distinguish on these small design graphs;
   ties are broken by original position, which can only cost cache hits
   between relabelings of symmetric designs, never correctness. *)
let region_order kinds (spec : Spec.t) =
  let regions = Array.of_list spec.Spec.regions in
  let n = Array.length regions in
  let idx_of_name = Hashtbl.create (2 * n) in
  Array.iteri (fun i r -> Hashtbl.add idx_of_name r.Spec.r_name i) regions;
  let sigs =
    Array.map
      (fun r ->
        let relocs =
          List.filter (fun rl -> rl.Spec.target = r.Spec.r_name) spec.Spec.relocs
          |> List.map reloc_str |> List.sort compare
        in
        hash_hex
          (Printf.sprintf "d=%s;rl=%s"
             (demand_str (canon_demand kinds r.Spec.demand))
             (String.concat ";" relocs)))
      regions
  in
  for _round = 1 to 3 do
    let next =
      Array.mapi
        (fun i _ ->
          let neighbours =
            List.filter_map
              (fun nt ->
                let other =
                  if nt.Spec.src = regions.(i).Spec.r_name then Some nt.Spec.dst
                  else if nt.Spec.dst = regions.(i).Spec.r_name then Some nt.Spec.src
                  else None
                in
                Option.map
                  (fun o ->
                    Printf.sprintf "%s@%s"
                      sigs.(Hashtbl.find idx_of_name o)
                      (fl nt.Spec.weight))
                  other)
              spec.Spec.nets
            |> List.sort compare
          in
          hash_hex (sigs.(i) ^ "|" ^ String.concat ";" neighbours))
        regions
    in
    Array.blit next 0 sigs 0 n
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare (sigs.(a), a) (sigs.(b), b)) order;
  Array.map (fun i -> regions.(i).Spec.r_name) order

let of_instance part (spec : Spec.t) =
  let kinds = kind_numbering part spec in
  let order = region_order kinds spec in
  let index_of = Hashtbl.create (2 * Array.length order) in
  Array.iteri (fun i name -> Hashtbl.add index_of name i) order;
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "rfloor-canon/1";
  line "h %d" (Partition.height part);
  (* portion sequence with first-appearance tile ids (Properties .3/.4:
     the sequence, not the names, identifies a columnar device) *)
  line "p %s"
    (String.concat ";"
       (List.map
          (fun (t, w) -> Printf.sprintf "%d,%d" t w)
          (Partition.type_sequence part)));
  (* canonical tile id -> canonical kind: walk portions again with the
     same first-appearance numbering type_sequence used *)
  let tid_canon : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let tk = Buffer.create 64 in
  Array.iter
    (fun p ->
      if not (Hashtbl.mem tid_canon p.Partition.tid) then begin
        let ct = Hashtbl.length tid_canon + 1 in
        Hashtbl.add tid_canon p.Partition.tid ct;
        Printf.bprintf tk "%d:%d;" ct
          (Hashtbl.find kinds p.Partition.tile.Resource.kind)
      end)
    part.Partition.portions;
  line "tk %s" (Buffer.contents tk);
  (* frames per canonical kind, the only kind property the model reads *)
  let kf =
    Hashtbl.fold (fun k ck acc -> (ck, Grid.frames part.Partition.grid k) :: acc) kinds []
    |> List.sort compare
    |> List.map (fun (ck, f) -> Printf.sprintf "%d:%d" ck f)
  in
  line "kf %s" (String.concat ";" kf);
  line "fb %s"
    (String.concat ";"
       (List.map rect_str (List.sort Rect.compare part.Partition.forbidden)));
  Array.iteri
    (fun i name ->
      let r = Spec.region spec name in
      let relocs =
        List.filter (fun rl -> rl.Spec.target = name) spec.Spec.relocs
        |> List.map reloc_str |> List.sort compare
      in
      line "r %d d %s rl %s" i
        (demand_str (canon_demand kinds r.Spec.demand))
        (String.concat ";" relocs))
    order;
  let nets =
    List.map
      (fun nt ->
        let a = Hashtbl.find index_of nt.Spec.src
        and b = Hashtbl.find index_of nt.Spec.dst in
        (* wire length is symmetric in the endpoints *)
        (min a b, max a b, nt.Spec.weight))
      spec.Spec.nets
    |> List.sort compare
  in
  line "n %s"
    (String.concat ";"
       (List.map (fun (a, b, w) -> Printf.sprintf "%d-%d:%s" a b (fl w)) nets));
  let instance_text = Buffer.contents buf in
  { instance_key = hash_hex instance_text; instance_text; order; index_of }

(* ---------------- canonical floorplans ---------------- *)

type plan = {
  placements : (int * Rect.t) list;
  fc_areas : (int * int * Rect.t) list;
}

let encode_plan t (p : Floorplan.t) =
  {
    placements =
      List.map
        (fun pl -> (region_index t pl.Floorplan.p_region, pl.Floorplan.p_rect))
        p.Floorplan.placements
      |> List.sort compare;
    fc_areas =
      List.map
        (fun fa ->
          (region_index t fa.Floorplan.fc_region, fa.Floorplan.fc_index, fa.Floorplan.fc_rect))
        p.Floorplan.fc_areas
      |> List.sort compare;
  }

let decode_plan t plan =
  Floorplan.make
    (List.map
       (fun (i, r) -> { Floorplan.p_region = region_name t i; p_rect = r })
       plan.placements)
    (List.map
       (fun (i, c, r) ->
         { Floorplan.fc_region = region_name t i; fc_index = c; fc_rect = r })
       plan.fc_areas)

let plan_to_string plan =
  String.concat ";"
    (List.map (fun (i, r) -> Printf.sprintf "%d@%s" i (rect_str r)) plan.placements)
  ^ "|"
  ^ String.concat ";"
      (List.map
         (fun (i, c, r) -> Printf.sprintf "%d.%d@%s" i c (rect_str r))
         plan.fc_areas)

(* ---------------- option keys ---------------- *)

(* Only answer-defining options enter the key: the strategy (an HO
   member restricts the search space it can prove optimal over; an
   LNS member carries its seed), the objective and the literal-L
   flag.  Budgets, worker counts, warm-start and observability
   options do not change what an [Optimal] answer is, and the cache
   only serves [Optimal] entries exactly — so they are normalized
   away by [strategy_text], which is sound and maximizes hits. *)
let rec strategy_text t (s : Rfloor.Solver.Strategy.t) =
  match s with
  | Rfloor.Solver.Strategy.Milp { engine = Rfloor.Solver.O; _ } -> "milp-o"
  | Rfloor.Solver.Strategy.Milp { engine = Rfloor.Solver.Ho None; _ } ->
    "milp-ho-auto"
  | Rfloor.Solver.Strategy.Milp { engine = Rfloor.Solver.Ho (Some seed); _ } ->
    "milp-ho-seed:" ^ plan_to_string (encode_plan t seed)
  | Rfloor.Solver.Strategy.Combinatorial _ -> "comb"
  | Rfloor.Solver.Strategy.Lns { seed; _ } -> Printf.sprintf "lns:%d" seed
  | Rfloor.Solver.Strategy.Portfolio ms ->
    (* member order never affects the answer a race can prove *)
    "portfolio["
    ^ String.concat "," (List.sort compare (List.map (strategy_text t) ms))
    ^ "]"

let options_text t (o : Rfloor.Solver.options) =
  let strategy = strategy_text t o.Rfloor.Solver.strategy in
  let objective =
    match o.Rfloor.Solver.objective_mode with
    | Rfloor.Solver.Lexicographic -> "lex"
    | Rfloor.Solver.Feasibility_only -> "feas"
    | Rfloor.Solver.Weighted w ->
      Printf.sprintf "w:%s,%s,%s,%s"
        (fl w.Rfloor.Objective.q_wirelength) (fl w.Rfloor.Objective.q_perimeter)
        (fl w.Rfloor.Objective.q_resources) (fl w.Rfloor.Objective.q_relocation)
  in
  Printf.sprintf "rfloor-opts/2\nstrategy %s\nobj %s\nlit %b\n" strategy
    objective o.Rfloor.Solver.paper_literal_l

let options_key t o =
  let text = options_text t o in
  (hash_hex text, text)
