(** Concurrent floorplanning job pool: a priority queue drained by
    OCaml 5 worker domains, each job running the full
    {!Rfloor.Solver.solve} pipeline with instance canonicalization, a
    shared {!Cache}, and cooperative cancellation.

    Per job:
    + canonicalize the instance ({!Canonical.of_instance});
    + exact cache hit (same instance and options keys, [Optimal]
      entry) — answer immediately, zero branch-and-bound nodes;
    + near hit (same instance, different options, cached plan) — inject
      the cached plan as an HO seed
      ([engine = Ho (Some plan)], the warm start of the issue) and
      solve; the result is stored under the options actually used;
    + miss — solve with the requested options and store the result.

    Cancellation is cooperative: {!cancel} flips the job's flag, which
    is polled by the branch-and-bound loop heads (via
    [Solver.options.cancel], combined with the job's deadline and any
    caller-supplied token).  A job cancelled mid-solve finishes as
    [Stopped] carrying the incumbent found so far; one cancelled while
    still queued finishes as [Stopped] without solving at all. *)

type source =
  | Solved  (** full solve, cache miss *)
  | Cache_hit  (** exact canonical-key hit, no solver run *)
  | Warm_start  (** near hit, solved from the cached plan as HO seed *)

type solved = {
  outcome : Rfloor.Solver.outcome;
  source : source;
  key : string;  (** canonical instance key ([""] for an unsolved stop) *)
  waited : float;  (** submit-to-finish seconds *)
}

type result =
  | Completed of solved
  | Stopped of solved * string
      (** early cooperative stop; the string is ["cancel"] or
          ["deadline"], and [solved.outcome.plan] holds the incumbent
          at the stop (if any) *)
  | Failed of string  (** exception text *)

type t

val create :
  ?workers:int ->
  ?cache_capacity:int ->
  ?metrics:Rfloor_metrics.Registry.t ->
  ?trace:Rfloor_trace.t ->
  unit ->
  t
(** Spawns [workers] (default 1) domains immediately.  A live [metrics]
    registry receives the [rfloor_service_*] family: queue depth gauge,
    cache hit/miss/warm-start totals, jobs by outcome, and a
    submit-to-finish latency histogram.  [trace] receives one [Job]
    span per job (worker-tagged), independent of any per-job solver
    trace configured in the submitted options. *)

val submit :
  t ->
  ?priority:int ->
  ?deadline:float ->
  ?options:Rfloor.Solver.options ->
  Device.Partition.t ->
  Device.Spec.t ->
  int
(** Enqueues a job and returns its ticket.  Higher [priority] (default
    0) is claimed first; ties are FIFO.  [deadline] is in seconds from
    submission; when it passes, the job's cancel token fires and the
    job finishes as [Stopped _, "deadline"] with its current incumbent
    — a queued job always {e enters} the solver (only an explicit
    {!cancel} prevents that), so a warm-started solve still yields a
    plan even with an already-expired deadline.
    @raise Invalid_argument after {!shutdown}. *)

val cancel : t -> int -> bool
(** [false] if the ticket is unknown or the job already finished. *)

val await : t -> int -> result
(** Blocks until the job finishes.  @raise Invalid_argument on an
    unknown ticket. *)

type stats = {
  s_workers : int;
  s_queued : int;
  s_running : int;
  s_finished : int;
  s_cache_entries : int;
  s_cache_capacity : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_warm_starts : int;
}

val stats : t -> stats

val worker_states : t -> string list
(** Per-worker state, index order: ["idle"], ["job N"] while a claimed
    job runs, ["stopped"] once the worker has exited its loop.  For the
    telemetry [/statusz] endpoint. *)

val shutdown : t -> unit
(** Stops accepting submissions, drains the queue (queued jobs still
    run — cancel them first for a fast exit), and joins the worker
    domains.  Idempotent; {!await} keeps working afterwards. *)
