(** The newline-delimited JSON protocol ([rfloor-service/1]) spoken by
    [rfloor_cli serve] and [rfloor_cli batch]: one request object per
    input line, one response object per output line, every response
    carrying [{"v":"rfloor-service/1"}].

    Requests:
    - [{"op":"solve","id":ID, "device":NAME | "device_text":TEXT,
       "design":NAME | "design_text":TEXT, "engine":"milp"|"milp-ho",
       "objective":"lex"|"feasibility", "time":SECONDS,
       "priority":INT, "deadline":SECONDS, "workers":INT,
       "progress":{"interval_s":SECONDS}}]
    - [{"op":"cancel","id":ID}]
    - [{"op":"stats"}]
    - [{"op":"shutdown"}]

    Responses: [type] is ["result"] (per solve, in submission order),
    ["progress"] (streamed for solves that opted in, always before the
    job's result frame), ["ack"] (per cancel), ["stats"], or
    ["error"]. *)

type source_ref =
  | Builtin of string  (** a name the host resolves (e.g. ["mini"]) *)
  | Inline of string  (** {!Device.Io.parse_grid}/[parse_spec] text *)

type solve_req = {
  sq_id : string;
  sq_device : source_ref;
  sq_design : source_ref;
  sq_strategy : Rfloor.Solver.Strategy.t option;
      (** Full strategy string ([Solver.Strategy.of_string] grammar);
          when present it supersedes [sq_engine]/[sq_workers], which
          remain as the backward-compatible spelling. *)
  sq_engine : [ `O | `Ho ];
  sq_objective : [ `Lex | `Feasibility ];
  sq_time : float option;  (** solver budget, seconds *)
  sq_priority : int;
  sq_deadline : float option;  (** cooperative-cancel deadline, seconds *)
  sq_workers : int;
  sq_progress : float option;
      (** requested progress interval ([{"progress":{"interval_s":N}}]),
          unclamped — the session clamps it (RF603) *)
}

type request = Solve of solve_req | Cancel of string | Stats | Shutdown

val parse_request : string -> (request, string) result

val result_frame : id:string -> Pool.result -> string

val progress_frame : id:string -> Rfloor_obsv.Progress.snapshot -> string
(** One streamed [type:"progress"] frame: elapsed, nodes,
    lp_iterations, then incumbent / bound / gap when known and the
    portfolio-member node attribution when the job runs a portfolio. *)

val ack_frame : op:string -> id:string -> ok:bool -> string
val stats_frame : Pool.stats -> string
val error_frame : ?id:string -> string -> string

val version : string
(** ["rfloor-service/1"]. *)
