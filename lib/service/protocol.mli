(** The newline-delimited JSON protocol ([rfloor-service/1]) spoken by
    [rfloor_cli serve] and [rfloor_cli batch]: one request object per
    input line, one response object per output line, every response
    carrying [{"v":"rfloor-service/1"}].

    Requests:
    - [{"op":"solve","id":ID, "device":NAME | "device_text":TEXT,
       "design":NAME | "design_text":TEXT, "engine":"milp"|"milp-ho",
       "objective":"lex"|"feasibility", "time":SECONDS,
       "priority":INT, "deadline":SECONDS, "workers":INT,
       "progress":{"interval_s":SECONDS}}]
    - [{"op":"cancel","id":ID}]
    - [{"op":"stats"}]
    - [{"op":"shutdown"}]

    Online floorplanning (per-session {!Rfloor_online.Layout} state,
    handled synchronously in arrival order):
    - [{"op":"layout", "device":NAME | "device_text":TEXT}] —
      establish (or reset) the session layout; with neither field,
      report the current one (RF703 when none exists yet)
    - [{"op":"add","name":N,"demand":{"clb":4,"bram":1},
       "defrag":BOOL, "max_moves":INT}] — arrival; on fragmentation
      the no-break defragmentation planner runs unless
      [defrag:false]
    - [{"op":"remove","name":N}] — departure
    - [{"op":"defrag","max_moves":INT}] — explicit compaction

    Responses: [type] is ["result"] (per solve, in submission order),
    ["progress"] (streamed for solves that opted in, always before the
    job's result frame), ["ack"] (per cancel), ["stats"], ["online"]
    (per online request: op, outcome, the placed rectangle / executed
    moves, and a layout summary; errors carry their RF7xx code), or
    ["error"]. *)

type source_ref =
  | Builtin of string  (** a name the host resolves (e.g. ["mini"]) *)
  | Inline of string  (** {!Device.Io.parse_grid}/[parse_spec] text *)

type solve_req = {
  sq_id : string;
  sq_device : source_ref;
  sq_design : source_ref;
  sq_strategy : Rfloor.Solver.Strategy.t option;
      (** Full strategy string ([Solver.Strategy.of_string] grammar);
          when present it supersedes [sq_engine]/[sq_workers], which
          remain as the backward-compatible spelling. *)
  sq_engine : [ `O | `Ho ];
  sq_objective : [ `Lex | `Feasibility ];
  sq_time : float option;  (** solver budget, seconds *)
  sq_priority : int;
  sq_deadline : float option;  (** cooperative-cancel deadline, seconds *)
  sq_workers : int;
  sq_progress : float option;
      (** requested progress interval ([{"progress":{"interval_s":N}}]),
          unclamped — the session clamps it (RF603) *)
}

type online_req =
  | Ol_layout of source_ref option
      (** with a device: establish (or reset) the session layout;
          without: report the current one *)
  | Ol_add of {
      oa_name : string;
      oa_demand : Device.Resource.demand;
      oa_defrag : bool;
      oa_max_moves : int option;
          (** unclamped; the session clamps (RF706) *)
    }
  | Ol_remove of string
  | Ol_defrag of int option  (** max_moves, unclamped *)

type request =
  | Solve of solve_req
  | Cancel of string
  | Stats
  | Shutdown
  | Online of online_req

val parse_request : string -> (request, string) result

val result_frame : id:string -> Pool.result -> string

val progress_frame : id:string -> Rfloor_obsv.Progress.snapshot -> string
(** One streamed [type:"progress"] frame: elapsed, nodes,
    lp_iterations, then incumbent / bound / gap when known and the
    portfolio-member node attribution when the job runs a portfolio. *)

val ack_frame : op:string -> id:string -> ok:bool -> string
val stats_frame : Pool.stats -> string
val error_frame : ?id:string -> string -> string

type layout_summary = {
  ls_device : string;
  ls_modules : int;
  ls_occupancy : float;
  ls_fragmentation : float;
  ls_free_rects : int;
}

val online_frame :
  op:string ->
  outcome:string ->
  ?name:string ->
  ?code:string ->
  ?message:string ->
  ?rect:Device.Rect.t ->
  ?moves:(string * Device.Rect.t * Device.Rect.t) list ->
  ?layout:layout_summary ->
  unit ->
  string
(** One [type:"online"] response: the request's [op], an [outcome]
    (["established"], ["admitted"], ["defrag"], ["fallback"],
    ["rejected"], ["removed"], ["compacted"], ["ok"] or ["error"]),
    and when known the placed rectangle, the executed moves and the
    post-request layout summary.  Error outcomes carry the RF7xx
    [code] and rendered [message]. *)

val version : string
(** ["rfloor-service/1"]. *)
