module Solver = Rfloor.Solver
module Sync = Rfloor_sync
module T = Rfloor_trace
module R = Rfloor_metrics.Registry

type source = Solved | Cache_hit | Warm_start

type solved = {
  outcome : Solver.outcome;
  source : source;
  key : string;
  waited : float;
}

type result =
  | Completed of solved
  | Stopped of solved * string
  | Failed of string

type state = Queued | Running | Done of result

type job = {
  id : int;
  priority : int;
  deadline : float option;  (* absolute, Unix.gettimeofday scale *)
  submitted : float;
  cancel_flag : bool Sync.Atomic.t;
  part : Device.Partition.t;
  spec : Device.Spec.t;
  options : Solver.options;
  mutable state : state;
}

type t = {
  mu : Sync.Mutex.t;
  cond : Sync.Condition.t;
  mutable queue : job list;  (* claimed highest priority first, then FIFO *)
  jobs : (int, job) Hashtbl.t;
  mutable next_id : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  workers : int;
  worker_state : string array;  (* per-worker, under [mu] *)
  cache : Cache.t;
  trace : T.t;
  metrics : R.t;
  (* under [mu] *)
  cache_hits : int Sync.Shared.t;
  cache_misses : int Sync.Shared.t;
  warm_starts : int Sync.Shared.t;
  finished : int Sync.Shared.t;
  (* metric handles (atomic; safe outside the lock) *)
  m_depth : R.Gauge.t;
  m_hits : R.Counter.t;
  m_misses : R.Counter.t;
  m_warm : R.Counter.t;
  m_jobs_completed : R.Counter.t;
  m_jobs_stopped : R.Counter.t;
  m_jobs_failed : R.Counter.t;
  m_seconds : R.Histogram.t;
}

let locked t f =
  Sync.Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Sync.Mutex.unlock t.mu) f

let bump c = Sync.Shared.set c (Sync.Shared.get c + 1)

let queue_depth_unlocked t = List.length t.queue

let set_depth t = R.Gauge.set t.m_depth (float_of_int (queue_depth_unlocked t))

(* ---------------- the per-job pipeline ---------------- *)

let empty_outcome =
  {
    Solver.plan = None;
    wasted = None;
    wirelength = None;
    fc_identified = 0;
    status = Solver.Unknown;
    objective_value = None;
    nodes = 0;
    simplex_iterations = 0;
    elapsed = 0.;
    stop = Some Solver.Cancelled;
    diagnostics = [];
    report = T.Report.empty;
  }

let outcome_of_entry canon (e : Cache.entry) =
  {
    empty_outcome with
    Solver.plan = Option.map (Canonical.decode_plan canon) e.Cache.plan;
    wasted = e.Cache.wasted;
    wirelength = e.Cache.wirelength;
    fc_identified = e.Cache.fc_identified;
    status = e.Cache.status;
    objective_value = e.Cache.objective;
    stop = None;
  }

let entry_of_outcome canon ~options_key ~options_text (o : Solver.outcome) =
  {
    Cache.instance_key = canon.Canonical.instance_key;
    options_key;
    instance_text = canon.Canonical.instance_text;
    options_text;
    status = o.Solver.status;
    wasted = o.Solver.wasted;
    wirelength = o.Solver.wirelength;
    objective = o.Solver.objective_value;
    fc_identified = o.Solver.fc_identified;
    plan = Option.map (Canonical.encode_plan canon) o.Solver.plan;
  }

let run_job t job =
  let canon = Canonical.of_instance job.part job.spec in
  let okey, otext = Canonical.options_key canon job.options in
  let hit =
    Cache.find t.cache ~instance_key:canon.Canonical.instance_key
      ~instance_text:canon.Canonical.instance_text ~options_key:okey
      ~options_text:otext
  in
  match hit with
  | Some (Cache.Exact e) ->
    locked t (fun () -> bump t.cache_hits);
    R.Counter.incr t.m_hits;
    Completed
      {
        outcome = outcome_of_entry canon e;
        source = Cache_hit;
        key = canon.Canonical.instance_key;
        waited = 0.;
      }
  | (Some (Cache.Near _) | None) as near ->
    let options, okey, otext, source =
      match near with
      | Some (Cache.Near _)
        when not
               (match job.options.Solver.strategy with
               | Solver.Strategy.Milp { engine = Solver.O; _ } -> true
               | _ -> false) ->
        (* only a plain-O MILP strategy is re-engined to HO; anything
           else (HO already pinned, heuristics, portfolios) keeps its
           own seed semantics *)
        locked t (fun () -> bump t.cache_misses);
        R.Counter.incr t.m_misses;
        (job.options, okey, otext, Solved)
      | Some (Cache.Near e) -> (
        match e.Cache.plan with
        | Some plan ->
          locked t (fun () -> bump t.warm_starts);
          R.Counter.incr t.m_warm;
          let seed = Canonical.decode_plan canon plan in
          let strategy =
            match job.options.Solver.strategy with
            | Solver.Strategy.Milp m ->
              Solver.Strategy.Milp { m with engine = Solver.Ho (Some seed) }
            | st -> st
          in
          let options = { job.options with Solver.strategy } in
          (* the answer we compute is an HO answer: store it under the
             options actually used, not the requested ones *)
          let okey, otext = Canonical.options_key canon options in
          (options, okey, otext, Warm_start)
        | None ->
          locked t (fun () -> bump t.cache_misses);
          R.Counter.incr t.m_misses;
          (job.options, okey, otext, Solved))
      | _ ->
        locked t (fun () -> bump t.cache_misses);
        R.Counter.incr t.m_misses;
        (job.options, okey, otext, Solved)
    in
    let user_cancel = options.Solver.cancel in
    let cancel () =
      Sync.Atomic.get job.cancel_flag
      || (match job.deadline with
         | Some d -> Unix.gettimeofday () > d
         | None -> false)
      || user_cancel ()
    in
    let options = { options with Solver.cancel = cancel } in
    let outcome = Solver.solve ~options job.part job.spec in
    let solved =
      { outcome; source; key = canon.Canonical.instance_key; waited = 0. }
    in
    (match outcome.Solver.stop with
    | Some Solver.Cancelled ->
      let reason =
        if Sync.Atomic.get job.cancel_flag then "cancel"
        else if
          match job.deadline with
          | Some d -> Unix.gettimeofday () > d
          | None -> false
        then "deadline"
        else "cancel"
      in
      Stopped (solved, reason)
    | Some Solver.Budget | None ->
      if outcome.Solver.status <> Solver.Unknown then
        Cache.store t.cache (entry_of_outcome canon ~options_key:okey ~options_text:otext outcome);
      Completed solved)

(* ---------------- workers ---------------- *)

let pop_best t =
  match t.queue with
  | [] -> None
  | _ ->
    let best =
      List.fold_left
        (fun acc j ->
          match acc with
          | Some b when (b.priority, -b.id) >= (j.priority, -j.id) -> acc
          | _ -> Some j)
        None t.queue
    in
    (match best with
    | Some j ->
      t.queue <- List.filter (fun j' -> j'.id <> j.id) t.queue;
      set_depth t
    | None -> ());
    best

(* The worker goes back to "idle" in the same critical section that
   publishes the result: an awaiter woken by the broadcast must never
   read a stale "job N" for a finished job. *)
let finish t ~w job result waited =
  (match result with
  | Completed _ -> R.Counter.incr t.m_jobs_completed
  | Stopped _ -> R.Counter.incr t.m_jobs_stopped
  | Failed _ -> R.Counter.incr t.m_jobs_failed);
  R.Histogram.observe t.m_seconds waited;
  locked t (fun () ->
      job.state <- Done result;
      t.worker_state.(w) <- "idle";
      bump t.finished;
      Sync.Condition.broadcast t.cond)

let run t w job =
  let result =
    T.span t.trace ~worker:w T.Event.Job (fun () ->
        if Sync.Atomic.get job.cancel_flag then
          (* cancelled while still queued: a clean stop, no solve *)
          Stopped
            ( { outcome = empty_outcome; source = Solved; key = ""; waited = 0. },
              "cancel" )
        else
          try run_job t job
          with exn -> Failed (Printexc.to_string exn))
  in
  let waited = Unix.gettimeofday () -. job.submitted in
  let result =
    match result with
    | Completed s -> Completed { s with waited }
    | Stopped (s, r) -> Stopped ({ s with waited }, r)
    | Failed _ -> result
  in
  finish t ~w job result waited

let rec worker_loop t w =
  Sync.Mutex.lock t.mu;
  let rec claim () =
    match pop_best t with
    | Some job ->
      job.state <- Running;
      t.worker_state.(w) <- Printf.sprintf "job %d" job.id;
      Some job
    | None ->
      if t.stop then None
      else begin
        Sync.Condition.wait t.cond t.mu;
        claim ()
      end
  in
  let job = claim () in
  if job = None then t.worker_state.(w) <- "stopped";
  Sync.Mutex.unlock t.mu;
  match job with
  | None -> ()
  | Some job ->
    run t w job;
    worker_loop t w

(* ---------------- lifecycle ---------------- *)

let create ?(workers = 1) ?(cache_capacity = 128) ?(metrics = R.null)
    ?(trace = T.disabled) () =
  let workers = max 1 workers in
  let counter = R.counter metrics in
  let jobs ~outcome =
    R.counter metrics ~help:"Service jobs by final outcome"
      ~labels:[ ("outcome", outcome) ]
      "rfloor_service_jobs_total"
  in
  let t =
    {
      mu = Sync.Mutex.create ~name:"pool.mu" ();
      cond = Sync.Condition.create ~name:"pool.cond" ();
      queue = [];
      jobs = Hashtbl.create 64;
      next_id = 0;
      stop = false;
      domains = [];
      workers;
      worker_state = Array.make workers "idle";
      cache = Cache.create ~capacity:cache_capacity ();
      trace;
      metrics;
      cache_hits = Sync.Shared.make ~name:"pool.cache_hits" 0;
      cache_misses = Sync.Shared.make ~name:"pool.cache_misses" 0;
      warm_starts = Sync.Shared.make ~name:"pool.warm_starts" 0;
      finished = Sync.Shared.make ~name:"pool.finished" 0;
      m_depth =
        R.gauge metrics ~help:"Jobs waiting in the service queue"
          "rfloor_service_queue_depth";
      m_hits =
        counter ~help:"Exact canonical-key cache hits"
          "rfloor_service_cache_hits_total";
      m_misses =
        counter ~help:"Canonical-key cache misses"
          "rfloor_service_cache_misses_total";
      m_warm =
        counter ~help:"Near hits injected as warm starts"
          "rfloor_service_warm_starts_total";
      m_jobs_completed = jobs ~outcome:"completed";
      m_jobs_stopped = jobs ~outcome:"stopped";
      m_jobs_failed = jobs ~outcome:"failed";
      m_seconds =
        R.histogram metrics ~help:"Submit-to-finish latency per job"
          "rfloor_service_job_seconds";
    }
  in
  t.domains <-
    List.init workers (fun w ->
        Sync.Domain.spawn ~name:(Printf.sprintf "pool.worker%d" w) (fun () ->
            worker_loop t w));
  t

let submit t ?(priority = 0) ?deadline ?(options = Solver.default_options) part
    spec =
  let now = Unix.gettimeofday () in
  locked t (fun () ->
      if t.stop then invalid_arg "Pool.submit: pool is shut down";
      t.next_id <- t.next_id + 1;
      let job =
        {
          id = t.next_id;
          priority;
          deadline = Option.map (fun d -> now +. d) deadline;
          submitted = now;
          cancel_flag = Sync.Atomic.make ~name:"pool.job.cancel" false;
          part;
          spec;
          options;
          state = Queued;
        }
      in
      Hashtbl.add t.jobs job.id job;
      t.queue <- job :: t.queue;
      set_depth t;
      Sync.Condition.broadcast t.cond;
      job.id)

let cancel t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> false
      | Some job -> (
        match job.state with
        | Done _ -> false
        | Queued | Running ->
          Sync.Atomic.set job.cancel_flag true;
          true))

let await t id =
  let job =
    locked t (fun () ->
        match Hashtbl.find_opt t.jobs id with
        | None -> invalid_arg (Printf.sprintf "Pool.await: unknown job %d" id)
        | Some job -> job)
  in
  Sync.Mutex.lock t.mu;
  let rec wait () =
    match job.state with
    | Done r -> r
    | Queued | Running ->
      Sync.Condition.wait t.cond t.mu;
      wait ()
  in
  let r = wait () in
  Sync.Mutex.unlock t.mu;
  r

type stats = {
  s_workers : int;
  s_queued : int;
  s_running : int;
  s_finished : int;
  s_cache_entries : int;
  s_cache_capacity : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_warm_starts : int;
}

let stats t =
  locked t (fun () ->
      let running =
        Hashtbl.fold
          (fun _ j acc -> match j.state with Running -> acc + 1 | _ -> acc)
          t.jobs 0
      in
      {
        s_workers = t.workers;
        s_queued = queue_depth_unlocked t;
        s_running = running;
        s_finished = Sync.Shared.get t.finished;
        s_cache_entries = Cache.length t.cache;
        s_cache_capacity = Cache.capacity t.cache;
        s_cache_hits = Sync.Shared.get t.cache_hits;
        s_cache_misses = Sync.Shared.get t.cache_misses;
        s_warm_starts = Sync.Shared.get t.warm_starts;
      })

let worker_states t = locked t (fun () -> Array.to_list t.worker_state)

let shutdown t =
  let domains =
    locked t (fun () ->
        t.stop <- true;
        Sync.Condition.broadcast t.cond;
        let d = t.domains in
        t.domains <- [];
        d)
  in
  List.iter Sync.Domain.join domains
