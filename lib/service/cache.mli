(** Bounded LRU cache of solved floorplanning instances, keyed by
    {!Canonical} keys and verified against the full canonical texts (a
    key is only a hash; byte-equal text is what implies an isomorphic
    instance, so a collision can never produce a false hit).

    Policy:
    - an {e exact} hit — same instance key {e and} options key, texts
      equal — is only served from an [Optimal] entry, because optimal
      answers are the only ones independent of the budget options the
      key deliberately omits;
    - a {e near} hit — same instance under different options — returns
      any entry carrying a plan (preferring [Optimal], then recency)
      for the caller to inject as a warm start.

    All operations are mutex-serialized: one cache is shared by every
    worker of a {!Pool}. *)

type entry = {
  instance_key : string;
  options_key : string;
  instance_text : string;
  options_text : string;
  status : Rfloor.Solver.status;
  wasted : int option;
  wirelength : float option;
  objective : float option;
  fc_identified : int;
  plan : Canonical.plan option;  (** canonical form: region indices *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 128 entries.  @raise Invalid_argument if < 1. *)

type hit = Exact of entry | Near of entry

val find :
  t ->
  instance_key:string ->
  instance_text:string ->
  options_key:string ->
  options_text:string ->
  hit option
(** Refreshes the returned entry's recency. *)

val store : t -> entry -> unit
(** Inserts (or replaces the same-key entry), evicting the least
    recently used entry at capacity. *)

val length : t -> int
val capacity : t -> int

val keys : t -> string list
(** All stored full keys ([instance_key ^ "/" ^ options_key]), sorted.
    For tests and diagnostics. *)
