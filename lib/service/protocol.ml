module J = Rfloor_metrics.Json
module Solver = Rfloor.Solver
module Rect = Device.Rect

let version = "rfloor-service/1"

(* ---------------- requests ---------------- *)

type source_ref = Builtin of string | Inline of string

type solve_req = {
  sq_id : string;
  sq_device : source_ref;
  sq_design : source_ref;
  sq_strategy : Solver.Strategy.t option;
  sq_engine : [ `O | `Ho ];
  sq_objective : [ `Lex | `Feasibility ];
  sq_time : float option;
  sq_priority : int;
  sq_deadline : float option;
  sq_workers : int;
  sq_progress : float option;  (* requested interval_s, unclamped *)
}

type online_req =
  | Ol_layout of source_ref option
      (* with a device: establish (or reset) the session layout;
         without: report the current one *)
  | Ol_add of {
      oa_name : string;
      oa_demand : Device.Resource.demand;
      oa_defrag : bool;
      oa_max_moves : int option;  (* unclamped; the session clamps (RF706) *)
    }
  | Ol_remove of string
  | Ol_defrag of int option  (* max_moves, unclamped *)

type request =
  | Solve of solve_req
  | Cancel of string
  | Stats
  | Shutdown
  | Online of online_req

let ( let* ) = Result.bind

let opt_string key json =
  match J.member key json with
  | None -> Ok None
  | Some (J.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" key)

let opt_num key json =
  match J.member key json with
  | None | Some J.Null -> Ok None
  | Some (J.Num n) -> Ok (Some n)
  | Some _ -> Error (Printf.sprintf "field %S must be a number" key)

let opt_int ~default key json =
  let* n = opt_num key json in
  match n with
  | None -> Ok default
  | Some f when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)

let source ~name_key ~text_key json =
  let* name = opt_string name_key json in
  let* text = opt_string text_key json in
  match (name, text) with
  | Some n, None -> Ok (Builtin n)
  | None, Some t -> Ok (Inline t)
  | Some _, Some _ ->
    Error (Printf.sprintf "give %S or %S, not both" name_key text_key)
  | None, None ->
    Error (Printf.sprintf "missing %S or %S" name_key text_key)

let parse_solve json =
  let* sq_id = J.get_string "id" json in
  let* sq_device = source ~name_key:"device" ~text_key:"device_text" json in
  let* sq_design = source ~name_key:"design" ~text_key:"design_text" json in
  let* strategy = opt_string "strategy" json in
  let* sq_strategy =
    match strategy with
    | None -> Ok None
    | Some str -> (
      match Solver.Strategy.of_string str with
      | Ok st -> Ok (Some st)
      | Error d -> Error (Rfloor_diag.Diagnostic.location_to_string d.Rfloor_diag.Diagnostic.location ^ ": " ^ d.Rfloor_diag.Diagnostic.message))
  in
  let* engine = opt_string "engine" json in
  let* sq_engine =
    match engine with
    | None | Some "milp" -> Ok `O
    | Some ("milp-ho" | "ho") -> Ok `Ho
    | Some e -> Error (Printf.sprintf "unknown engine %S (milp | milp-ho)" e)
  in
  let* objective = opt_string "objective" json in
  let* sq_objective =
    match objective with
    | None | Some "lex" -> Ok `Lex
    | Some ("feasibility" | "feas") -> Ok `Feasibility
    | Some o -> Error (Printf.sprintf "unknown objective %S (lex | feasibility)" o)
  in
  let* sq_time = opt_num "time" json in
  let* sq_priority = opt_int ~default:0 "priority" json in
  let* sq_deadline = opt_num "deadline" json in
  let* sq_workers = opt_int ~default:1 "workers" json in
  let* sq_progress =
    match J.member "progress" json with
    | None | Some J.Null -> Ok None
    | Some (J.Obj _ as p) -> (
      match J.member "interval_s" p with
      | Some (J.Num n) -> Ok (Some n)
      | Some _ -> Error "field \"progress.interval_s\" must be a number"
      | None -> Error "field \"progress\" needs an \"interval_s\" member")
    | Some _ -> Error "field \"progress\" must be an object"
  in
  Ok
    (Solve
       {
         sq_id;
         sq_device;
         sq_design;
         sq_strategy;
         sq_engine;
         sq_objective;
         sq_time;
         sq_priority;
         sq_deadline;
         sq_workers;
         sq_progress;
       })

(* demand objects use lowercase kind names; IO columns are not
   requestable by regions (Resource.kind doc), so "io" is rejected *)
let kind_of_key = function
  | "clb" -> Some Device.Resource.Clb
  | "bram" -> Some Device.Resource.Bram
  | "dsp" -> Some Device.Resource.Dsp
  | _ -> None

let parse_demand json =
  match J.member "demand" json with
  | None -> Error "missing \"demand\" object"
  | Some (J.Obj fields) ->
    let rec go acc = function
      | [] ->
        if acc = [] then Error "field \"demand\" must request at least one tile"
        else Ok (List.rev acc)
      | (key, v) :: rest -> (
        match kind_of_key (String.lowercase_ascii key) with
        | None ->
          Error (Printf.sprintf "unknown demand kind %S (clb | bram | dsp)" key)
        | Some k -> (
          match v with
          | J.Num f when Float.is_integer f && f > 0. ->
            go ((k, int_of_float f) :: acc) rest
          | _ ->
            Error
              (Printf.sprintf "demand %S must be a positive integer" key)))
    in
    go [] fields
  | Some _ -> Error "field \"demand\" must be an object"

let opt_bool ~default key json =
  match J.member key json with
  | None -> Ok default
  | Some (J.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" key)

let opt_source ~name_key ~text_key json =
  let* name = opt_string name_key json in
  let* text = opt_string text_key json in
  match (name, text) with
  | Some n, None -> Ok (Some (Builtin n))
  | None, Some t -> Ok (Some (Inline t))
  | Some _, Some _ ->
    Error (Printf.sprintf "give %S or %S, not both" name_key text_key)
  | None, None -> Ok None

let opt_int_opt key json =
  let* n = opt_num key json in
  match n with
  | None -> Ok None
  | Some f when Float.is_integer f -> Ok (Some (int_of_float f))
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)

let parse_request line =
  let* json = J.parse line in
  let* op = J.get_string "op" json in
  match op with
  | "solve" -> parse_solve json
  | "cancel" ->
    let* id = J.get_string "id" json in
    Ok (Cancel id)
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | "layout" ->
    let* src = opt_source ~name_key:"device" ~text_key:"device_text" json in
    Ok (Online (Ol_layout src))
  | "add" ->
    let* oa_name = J.get_string "name" json in
    let* oa_demand = parse_demand json in
    let* oa_defrag = opt_bool ~default:true "defrag" json in
    let* oa_max_moves = opt_int_opt "max_moves" json in
    Ok (Online (Ol_add { oa_name; oa_demand; oa_defrag; oa_max_moves }))
  | "remove" ->
    let* name = J.get_string "name" json in
    Ok (Online (Ol_remove name))
  | "defrag" ->
    let* max_moves = opt_int_opt "max_moves" json in
    Ok (Online (Ol_defrag max_moves))
  | op ->
    Error
      (Printf.sprintf
         "unknown op %S (solve | cancel | stats | shutdown | layout | add | \
          remove | defrag)"
         op)

(* ---------------- responses ---------------- *)

let num f = if Float.is_finite f then J.Num f else J.Null
let opt_field k v = match v with None -> [] | Some j -> [ (k, j) ]

let status_str = function
  | Solver.Optimal -> "optimal"
  | Solver.Feasible -> "feasible"
  | Solver.Infeasible -> "infeasible"
  | Solver.Unknown -> "unknown"

let source_str = function
  | Pool.Solved -> "solved"
  | Pool.Cache_hit -> "cache"
  | Pool.Warm_start -> "warm"

let plan_json (p : Device.Floorplan.t) =
  let rect (r : Rect.t) =
    [
      ("x", J.Num (float_of_int r.Rect.x));
      ("y", J.Num (float_of_int r.Rect.y));
      ("w", J.Num (float_of_int r.Rect.w));
      ("h", J.Num (float_of_int r.Rect.h));
    ]
  in
  J.Arr
    (List.map
       (fun pl ->
         J.Obj (("region", J.Str pl.Device.Floorplan.p_region) :: rect pl.Device.Floorplan.p_rect))
       p.Device.Floorplan.placements
    @ List.map
        (fun fa ->
          J.Obj
            (("region", J.Str fa.Device.Floorplan.fc_region)
            :: ("copy", J.Num (float_of_int fa.Device.Floorplan.fc_index))
            :: rect fa.Device.Floorplan.fc_rect))
        p.Device.Floorplan.fc_areas)

let solved_fields (s : Pool.solved) =
  let o = s.Pool.outcome in
  [
    ("source", J.Str (source_str s.Pool.source));
    ("status", J.Str (status_str o.Solver.status));
    ("fc", J.Num (float_of_int o.Solver.fc_identified));
    ("nodes", J.Num (float_of_int o.Solver.nodes));
    ("iterations", J.Num (float_of_int o.Solver.simplex_iterations));
    ("elapsed", num o.Solver.elapsed);
    ("waited", num s.Pool.waited);
    ("key", J.Str s.Pool.key);
  ]
  @ opt_field "wasted" (Option.map (fun w -> J.Num (float_of_int w)) o.Solver.wasted)
  @ opt_field "wirelength" (Option.map num o.Solver.wirelength)
  @ opt_field "objective" (Option.map num o.Solver.objective_value)
  @ opt_field "stop"
      (match o.Solver.stop with
      | Some Solver.Budget -> Some (J.Str "budget")
      | Some Solver.Cancelled -> Some (J.Str "cancel")
      | None -> None)
  @ opt_field "plan" (Option.map plan_json o.Solver.plan)

let frame fields = J.to_string (J.Obj (("v", J.Str version) :: fields))

let result_frame ~id result =
  frame
    (("type", J.Str "result")
    :: ("id", J.Str id)
    ::
    (match result with
    | Pool.Completed s -> ("outcome", J.Str "completed") :: solved_fields s
    | Pool.Stopped (s, reason) ->
      ("outcome", J.Str "stopped") :: ("reason", J.Str reason) :: solved_fields s
    | Pool.Failed msg -> [ ("outcome", J.Str "failed"); ("error", J.Str msg) ]))

let progress_frame ~id (s : Rfloor_obsv.Progress.snapshot) =
  let module P = Rfloor_obsv.Progress in
  frame
    ([
       ("type", J.Str "progress");
       ("id", J.Str id);
       ("elapsed", num s.P.p_elapsed);
       ("nodes", J.Num (float_of_int s.P.p_nodes));
       ("lp_iterations", J.Num (float_of_int s.P.p_lp_iterations));
     ]
    @ opt_field "incumbent" (Option.map num s.P.p_incumbent)
    @ opt_field "bound" (Option.map num s.P.p_bound)
    @ opt_field "gap" (Option.map num s.P.p_gap)
    @
    match s.P.p_members with
    | [] -> []
    | members ->
      [
        ( "members",
          J.Arr
            (List.map
               (fun (label, nodes) ->
                 J.Obj
                   [
                     ("label", J.Str label);
                     ("nodes", J.Num (float_of_int nodes));
                   ])
               members) );
      ])

let ack_frame ~op ~id ~ok =
  frame
    [ ("type", J.Str "ack"); ("op", J.Str op); ("id", J.Str id); ("ok", J.Bool ok) ]

let stats_frame (s : Pool.stats) =
  let i n = J.Num (float_of_int n) in
  frame
    [
      ("type", J.Str "stats");
      ("workers", i s.Pool.s_workers);
      ("queued", i s.Pool.s_queued);
      ("running", i s.Pool.s_running);
      ("finished", i s.Pool.s_finished);
      ("cache_entries", i s.Pool.s_cache_entries);
      ("cache_capacity", i s.Pool.s_cache_capacity);
      ("cache_hits", i s.Pool.s_cache_hits);
      ("cache_misses", i s.Pool.s_cache_misses);
      ("warm_starts", i s.Pool.s_warm_starts);
    ]

let error_frame ?id msg =
  frame
    (("type", J.Str "error")
    :: (opt_field "id" (Option.map (fun s -> J.Str s) id)
       @ [ ("message", J.Str msg) ]))

(* ---------------- online frames ---------------- *)

type layout_summary = {
  ls_device : string;
  ls_modules : int;
  ls_occupancy : float;
  ls_fragmentation : float;
  ls_free_rects : int;
}

let rect_json (r : Rect.t) =
  J.Obj
    [
      ("x", J.Num (float_of_int r.Rect.x));
      ("y", J.Num (float_of_int r.Rect.y));
      ("w", J.Num (float_of_int r.Rect.w));
      ("h", J.Num (float_of_int r.Rect.h));
    ]

let layout_json ls =
  J.Obj
    [
      ("device", J.Str ls.ls_device);
      ("modules", J.Num (float_of_int ls.ls_modules));
      ("occupancy", num ls.ls_occupancy);
      ("fragmentation", num ls.ls_fragmentation);
      ("free_rects", J.Num (float_of_int ls.ls_free_rects));
    ]

let online_frame ~op ~outcome ?name ?code ?message ?rect ?(moves = []) ?layout
    () =
  frame
    ([ ("type", J.Str "online"); ("op", J.Str op); ("outcome", J.Str outcome) ]
    @ opt_field "name" (Option.map (fun s -> J.Str s) name)
    @ opt_field "code" (Option.map (fun s -> J.Str s) code)
    @ opt_field "message" (Option.map (fun s -> J.Str s) message)
    @ opt_field "rect" (Option.map rect_json rect)
    @ (match moves with
      | [] -> []
      | _ ->
        [
          ( "moves",
            J.Arr
              (List.map
                 (fun (mname, src, dst) ->
                   J.Obj
                     [
                       ("module", J.Str mname);
                       ("src", rect_json src);
                       ("dst", rect_json dst);
                     ])
                 moves) );
        ])
    @ opt_field "layout" (Option.map layout_json layout))
