(** NDJSON service session: reads {!Protocol} request frames from a
    channel, runs them on a {!Pool}, writes response frames.

    Concurrency shape: the calling thread is the {e reader} — it
    parses, submits and never blocks on a solve, so a [cancel] frame
    can reach a job that is still queued or running.  A dedicated
    {e responder} domain prints responses strictly in submission order
    (result frames block on their job), making a scripted session's
    output deterministic.  [stats] frames are rendered when reached in
    that order, i.e. after every earlier job has finished.

    Jobs that opt in with [{"progress":{"interval_s":N}}] additionally
    stream [type:"progress"] frames, emitted by one shared
    {!Rfloor_obsv.Progress.Ticker} domain (no polling thread per job).
    All output goes through one mutex, and a job's progress entry is
    killed under that mutex right before its result frame is printed —
    a progress frame never follows its job's result frame.

    Online floorplanning ops ([layout]/[add]/[remove]/[defrag]) carry
    per-session {!Rfloor_online.Layout} state: they are handled
    synchronously in the reader thread, so their [type:"online"]
    responses keep submission order with solve results.  Relocations
    planned by the no-break defragmenter emit [move] trace events and
    the [rfloor_online_*] metrics family; an established layout's
    occupancy/fragmentation gauges also appear in the [/statusz]
    document. *)

val run :
  ?workers:int ->
  ?cache_capacity:int ->
  ?metrics:Rfloor_metrics.Registry.t ->
  ?trace:Rfloor_trace.t ->
  ?warn:(Rfloor_diag.Diagnostic.t -> unit) ->
  ?on_status:((unit -> string) -> unit) ->
  devices:(string -> Device.Grid.t option) ->
  designs:(string -> Device.Spec.t option) ->
  in_channel ->
  out_channel ->
  unit
(** Runs until [{"op":"shutdown"}] or end of input, then drains the
    queue, prints the remaining responses and joins the pool.
    [devices]/[designs] resolve {!Protocol.Builtin} names (the CLI
    passes its builtin tables); inline [device_text]/[design_text] go
    through {!Device.Io}.  [metrics] feeds both the pool's
    [rfloor_service_*] family and each job's solver instrumentation;
    [trace] receives per-job [Job] spans.

    [warn] receives out-of-band diagnostics (today: RF603 progress
    interval clamps); default drops them.  [on_status] is called once
    at startup with a thunk rendering the live [rfloor-statusz/1]
    document (pool workers/queue/cache plus in-flight jobs) — the CLI
    hands it to the telemetry HTTP server.  Providing [on_status] also
    makes every job carry a progress entry, so [/statusz] lists
    in-flight work even for jobs that did not ask for progress
    frames. *)
