module P = Protocol
module Sync = Rfloor_sync
module Solver = Rfloor.Solver
module Progress = Rfloor_obsv.Progress
module Statusz = Rfloor_obsv.Statusz
module Ol = Rfloor_online
module Diag = Rfloor_diag.Diagnostic

(* The response queue decouples reading from answering: the reader
   thread parses and submits without ever blocking on a solve, so a
   [cancel] frame can reach a job that is still queued or mid-solve.
   The responder domain prints one frame per item strictly in
   submission order — [Job] items block on the pool — which makes a
   scripted session's output deterministic (the serve-smoke gate
   depends on exactly that).

   Progress frames are the one exception to responder-only output: the
   shared ticker domain writes them directly, so every write goes
   through one output mutex.  A job's entry is marked dead under that
   same mutex immediately before its result frame is printed, so no
   progress frame for a job can follow its result frame. *)

type progress_ctx = {
  pc_entry : Progress.entry;
  pc_sub : (Progress.Ticker.t * int) option;
}

type item =
  | Job of string * int * progress_ctx option  (* request id, pool ticket *)
  | Ready of string  (* pre-rendered frame *)
  | Stats_item  (* rendered at dequeue time, i.e. after prior jobs *)
  | Quit

type queue = {
  mu : Sync.Mutex.t;
  cond : Sync.Condition.t;
  q : item Queue.t;
}

let push qu item =
  Sync.Mutex.lock qu.mu;
  Queue.add item qu.q;
  Sync.Condition.signal qu.cond;
  Sync.Mutex.unlock qu.mu

let pop qu =
  Sync.Mutex.lock qu.mu;
  while Queue.is_empty qu.q do
    Sync.Condition.wait qu.cond qu.mu
  done;
  let item = Queue.pop qu.q in
  Sync.Mutex.unlock qu.mu;
  item

let diag_str d = Format.asprintf "%a" Rfloor_diag.Diagnostic.pp d

let resolve_grid ~devices = function
  | P.Builtin name -> (
    match devices name with
    | Some g -> Ok g
    | None -> Error (Printf.sprintf "unknown device %S" name))
  | P.Inline text -> (
    match Device.Io.parse_grid text with
    | Ok g -> Ok g
    | Error d -> Error (diag_str d))

let resolve_spec ~designs = function
  | P.Builtin name -> (
    match designs name with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown design %S" name))
  | P.Inline text -> (
    match Device.Io.parse_spec text with
    | Ok s -> Ok s
    | Error d -> Error (diag_str d))

let ( let* ) = Result.bind

let strategy_of_req (sq : P.solve_req) =
  match sq.P.sq_strategy with
  | Some st -> st
  | None ->
    Solver.Strategy.milp ~workers:sq.P.sq_workers
      ~engine:(match sq.P.sq_engine with `O -> Solver.O | `Ho -> Solver.Ho None)
      ()

let submit_solve pool ~metrics ?trace ~devices ~designs (sq : P.solve_req) =
  let* grid = resolve_grid ~devices sq.P.sq_device in
  let* spec = resolve_spec ~designs sq.P.sq_design in
  let* part =
    match Device.Partition.columnar grid with
    | Ok p -> Ok p
    | Error d -> Error (diag_str d)
  in
  let options =
    Solver.Options.make ~strategy:(strategy_of_req sq)
      ~objective_mode:
        (match sq.P.sq_objective with
        | `Lex -> Solver.Lexicographic
        | `Feasibility -> Solver.Feasibility_only)
      ?time_limit:sq.P.sq_time ?trace ~metrics ()
  in
  Ok
    (Pool.submit pool ~priority:sq.P.sq_priority ?deadline:sq.P.sq_deadline
       ~options part spec)

let pool_view pool =
  let st = Pool.stats pool in
  {
    Statusz.pv_workers = Pool.worker_states pool;
    pv_queued = st.Pool.s_queued;
    pv_running = st.Pool.s_running;
    pv_finished = st.Pool.s_finished;
    pv_cache_hits = st.Pool.s_cache_hits;
    pv_cache_misses = st.Pool.s_cache_misses;
    pv_cache_size = st.Pool.s_cache_entries;
  }

(* ---------------- per-session online layout ---------------- *)

(* All online ops run synchronously in the reader thread (their Ready
   frames keep submission order with solve results); the statusz thunk
   reads the ref from the HTTP domain, but the stored Layout.t is
   immutable, so the worst case is a one-request-old snapshot. *)

let layout_summary (dev, l) =
  {
    P.ls_device = dev;
    ls_modules = Ol.Layout.modules l;
    ls_occupancy = Ol.Layout.occupancy l;
    ls_fragmentation = Ol.Layout.fragmentation l;
    ls_free_rects = List.length (Ol.Layout.free_rects l);
  }

let layout_view (dev, l) =
  {
    Statusz.lv_device = dev;
    lv_modules = Ol.Layout.modules l;
    lv_occupancy = Ol.Layout.occupancy l;
    lv_fragmentation = Ol.Layout.fragmentation l;
    lv_free_rects = List.length (Ol.Layout.free_rects l);
  }

let move_triple (m : Ol.Defrag.move) = (m.Ol.Defrag.mv_name, m.Ol.Defrag.mv_src, m.Ol.Defrag.mv_dst)

let diag_frame ~op ?name (d : Diag.t) =
  P.online_frame ~op ~outcome:"error" ?name ~code:d.Diag.code
    ~message:(Format.asprintf "%a" Diag.pp d) ()

(* the RF704 fallback path: every live module re-placed with a fresh
   image — the no-break guarantee is waived, which callers see as
   outcome "fallback" carrying code RF704 *)
let rebuild_from_assignment part ~demands assignment =
  List.fold_left
    (fun acc (name, rect) ->
      match acc with
      | Error _ as e -> e
      | Ok l -> (
        match List.assoc_opt name demands with
        | None ->
          Error
            (Diag.diagf ~code:"RF702" Diag.Error (Diag.Layout name)
               "fallback assignment names unknown module %S" name)
        | Some demand -> Ol.Layout.place_at l name demand rect))
    (Ok (Ol.Layout.create part))
    assignment

type online_ctx = {
  oc_state : (string * Ol.Layout.t) option ref;
  oc_rejected : string list ref;
      (* arrivals the layout turned away: their later departures answer
         "skipped", not RF702 — replayed traces stay error-free *)
  oc_warn : Diag.t -> unit;
  oc_on_move : Ol.Defrag.move -> unit;
  oc_metrics : Rfloor_metrics.Registry.t;
}

let online_counter ctx name help =
  Rfloor_metrics.Registry.counter ctx.oc_metrics ~help name

let set_layout ctx dev l =
  ctx.oc_state := Some (dev, l);
  let module R = Rfloor_metrics.Registry in
  R.Gauge.set
    (R.gauge ctx.oc_metrics
       ~help:"Occupied fraction of the online layout's usable tiles"
       "rfloor_online_occupancy")
    (Ol.Layout.occupancy l);
  R.Gauge.set
    (R.gauge ctx.oc_metrics
       ~help:"1 - largest free rectangle / total free area of the online layout"
       "rfloor_online_fragmentation")
    (Ol.Layout.fragmentation l)

let rf703 op =
  Diag.diagf ~code:"RF703" Diag.Error (Diag.Layout op)
    "online %S before a layout device was established (send \
     {\"op\":\"layout\",\"device\":...} first)"
    op

(* max_moves outside [0, 8] is clamped with an RF706 warning (8 is
   already far beyond what the BFS explores in bounded time) *)
let clamp_max_moves ctx ~op = function
  | None -> 3
  | Some n when n >= 0 && n <= 8 -> n
  | Some n ->
    let clamped = max 0 (min 8 n) in
    ctx.oc_warn
      (Diag.diagf ~code:"RF706" Diag.Warning (Diag.Layout op)
         "max_moves %d out of range [0, 8]; clamped to %d" n clamped);
    clamped

let handle_online ctx ~resolve_grid (req : P.online_req) =
  let module R = Rfloor_metrics.Registry in
  let incr name help = R.Counter.incr (online_counter ctx name help) in
  let frame = P.online_frame in
  let summary () = Option.map layout_summary !(ctx.oc_state) in
  match req with
  | P.Ol_layout src -> (
    match src with
    | None -> (
      match !(ctx.oc_state) with
      | None -> diag_frame ~op:"layout" (rf703 "layout")
      | Some st -> frame ~op:"layout" ~outcome:"ok" ~layout:(layout_summary st) ())
    | Some src -> (
      match resolve_grid src with
      | Error msg -> frame ~op:"layout" ~outcome:"error" ~message:msg ()
      | Ok grid -> (
        match Device.Partition.columnar grid with
        | Error d -> diag_frame ~op:"layout" d
        | Ok part ->
          let dev = Device.Grid.name grid in
          ctx.oc_rejected := [];
          set_layout ctx dev (Ol.Layout.create part);
          frame ~op:"layout" ~outcome:"established"
            ?layout:(summary ()) ())))
  | P.Ol_remove name -> (
    match !(ctx.oc_state) with
    | None -> diag_frame ~op:"remove" ~name (rf703 "remove")
    | Some (dev, l) -> (
      match Ol.Layout.remove l name with
      | Error d ->
        if List.mem name !(ctx.oc_rejected) then begin
          ctx.oc_rejected :=
            List.filter (fun n -> n <> name) !(ctx.oc_rejected);
          frame ~op:"remove" ~outcome:"skipped" ~name ?layout:(summary ()) ()
        end
        else diag_frame ~op:"remove" ~name d
      | Ok l' ->
        set_layout ctx dev l';
        incr "rfloor_online_removes_total" "Online departures executed";
        frame ~op:"remove" ~outcome:"removed" ~name ?layout:(summary ()) ()))
  | P.Ol_defrag max_moves -> (
    match !(ctx.oc_state) with
    | None -> diag_frame ~op:"defrag" (rf703 "defrag")
    | Some (dev, l) -> (
      let max_moves = clamp_max_moves ctx ~op:"defrag" max_moves in
      let schedule = Ol.Defrag.compact ~max_moves l in
      match Ol.Defrag.execute ~on_move:ctx.oc_on_move l schedule with
      | Error d -> diag_frame ~op:"defrag" d
      | Ok l' ->
        set_layout ctx dev l';
        incr "rfloor_online_defrags_total"
          "Defragmentation episodes (planner or explicit compaction)";
        R.Counter.add
          (online_counter ctx "rfloor_online_moves_executed_total"
             "Relocations executed through the bitstream filter")
          (List.length schedule);
        frame ~op:"defrag" ~outcome:"compacted"
          ~moves:(List.map move_triple schedule)
          ?layout:(summary ()) ()))
  | P.Ol_add { oa_name; oa_demand; oa_defrag; oa_max_moves } -> (
    match !(ctx.oc_state) with
    | None -> diag_frame ~op:"add" ~name:oa_name (rf703 "add")
    | Some (dev, l) -> (
      let admitted outcome ?moves l' rect =
        set_layout ctx dev l';
        incr "rfloor_online_adds_total" "Online arrivals placed";
        frame ~op:"add" ~outcome ~name:oa_name ~rect ?moves
          ?layout:(summary ()) ()
      in
      match Ol.Layout.place l oa_name oa_demand with
      | Ok (l', rect) ->
        incr "rfloor_online_admission_hits_total"
          "Arrivals admitted into an existing free rectangle";
        admitted "admitted" l' rect
      | Error d when d.Diag.code <> "RF701" ->
        diag_frame ~op:"add" ~name:oa_name d
      | Error d when not oa_defrag ->
        incr "rfloor_online_rejects_total" "Arrivals turned away";
        ctx.oc_rejected := oa_name :: !(ctx.oc_rejected);
        frame ~op:"add" ~outcome:"rejected" ~name:oa_name ~code:d.Diag.code
          ~message:(Format.asprintf "%a" Diag.pp d)
          ?layout:(summary ()) ()
      | Error _ -> (
        let max_moves = clamp_max_moves ctx ~op:"add" oa_max_moves in
        match Ol.Defrag.plan ~max_moves l ~name:oa_name ~demand:oa_demand with
        | Error d ->
          incr "rfloor_online_rejects_total" "Arrivals turned away";
          ctx.oc_rejected := oa_name :: !(ctx.oc_rejected);
          frame ~op:"add" ~outcome:"rejected" ~name:oa_name ~code:d.Diag.code
            ~message:(Format.asprintf "%a" Diag.pp d)
            ?layout:(summary ()) ()
        | Ok (Ol.Defrag.Admit rect) -> (
          (* Layout.place above just failed, so this cannot happen on a
             consistent layout; place anyway rather than crash *)
          match Ol.Layout.place l oa_name oa_demand with
          | Ok (l', _) -> admitted "admitted" l' rect
          | Error d -> diag_frame ~op:"add" ~name:oa_name d)
        | Ok (Ol.Defrag.Moves (schedule, _)) -> (
          match Ol.Defrag.execute ~on_move:ctx.oc_on_move l schedule with
          | Error d -> diag_frame ~op:"add" ~name:oa_name d
          | Ok l' -> (
            match Ol.Layout.place l' oa_name oa_demand with
            | Error d -> diag_frame ~op:"add" ~name:oa_name d
            | Ok (l'', rect) ->
              incr "rfloor_online_defrags_total"
                "Defragmentation episodes (planner or explicit compaction)";
              R.Counter.add
                (online_counter ctx "rfloor_online_moves_executed_total"
                   "Relocations executed through the bitstream filter")
                (List.length schedule);
              admitted "defrag"
                ~moves:(List.map move_triple schedule)
                l'' rect))
        | Ok (Ol.Defrag.Fallback assignment) -> (
          let demands =
            (oa_name, oa_demand)
            :: List.map
                 (fun (e : Ol.Layout.entry) ->
                   (e.Ol.Layout.e_name, e.Ol.Layout.e_demand))
                 (Ol.Layout.entries l)
          in
          let part = Ol.Layout.partition l in
          match rebuild_from_assignment part ~demands assignment with
          | Error d -> diag_frame ~op:"add" ~name:oa_name d
          | Ok l' -> (
            ctx.oc_warn
              (Diag.diagf ~code:"RF704" Diag.Warning (Diag.Layout oa_name)
                 "defragmentation fell back to a full re-placement solve; \
                  the no-break guarantee is waived for this arrival");
            incr "rfloor_online_defrags_total"
              "Defragmentation episodes (planner or explicit compaction)";
            match Ol.Layout.find l' oa_name with
            | None ->
              diag_frame ~op:"add" ~name:oa_name
                (Diag.diagf ~code:"RF701" Diag.Error (Diag.Layout oa_name)
                   "fallback re-placement lost the arriving module")
            | Some e ->
              set_layout ctx dev l';
              incr "rfloor_online_adds_total" "Online arrivals placed";
              frame ~op:"add" ~outcome:"fallback" ~name:oa_name ~code:"RF704"
                ~rect:e.Ol.Layout.e_rect
                ?layout:(summary ()) ())))))

let run ?(workers = 1) ?(cache_capacity = 128)
    ?(metrics = Rfloor_metrics.Registry.null) ?(trace = Rfloor_trace.disabled)
    ?(warn = fun (_ : Rfloor_diag.Diagnostic.t) -> ()) ?on_status ~devices
    ~designs ic oc =
  let pool = Pool.create ~workers ~cache_capacity ~metrics ~trace () in
  let board = Progress.create_board () in
  (* entries are folded for every job when a statusz consumer exists
     (so /statusz can list in-flight work), otherwise only for jobs
     that opted into progress frames *)
  let statusz_on = on_status <> None in
  (* per-session online layout: mutated only by the reader thread; the
     statusz thunk below reads the immutable snapshot *)
  let online_state = ref None in
  let online_ctx =
    {
      oc_state = online_state;
      oc_rejected = ref [];
      oc_warn = warn;
      oc_on_move =
        (fun (m : Ol.Defrag.move) ->
          Rfloor_trace.move trace ~module_name:m.Ol.Defrag.mv_name
            ~src:(Device.Rect.to_string m.Ol.Defrag.mv_src)
            ~dst:(Device.Rect.to_string m.Ol.Defrag.mv_dst)
            ());
      oc_metrics = metrics;
    }
  in
  (match on_status with
  | Some f ->
    f (fun () ->
        Statusz.render ~pool:(pool_view pool)
          ?layout:(Option.map layout_view !online_state)
          ~jobs:(Progress.active board) ())
  | None -> ());
  let out_mu = Sync.Mutex.create ~name:"session.out.mu" () in
  let write_frame frame =
    output_string oc frame;
    output_char oc '\n';
    flush oc
  in
  let print_frame frame = Sync.Mutex.protect out_mu (fun () -> write_frame frame) in
  let responses =
    { mu = Sync.Mutex.create ~name:"session.responses.mu" ();
      cond = Sync.Condition.create ~name:"session.responses.cond" ();
      q = Queue.create () }
  in
  let responder =
    Sync.Domain.spawn ~name:"session.responder" (fun () ->
        let rec loop () =
          match pop responses with
          | Quit -> ()
          | Ready frame ->
            print_frame frame;
            loop ()
          | Stats_item ->
            print_frame (P.stats_frame (Pool.stats pool));
            loop ()
          | Job (id, ticket, prog) ->
            let result = Pool.await pool ticket in
            (match prog with
            | None -> print_frame (P.result_frame ~id result)
            | Some pc ->
              (* kill the entry and print the result under one lock
                 hold: afterwards no progress frame for this id can
                 appear *)
              Sync.Mutex.protect out_mu (fun () ->
                  Progress.finish pc.pc_entry;
                  write_frame (P.result_frame ~id result));
              Progress.remove board pc.pc_entry;
              Option.iter
                (fun (tk, sid) -> Progress.Ticker.unsubscribe tk sid)
                pc.pc_sub);
            loop ()
        in
        loop ())
  in
  (* one ticker domain for the whole session, spawned only if some job
     actually asks for progress frames (reader thread only) *)
  let ticker = ref None in
  let get_ticker () =
    match !ticker with
    | Some tk -> tk
    | None ->
      let tk = Progress.Ticker.create () in
      ticker := Some tk;
      tk
  in
  let instrument (sq : P.solve_req) =
    if statusz_on || sq.P.sq_progress <> None then
      Some
        (Progress.register board ~id:sq.P.sq_id
           ~strategy:(Solver.Strategy.to_string (strategy_of_req sq)))
    else None
  in
  let subscribe_progress (sq : P.solve_req) entry =
    match sq.P.sq_progress with
    | None -> None
    | Some requested ->
      let interval, diags = Progress.clamp_interval ~id:sq.P.sq_id requested in
      List.iter warn diags;
      let tk = get_ticker () in
      let id = sq.P.sq_id in
      let sid =
        Progress.Ticker.subscribe tk ~interval (fun () ->
            Sync.Mutex.protect out_mu (fun () ->
                if Progress.live entry then
                  write_frame (P.progress_frame ~id (Progress.snapshot entry))))
      in
      Some (tk, sid)
  in
  let tickets : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rec read_loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> read_loop ()
    | line -> (
      match P.parse_request line with
      | Error msg ->
        push responses (Ready (P.error_frame msg));
        read_loop ()
      | Ok P.Shutdown -> ()
      | Ok P.Stats ->
        push responses Stats_item;
        read_loop ()
      | Ok (P.Cancel id) ->
        let ok =
          match Hashtbl.find_opt tickets id with
          | Some ticket -> Pool.cancel pool ticket
          | None -> false
        in
        push responses (Ready (P.ack_frame ~op:"cancel" ~id ~ok));
        read_loop ()
      | Ok (P.Online oreq) ->
        push responses
          (Ready
             (handle_online online_ctx
                ~resolve_grid:(resolve_grid ~devices)
                oreq));
        read_loop ()
      | Ok (P.Solve sq) ->
        (if Hashtbl.mem tickets sq.P.sq_id then
           push responses
             (Ready
                (P.error_frame ~id:sq.P.sq_id
                   (Printf.sprintf "duplicate job id %S" sq.P.sq_id)))
         else
           let entry = instrument sq in
           let trace = Option.map Progress.sink entry in
           match submit_solve pool ~metrics ?trace ~devices ~designs sq with
           | Ok ticket ->
             Hashtbl.add tickets sq.P.sq_id ticket;
             let prog =
               Option.map
                 (fun e ->
                   { pc_entry = e; pc_sub = subscribe_progress sq e })
                 entry
             in
             push responses (Job (sq.P.sq_id, ticket, prog))
           | Error msg ->
             Option.iter (Progress.remove board) entry;
             push responses (Ready (P.error_frame ~id:sq.P.sq_id msg)));
        read_loop ())
  in
  read_loop ();
  push responses Quit;
  Sync.Domain.join responder;
  (match !ticker with Some tk -> Progress.Ticker.stop tk | None -> ());
  Pool.shutdown pool
