module P = Protocol
module Sync = Rfloor_sync
module Solver = Rfloor.Solver

(* The response queue decouples reading from answering: the reader
   thread parses and submits without ever blocking on a solve, so a
   [cancel] frame can reach a job that is still queued or mid-solve.
   The responder domain prints one frame per item strictly in
   submission order — [Job] items block on the pool — which makes a
   scripted session's output deterministic (the serve-smoke gate
   depends on exactly that). *)
type item =
  | Job of string * int  (* request id, pool ticket *)
  | Ready of string  (* pre-rendered frame *)
  | Stats_item  (* rendered at dequeue time, i.e. after prior jobs *)
  | Quit

type queue = {
  mu : Sync.Mutex.t;
  cond : Sync.Condition.t;
  q : item Queue.t;
}

let push qu item =
  Sync.Mutex.lock qu.mu;
  Queue.add item qu.q;
  Sync.Condition.signal qu.cond;
  Sync.Mutex.unlock qu.mu

let pop qu =
  Sync.Mutex.lock qu.mu;
  while Queue.is_empty qu.q do
    Sync.Condition.wait qu.cond qu.mu
  done;
  let item = Queue.pop qu.q in
  Sync.Mutex.unlock qu.mu;
  item

let diag_str d = Format.asprintf "%a" Rfloor_diag.Diagnostic.pp d

let resolve_grid ~devices = function
  | P.Builtin name -> (
    match devices name with
    | Some g -> Ok g
    | None -> Error (Printf.sprintf "unknown device %S" name))
  | P.Inline text -> (
    match Device.Io.parse_grid text with
    | Ok g -> Ok g
    | Error d -> Error (diag_str d))

let resolve_spec ~designs = function
  | P.Builtin name -> (
    match designs name with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown design %S" name))
  | P.Inline text -> (
    match Device.Io.parse_spec text with
    | Ok s -> Ok s
    | Error d -> Error (diag_str d))

let ( let* ) = Result.bind

let submit_solve pool ~metrics ~devices ~designs (sq : P.solve_req) =
  let* grid = resolve_grid ~devices sq.P.sq_device in
  let* spec = resolve_spec ~designs sq.P.sq_design in
  let* part =
    match Device.Partition.columnar grid with
    | Ok p -> Ok p
    | Error d -> Error (diag_str d)
  in
  let options =
    let strategy =
      match sq.P.sq_strategy with
      | Some st -> st
      | None ->
        Solver.Strategy.milp ~workers:sq.P.sq_workers
          ~engine:
            (match sq.P.sq_engine with `O -> Solver.O | `Ho -> Solver.Ho None)
          ()
    in
    Solver.Options.make ~strategy
      ~objective_mode:
        (match sq.P.sq_objective with
        | `Lex -> Solver.Lexicographic
        | `Feasibility -> Solver.Feasibility_only)
      ?time_limit:sq.P.sq_time ~metrics ()
  in
  Ok
    (Pool.submit pool ~priority:sq.P.sq_priority ?deadline:sq.P.sq_deadline
       ~options part spec)

let run ?(workers = 1) ?(cache_capacity = 128)
    ?(metrics = Rfloor_metrics.Registry.null) ?(trace = Rfloor_trace.disabled)
    ~devices ~designs ic oc =
  let pool = Pool.create ~workers ~cache_capacity ~metrics ~trace () in
  let responses =
    { mu = Sync.Mutex.create ~name:"session.responses.mu" ();
      cond = Sync.Condition.create ~name:"session.responses.cond" ();
      q = Queue.create () }
  in
  let responder =
    Sync.Domain.spawn ~name:"session.responder" (fun () ->
        let rec loop () =
          match pop responses with
          | Quit -> ()
          | Ready frame ->
            output_string oc frame;
            output_char oc '\n';
            flush oc;
            loop ()
          | Stats_item ->
            output_string oc (P.stats_frame (Pool.stats pool));
            output_char oc '\n';
            flush oc;
            loop ()
          | Job (id, ticket) ->
            let result = Pool.await pool ticket in
            output_string oc (P.result_frame ~id result);
            output_char oc '\n';
            flush oc;
            loop ()
        in
        loop ())
  in
  let tickets : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rec read_loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> read_loop ()
    | line -> (
      match P.parse_request line with
      | Error msg ->
        push responses (Ready (P.error_frame msg));
        read_loop ()
      | Ok P.Shutdown -> ()
      | Ok P.Stats ->
        push responses Stats_item;
        read_loop ()
      | Ok (P.Cancel id) ->
        let ok =
          match Hashtbl.find_opt tickets id with
          | Some ticket -> Pool.cancel pool ticket
          | None -> false
        in
        push responses (Ready (P.ack_frame ~op:"cancel" ~id ~ok));
        read_loop ()
      | Ok (P.Solve sq) ->
        (if Hashtbl.mem tickets sq.P.sq_id then
           push responses
             (Ready
                (P.error_frame ~id:sq.P.sq_id
                   (Printf.sprintf "duplicate job id %S" sq.P.sq_id)))
         else
           match submit_solve pool ~metrics ~devices ~designs sq with
           | Ok ticket ->
             Hashtbl.add tickets sq.P.sq_id ticket;
             push responses (Job (sq.P.sq_id, ticket))
           | Error msg ->
             push responses (Ready (P.error_frame ~id:sq.P.sq_id msg)));
        read_loop ())
  in
  read_loop ();
  push responses Quit;
  Sync.Domain.join responder;
  Pool.shutdown pool
