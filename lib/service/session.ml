module P = Protocol
module Sync = Rfloor_sync
module Solver = Rfloor.Solver
module Progress = Rfloor_obsv.Progress
module Statusz = Rfloor_obsv.Statusz

(* The response queue decouples reading from answering: the reader
   thread parses and submits without ever blocking on a solve, so a
   [cancel] frame can reach a job that is still queued or mid-solve.
   The responder domain prints one frame per item strictly in
   submission order — [Job] items block on the pool — which makes a
   scripted session's output deterministic (the serve-smoke gate
   depends on exactly that).

   Progress frames are the one exception to responder-only output: the
   shared ticker domain writes them directly, so every write goes
   through one output mutex.  A job's entry is marked dead under that
   same mutex immediately before its result frame is printed, so no
   progress frame for a job can follow its result frame. *)

type progress_ctx = {
  pc_entry : Progress.entry;
  pc_sub : (Progress.Ticker.t * int) option;
}

type item =
  | Job of string * int * progress_ctx option  (* request id, pool ticket *)
  | Ready of string  (* pre-rendered frame *)
  | Stats_item  (* rendered at dequeue time, i.e. after prior jobs *)
  | Quit

type queue = {
  mu : Sync.Mutex.t;
  cond : Sync.Condition.t;
  q : item Queue.t;
}

let push qu item =
  Sync.Mutex.lock qu.mu;
  Queue.add item qu.q;
  Sync.Condition.signal qu.cond;
  Sync.Mutex.unlock qu.mu

let pop qu =
  Sync.Mutex.lock qu.mu;
  while Queue.is_empty qu.q do
    Sync.Condition.wait qu.cond qu.mu
  done;
  let item = Queue.pop qu.q in
  Sync.Mutex.unlock qu.mu;
  item

let diag_str d = Format.asprintf "%a" Rfloor_diag.Diagnostic.pp d

let resolve_grid ~devices = function
  | P.Builtin name -> (
    match devices name with
    | Some g -> Ok g
    | None -> Error (Printf.sprintf "unknown device %S" name))
  | P.Inline text -> (
    match Device.Io.parse_grid text with
    | Ok g -> Ok g
    | Error d -> Error (diag_str d))

let resolve_spec ~designs = function
  | P.Builtin name -> (
    match designs name with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown design %S" name))
  | P.Inline text -> (
    match Device.Io.parse_spec text with
    | Ok s -> Ok s
    | Error d -> Error (diag_str d))

let ( let* ) = Result.bind

let strategy_of_req (sq : P.solve_req) =
  match sq.P.sq_strategy with
  | Some st -> st
  | None ->
    Solver.Strategy.milp ~workers:sq.P.sq_workers
      ~engine:(match sq.P.sq_engine with `O -> Solver.O | `Ho -> Solver.Ho None)
      ()

let submit_solve pool ~metrics ?trace ~devices ~designs (sq : P.solve_req) =
  let* grid = resolve_grid ~devices sq.P.sq_device in
  let* spec = resolve_spec ~designs sq.P.sq_design in
  let* part =
    match Device.Partition.columnar grid with
    | Ok p -> Ok p
    | Error d -> Error (diag_str d)
  in
  let options =
    Solver.Options.make ~strategy:(strategy_of_req sq)
      ~objective_mode:
        (match sq.P.sq_objective with
        | `Lex -> Solver.Lexicographic
        | `Feasibility -> Solver.Feasibility_only)
      ?time_limit:sq.P.sq_time ?trace ~metrics ()
  in
  Ok
    (Pool.submit pool ~priority:sq.P.sq_priority ?deadline:sq.P.sq_deadline
       ~options part spec)

let pool_view pool =
  let st = Pool.stats pool in
  {
    Statusz.pv_workers = Pool.worker_states pool;
    pv_queued = st.Pool.s_queued;
    pv_running = st.Pool.s_running;
    pv_finished = st.Pool.s_finished;
    pv_cache_hits = st.Pool.s_cache_hits;
    pv_cache_misses = st.Pool.s_cache_misses;
    pv_cache_size = st.Pool.s_cache_entries;
  }

let run ?(workers = 1) ?(cache_capacity = 128)
    ?(metrics = Rfloor_metrics.Registry.null) ?(trace = Rfloor_trace.disabled)
    ?(warn = fun (_ : Rfloor_diag.Diagnostic.t) -> ()) ?on_status ~devices
    ~designs ic oc =
  let pool = Pool.create ~workers ~cache_capacity ~metrics ~trace () in
  let board = Progress.create_board () in
  (* entries are folded for every job when a statusz consumer exists
     (so /statusz can list in-flight work), otherwise only for jobs
     that opted into progress frames *)
  let statusz_on = on_status <> None in
  (match on_status with
  | Some f ->
    f (fun () -> Statusz.render ~pool:(pool_view pool) ~jobs:(Progress.active board) ())
  | None -> ());
  let out_mu = Sync.Mutex.create ~name:"session.out.mu" () in
  let write_frame frame =
    output_string oc frame;
    output_char oc '\n';
    flush oc
  in
  let print_frame frame = Sync.Mutex.protect out_mu (fun () -> write_frame frame) in
  let responses =
    { mu = Sync.Mutex.create ~name:"session.responses.mu" ();
      cond = Sync.Condition.create ~name:"session.responses.cond" ();
      q = Queue.create () }
  in
  let responder =
    Sync.Domain.spawn ~name:"session.responder" (fun () ->
        let rec loop () =
          match pop responses with
          | Quit -> ()
          | Ready frame ->
            print_frame frame;
            loop ()
          | Stats_item ->
            print_frame (P.stats_frame (Pool.stats pool));
            loop ()
          | Job (id, ticket, prog) ->
            let result = Pool.await pool ticket in
            (match prog with
            | None -> print_frame (P.result_frame ~id result)
            | Some pc ->
              (* kill the entry and print the result under one lock
                 hold: afterwards no progress frame for this id can
                 appear *)
              Sync.Mutex.protect out_mu (fun () ->
                  Progress.finish pc.pc_entry;
                  write_frame (P.result_frame ~id result));
              Progress.remove board pc.pc_entry;
              Option.iter
                (fun (tk, sid) -> Progress.Ticker.unsubscribe tk sid)
                pc.pc_sub);
            loop ()
        in
        loop ())
  in
  (* one ticker domain for the whole session, spawned only if some job
     actually asks for progress frames (reader thread only) *)
  let ticker = ref None in
  let get_ticker () =
    match !ticker with
    | Some tk -> tk
    | None ->
      let tk = Progress.Ticker.create () in
      ticker := Some tk;
      tk
  in
  let instrument (sq : P.solve_req) =
    if statusz_on || sq.P.sq_progress <> None then
      Some
        (Progress.register board ~id:sq.P.sq_id
           ~strategy:(Solver.Strategy.to_string (strategy_of_req sq)))
    else None
  in
  let subscribe_progress (sq : P.solve_req) entry =
    match sq.P.sq_progress with
    | None -> None
    | Some requested ->
      let interval, diags = Progress.clamp_interval ~id:sq.P.sq_id requested in
      List.iter warn diags;
      let tk = get_ticker () in
      let id = sq.P.sq_id in
      let sid =
        Progress.Ticker.subscribe tk ~interval (fun () ->
            Sync.Mutex.protect out_mu (fun () ->
                if Progress.live entry then
                  write_frame (P.progress_frame ~id (Progress.snapshot entry))))
      in
      Some (tk, sid)
  in
  let tickets : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rec read_loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> read_loop ()
    | line -> (
      match P.parse_request line with
      | Error msg ->
        push responses (Ready (P.error_frame msg));
        read_loop ()
      | Ok P.Shutdown -> ()
      | Ok P.Stats ->
        push responses Stats_item;
        read_loop ()
      | Ok (P.Cancel id) ->
        let ok =
          match Hashtbl.find_opt tickets id with
          | Some ticket -> Pool.cancel pool ticket
          | None -> false
        in
        push responses (Ready (P.ack_frame ~op:"cancel" ~id ~ok));
        read_loop ()
      | Ok (P.Solve sq) ->
        (if Hashtbl.mem tickets sq.P.sq_id then
           push responses
             (Ready
                (P.error_frame ~id:sq.P.sq_id
                   (Printf.sprintf "duplicate job id %S" sq.P.sq_id)))
         else
           let entry = instrument sq in
           let trace = Option.map Progress.sink entry in
           match submit_solve pool ~metrics ?trace ~devices ~designs sq with
           | Ok ticket ->
             Hashtbl.add tickets sq.P.sq_id ticket;
             let prog =
               Option.map
                 (fun e ->
                   { pc_entry = e; pc_sub = subscribe_progress sq e })
                 entry
             in
             push responses (Job (sq.P.sq_id, ticket, prog))
           | Error msg ->
             Option.iter (Progress.remove board) entry;
             push responses (Ready (P.error_frame ~id:sq.P.sq_id msg)));
        read_loop ())
  in
  read_loop ();
  push responses Quit;
  Sync.Domain.join responder;
  (match !ticker with Some tk -> Progress.Ticker.stop tk | None -> ());
  Pool.shutdown pool
