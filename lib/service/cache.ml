module Sync = Rfloor_sync

type entry = {
  instance_key : string;
  options_key : string;
  instance_text : string;
  options_text : string;
  status : Rfloor.Solver.status;
  wasted : int option;
  wirelength : float option;
  objective : float option;
  fc_identified : int;
  plan : Canonical.plan option;
}

type slot = { entry : entry; mutable used : int }

type t = {
  mu : Sync.Mutex.t;
  table : (string, slot) Hashtbl.t;  (* instance_key ^ "/" ^ options_key *)
  capacity : int;
  tick : int Sync.Shared.t;
}

let create ?(capacity = 128) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  { mu = Sync.Mutex.create ~name:"cache.mu" ();
    table = Hashtbl.create 64;
    capacity;
    tick = Sync.Shared.make ~name:"cache.tick" 0 }

let capacity t = t.capacity

let locked t f =
  Sync.Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Sync.Mutex.unlock t.mu) f

let length t = locked t (fun () -> Hashtbl.length t.table)

let keys t =
  locked t (fun () ->
      List.sort String.compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) t.table []))

let full_key ik ok = ik ^ "/" ^ ok

let touch t slot =
  let tick = Sync.Shared.get t.tick + 1 in
  Sync.Shared.set t.tick tick;
  slot.used <- tick

type hit = Exact of entry | Near of entry

let find t ~instance_key ~instance_text ~options_key ~options_text =
  locked t (fun () ->
      let exact =
        match Hashtbl.find_opt t.table (full_key instance_key options_key) with
        | Some slot
        (* the stored texts must match byte for byte: a key is only a
           hash, equal text is what implies an isomorphic instance *)
          when slot.entry.instance_text = instance_text
               && slot.entry.options_text = options_text
               && slot.entry.status = Rfloor.Solver.Optimal ->
          Some slot
        | _ -> None
      in
      match exact with
      | Some slot ->
        touch t slot;
        Some (Exact slot.entry)
      | None ->
        (* near hit: same instance under any options, with a plan to
           inject as a warm start; prefer Optimal, then most recent *)
        let best = ref None in
        Hashtbl.iter
          (fun _ slot ->
            if
              slot.entry.instance_key = instance_key
              && slot.entry.instance_text = instance_text
              && slot.entry.plan <> None
            then
              let rank =
                ((match slot.entry.status with
                 | Rfloor.Solver.Optimal -> 1
                 | _ -> 0),
                  slot.used)
              in
              match !best with
              | Some (r, _) when r >= rank -> ()
              | _ -> best := Some (rank, slot))
          t.table;
        (match !best with
        | Some (_, slot) ->
          touch t slot;
          Some (Near slot.entry)
        | None -> None))

let store t entry =
  locked t (fun () ->
      let k = full_key entry.instance_key entry.options_key in
      (match Hashtbl.find_opt t.table k with
      | Some _ -> Hashtbl.remove t.table k
      | None -> ());
      if Hashtbl.length t.table >= t.capacity then begin
        (* evict the least recently used slot; the table is bounded by
           [capacity], so the scan is too *)
        let victim = ref None in
        Hashtbl.iter
          (fun key slot ->
            match !victim with
            | Some (_, u) when u <= slot.used -> ()
            | _ -> victim := Some (key, slot.used))
          t.table;
        match !victim with
        | Some (key, _) -> Hashtbl.remove t.table key
        | None -> ()
      end;
      let slot = { entry; used = 0 } in
      touch t slot;
      Hashtbl.add t.table k slot)
