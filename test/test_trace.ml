(* Unit tests for the Rfloor_trace event layer: JSONL round trips,
   schema rejection, sinks (ring, log-fn sampling, jsonl file), report
   aggregation and the RFLOOR_WORKERS environment parsing. *)

module T = Rfloor_trace
module E = T.Event

let sample_events =
  [
    { E.at = 0.0; worker = 0; payload = E.Span_start E.Build };
    { E.at = 0.001; worker = 0; payload = E.Span_end E.Build };
    { E.at = 0.002; worker = 1; payload = E.Node_explored { depth = 3; bound = 41.5; iters = 120 } };
    { E.at = 0.003; worker = 1; payload = E.Node_explored { depth = 0; bound = Float.nan; iters = 0 } };
    { E.at = 0.004; worker = 0; payload = E.Incumbent { objective = 42.; node = 17 } };
    { E.at = 0.005; worker = 0; payload = E.Cut_added { rounds = 2; cuts = 5 } };
    { E.at = 0.006; worker = 2; payload = E.Steal { tasks = 4 } };
    { E.at = 0.007; worker = 2; payload = E.Worker_idle };
    { E.at = 0.008; worker = 0; payload = E.Restart { stage = "stage2-wirelength" } };
    { E.at = 0.009; worker = 0; payload = E.Warning "a \"quoted\"\nwarning" };
    { E.at = 0.010; worker = 0; payload = E.Message "hello" };
    { E.at = 0.011; worker = 1; payload = E.Stopped { reason = "cancel" } };
  ]

(* nan bounds render as null and come back as nan, so compare via the
   serialized form, which is canonical. *)
let test_json_roundtrip () =
  List.iter
    (fun e ->
      let s = E.to_json e in
      match E.of_json s with
      | Error m -> Alcotest.failf "of_json rejected %s: %s" s m
      | Ok e' ->
        Alcotest.(check string)
          (Printf.sprintf "roundtrip %s" (E.name e.E.payload))
          s (E.to_json e'))
    sample_events

let test_json_rejects () =
  let bad =
    [
      ("not json", "hello");
      ("unknown tag", {|{"t":0.1,"w":0,"ev":"frobnicate"}|});
      ("unknown field", {|{"t":0.1,"w":0,"ev":"idle","x":1}|});
      ("missing field", {|{"t":0.1,"ev":"idle"}|});
      ("negative time", {|{"t":-0.1,"w":0,"ev":"idle"}|});
      ("negative worker", {|{"t":0.1,"w":-1,"ev":"idle"}|});
      ("wrong type", {|{"t":0.1,"w":"zero","ev":"idle"}|});
      ("node without depth", {|{"t":0.1,"w":0,"ev":"node","bound":1.5}|});
      ("trailing garbage", {|{"t":0.1,"w":0,"ev":"idle"} extra|});
      ("duplicate field", {|{"t":0.1,"t":0.2,"w":0,"ev":"idle"}|});
    ]
  in
  List.iter
    (fun (label, line) ->
      match E.of_json line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s was accepted: %s" label line)
    bad

let test_phase_names () =
  List.iter
    (fun p ->
      match E.phase_of_name (E.phase_name p) with
      | Some p' when p' = p -> ()
      | _ -> Alcotest.failf "phase %s does not round trip" (E.phase_name p))
    [ E.Build; E.Presolve; E.Lint; E.Root_lp; E.Branch_bound; E.Decode;
      E.Audit; E.Lp_solve; E.Job ]

let test_ring_capacity () =
  let ring = T.Ring.create ~capacity:8 () in
  let tracer = T.create ~sink:(T.Ring.sink ring) () in
  for i = 1 to 20 do
    T.incumbent tracer ~worker:0 ~objective:(float_of_int i) ~node:i
  done;
  let events = T.Ring.events ring in
  Alcotest.(check int) "keeps capacity" 8 (List.length events);
  Alcotest.(check int) "counts dropped" 12 (T.Ring.dropped ring);
  (* oldest first, and the survivors are the newest 8 *)
  (match events with
  | { E.payload = E.Incumbent { node = 13; _ }; _ } :: _ -> ()
  | e :: _ -> Alcotest.failf "unexpected head event %a" E.pp e
  | [] -> Alcotest.fail "empty ring");
  T.Ring.clear ring;
  Alcotest.(check int) "clear empties" 0 (List.length (T.Ring.events ring));
  Alcotest.(check int) "clear resets dropped" 0 (T.Ring.dropped ring)

(* Node events are sampled by the migration shim (one line per
   [progress_every]); everything else passes through. *)
let test_log_fn_sampling () =
  let lines = ref [] in
  let sink = T.Sink.of_log_fn ~progress_every:10 (fun l -> lines := l :: !lines) in
  let tracer = T.create ~sink () in
  for _ = 1 to 25 do
    T.node_explored tracer ~iters:0 ~worker:0 ~depth:1 ~bound:0.
  done;
  T.messagef tracer "hello %d" 42;
  let lines = List.rev !lines in
  Alcotest.(check int) "2 sampled node lines + 1 message" 3 (List.length lines);
  let has_sub needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "message passes through" true
    (List.exists (has_sub "hello 42") lines)

(* Four domains hammer one ring through one tracer: the per-sink mutex
   must keep every event intact and the kept+dropped accounting exact,
   with the ring holding exactly its capacity after wraparound. *)
let test_ring_concurrent_wraparound () =
  let capacity = 64 and domains = 4 and per_domain = 500 in
  let ring = T.Ring.create ~capacity () in
  let tracer = T.create ~sink:(T.Ring.sink ring) () in
  let worker w () =
    for i = 1 to per_domain do
      T.node_explored tracer ~iters:0 ~worker:w ~depth:i ~bound:(float_of_int i)
    done
  in
  List.init domains (fun w -> Domain.spawn (worker w))
  |> List.iter Domain.join;
  let events = T.Ring.events ring in
  Alcotest.(check int) "ring full at capacity" capacity (List.length events);
  Alcotest.(check int) "kept + dropped = written"
    ((domains * per_domain) - capacity)
    (T.Ring.dropped ring);
  (* no torn events: every survivor is a well-formed node event with a
     depth its writer actually produced *)
  List.iter
    (fun (e : E.t) ->
      match e.E.payload with
      | E.Node_explored { depth; bound; _ } ->
        if depth < 1 || depth > per_domain || bound <> float_of_int depth then
          Alcotest.failf "torn event: depth %d bound %g" depth bound
      | p -> Alcotest.failf "unexpected event %s" (E.name p))
    events

(* Same exercise through the of_log_fn migration shim: the callback
   must never run concurrently, so appending to a plain list is safe
   and every line arrives whole. *)
let test_log_fn_concurrent () =
  let lines = ref [] in
  let sink = T.Sink.of_log_fn ~progress_every:1 (fun l -> lines := l :: !lines) in
  let tracer = T.create ~sink () in
  let domains = 4 and per_domain = 200 in
  let worker w () =
    for i = 1 to per_domain do
      T.messagef tracer "w%d-%d" w i
    done
  in
  List.init domains (fun w -> Domain.spawn (worker w))
  |> List.iter Domain.join;
  Alcotest.(check int) "every line delivered" (domains * per_domain)
    (List.length !lines);
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun l ->
      match
        Scanf.sscanf_opt l "[w%d +%fs] w%d-%d" (fun _ _ w i -> (w, i))
      with
      | Some (w, i) when w >= 0 && w < domains && i >= 1 && i <= per_domain ->
        if Hashtbl.mem seen (w, i) then Alcotest.failf "duplicate line %s" l;
        Hashtbl.add seen (w, i) ()
      | _ -> Alcotest.failf "torn or malformed line %S" l)
    !lines

let test_disabled_and_null () =
  Alcotest.(check bool) "disabled not live" false (T.live T.disabled);
  Alcotest.(check bool) "disabled not enabled" false (T.enabled T.disabled);
  let null_tracer = T.create () in
  Alcotest.(check bool) "null-sink tracer live" true (T.live null_tracer);
  Alcotest.(check bool) "null-sink tracer not enabled" false
    (T.enabled null_tracer);
  (* metrics still accumulate on a live tracer with a null sink *)
  T.incumbent null_tracer ~worker:0 ~objective:1. ~node:1;
  T.warn null_tracer "w";
  T.add_worker_totals null_tracer ~worker:0 ~nodes:7 ~iterations:11;
  let r = T.report null_tracer ~nodes:7 ~simplex_iterations:11 ~elapsed:0.5 in
  Alcotest.(check int) "incumbents counted" 1 r.T.Report.incumbents;
  Alcotest.(check int) "warnings counted" 1 r.T.Report.warnings;
  (match r.T.Report.workers with
  | [ w ] ->
    Alcotest.(check int) "worker nodes" 7 w.T.Report.ws_nodes;
    Alcotest.(check int) "worker iterations" 11 w.T.Report.ws_iterations
  | ws -> Alcotest.failf "expected 1 worker stat, got %d" (List.length ws));
  (* disabled yields empty metrics with the caller's totals filled in *)
  let rd = T.report T.disabled ~nodes:3 ~simplex_iterations:4 ~elapsed:0.1 in
  Alcotest.(check int) "disabled nodes" 3 rd.T.Report.nodes;
  Alcotest.(check int) "disabled incumbents" 0 rd.T.Report.incumbents

let test_span_timing () =
  let ring = T.Ring.create () in
  let tracer = T.create ~sink:(T.Ring.sink ring) () in
  let v = T.span tracer E.Presolve (fun () -> 40 + 2) in
  Alcotest.(check int) "span returns the body's value" 42 v;
  (* exception safety: the span must close even when the body raises *)
  (try T.span tracer E.Decode (fun () -> failwith "boom") with Failure _ -> ());
  let r = T.report tracer ~nodes:0 ~simplex_iterations:0 ~elapsed:0. in
  let phase_count p =
    match
      List.find_opt (fun s -> s.T.Report.ps_phase = p) r.T.Report.phases
    with
    | Some s -> s.T.Report.ps_count
    | None -> 0
  in
  Alcotest.(check int) "presolve span completed" 1 (phase_count E.Presolve);
  Alcotest.(check int) "decode span completed despite raise" 1
    (phase_count E.Decode);
  let starts, ends =
    List.fold_left
      (fun (s, e) (ev : E.t) ->
        match ev.E.payload with
        | E.Span_start _ -> (s + 1, e)
        | E.Span_end _ -> (s, e + 1)
        | _ -> (s, e))
      (0, 0) (T.Ring.events ring)
  in
  Alcotest.(check int) "balanced start/end events" starts ends

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_validate_jsonl () =
  let path = Filename.temp_file "rfloor_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let sink, close = T.Sink.jsonl_file path in
  let tracer = T.create ~sink () in
  T.span tracer E.Build (fun () -> ());
  T.incumbent tracer ~worker:0 ~objective:1. ~node:1;
  close ();
  (match T.validate_jsonl (read_file path) with
  | Ok n -> Alcotest.(check int) "3 events" 3 n
  | Error m -> Alcotest.failf "valid trace rejected: %s" m);
  (* an unbalanced span must be rejected *)
  match
    T.validate_jsonl "{\"t\":0.1,\"w\":0,\"ev\":\"span_start\",\"phase\":\"build\"}\n"
  with
  | Ok _ -> Alcotest.fail "unbalanced span accepted"
  | Error _ -> ()

let with_env k v f =
  let old = Sys.getenv_opt k in
  Unix.putenv k v;
  Fun.protect ~finally:(fun () -> Unix.putenv k (Option.value ~default:"" old)) f

let test_workers_from_env () =
  let check_case label v expect warned =
    with_env "RFLOOR_WORKERS" v @@ fun () ->
    let ring = T.Ring.create () in
    let tracer = T.create ~sink:(T.Ring.sink ring) () in
    let n = Milp.Parallel_bb.workers_from_env ~default:3 ~trace:tracer () in
    Alcotest.(check int) label expect n;
    let warnings =
      List.length
        (List.filter
           (fun (e : E.t) ->
             match e.E.payload with E.Warning _ -> true | _ -> false)
           (T.Ring.events ring))
    in
    Alcotest.(check int) (label ^ " warnings") warned warnings
  in
  check_case "valid value" "4" 4 0;
  check_case "zero clamps to 1" "0" 1 1;
  check_case "negative clamps to 1" "-2" 1 1;
  check_case "garbage falls back to default" "abc" 3 1;
  with_env "RFLOOR_WORKERS" "" @@ fun () ->
  Alcotest.(check int) "unset uses default" 3
    (Milp.Parallel_bb.workers_from_env ~default:3 ())

let test_report_json () =
  let ring = T.Ring.create () in
  let tracer = T.create ~sink:(T.Ring.sink ring) () in
  T.span tracer E.Branch_bound (fun () ->
      T.node_explored tracer ~iters:0 ~worker:0 ~depth:2 ~bound:1.;
      T.incumbent tracer ~worker:0 ~objective:5. ~node:1);
  T.add_worker_totals tracer ~worker:0 ~nodes:1 ~iterations:9;
  let r = T.report tracer ~nodes:1 ~simplex_iterations:9 ~elapsed:0.25 in
  let js = T.Report.to_json r in
  let has_sub needle =
    let hay = js in
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    if not (go 0) then Alcotest.failf "report json lacks %s: %s" needle js
  in
  has_sub "\"nodes\":1";
  has_sub "\"simplex_iterations\":9";
  has_sub "\"incumbents\":1";
  has_sub "\"phases\":";
  has_sub "\"branch_bound\"";
  has_sub "\"workers\":";
  has_sub "\"depth_histogram\":";
  has_sub "\"gc\":{\"minor_collections\":"

(* Live tracers delta Gc.quick_stat over their lifetime. *)
let test_report_gc () =
  let tracer = T.create () in
  (* force some minor collections so the delta is visibly positive *)
  let junk = ref [] in
  for i = 1 to 100_000 do
    junk := (i, float_of_int i) :: !junk;
    if i mod 10_000 = 0 then junk := []
  done;
  ignore (Sys.opaque_identity !junk);
  let r = T.report tracer ~nodes:0 ~simplex_iterations:0 ~elapsed:0. in
  Alcotest.(check bool) "live tracer sees gc activity" true
    (r.T.Report.gc.T.Report.gc_minor_collections > 0);
  Alcotest.(check bool) "top heap recorded" true
    (r.T.Report.gc.T.Report.gc_top_heap_words > 0);
  let rd = T.report T.disabled ~nodes:0 ~simplex_iterations:0 ~elapsed:0. in
  Alcotest.(check bool) "disabled tracer reports no_gc" true
    (rd.T.Report.gc = T.Report.no_gc)

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "event json round trip" `Quick test_json_roundtrip;
        Alcotest.test_case "event json schema rejection" `Quick test_json_rejects;
        Alcotest.test_case "phase names round trip" `Quick test_phase_names;
        Alcotest.test_case "ring buffer capacity and clear" `Quick
          test_ring_capacity;
        Alcotest.test_case "log-fn shim samples node events" `Quick
          test_log_fn_sampling;
        Alcotest.test_case "ring wraparound under 4 domains" `Quick
          test_ring_concurrent_wraparound;
        Alcotest.test_case "log-fn shim serialized under 4 domains" `Quick
          test_log_fn_concurrent;
        Alcotest.test_case "disabled vs null-sink tracers" `Quick
          test_disabled_and_null;
        Alcotest.test_case "spans time phases and survive raises" `Quick
          test_span_timing;
        Alcotest.test_case "jsonl file validation" `Quick test_validate_jsonl;
        Alcotest.test_case "RFLOOR_WORKERS parsing and clamping" `Quick
          test_workers_from_env;
        Alcotest.test_case "report json shape" `Quick test_report_json;
        Alcotest.test_case "gc deltas in reports" `Quick test_report_gc;
      ] );
  ]
