(* Randomized differential tests.

   Sequential {!Branch_bound} vs {!Parallel_bb} across worker counts,
   presolved vs raw solves, and end-to-end floorplans re-checked by the
   independent {!Rfloor_analysis.Solution_audit}.  Every failure message
   leads with the case seed: re-export it as RFLOOR_TEST_SEED to replay
   the exact instance. *)

open Milp
module G = Generators
module Bb = Branch_bound

let status_name = function
  | Bb.Optimal -> "Optimal"
  | Bb.Feasible -> "Feasible"
  | Bb.Infeasible -> "Infeasible"
  | Bb.Unbounded -> "Unbounded"
  | Bb.Unknown -> "Unknown"

(* Both solvers prune within the relative MIP gap (default 1e-6), so on
   these O(100)-objective instances agreement must be far tighter than
   this. *)
let obj_tol = 1e-4

let check_incumbent ~seed ~what lp (obj, x) =
  (match Lp.validate lp x with
  | Ok () -> ()
  | Error m -> Alcotest.failf "seed %d: %s incumbent infeasible: %s" seed what m);
  let v = Lp.objective_value lp x in
  if Float.abs (v -. obj) > 1e-6 *. Float.max 1. (Float.abs v) then
    Alcotest.failf "seed %d: %s reports objective %g but its assignment evaluates to %g"
      seed what obj v

let check_case seed =
  let case = G.milp_case ~seed in
  let lp = case.G.c_lp in
  let seq = Bb.solve lp in
  (* known-optimal families: the sequential solver must hit the optimum *)
  (match (case.G.c_optimum, seq.Bb.status, seq.Bb.incumbent) with
  | Some opt, Bb.Optimal, Some (obj, _) ->
    if Float.abs (obj -. opt) > obj_tol then
      Alcotest.failf "seed %d (%s): sequential objective %.6f, known optimum %.6f"
        seed case.G.c_family obj opt
  | Some opt, st, _ ->
    Alcotest.failf "seed %d (%s): expected Optimal (optimum %.6f), sequential says %s"
      seed case.G.c_family opt (status_name st)
  | None, _, _ -> ());
  Option.iter (check_incumbent ~seed ~what:"sequential" lp) seq.Bb.incumbent;
  List.iter
    (fun w ->
      let par = Parallel_bb.solve ~workers:w lp in
      if par.Bb.status <> seq.Bb.status then
        Alcotest.failf "seed %d (%s): status differs with %d workers: sequential %s, parallel %s"
          seed case.G.c_family w (status_name seq.Bb.status) (status_name par.Bb.status);
      (match (seq.Bb.incumbent, par.Bb.incumbent) with
      | Some (a, _), Some (b, _) ->
        if Float.abs (a -. b) > obj_tol then
          Alcotest.failf "seed %d (%s): objective differs with %d workers: %.6f vs %.6f"
            seed case.G.c_family w a b
      | None, None -> ()
      | Some _, None ->
        Alcotest.failf "seed %d (%s): parallel (%d workers) lost the incumbent"
          seed case.G.c_family w
      | None, Some _ ->
        Alcotest.failf
          "seed %d (%s): parallel (%d workers) found an incumbent the sequential solver missed"
          seed case.G.c_family w);
      Option.iter
        (check_incumbent ~seed ~what:(Printf.sprintf "parallel(%d workers)" w) lp)
        par.Bb.incumbent)
    (G.worker_counts ())

let test_seq_vs_parallel () =
  let base = G.base_seed () in
  for i = 0 to 199 do
    check_case (G.case_seed base i)
  done

let test_presolve_differential () =
  let base = G.base_seed () in
  for i = 0 to 99 do
    let seed = G.case_seed base (1_000 + i) in
    let case = G.milp_case ~seed in
    let raw = Bb.solve case.G.c_lp in
    let tightened = Lp.copy case.G.c_lp in
    match Presolve.tighten tightened with
    | Presolve.Proven_infeasible ->
      if raw.Bb.status <> Bb.Infeasible then
        Alcotest.failf "seed %d (%s): presolve proved infeasibility but raw solve says %s"
          seed case.G.c_family (status_name raw.Bb.status)
    | Presolve.Tightened _ -> (
      let cooked = Bb.solve tightened in
      if cooked.Bb.status <> raw.Bb.status then
        Alcotest.failf "seed %d (%s): presolve changed status: raw %s, tightened %s"
          seed case.G.c_family (status_name raw.Bb.status) (status_name cooked.Bb.status);
      match (raw.Bb.incumbent, cooked.Bb.incumbent) with
      | Some (a, _), Some (b, _) ->
        if Float.abs (a -. b) > obj_tol then
          Alcotest.failf "seed %d (%s): presolve changed objective: raw %.6f, tightened %.6f"
            seed case.G.c_family a b
      | None, None -> ()
      | _ ->
        Alcotest.failf "seed %d (%s): presolve changed incumbent presence" seed
          case.G.c_family)
  done

(* ------------------------------------------------------------------ *)
(* Sparse revised simplex vs the frozen dense reference, and the
   warm-start path vs cold re-solves.

   [Reference_simplex] is the pre-sparse dense-tableau solver kept in
   test/ as an oracle; it shares no code with the live [Simplex].
   RFLOOR_SIMPLEX_DIFF scales the instance count (bin/lint.sh
   simplex-check runs a 50-instance subset; the default is 200). *)

module Ref = Reference_simplex

let simplex_diff_count () =
  match Sys.getenv_opt "RFLOOR_SIMPLEX_DIFF" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> 200)
  | None -> 200

let ref_status_name = function
  | Ref.Optimal -> "Optimal"
  | Ref.Infeasible -> "Infeasible"
  | Ref.Unbounded -> "Unbounded"
  | Ref.Iter_limit -> "Iter_limit"

let lp_status_name = function
  | Simplex.Optimal -> "Optimal"
  | Simplex.Infeasible -> "Infeasible"
  | Simplex.Unbounded -> "Unbounded"
  | Simplex.Iter_limit -> "Iter_limit"

let test_sparse_vs_reference () =
  let base = G.base_seed () in
  for i = 0 to simplex_diff_count () - 1 do
    let seed = G.case_seed base (5_000 + i) in
    let case = G.milp_case ~seed in
    let lp = case.G.c_lp in
    let old_r = Ref.solve lp in
    let new_r = Simplex.solve lp in
    if ref_status_name old_r.Ref.status <> lp_status_name new_r.Simplex.status
    then
      Alcotest.failf "seed %d (%s): LP status differs: reference %s, sparse %s"
        seed case.G.c_family
        (ref_status_name old_r.Ref.status)
        (lp_status_name new_r.Simplex.status);
    match old_r.Ref.status with
    | Ref.Optimal ->
      let a = old_r.Ref.objective and b = new_r.Simplex.objective in
      if Float.abs (a -. b) > 1e-6 *. Float.max 1. (Float.abs a) then
        Alcotest.failf
          "seed %d (%s): LP objective differs: reference %.9f, sparse %.9f"
          seed case.G.c_family a b
    | _ -> ()
  done

(* Branch-style child re-solves: tighten one variable bound off the
   root optimum (exactly what B&B does) and pin the warm dual re-solve
   against a cold solve of the same child. *)
let test_warm_child_resolves () =
  let base = G.base_seed () in
  let checked = ref 0 in
  for i = 0 to simplex_diff_count () - 1 do
    let seed = G.case_seed base (6_000 + i) in
    let case = G.milp_case ~seed in
    let lp = case.G.c_lp in
    let core = Simplex.Core.of_lp lp in
    let n = Simplex.Core.num_vars core in
    let root, basis = Simplex.Core.solve_warm core in
    match (root.Simplex.status, basis) with
    | Simplex.Optimal, Some parent when n > 0 ->
      let prng = G.Prng.make (seed + 17) in
      let v = G.Prng.int prng n in
      let fl = Float.round (floor (root.Simplex.x.(v) +. 1e-6)) in
      let root_lb = Array.init n (fun j -> Lp.var_lb lp j) in
      let root_ub = Array.init n (fun j -> Lp.var_ub lp j) in
      let children =
        [
          ( "down",
            root_lb,
            Array.init n (fun j ->
                if j = v then Float.min root_ub.(j) fl else root_ub.(j)) );
          ( "up",
            Array.init n (fun j ->
                if j = v then Float.max root_lb.(j) (fl +. 1.) else root_lb.(j)),
            root_ub );
        ]
      in
      List.iter
        (fun (tag, lb, ub) ->
          let cold = Simplex.Core.solve ~lb ~ub core in
          let wr, _ = Simplex.Core.solve_warm ~lb ~ub ~warm:parent core in
          incr checked;
          if lp_status_name cold.Simplex.status
             <> lp_status_name wr.Simplex.status
          then
            Alcotest.failf
              "seed %d (%s, %s child): cold status %s, warm status %s" seed
              case.G.c_family tag
              (lp_status_name cold.Simplex.status)
              (lp_status_name wr.Simplex.status);
          match cold.Simplex.status with
          | Simplex.Optimal ->
            let a = cold.Simplex.objective and b = wr.Simplex.objective in
            if Float.abs (a -. b) > 1e-6 *. Float.max 1. (Float.abs a) then
              Alcotest.failf
                "seed %d (%s, %s child): cold objective %.9f, warm %.9f" seed
                case.G.c_family tag a b
          | _ -> ())
        children
    | _ -> ()
  done;
  Alcotest.(check bool) "some warm child re-solves exercised" true (!checked > 0)

(* Whole-tree cold-vs-warm: disabling warm starts must not change what
   any solver configuration returns, sequential or across the parallel
   worker matrix. *)
let test_cold_vs_warm_bb () =
  let base = G.base_seed () in
  let cold_opts = { Bb.default_options with Bb.warm_lp = false } in
  for i = 0 to (simplex_diff_count () / 2) - 1 do
    let seed = G.case_seed base (7_000 + i) in
    let case = G.milp_case ~seed in
    let lp = case.G.c_lp in
    let warm = Bb.solve lp in
    let cold = Bb.solve ~options:cold_opts lp in
    let check_pair what a b =
      if a.Bb.status <> b.Bb.status then
        Alcotest.failf "seed %d (%s): %s: warm status %s, cold status %s" seed
          case.G.c_family what (status_name a.Bb.status)
          (status_name b.Bb.status);
      match (a.Bb.incumbent, b.Bb.incumbent) with
      | Some (oa, _), Some (ob, _) ->
        if Float.abs (oa -. ob) > obj_tol then
          Alcotest.failf "seed %d (%s): %s: warm objective %.6f, cold %.6f"
            seed case.G.c_family what oa ob
      | None, None -> ()
      | _ ->
        Alcotest.failf "seed %d (%s): %s: incumbent presence differs" seed
          case.G.c_family what
    in
    check_pair "sequential" warm cold;
    Option.iter (check_incumbent ~seed ~what:"cold sequential" lp)
      cold.Bb.incumbent;
    List.iter
      (fun w ->
        let pw = Parallel_bb.solve ~workers:w lp in
        let pc = Parallel_bb.solve ~workers:w ~options:cold_opts lp in
        check_pair (Printf.sprintf "parallel(%d) warm vs seq warm" w) warm pw;
        check_pair (Printf.sprintf "parallel(%d) warm vs cold" w) pw pc)
      (G.worker_counts ())
  done

let test_generated_partitions_properties () =
  let base = G.base_seed () in
  for i = 0 to 49 do
    let seed = G.case_seed base (3_000 + i) in
    let part = G.random_partition (G.Prng.make seed) in
    if not (Device.Partition.check_adjacent_types_differ part) then
      Alcotest.failf "seed %d: generated partition violates Property .3" seed;
    if not (Device.Partition.check_ordered part) then
      Alcotest.failf "seed %d: generated partition violates Property .4" seed;
    if not (Device.Partition.check_cover_disjoint part) then
      Alcotest.failf "seed %d: generated portions do not tile the device" seed
  done

(* End-to-end: solve randomized specs (alternating sequential / 2-worker
   and feasibility-only / lexicographic), then re-audit every decoded
   plan with the solver-independent checker. *)
let test_random_floorplans_audit () =
  let base = G.base_seed () in
  let solved = ref 0 in
  for i = 0 to 11 do
    let seed = G.case_seed base (2_000 + i) in
    let prng = G.Prng.make seed in
    let part = G.random_partition prng in
    let spec = G.random_spec prng part in
    let options =
      {
        Rfloor.Solver.default_options with
        objective_mode =
          (if i mod 2 = 0 then Rfloor.Solver.Feasibility_only
           else Rfloor.Solver.Lexicographic);
        time_limit = Some 20.;
        strategy =
          Rfloor.Solver.Strategy.milp
            ~workers:(if i mod 2 = 0 then 2 else 1)
            ();
      }
    in
    let out = Rfloor.Solver.solve ~options part spec in
    match out.Rfloor.Solver.plan with
    | None -> ()
    | Some plan ->
      incr solved;
      let ds = Rfloor_analysis.Solution_audit.run part spec plan in
      if Rfloor_diag.Diagnostic.has_errors ds then
        Alcotest.failf "seed %d: decoded floorplan fails the audit:@.%s" seed
          (Format.asprintf "%a" Rfloor_diag.Diagnostic.pp_report ds)
  done;
  Alcotest.(check bool) "at least one random spec solved" true (!solved > 0)

(* Satellite: parallel wall clock should not exceed sequential on a
   harder instance — a soft check (logged, not failed) because single-
   core CI hosts cannot show a gain.  Objective agreement stays hard. *)
let test_parallel_elapsed_soft () =
  let seed = G.base_seed () in
  let lp = G.hard_knapsack ~seed in
  let opts = { Bb.default_options with time_limit = Some 30. } in
  let seq = Bb.solve ~options:opts lp in
  let par = Parallel_bb.solve ~options:opts ~workers:4 lp in
  (match (seq.Bb.status, par.Bb.status, seq.Bb.incumbent, par.Bb.incumbent) with
  | Bb.Optimal, Bb.Optimal, Some (a, _), Some (b, _) ->
    if Float.abs (a -. b) > obj_tol then
      Alcotest.failf "seed %d: hard knapsack objective differs: %.6f vs %.6f" seed a b
  | _ -> ());
  if par.Bb.elapsed > seq.Bb.elapsed then
    Printf.eprintf
      "[soft] parallel (4 workers) %.3fs vs sequential %.3fs on hard knapsack seed %d — logged, not failed (host exposes %d core(s))\n%!"
      par.Bb.elapsed seq.Bb.elapsed seed
      (Domain.recommended_domain_count ());
  Alcotest.(check bool) "parallel elapsed is wall time >= 0" true (par.Bb.elapsed >= 0.)

(* Tentpole: the event stream must cohere with the solver's own
   counters.  For workers in {1, 2, 4}, capture every event in a ring
   buffer and check that (a) Node_explored events sum to result.nodes,
   (b) per-worker event counts match the report's per-worker totals,
   (c) every span opened by a worker is closed, and (d) the report's
   headline totals equal the legacy result fields. *)
let test_trace_coherence () =
  let seed = G.case_seed (G.base_seed ()) 4_000 in
  let lp = (G.milp_case ~seed).G.c_lp in
  List.iter
    (fun workers ->
      let ring = Rfloor_trace.Ring.create () in
      let tracer = Rfloor_trace.create ~sink:(Rfloor_trace.Ring.sink ring) () in
      let opts =
        { Bb.default_options with trace = tracer; node_limit = Some 2_000 }
      in
      let r = Parallel_bb.solve ~options:opts ~workers lp in
      let report =
        Rfloor_trace.report tracer ~nodes:r.Bb.nodes
          ~simplex_iterations:r.Bb.simplex_iterations ~elapsed:r.Bb.elapsed
      in
      let events = Rfloor_trace.Ring.events ring in
      Alcotest.(check int)
        (Printf.sprintf "no dropped events (%d workers)" workers)
        0
        (Rfloor_trace.Ring.dropped ring);
      (* (a) node events vs solver counter *)
      let node_events_of w =
        List.length
          (List.filter
             (fun (e : Rfloor_trace.Event.t) ->
               (w = None || Some e.Rfloor_trace.Event.worker = w)
               &&
               match e.Rfloor_trace.Event.payload with
               | Rfloor_trace.Event.Node_explored _ -> true
               | _ -> false)
             events)
      in
      Alcotest.(check int)
        (Printf.sprintf "node events = result.nodes (%d workers)" workers)
        r.Bb.nodes (node_events_of None);
      (* (b) per-worker report totals vs per-worker event counts *)
      List.iter
        (fun (ws : Rfloor_trace.Report.worker_stat) ->
          Alcotest.(check int)
            (Printf.sprintf "worker %d node events (%d workers)"
               ws.Rfloor_trace.Report.ws_worker workers)
            ws.Rfloor_trace.Report.ws_nodes
            (node_events_of (Some ws.Rfloor_trace.Report.ws_worker)))
        report.Rfloor_trace.Report.workers;
      (* (c) span balance per (worker, phase) *)
      let spans = Hashtbl.create 16 in
      List.iter
        (fun (e : Rfloor_trace.Event.t) ->
          let bump k d =
            Hashtbl.replace spans k
              (d + Option.value ~default:0 (Hashtbl.find_opt spans k))
          in
          match e.Rfloor_trace.Event.payload with
          | Rfloor_trace.Event.Span_start p ->
            bump (e.Rfloor_trace.Event.worker, p) 1
          | Rfloor_trace.Event.Span_end p ->
            bump (e.Rfloor_trace.Event.worker, p) (-1)
          | _ -> ())
        events;
      Hashtbl.iter
        (fun (w, p) depth ->
          if depth <> 0 then
            Alcotest.failf "worker %d: unbalanced %s spans (%+d) with %d workers"
              w
              (Rfloor_trace.Event.phase_name p)
              depth workers)
        spans;
      (* (d) report totals = legacy result fields *)
      Alcotest.(check int) "report.nodes" r.Bb.nodes
        report.Rfloor_trace.Report.nodes;
      Alcotest.(check int) "report.simplex_iterations" r.Bb.simplex_iterations
        report.Rfloor_trace.Report.simplex_iterations;
      Alcotest.(check (float 0.)) "report.elapsed" r.Bb.elapsed
        report.Rfloor_trace.Report.elapsed)
    [ 1; 2; 4 ]

let suites =
  [
    ( "differential",
      [
        Alcotest.test_case "generated partitions satisfy Properties .3/.4" `Quick
          test_generated_partitions_properties;
        Alcotest.test_case "sequential vs parallel B&B on 200 random MILPs" `Quick
          test_seq_vs_parallel;
        Alcotest.test_case "presolve+solve vs raw solve on 100 random MILPs" `Quick
          test_presolve_differential;
        Alcotest.test_case "sparse simplex vs dense reference on 200 LPs" `Quick
          test_sparse_vs_reference;
        Alcotest.test_case "warm dual child re-solves match cold solves" `Quick
          test_warm_child_resolves;
        Alcotest.test_case "B&B with warm starts off matches warm, all workers"
          `Quick test_cold_vs_warm_bb;
        Alcotest.test_case "random floorplans pass the solution audit" `Quick
          test_random_floorplans_audit;
        Alcotest.test_case "parallel elapsed vs sequential (soft)" `Quick
          test_parallel_elapsed_soft;
        Alcotest.test_case "trace events cohere with solver counters" `Quick
          test_trace_coherence;
      ] );
  ]
