(* Unit tests for Rfloor_obsv: the telemetry HTTP plane (routes,
   robustness against malformed input, concurrent scrape storm), the
   progress fold (schema, monotone gap, stage-restart reset, member
   attribution), interval hygiene (RF603), the statusz document, the
   Perfetto timeline export (validity, JSONL fixpoint, balance
   checking) and the build-identity gauges. *)

module Http = Rfloor_obsv.Http
module Statusz = Rfloor_obsv.Statusz
module Perfetto = Rfloor_obsv.Perfetto
module Progress = Rfloor_obsv.Progress
module Build_info = Rfloor_obsv.Build_info
module T = Rfloor_trace
module R = Rfloor_metrics.Registry
module D = Rfloor_diag.Diagnostic

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ok_or_fail label = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" label msg

let with_server ?registry handlers f =
  match Http.start ?registry ~port:0 handlers with
  | Error d -> Alcotest.failf "start: %s" (Format.asprintf "%a" D.pp d)
  | Ok srv -> Fun.protect ~finally:(fun () -> Http.stop srv) (fun () -> f srv)

let plain_handlers =
  {
    Http.h_metrics = (fun () -> "# metrics\n");
    h_statusz = (fun () -> Statusz.render ());
  }

(* ------------------------------------------------------------------ *)
(* HTTP plane *)

let test_http_routes () =
  let reg = R.create () in
  Build_info.register reg;
  let handlers =
    {
      Http.h_metrics =
        (fun () ->
          Build_info.touch_uptime reg;
          R.to_prometheus (R.snapshot reg));
      h_statusz = (fun () -> Statusz.render ());
    }
  in
  with_server ~registry:reg handlers @@ fun srv ->
  let port = Http.port srv in
  let status, body = ok_or_fail "healthz" (Http.get ~port "/healthz") in
  Alcotest.(check int) "healthz 200" 200 status;
  Alcotest.(check string) "healthz body" "ok\n" body;
  let status, body = ok_or_fail "metrics" (Http.get ~port "/metrics") in
  Alcotest.(check int) "metrics 200" 200 status;
  Alcotest.(check bool) "metrics carry build info" true
    (contains body "rfloor_build_info");
  Alcotest.(check bool) "metrics carry uptime" true
    (contains body "rfloor_uptime_seconds");
  Alcotest.(check bool) "metrics carry the request counter" true
    (contains body "rfloor_telemetry_requests_total");
  let status, body = ok_or_fail "statusz" (Http.get ~port "/statusz") in
  Alcotest.(check int) "statusz 200" 200 status;
  (match Statusz.validate body with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "statusz invalid: %s" msg);
  let status, _ = ok_or_fail "nowhere" (Http.get ~port "/nowhere") in
  Alcotest.(check int) "unknown path 404" 404 status;
  (* a query string is stripped before routing *)
  let status, _ = ok_or_fail "query" (Http.get ~port "/healthz?x=1") in
  Alcotest.(check int) "query string still routes" 200 status

let test_http_robustness () =
  let reg = R.create () in
  with_server ~registry:reg plain_handlers @@ fun srv ->
  let port = Http.port srv in
  (* a request that is not HTTP at all: 400 with the RF602 diagnostic *)
  let resp =
    ok_or_fail "raw" (Http.request_raw ~port "NONSENSE REQUEST\r\n\r\n")
  in
  Alcotest.(check bool) "400 status line" true
    (contains resp "400 Bad Request");
  Alcotest.(check bool) "body names RF602" true (contains resp "RF602");
  (* a well-formed non-GET: 405 *)
  let resp =
    ok_or_fail "post"
      (Http.request_raw ~port "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
  in
  Alcotest.(check bool) "405 for POST" true
    (contains resp "405 Method Not Allowed");
  (* the server survived both: a normal scrape still answers *)
  let status, _ = ok_or_fail "healthz after abuse" (Http.get ~port "/healthz") in
  Alcotest.(check int) "healthz still 200" 200 status;
  (* and the abuse is accounted for *)
  let bad =
    R.Counter.value (R.counter reg "rfloor_telemetry_bad_requests_total")
  in
  Alcotest.(check bool)
    (Printf.sprintf "bad requests counted (%d)" bad)
    true (bad >= 1)

let test_http_bad_port () =
  match Http.start ~port:70000 plain_handlers with
  | Ok srv ->
    Http.stop srv;
    Alcotest.fail "port 70000 accepted"
  | Error d ->
    Alcotest.(check string) "code" "RF601" d.D.code;
    Alcotest.(check bool) "severity error" true (d.D.severity = D.Error)

(* Four domains hammer all three routes while the handlers read live,
   mutating state (a registry counter and a progress board).  Every
   response must be a well-formed 200. *)
let test_http_scrape_storm () =
  let reg = R.create () in
  Build_info.register reg;
  let board = Progress.create_board () in
  let handlers =
    {
      Http.h_metrics =
        (fun () ->
          Build_info.touch_uptime reg;
          R.to_prometheus (R.snapshot reg));
      h_statusz =
        (fun () -> Statusz.render ~jobs:(Progress.active board) ());
    }
  in
  with_server ~registry:reg handlers @@ fun srv ->
  let port = Http.port srv in
  let errors = Atomic.make 0 in
  let churn = Atomic.make true in
  (* background churn: entries appear, fold events, disappear *)
  let churner =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while Atomic.get churn do
          incr i;
          let e =
            Progress.register board
              ~id:(Printf.sprintf "job-%d" !i)
              ~strategy:"milp"
          in
          let tr = T.create ~sink:(Progress.sink e) () in
          T.node_explored tr ~iters:(10 * !i) ~worker:0 ~depth:1 ~bound:1.;
          T.incumbent tr ~worker:0 ~objective:2. ~node:!i;
          Progress.remove board e
        done)
  in
  let scraper _ () =
    for i = 0 to 49 do
      let path =
        match i mod 3 with 0 -> "/metrics" | 1 -> "/statusz" | _ -> "/healthz"
      in
      match Http.get ~port path with
      | Ok (200, body) ->
        if path = "/statusz" && Statusz.validate body <> Ok () then
          Atomic.incr errors
      | Ok _ | Error _ -> Atomic.incr errors
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (scraper d)) in
  List.iter Domain.join domains;
  Atomic.set churn false;
  Domain.join churner;
  Alcotest.(check int) "no failed scrapes" 0 (Atomic.get errors);
  let served =
    R.Counter.value (R.counter reg "rfloor_telemetry_requests_total")
  in
  Alcotest.(check bool)
    (Printf.sprintf "all 200 scrapes counted (%d)" served)
    true (served >= 200)

(* ------------------------------------------------------------------ *)
(* Progress fold *)

let test_progress_fold () =
  let board = Progress.create_board () in
  let e = Progress.register board ~id:"p1" ~strategy:"milp:2" in
  let tr = T.create ~sink:(Progress.sink e) () in
  let gaps = ref [] in
  let snap () =
    let s = Progress.snapshot e in
    (match s.Progress.p_gap with Some g -> gaps := g :: !gaps | None -> ());
    s
  in
  (* before any event: counters at zero, no incumbent, no gap *)
  let s0 = snap () in
  Alcotest.(check string) "id" "p1" s0.Progress.p_id;
  Alcotest.(check string) "strategy" "milp:2" s0.Progress.p_strategy;
  Alcotest.(check int) "no nodes yet" 0 s0.Progress.p_nodes;
  Alcotest.(check bool) "no gap yet" true (s0.Progress.p_gap = None);
  (* nodes and per-worker cumulative LP iterations *)
  T.node_explored tr ~iters:100 ~worker:0 ~depth:0 ~bound:10.;
  T.node_explored tr ~iters:150 ~worker:0 ~depth:1 ~bound:12.;
  T.node_explored tr ~iters:40 ~worker:1 ~depth:1 ~bound:11.;
  let s1 = snap () in
  Alcotest.(check int) "three nodes" 3 s1.Progress.p_nodes;
  Alcotest.(check int) "iters summed per worker" 190 s1.Progress.p_lp_iterations;
  Alcotest.(check (option (float 1e-9))) "bound is the min" (Some 10.)
    s1.Progress.p_bound;
  Alcotest.(check bool) "still no gap without incumbent" true
    (s1.Progress.p_gap = None);
  (* an incumbent opens the gap; improvements tighten it *)
  T.incumbent tr ~worker:0 ~objective:20. ~node:3;
  let s2 = snap () in
  Alcotest.(check (option (float 1e-9))) "incumbent" (Some 20.)
    s2.Progress.p_incumbent;
  Alcotest.(check bool) "gap present" true (s2.Progress.p_gap <> None);
  T.incumbent tr ~worker:1 ~objective:12. ~node:4;
  let s3 = snap () in
  Alcotest.(check (option (float 1e-9))) "incumbent only improves" (Some 12.)
    s3.Progress.p_incumbent;
  T.incumbent tr ~worker:0 ~objective:15. ~node:5;
  Alcotest.(check (option (float 1e-9))) "worse incumbent ignored" (Some 12.)
    (snap ()).Progress.p_incumbent;
  (* a stage restart (lexicographic stage 2) resets the folds *)
  T.restart tr ~worker:0 "stage2-wirelength";
  let s4 = snap () in
  Alcotest.(check bool) "incumbent reset" true (s4.Progress.p_incumbent = None);
  Alcotest.(check bool) "bound reset" true (s4.Progress.p_bound = None);
  Alcotest.(check int) "nodes survive the restart" 3 s4.Progress.p_nodes;
  (* the new stage's numbers flow in; the reported gap stays clamped *)
  T.node_explored tr ~iters:200 ~worker:0 ~depth:0 ~bound:190.;
  T.incumbent tr ~worker:0 ~objective:196. ~node:6;
  ignore (snap ());
  T.incumbent tr ~worker:0 ~objective:192. ~node:7;
  ignore (snap ());
  (* the gap series, in emission order, never increases *)
  let series = List.rev !gaps in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "gap non-increasing (%s)"
       (String.concat ", " (List.map (Printf.sprintf "%.4f") series)))
    true (monotone series);
  Alcotest.(check bool) "at least two gap samples" true
    (List.length series >= 2);
  (* liveness: finish drops it from the board *)
  Alcotest.(check int) "board lists it" 1 (List.length (Progress.active board));
  Progress.remove board e;
  Alcotest.(check bool) "dead after remove" false (Progress.live e);
  Alcotest.(check int) "board empty" 0 (List.length (Progress.active board))

let test_progress_members () =
  let board = Progress.create_board () in
  let e = Progress.register board ~id:"race" ~strategy:"portfolio" in
  let parent = T.create ~sink:(Progress.sink e) () in
  (* two members, worker ids striped exactly like Solver's portfolio *)
  let m1 = T.subtracer parent ~worker_base:1000 in
  let m2 = T.subtracer parent ~worker_base:2000 in
  T.restart m1 "member:milp:2";
  T.restart m2 "member:combinatorial";
  T.node_explored m1 ~iters:10 ~worker:0 ~depth:0 ~bound:1.;
  T.node_explored m1 ~iters:20 ~worker:1 ~depth:1 ~bound:1.;
  T.node_explored m2 ~iters:5 ~worker:0 ~depth:0 ~bound:1.;
  let s = Progress.snapshot e in
  Alcotest.(check int) "all nodes counted" 3 s.Progress.p_nodes;
  let member label =
    match List.assoc_opt label s.Progress.p_members with
    | Some n -> n
    | None -> Alcotest.failf "member %s missing (%d listed)" label
                (List.length s.Progress.p_members)
  in
  Alcotest.(check int) "milp:2 attribution" 2 (member "milp:2");
  Alcotest.(check int) "combinatorial attribution" 1 (member "combinatorial");
  (* a member restart must NOT reset the fold *)
  T.incumbent m2 ~worker:0 ~objective:5. ~node:1;
  T.restart m1 "member:milp:2";
  Alcotest.(check (option (float 1e-9))) "member restart keeps incumbent"
    (Some 5.) (Progress.snapshot e).Progress.p_incumbent

let test_clamp_interval () =
  let check_clamp label v expect warns =
    let got, diags = Progress.clamp_interval ~id:"j" v in
    Alcotest.(check (float 1e-9)) (label ^ " value") expect got;
    Alcotest.(check int) (label ^ " diagnostics") warns (List.length diags);
    List.iter
      (fun d ->
        Alcotest.(check string) (label ^ " code") "RF603" d.D.code;
        Alcotest.(check bool) (label ^ " warning") true
          (d.D.severity = D.Warning))
      diags
  in
  check_clamp "in range" 0.2 0.2 0;
  check_clamp "nan" Float.nan Progress.default_interval 1;
  check_clamp "zero" 0. Progress.default_interval 1;
  check_clamp "negative" (-3.) Progress.default_interval 1;
  check_clamp "below floor" 0.001 Progress.min_interval 1;
  check_clamp "above ceiling" 1e9 Progress.max_interval 1

(* ------------------------------------------------------------------ *)
(* Statusz *)

let test_statusz_document () =
  let pool =
    {
      Statusz.pv_workers = [ "idle"; "job 3" ];
      pv_queued = 1;
      pv_running = 1;
      pv_finished = 7;
      pv_cache_hits = 4;
      pv_cache_misses = 3;
      pv_cache_size = 3;
    }
  in
  let board = Progress.create_board () in
  let e = Progress.register board ~id:"j3" ~strategy:"milp" in
  let tr = T.create ~sink:(Progress.sink e) () in
  T.node_explored tr ~iters:9 ~worker:0 ~depth:0 ~bound:1.;
  let body = Statusz.render ~pool ~jobs:(Progress.active board) () in
  (match Statusz.validate body with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "statusz invalid: %s" msg);
  Alcotest.(check bool) "version tag" true (contains body Statusz.version);
  Alcotest.(check bool) "worker states listed" true (contains body "job 3");
  Alcotest.(check bool) "job listed" true (contains body "\"id\":\"j3\"");
  (* validation rejects garbage, wrong versions and malformed jobs *)
  Alcotest.(check bool) "garbage rejected" true
    (Statusz.validate "not json" <> Ok ());
  Alcotest.(check bool) "wrong version rejected" true
    (Statusz.validate "{\"v\":\"rfloor-statusz/9\",\"uptime_s\":1}" <> Ok ());
  Alcotest.(check bool) "malformed job rejected" true
    (Statusz.validate
       "{\"v\":\"rfloor-statusz/1\",\"uptime_s\":1,\"jobs\":[{\"id\":\"x\"}]}"
    <> Ok ())

(* ------------------------------------------------------------------ *)
(* Perfetto export *)

(* A small two-worker trace with a portfolio member on the striped id
   range: spans, nodes, an incumbent and a stop. *)
let sample_events () =
  let ring = T.Ring.create () in
  let tr = T.create ~sink:(T.Ring.sink ring) () in
  T.span tr ~worker:0 T.Event.Build (fun () ->
      T.span tr ~worker:0 T.Event.Root_lp (fun () ->
          T.node_explored tr ~iters:11 ~worker:0 ~depth:0 ~bound:1.));
  T.span tr ~worker:1 T.Event.Branch_bound (fun () ->
      T.node_explored tr ~iters:7 ~worker:1 ~depth:1 ~bound:2.;
      T.incumbent tr ~worker:1 ~objective:3. ~node:2);
  let m = T.subtracer tr ~worker_base:1000 in
  T.restart m "member:combinatorial";
  T.span m ~worker:0 T.Event.Decode (fun () -> ());
  T.stopped tr ~worker:0 "budget";
  T.Ring.events ring

let test_perfetto_export () =
  let events = sample_events () in
  let doc = Perfetto.of_events events in
  (match Perfetto.validate doc with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "export invalid: %s" msg);
  Alcotest.(check bool) "has traceEvents" true (contains doc "\"traceEvents\"");
  Alcotest.(check bool) "names the process" true (contains doc "\"rfloor\"");
  Alcotest.(check bool) "names plain workers" true (contains doc "worker 1");
  Alcotest.(check bool) "names the member track" true
    (contains doc "combinatorial");
  Alcotest.(check bool) "phase slices present" true (contains doc "root_lp");
  (* JSONL -> Perfetto agrees with the direct export (fixpoint) *)
  let jsonl =
    String.concat "" (List.map (fun e -> T.Event.to_json e ^ "\n") events)
  in
  let via_jsonl = ok_or_fail "of_jsonl" (Perfetto.of_jsonl jsonl) in
  Alcotest.(check string) "jsonl fixpoint" doc via_jsonl;
  (* blank lines are tolerated, garbage lines are named *)
  let via_blank =
    ok_or_fail "blank lines" (Perfetto.of_jsonl ("\n" ^ jsonl ^ "\n"))
  in
  Alcotest.(check string) "blank lines ignored" doc via_blank;
  match Perfetto.of_jsonl (jsonl ^ "not json\n") with
  | Ok _ -> Alcotest.fail "garbage line accepted"
  | Error msg ->
    Alcotest.(check bool) "error names the line" true (contains msg "line")

let test_perfetto_validate_rejects () =
  let reject label doc =
    match Perfetto.validate doc with
    | Ok () -> Alcotest.failf "%s accepted" label
    | Error _ -> ()
  in
  reject "not json" "nope";
  reject "no traceEvents" "{\"other\":[]}";
  reject "unbalanced B"
    "{\"traceEvents\":[{\"ph\":\"B\",\"name\":\"a\",\"pid\":1,\"tid\":1,\"ts\":0}]}";
  reject "stray E"
    "{\"traceEvents\":[{\"ph\":\"E\",\"name\":\"a\",\"pid\":1,\"tid\":1,\"ts\":0}]}";
  reject "interleaved slices"
    (String.concat ""
       [
         "{\"traceEvents\":[";
         "{\"ph\":\"B\",\"name\":\"a\",\"pid\":1,\"tid\":1,\"ts\":0},";
         "{\"ph\":\"B\",\"name\":\"b\",\"pid\":1,\"tid\":1,\"ts\":1},";
         "{\"ph\":\"E\",\"name\":\"a\",\"pid\":1,\"tid\":1,\"ts\":2},";
         "{\"ph\":\"E\",\"name\":\"b\",\"pid\":1,\"tid\":1,\"ts\":3}]}";
       ]);
  (* nesting on ANOTHER thread is independent: this one is fine *)
  match
    Perfetto.validate
      (String.concat ""
         [
           "{\"traceEvents\":[";
           "{\"ph\":\"B\",\"name\":\"a\",\"pid\":1,\"tid\":1,\"ts\":0},";
           "{\"ph\":\"B\",\"name\":\"b\",\"pid\":1,\"tid\":2,\"ts\":1},";
           "{\"ph\":\"E\",\"name\":\"b\",\"pid\":1,\"tid\":2,\"ts\":2},";
           "{\"ph\":\"E\",\"name\":\"a\",\"pid\":1,\"tid\":1,\"ts\":3}]}";
         ])
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "per-thread nesting rejected: %s" msg

let test_perfetto_report () =
  let events = sample_events () in
  let plain = Perfetto.report events in
  Alcotest.(check bool) "dominance table" true
    (contains plain "phase dominance");
  Alcotest.(check bool) "phases named" true (contains plain "root_lp");
  Alcotest.(check bool) "no critical path by default" false
    (contains plain "critical path");
  let cp = Perfetto.report ~critical_path:true events in
  Alcotest.(check bool) "critical path printed" true
    (contains cp "critical path")

(* ------------------------------------------------------------------ *)
(* Build identity *)

let test_build_info () =
  let reg = R.create () in
  Build_info.register reg;
  Build_info.register reg;  (* idempotent *)
  Build_info.touch_uptime reg;
  let snap = R.snapshot reg in
  let gauges name =
    List.filter
      (fun m ->
        match m with
        | R.Snapshot.Gauge { name = n; _ } -> n = name
        | _ -> false)
      snap
  in
  (match gauges "rfloor_build_info" with
  | [ R.Snapshot.Gauge { value; labels; _ } ] ->
    Alcotest.(check (float 0.)) "value is 1" 1. value;
    List.iter
      (fun k ->
        Alcotest.(check bool) (k ^ " label") true (List.mem_assoc k labels))
      [ "version"; "ocaml"; "git" ];
    Alcotest.(check (option string)) "version label"
      (Some Build_info.version)
      (List.assoc_opt "version" labels)
  | l -> Alcotest.failf "build_info series: %d found" (List.length l));
  (match gauges "rfloor_uptime_seconds" with
  | [ R.Snapshot.Gauge { value; _ } ] ->
    Alcotest.(check bool) "uptime non-negative" true (value >= 0.)
  | l -> Alcotest.failf "uptime series: %d found" (List.length l));
  Alcotest.(check bool) "uptime advances" true (Build_info.uptime () >= 0.)

let suites =
  [
    ( "obsv.http",
      [
        Alcotest.test_case "routes" `Quick test_http_routes;
        Alcotest.test_case "robust against malformed input" `Quick test_http_robustness;
        Alcotest.test_case "bad port -> RF601" `Quick test_http_bad_port;
        Alcotest.test_case "four-domain scrape storm" `Quick test_http_scrape_storm;
      ] );
    ( "obsv.progress",
      [
        Alcotest.test_case "fold schema and monotone gap" `Quick test_progress_fold;
        Alcotest.test_case "portfolio member attribution" `Quick test_progress_members;
        Alcotest.test_case "interval clamping -> RF603" `Quick test_clamp_interval;
      ] );
    ( "obsv.statusz",
      [ Alcotest.test_case "document round-trip" `Quick test_statusz_document ] );
    ( "obsv.perfetto",
      [
        Alcotest.test_case "export validity and jsonl fixpoint" `Quick test_perfetto_export;
        Alcotest.test_case "validator rejects broken nesting" `Quick test_perfetto_validate_rejects;
        Alcotest.test_case "phase report" `Quick test_perfetto_report;
      ] );
    ( "obsv.build_info",
      [ Alcotest.test_case "identity gauges" `Quick test_build_info ] );
  ]
