(* Tests for the plain-text device/design formats used by the CLI. *)

open Device

let fail_diag d = Alcotest.fail (Format.asprintf "%a" Rfloor_diag.Diagnostic.pp d)

let device_text =
  "name: demo\n# a comment\nccbccdccbc\nccbccdccbc\nforbidden: 1 1 2 1\n"

let design_text =
  "name: demo\nregion filter clb=2 bram=1\nregion decoder clb=2 dsp=1\n\
   net filter decoder 32\nreloc filter 2 hard\nreloc decoder 1 soft 1.5\n"

let test_parse_grid () =
  match Io.parse_grid device_text with
  | Error e -> fail_diag e
  | Ok g ->
    Alcotest.(check string) "name" "demo" (Grid.name g);
    Alcotest.(check int) "width" 10 (Grid.width g);
    Alcotest.(check int) "height" 2 (Grid.height g);
    Alcotest.(check int) "forbidden" 1 (List.length (Grid.forbidden g));
    Alcotest.(check bool) "tile kind" true
      (Resource.equal_kind (Grid.tile g 3 1).Resource.kind Resource.Bram)

let test_grid_roundtrip () =
  match Io.parse_grid device_text with
  | Error e -> fail_diag e
  | Ok g -> (
    match Io.parse_grid (Io.grid_to_string g) with
    | Error e -> fail_diag e
    | Ok g' ->
      Alcotest.(check string) "name" (Grid.name g) (Grid.name g');
      Alcotest.(check int) "width" (Grid.width g) (Grid.width g');
      Alcotest.(check int) "forbidden preserved"
        (List.length (Grid.forbidden g))
        (List.length (Grid.forbidden g'));
      Alcotest.(check string) "same picture" (Grid.render g) (Grid.render g'))

let test_parse_grid_errors () =
  (match Io.parse_grid "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty accepted");
  (match Io.parse_grid "ccx\nccc\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad tile letter accepted");
  match Io.parse_grid "ccc\nforbidden: 1 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad forbidden line accepted"

let test_parse_spec () =
  match Io.parse_spec design_text with
  | Error e -> fail_diag e
  | Ok s ->
    Alcotest.(check int) "regions" 2 (List.length s.Spec.regions);
    Alcotest.(check int) "nets" 1 (List.length s.Spec.nets);
    Alcotest.(check int) "relocs" 2 (List.length s.Spec.relocs);
    Alcotest.(check int) "copies" 3 (Spec.total_fc_copies s);
    let filter = Spec.region s "filter" in
    Alcotest.(check int) "filter clb" 2
      (Resource.demand_get filter.Spec.demand Resource.Clb);
    (match s.Spec.relocs with
    | [ a; b ] ->
      Alcotest.(check bool) "hard mode" true (a.Spec.mode = Spec.Hard);
      Alcotest.(check bool) "soft mode" true (b.Spec.mode = Spec.Soft 1.5)
    | _ -> Alcotest.fail "wrong reloc count")

let test_spec_roundtrip () =
  match Io.parse_spec design_text with
  | Error e -> fail_diag e
  | Ok s -> (
    match Io.parse_spec (Io.spec_to_string s) with
    | Error e -> fail_diag e
    | Ok s' ->
      Alcotest.(check (list string)) "regions" (Spec.region_names s)
        (Spec.region_names s');
      Alcotest.(check int) "copies" (Spec.total_fc_copies s)
        (Spec.total_fc_copies s'))

let test_parse_spec_errors () =
  (match Io.parse_spec "region a clb=0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero demand accepted");
  (match Io.parse_spec "region a clb=1\nnet a b\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "net to unknown region accepted");
  match Io.parse_spec "frobnicate\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage line accepted"

let test_loaded_device_solves () =
  (* end to end: text -> grid -> partition -> floorplan *)
  match (Io.parse_grid device_text, Io.parse_spec design_text) with
  | Ok g, Ok s -> (
    let part = Partition.columnar_exn g in
    let soft_only =
      (* the 10x2 demo device cannot host 2 extra hard copies: relax *)
      Spec.with_relocs s
        [ { Spec.target = "filter"; copies = 2; mode = Spec.Soft 1. } ]
    in
    match (Search.Engine.solve part soft_only).Search.Engine.plan with
    | Some plan ->
      Alcotest.(check bool) "valid" true (Floorplan.is_valid part soft_only plan)
    | None -> Alcotest.fail "no plan on loaded device")
  | Error e, _ | _, Error e -> fail_diag e

let suites =
  [
    ( "device.io",
      [
        Alcotest.test_case "parse grid" `Quick test_parse_grid;
        Alcotest.test_case "grid round trip" `Quick test_grid_roundtrip;
        Alcotest.test_case "grid errors" `Quick test_parse_grid_errors;
        Alcotest.test_case "parse spec" `Quick test_parse_spec;
        Alcotest.test_case "spec round trip" `Quick test_spec_roundtrip;
        Alcotest.test_case "spec errors" `Quick test_parse_spec_errors;
        Alcotest.test_case "loaded device solves" `Quick test_loaded_device_solves;
      ] );
  ]
