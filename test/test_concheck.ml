(* Tests for the concurrency-correctness analyzers (Rfloor_concheck):
   the interleaving explorer and its scenario suite, the vector-clock
   race detector (on synthetic logs and on real recorded workloads),
   the RF401..RF403 raw-primitive source lint, and the RF430..RF435
   trace-invariant verifier. *)

module C = Rfloor_concheck
module D = Rfloor_diag.Diagnostic
module E = Rfloor_sync.Event
module T = Rfloor_trace

(* ------------------------------------------------------------------ *)
(* Explorer *)

(* Two threads, read-then-write increments of a plain cell: the classic
   lost update.  At CAS granularity (one step = whole increment) the
   same program is correct. *)
let counter_scenario ~atomic =
  let cell = ref (ref 0) in
  let threads () =
    let c = ref 0 in
    cell := c;
    let make () =
      if atomic then begin
        let pc = ref 0 in
        fun () ->
          if !pc >= 1 then false
          else begin
            incr c;
            incr pc;
            true
          end
      end
      else begin
        let pc = ref 0 and obs = ref 0 in
        fun () ->
          match !pc with
          | 0 ->
            obs := !c;
            pc := 1;
            true
          | 1 ->
            c := !obs + 1;
            pc := 2;
            true
          | _ -> false
      end
    in
    [ make (); make () ]
  in
  {
    C.Explorer.name = (if atomic then "counter_atomic" else "counter_torn");
    threads;
    check =
      (fun () ->
        if !(!cell) = 2 then Ok ()
        else Error (Printf.sprintf "count %d, expected 2" !(!cell)));
    fingerprint = None;
  }

let test_explorer_finds_lost_update () =
  let o = C.Explorer.explore (counter_scenario ~atomic:false) in
  Alcotest.(check bool) "violation found" true (o.C.Explorer.o_violation <> None);
  Alcotest.(check bool)
    "diagnosed as RF420" true
    (List.exists (fun d -> d.D.code = "RF420") (C.Explorer.diagnostics o))

let test_explorer_exhausts_correct_counter () =
  let o = C.Explorer.explore (counter_scenario ~atomic:true) in
  Alcotest.(check bool) "no violation" true (o.C.Explorer.o_violation = None);
  Alcotest.(check bool) "exhausted" true o.C.Explorer.o_exhausted;
  (* two threads of one step each: exactly the 2 orders *)
  Alcotest.(check int) "schedules" 2 o.C.Explorer.o_schedules;
  Alcotest.(check int) "no diagnostics" 0
    (List.length (C.Explorer.diagnostics o))

let test_explorer_budget () =
  let o =
    C.Explorer.explore ~max_replays:3 (counter_scenario ~atomic:false)
  in
  if o.C.Explorer.o_violation = None then begin
    Alcotest.(check bool) "not exhausted" false o.C.Explorer.o_exhausted;
    Alcotest.(check bool)
      "diagnosed as RF421" true
      (List.exists (fun d -> d.D.code = "RF421") (C.Explorer.diagnostics o))
  end

let test_scenarios_run_all () =
  let outcomes, diags = C.Scenarios.run_all ~seed:2015 () in
  Alcotest.(check int) "five outcomes (incl. seeded bug)" 5
    (List.length outcomes);
  List.iter
    (fun d -> Alcotest.failf "unexpected diagnostic: %s %s" d.D.code d.D.message)
    diags;
  (* every correct scenario exhausted; the blind variant violated *)
  List.iter
    (fun o ->
      let broken = o.C.Explorer.o_name = "incumbent_cas_blind_write" in
      Alcotest.(check bool)
        (o.C.Explorer.o_name ^ " verdict")
        broken
        (o.C.Explorer.o_violation <> None))
    outcomes

(* ------------------------------------------------------------------ *)
(* Race detector *)

(* Build a synthetic log directly: two domains write one Shared cell,
   first unordered, then ordered through a mutex handoff. *)
let ev seq domain op obj name = { E.seq; domain; op; obj; name; aux = -1 }

let test_race_unordered_writes () =
  let log =
    [
      ev 0 0 E.Plain_write 7 "cell";
      ev 1 1 E.Plain_write 7 "cell";
    ]
  in
  let report, diags = C.Race.analyze log in
  Alcotest.(check int) "one race" 1 (List.length report.C.Race.races);
  Alcotest.(check bool)
    "RF410 emitted" true
    (List.exists (fun d -> d.D.code = "RF410") diags);
  match report.C.Race.races with
  | [ (name, _, _) ] -> Alcotest.(check string) "cell named" "cell" name
  | _ -> ()

let test_race_mutex_orders () =
  let m = 3 in
  let log =
    [
      ev 0 0 E.Lock_acquire m "m";
      ev 1 0 E.Plain_write 7 "cell";
      ev 2 0 E.Lock_release m "m";
      ev 3 1 E.Lock_acquire m "m";
      ev 4 1 E.Plain_write 7 "cell";
      ev 5 1 E.Lock_release m "m";
    ]
  in
  let report, diags = C.Race.analyze log in
  Alcotest.(check int) "no races" 0 (List.length report.C.Race.races);
  Alcotest.(check int) "no lockset warnings" 0
    (List.length report.C.Race.lockset_warnings);
  Alcotest.(check int) "no diagnostics" 0 (List.length diags)

let test_race_cas_handoff_warns_lockset () =
  (* ordered by a successful CAS, but no common lock: clean of RF410,
     flagged RF411 *)
  let a = 9 in
  let log =
    [
      ev 0 0 E.Plain_write 7 "cell";
      ev 1 0 (E.Atomic_cas true) a "flag";
      ev 2 1 E.Atomic_read a "flag";
      ev 3 1 E.Plain_write 7 "cell";
    ]
  in
  let report, diags = C.Race.analyze log in
  Alcotest.(check int) "no races" 0 (List.length report.C.Race.races);
  Alcotest.(check (list string)) "lockset warning" [ "cell" ]
    report.C.Race.lockset_warnings;
  Alcotest.(check bool)
    "RF411 emitted" true
    (List.exists (fun d -> d.D.code = "RF411") diags)

let test_detector_self_test () =
  let selfs, diags = C.Scenarios.detector_self_test () in
  Alcotest.(check int) "three workloads" 3 (List.length selfs);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s (%s)" s.C.Scenarios.st_name s.C.Scenarios.st_detail)
        true s.C.Scenarios.st_pass)
    selfs;
  Alcotest.(check int) "no diagnostics" 0 (List.length diags)

(* ------------------------------------------------------------------ *)
(* Source lint *)

let codes diags = List.map (fun d -> d.D.code) diags

let test_source_lint_flags_raw () =
  let text = "let m = Mutex.create ()\nlet c = Stdlib.Atomic.make 0\n" in
  Alcotest.(check (list string))
    "unqualified and Stdlib-rooted flagged" [ "RF401"; "RF403" ]
    (codes (C.Source_lint.scan_text ~path:"x.ml" text))

let test_source_lint_accepts_wrapped () =
  let text =
    "module Sync = Rfloor_sync\n\
     let m : Rfloor_sync.Mutex.t = Sync.Mutex.create ()\n\
     let c = Sync.Atomic.make 0\n\
     let w = Sync.Condition.create ()\n"
  in
  Alcotest.(check (list string)) "qualified uses pass" []
    (codes (C.Source_lint.scan_text ~path:"x.ml" text))

let test_source_lint_ignores_prose () =
  let text =
    "(* Mutex.lock is how (* the raw *) primitive spells it *)\n\
     let s = \"Atomic.get in a string\"\n\
     let q = 'x' and p = foo' in\n\
     let _ = (q, p, s)\n"
  in
  Alcotest.(check (list string)) "comments/strings/chars pass" []
    (codes (C.Source_lint.scan_text ~path:"x.ml" text))

let test_source_lint_reports_lines () =
  let text = "let a = 1\n\nlet m = Condition.create ()\n" in
  match C.Source_lint.scan_text ~path:"p.ml" text with
  | [ d ] ->
    Alcotest.(check string) "code" "RF402" d.D.code;
    Alcotest.(check string) "location" "p.ml:3"
      (D.location_to_string d.D.location)
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds)

let test_source_lint_repo_is_clean () =
  (* the real gate: lib/ and bin/ must be free of raw primitives *)
  let root = ref (Sys.getcwd ()) in
  while not (Sys.file_exists (Filename.concat !root "DESIGN.md")) do
    let parent = Filename.dirname !root in
    if parent = !root then Alcotest.fail "repo root not found";
    root := parent
  done;
  let diags =
    C.Source_lint.scan_roots
      [ Filename.concat !root "lib"; Filename.concat !root "bin" ]
  in
  List.iter
    (fun d ->
      Alcotest.failf "raw primitive: %s %s: %s" d.D.code
        (D.location_to_string d.D.location)
        d.D.message)
    diags

(* ------------------------------------------------------------------ *)
(* Trace verifier *)

let jsonl events =
  String.concat "\n" (List.map T.Event.to_json events) ^ "\n"

let bb = T.Event.Branch_bound

let good_trace =
  [
    { T.Event.at = 0.00; worker = 0; payload = T.Event.Span_start bb };
    { T.Event.at = 0.01; worker = 0; payload = T.Event.Node_explored { depth = 0; bound = 12.0; iters = 0 } };
    { T.Event.at = 0.02; worker = 1; payload = T.Event.Node_explored { depth = 1; bound = 11.0; iters = 0 } };
    { T.Event.at = 0.03; worker = 0; payload = T.Event.Node_explored { depth = 1; bound = 10.5; iters = 0 } };
    { T.Event.at = 0.04; worker = 0; payload = T.Event.Incumbent { objective = 10.0; node = 2 } };
    { T.Event.at = 0.05; worker = 0; payload = T.Event.Steal { tasks = 2 } };
    { T.Event.at = 0.06; worker = 0; payload = T.Event.Incumbent { objective = 8.0; node = 3 } };
    { T.Event.at = 0.07; worker = 0; payload = T.Event.Stopped { reason = "budget" } };
    { T.Event.at = 0.08; worker = 0; payload = T.Event.Span_end bb };
  ]

let test_trace_verify_accepts () =
  let stats, diags = C.Trace_verify.verify (jsonl good_trace) in
  Alcotest.(check int) "clean" 0 (List.length diags);
  Alcotest.(check int) "events" 9 stats.C.Trace_verify.v_events;
  Alcotest.(check int) "segments" 1 stats.C.Trace_verify.v_segments;
  Alcotest.(check int) "workers" 2 stats.C.Trace_verify.v_workers

let expect_code name code text =
  let _, diags = C.Trace_verify.verify text in
  Alcotest.(check bool)
    (name ^ " rejected with " ^ code)
    true
    (List.exists (fun d -> d.D.code = code) diags)

let test_trace_verify_rejects_bad_nesting () =
  expect_code "crossed spans" "RF431"
    (jsonl
       [
         { T.Event.at = 0.0; worker = 0; payload = T.Event.Span_start T.Event.Build };
         { T.Event.at = 0.1; worker = 0; payload = T.Event.Span_start T.Event.Root_lp };
         { T.Event.at = 0.2; worker = 0; payload = T.Event.Span_end T.Event.Build };
         { T.Event.at = 0.3; worker = 0; payload = T.Event.Span_end T.Event.Root_lp };
       ]);
  expect_code "unopened span" "RF431"
    (jsonl [ { T.Event.at = 0.0; worker = 0; payload = T.Event.Span_end bb } ])

let test_trace_verify_rejects_time_travel () =
  expect_code "backwards clock" "RF432"
    (jsonl
       [
         { T.Event.at = 0.5; worker = 0; payload = T.Event.Span_start bb };
         { T.Event.at = 0.1; worker = 0; payload = T.Event.Span_end bb };
       ])

let test_trace_verify_rejects_bouncing_incumbent () =
  let mk at objective node =
    { T.Event.at; worker = 0; payload = T.Event.Incumbent { objective; node } }
  in
  expect_code "bouncing incumbent" "RF433"
    (jsonl
       ([ { T.Event.at = 0.0; worker = 0; payload = T.Event.Span_start bb } ]
       @ [ mk 0.1 5.0 1; mk 0.2 9.0 2; mk 0.3 4.0 3 ]
       @ [ { T.Event.at = 0.4; worker = 0; payload = T.Event.Span_end bb } ]))

let test_trace_verify_rejects_conjured_nodes () =
  let node at depth =
    { T.Event.at; worker = 0; payload = T.Event.Node_explored { depth; bound = 1.0; iters = 0 } }
  in
  expect_code "depth-1 nodes without parents" "RF434"
    (jsonl
       ([ { T.Event.at = 0.0; worker = 0; payload = T.Event.Span_start bb } ]
       @ [ node 0.1 0; node 0.2 1; node 0.3 1; node 0.4 1 ]
       @ [ { T.Event.at = 0.5; worker = 0; payload = T.Event.Span_end bb } ]))

let test_trace_verify_rejects_double_stop () =
  let stop at =
    { T.Event.at; worker = 0; payload = T.Event.Stopped { reason = "cancel" } }
  in
  expect_code "two Stopped(cancel)" "RF435"
    (jsonl
       ([ { T.Event.at = 0.0; worker = 0; payload = T.Event.Span_start bb } ]
       @ [ stop 0.1; stop 0.2 ]
       @ [ { T.Event.at = 0.3; worker = 0; payload = T.Event.Span_end bb } ]))

let test_trace_verify_rejects_garbage () =
  expect_code "unparsable line" "RF430" "{\"not\":\"an event\"}\n"

(* a real recorded solve must verify clean end to end *)
let test_trace_verify_real_solve () =
  let part = Device.Partition.columnar_exn Device.Devices.mini in
  let spec =
    Device.Spec.make ~name:"toy"
      ~nets:[ { Device.Spec.src = "filter"; dst = "decoder"; weight = 32. } ]
      [
        { Device.Spec.r_name = "filter";
          demand = [ (Device.Resource.Clb, 2); (Device.Resource.Bram, 1) ] };
        { Device.Spec.r_name = "decoder";
          demand = [ (Device.Resource.Clb, 2); (Device.Resource.Dsp, 1) ] };
      ]
  in
  let buf = Buffer.create 4096 in
  let sink =
    T.Sink.of_fn (fun e -> Buffer.add_string buf (T.Event.to_json e ^ "\n"))
  in
  let options =
    Rfloor.Solver.Options.make ~workers:2 ~time_limit:30. ~trace:sink ()
  in
  let r = Rfloor.Solver.solve ~options part spec in
  Alcotest.(check bool) "solved" true (r.Rfloor.Solver.plan <> None);
  let stats, diags = C.Trace_verify.verify (Buffer.contents buf) in
  List.iter
    (fun d -> Alcotest.failf "real trace: %s %s" d.D.code d.D.message)
    diags;
  Alcotest.(check bool) "saw a segment" true
    (stats.C.Trace_verify.v_segments >= 1)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "concheck.explorer",
      [
        Alcotest.test_case "finds the lost update" `Quick test_explorer_finds_lost_update;
        Alcotest.test_case "exhausts the correct counter" `Quick test_explorer_exhausts_correct_counter;
        Alcotest.test_case "budget exceeded is RF421" `Quick test_explorer_budget;
        Alcotest.test_case "scenario suite clean, seeded bug caught" `Quick test_scenarios_run_all;
      ] );
    ( "concheck.race",
      [
        Alcotest.test_case "unordered writes race" `Quick test_race_unordered_writes;
        Alcotest.test_case "mutex handoff orders" `Quick test_race_mutex_orders;
        Alcotest.test_case "CAS handoff draws lockset warning" `Quick test_race_cas_handoff_warns_lockset;
        Alcotest.test_case "self-test on real domains" `Quick test_detector_self_test;
      ] );
    ( "concheck.source_lint",
      [
        Alcotest.test_case "raw primitives flagged" `Quick test_source_lint_flags_raw;
        Alcotest.test_case "wrapped uses pass" `Quick test_source_lint_accepts_wrapped;
        Alcotest.test_case "comments and strings pass" `Quick test_source_lint_ignores_prose;
        Alcotest.test_case "line numbers reported" `Quick test_source_lint_reports_lines;
        Alcotest.test_case "lib/ and bin/ are clean" `Quick test_source_lint_repo_is_clean;
      ] );
    ( "concheck.trace_verify",
      [
        Alcotest.test_case "accepts a well-formed trace" `Quick test_trace_verify_accepts;
        Alcotest.test_case "rejects crossed spans" `Quick test_trace_verify_rejects_bad_nesting;
        Alcotest.test_case "rejects backwards timestamps" `Quick test_trace_verify_rejects_time_travel;
        Alcotest.test_case "rejects bouncing incumbents" `Quick test_trace_verify_rejects_bouncing_incumbent;
        Alcotest.test_case "rejects conjured nodes" `Quick test_trace_verify_rejects_conjured_nodes;
        Alcotest.test_case "rejects duplicate stops" `Quick test_trace_verify_rejects_double_stop;
        Alcotest.test_case "rejects unparsable lines" `Quick test_trace_verify_rejects_garbage;
        Alcotest.test_case "real two-worker solve verifies" `Quick test_trace_verify_real_solve;
      ] );
  ]
