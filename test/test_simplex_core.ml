(* Property tests for the sparse LU kernel under Simplex.

   Randomized bases (seeded; RFLOOR_TEST_SEED respected, failures print
   the case seed) are checked for the three contracts the revised
   simplex relies on:
   - factorization correctness: L·U = P·B entrywise;
   - ftran/btran are true solves: B·w = b and Bᵀ·y = c round-trip;
   - the product-form update file is exact: k column replacements via
     [Lu.update] answer ftran/btran identically (to rounding) to a
     fresh factorization of the replaced basis. *)

open Milp
module Prng = Generators.Prng

(* ------------------------------------------------------------------ *)
(* Random sparse bases *)

(* A permutation backbone with entries bounded away from zero makes the
   matrix structurally nonsingular; extra off-diagonal fill (which can
   still produce numerically singular draws — callers retry on
   [Lu.Singular]) exercises the elimination and pivoting paths. *)
let random_cols prng m =
  let backbone = Array.init m (fun i -> i) in
  Prng.shuffle prng backbone;
  let signed prng lo hi =
    let v = lo +. (float_of_int (Prng.int prng 1000) /. 1000. *. (hi -. lo)) in
    if Prng.bool prng then v else -.v
  in
  Array.init m (fun j ->
      let taken = Array.make m false in
      taken.(backbone.(j)) <- true;
      let entries = ref [ (backbone.(j), signed prng 0.5 4.) ] in
      let extra = Prng.int prng (1 + (m / 2)) in
      for _ = 1 to extra do
        let r = Prng.int prng m in
        if not taken.(r) then begin
          taken.(r) <- true;
          entries := (r, signed prng 0.05 2.) :: !entries
        end
      done;
      Array.of_list (List.rev !entries))

let col_iter cols j f = Array.iter (fun (r, c) -> f r c) cols.(j)

let factor_cols cols =
  let m = Array.length cols in
  Lu.factor ~m (col_iter cols) (Array.init m (fun j -> j))

(* Retry until a draw factors: keeps the test independent of how often
   random fill produces a (near-)singular matrix. *)
let rec random_factored prng m tries =
  let cols = random_cols prng m in
  match factor_cols cols with
  | lu -> (cols, lu)
  | exception Lu.Singular ->
    if tries <= 0 then Alcotest.fail "no nonsingular draw in 50 tries"
    else random_factored prng m (tries - 1)

let dense_of_cols cols =
  let m = Array.length cols in
  let b = Array.make_matrix m m 0. in
  Array.iteri (fun j col -> Array.iter (fun (r, c) -> b.(r).(j) <- c) col) cols;
  b

let max_abs a =
  Array.fold_left (fun acc row -> Array.fold_left (fun a v -> Float.max a (abs_float v)) acc row) 0. a

(* ------------------------------------------------------------------ *)
(* Property 1: L·U = P·B *)

let test_lu_reconstructs () =
  let base = Generators.base_seed () in
  for i = 0 to 59 do
    let seed = Generators.case_seed base i in
    let prng = Prng.make seed in
    let m = Prng.range prng 1 12 in
    let cols, lu = random_factored prng m 50 in
    let b = dense_of_cols cols in
    let l = Lu.dense_l lu and u = Lu.dense_u lu and perm = Lu.perm lu in
    let scale = 1. +. max_abs b in
    for k = 0 to m - 1 do
      for j = 0 to m - 1 do
        let lu_kj = ref 0. in
        for t = 0 to m - 1 do
          lu_kj := !lu_kj +. (l.(k).(t) *. u.(t).(j))
        done;
        let want = b.(perm.(k)).(j) in
        if abs_float (!lu_kj -. want) > 1e-8 *. scale then
          Alcotest.failf "seed %d (m=%d): (L*U)[%d][%d] = %.12g, (P*B) = %.12g"
            seed m k j !lu_kj want
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Property 2: ftran/btran solve B·w = b and Bᵀ·y = c *)

let check_ftran ~seed cols lu prng tag =
  let m = Array.length cols in
  let b = Array.init m (fun _ -> float_of_int (Prng.range prng (-9) 9)) in
  let w = Array.copy b in
  Lu.ftran lu w;
  (* recompose: sum_j w_j * col_j must reproduce b row-wise *)
  let got = Array.make m 0. in
  for j = 0 to m - 1 do
    if w.(j) <> 0. then
      Array.iter (fun (r, c) -> got.(r) <- got.(r) +. (c *. w.(j))) cols.(j)
  done;
  let scale = 1. +. Array.fold_left (fun a v -> Float.max a (abs_float v)) 0. w in
  for r = 0 to m - 1 do
    if abs_float (got.(r) -. b.(r)) > 1e-7 *. scale then
      Alcotest.failf "seed %d (m=%d, %s): ftran: (B*w)[%d] = %.12g, b = %.12g"
        seed m tag r got.(r) b.(r)
  done

let check_btran ~seed cols lu prng tag =
  let m = Array.length cols in
  let c = Array.init m (fun _ -> float_of_int (Prng.range prng (-9) 9)) in
  let y = Array.copy c in
  Lu.btran lu y;
  (* Bᵀ·y = c means each basis column dotted with y gives its cost *)
  let scale = 1. +. Array.fold_left (fun a v -> Float.max a (abs_float v)) 0. y in
  for j = 0 to m - 1 do
    let dot = ref 0. in
    Array.iter (fun (r, coef) -> dot := !dot +. (coef *. y.(r))) cols.(j);
    if abs_float (!dot -. c.(j)) > 1e-7 *. scale then
      Alcotest.failf "seed %d (m=%d, %s): btran: (B^T*y)[%d] = %.12g, c = %.12g"
        seed m tag j !dot c.(j)
  done

let test_ftran_btran_roundtrip () =
  let base = Generators.base_seed () + 7777 in
  for i = 0 to 59 do
    let seed = Generators.case_seed base i in
    let prng = Prng.make seed in
    let m = Prng.range prng 1 15 in
    let cols, lu = random_factored prng m 50 in
    for _ = 1 to 3 do
      check_ftran ~seed cols lu prng "fresh";
      check_btran ~seed cols lu prng "fresh"
    done
  done

(* ------------------------------------------------------------------ *)
(* Property 3: k product-form updates ≡ fresh factorization *)

(* Replace position [r]'s column through the public protocol (ftran the
   incoming column, then [Lu.update]); mirrors exactly what [Simplex]
   does at a basis change.  Retries draws whose spike pivot is too
   small to represent an invertible replacement. *)
let rec apply_update prng cols lu r tries =
  let m = Array.length cols in
  let newcol = (random_cols prng m).(Prng.int prng m) in
  let w = Array.make m 0. in
  Array.iter (fun (row, c) -> w.(row) <- w.(row) +. c) newcol;
  Lu.ftran lu w;
  if abs_float w.(r) < 1e-6 then
    if tries <= 0 then None
    else apply_update prng cols lu r (tries - 1)
  else begin
    Lu.update lu r w;
    cols.(r) <- newcol;
    Some ()
  end

let test_updates_match_fresh () =
  let base = Generators.base_seed () + 424242 in
  for i = 0 to 39 do
    let seed = Generators.case_seed base i in
    let prng = Prng.make seed in
    let m = Prng.range prng 2 12 in
    let cols, lu = random_factored prng m 50 in
    let k = Prng.range prng 1 8 in
    let applied = ref 0 in
    for _ = 1 to k do
      let r = Prng.int prng m in
      match apply_update prng cols lu r 20 with
      | Some () -> incr applied
      | None -> ()
    done;
    if Lu.eta_count lu <> !applied then
      Alcotest.failf "seed %d: eta_count %d after %d updates" seed
        (Lu.eta_count lu) !applied;
    (* the updated factorization must answer like a fresh one *)
    (match factor_cols cols with
    | fresh ->
      for _ = 1 to 3 do
        let b = Array.init m (fun _ -> float_of_int (Prng.range prng (-9) 9)) in
        let w_upd = Array.copy b and w_fresh = Array.copy b in
        Lu.ftran lu w_upd;
        Lu.ftran fresh w_fresh;
        let scale =
          1. +. Array.fold_left (fun a v -> Float.max a (abs_float v)) 0. w_fresh
        in
        for j = 0 to m - 1 do
          if abs_float (w_upd.(j) -. w_fresh.(j)) > 1e-6 *. scale then
            Alcotest.failf
              "seed %d (m=%d, %d updates): ftran[%d] updated %.12g vs fresh %.12g"
              seed m !applied j w_upd.(j) w_fresh.(j)
        done;
        let c = Array.init m (fun _ -> float_of_int (Prng.range prng (-9) 9)) in
        let y_upd = Array.copy c and y_fresh = Array.copy c in
        Lu.btran lu y_upd;
        Lu.btran fresh y_fresh;
        let scale =
          1. +. Array.fold_left (fun a v -> Float.max a (abs_float v)) 0. y_fresh
        in
        for r = 0 to m - 1 do
          if abs_float (y_upd.(r) -. y_fresh.(r)) > 1e-6 *. scale then
            Alcotest.failf
              "seed %d (m=%d, %d updates): btran[%d] updated %.12g vs fresh %.12g"
              seed m !applied r y_upd.(r) y_fresh.(r)
        done
      done
    | exception Lu.Singular ->
      (* every accepted update had |pivot| >= 1e-6, so the replaced
         basis is invertible; a singular fresh factor is a bug *)
      Alcotest.failf "seed %d: fresh refactorization singular after updates" seed);
    (* updated LU must still answer the *current* basis, directly *)
    check_ftran ~seed cols lu prng "updated";
    check_btran ~seed cols lu prng "updated"
  done

(* ------------------------------------------------------------------ *)
(* Refactorization triggers *)

let test_needs_refactor_cap () =
  let base = Generators.base_seed () + 99 in
  let seed = Generators.case_seed base 0 in
  let prng = Prng.make seed in
  let m = 8 in
  let cols, lu = random_factored prng m 50 in
  Alcotest.(check bool) "fresh factor trusted" false (Lu.needs_refactor lu);
  let applied = ref 0 in
  while !applied < 3 do
    let r = Prng.int prng m in
    match apply_update prng cols lu r 20 with
    | Some () -> incr applied
    | None -> ()
  done;
  Alcotest.(check bool) "below default cap" false
    (Lu.needs_refactor ~cap:64 lu);
  Alcotest.(check bool) "at explicit cap" true (Lu.needs_refactor ~cap:3 lu);
  Alcotest.(check bool) "stable so far" false (Lu.unstable lu)

let test_singular_detected () =
  (* a column of zeros and a duplicated column must both raise *)
  let zero_cols = [| [| (0, 1.) |]; [||] |] in
  (match factor_cols zero_cols with
  | _ -> Alcotest.fail "zero column factored"
  | exception Lu.Singular -> ());
  let dup_cols = [| [| (0, 1.); (1, 2.) |]; [| (0, 2.); (1, 4.) |] |] in
  match factor_cols dup_cols with
  | _ -> Alcotest.fail "rank-1 basis factored"
  | exception Lu.Singular -> ()

let suites =
  [
    ( "simplex_core.lu",
      [
        Alcotest.test_case "L*U = P*B on random sparse bases" `Quick
          test_lu_reconstructs;
        Alcotest.test_case "ftran/btran round-trip" `Quick
          test_ftran_btran_roundtrip;
        Alcotest.test_case "k updates match a fresh factorization" `Quick
          test_updates_match_fresh;
        Alcotest.test_case "needs_refactor honors the eta cap" `Quick
          test_needs_refactor_cap;
        Alcotest.test_case "singular bases are rejected" `Quick
          test_singular_detected;
      ] );
  ]
