(* Online floorplanning: incremental maximal-free-rectangle tracking
   pinned against a brute-force oracle, admission, the no-break
   defragmentation planner, and the seeded workload replayer. *)

open Device
module Fs = Rfloor_online.Free_space
module Layout = Rfloor_online.Layout
module Defrag = Rfloor_online.Defrag
module Workload = Rfloor_online.Workload

let mini_part = lazy (Partition.columnar_exn Devices.mini)

(* Brute-force oracle, deliberately different from the library's
   row-span sweep: enumerate every rectangle, keep the free ones, keep
   those not contained in another free one. *)
let oracle part occupied =
  let g = part.Partition.grid in
  let w = Grid.width g and h = Grid.height g in
  let free_cell c r =
    (not (Grid.in_forbidden g c r))
    && not (List.exists (fun o -> Rect.contains_point o c r) occupied)
  in
  let rect_free rect =
    let ok = ref true in
    for c = rect.Rect.x to Rect.x2 rect do
      for r = rect.Rect.y to Rect.y2 rect do
        if not (free_cell c r) then ok := false
      done
    done;
    !ok
  in
  let all = ref [] in
  for x = 1 to w do
    for y = 1 to h do
      for rw = 1 to w - x + 1 do
        for rh = 1 to h - y + 1 do
          let rect = Rect.make ~x ~y ~w:rw ~h:rh in
          if rect_free rect then all := rect :: !all
        done
      done
    done
  done;
  let free = !all in
  List.filter
    (fun a ->
      not
        (List.exists
           (fun b -> (not (Rect.equal a b)) && Rect.contains b a)
           free))
    free
  |> List.sort Rect.compare

let test_mer_differential () =
  let checked = ref 0 in
  for seed = 0 to 199 do
    let grid = Devices.random (Random.State.make [| seed |]) in
    match Partition.columnar grid with
    | Error _ -> ()
    | Ok part ->
      let rng = Generators.Prng.make (seed * 7919) in
      let placed = ref [] in
      let mers = ref (Fs.recompute part ~occupied:[]) in
      for op = 0 to 29 do
        (if !placed <> [] && Generators.Prng.int rng 5 < 2 then begin
           (* departure *)
           let i = Generators.Prng.int rng (List.length !placed) in
           let r = List.nth !placed i in
           placed := List.filteri (fun j _ -> j <> i) !placed;
           mers := Fs.remove part ~occupied:!placed !mers r
         end
         else
           (* arrival into a random sub-rectangle of a random MER *)
           match !mers with
           | [] -> ()
           | ms ->
             let m = List.nth ms (Generators.Prng.int rng (List.length ms)) in
             let rw = Generators.Prng.range rng 1 m.Rect.w in
             let rh = Generators.Prng.range rng 1 m.Rect.h in
             let x = Generators.Prng.range rng m.Rect.x (Rect.x2 m - rw + 1) in
             let y = Generators.Prng.range rng m.Rect.y (Rect.y2 m - rh + 1) in
             let r = Rect.make ~x ~y ~w:rw ~h:rh in
             placed := r :: !placed;
             mers := Fs.add !mers r);
        incr checked;
        if not (Fs.equal_sets !mers (oracle part !placed)) then
          Alcotest.failf "MER set diverged (seed %d, op %d):@ inc=[%s]@ ref=[%s]"
            seed op
            (String.concat " " (List.map Rect.to_string !mers))
            (String.concat " " (List.map Rect.to_string (oracle part !placed)))
      done
  done;
  if !checked < 1000 then Alcotest.failf "too few differential checks (%d)" !checked

let ok = function
  | Ok v -> v
  | Error (d : Rfloor_diag.Diagnostic.t) -> Alcotest.failf "diagnostic: %s" d.message

let test_admission_best_fit () =
  let part = Lazy.force mini_part in
  let l = Layout.create part in
  (* empty mini: free space is the whole 10x4 device, one MER *)
  Alcotest.(check int) "one MER when empty" 1 (List.length (Layout.free_rects l));
  Alcotest.(check (float 1e-9)) "fragmentation 0" 0. (Layout.fragmentation l);
  let l, r1 = ok (Layout.place l "a" [ (Resource.Clb, 4) ]) in
  (* 4 CLBs fit in a 1-column x 4-row strip of a CLB column *)
  Alcotest.(check int) "minimal area" 4 (Rect.area r1);
  Alcotest.(check bool) "differential" true (Layout.check_free_rects l);
  Alcotest.(check bool) "occupancy > 0" true (Layout.occupancy l > 0.);
  let l2 = ok (Layout.remove l "a") in
  Alcotest.(check int) "empty again" 0 (Layout.modules l2);
  Alcotest.(check int) "one MER again" 1 (List.length (Layout.free_rects l2))

let test_admission_rejects_dup_and_unknown () =
  let part = Lazy.force mini_part in
  let l = Layout.create part in
  let l, _ = ok (Layout.place l "a" [ (Resource.Clb, 2) ]) in
  (match Layout.place l "a" [ (Resource.Clb, 2) ] with
  | Error d -> Alcotest.(check string) "dup code" "RF702" d.Rfloor_diag.Diagnostic.code
  | Ok _ -> Alcotest.fail "duplicate admitted");
  match Layout.remove l "ghost" with
  | Error d -> Alcotest.(check string) "unknown code" "RF702" d.Rfloor_diag.Diagnostic.code
  | Ok _ -> Alcotest.fail "removed a ghost"

(* A crafted one-move instance: an 8-wide, 1-tall all-CLB device with
   modules at columns 1-2 and 4-5.  A 4-column arrival does not fit
   (max free run is 3), but moving "b" right by one run makes room —
   the planner must find a single-move schedule, and the non-moving
   module must come through byte-identical. *)
let one_move_device = lazy (Grid.of_strings ~name:"strip" [ "CCCCCCCC" ])

let one_move_layout () =
  let part = Partition.columnar_exn (Lazy.force one_move_device) in
  let l = Layout.create part in
  let l = ok (Layout.place_at l "a" [ (Resource.Clb, 2) ] (Rect.make ~x:1 ~y:1 ~w:2 ~h:1)) in
  let l = ok (Layout.place_at l "b" [ (Resource.Clb, 2) ] (Rect.make ~x:4 ~y:1 ~w:2 ~h:1)) in
  (part, l)

let test_defrag_minimal_move () =
  let _, l = one_move_layout () in
  let demand = [ (Resource.Clb, 4) ] in
  Alcotest.(check bool) "blocked" true (Layout.admission_rect l demand = None);
  match ok (Defrag.plan ~fallback:false l ~name:"c" ~demand) with
  | Defrag.Admit _ -> Alcotest.fail "planner claims admissible"
  | Defrag.Fallback _ -> Alcotest.fail "planner fell back"
  | Defrag.Moves (schedule, rect) ->
    Alcotest.(check int) "one move" 1 (List.length schedule);
    let a_before = Option.get (Layout.find l "a") in
    let l' = ok (Defrag.execute l schedule) in
    let a_after = Option.get (Layout.find l' "a") in
    Alcotest.(check bool) "no-break: frames byte-identical" true
      (Bytes.equal
         (Bitstream.Image.serialize a_before.Layout.e_image)
         (Bitstream.Image.serialize a_after.Layout.e_image));
    let l'', placed = ok (Layout.place l' "c" demand) in
    Alcotest.(check bool) "admitted at planned rect" true (Rect.equal rect placed);
    Alcotest.(check bool) "differential" true (Layout.check_free_rects l'')

let test_moved_module_payload_preserved () =
  let _, l = one_move_layout () in
  match ok (Defrag.plan ~fallback:false l ~name:"c" ~demand:[ (Resource.Clb, 4) ]) with
  | Defrag.Moves (schedule, _) ->
    let mv = List.hd schedule in
    let before = Option.get (Layout.find l mv.Defrag.mv_name) in
    let l' = ok (Defrag.execute l schedule) in
    let after = Option.get (Layout.find l' mv.Defrag.mv_name) in
    (* relocation rewrites addresses but never payload words *)
    Alcotest.(check bool) "payload equal" true
      (Bitstream.Image.payload_equal before.Layout.e_image after.Layout.e_image);
    Alcotest.(check bool) "image differs (addresses moved)" true
      (not
         (Bytes.equal
            (Bitstream.Image.serialize before.Layout.e_image)
            (Bitstream.Image.serialize after.Layout.e_image)))
  | _ -> Alcotest.fail "expected a move schedule"

let test_move_rejects_bad_destination () =
  let _, l = one_move_layout () in
  (* overlaps module "b" *)
  match Layout.move l "a" (Rect.make ~x:5 ~y:1 ~w:2 ~h:1) with
  | Error d -> Alcotest.(check string) "code" "RF705" d.Rfloor_diag.Diagnostic.code
  | Ok _ -> Alcotest.fail "moved onto an occupied rectangle"

let test_workload_deterministic () =
  let part = Lazy.force mini_part in
  let a = Workload.generate ~seed:7 ~events:50 part in
  let b = Workload.generate ~seed:7 ~events:50 part in
  Alcotest.(check bool) "same trace" true (a = b);
  let c = Workload.generate ~seed:8 ~events:50 part in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_workload_replay_audits_clean () =
  let part = Lazy.force mini_part in
  let events = Workload.generate ~seed:2015 ~events:100 part in
  let stats = Workload.replay ~check:true part events in
  Alcotest.(check (list string)) "no violations" [] stats.Workload.s_violations;
  Alcotest.(check int) "all events consumed" 100 stats.Workload.s_events;
  Alcotest.(check bool) "final differential" true
    (Layout.check_free_rects stats.Workload.s_final)

(* ------------------------------------------------------------------ *)
(* rfloor-service/1 online frames, end to end through Session.run *)

let test_service_online_roundtrip () =
  let module J = Rfloor_metrics.Json in
  let input = Filename.temp_file "rfloor_online" ".ndjson" in
  let output = Filename.temp_file "rfloor_online" ".out" in
  let oc = open_out input in
  List.iter
    (fun line -> output_string oc (line ^ "\n"))
    [
      (* before any layout: RF703 *)
      {|{"op":"add","name":"early","demand":{"clb":2}}|};
      {|{"op":"layout","device":"mini"}|};
      {|{"op":"add","name":"a","demand":{"clb":4}}|};
      (* duplicate: RF702 *)
      {|{"op":"add","name":"a","demand":{"clb":4}}|};
      (* out-of-range bound: clamped with an RF706 warning *)
      {|{"op":"defrag","max_moves":99}|};
      {|{"op":"remove","name":"a"}|};
      (* unknown (and never rejected): RF702 *)
      {|{"op":"remove","name":"a"}|};
      {|{"op":"layout"}|};
      {|{"op":"shutdown"}|};
    ];
  close_out oc;
  let warns = ref [] in
  let ic = open_in input and out = open_out output in
  Rfloor_service.Session.run
    ~warn:(fun d -> warns := d.Rfloor_diag.Diagnostic.code :: !warns)
    ~devices:(fun n -> if n = "mini" then Some Devices.mini else None)
    ~designs:(fun _ -> None)
    ic out;
  close_in ic;
  close_out out;
  let lines =
    let ic = open_in output in
    let rec go acc =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        List.rev acc
      | l -> go (l :: acc)
    in
    go []
  in
  Sys.remove input;
  Sys.remove output;
  let field key line =
    match J.parse line with
    | Error e -> Alcotest.fail (Printf.sprintf "bad frame %s: %s" line e)
    | Ok j -> (
      match J.member key j with
      | Some (J.Str s) -> s
      | _ -> "")
  in
  let outcomes = List.map (field "outcome") lines in
  Alcotest.(check (list string))
    "outcome sequence"
    [
      "error"; "established"; "admitted"; "error"; "compacted"; "removed";
      "error"; "ok";
    ]
    outcomes;
  let codes = List.map (field "code") lines in
  Alcotest.(check string) "RF703 before layout" "RF703" (List.nth codes 0);
  Alcotest.(check string) "RF702 duplicate add" "RF702" (List.nth codes 3);
  Alcotest.(check string) "RF702 unknown remove" "RF702" (List.nth codes 6);
  Alcotest.(check bool) "RF706 clamp warned" true (List.mem "RF706" !warns);
  (* the final layout report is empty again *)
  match J.parse (List.nth lines 7) with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    match J.member "layout" j with
    | Some lay ->
      Alcotest.(check bool)
        "empty layout" true
        (J.member "modules" lay = Some (J.Num 0.));
      Alcotest.(check bool)
        "zero occupancy" true
        (J.member "occupancy" lay = Some (J.Num 0.))
    | None -> Alcotest.fail "final layout frame lacks the layout summary")

let suites =
  [
    ( "online",
      [
        Alcotest.test_case "MER incremental vs oracle (200 seeds)" `Slow
          test_mer_differential;
        Alcotest.test_case "admission best fit" `Quick test_admission_best_fit;
        Alcotest.test_case "admission duplicate/unknown" `Quick
          test_admission_rejects_dup_and_unknown;
        Alcotest.test_case "defrag minimal move + no-break" `Quick
          test_defrag_minimal_move;
        Alcotest.test_case "moved module payload preserved" `Quick
          test_moved_module_payload_preserved;
        Alcotest.test_case "move rejects bad destination" `Quick
          test_move_rejects_bad_destination;
        Alcotest.test_case "workload deterministic" `Quick
          test_workload_deterministic;
        Alcotest.test_case "workload replay audits clean" `Quick
          test_workload_replay_audits_clean;
        Alcotest.test_case "service online round-trip" `Quick
          test_service_online_roundtrip;
      ] );
  ]
