(* Tests for the static-analysis passes: seeded-defect fixtures proving
   each lint check fires with exactly its expected code, clean-spec
   no-error guarantees, solution-audit defects, and the solver
   preflight short-circuit. *)

open Device
module D = Rfloor_diag.Diagnostic
module Spec_lint = Rfloor_analysis.Spec_lint
module Model_lint = Rfloor_analysis.Model_lint
module Audit = Rfloor_analysis.Solution_audit

let codes ds = List.sort_uniq compare (List.map (fun d -> d.D.code) ds)
let error_codes ds = codes (D.errors ds)

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

(* 8-column toy: C C B C C B C C, 4 rows, no forbidden areas.  The 2x2
   CLB rectangle class has 3 compatible x positions (1, 4, 7). *)
let toy =
  lazy
    (Partition.columnar_exn
       (Grid.of_columns ~name:"toy8" ~rows:4
          (List.map
             (fun k -> Resource.tile_type k)
             Resource.[ Clb; Clb; Bram; Clb; Clb; Bram; Clb; Clb ])))

let clb n = [ (Resource.Clb, n) ]

let spec_with ?(relocs = []) demand =
  Spec.make ~name:"t" ~relocs [ { Spec.r_name = "R"; demand } ]

(* ------------------------------------------------------------------ *)
(* Spec / partition lint *)

let test_clean_partition () =
  let part = Lazy.force toy in
  Alcotest.(check (list string)) "no partition findings" []
    (codes (Spec_lint.partition_only part));
  Alcotest.(check bool) "ordered" true (Partition.check_ordered part)

let test_bad_partition_ordering () =
  let part = Lazy.force toy in
  let portions = Array.copy part.Partition.portions in
  (* swap the two outer CLB portions: Property .4 ordering breaks while
     the alternating-type Property .3 still holds *)
  let t = portions.(2) in
  portions.(2) <- portions.(4);
  portions.(4) <- t;
  let bad = { part with Partition.portions = portions } in
  Alcotest.(check bool) "not ordered" false (Partition.check_ordered bad);
  let ds = Spec_lint.run bad (spec_with (clb 2)) in
  Alcotest.(check (list string)) "exactly RF001" [ "RF001" ] (error_codes ds)

let test_forbidden_outside_device () =
  let part = Lazy.force toy in
  let bad =
    { part with Partition.forbidden = [ Rect.make ~x:7 ~y:3 ~w:5 ~h:5 ] }
  in
  let ds = Spec_lint.partition_only bad in
  Alcotest.(check (list string)) "exactly RF003" [ "RF003" ] (error_codes ds)

let test_over_capacity_demand () =
  (* 6 CLB columns x 4 rows = 24 usable CLB tiles *)
  let ds = Spec_lint.run (Lazy.force toy) (spec_with (clb 25)) in
  Alcotest.(check (list string)) "exactly RF004" [ "RF004" ] (error_codes ds)

let test_collective_over_capacity () =
  let spec =
    Spec.make ~name:"t"
      [
        { Spec.r_name = "A"; demand = clb 13 };
        { Spec.r_name = "B"; demand = clb 13 };
      ]
  in
  let ds = Spec_lint.run (Lazy.force toy) spec in
  Alcotest.(check (list string)) "exactly RF005" [ "RF005" ] (error_codes ds)

let test_unplaceable_region () =
  (* on the clean toy, 5 BRAM tiles fit in the cols 3-6 rectangle *)
  let ds = Spec_lint.run (Lazy.force toy) (spec_with [ (Resource.Bram, 5) ]) in
  Alcotest.(check (list string)) "bram 5 placeable" [] (error_codes ds);
  (* forbid one BRAM tile: 7 usable BRAM tiles remain (capacity fine),
     but any rectangle reaching 7 must span both BRAM columns over all
     4 rows and therefore hits the forbidden tile -- placement is
     impossible while no per-kind capacity check can see it *)
  let grid =
    Grid.of_columns ~name:"toy8f" ~rows:4
      ~forbidden:[ Rect.make ~x:3 ~y:1 ~w:1 ~h:1 ]
      (List.map
         (fun k -> Resource.tile_type k)
         Resource.[ Clb; Clb; Bram; Clb; Clb; Bram; Clb; Clb ])
  in
  let part = Partition.columnar_exn grid in
  let ds = Spec_lint.run part (spec_with [ (Resource.Bram, 7) ]) in
  Alcotest.(check (list string)) "exactly RF009" [ "RF009" ] (error_codes ds)

let test_unsatisfiable_reloc_copies () =
  let part = Lazy.force toy in
  let relocs = [ { Spec.target = "R"; copies = 99; mode = Spec.Hard } ] in
  let ds = Spec_lint.run part (spec_with ~relocs (clb 4)) in
  Alcotest.(check (list string)) "exactly RF006" [ "RF006" ] (error_codes ds);
  (* soft mode: same finding, warning severity *)
  let relocs = [ { Spec.target = "R"; copies = 99; mode = Spec.Soft 1. } ] in
  let ds = Spec_lint.run part (spec_with ~relocs (clb 4)) in
  Alcotest.(check (list string)) "no errors" [] (error_codes ds);
  Alcotest.(check (list string)) "RF006 warning" [ "RF006" ] (codes ds)

let test_likely_unsatisfiable_reloc () =
  (* the 2x2 CLB class has 9 windows but only 6 pairwise-disjoint ones:
     copies=6 needs 7 -- under the window count, over the disjoint
     estimate *)
  let part = Lazy.force toy in
  let relocs = [ { Spec.target = "R"; copies = 6; mode = Spec.Hard } ] in
  let ds = Spec_lint.run part (spec_with ~relocs (clb 4)) in
  Alcotest.(check (list string)) "no errors" [] (error_codes ds);
  Alcotest.(check (list string)) "RF007 warning" [ "RF007" ] (codes ds)

let test_satisfiable_reloc_quiet () =
  let part = Lazy.force toy in
  let relocs = [ { Spec.target = "R"; copies = 2; mode = Spec.Hard } ] in
  let ds = Spec_lint.run part (spec_with ~relocs (clb 4)) in
  Alcotest.(check (list string)) "quiet" [] (codes ds)

let test_dangling_references () =
  let spec =
    {
      Spec.s_name = "t";
      regions = [ { Spec.r_name = "R"; demand = clb 2 } ];
      nets = [ { Spec.src = "R"; dst = "ghost"; weight = 1. } ];
      relocs = [ { Spec.target = "phantom"; copies = 1; mode = Spec.Hard } ];
    }
  in
  let ds = Spec_lint.run (Lazy.force toy) spec in
  Alcotest.(check (list string)) "exactly RF008" [ "RF008" ] (error_codes ds);
  Alcotest.(check int) "both references" 2 (List.length (D.errors ds))

let test_compatible_windows () =
  let sites, disjoint = Spec_lint.compatible_windows (Lazy.force toy) (clb 4) in
  Alcotest.(check int) "9 windows in the best class" 9 sites;
  Alcotest.(check int) "6 disjoint windows" 6 disjoint

(* ------------------------------------------------------------------ *)
(* Model lint *)

let test_degenerate_big_m () =
  let lp = Milp.Lp.create () in
  let x = Milp.Lp.add_var lp ~name:"x" ~ub:1. () in
  let d = Milp.Lp.add_var lp ~name:"d" ~kind:Milp.Lp.Binary () in
  Milp.Lp.add_constr lp ~name:"n.bigM" [ (1., x); (1e9, d) ] Milp.Lp.Le 1e9;
  let ds = Model_lint.run lp in
  Alcotest.(check (list string)) "exactly RF107" [ "RF107" ] (codes ds)

let test_bound_infeasible_row () =
  let lp = Milp.Lp.create () in
  let x = Milp.Lp.add_var lp ~name:"x" ~ub:1. () in
  let y = Milp.Lp.add_var lp ~name:"y" ~ub:1. () in
  Milp.Lp.add_constr lp ~name:"n.cap" [ (1., x); (1., y) ] Milp.Lp.Ge 10.;
  let ds = Model_lint.run lp in
  Alcotest.(check (list string)) "exactly RF106" [ "RF106" ] (codes ds)

let test_duplicate_and_dominated_rows () =
  let lp = Milp.Lp.create () in
  let x = Milp.Lp.add_var lp ~name:"x" ~ub:10. () in
  Milp.Lp.add_constr lp ~name:"a.r" [ (1., x) ] Milp.Lp.Le 5.;
  Milp.Lp.add_constr lp ~name:"b.r" [ (1., x) ] Milp.Lp.Le 5.;
  Milp.Lp.add_constr lp ~name:"c.r" [ (1., x) ] Milp.Lp.Le 7.;
  let ds = Model_lint.run lp in
  Alcotest.(check (list string)) "duplicate + dominated" [ "RF102"; "RF103" ]
    (codes ds)

let test_conflicting_equalities () =
  let lp = Milp.Lp.create () in
  let x = Milp.Lp.add_var lp ~name:"x" ~ub:10. () in
  Milp.Lp.add_constr lp ~name:"a.e" [ (1., x) ] Milp.Lp.Eq 3.;
  Milp.Lp.add_constr lp ~name:"b.e" [ (1., x) ] Milp.Lp.Eq 4.;
  let ds = Model_lint.run lp in
  Alcotest.(check (list string)) "conflict is an error" [ "RF106" ]
    (error_codes ds)

let test_empty_fixed_free () =
  let lp = Milp.Lp.create () in
  let _fixed = Milp.Lp.add_var lp ~name:"f" ~lb:2. ~ub:2. () in
  let z = Milp.Lp.add_var lp ~name:"z" ~kind:Milp.Lp.Integer () in
  (* z has ub = infinity: unbranchable box *)
  Milp.Lp.add_constr lp ~name:"n.empty" [] Milp.Lp.Le 1.;
  Milp.Lp.add_constr lp ~name:"n.z" [ (1., z) ] Milp.Lp.Le 9.;
  let ds = Model_lint.run lp in
  Alcotest.(check (list string)) "empty+fixed+free int"
    [ "RF101"; "RF104"; "RF105" ] (codes ds);
  Alcotest.(check (list string)) "none are errors" [] (error_codes ds)

let test_family_of_name () =
  Alcotest.(check string) "entity stripped" "res.clb"
    (Model_lint.family_of_name "Matched Filter.res.clb");
  Alcotest.(check string) "digits collapse" "c" (Model_lint.family_of_name "c17");
  Alcotest.(check string) "plain name kept" "waste_cap"
    (Model_lint.family_of_name "waste_cap")

let test_fold_constrs () =
  let lp = Milp.Lp.create () in
  let x = Milp.Lp.add_var lp ~ub:1. () in
  Milp.Lp.add_constr lp [ (1., x) ] Milp.Lp.Le 1.;
  Milp.Lp.add_constr lp [ (2., x) ] Milp.Lp.Ge 0.;
  let n = Milp.Lp.fold_constrs lp ~init:0 (fun acc _ _ _ _ -> acc + 1) in
  Alcotest.(check int) "fold visits every row" (Milp.Lp.num_constrs lp) n

(* the generated SDR models lint clean: no errors, no warnings *)
let test_clean_sdr_models () =
  let part = Partition.columnar_exn Devices.virtex5_fx70t in
  List.iter
    (fun spec ->
      let ds = Spec_lint.run part spec in
      Alcotest.(check (list string))
        ("spec lint " ^ spec.Spec.s_name)
        [] (error_codes ds);
      let lp = Rfloor.Model.lp (Rfloor.Model.build part spec) in
      let ml = Model_lint.run lp in
      Alcotest.(check (list string))
        ("model lint " ^ spec.Spec.s_name)
        []
        (codes (List.filter (fun d -> d.D.severity <> D.Info) ml)))
    [ Sdr.design; Sdr.sdr2; Sdr.sdr3 ]

(* ------------------------------------------------------------------ *)
(* Solution audit *)

let audit_spec copies =
  spec_with
    ~relocs:[ { Spec.target = "R"; copies; mode = Spec.Hard } ]
    (clb 4)

let region_at x =
  { Floorplan.p_region = "R"; p_rect = Rect.make ~x ~y:1 ~w:2 ~h:2 }

let area_at ?(i = 1) ?(h = 2) ?(y = 1) x =
  { Floorplan.fc_region = "R"; fc_index = i; fc_rect = Rect.make ~x ~y ~w:2 ~h }

let test_audit_valid_plan () =
  let part = Lazy.force toy in
  let plan = Floorplan.make [ region_at 1 ] [ area_at 4 ] in
  Alcotest.(check (list string)) "clean audit" []
    (codes (Audit.run part (audit_spec 1) plan))

let test_audit_defects () =
  let part = Lazy.force toy in
  let spec = audit_spec 1 in
  let expect name want plan =
    let got = codes (Audit.run part spec plan) in
    Alcotest.(check bool)
      (Printf.sprintf "%s reports %s (got %s)" name want (String.concat "," got))
      true
      (List.mem want got)
  in
  (* Eq. 6: area of a different height *)
  expect "height" "RF201" (Floorplan.make [ region_at 1 ] [ area_at ~h:1 4 ]);
  (* Eq. 8/10: area over a different column-type sequence *)
  expect "sequence" "RF203" (Floorplan.make [ region_at 1 ] [ area_at 5 ]);
  (* not free: area overlapping its own region *)
  expect "overlap" "RF205" (Floorplan.make [ region_at 4 ] [ area_at 4 ]);
  (* hard request short of copies *)
  expect "count" "RF206" (Floorplan.make [ region_at 1 ] []);
  (* unmet demand: region rectangle over BRAM column only *)
  expect "demand" "RF208"
    (Floorplan.make
       [ { Floorplan.p_region = "R"; p_rect = Rect.make ~x:3 ~y:1 ~w:1 ~h:2 } ]
       [ area_at 4 ])

let test_audit_eq9 () =
  (* same height, width and type sequence, but sliced across portions
     differently: impossible on a columnar partition for equal
     signatures (portion boundaries follow types), so Eq. 9 failures
     require unequal signatures -- assert RF204 never fires without
     RF203 on this device *)
  let part = Lazy.force toy in
  let plan = Floorplan.make [ region_at 1 ] [ area_at 2 ] in
  let ds = Audit.run part (audit_spec 1) plan in
  let cs = codes ds in
  Alcotest.(check bool) "RF204 implies RF203 here" true
    ((not (List.mem "RF204" cs)) || List.mem "RF203" cs)

(* ------------------------------------------------------------------ *)
(* Solver preflight integration *)

let quick_opts =
  {
    Rfloor.Solver.default_options with
    time_limit = Some 60.;
    strategy = Rfloor.Solver.Strategy.milp ~warm_start:false ();
  }

let test_preflight_short_circuits () =
  let part = Lazy.force toy in
  let outcome = Rfloor.Solver.solve ~options:quick_opts part (spec_with (clb 25)) in
  Alcotest.(check bool) "infeasible" true
    (outcome.Rfloor.Solver.status = Rfloor.Solver.Infeasible);
  Alcotest.(check int) "no nodes explored" 0 outcome.Rfloor.Solver.nodes;
  Alcotest.(check (list string)) "RF004 attached" [ "RF004" ]
    (error_codes outcome.Rfloor.Solver.diagnostics)

let test_preflight_reloc_short_circuits () =
  let part = Lazy.force toy in
  let relocs = [ { Spec.target = "R"; copies = 99; mode = Spec.Hard } ] in
  let outcome =
    Rfloor.Solver.solve ~options:quick_opts part (spec_with ~relocs (clb 4))
  in
  Alcotest.(check bool) "infeasible" true
    (outcome.Rfloor.Solver.status = Rfloor.Solver.Infeasible);
  Alcotest.(check int) "no nodes explored" 0 outcome.Rfloor.Solver.nodes;
  Alcotest.(check (list string)) "RF006 attached" [ "RF006" ]
    (error_codes outcome.Rfloor.Solver.diagnostics)

let test_preflight_clean_solve () =
  let part = Lazy.force toy in
  let relocs = [ { Spec.target = "R"; copies = 1; mode = Spec.Hard } ] in
  let outcome =
    Rfloor.Solver.solve
      ~options:{ quick_opts with objective_mode = Rfloor.Solver.Feasibility_only }
      part
      (spec_with ~relocs (clb 4))
  in
  (match outcome.Rfloor.Solver.plan with
  | None -> Alcotest.fail "expected a plan"
  | Some plan ->
    Alcotest.(check bool) "plan valid" true
      (Floorplan.is_valid part (spec_with ~relocs (clb 4)) plan));
  Alcotest.(check (list string)) "no error diagnostics" []
    (error_codes outcome.Rfloor.Solver.diagnostics)

let test_preflight_off () =
  let part = Lazy.force toy in
  let outcome =
    Rfloor.Solver.solve
      ~options:{ quick_opts with preflight = false; time_limit = Some 10. }
      part (spec_with (clb 25))
  in
  Alcotest.(check (list string)) "no diagnostics collected" []
    (codes outcome.Rfloor.Solver.diagnostics)

(* ------------------------------------------------------------------ *)
(* Diagnostics plumbing *)

let test_rendering () =
  let d =
    D.diagf ~code:"RF006" D.Error (D.Reloc "Signal \"Decoder\"") "needs %d" 3
  in
  let line = Format.asprintf "%a" D.pp d in
  Alcotest.(check bool) "human line has code" true (contains line "RF006");
  let sexp = D.to_sexp d in
  Alcotest.(check bool) "sexp escapes quotes" true
    (contains sexp "\\\"Decoder\\\"");
  Alcotest.(check bool) "summary" true (contains (D.summary [ d ]) "1 error")

let test_code_table () =
  Alcotest.(check bool) "RF001 described" true (D.describe "RF001" <> None);
  Alcotest.(check bool) "unknown code" true (D.describe "RF999" = None);
  List.iter
    (fun (code, _, _) ->
      Alcotest.(check int) "code shape" 5 (String.length code))
    D.all_codes

(* The registered code table is the single source of truth: codes must
   be unique, carry a non-empty description, and every code must appear
   in the DESIGN.md table with the same severity. *)
let repo_root () =
  let root = ref (Sys.getcwd ()) in
  while not (Sys.file_exists (Filename.concat !root "DESIGN.md")) do
    let parent = Filename.dirname !root in
    if parent = !root then Alcotest.fail "repo root (DESIGN.md) not found";
    root := parent
  done;
  !root

let test_code_registry () =
  let names = List.map (fun (c, _, _) -> c) D.all_codes in
  Alcotest.(check int) "codes unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check (list string)) "codes sorted" (List.sort compare names) names;
  List.iter
    (fun (code, _, doc) ->
      Alcotest.(check bool) (code ^ " documented") true (String.length doc > 0))
    D.all_codes;
  let design =
    let path = Filename.concat (repo_root ()) "DESIGN.md" in
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  List.iter
    (fun (code, sev, _) ->
      let sev_name =
        match sev with
        | D.Error -> "Error"
        | D.Warning -> "Warning"
        | D.Info -> "Info"
      in
      let row = Printf.sprintf "| %s | %s |" code sev_name in
      Alcotest.(check bool)
        (Printf.sprintf "%s in DESIGN.md as %s" code sev_name)
        true (contains design row))
    D.all_codes

let suites =
  [
    ( "analysis.spec_lint",
      [
        Alcotest.test_case "clean partition" `Quick test_clean_partition;
        Alcotest.test_case "bad ordering -> RF001" `Quick test_bad_partition_ordering;
        Alcotest.test_case "forbidden outside -> RF003" `Quick test_forbidden_outside_device;
        Alcotest.test_case "over capacity -> RF004" `Quick test_over_capacity_demand;
        Alcotest.test_case "collective capacity -> RF005" `Quick test_collective_over_capacity;
        Alcotest.test_case "unplaceable -> RF009" `Quick test_unplaceable_region;
        Alcotest.test_case "reloc copies -> RF006" `Quick test_unsatisfiable_reloc_copies;
        Alcotest.test_case "reloc disjoint -> RF007" `Quick test_likely_unsatisfiable_reloc;
        Alcotest.test_case "satisfiable reloc quiet" `Quick test_satisfiable_reloc_quiet;
        Alcotest.test_case "dangling refs -> RF008" `Quick test_dangling_references;
        Alcotest.test_case "compatible windows" `Quick test_compatible_windows;
      ] );
    ( "analysis.model_lint",
      [
        Alcotest.test_case "degenerate big-M -> RF107" `Quick test_degenerate_big_m;
        Alcotest.test_case "bound infeasible -> RF106" `Quick test_bound_infeasible_row;
        Alcotest.test_case "duplicate/dominated" `Quick test_duplicate_and_dominated_rows;
        Alcotest.test_case "conflicting equalities" `Quick test_conflicting_equalities;
        Alcotest.test_case "empty/fixed/free-int" `Quick test_empty_fixed_free;
        Alcotest.test_case "family names" `Quick test_family_of_name;
        Alcotest.test_case "fold_constrs" `Quick test_fold_constrs;
        Alcotest.test_case "SDR models lint clean" `Quick test_clean_sdr_models;
      ] );
    ( "analysis.audit",
      [
        Alcotest.test_case "valid plan" `Quick test_audit_valid_plan;
        Alcotest.test_case "seeded defects" `Quick test_audit_defects;
        Alcotest.test_case "Eq. 9 vs Eq. 8" `Quick test_audit_eq9;
      ] );
    ( "analysis.preflight",
      [
        Alcotest.test_case "capacity short-circuit" `Quick test_preflight_short_circuits;
        Alcotest.test_case "reloc short-circuit" `Quick test_preflight_reloc_short_circuits;
        Alcotest.test_case "clean solve audited" `Quick test_preflight_clean_solve;
        Alcotest.test_case "preflight off" `Quick test_preflight_off;
      ] );
    ( "analysis.diagnostics",
      [
        Alcotest.test_case "rendering" `Quick test_rendering;
        Alcotest.test_case "code table" `Quick test_code_table;
        Alcotest.test_case "code registry vs DESIGN.md" `Quick test_code_registry;
      ] );
  ]
