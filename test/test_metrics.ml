(* Unit tests for Rfloor_metrics: registry semantics (idempotent
   registration, null no-ops, domain-safe updates), Prometheus/JSON
   export, the trace-event fold, and bench artifacts with regression
   gating. *)

module R = Rfloor_metrics.Registry
module A = Rfloor_metrics.Artifact
module Json = Rfloor_metrics.Json
module T = Rfloor_trace
module E = T.Event

let has_sub needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let check_sub label needle hay =
  if not (has_sub needle hay) then
    Alcotest.failf "%s: %S not found in %s" label needle hay

(* ---- registry basics ---- *)

let test_instruments () =
  let reg = R.create () in
  Alcotest.(check bool) "live" true (R.live reg);
  let c = R.counter reg "c_total" in
  R.Counter.incr c;
  R.Counter.add c 4;
  R.Counter.add c (-100);
  Alcotest.(check int) "counter monotone" 5 (R.Counter.value c);
  let g = R.gauge reg "g" in
  R.Gauge.set g 2.5;
  R.Gauge.set g 1.25;
  Alcotest.(check (float 0.)) "gauge holds last" 1.25 (R.Gauge.value g);
  let h = R.histogram reg ~buckets:[| 1.; 10. |] "h_seconds" in
  List.iter (R.Histogram.observe h) [ 0.5; 5.; 50. ];
  Alcotest.(check int) "histogram count" 3 (R.Histogram.count h);
  Alcotest.(check (float 1e-9)) "histogram sum" 55.5 (R.Histogram.sum h)

let test_null_registry () =
  Alcotest.(check bool) "null not live" false (R.live R.null);
  let c = R.counter R.null "c_total" in
  let g = R.gauge R.null "g" in
  let h = R.histogram R.null "h" in
  R.Counter.incr c;
  R.Gauge.set g 7.;
  R.Histogram.observe h 1.;
  Alcotest.(check int) "noop counter" 0 (R.Counter.value c);
  Alcotest.(check (float 0.)) "noop gauge" 0. (R.Gauge.value g);
  Alcotest.(check int) "noop histogram" 0 (R.Histogram.count h);
  Alcotest.(check int) "null snapshot empty" 0 (List.length (R.snapshot R.null))

let test_idempotent_registration () =
  let reg = R.create () in
  let c1 = R.counter reg ~labels:[ ("k", "v") ] "c_total" in
  let c2 = R.counter reg ~labels:[ ("k", "v") ] "c_total" in
  R.Counter.incr c1;
  R.Counter.incr c2;
  (* same series: both handles hit the same cell *)
  Alcotest.(check int) "same series accumulates" 2 (R.Counter.value c1);
  let c3 = R.counter reg ~labels:[ ("k", "other") ] "c_total" in
  Alcotest.(check int) "distinct labels distinct cell" 0 (R.Counter.value c3);
  (match R.gauge reg "c_total" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  let _ = R.histogram reg ~buckets:[| 1.; 2. |] "h" in
  match R.histogram reg ~buckets:[| 1.; 3. |] "h" with
  | _ -> Alcotest.fail "bucket mismatch accepted"
  | exception Invalid_argument _ -> ()

let test_concurrent_updates () =
  let reg = R.create () in
  let c = R.counter reg "c_total" in
  let h = R.histogram reg ~buckets:[| 0.5 |] "h" in
  let per_domain = 10_000 in
  let worker () =
    for i = 1 to per_domain do
      R.Counter.incr c;
      R.Histogram.observe h (if i mod 2 = 0 then 0.25 else 0.75)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Alcotest.(check int) "counter exact under 4 domains" (4 * per_domain)
    (R.Counter.value c);
  Alcotest.(check int) "histogram count exact" (4 * per_domain)
    (R.Histogram.count h);
  Alcotest.(check (float 1e-6))
    "histogram sum exact (CAS accumulation)"
    (float_of_int (4 * per_domain) *. 0.5)
    (R.Histogram.sum h);
  match R.snapshot reg with
  | [ R.Snapshot.Counter _; R.Snapshot.Histogram { buckets; count; _ } ] ->
    Alcotest.(check int) "snapshot count" (4 * per_domain) count;
    (match buckets with
    | [| (_, low); (bound, all) |] ->
      Alcotest.(check int) "le=0.5 bucket" (2 * per_domain) low;
      Alcotest.(check int) "+Inf bucket cumulative" (4 * per_domain) all;
      Alcotest.(check bool) "+Inf bound" true (bound = infinity)
    | _ -> Alcotest.fail "expected 2 buckets")
  | ms -> Alcotest.failf "expected 2 metrics, got %d" (List.length ms)

(* ---- export ---- *)

let test_prometheus_text () =
  let reg = R.create () in
  R.Counter.add (R.counter reg ~help:"a counter" "rf_c_total") 3;
  R.Gauge.set (R.gauge reg "rf_g") 1.5;
  R.Histogram.observe
    (R.histogram reg ~labels:[ ("phase", "root_lp") ] ~buckets:[| 1. |] "rf_h")
    0.5;
  let text = R.to_prometheus (R.snapshot reg) in
  check_sub "help" "# HELP rf_c_total a counter" text;
  check_sub "counter type" "# TYPE rf_c_total counter" text;
  check_sub "counter value" "rf_c_total 3" text;
  check_sub "gauge" "rf_g 1.5" text;
  check_sub "labeled bucket" "rf_h_bucket{phase=\"root_lp\",le=\"1\"} 1" text;
  check_sub "inf bucket" "le=\"+Inf\"} 1" text;
  check_sub "sum" "rf_h_sum{phase=\"root_lp\"} 0.5" text;
  check_sub "count" "rf_h_count{phase=\"root_lp\"} 1" text;
  Alcotest.(check bool) "ends with newline" true
    (text <> "" && text.[String.length text - 1] = '\n')

let test_json_validate () =
  let reg = R.create () in
  R.Counter.incr (R.counter reg "c_total");
  R.Histogram.observe (R.histogram reg "h_seconds") 0.01;
  let js = R.to_json (R.snapshot reg) in
  check_sub "schema tag" "\"schema\":\"rfloor-metrics/1\"" js;
  (match R.validate_json js with
  | Ok n -> Alcotest.(check int) "2 metrics" 2 n
  | Error e -> Alcotest.failf "valid snapshot rejected: %s" e);
  let reject label doc =
    match R.validate_json doc with
    | Ok _ -> Alcotest.failf "%s accepted" label
    | Error _ -> ()
  in
  reject "not json" "nope";
  reject "wrong schema" {|{"schema":"rfloor-metrics/999","metrics":[]}|};
  reject "negative counter"
    {|{"schema":"rfloor-metrics/1","metrics":[{"name":"c","kind":"counter","help":"","labels":{},"value":-1}]}|};
  reject "decreasing bucket counts"
    {|{"schema":"rfloor-metrics/1","metrics":[{"name":"h","kind":"histogram","help":"","labels":{},"sum":1,"count":2,"buckets":[{"le":1,"count":2},{"le":null,"count":1}]}]}|};
  reject "duplicate series"
    {|{"schema":"rfloor-metrics/1","metrics":[{"name":"c","kind":"counter","help":"","labels":{},"value":1},{"name":"c","kind":"counter","help":"","labels":{},"value":2}]}|}

(* ---- trace-event fold ---- *)

let test_trace_sink_fold () =
  let reg = R.create () in
  let tracer = T.create ~sink:(Rfloor_metrics.Trace_sink.sink reg) () in
  T.span tracer E.Build (fun () -> ());
  T.span tracer E.Root_lp (fun () -> ());
  for i = 1 to 5 do
    T.node_explored tracer ~iters:0 ~worker:0 ~depth:i ~bound:1.
  done;
  T.node_explored tracer ~iters:0 ~worker:1 ~depth:1 ~bound:2.;
  T.incumbent tracer ~worker:0 ~objective:42. ~node:3;
  T.incumbent tracer ~worker:0 ~objective:40. ~node:5;
  T.steal tracer ~worker:1 ~tasks:4;
  T.warn tracer "w";
  let snap = R.snapshot reg in
  let counter_value name labels =
    let m =
      List.find_opt
        (function
          | R.Snapshot.Counter c -> c.name = name && c.labels = labels
          | _ -> false)
        snap
    in
    match m with
    | Some (R.Snapshot.Counter c) -> c.value
    | _ -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check int) "nodes folded" 6 (counter_value "rfloor_nodes_total" []);
  Alcotest.(check int) "incumbents folded" 2
    (counter_value "rfloor_incumbents_total" []);
  Alcotest.(check int) "steal tasks folded" 4
    (counter_value "rfloor_steal_tasks_total" []);
  Alcotest.(check int) "warnings folded" 1
    (counter_value "rfloor_warnings_total" []);
  Alcotest.(check int) "per-worker nodes" 5
    (counter_value "rfloor_worker_nodes_total" [ ("worker", "0") ]);
  let incumbent_gauge =
    List.find_map
      (function
        | R.Snapshot.Gauge g when g.name = "rfloor_incumbent_objective" ->
          Some g.value
        | _ -> None)
      snap
  in
  Alcotest.(check (option (float 0.))) "latest incumbent objective"
    (Some 40.) incumbent_gauge;
  let phase_series =
    List.filter_map
      (function
        | R.Snapshot.Histogram h when h.name = "rfloor_phase_seconds" ->
          List.assoc_opt "phase" h.labels
        | _ -> None)
      snap
  in
  Alcotest.(check (list string))
    "per-phase wall-time series" [ "build"; "root_lp" ]
    (List.sort compare phase_series);
  (* a dead registry must hand back the null sink *)
  Alcotest.(check bool) "null registry folds to null sink" true
    (T.Sink.is_null (Rfloor_metrics.Trace_sink.sink R.null))

(* ---- solver integration: direct instrumentation ---- *)

let test_solver_populates_metrics () =
  let part = Device.Partition.columnar_exn Device.Devices.mini in
  let spec =
    Device.Spec.make ~name:"metrics-toy"
      [
        { Device.Spec.r_name = "R1"; demand = [ (Device.Resource.Clb, 2) ] };
        { Device.Spec.r_name = "R2"; demand = [ (Device.Resource.Dsp, 1) ] };
      ]
  in
  let metrics = R.create () in
  let options =
    Rfloor.Solver.Options.make ~time_limit:10. ~metrics ()
  in
  let o = Rfloor.Solver.solve ~options part spec in
  Alcotest.(check bool) "solved" true (o.Rfloor.Solver.status = Rfloor.Solver.Optimal);
  let snap = R.snapshot metrics in
  let hist_count name =
    List.fold_left
      (fun acc -> function
        | R.Snapshot.Histogram h when h.name = name -> acc + h.count
        | _ -> acc)
      0 snap
  in
  Alcotest.(check bool) "lp time histogram populated" true
    (hist_count "rfloor_lp_solve_seconds" > 0);
  Alcotest.(check bool) "simplex pivots histogram populated" true
    (hist_count "rfloor_simplex_iterations_per_lp" > 0);
  (* the trace fold ran too: phases were recorded *)
  Alcotest.(check bool) "phase series populated" true
    (List.exists
       (function
         | R.Snapshot.Histogram h -> h.name = "rfloor_phase_seconds"
         | _ -> false)
       snap);
  (* the export of a real solve must self-validate *)
  match R.validate_json (R.to_json snap) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "solver snapshot invalid: %s" e

(* ---- bench artifacts ---- *)

let entry ?(status = "optimal") ?(objective = Some 4.) ?(wasted = Some 4.)
    ?(nodes = 100) ?(elapsed = 1.0) name =
  {
    A.e_instance = name;
    e_status = status;
    e_objective = objective;
    e_wasted = wasted;
    e_nodes = nodes;
    e_simplex_iterations = 10 * nodes;
    e_elapsed = elapsed;
    e_report = None;
    e_metrics = None;
  }

let artifact ?(label = "test") entries =
  {
    A.a_label = label;
    a_created = 1700000000.;
    a_git_rev = "deadbee";
    a_workers = 1;
    a_budget = 30.;
    a_entries = entries;
  }

let test_artifact_roundtrip () =
  let reg = R.create () in
  R.Counter.incr (R.counter reg "c_total");
  let a =
    artifact
      [
        {
          (entry "i1") with
          A.e_metrics = Some (R.to_json_value (R.snapshot reg));
        };
        entry ~status:"feasible" ~objective:None "i2";
      ]
  in
  let text = A.to_string a in
  check_sub "schema tag" "\"schema\":\"rfloor-bench/1\"" text;
  (match A.validate text with
  | Ok n -> Alcotest.(check int) "2 entries" 2 n
  | Error e -> Alcotest.failf "artifact rejected: %s" e);
  match A.of_string text with
  | Error e -> Alcotest.failf "of_string failed: %s" e
  | Ok a' ->
    Alcotest.(check string) "label" a.A.a_label a'.A.a_label;
    Alcotest.(check string) "rev" a.A.a_git_rev a'.A.a_git_rev;
    Alcotest.(check int) "entries" 2 (List.length a'.A.a_entries);
    (* round-trip is lossless: serialize again, compare, and the diff
       gate sees no change *)
    Alcotest.(check string) "canonical serialization" text (A.to_string a');
    Alcotest.(check int) "self-compare clean" 0
      (List.length (A.compare ~old_:a a'))

let test_artifact_regressions () =
  let old_ = artifact [ entry ~elapsed:1.0 "i1"; entry "i2" ] in
  (* identical artifacts: gate passes *)
  Alcotest.(check int) "identical clean" 0 (List.length (A.compare ~old_ old_));
  (* injected 3x slowdown on i1: flagged under the default 1.5x *)
  let slow = artifact [ entry ~elapsed:3.0 "i1"; entry "i2" ] in
  (match A.compare ~old_ slow with
  | [ r ] -> check_sub "names instance" "i1" r
  | rs -> Alcotest.failf "expected 1 slowdown, got %d" (List.length rs));
  (* ...but passes under a permissive threshold *)
  Alcotest.(check int) "threshold respected" 0
    (List.length
       (A.compare
          ~thresholds:{ A.default_thresholds with A.max_slowdown = 4.0 }
          ~old_ slow));
  (* sub-noise-floor slowdowns are ignored even at 10x *)
  let fast_old = artifact [ entry ~elapsed:0.001 "i1" ] in
  let fast_new = artifact [ entry ~elapsed:0.01 "i1" ] in
  Alcotest.(check int) "noise floor" 0
    (List.length (A.compare ~old_:fast_old fast_new));
  (* status drop, quality loss, node blowup, missing instance *)
  let worse =
    artifact
      [
        entry ~status:"feasible" ~elapsed:1.0 "i1";
        entry ~wasted:(Some 9.) ~objective:(Some 9.) "i2";
      ]
  in
  let rs = A.compare ~old_ worse in
  Alcotest.(check bool) "status drop flagged" true
    (List.exists (has_sub "i1") rs);
  Alcotest.(check bool) "quality loss flagged" true
    (List.exists (has_sub "i2") rs);
  (match A.compare ~old_ (artifact [ entry ~nodes:1000 "i1"; entry "i2" ]) with
  | [ r ] -> check_sub "node blowup" "i1" r
  | rs -> Alcotest.failf "expected 1 node regression, got %d" (List.length rs));
  match A.compare ~old_ (artifact [ entry "i1" ]) with
  | [ r ] -> check_sub "missing instance" "i2" r
  | rs -> Alcotest.failf "expected 1 missing, got %d" (List.length rs)

let test_artifact_validate_rejects () =
  let reject label doc =
    match A.validate doc with
    | Ok _ -> Alcotest.failf "%s accepted" label
    | Error _ -> ()
  in
  reject "not json" "nope";
  reject "wrong schema" {|{"schema":"rfloor-bench/999"}|};
  reject "missing entries"
    {|{"schema":"rfloor-bench/1","label":"x","created":0,"git_rev":"r","workers":1,"budget":1}|};
  reject "bad status"
    {|{"schema":"rfloor-bench/1","label":"x","created":0,"git_rev":"r","workers":1,"budget":1,"entries":[{"instance":"i","status":"great","nodes":0,"simplex_iterations":0,"elapsed":0}]}|};
  reject "bad embedded metrics"
    {|{"schema":"rfloor-bench/1","label":"x","created":0,"git_rev":"r","workers":1,"budget":1,"entries":[{"instance":"i","status":"optimal","nodes":0,"simplex_iterations":0,"elapsed":0,"metrics":{"schema":"rfloor-metrics/999","metrics":[]}}]}|}

let suites =
  [
    ( "metrics",
      [
        Alcotest.test_case "instrument basics" `Quick test_instruments;
        Alcotest.test_case "null registry no-ops" `Quick test_null_registry;
        Alcotest.test_case "idempotent registration, kind safety" `Quick
          test_idempotent_registration;
        Alcotest.test_case "updates exact under 4 domains" `Quick
          test_concurrent_updates;
        Alcotest.test_case "prometheus exposition shape" `Quick
          test_prometheus_text;
        Alcotest.test_case "json export validates, tampering rejected" `Quick
          test_json_validate;
        Alcotest.test_case "trace events fold into aggregates" `Quick
          test_trace_sink_fold;
        Alcotest.test_case "solver populates lp/pivot histograms" `Quick
          test_solver_populates_metrics;
      ] );
    ( "bench-artifact",
      [
        Alcotest.test_case "round trip and self-compare" `Quick
          test_artifact_roundtrip;
        Alcotest.test_case "regression gate: slowdown, status, nodes" `Quick
          test_artifact_regressions;
        Alcotest.test_case "schema rejection" `Quick
          test_artifact_validate_rejects;
      ] );
  ]
