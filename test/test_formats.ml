(* Round-trip and fuzz tests for the LP and MPS serializers.

   write -> parse -> write must reach a textual fixpoint (the second and
   third generations are byte-identical), parsing must preserve the
   optimum, and malformed inputs — truncated rows, duplicate names, bad
   bounds, unsupported sections — must come back as [Error _], never as
   an exception. *)

open Milp
module G = Generators
module Bb = Branch_bound

(* [Mps.parse] reports structured diagnostics; render them to strings so
   the helpers below stay generic over both parsers. *)
let mps_parse s =
  Result.map_error
    (Format.asprintf "%a" Rfloor_diag.Diagnostic.pp)
    (Mps.parse s)

let fixpoint ~fmt ~to_string ~parse seed lp =
  let s1 = to_string lp in
  match parse s1 with
  | Error m ->
    Alcotest.failf "seed %d: %s parser rejected its own writer output: %s@.%s" seed fmt
      m s1
  | Ok lp2 -> (
    if Lp.num_vars lp2 <> Lp.num_vars lp || Lp.num_constrs lp2 <> Lp.num_constrs lp
    then
      Alcotest.failf "seed %d: %s round trip changed shape: %d -> %d vars, %d -> %d rows"
        seed fmt (Lp.num_vars lp) (Lp.num_vars lp2) (Lp.num_constrs lp)
        (Lp.num_constrs lp2);
    let s2 = to_string lp2 in
    match parse s2 with
    | Error m ->
      Alcotest.failf "seed %d: %s parser rejected second-generation output: %s" seed fmt m
    | Ok lp3 ->
      let s3 = to_string lp3 in
      if s2 <> s3 then
        Alcotest.failf
          "seed %d: %s write/parse is not a fixpoint@.--- second ---@.%s@.--- third ---@.%s"
          seed fmt s2 s3)

let test_lp_fixpoint () =
  let base = G.base_seed () in
  for i = 0 to 99 do
    let seed = G.case_seed base (5_000 + i) in
    fixpoint ~fmt:"LP" ~to_string:Lp_format.to_string ~parse:Lp_format.parse seed
      (G.milp_case ~seed).G.c_lp
  done

let test_mps_fixpoint () =
  let base = G.base_seed () in
  for i = 0 to 99 do
    let seed = G.case_seed base (6_000 + i) in
    fixpoint ~fmt:"MPS" ~to_string:Mps.to_string ~parse:mps_parse seed
      (G.milp_case ~seed).G.c_lp
  done

(* Solving the parsed model must give the same status and objective as
   solving the source model. *)
let preserves_optimum ~fmt ~to_string ~parse seed lp =
  let r1 = Bb.solve lp in
  match parse (to_string lp) with
  | Error m -> Alcotest.failf "seed %d: %s parse failed: %s" seed fmt m
  | Ok lp2 -> (
    let r2 = Bb.solve lp2 in
    if r1.Bb.status <> r2.Bb.status then
      Alcotest.failf "seed %d: %s round trip changed solver status" seed fmt;
    match (r1.Bb.incumbent, r2.Bb.incumbent) with
    | Some (a, _), Some (b, _) ->
      if Float.abs (a -. b) > 1e-4 then
        Alcotest.failf "seed %d: %s round trip changed optimum: %.6f vs %.6f" seed fmt a
          b
    | None, None -> ()
    | _ -> Alcotest.failf "seed %d: %s round trip changed incumbent presence" seed fmt)

let test_mps_preserves_optimum () =
  let base = G.base_seed () in
  for i = 0 to 39 do
    let seed = G.case_seed base (7_000 + i) in
    preserves_optimum ~fmt:"MPS" ~to_string:Mps.to_string ~parse:mps_parse seed
      (G.milp_case ~seed).G.c_lp
  done

let test_mps_objective_constant () =
  let lp = Lp.create ~name:"const_rt" () in
  let x = Lp.add_var lp ~name:"x" ~ub:4. ~kind:Lp.Integer () in
  Lp.add_constr lp ~name:"r" [ (1., x) ] Lp.Ge 1.;
  Lp.set_objective lp Lp.Minimize ~constant:2.5 [ (3., x) ];
  match mps_parse (Mps.to_string lp) with
  | Error m -> Alcotest.failf "objective-constant round trip failed: %s" m
  | Ok lp2 ->
    Alcotest.(check (float 1e-9))
      "objective constant survives the RHS-obj convention" 2.5
      (Lp.objective_constant lp2);
    Alcotest.(check bool) "direction" true (Lp.objective_dir lp2 = Lp.Minimize)

(* ------------------------------------------------------------------ *)
(* Malformed inputs: each case must return [Error _] without raising. *)

let malformed_lp =
  [
    ("empty input", "");
    ("no objective keyword", "hello world\n");
    ("truncated row", "Minimize\n obj: x\nSubject To\n c1: x +\nEnd\n");
    ("non-numeric rhs", "Minimize\n obj: x\nSubject To\n r: x <= twelve\nEnd\n");
    ("dangling bound", "Minimize\n obj: x\nSubject To\n r: x >= 1\nBounds\n x <=\nEnd\n");
  ]

let malformed_mps =
  [
    ("empty input", "");
    ( "data before any section",
      "NAME t\n x obj 1\nENDATA\n" );
    ( "duplicate row name",
      "NAME t\nROWS\n N obj\n L c1\n L c1\nCOLUMNS\n x c1 1\nENDATA\n" );
    ( "multiple objective rows",
      "NAME t\nROWS\n N obj\n N obj2\nCOLUMNS\n x obj 1\nENDATA\n" );
    ( "truncated column pair",
      "NAME t\nROWS\n N obj\n L c1\nCOLUMNS\n x obj\nENDATA\n" );
    ( "undeclared row in COLUMNS",
      "NAME t\nROWS\n N obj\n L c1\nCOLUMNS\n x c9 1\nENDATA\n" );
    ( "non-numeric coefficient",
      "NAME t\nROWS\n N obj\n L c1\nCOLUMNS\n x c1 abc\nENDATA\n" );
    ( "undeclared row in RHS",
      "NAME t\nROWS\n N obj\n L c1\nCOLUMNS\n x c1 1\nRHS\n RHS c9 3\nENDATA\n" );
    ( "undeclared column in BOUNDS",
      "NAME t\nROWS\n N obj\n L c1\nCOLUMNS\n x c1 1\nBOUNDS\n UP BND zzz 5\nENDATA\n" );
    ( "bad bound type",
      "NAME t\nROWS\n N obj\n L c1\nCOLUMNS\n x c1 1\nBOUNDS\n XX BND x 1\nENDATA\n" );
    ( "crossed bounds",
      "NAME t\nROWS\n N obj\n L c1\nCOLUMNS\n x c1 1\nBOUNDS\n LO BND x 5\n UP BND x 2\nENDATA\n"
    );
    ( "column redeclared across integrality markers",
      "NAME t\nROWS\n N obj\n L c1\nCOLUMNS\n x c1 1\n MARKER 'MARKER' 'INTORG'\n x obj 2\n MARKER 'MARKER' 'INTEND'\nENDATA\n"
    );
    ( "RANGES unsupported",
      "NAME t\nROWS\n N obj\n L c1\nCOLUMNS\n x c1 1\nRANGES\n RNG c1 2\nENDATA\n" );
    ( "bad row sense",
      "NAME t\nROWS\n N obj\n Q c1\nCOLUMNS\n x c1 1\nENDATA\n" );
    ( "bad OBJSENSE", "NAME t\nOBJSENSE FOO\nROWS\n N obj\nENDATA\n" );
  ]

let check_malformed ~fmt parse cases () =
  List.iter
    (fun (label, text) ->
      match (try Ok (parse text) with e -> Error (Printexc.to_string e)) with
      | Ok (Error _) -> ()
      | Ok (Ok _) -> Alcotest.failf "%s: %S was accepted" fmt label
      | Error exn ->
        Alcotest.failf "%s: %S raised %s instead of returning Error" fmt label exn)
    cases

let suites =
  [
    ( "formats",
      [
        Alcotest.test_case "LP write/parse fixpoint on 100 random models" `Quick
          test_lp_fixpoint;
        Alcotest.test_case "MPS write/parse fixpoint on 100 random models" `Quick
          test_mps_fixpoint;
        Alcotest.test_case "MPS round trip preserves the optimum" `Quick
          test_mps_preserves_optimum;
        Alcotest.test_case "MPS objective constant round trip" `Quick
          test_mps_objective_constant;
        Alcotest.test_case "malformed LP inputs error cleanly" `Quick
          (check_malformed ~fmt:"LP" Lp_format.parse malformed_lp);
        Alcotest.test_case "malformed MPS inputs error cleanly" `Quick
          (check_malformed ~fmt:"MPS" Mps.parse malformed_mps);
      ] );
  ]
