(* Tests for the MILP floorplanner: Figure 3 semantics, model/encode
   consistency, cross-checks against the combinatorial engine,
   relocation as constraint and as metric, HO mode, ablations. *)

open Device

let mini_part = lazy (Partition.columnar_exn Devices.mini)

let quick_solver_opts =
  {
    Rfloor.Solver.default_options with
    time_limit = Some 60.;
  }

let toy_spec =
  Spec.make ~name:"toy"
    ~nets:(Spec.chain_nets ~weight:1. [ "R1"; "R2" ])
    ~relocs:[ { Spec.target = "R1"; copies = 1; mode = Spec.Hard } ]
    [
      { Spec.r_name = "R1"; demand = [ (Resource.Clb, 2); (Resource.Bram, 1) ] };
      { Spec.r_name = "R2"; demand = [ (Resource.Clb, 2); (Resource.Dsp, 1) ] };
    ]

let test_fig3_indicators () =
  let part = Partition.columnar_exn Devices.fig3 in
  let spec =
    Spec.make ~name:"fig3" [ { Spec.r_name = "n"; demand = [ (Resource.Clb, 1) ] } ]
  in
  let model = Rfloor.Model.build part spec in
  let plan =
    Floorplan.make [ { Floorplan.p_region = "n"; p_rect = Devices.fig3_region } ] []
  in
  let x = Rfloor.Model.encode model plan in
  (match Milp.Lp.validate (Rfloor.Model.lp model) x with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let ind = Rfloor.Model.portion_indicators model "n" x in
  let k = Array.map (fun (k, _) -> int_of_float k) ind in
  let o = Array.map (fun (_, o) -> int_of_float o) ind in
  Alcotest.(check (array int)) "k as in figure 3" [| 0; 1; 1; 1; 0 |] k;
  Alcotest.(check (array int)) "o as in figure 3" [| 0; 1; 0; 0; 0 |] o

let test_model_shape () =
  let part = Lazy.force mini_part in
  let model = Rfloor.Model.build part toy_spec in
  let lp = Rfloor.Model.lp model in
  Alcotest.(check bool) "has vars" true (Milp.Lp.num_vars lp > 100);
  Alcotest.(check bool) "has integer vars" true (Milp.Lp.num_integer_vars lp > 20);
  Alcotest.(check (list string)) "entities"
    [ "R1"; "R2"; "R1/1" ]
    (Rfloor.Model.entity_names model)

(* The central model-correctness property: every valid floorplan found
   by the independent combinatorial engine encodes into a feasible MILP
   assignment, and decoding recovers the same floorplan. *)
let prop_encode_decode_roundtrip =
  QCheck2.Test.make ~name:"valid plans encode feasibly and decode back" ~count:25
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng ->
         let g = Devices.random ~max_width:8 ~max_height:4 rng in
         let with_fc = Random.State.bool rng in
         let spec =
           Spec.make ~name:"rand"
             ~nets:(Spec.chain_nets [ "R0"; "R1" ])
             ~relocs:
               (if with_fc then
                  [ { Spec.target = "R1"; copies = 1; mode = Spec.Hard } ]
                else [])
             [
               { Spec.r_name = "R0"; demand = [ (Resource.Clb, 2) ] };
               { Spec.r_name = "R1"; demand = [ (Resource.Clb, 1) ] };
             ]
         in
         (Partition.columnar_exn g, spec))
       ~shrink:(fun _ -> Seq.empty))
    (fun (part, spec) ->
      let r = Search.Engine.solve part spec in
      match r.Search.Engine.plan with
      | None -> true
      | Some plan -> (
        let model = Rfloor.Model.build part spec in
        let x = Rfloor.Model.encode model plan in
        match Milp.Lp.validate ~eps:1e-6 (Rfloor.Model.lp model) x with
        | Error _ -> false
        | Ok () ->
          let plan' = Rfloor.Model.decode model x in
          Floorplan.is_valid part spec plan'
          && Floorplan.wasted_frames part spec plan'
             = Floorplan.wasted_frames part spec plan))

let test_milp_matches_search_on_toy () =
  let part = Lazy.force mini_part in
  let s =
    Search.Engine.solve
      ~options:{ Search.Engine.default_options with optimize_wirelength = false }
      part toy_spec
  in
  let m = Rfloor.Solver.solve ~options:quick_solver_opts part toy_spec in
  (match m.Rfloor.Solver.plan with
  | Some plan ->
    Alcotest.(check bool) "milp plan valid" true
      (Floorplan.is_valid part toy_spec plan)
  | None -> Alcotest.fail "milp found no plan");
  Alcotest.(check (option int)) "equal wasted frames" s.Search.Engine.wasted
    m.Rfloor.Solver.wasted

let test_milp_proves_infeasible () =
  let part = Lazy.force mini_part in
  (* mini has a single DSP column of height 4: two DSP-hungry regions of
     height 3 cannot coexist *)
  let spec =
    Spec.make ~name:"inf"
      [
        { Spec.r_name = "A"; demand = [ (Resource.Dsp, 3) ] };
        { Spec.r_name = "B"; demand = [ (Resource.Dsp, 3) ] };
      ]
  in
  let m =
    Rfloor.Solver.solve
      ~options:{ quick_solver_opts with objective_mode = Rfloor.Solver.Feasibility_only }
      part spec
  in
  Alcotest.(check bool) "infeasible" true
    (m.Rfloor.Solver.status = Rfloor.Solver.Infeasible)

let test_relocation_as_metric () =
  let part = Lazy.force mini_part in
  (* one soft copy that fits: must be identified (v = 0) *)
  let spec_ok =
    Spec.with_relocs toy_spec
      [ { Spec.target = "R1"; copies = 1; mode = Spec.Soft 1. } ]
  in
  let m =
    Rfloor.Solver.solve
      ~options:
        {
          quick_solver_opts with
          objective_mode = Rfloor.Solver.Weighted Rfloor.Objective.default_weights;
        }
      part spec_ok
  in
  Alcotest.(check int) "soft area identified" 1 m.Rfloor.Solver.fc_identified;
  (* an impossible soft copy must not destroy feasibility *)
  let spec_impossible =
    Spec.make ~name:"imp"
      ~relocs:[ { Spec.target = "A"; copies = 1; mode = Spec.Soft 1. } ]
      [ { Spec.r_name = "A"; demand = [ (Resource.Dsp, 3) ] } ]
  in
  let m2 =
    Rfloor.Solver.solve
      ~options:
        {
          quick_solver_opts with
          objective_mode = Rfloor.Solver.Weighted Rfloor.Objective.default_weights;
        }
      part spec_impossible
  in
  (match m2.Rfloor.Solver.plan with
  | Some plan ->
    Alcotest.(check bool) "region placed" true
      (Floorplan.rect_of plan "A" <> None);
    Alcotest.(check int) "no area identified" 0 m2.Rfloor.Solver.fc_identified
  | None -> Alcotest.fail "soft relocation must keep the problem feasible")

let test_ho_mode () =
  let part = Lazy.force mini_part in
  let seed =
    (Search.Engine.solve part toy_spec).Search.Engine.plan |> Option.get
  in
  let m =
    Rfloor.Solver.solve
      ~options:
        {
          quick_solver_opts with
          strategy =
            Rfloor.Solver.Strategy.milp ~engine:(Rfloor.Solver.Ho (Some seed)) ();
        }
      part toy_spec
  in
  match m.Rfloor.Solver.plan with
  | Some plan ->
    Alcotest.(check bool) "ho plan valid" true (Floorplan.is_valid part toy_spec plan);
    Alcotest.(check (option int)) "ho reaches seed cost or better"
      (Some (Floorplan.wasted_frames part toy_spec seed))
      (Option.map
         (fun w -> max w (Floorplan.wasted_frames part toy_spec seed))
         m.Rfloor.Solver.wasted)
  | None -> Alcotest.fail "HO found no plan"

let test_ho_relations_cover_fc_areas () =
  let part = Lazy.force mini_part in
  let seed =
    (Search.Engine.solve part toy_spec).Search.Engine.plan |> Option.get
  in
  let rels = Rfloor.Ho.relations toy_spec seed in
  (* 3 entities (R1, R2, R1/1) -> 3 pairs *)
  Alcotest.(check int) "pair count" 3 (List.length rels);
  Alcotest.(check bool) "mentions the free-compatible area" true
    (List.exists (fun ((a, b), _) -> a = "R1/1" || b = "R1/1") rels)

let test_paper_literal_mode_builds_and_solves () =
  (* Ablation (DESIGN.md section 5): with only the paper's upper bounds
     on l(n,p,r), Eq. 9 compares under-constrained quantities, so the
     decoded free-compatible areas are NOT guaranteed compatible; the
     regions themselves must still be placed, disjoint and covered. *)
  let part = Lazy.force mini_part in
  let m =
    Rfloor.Solver.solve
      ~options:{ quick_solver_opts with paper_literal_l = true }
      part toy_spec
  in
  match m.Rfloor.Solver.plan with
  | Some plan ->
    let region_errors =
      match Floorplan.validate part toy_spec plan with
      | Ok () -> []
      | Error es ->
        List.filter
          (fun e ->
            (* tolerate only compatibility violations: they are the
               documented unsoundness of the literal bounds *)
            not
              (String.length e > 4
              && String.sub e 0 4 = "area"))
          es
    in
    Alcotest.(check (list string)) "regions geometrically valid" [] region_errors
  | None -> Alcotest.fail "literal mode found no plan"

let test_export_lp_parses_back () =
  let part = Lazy.force mini_part in
  let text = Rfloor.Solver.export_lp part toy_spec in
  match Milp.Lp_format.parse text with
  | Ok lp ->
    let model = Rfloor.Model.build part toy_spec in
    let n = Milp.Lp.num_vars (Rfloor.Model.lp model) in
    (* the writer adds a CONST_ONE carrier variable when the objective
       has a nonzero constant *)
    Alcotest.(check bool) "variables preserved" true
      (Milp.Lp.num_vars lp = n || Milp.Lp.num_vars lp = n + 1)
  | Error e -> Alcotest.fail ("LP export does not parse: " ^ e)

let test_objective_normalizers () =
  let part = Lazy.force mini_part in
  Alcotest.(check bool) "wlmax positive" true (Rfloor.Objective.wl_max part toy_spec > 0.);
  Alcotest.(check bool) "rmax positive" true (Rfloor.Objective.resources_max part > 0.);
  let soft =
    Spec.with_relocs toy_spec
      [ { Spec.target = "R1"; copies = 2; mode = Spec.Soft 3. } ]
  in
  Alcotest.(check (float 1e-9)) "rlmax = sum of weights (Eq. 15)" 6.
    (Rfloor.Objective.relocation_max soft)

let test_weighted_objective_counts_violations () =
  let part = Lazy.force mini_part in
  let spec =
    Spec.make ~name:"w"
      ~relocs:[ { Spec.target = "A"; copies = 1; mode = Spec.Soft 2. } ]
      [ { Spec.r_name = "A"; demand = [ (Resource.Clb, 1) ] } ]
  in
  let model =
    Rfloor.Model.build
      ~options:
        {
          Rfloor.Model.default_options with
          objective = Rfloor.Model.Weighted Rfloor.Objective.default_weights;
        }
      part spec
  in
  Alcotest.(check int) "one violation term" 1
    (List.length (Rfloor.Model.violation_terms model))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "rfloor.model",
      [
        Alcotest.test_case "figure 3 indicators" `Quick test_fig3_indicators;
        Alcotest.test_case "model shape" `Quick test_model_shape;
        Alcotest.test_case "objective normalizers" `Quick test_objective_normalizers;
        Alcotest.test_case "violation terms" `Quick
          test_weighted_objective_counts_violations;
        Alcotest.test_case "LP export parses back" `Quick test_export_lp_parses_back;
      ]
      @ qsuite [ prop_encode_decode_roundtrip ] );
    ( "rfloor.solver",
      [
        Alcotest.test_case "matches search on toy" `Slow test_milp_matches_search_on_toy;
        Alcotest.test_case "proves infeasibility" `Quick test_milp_proves_infeasible;
        Alcotest.test_case "relocation as metric" `Slow test_relocation_as_metric;
        Alcotest.test_case "HO mode" `Slow test_ho_mode;
        Alcotest.test_case "HO relations include areas" `Quick
          test_ho_relations_cover_fc_areas;
        Alcotest.test_case "paper-literal mode" `Slow
          test_paper_literal_mode_builds_and_solves;
      ] );
  ]
