(* Strategy API, relocation-symmetry/packing cuts and the racing
   portfolio.

   The two differential suites follow the repo's seed discipline: every
   failure message leads with the case seed so any report is a complete
   reproducer (test/generators.ml derives an independent stream per
   case from RFLOOR_TEST_SEED). *)

module G = Generators
module Strategy = Rfloor.Solver.Strategy
module Bb = Milp.Branch_bound

(* ------------------------------------------------------------------ *)
(* Strategy round-trips and parse errors *)

let roundtrip_cases =
  [
    Strategy.milp ();
    Strategy.milp ~workers:4 ();
    Strategy.milp ~engine:(Rfloor.Solver.Ho None) ();
    Strategy.milp ~workers:2 ~engine:(Rfloor.Solver.Ho None) ();
    Strategy.milp ~time_limit:2.5 ();
    Strategy.combinatorial ();
    Strategy.combinatorial ~time_limit:10. ();
    Strategy.lns ();
    Strategy.lns ~seed:42 ();
    Strategy.portfolio [ Strategy.milp ~workers:2 (); Strategy.combinatorial () ];
    Strategy.portfolio
      [ Strategy.milp ~time_limit:5. (); Strategy.lns ~seed:7 ~time_limit:3. () ];
  ]

let test_strategy_roundtrip () =
  List.iter
    (fun s ->
      let text = Strategy.to_string s in
      match Strategy.of_string text with
      | Ok s' ->
        Alcotest.(check string)
          (Printf.sprintf "round-trip of %s" text)
          text (Strategy.to_string s')
      | Error d ->
        Alcotest.failf "%s failed to re-parse: %s" text
          (Format.asprintf "%a" Rfloor_diag.Diagnostic.pp d))
    roundtrip_cases

let test_strategy_parse_errors () =
  List.iter
    (fun text ->
      match Strategy.of_string text with
      | Ok s ->
        Alcotest.failf "%S unexpectedly parsed as %s" text (Strategy.to_string s)
      | Error d ->
        Alcotest.(check string) (text ^ " carries RF502") "RF502"
          d.Rfloor_diag.Diagnostic.code)
    [ ""; "bogus"; "milp:"; "milp:x"; "lns:abc"; "portfolio:[]"; "milp@x";
      "portfolio:[milp,nonsense]" ]

let test_strategy_sugar_equivalence () =
  (* Options.make's deprecated keywords build the same strategy as the
     explicit spelling. *)
  let a =
    (Rfloor.Solver.Options.make ~workers:3 ~engine:(Rfloor.Solver.Ho None) ())
      .Rfloor.Solver.strategy
  in
  let b = Strategy.milp ~workers:3 ~engine:(Rfloor.Solver.Ho None) () in
  Alcotest.(check string) "deprecated keywords = Strategy.milp"
    (Strategy.to_string b) (Strategy.to_string a)

(* ------------------------------------------------------------------ *)
(* RF501: member budget clamped to the portfolio's global deadline *)

let toy_part = lazy (Device.Partition.columnar_exn Device.Devices.mini)

let toy_spec =
  lazy
    (Device.Spec.make ~name:"portfolio-toy"
       [
         { Device.Spec.r_name = "R1"; demand = [ (Device.Resource.Clb, 2) ] };
         { Device.Spec.r_name = "R2"; demand = [ (Device.Resource.Dsp, 1) ] };
       ])

let test_rf501_budget_clamp () =
  let options =
    Rfloor.Solver.Options.make
      ~strategy:
        (Strategy.portfolio
           [ Strategy.combinatorial ~time_limit:9999. (); Strategy.lns () ])
      ~time_limit:30. ()
  in
  let o = Rfloor.Solver.solve ~options (Lazy.force toy_part) (Lazy.force toy_spec) in
  Alcotest.(check bool) "RF501 warning attached" true
    (List.exists
       (fun d -> d.Rfloor_diag.Diagnostic.code = "RF501")
       o.Rfloor.Solver.diagnostics);
  Alcotest.(check bool) "still solves" true (o.Rfloor.Solver.plan <> None)

(* ------------------------------------------------------------------ *)
(* Cuts differential: the symmetry/packing families never change the
   stage-1 optimum.  Both sides of each case get the same generous node
   budget; cases where either side fails to prove optimality are
   skipped (counted), the rest must agree exactly.  RFLOOR_CUTS_DIFF
   scales the instance count (default 200). *)

let solve_stage1 ~cuts part spec =
  let model =
    Rfloor.Model.build
      ~options:
        {
          Rfloor.Model.objective = Rfloor.Model.Wasted_frames_only;
          paper_literal_l = false;
          pair_relations = [];
          extra_waste_cap = None;
          cuts;
        }
      part spec
  in
  Bb.solve
    ~options:
      {
        Bb.default_options with
        time_limit = Some 1.;
        node_limit = Some 800;
        priorities = Some (Rfloor.Model.branching_priorities model);
      }
    (Rfloor.Model.lp model)

let cuts_diff_count () =
  match Sys.getenv_opt "RFLOOR_CUTS_DIFF" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> 200)
  | None -> 200

let test_cuts_differential () =
  let base = G.base_seed () in
  let count = cuts_diff_count () in
  let compared = ref 0 in
  for i = 0 to count - 1 do
    let seed = G.case_seed base (7_000 + i) in
    let prng = G.Prng.make seed in
    let part = G.random_partition prng in
    let spec = G.random_reloc_spec prng part in
    let on = solve_stage1 ~cuts:true part spec in
    let off = solve_stage1 ~cuts:false part spec in
    match (on.Bb.status, off.Bb.status) with
    | Bb.Optimal, Bb.Optimal ->
      incr compared;
      let obj r =
        match r.Bb.incumbent with Some (v, _) -> v | None -> nan
      in
      if abs_float (obj on -. obj off) > 1e-6 then
        Alcotest.failf
          "seed %d: cuts changed the stage-1 optimum (%.6f with vs %.6f without)"
          seed (obj on) (obj off)
    | Bb.Infeasible, Bb.Infeasible -> incr compared
    | (Bb.Optimal | Bb.Infeasible), (Bb.Optimal | Bb.Infeasible) ->
      Alcotest.failf "seed %d: cuts flipped the verdict" seed
    | _ -> () (* budget-bound on either side: not comparable *)
  done;
  (* vacuity guard: with the 1 s / 800-node per-side budget roughly
     half the random instances prove out; require at least 2/5 *)
  Alcotest.(check bool)
    (Printf.sprintf "enough conclusive pairs (%d of %d)" !compared count)
    true (!compared >= count * 2 / 5)

(* ------------------------------------------------------------------ *)
(* Portfolio vs sequential differential: racing never changes a proved
   answer.  Conclusive results (Optimal / Infeasible) must agree with a
   plain sequential milp run on wasted frames. *)

let quick_options strategy =
  Rfloor.Solver.Options.make ~strategy ~time_limit:10. ()

let member_sets =
  [
    ("milp", [ Strategy.milp () ]);
    ("milp+comb", [ Strategy.milp (); Strategy.combinatorial () ]);
    ("milp+lns", [ Strategy.milp (); Strategy.lns ~seed:5 () ]);
  ]

let test_portfolio_vs_sequential () =
  let base = G.base_seed () in
  List.iteri
    (fun set_i (set_name, members) ->
      for i = 0 to 9 do
        let seed = G.case_seed base (8_000 + (100 * set_i) + i) in
        let prng = G.Prng.make seed in
        let part = G.random_partition prng in
        let spec = G.random_reloc_spec prng part in
        let seq =
          Rfloor.Solver.solve ~options:(quick_options (Strategy.milp ())) part spec
        in
        let por =
          Rfloor.Solver.solve
            ~options:(quick_options (Strategy.portfolio members))
            part spec
        in
        let conclusive (o : Rfloor.Solver.outcome) =
          o.Rfloor.Solver.status = Rfloor.Solver.Optimal
          || o.Rfloor.Solver.status = Rfloor.Solver.Infeasible
        in
        if conclusive seq && conclusive por then begin
          (match (seq.Rfloor.Solver.status, por.Rfloor.Solver.status) with
          | Rfloor.Solver.Infeasible, Rfloor.Solver.Infeasible -> ()
          | Rfloor.Solver.Optimal, Rfloor.Solver.Optimal ->
            if seq.Rfloor.Solver.wasted <> por.Rfloor.Solver.wasted then
              Alcotest.failf
                "seed %d [%s]: portfolio wasted %s, sequential wasted %s" seed
                set_name
                (match por.Rfloor.Solver.wasted with
                | Some w -> string_of_int w
                | None -> "-")
                (match seq.Rfloor.Solver.wasted with
                | Some w -> string_of_int w
                | None -> "-")
          | _ ->
            Alcotest.failf "seed %d [%s]: portfolio flipped the verdict" seed
              set_name)
        end
      done)
    member_sets

(* ------------------------------------------------------------------ *)
(* Cancellation: racing losers observe the cooperative stop. *)

let test_race_loser_observes_cancel () =
  let observed = Rfloor_sync.Atomic.make ~name:"test.observed" false in
  let members =
    [
      {
        Rfloor_portfolio.m_label = "loser";
        m_run =
          (fun ~cancelled ->
            (* spin until the winner's stop propagates *)
            while not (cancelled ()) do
              ()
            done;
            Rfloor_sync.Atomic.set observed true;
            "cancelled");
      };
      { Rfloor_portfolio.m_label = "winner"; m_run = (fun ~cancelled:_ -> "win") };
    ]
  in
  let completions, winner =
    Rfloor_portfolio.race ~conclusive:(fun r -> r = "win") members
  in
  Alcotest.(check (option int)) "winner is member 1" (Some 1) winner;
  Alcotest.(check bool) "loser saw the cancel" true
    (Rfloor_sync.Atomic.get observed);
  let loser = List.find (fun c -> c.Rfloor_portfolio.c_index = 0) completions in
  (match loser.Rfloor_portfolio.c_result with
  | Ok "cancelled" -> ()
  | Ok other -> Alcotest.failf "loser returned %S" other
  | Error e -> Alcotest.failf "loser raised %s" (Printexc.to_string e));
  Alcotest.(check bool) "loser did not win" false loser.Rfloor_portfolio.c_winner

let test_portfolio_losers_stopped_in_trace () =
  (* Integration: combinatorial wins instantly on the toy; the losing
     lns member must surface as a Stopped "cancel" event on the
     caller's sink and in rfloor_stops_total. *)
  let ring = Rfloor_trace.Ring.create () in
  let metrics = Rfloor_metrics.Registry.create () in
  let options =
    Rfloor.Solver.Options.make
      ~strategy:
        (Strategy.portfolio [ Strategy.combinatorial (); Strategy.lns () ])
      ~time_limit:30.
      ~trace:(Rfloor_trace.Ring.sink ring)
      ~metrics ()
  in
  let o = Rfloor.Solver.solve ~options (Lazy.force toy_part) (Lazy.force toy_spec) in
  Alcotest.(check bool) "portfolio conclusive" true
    (o.Rfloor.Solver.status = Rfloor.Solver.Optimal);
  let cancel_stops =
    List.filter
      (fun (e : Rfloor_trace.Event.t) ->
        match e.Rfloor_trace.Event.payload with
        | Rfloor_trace.Event.Stopped { reason } -> reason = "cancel"
        | _ -> false)
      (Rfloor_trace.Ring.events ring)
  in
  Alcotest.(check bool) "a losing member was stopped with \"cancel\"" true
    (List.length cancel_stops >= 1);
  let stops =
    Rfloor_metrics.Registry.Counter.value
      (Rfloor_metrics.Registry.counter metrics "rfloor_stops_total")
  in
  Alcotest.(check bool) "rfloor_stops_total bumped" true (stops >= 1)

let suites =
  [
    ( "portfolio.strategy",
      [
        Alcotest.test_case "round-trip" `Quick test_strategy_roundtrip;
        Alcotest.test_case "parse errors (RF502)" `Quick test_strategy_parse_errors;
        Alcotest.test_case "deprecated sugar" `Quick test_strategy_sugar_equivalence;
        Alcotest.test_case "RF501 budget clamp" `Quick test_rf501_budget_clamp;
      ] );
    ( "portfolio.cuts",
      [
        (* 200 instances by default; RFLOOR_CUTS_DIFF shrinks the
           sample (bin/lint.sh portfolio-check runs 25). *)
        Alcotest.test_case "seeded differential" `Slow test_cuts_differential;
      ] );
    ( "portfolio.race",
      [
        Alcotest.test_case "vs sequential differential" `Slow
          test_portfolio_vs_sequential;
        Alcotest.test_case "loser observes cancel" `Quick
          test_race_loser_observes_cancel;
        Alcotest.test_case "losers stopped in trace" `Quick
          test_portfolio_losers_stopped_in_trace;
      ] );
  ]
