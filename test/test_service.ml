(* Unit tests for Rfloor_service: canonicalization properties (region
   relabeling and tile-type renaming invariance, discrimination under
   geometry changes), cooperative cancellation at the branch-and-bound
   and solver levels, and the pool's cache / warm-start / cancel /
   multi-worker behaviour.

   Everything runs on generator instances or the mini device — never
   FX70T-scale inputs, which need ~an hour per root LP on one core. *)

open Device
module C = Rfloor_service.Canonical
module Pool = Rfloor_service.Pool
module Solver = Rfloor.Solver
module Bb = Milp.Branch_bound
module T = Rfloor_trace

(* ------------------------------------------------------------------ *)
(* Canonicalization *)

(* Rename every region and reverse the declaration order: an isomorphic
   instance that shares no region name with the original. *)
let relabel_spec (spec : Spec.t) =
  let rename n = "zz_" ^ n ^ "_relabeled" in
  let regions =
    List.rev_map
      (fun r -> { r with Spec.r_name = rename r.Spec.r_name })
      spec.Spec.regions
  in
  let nets =
    List.map
      (fun n -> { n with Spec.src = rename n.Spec.src; dst = rename n.Spec.dst })
      spec.Spec.nets
  in
  let relocs =
    List.map (fun rr -> { rr with Spec.target = rename rr.Spec.target }) spec.Spec.relocs
  in
  Spec.make ~nets ~relocs ~name:"relabeled" regions

let test_relabel_invariance () =
  let base = Generators.base_seed () in
  for i = 0 to 9 do
    let prng = Generators.Prng.make (Generators.case_seed base i) in
    let part = Generators.random_partition prng in
    let spec = Generators.random_spec prng part in
    let c1 = C.of_instance part spec in
    let c2 = C.of_instance part (relabel_spec spec) in
    Alcotest.(check string)
      (Printf.sprintf "case %d: same canonical text" i)
      c1.C.instance_text c2.C.instance_text;
    Alcotest.(check string)
      (Printf.sprintf "case %d: same instance key" i)
      c1.C.instance_key c2.C.instance_key
  done

(* Rename the tile kinds (Clb->Dsp, Bram->Clb, Dsp->Bram) while keeping
   the left-to-right portion sequence and the per-kind frame counts:
   the tile-type-sequence equivalence of Properties .3/.4.  Constant
   [frames] on both devices, since the real per-kind counts differ. *)
let test_tile_renaming_invariance () =
  let frames _ = 36 in
  let tt = Resource.tile_type in
  let columns kinds =
    List.concat_map (fun (k, w) -> List.init w (fun _ -> tt k)) kinds
  in
  let shape1 = [ (Resource.Clb, 2); (Resource.Bram, 1); (Resource.Clb, 2); (Resource.Dsp, 1) ] in
  let shape2 = [ (Resource.Dsp, 2); (Resource.Clb, 1); (Resource.Dsp, 2); (Resource.Bram, 1) ] in
  let grid name shape =
    Grid.of_columns ~name ~frames ~rows:4 (columns shape)
  in
  let spec name (ka, kb) =
    Spec.make ~name
      ~nets:[ { Spec.src = "filter"; dst = "decoder"; weight = 32. } ]
      [
        { Spec.r_name = "filter"; demand = [ (ka, 2); (kb, 1) ] };
        { Spec.r_name = "decoder"; demand = [ (ka, 1) ] };
      ]
  in
  let c1 =
    C.of_instance
      (Partition.columnar_exn (grid "dev_a" shape1))
      (spec "spec_a" (Resource.Clb, Resource.Bram))
  in
  let c2 =
    C.of_instance
      (Partition.columnar_exn (grid "dev_b" shape2))
      (spec "spec_b" (Resource.Dsp, Resource.Clb))
  in
  Alcotest.(check string) "same canonical text" c1.C.instance_text c2.C.instance_text;
  Alcotest.(check string) "same instance key" c1.C.instance_key c2.C.instance_key

let test_geometry_discriminates () =
  let tt = Resource.tile_type in
  let cols = [ tt Resource.Clb; tt Resource.Clb; tt Resource.Bram; tt Resource.Clb ] in
  let spec =
    Spec.make ~name:"s"
      [ { Spec.r_name = "r1"; demand = [ (Resource.Clb, 2) ] } ]
  in
  let key rows cols =
    (C.of_instance
       (Partition.columnar_exn (Grid.of_columns ~name:"g" ~rows cols))
       spec)
      .C.instance_key
  in
  let k4 = key 4 cols in
  Alcotest.(check bool) "height change changes the key" false (k4 = key 5 cols);
  let wider = [ tt Resource.Clb; tt Resource.Clb; tt Resource.Clb; tt Resource.Bram; tt Resource.Clb ] in
  Alcotest.(check bool) "tile-count change changes the key" false (k4 = key 4 wider)

(* Budgets, workers and observability must not enter the options key;
   the answer-defining options must. *)
let test_options_key_scope () =
  let part = Partition.columnar_exn Devices.mini in
  let spec =
    Spec.make ~name:"s" [ { Spec.r_name = "r1"; demand = [ (Resource.Clb, 2) ] } ]
  in
  let c = C.of_instance part spec in
  let key o = fst (C.options_key c o) in
  let k_base = key (Solver.Options.make ~time_limit:5. ()) in
  Alcotest.(check string) "budget/workers excluded" k_base
    (key (Solver.Options.make ~time_limit:50. ~node_limit:7 ~workers:4 ()));
  Alcotest.(check bool) "objective mode included" false
    (k_base = key (Solver.Options.make ~objective_mode:Solver.Feasibility_only ()));
  Alcotest.(check bool) "paper_literal_l included" false
    (k_base = key (Solver.Options.make ~paper_literal_l:true ()))

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation *)

let test_bb_cancel () =
  let lp = Generators.hard_knapsack ~seed:(Generators.case_seed (Generators.base_seed ()) 77) in
  let polls = ref 0 in
  let options =
    {
      Bb.default_options with
      cancel =
        (fun () ->
          incr polls;
          !polls > 5);
    }
  in
  let r = Bb.solve ~options lp in
  Alcotest.(check bool) "stop = Cancelled" true (r.Bb.stop = Some Bb.Cancelled);
  Alcotest.(check bool)
    (Printf.sprintf "cancel bounds the node count (%d nodes)" r.Bb.nodes)
    true
    (r.Bb.nodes <= 6)

(* Parallel cancel: every worker observes the token, but exactly one
   Stopped trace event may be emitted. *)
let test_parallel_cancel () =
  let lp = Generators.hard_knapsack ~seed:(Generators.case_seed (Generators.base_seed ()) 79) in
  let ring = T.Ring.create ~capacity:4096 () in
  let polls = Atomic.make 0 in
  let options =
    {
      Bb.default_options with
      trace = T.create ~sink:(T.Ring.sink ring) ();
      cancel = (fun () -> Atomic.fetch_and_add polls 1 >= 20);
    }
  in
  let r = Milp.Parallel_bb.solve ~options ~workers:4 lp in
  Alcotest.(check bool) "stop = Cancelled" true (r.Bb.stop = Some Bb.Cancelled);
  let stopped =
    List.filter
      (fun e ->
        match e.T.Event.payload with T.Event.Stopped _ -> true | _ -> false)
      (T.Ring.events ring)
  in
  Alcotest.(check int) "exactly one Stopped event" 1 (List.length stopped);
  (match stopped with
  | [ { T.Event.payload = T.Event.Stopped { reason }; _ } ] ->
    Alcotest.(check string) "reason" "cancel" reason
  | _ -> ())

(* Solver level: a fired token still returns the warm-start incumbent. *)
let test_solver_cancel_keeps_incumbent () =
  let part = Partition.columnar_exn Devices.mini in
  let spec =
    Spec.make ~name:"toy"
      ~nets:[ { Spec.src = "filter"; dst = "decoder"; weight = 32. } ]
      [
        { Spec.r_name = "filter"; demand = [ (Resource.Clb, 2); (Resource.Bram, 1) ] };
        { Spec.r_name = "decoder"; demand = [ (Resource.Clb, 2); (Resource.Dsp, 1) ] };
      ]
  in
  let options = Solver.Options.make ~cancel:(fun () -> true) () in
  let o = Solver.solve ~options part spec in
  Alcotest.(check bool) "stop = Cancelled" true (o.Solver.stop = Some Solver.Cancelled);
  Alcotest.(check bool) "not proven optimal" true (o.Solver.status <> Solver.Optimal);
  Alcotest.(check bool) "warm incumbent survives" true (o.Solver.plan <> None)

(* ------------------------------------------------------------------ *)
(* Pool: cache, warm start, cancellation, workers *)

let mini_part = lazy (Partition.columnar_exn Devices.mini)

let toy_spec ?(relocs = []) () =
  Spec.make ~name:"toy" ~relocs
    ~nets:[ { Spec.src = "filter"; dst = "decoder"; weight = 32. } ]
    [
      { Spec.r_name = "filter"; demand = [ (Resource.Clb, 2); (Resource.Bram, 1) ] };
      { Spec.r_name = "decoder"; demand = [ (Resource.Clb, 2); (Resource.Dsp, 1) ] };
    ]

let await_solved pool label ticket =
  match Pool.await pool ticket with
  | Pool.Completed s -> s
  | Pool.Stopped (_, reason) -> Alcotest.failf "%s: stopped (%s)" label reason
  | Pool.Failed msg -> Alcotest.failf "%s: failed: %s" label msg

let test_pool_cache_hit () =
  let pool = Pool.create () in
  let part = Lazy.force mini_part and spec = toy_spec () in
  let options = Solver.Options.make ~objective_mode:Solver.Feasibility_only ~time_limit:30. () in
  let t1 = Pool.submit pool ~options part spec in
  let s1 = await_solved pool "first" t1 in
  Alcotest.(check bool) "first is a miss" true (s1.Pool.source = Pool.Solved);
  Alcotest.(check bool) "first is optimal" true (s1.Pool.outcome.Solver.status = Solver.Optimal);
  (* same instance under relabeled regions: still an exact hit *)
  let t2 = Pool.submit pool ~options part (relabel_spec spec) in
  let s2 = await_solved pool "repeat" t2 in
  Alcotest.(check bool) "repeat served from cache" true (s2.Pool.source = Pool.Cache_hit);
  Alcotest.(check int) "zero branch-and-bound nodes" 0 s2.Pool.outcome.Solver.nodes;
  Alcotest.(check bool) "cached plan rebinds" true (s2.Pool.outcome.Solver.plan <> None);
  let st = Pool.stats pool in
  Alcotest.(check int) "one cache hit" 1 st.Pool.s_cache_hits;
  Alcotest.(check int) "one miss" 1 st.Pool.s_cache_misses;
  Pool.shutdown pool

let test_pool_warm_start () =
  let pool = Pool.create () in
  let part = Lazy.force mini_part and spec = toy_spec () in
  let t1 =
    Pool.submit pool
      ~options:(Solver.Options.make ~objective_mode:Solver.Feasibility_only ~time_limit:30. ())
      part spec
  in
  ignore (await_solved pool "seed solve" t1);
  (* same instance, different options: near hit, cached plan as HO seed *)
  let t2 =
    Pool.submit pool ~options:(Solver.Options.make ~time_limit:30. ()) part spec
  in
  let s2 = await_solved pool "lex solve" t2 in
  Alcotest.(check bool) "warm-started" true (s2.Pool.source = Pool.Warm_start);
  Alcotest.(check bool) "has a plan" true (s2.Pool.outcome.Solver.plan <> None);
  Alcotest.(check int) "counted" 1 (Pool.stats pool).Pool.s_warm_starts;
  Pool.shutdown pool

let test_pool_deadline_stop () =
  let pool = Pool.create () in
  let relocs = [ { Spec.target = "filter"; copies = 1; mode = Spec.Hard } ] in
  let t =
    Pool.submit pool ~deadline:0.4
      ~options:(Solver.Options.make ~time_limit:60. ())
      (Lazy.force mini_part) (toy_spec ~relocs ())
  in
  (match Pool.await pool t with
  | Pool.Stopped (s, reason) ->
    Alcotest.(check string) "reason" "deadline" reason;
    Alcotest.(check bool) "outcome records the stop" true
      (s.Pool.outcome.Solver.stop = Some Solver.Cancelled);
    Alcotest.(check bool) "incumbent survives the stop" true
      (s.Pool.outcome.Solver.plan <> None)
  | Pool.Completed _ -> Alcotest.fail "deadline did not fire"
  | Pool.Failed msg -> Alcotest.failf "failed: %s" msg);
  Pool.shutdown pool

let test_pool_queued_cancel () =
  let pool = Pool.create ~workers:1 () in
  let relocs = [ { Spec.target = "filter"; copies = 1; mode = Spec.Hard } ] in
  (* [a] occupies the only worker until its deadline; [b] sits queued. *)
  let a =
    Pool.submit pool ~deadline:0.5
      ~options:(Solver.Options.make ~time_limit:60. ())
      (Lazy.force mini_part) (toy_spec ~relocs ())
  in
  let b =
    Pool.submit pool
      ~options:(Solver.Options.make ~objective_mode:Solver.Feasibility_only ())
      (Lazy.force mini_part) (toy_spec ())
  in
  Alcotest.(check bool) "cancel accepted" true (Pool.cancel pool b);
  (match Pool.await pool b with
  | Pool.Stopped (s, reason) ->
    Alcotest.(check string) "reason" "cancel" reason;
    Alcotest.(check string) "never canonicalized" "" s.Pool.key
  | Pool.Completed _ -> Alcotest.fail "queued cancel ignored"
  | Pool.Failed msg -> Alcotest.failf "failed: %s" msg);
  (match Pool.await pool a with
  | Pool.Stopped (_, "deadline") -> ()
  | Pool.Stopped (_, r) -> Alcotest.failf "job a stopped with %S" r
  | Pool.Completed _ -> ()  (* finished before the deadline: fine *)
  | Pool.Failed msg -> Alcotest.failf "job a failed: %s" msg);
  Alcotest.(check bool) "finished cancel refused" false (Pool.cancel pool b);
  Pool.shutdown pool

(* Four worker domains drain a queue of seeded generator instances. *)
let test_pool_soak () =
  let pool = Pool.create ~workers:4 () in
  let base = Generators.base_seed () in
  let options = Solver.Options.make ~objective_mode:Solver.Feasibility_only ~time_limit:10. () in
  let tickets =
    List.init 8 (fun i ->
        let prng = Generators.Prng.make (Generators.case_seed base (100 + i)) in
        let part = Generators.random_partition prng in
        let spec = Generators.random_spec prng part in
        Pool.submit pool ~priority:(i mod 3) ~options part spec)
  in
  List.iteri
    (fun i t ->
      match Pool.await pool t with
      | Pool.Completed _ | Pool.Stopped _ -> ()
      | Pool.Failed msg -> Alcotest.failf "soak job %d failed: %s" i msg)
    tickets;
  let st = Pool.stats pool in
  Alcotest.(check int) "all finished" 8 st.Pool.s_finished;
  Alcotest.(check int) "queue drained" 0 st.Pool.s_queued;
  Pool.shutdown pool;
  (* submissions after shutdown must be refused *)
  match
    Pool.submit pool (Lazy.force mini_part) (toy_spec ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "submit after shutdown accepted"

(* ------------------------------------------------------------------ *)
(* Cache under concurrency *)

module Cache = Rfloor_service.Cache
module R = Rfloor_metrics.Registry

let cache_entry k =
  {
    Cache.instance_key = k;
    options_key = "opts";
    instance_text = "text:" ^ k;
    options_text = "otext";
    status = Solver.Optimal;
    wasted = Some 0;
    wirelength = Some 0.;
    objective = Some 0.;
    fc_identified = 0;
    plan = None;
  }

let cache_find cache k =
  Cache.find cache ~instance_key:k ~instance_text:("text:" ^ k)
    ~options_key:"opts" ~options_text:"otext"

(* Four domains hammer one capacity-bounded cache with interleaved
   inserts, hits and misses over overlapping key ranges.  Afterwards
   the size bound holds, stored keys are unique, and every surviving
   entry still round-trips as an exact hit. *)
let test_cache_concurrent () =
  let capacity = 8 in
  let cache = Cache.create ~capacity () in
  let key d i = Printf.sprintf "k%02d" ((i + (d * 5)) mod 24) in
  let errors = Atomic.make 0 in
  let work d () =
    for i = 0 to 399 do
      let k = key d i in
      (match cache_find cache k with
      | Some (Cache.Exact e) | Some (Cache.Near e) ->
        (* a hit must carry the entry it was stored under *)
        if e.Cache.instance_text <> "text:" ^ e.Cache.instance_key then
          Atomic.incr errors
      | None -> Cache.store cache (cache_entry k));
      if Cache.length cache > capacity then Atomic.incr errors
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (work d)) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no invariant violations inside domains" 0
    (Atomic.get errors);
  Alcotest.(check bool) "size bound" true (Cache.length cache <= capacity);
  let keys = Cache.keys cache in
  Alcotest.(check int) "length agrees with keys" (Cache.length cache)
    (List.length keys);
  Alcotest.(check (list string)) "keys unique" (List.sort_uniq compare keys)
    keys;
  (* every survivor answers an exact hit with its own payload *)
  List.iter
    (fun full ->
      let k = List.hd (String.split_on_char '/' full) in
      match cache_find cache k with
      | Some (Cache.Exact e) ->
        Alcotest.(check string) (k ^ " payload") ("text:" ^ k)
          e.Cache.instance_text
      | Some (Cache.Near _) | None -> Alcotest.failf "%s: not an exact hit" k)
    keys

(* Hits and misses must be conserved: pool stats and the
   rfloor_service_* metric counters agree with the submission mix. *)
let test_pool_hit_miss_conservation () =
  let reg = R.create () in
  let pool = Pool.create ~metrics:reg () in
  let part = Lazy.force mini_part and spec = toy_spec () in
  let options =
    Solver.Options.make ~objective_mode:Solver.Feasibility_only ~time_limit:30.
      ()
  in
  (* one miss, then two exact hits of the same canonical instance *)
  ignore (await_solved pool "seed" (Pool.submit pool ~options part spec));
  ignore (await_solved pool "hit1" (Pool.submit pool ~options part spec));
  ignore
    (await_solved pool "hit2"
       (Pool.submit pool ~options part (relabel_spec spec)));
  (* a geometrically different instance: a second miss *)
  let prng = Generators.Prng.make (Generators.case_seed (Generators.base_seed ()) 55) in
  let part2 = Generators.random_partition prng in
  let spec2 = Generators.random_spec prng part2 in
  ignore (await_solved pool "other" (Pool.submit pool ~options part2 spec2));
  let st = Pool.stats pool in
  Alcotest.(check int) "stats hits" 2 st.Pool.s_cache_hits;
  Alcotest.(check int) "stats misses" 2 st.Pool.s_cache_misses;
  Alcotest.(check int) "hits + misses = jobs" 4
    (st.Pool.s_cache_hits + st.Pool.s_cache_misses);
  let counter_total name =
    List.fold_left
      (fun acc m ->
        match m with
        | R.Snapshot.Counter { name = n; value; _ } when n = name -> acc + value
        | _ -> acc)
      0 (R.snapshot reg)
  in
  Alcotest.(check int) "metric hits agree" st.Pool.s_cache_hits
    (counter_total "rfloor_service_cache_hits_total");
  Alcotest.(check int) "metric misses agree" st.Pool.s_cache_misses
    (counter_total "rfloor_service_cache_misses_total");
  (* queue-depth gauge: every submission was awaited, so the gauge must
     have drained back to zero and every worker must be idle again *)
  let gauge_value name =
    List.fold_left
      (fun acc m ->
        match m with
        | R.Snapshot.Gauge { name = n; value; _ } when n = name -> Some value
        | _ -> acc)
      None (R.snapshot reg)
  in
  Alcotest.(check (option (float 0.)))
    "queue-depth gauge drained" (Some 0.)
    (gauge_value "rfloor_service_queue_depth");
  Alcotest.(check int) "stats queue drained" 0 st.Pool.s_queued;
  List.iter
    (fun w -> Alcotest.(check string) "worker idle" "idle" w)
    (Pool.worker_states pool);
  Pool.shutdown pool

let suites =
  [
    ( "service.canonical",
      [
        Alcotest.test_case "region relabeling invariance" `Quick test_relabel_invariance;
        Alcotest.test_case "tile-type renaming invariance" `Quick test_tile_renaming_invariance;
        Alcotest.test_case "geometry discriminates" `Quick test_geometry_discriminates;
        Alcotest.test_case "options key scope" `Quick test_options_key_scope;
      ] );
    ( "service.cancel",
      [
        Alcotest.test_case "branch-and-bound token" `Quick test_bb_cancel;
        Alcotest.test_case "parallel token, one Stopped event" `Quick test_parallel_cancel;
        Alcotest.test_case "solver keeps warm incumbent" `Quick test_solver_cancel_keeps_incumbent;
      ] );
    ( "service.pool",
      [
        Alcotest.test_case "exact cache hit" `Quick test_pool_cache_hit;
        Alcotest.test_case "warm start on near hit" `Quick test_pool_warm_start;
        Alcotest.test_case "deadline stops with incumbent" `Quick test_pool_deadline_stop;
        Alcotest.test_case "queued cancel" `Quick test_pool_queued_cancel;
        Alcotest.test_case "four-worker soak" `Quick test_pool_soak;
        Alcotest.test_case "four-domain cache storm" `Quick test_cache_concurrent;
        Alcotest.test_case "hit/miss conservation vs metrics" `Quick test_pool_hit_miss_conservation;
      ] );
  ]
