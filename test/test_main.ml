let () =
  Alcotest.run "rfloor"
    (Test_simplex_core.suites @ Test_milp.suites @ Test_device.suites
   @ Test_search.suites
   @ Test_core.suites @ Test_analysis.suites @ Test_baselines.suites
   @ Test_bitstream.suites
   @ Test_sdr.suites @ Test_runtime.suites @ Test_io.suites
   @ Test_differential.suites @ Test_formats.suites @ Test_trace.suites
  @ Test_metrics.suites @ Test_service.suites @ Test_concheck.suites
   @ Test_portfolio.suites @ Test_obsv.suites @ Test_online.suites)
