(* Reference LP solver for differential testing.

   This is the pre-sparse dense-tableau simplex (explicit B^-1,
   Gauss-Jordan refactorization, Dantzig pricing with a Bland
   fallback), frozen as an oracle.  It shares no code with the live
   [Milp.Simplex] sparse revised solver, so agreement between the two
   on status and objective is meaningful evidence.  Trace, metrics and
   basis-sink plumbing are stripped; the algorithm is otherwise
   untouched.  Do not "improve" this file — its value is being old. *)

module Lp = Milp.Lp

type status = Optimal | Infeasible | Unbounded | Iter_limit

type outcome = {
  status : status;
  objective : float;
  x : float array;
  iterations : int;
}

let feas_eps = 1e-7
let dual_eps = 1e-7
let pivot_eps = 1e-9
let refactor_every = 150
let bland_after = 400 (* consecutive degenerate pivots before Bland's rule *)

module P = struct
  (* Columns are laid out as: structural vars [0, n), slacks [n, n+m),
     artificials [n+m, n+2m).  Slack and artificial columns are unit
     vectors and never stored explicitly. *)
  type t = {
    n : int;
    m : int;
    cols : (int * float) array array; (* structural sparse columns *)
    cost : float array; (* minimization costs for structural vars *)
    dir : Lp.dir;
    obj_constant : float;
    b : float array;
    lb0 : float array; (* default bounds, length n + 2m *)
    ub0 : float array;
  }

  let of_lp lp =
    let n = Lp.num_vars lp in
    let m = Lp.num_constrs lp in
    let cols_acc = Array.make n [] in
    let b = Array.make m 0. in
    Lp.iter_constrs lp (fun i terms _ rhs ->
        b.(i) <- rhs;
        List.iter (fun (c, v) -> cols_acc.(v) <- (i, c) :: cols_acc.(v)) terms);
    let cols = Array.map (fun l -> Array.of_list (List.rev l)) cols_acc in
    let dir = Lp.objective_dir lp in
    let sign = match dir with Lp.Minimize -> 1. | Lp.Maximize -> -1. in
    let cost = Array.init n (fun v -> sign *. Lp.objective_coeff lp v) in
    let total = n + m + m in
    let lb0 = Array.make total 0. and ub0 = Array.make total 0. in
    for v = 0 to n - 1 do
      lb0.(v) <- Lp.var_lb lp v;
      ub0.(v) <- Lp.var_ub lp v
    done;
    Lp.iter_constrs lp (fun i _ sense _ ->
        (* row + slack = rhs, so: Le -> slack >= 0; Ge -> slack <= 0 *)
        let l, u =
          match sense with
          | Lp.Le -> (0., infinity)
          | Lp.Ge -> (neg_infinity, 0.)
          | Lp.Eq -> (0., 0.)
        in
        lb0.(n + i) <- l;
        ub0.(n + i) <- u);
    (* artificial bounds are set per-solve from the initial residual *)
    { n; m; cols; cost; dir; obj_constant = Lp.objective_constant lp; b; lb0; ub0 }
end

type state = {
  core : P.t;
  total : int; (* n + 2m *)
  lb : float array;
  ub : float array;
  cost : float array; (* current phase costs, length total *)
  x : float array;
  basis : int array; (* column basic in each row *)
  basic_row : int array; (* column -> row, or -1 if nonbasic *)
  binv : float array array;
  y : float array; (* duals, scratch *)
  w : float array; (* ftran result, scratch *)
  mutable iters : int;
  mutable since_refactor : int;
  mutable degen_streak : int;
}

let col_iter st j f =
  let n = st.core.P.n in
  if j < n then Array.iter (fun (r, c) -> f r c) st.core.P.cols.(j)
  else f (if j < n + st.core.P.m then j - n else j - n - st.core.P.m) 1.

(* w := B^-1 * column j *)
let ftran st j =
  Array.fill st.w 0 st.core.P.m 0.;
  col_iter st j (fun r c ->
      let w = st.w and binv = st.binv in
      for i = 0 to st.core.P.m - 1 do
        w.(i) <- w.(i) +. (binv.(i).(r) *. c)
      done)

(* y := (B^-1)^T * cost_B *)
let btran st =
  let m = st.core.P.m in
  Array.fill st.y 0 m 0.;
  for i = 0 to m - 1 do
    let cb = st.cost.(st.basis.(i)) in
    if cb <> 0. then begin
      let row = st.binv.(i) and y = st.y in
      for k = 0 to m - 1 do
        y.(k) <- y.(k) +. (cb *. row.(k))
      done
    end
  done

let reduced_cost st j =
  let d = ref st.cost.(j) in
  col_iter st j (fun r c -> d := !d -. (st.y.(r) *. c));
  !d

(* Recompute basic variable values from nonbasic values. *)
let compute_basics st =
  let m = st.core.P.m in
  let r = Array.copy st.core.P.b in
  for j = 0 to st.total - 1 do
    if st.basic_row.(j) < 0 && st.x.(j) <> 0. then
      col_iter st j (fun i c -> r.(i) <- r.(i) -. (c *. st.x.(j)))
  done;
  for i = 0 to m - 1 do
    let s = ref 0. in
    let row = st.binv.(i) in
    for k = 0 to m - 1 do
      s := !s +. (row.(k) *. r.(k))
    done;
    st.x.(st.basis.(i)) <- !s
  done

exception Singular_basis

(* Rebuild binv from scratch by Gauss-Jordan elimination with partial
   pivoting on the current basis matrix. *)
let refactor st =
  let m = st.core.P.m in
  let a = Array.init m (fun _ -> Array.make m 0.) in
  for i = 0 to m - 1 do
    col_iter st st.basis.(i) (fun r c -> a.(r).(i) <- c)
  done;
  let inv = Array.init m (fun i -> Array.init m (fun k -> if i = k then 1. else 0.)) in
  for col = 0 to m - 1 do
    let piv = ref col in
    for i = col + 1 to m - 1 do
      if abs_float a.(i).(col) > abs_float a.(!piv).(col) then piv := i
    done;
    if abs_float a.(!piv).(col) < 1e-12 then raise Singular_basis;
    if !piv <> col then begin
      let t = a.(col) in a.(col) <- a.(!piv); a.(!piv) <- t;
      let t = inv.(col) in inv.(col) <- inv.(!piv); inv.(!piv) <- t
    end;
    let d = a.(col).(col) in
    for k = 0 to m - 1 do
      a.(col).(k) <- a.(col).(k) /. d;
      inv.(col).(k) <- inv.(col).(k) /. d
    done;
    for i = 0 to m - 1 do
      if i <> col then begin
        let f = a.(i).(col) in
        if f <> 0. then
          for k = 0 to m - 1 do
            a.(i).(k) <- a.(i).(k) -. (f *. a.(col).(k));
            inv.(i).(k) <- inv.(i).(k) -. (f *. inv.(col).(k))
          done
      end
    done
  done;
  for i = 0 to m - 1 do
    Array.blit inv.(i) 0 st.binv.(i) 0 m
  done;
  st.since_refactor <- 0;
  compute_basics st

(* Update binv after column [enter] replaces the basic column of row
   [rrow]; st.w must hold B^-1 * A_enter. *)
let update_binv st rrow =
  let m = st.core.P.m in
  let wr = st.w.(rrow) in
  let prow = st.binv.(rrow) in
  for k = 0 to m - 1 do
    prow.(k) <- prow.(k) /. wr
  done;
  for i = 0 to m - 1 do
    if i <> rrow then begin
      let f = st.w.(i) in
      if f <> 0. then begin
        let row = st.binv.(i) in
        for k = 0 to m - 1 do
          row.(k) <- row.(k) -. (f *. prow.(k))
        done
      end
    end
  done

(* Entering-variable choice.  Returns (j, sigma) where sigma = +1 to
   increase from lower bound, -1 to decrease from upper bound. *)
let price st ~bland =
  btran st;
  let best = ref (-1) and best_sigma = ref 1. and best_score = ref dual_eps in
  let consider j =
    if st.basic_row.(j) < 0 && st.lb.(j) < st.ub.(j) then begin
      let d = reduced_cost st j in
      let at_lb = st.x.(j) <= st.lb.(j) +. feas_eps in
      let at_ub = st.x.(j) >= st.ub.(j) -. feas_eps in
      let free = (not at_lb) && not at_ub in
      let try_dir sigma score =
        if score > !best_score then begin
          best := j;
          best_sigma := sigma;
          best_score := score;
          true
        end
        else false
      in
      let improved =
        if (at_lb || free) && d < -.dual_eps then try_dir 1. (-.d)
        else if (at_ub || free) && d > dual_eps then try_dir (-1.) d
        else false
      in
      improved
    end
    else false
  in
  if bland then begin
    (try
       for j = 0 to st.total - 1 do
         if consider j then raise Exit
       done
     with Exit -> ())
  end
  else
    for j = 0 to st.total - 1 do
      ignore (consider j)
    done;
  if !best < 0 then None else Some (!best, !best_sigma)

type step = Step_ok | Step_unbounded

(* Ratio test + pivot for entering column [j] moving in direction
   [sigma].  Implements bound flips and basis changes. *)
let step st ~bland j sigma =
  ftran st j;
  let m = st.core.P.m in
  (* max step before x_j hits its own opposite bound *)
  let own_limit =
    let range = st.ub.(j) -. st.lb.(j) in
    if Float.is_finite range then range else infinity
  in
  let limit = ref own_limit and leave = ref (-1) and leave_to_ub = ref false in
  for i = 0 to m - 1 do
    let wi = st.w.(i) *. sigma in
    if abs_float wi > pivot_eps then begin
      let bi = st.basis.(i) in
      let xi = st.x.(bi) in
      let t, to_ub =
        if wi > 0. then ((xi -. st.lb.(bi)) /. wi, false)
        else ((st.ub.(bi) -. xi) /. -.wi, true)
      in
      let t = max t 0. in
      if t < !limit -. 1e-10 then begin
        limit := t;
        leave := i;
        leave_to_ub := to_ub
      end
      else if t <= !limit +. 1e-10 && !leave >= 0 then begin
        (* tie-break: Bland wants the smallest basic index, otherwise
           prefer the numerically largest pivot *)
        let prefer =
          if bland then bi < st.basis.(!leave)
          else abs_float st.w.(i) > abs_float st.w.(!leave)
        in
        if prefer then begin
          leave := i;
          leave_to_ub := to_ub
        end
      end
    end
  done;
  if !limit = infinity then Step_unbounded
  else begin
    let t = !limit in
    if t > feas_eps then st.degen_streak <- 0
    else st.degen_streak <- st.degen_streak + 1;
    (* move entering variable and update basics *)
    st.x.(j) <- st.x.(j) +. (sigma *. t);
    if t > 0. then
      for i = 0 to m - 1 do
        let bi = st.basis.(i) in
        st.x.(bi) <- st.x.(bi) -. (sigma *. t *. st.w.(i))
      done;
    (match !leave with
    | -1 ->
      (* bound flip: entering variable reached its other bound, basis
         unchanged; snap to the bound to kill drift *)
      st.x.(j) <- (if sigma > 0. then st.ub.(j) else st.lb.(j))
    | r ->
      let out = st.basis.(r) in
      st.x.(out) <- (if !leave_to_ub then st.ub.(out) else st.lb.(out));
      update_binv st r;
      st.basis.(r) <- j;
      st.basic_row.(out) <- -1;
      st.basic_row.(j) <- r;
      st.since_refactor <- st.since_refactor + 1;
      if st.since_refactor >= refactor_every then (try refactor st with Singular_basis -> ()));
    Step_ok
  end

let iterate st ~max_iters ~phase1 =
  let unbounded = ref false and hit_limit = ref false in
  let continue_ = ref true in
  while !continue_ do
    if st.iters >= max_iters then begin
      hit_limit := true;
      continue_ := false
    end
    else begin
      let bland = st.degen_streak > bland_after in
      match price st ~bland with
      | None -> continue_ := false
      | Some (j, sigma) -> (
        st.iters <- st.iters + 1;
        match step st ~bland j sigma with
        | Step_ok -> ()
        | Step_unbounded ->
          if phase1 then
            (* phase-1 objective is bounded below by 0; an "unbounded"
              ray here is numerical noise *)
            continue_ := false
          else begin
            unbounded := true;
            continue_ := false
          end)
    end
  done;
  if !unbounded then Unbounded else if !hit_limit then Iter_limit else Optimal

let current_cost st =
  let s = ref 0. in
  for j = 0 to st.total - 1 do
    if st.cost.(j) <> 0. then s := !s +. (st.cost.(j) *. st.x.(j))
  done;
  !s

let solve_core ?max_iters ?lb ?ub (core : P.t) =
  let n = core.P.n and m = core.P.m in
  let max_iters =
    match max_iters with Some k -> k | None -> 20_000 + (60 * (m + n))
  in
  let total = n + m + m in
  let wlb = Array.copy core.P.lb0 and wub = Array.copy core.P.ub0 in
  (match lb with Some l -> Array.blit l 0 wlb 0 n | None -> ());
  (match ub with Some u -> Array.blit u 0 wub 0 n | None -> ());
  let bad_bounds = ref false in
  for v = 0 to n - 1 do
    if wlb.(v) > wub.(v) +. 1e-12 then bad_bounds := true
  done;
  if !bad_bounds then
    { status = Infeasible; objective = nan; x = Array.make n nan; iterations = 0 }
  else begin
    let st =
      {
        core;
        total;
        lb = wlb;
        ub = wub;
        cost = Array.make total 0.;
        x = Array.make total 0.;
        basis = Array.init m (fun i -> n + m + i);
        basic_row = Array.make total (-1);
        binv = Array.init m (fun i -> Array.init m (fun k -> if i = k then 1. else 0.));
        y = Array.make m 0.;
        w = Array.make m 0.;
        iters = 0;
        since_refactor = 0;
        degen_streak = 0;
      }
    in
    for i = 0 to m - 1 do
      st.basic_row.(n + m + i) <- i
    done;
    (* nonbasic start: nearest finite bound, or 0 for free variables *)
    for j = 0 to n + m - 1 do
      st.x.(j) <-
        (if Float.is_finite st.lb.(j) then st.lb.(j)
         else if Float.is_finite st.ub.(j) then st.ub.(j)
         else 0.)
    done;
    (* artificial values = residuals; sign determines their bounds and
       phase-1 costs *)
    let resid = Array.copy core.P.b in
    for j = 0 to n + m - 1 do
      if st.x.(j) <> 0. then
        col_iter st j (fun r c -> resid.(r) <- resid.(r) -. (c *. st.x.(j)))
    done;
    let need_phase1 = ref false in
    for i = 0 to m - 1 do
      let s = n + i and a = n + m + i in
      if resid.(i) >= st.lb.(s) -. 1e-12 && resid.(i) <= st.ub.(s) +. 1e-12
      then begin
        (* slack crash: the row is satisfied with its own slack basic;
           the artificial is fixed out, phase 1 never touches it *)
        st.basis.(i) <- s;
        st.basic_row.(s) <- i;
        st.basic_row.(a) <- -1;
        st.x.(s) <- min st.ub.(s) (max st.lb.(s) resid.(i));
        st.x.(a) <- 0.;
        st.lb.(a) <- 0.;
        st.ub.(a) <- 0.;
        st.cost.(a) <- 0.
      end
      else begin
        st.x.(a) <- resid.(i);
        if resid.(i) >= 0. then begin
          st.lb.(a) <- 0.;
          st.ub.(a) <- infinity;
          st.cost.(a) <- 1.
        end
        else begin
          st.lb.(a) <- neg_infinity;
          st.ub.(a) <- 0.;
          st.cost.(a) <- -1.
        end;
        if abs_float resid.(i) > feas_eps then need_phase1 := true
      end
    done;
    let fail_status status =
      { status; objective = nan; x = Array.sub st.x 0 n; iterations = st.iters }
    in
    let phase1_result =
      if not !need_phase1 then Optimal
      else begin
        let r = iterate st ~max_iters ~phase1:true in
        match r with
        | Iter_limit -> Iter_limit
        | Optimal | Unbounded | Infeasible ->
          if abs_float (current_cost st) > 1e-6 then Infeasible else Optimal
      end
    in
    match phase1_result with
    | Iter_limit -> fail_status Iter_limit
    | Infeasible -> fail_status Infeasible
    | Unbounded | Optimal -> (
      (* fix artificials at zero and install phase-2 costs *)
      for i = 0 to m - 1 do
        let a = n + m + i in
        st.lb.(a) <- 0.;
        st.ub.(a) <- 0.;
        st.cost.(a) <- 0.;
        if st.basic_row.(a) < 0 then st.x.(a) <- 0.
      done;
      Array.fill st.cost 0 total 0.;
      Array.blit core.P.cost 0 st.cost 0 n;
      st.degen_streak <- 0;
      match iterate st ~max_iters:(max_iters + st.iters) ~phase1:false with
      | Iter_limit -> fail_status Iter_limit
      | Infeasible -> fail_status Infeasible
      | Unbounded -> fail_status Unbounded
      | Optimal ->
        (try refactor st with Singular_basis -> ());
        let internal = ref 0. in
        for v = 0 to n - 1 do
          internal := !internal +. (core.P.cost.(v) *. st.x.(v))
        done;
        let objective =
          core.P.obj_constant
          +. (match core.P.dir with Lp.Minimize -> !internal | Lp.Maximize -> -. !internal)
        in
        { status = Optimal; objective; x = Array.sub st.x 0 n; iterations = st.iters })
  end

let solve ?max_iters ?lb ?ub lp = solve_core ?max_iters ?lb ?ub (P.of_lp lp)
