(* Tests for the device model: rectangles, grids, columnar partitioning
   (Figure 2 procedure and Properties .3/.4), area compatibility
   (Definitions .1/.2, Figure 1), specs and floorplan validation. *)

open Device

let rect x y w h = Rect.make ~x ~y ~w ~h

(* ------------------------------------------------------------------ *)
(* Rect *)

let test_rect_basics () =
  let r = rect 2 3 4 2 in
  Alcotest.(check int) "x2" 5 (Rect.x2 r);
  Alcotest.(check int) "y2" 4 (Rect.y2 r);
  Alcotest.(check int) "area" 8 (Rect.area r);
  Alcotest.(check bool) "contains_point" true (Rect.contains_point r 5 4);
  Alcotest.(check bool) "not contains" false (Rect.contains_point r 6 4);
  Alcotest.(check bool) "contains" true (Rect.contains r (rect 3 3 2 1));
  Alcotest.(check bool) "within" true (Rect.within ~width:5 ~height:4 r);
  Alcotest.(check bool) "not within" false (Rect.within ~width:4 ~height:4 r)

let test_rect_invalid () =
  Alcotest.check_raises "zero width" (Invalid_argument "Rect.make: non-positive size 0x1")
    (fun () -> ignore (rect 1 1 0 1));
  Alcotest.check_raises "zero origin" (Invalid_argument "Rect.make: origin (0,1) below 1")
    (fun () -> ignore (rect 0 1 1 1))

let test_rect_overlap () =
  let a = rect 1 1 3 3 in
  Alcotest.(check bool) "self" true (Rect.overlaps a a);
  Alcotest.(check bool) "adjacent right" false (Rect.overlaps a (rect 4 1 2 2));
  Alcotest.(check bool) "adjacent below" false (Rect.overlaps a (rect 1 4 2 2));
  Alcotest.(check bool) "corner" true (Rect.overlaps a (rect 3 3 2 2));
  Alcotest.(check bool) "symmetric" true (Rect.overlaps (rect 3 3 2 2) a)

let prop_rect_overlap_symmetric =
  QCheck2.Test.make ~name:"rect overlap is symmetric" ~count:500
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng ->
         let r () =
           rect
             (1 + Random.State.int rng 8)
             (1 + Random.State.int rng 8)
             (1 + Random.State.int rng 5)
             (1 + Random.State.int rng 5)
         in
         (r (), r ()))
       ~shrink:(fun _ -> Seq.empty))
    (fun (a, b) -> Rect.overlaps a b = Rect.overlaps b a)

let test_rect_center () =
  let cx, cy = Rect.center (rect 1 1 3 1) in
  Alcotest.(check (float 1e-9)) "cx" 2. cx;
  Alcotest.(check (float 1e-9)) "cy" 1. cy;
  Alcotest.(check (float 1e-9)) "manhattan" 3.
    (Rect.manhattan_centers (rect 1 1 1 1) (rect 2 1 3 3))

(* ------------------------------------------------------------------ *)
(* Grid *)

let test_grid_of_strings () =
  let g = Grid.of_strings [ "cbd"; "cbd" ] in
  Alcotest.(check int) "width" 3 (Grid.width g);
  Alcotest.(check int) "height" 2 (Grid.height g);
  Alcotest.(check bool) "clb" true
    (Resource.equal_kind (Grid.tile g 1 1).Resource.kind Resource.Clb);
  Alcotest.(check bool) "dsp" true
    (Resource.equal_kind (Grid.tile g 3 2).Resource.kind Resource.Dsp)

let test_grid_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Grid.of_strings: ragged rows")
    (fun () -> ignore (Grid.of_strings [ "cb"; "c" ]))

let test_grid_count_tiles () =
  let g = Devices.mini in
  let d = Grid.count_tiles g (rect 1 1 3 2) in
  Alcotest.(check int) "clb" 4 (Resource.demand_get d Resource.Clb);
  Alcotest.(check int) "bram" 2 (Resource.demand_get d Resource.Bram);
  let total = Grid.total_tiles g in
  Alcotest.(check int) "total tiles" (10 * 4) (Resource.demand_tiles total)

let test_grid_forbidden () =
  let g = Devices.fig2 in
  Alcotest.(check bool) "forbidden tile" true (Grid.in_forbidden g 1 3);
  Alcotest.(check bool) "free tile" false (Grid.in_forbidden g 3 3);
  Alcotest.(check bool) "rect hit" true (Grid.rect_hits_forbidden g (rect 2 3 2 1));
  Alcotest.(check bool) "rect miss" false (Grid.rect_hits_forbidden g (rect 3 1 2 2))

let test_table1_frames () =
  (* Section VI frame counts per tile kind *)
  let f = Grid.frames Devices.virtex5_fx70t in
  Alcotest.(check int) "clb" 36 (f Resource.Clb);
  Alcotest.(check int) "bram" 30 (f Resource.Bram);
  Alcotest.(check int) "dsp" 28 (f Resource.Dsp)

let test_fx70t_census () =
  let total = Grid.total_tiles Devices.virtex5_fx70t in
  Alcotest.(check int) "clb tiles" (35 * 8) (Resource.demand_get total Resource.Clb);
  Alcotest.(check int) "bram tiles" (5 * 8) (Resource.demand_get total Resource.Bram);
  Alcotest.(check int) "dsp tiles" (2 * 8) (Resource.demand_get total Resource.Dsp)

(* ------------------------------------------------------------------ *)
(* Partition *)

let test_partition_fig2 () =
  let part = Partition.columnar_exn Devices.fig2 in
  Alcotest.(check int) "portions" 6 (Array.length part.Partition.portions);
  Alcotest.(check int) "forbidden" 2 (List.length part.Partition.forbidden);
  Alcotest.(check int) "types" 3 part.Partition.n_types;
  Alcotest.(check bool) "property .3" true (Partition.check_adjacent_types_differ part);
  Alcotest.(check bool) "property .4" true (Partition.check_cover_disjoint part)

let test_partition_replacement () =
  (* step 1: a forbidden CLB column keeps its CLB type from the free rows *)
  let part = Partition.columnar_exn Devices.fig2 in
  Alcotest.(check bool) "col 1 is CLB" true
    (Resource.equal_kind (Partition.column_type part 1).Resource.kind Resource.Clb)

let test_partition_failure () =
  (* a column with mixed types outside forbidden areas cannot be
     columnar-partitioned (step 4) *)
  let g = Grid.of_strings [ "cb"; "cc" ] in
  match Partition.columnar g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure on mixed column"

let test_partition_fully_forbidden_column () =
  let g =
    Grid.of_strings ~forbidden:[ rect 2 1 1 2 ] [ "cb"; "cb" ]
  in
  match Partition.columnar g with
  | Error d ->
    Alcotest.(check string) "stable code" "RF010" d.Rfloor_diag.Diagnostic.code;
    Alcotest.(check bool) "has a message" true
      (String.length d.Rfloor_diag.Diagnostic.message > 0)
  | Ok _ -> Alcotest.fail "expected failure: column entirely forbidden"

let test_partition_forbidden_rescue () =
  (* mixed tile types are fine when the odd tiles are under a forbidden
     area (they are replaced in step 1) *)
  let g =
    Grid.create ~forbidden:[ rect 1 1 1 1 ] ~width:2 ~height:2 (fun col row ->
        if col = 1 && row = 1 then Resource.tile_type Resource.Bram
        else Resource.tile_type Resource.Clb)
  in
  match Partition.columnar g with
  | Ok part ->
    Alcotest.(check int) "one portion" 1 (Array.length part.Partition.portions)
  | Error e -> Alcotest.fail e.Rfloor_diag.Diagnostic.message

let test_partition_virtex7 () =
  let part = Partition.columnar_exn Devices.virtex7_small in
  Alcotest.(check int) "no forbidden areas" 0 (List.length part.Partition.forbidden);
  Alcotest.(check bool) "property .3" true (Partition.check_adjacent_types_differ part);
  Alcotest.(check bool) "property .4" true (Partition.check_cover_disjoint part)

let test_partition_fx70t () =
  let part = Partition.columnar_exn Devices.virtex5_fx70t in
  Alcotest.(check int) "portions" 15 (Array.length part.Partition.portions);
  Alcotest.(check bool) "property .3" true (Partition.check_adjacent_types_differ part);
  Alcotest.(check bool) "property .4" true (Partition.check_cover_disjoint part);
  (* left-to-right numbering *)
  Array.iteri
    (fun i p -> Alcotest.(check int) "index" (i + 1) p.Partition.index)
    part.Partition.portions

let test_variant_types_split_portions () =
  (* Definition .1: same resources but different configuration layout
     means different type, hence different portions *)
  let g =
    Grid.create ~width:2 ~height:2 (fun col _ ->
        Resource.tile_type ~variant:(col - 1) Resource.Clb)
  in
  let part = Partition.columnar_exn g in
  Alcotest.(check int) "two portions" 2 (Array.length part.Partition.portions);
  Alcotest.(check int) "two types" 2 part.Partition.n_types

let prop_partition_random_devices =
  QCheck2.Test.make ~name:"random devices partition cleanly" ~count:200
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng -> Devices.random rng)
       ~shrink:(fun _ -> Seq.empty))
    (fun g ->
      match Partition.columnar g with
      | Error _ -> false
      | Ok part ->
        Partition.check_adjacent_types_differ part
        && Partition.check_cover_disjoint part)

(* ------------------------------------------------------------------ *)
(* Compat *)

let fig1_part = lazy (Partition.columnar_exn Devices.fig1)

let area name = List.assoc name Devices.fig1_areas

let test_fig1_compatibility () =
  let part = Lazy.force fig1_part in
  Alcotest.(check bool) "A ~ B" true (Compat.compatible part (area "A") (area "B"));
  Alcotest.(check bool) "A !~ C" false (Compat.compatible part (area "A") (area "C"));
  Alcotest.(check bool) "B !~ C" false (Compat.compatible part (area "B") (area "C"))

let test_compat_reflexive_symmetric () =
  let part = Lazy.force fig1_part in
  List.iter
    (fun (_, a) ->
      Alcotest.(check bool) "reflexive" true (Compat.compatible part a a);
      List.iter
        (fun (_, b) ->
          Alcotest.(check bool) "symmetric" (Compat.compatible part a b)
            (Compat.compatible part b a))
        Devices.fig1_areas)
    Devices.fig1_areas

let test_relocation_sites () =
  let part = Lazy.force fig1_part in
  let sites = Compat.relocation_sites part (area "A") in
  (* all sites compatible, include the source itself *)
  Alcotest.(check bool) "source included" true
    (List.exists (Rect.equal (area "A")) sites);
  List.iter
    (fun s ->
      Alcotest.(check bool) "site compatible" true
        (Compat.compatible part (area "A") s))
    sites;
  (* free-compatible sites exclude occupied space (Definition .2) *)
  let free =
    Compat.free_compatible_sites ~occupied:[ area "A" ] part (area "A")
  in
  Alcotest.(check bool) "occupied excluded" true
    (not (List.exists (fun s -> Rect.overlaps s (area "A")) free))

let test_covered_and_waste () =
  let part = Partition.columnar_exn Devices.mini in
  (* mini columns: c c b c c d c c b c *)
  let r = rect 1 1 3 2 in
  let d = Compat.covered_demand part r in
  Alcotest.(check int) "clb" 4 (Resource.demand_get d Resource.Clb);
  Alcotest.(check int) "bram" 2 (Resource.demand_get d Resource.Bram);
  Alcotest.(check bool) "satisfies" true
    (Compat.satisfies part r [ (Resource.Clb, 3); (Resource.Bram, 1) ]);
  Alcotest.(check bool) "not satisfies" false
    (Compat.satisfies part r [ (Resource.Dsp, 1) ]);
  Alcotest.(check int) "waste" (36 + 30)
    (Compat.wasted_frames part r [ (Resource.Clb, 3); (Resource.Bram, 1) ])

let prop_sites_respect_definition =
  QCheck2.Test.make ~name:"relocation sites are exactly the compatible rects"
    ~count:100
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng ->
         let g = Devices.random rng in
         let part = Partition.columnar_exn g in
         let w = 1 + Random.State.int rng (Partition.width part) in
         let h = 1 + Random.State.int rng (Partition.height part) in
         let x = 1 + Random.State.int rng (Partition.width part - w + 1) in
         let y = 1 + Random.State.int rng (Partition.height part - h + 1) in
         (part, Rect.make ~x ~y ~w ~h))
       ~shrink:(fun _ -> Seq.empty))
    (fun (part, r) ->
      let sites = Compat.relocation_sites ~avoid_forbidden:false part r in
      (* every site compatible ... *)
      List.for_all (fun s -> Compat.compatible part r s) sites
      (* ... and every compatible rect of the same size is a site *)
      &&
      let all_ok = ref true in
      for x = 1 to Partition.width part - r.Rect.w + 1 do
        for y = 1 to Partition.height part - r.Rect.h + 1 do
          let c = Rect.make ~x ~y ~w:r.Rect.w ~h:r.Rect.h in
          let expected = Compat.compatible part r c in
          let got = List.exists (Rect.equal c) sites in
          if expected <> got then all_ok := false
        done
      done;
      !all_ok)

(* ------------------------------------------------------------------ *)
(* Spec and Floorplan *)

let toy_spec =
  Spec.make ~name:"toy"
    ~nets:(Spec.chain_nets ~weight:2. [ "A"; "B" ])
    ~relocs:[ { Spec.target = "A"; copies = 1; mode = Spec.Hard } ]
    [
      { Spec.r_name = "A"; demand = [ (Resource.Clb, 2) ] };
      { Spec.r_name = "B"; demand = [ (Resource.Dsp, 1) ] };
    ]

let test_spec_validation () =
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Spec.make: duplicate region names") (fun () ->
      ignore
        (Spec.make ~name:"bad"
           [
             { Spec.r_name = "A"; demand = [ (Resource.Clb, 1) ] };
             { Spec.r_name = "A"; demand = [ (Resource.Clb, 1) ] };
           ]));
  Alcotest.check_raises "unknown net"
    (Invalid_argument "Spec.make: net A-Z names unknown region") (fun () ->
      ignore
        (Spec.make ~name:"bad"
           ~nets:[ { Spec.src = "A"; dst = "Z"; weight = 1. } ]
           [ { Spec.r_name = "A"; demand = [ (Resource.Clb, 1) ] } ]))

let test_spec_duplicate_reloc () =
  Alcotest.check_raises "duplicate reloc target"
    (Invalid_argument "Spec.make: duplicate relocation request for A") (fun () ->
      ignore
        (Spec.make ~name:"bad"
           ~relocs:
             [
               { Spec.target = "A"; copies = 1; mode = Spec.Hard };
               { Spec.target = "A"; copies = 2; mode = Spec.Soft 1. };
             ]
           [ { Spec.r_name = "A"; demand = [ (Resource.Clb, 1) ] } ]))

let test_spec_accessors () =
  Alcotest.(check int) "fc copies" 1 (Spec.total_fc_copies toy_spec);
  Alcotest.(check int) "total clb" 2
    (Resource.demand_get (Spec.total_demand toy_spec) Resource.Clb);
  Alcotest.(check (list string)) "names" [ "A"; "B" ] (Spec.region_names toy_spec);
  let chain = Spec.chain_nets [ "x"; "y"; "z" ] in
  Alcotest.(check int) "chain length" 2 (List.length chain)

let mini_part = lazy (Partition.columnar_exn Devices.mini)

let good_plan =
  Floorplan.make
    [
      { Floorplan.p_region = "A"; p_rect = rect 1 1 2 1 };
      { Floorplan.p_region = "B"; p_rect = rect 6 1 1 1 };
    ]
    [ { Floorplan.fc_region = "A"; fc_index = 1; fc_rect = rect 1 2 2 1 } ]

let test_floorplan_valid () =
  let part = Lazy.force mini_part in
  match Floorplan.validate part toy_spec good_plan with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_floorplan_detects_overlap () =
  let part = Lazy.force mini_part in
  let bad =
    Floorplan.make
      [
        { Floorplan.p_region = "A"; p_rect = rect 1 1 2 1 };
        { Floorplan.p_region = "B"; p_rect = rect 6 1 1 1 };
      ]
      [ { Floorplan.fc_region = "A"; fc_index = 1; fc_rect = rect 2 1 2 1 } ]
  in
  match Floorplan.validate part toy_spec bad with
  | Ok () -> Alcotest.fail "overlap not detected"
  | Error es ->
    Alcotest.(check bool) "mentions overlap" true
      (List.exists (fun e -> String.length e > 0) es)

let test_floorplan_detects_incompatible_fc () =
  let part = Lazy.force mini_part in
  let bad =
    {
      good_plan with
      Floorplan.fc_areas =
        [ { Floorplan.fc_region = "A"; fc_index = 1; fc_rect = rect 2 2 2 1 } ];
    }
  in
  (* columns 2-3 are C,B: different signature from columns 1-2 = C,C *)
  match Floorplan.validate part toy_spec bad with
  | Ok () -> Alcotest.fail "incompatible area not detected"
  | Error _ -> ()

let test_floorplan_detects_missing_resources () =
  let part = Lazy.force mini_part in
  let bad =
    Floorplan.make
      [
        { Floorplan.p_region = "A"; p_rect = rect 1 1 2 1 };
        { Floorplan.p_region = "B"; p_rect = rect 7 1 1 1 } (* CLB, no DSP *);
      ]
      [ { Floorplan.fc_region = "A"; fc_index = 1; fc_rect = rect 1 2 2 1 } ]
  in
  match Floorplan.validate part toy_spec bad with
  | Ok () -> Alcotest.fail "missing resources not detected"
  | Error _ -> ()

let test_floorplan_detects_missing_hard_fc () =
  let part = Lazy.force mini_part in
  let bad = { good_plan with Floorplan.fc_areas = [] } in
  match Floorplan.validate part toy_spec bad with
  | Ok () -> Alcotest.fail "missing hard area not detected"
  | Error _ -> ()

let test_floorplan_metrics () =
  let part = Lazy.force mini_part in
  (* A at cols 1-2 (2 CLB, demand 2 CLB): waste 0; B at col 6 (1 DSP): 0 *)
  Alcotest.(check int) "wasted" 0 (Floorplan.wasted_frames part toy_spec good_plan);
  (* centers: A (1.5, 1), B (6, 1); manhattan 4.5, weight 2 *)
  Alcotest.(check (float 1e-9)) "wirelength" 9. (Floorplan.wirelength toy_spec good_plan)

let test_floorplan_render () =
  let part = Lazy.force mini_part in
  let s = Floorplan.render part good_plan in
  Alcotest.(check bool) "has marks" true
    (String.exists (fun c -> c = '1') s && String.exists (fun c -> c = '2') s);
  Alcotest.(check bool) "has fc mark" true (String.exists (fun c -> c = 'A') s)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "device.rect",
      [
        Alcotest.test_case "basics" `Quick test_rect_basics;
        Alcotest.test_case "invalid" `Quick test_rect_invalid;
        Alcotest.test_case "overlap" `Quick test_rect_overlap;
        Alcotest.test_case "center" `Quick test_rect_center;
      ]
      @ qsuite [ prop_rect_overlap_symmetric ] );
    ( "device.grid",
      [
        Alcotest.test_case "of_strings" `Quick test_grid_of_strings;
        Alcotest.test_case "ragged" `Quick test_grid_ragged;
        Alcotest.test_case "count_tiles" `Quick test_grid_count_tiles;
        Alcotest.test_case "forbidden" `Quick test_grid_forbidden;
        Alcotest.test_case "frame constants" `Quick test_table1_frames;
        Alcotest.test_case "fx70t census" `Quick test_fx70t_census;
      ] );
    ( "device.partition",
      [
        Alcotest.test_case "fig2" `Quick test_partition_fig2;
        Alcotest.test_case "step-1 replacement" `Quick test_partition_replacement;
        Alcotest.test_case "mixed column fails" `Quick test_partition_failure;
        Alcotest.test_case "forbidden column fails" `Quick
          test_partition_fully_forbidden_column;
        Alcotest.test_case "forbidden rescue" `Quick test_partition_forbidden_rescue;
        Alcotest.test_case "fx70t" `Quick test_partition_fx70t;
        Alcotest.test_case "virtex7" `Quick test_partition_virtex7;
        Alcotest.test_case "variant types" `Quick test_variant_types_split_portions;
      ]
      @ qsuite [ prop_partition_random_devices ] );
    ( "device.compat",
      [
        Alcotest.test_case "figure 1" `Quick test_fig1_compatibility;
        Alcotest.test_case "reflexive+symmetric" `Quick test_compat_reflexive_symmetric;
        Alcotest.test_case "relocation sites" `Quick test_relocation_sites;
        Alcotest.test_case "covered demand & waste" `Quick test_covered_and_waste;
      ]
      @ qsuite [ prop_sites_respect_definition ] );
    ( "device.spec_floorplan",
      [
        Alcotest.test_case "spec validation" `Quick test_spec_validation;
        Alcotest.test_case "duplicate reloc target" `Quick test_spec_duplicate_reloc;
        Alcotest.test_case "spec accessors" `Quick test_spec_accessors;
        Alcotest.test_case "valid plan" `Quick test_floorplan_valid;
        Alcotest.test_case "detects overlap" `Quick test_floorplan_detects_overlap;
        Alcotest.test_case "detects incompatible area" `Quick
          test_floorplan_detects_incompatible_fc;
        Alcotest.test_case "detects missing resources" `Quick
          test_floorplan_detects_missing_resources;
        Alcotest.test_case "detects missing hard area" `Quick
          test_floorplan_detects_missing_hard_fc;
        Alcotest.test_case "metrics" `Quick test_floorplan_metrics;
        Alcotest.test_case "render" `Quick test_floorplan_render;
      ] );
  ]
