(* Seeded random generators shared by the differential and fuzz suites.

   Everything is driven by an explicit splitmix-style PRNG — never
   [Random.self_init] — so that any failure reproduces from the printed
   seed.  The base seed comes from RFLOOR_TEST_SEED (default 2015, the
   paper's year); case [i] derives its own independent stream from it.

   Three MILP families have known-optimal constructions (bounded
   knapsack via dynamic programming, assignment with a planted
   permutation, set cover by exhaustive enumeration over small set
   systems); a fourth fully random family exercises infeasible and
   degenerate shapes.  Device generators produce random columnar
   partitions satisfying Properties .3/.4 by construction plus random
   region demands sized to be mostly satisfiable. *)

open Milp

module Prng = struct
  type t = { mutable s : int64 }

  let mix64 z =
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let make seed = { s = mix64 (Int64.of_int (seed + 0x1234567)) }

  let next t =
    t.s <- Int64.add t.s 0x9E3779B97F4A7C15L;
    mix64 t.s

  let int t n =
    if n <= 0 then invalid_arg "Prng.int: bound must be positive";
    Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int n))

  (* inclusive range *)
  let range t lo hi = lo + int t (hi - lo + 1)
  let bool t = Int64.logand (next t) 1L = 1L
  let pick t arr = arr.(int t (Array.length arr))

  let shuffle t arr =
    for i = Array.length arr - 1 downto 1 do
      let j = int t (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done
end

let base_seed () =
  match Sys.getenv_opt "RFLOOR_TEST_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some n -> n | None -> 2015)
  | None -> 2015

(* Independent stream per case: a failure report of [seed] alone is a
   complete reproducer, whatever order the cases ran in. *)
let case_seed base i = base + (1000003 * (i + 1))

(* Worker counts for the differential matrix: always {1, 2, 4}, plus
   whatever RFLOOR_WORKERS asks for (bin/lint.sh test-matrix). *)
let worker_counts () =
  List.sort_uniq compare (Parallel_bb.workers_from_env () :: [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* MILP instance families *)

type milp_case = {
  c_lp : Lp.t;
  c_optimum : float option;  (** known optimal objective, original direction *)
  c_family : string;
}

(* Bounded knapsack; the optimum comes from exact dynamic programming
   over the (integer) capacity. *)
let knapsack prng =
  let n = Prng.range prng 3 6 in
  let w = Array.init n (fun _ -> Prng.range prng 1 9) in
  let v = Array.init n (fun _ -> Prng.range prng 1 9) in
  let u = Array.init n (fun _ -> Prng.range prng 1 3) in
  let total = Array.fold_left ( + ) 0 (Array.init n (fun i -> w.(i) * u.(i))) in
  let cap = max 1 (total * Prng.range prng 30 70 / 100) in
  let dp = Array.make (cap + 1) 0 in
  for i = 0 to n - 1 do
    for _copy = 1 to u.(i) do
      for c = cap downto w.(i) do
        dp.(c) <- max dp.(c) (dp.(c - w.(i)) + v.(i))
      done
    done
  done;
  let lp = Lp.create ~name:"gen_knapsack" () in
  let xs =
    Array.init n (fun i ->
        Lp.add_var lp
          ~name:(Printf.sprintf "x%d" i)
          ~ub:(float_of_int u.(i)) ~kind:Lp.Integer ())
  in
  Lp.add_constr lp ~name:"cap"
    (Array.to_list (Array.mapi (fun i x -> (float_of_int w.(i), x)) xs))
    Lp.Le (float_of_int cap);
  Lp.set_objective lp Lp.Maximize
    (Array.to_list (Array.mapi (fun i x -> (float_of_int v.(i), x)) xs));
  { c_lp = lp; c_optimum = Some (float_of_int dp.(cap)); c_family = "knapsack" }

(* Assignment with a planted permutation: planted edges cost 1, all
   others at least 2, and each row/column holds exactly one cost-1
   edge — so any assignment costs >= n with equality only on the
   planted one.  Known optimum: n. *)
let assignment prng =
  let n = Prng.range prng 2 4 in
  let perm = Array.init n (fun i -> i) in
  Prng.shuffle prng perm;
  let lp = Lp.create ~name:"gen_assignment" () in
  let x =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Lp.add_var lp ~name:(Printf.sprintf "x%d_%d" i j) ~kind:Lp.Binary ()))
  in
  let cost i j = if perm.(i) = j then 1 else Prng.range prng 2 9 in
  let costs = Array.init n (fun i -> Array.init n (fun j -> cost i j)) in
  for i = 0 to n - 1 do
    Lp.add_constr lp
      ~name:(Printf.sprintf "row%d" i)
      (List.init n (fun j -> (1., x.(i).(j))))
      Lp.Eq 1.
  done;
  for j = 0 to n - 1 do
    Lp.add_constr lp
      ~name:(Printf.sprintf "col%d" j)
      (List.init n (fun i -> (1., x.(i).(j))))
      Lp.Eq 1.
  done;
  let obj = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      obj := (float_of_int costs.(i).(j), x.(i).(j)) :: !obj
    done
  done;
  Lp.set_objective lp Lp.Minimize !obj;
  { c_lp = lp; c_optimum = Some (float_of_int n); c_family = "assignment" }

(* Weighted set cover over a small universe; the optimum is found by
   exhaustive enumeration over the <= 2^7 subsets of sets. *)
let set_cover prng =
  let u = Prng.range prng 3 5 in
  let m = Prng.range prng 3 7 in
  let sets =
    Array.init m (fun _ ->
        Array.init u (fun _ -> Prng.int prng 100 < 40))
  in
  (* guarantee coverage: every element lands in at least one set *)
  for e = 0 to u - 1 do
    if not (Array.exists (fun s -> s.(e)) sets) then
      sets.(Prng.int prng m).(e) <- true
  done;
  let weight = Array.init m (fun _ -> Prng.range prng 1 9) in
  let best = ref max_int in
  for mask = 0 to (1 lsl m) - 1 do
    let covered e =
      let rec go j = j < m && ((mask land (1 lsl j) <> 0 && sets.(j).(e)) || go (j + 1)) in
      go 0
    in
    let rec all e = e >= u || (covered e && all (e + 1)) in
    if all 0 then begin
      let cost = ref 0 in
      for j = 0 to m - 1 do
        if mask land (1 lsl j) <> 0 then cost := !cost + weight.(j)
      done;
      if !cost < !best then best := !cost
    end
  done;
  let lp = Lp.create ~name:"gen_setcover" () in
  let xs =
    Array.init m (fun j ->
        Lp.add_var lp ~name:(Printf.sprintf "s%d" j) ~kind:Lp.Binary ())
  in
  for e = 0 to u - 1 do
    let terms =
      Array.to_list xs
      |> List.filteri (fun j _ -> sets.(j).(e))
      |> List.map (fun x -> (1., x))
    in
    Lp.add_constr lp ~name:(Printf.sprintf "cover%d" e) terms Lp.Ge 1.
  done;
  Lp.set_objective lp Lp.Minimize
    (Array.to_list (Array.mapi (fun j x -> (float_of_int weight.(j), x)) xs));
  { c_lp = lp; c_optimum = Some (float_of_int !best); c_family = "set_cover" }

(* Fully random box-bounded MILP: small, possibly infeasible, mixed
   senses and kinds — no known optimum, used for status-differential
   and format-fuzz coverage.  Every variable gets a nonzero coefficient
   in the first row so that serializers never drop a column. *)
let random_milp prng =
  let n = Prng.range prng 1 4 in
  let m = Prng.range prng 1 4 in
  let lp = Lp.create ~name:"gen_random" () in
  let nonzero () =
    let c = Prng.range prng 1 4 in
    float_of_int (if Prng.bool prng then c else -c)
  in
  let coef () = float_of_int (Prng.range prng (-4) 4) in
  let xs =
    Array.init n (fun i ->
        let ub = float_of_int (Prng.range prng 1 5) in
        let kind = if Prng.bool prng then Lp.Integer else Lp.Continuous in
        Lp.add_var lp ~name:(Printf.sprintf "r%d" i) ~lb:0. ~ub ~kind ())
  in
  for r = 0 to m - 1 do
    let terms =
      Array.to_list
        (Array.map (fun x -> ((if r = 0 then nonzero () else coef ()), x)) xs)
    in
    let sense =
      match Prng.int prng 3 with 0 -> Lp.Le | 1 -> Lp.Ge | _ -> Lp.Eq
    in
    Lp.add_constr lp terms sense (float_of_int (Prng.range prng (-3) 10))
  done;
  Lp.set_objective lp
    (if Prng.bool prng then Lp.Minimize else Lp.Maximize)
    (Array.to_list (Array.map (fun x -> (coef (), x)) xs));
  { c_lp = lp; c_optimum = None; c_family = "random" }

let milp_case ~seed =
  let prng = Prng.make seed in
  match Prng.int prng 4 with
  | 0 -> knapsack prng
  | 1 -> assignment prng
  | 2 -> set_cover prng
  | _ -> random_milp prng

(* A deliberately harder bounded knapsack for timing comparisons. *)
let hard_knapsack ~seed =
  let prng = Prng.make seed in
  let n = 12 in
  let w = Array.init n (fun _ -> Prng.range prng 3 19) in
  let v = Array.init n (fun _ -> Prng.range prng 3 19) in
  let total = Array.fold_left ( + ) 0 w * 3 in
  let cap = total * 45 / 100 in
  let lp = Lp.create ~name:"gen_hard_knapsack" () in
  let xs =
    Array.init n (fun i ->
        Lp.add_var lp ~name:(Printf.sprintf "x%d" i) ~ub:3. ~kind:Lp.Integer ())
  in
  Lp.add_constr lp ~name:"cap"
    (Array.to_list (Array.mapi (fun i x -> (float_of_int w.(i), x)) xs))
    Lp.Le (float_of_int cap);
  Lp.set_objective lp Lp.Maximize
    (Array.to_list (Array.mapi (fun i x -> (float_of_int v.(i), x)) xs));
  lp

(* ------------------------------------------------------------------ *)
(* Device / spec generators *)

(* Random columnar-partitionable grid: uniform columns, adjacent
   portions of differing kinds — Properties .3 and .4 hold by
   construction (and the differential suite re-checks them). *)
let random_partition prng =
  let kinds = [| Device.Resource.Clb; Device.Resource.Bram; Device.Resource.Dsp |] in
  let nportions = Prng.range prng 2 4 in
  let rows = Prng.range prng 4 6 in
  let cols = ref [] in
  let prev = ref None in
  for _ = 1 to nportions do
    let k = ref (Prng.pick prng kinds) in
    while Some !k = !prev do
      k := Prng.pick prng kinds
    done;
    prev := Some !k;
    let width = Prng.range prng 1 2 in
    for _ = 1 to width do
      cols := Device.Resource.tile_type !k :: !cols
    done
  done;
  let grid = Device.Grid.of_columns ~name:"gen_device" ~rows (List.rev !cols) in
  Device.Partition.columnar_exn grid

let random_spec prng (part : Device.Partition.t) =
  let avail = Device.Grid.usable_tiles part.Device.Partition.grid in
  let kinds_avail =
    List.filter
      (fun (k, c) -> c > 0 && k <> Device.Resource.Io)
      avail
  in
  let nregions = Prng.range prng 1 (min 3 (List.length kinds_avail + 1)) in
  let regions =
    List.init nregions (fun i ->
        let k, c = List.nth kinds_avail (Prng.int prng (List.length kinds_avail)) in
        let cap = max 1 (c / (2 * nregions)) in
        {
          Device.Spec.r_name = Printf.sprintf "R%d" (i + 1);
          demand = [ (k, Prng.range prng 1 cap) ];
        })
  in
  let names = List.map (fun r -> r.Device.Spec.r_name) regions in
  let nets =
    if List.length names >= 2 && Prng.bool prng then Device.Spec.chain_nets names
    else []
  in
  let relocs =
    if Prng.int prng 3 = 0 then
      [ { Device.Spec.target = List.hd names; copies = 1; mode = Device.Spec.Hard } ]
    else []
  in
  Device.Spec.make ~nets ~relocs ~name:"gen_spec" regions

(* Like [random_spec] but always with one relocation request of 2-3
   copies so interchangeable free-compatible areas exist — the shape
   the symmetry cuts order.  Soft mode keeps the instance feasible on
   devices too small for every copy; roughly half the cases go hard. *)
let random_reloc_spec prng (part : Device.Partition.t) =
  let spec = random_spec prng part in
  let names = Device.Spec.region_names spec in
  (* soft-biased: hard 3-copy requests on the small random devices are
     routinely infeasible-but-hard-to-prove, which starves the
     differential suites of conclusive pairs *)
  let mode =
    if Prng.range prng 0 3 = 0 then Device.Spec.Hard else Device.Spec.Soft 1.
  in
  Device.Spec.with_relocs spec
    [
      {
        Device.Spec.target = List.hd names;
        copies = (if Prng.range prng 0 3 = 0 then 3 else 2);
        mode;
      };
    ]
