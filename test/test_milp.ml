(* Tests for the MILP substrate: simplex against hand-solved and
   brute-force-enumerated LPs, branch-and-bound against exhaustive
   integer enumeration, presolve soundness, LP-format round trips. *)

open Milp

let check_float = Alcotest.(check (float 1e-5))

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Brute-force LP solver: enumerate basic solutions (vertices) of
   { Ax sense b, l <= x <= u } by picking n tight constraints among
   rows-as-equalities and variable bounds, solving the linear system and
   keeping the best feasible point.  Exponential; for tiny LPs only. *)

let gaussian_solve a b =
  (* a: n x n, b: n; returns solution or None if singular *)
  let n = Array.length b in
  let a = Array.map Array.copy a and b = Array.copy b in
  let ok = ref true in
  for col = 0 to n - 1 do
    if !ok then begin
      let piv = ref col in
      for i = col + 1 to n - 1 do
        if abs_float a.(i).(col) > abs_float a.(!piv).(col) then piv := i
      done;
      if abs_float a.(!piv).(col) < 1e-9 then ok := false
      else begin
        if !piv <> col then begin
          let t = a.(col) in a.(col) <- a.(!piv); a.(!piv) <- t;
          let t = b.(col) in b.(col) <- b.(!piv); b.(!piv) <- t
        end;
        for i = 0 to n - 1 do
          if i <> col then begin
            let f = a.(i).(col) /. a.(col).(col) in
            if f <> 0. then begin
              for k = col to n - 1 do
                a.(i).(k) <- a.(i).(k) -. (f *. a.(col).(k))
              done;
              b.(i) <- b.(i) -. (f *. b.(col))
            end
          end
        done
      end
    end
  done;
  if not !ok then None
  else Some (Array.init n (fun i -> b.(i) /. a.(i).(i)))

type brute_lp_result = B_opt of float | B_infeasible

let brute_force_lp lp =
  let n = Lp.num_vars lp in
  let rows = ref [] in
  Lp.iter_constrs lp (fun _ terms _ rhs ->
      let coefs = Array.make n 0. in
      List.iter (fun (c, v) -> coefs.(v) <- coefs.(v) +. c) terms;
      rows := (coefs, rhs) :: !rows);
  for v = 0 to n - 1 do
    let lb = Lp.var_lb lp v and ub = Lp.var_ub lp v in
    let unit x = Array.init n (fun i -> if i = v then x else 0.) in
    if Float.is_finite lb then rows := (unit 1., lb) :: !rows;
    if Float.is_finite ub then rows := (unit 1., ub) :: !rows
  done;
  let rows = Array.of_list !rows in
  let nrows = Array.length rows in
  let feasible x =
    Lp.constr_violation lp x < 1e-6 && Lp.bounds_violation lp x < 1e-6
  in
  let best = ref None in
  let consider x =
    if feasible x then begin
      let obj = Lp.objective_value lp x in
      let key =
        match Lp.objective_dir lp with Lp.Minimize -> obj | Lp.Maximize -> -.obj
      in
      match !best with
      | Some (k, _) when k <= key -> ()
      | _ -> best := Some (key, obj)
    end
  in
  (* all n-subsets of rows *)
  let idx = Array.make n 0 in
  let rec pick depth start =
    if depth = n then begin
      let a = Array.init n (fun i -> fst rows.(idx.(i))) in
      let b = Array.init n (fun i -> snd rows.(idx.(i))) in
      match gaussian_solve a b with Some x -> consider x | None -> ()
    end
    else
      for i = start to nrows - 1 do
        idx.(depth) <- i;
        pick (depth + 1) (i + 1)
      done
  in
  if n = 0 then B_opt (Lp.objective_constant lp)
  else begin
    pick 0 0;
    match !best with
    | Some (_, obj) -> B_opt obj
    | None ->
      (* no vertex: either infeasible or (rare, with infinite bounds)
         unbounded/non-vertex; report accordingly *)
      B_infeasible
  end

(* ------------------------------------------------------------------ *)
(* Hand-built LPs *)

let test_simplex_basic () =
  (* max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4, y=0, obj 12 *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~name:"x" () in
  let y = Lp.add_var lp ~name:"y" () in
  Lp.add_constr lp [ (1., x); (1., y) ] Lp.Le 4.;
  Lp.add_constr lp [ (1., x); (3., y) ] Lp.Le 6.;
  Lp.set_objective lp Lp.Maximize [ (3., x); (2., y) ];
  let r = Simplex.solve lp in
  Alcotest.(check bool) "optimal" true (r.Simplex.status = Simplex.Optimal);
  check_float "objective" 12. r.Simplex.objective;
  check_float "x" 4. r.Simplex.x.(x);
  check_float "y" 0. r.Simplex.x.(y)

let test_simplex_degenerate () =
  (* degeneracy-prone LP (Beale-style ratios); must terminate and agree
     with the brute-force vertex enumeration *)
  let lp = Lp.create () in
  let x1 = Lp.add_var lp ~ub:10. () in
  let x2 = Lp.add_var lp ~ub:10. () in
  let x3 = Lp.add_var lp ~ub:10. () in
  Lp.add_constr lp [ (0.5, x1); (-5.5, x2); (-2.5, x3) ] Lp.Le 0.;
  Lp.add_constr lp [ (0.5, x1); (-1.5, x2); (-0.5, x3) ] Lp.Le 0.;
  Lp.add_constr lp [ (1., x1) ] Lp.Le 1.;
  Lp.set_objective lp Lp.Maximize [ (10., x1); (-57., x2); (-9., x3) ];
  let r = Simplex.solve lp in
  Alcotest.(check bool) "optimal" true (r.Simplex.status = Simplex.Optimal);
  match brute_force_lp lp with
  | B_opt obj -> check_float "objective" obj r.Simplex.objective
  | B_infeasible -> Alcotest.fail "brute force says infeasible"

let test_simplex_infeasible () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:1. () in
  Lp.add_constr lp [ (1., x) ] Lp.Ge 2.;
  Lp.set_objective lp Lp.Minimize [ (1., x) ];
  let r = Simplex.solve lp in
  Alcotest.(check bool) "infeasible" true (r.Simplex.status = Simplex.Infeasible)

let test_simplex_unbounded () =
  let lp = Lp.create () in
  let x = Lp.add_var lp () in
  let y = Lp.add_var lp () in
  Lp.add_constr lp [ (1., x); (-1., y) ] Lp.Le 1.;
  Lp.set_objective lp Lp.Maximize [ (1., x) ];
  let r = Simplex.solve lp in
  Alcotest.(check bool) "unbounded" true (r.Simplex.status = Simplex.Unbounded)

let test_simplex_equalities () =
  (* min x + y st x + y = 3, x - y = 1 -> x=2, y=1, obj 3 *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~lb:neg_infinity () in
  let y = Lp.add_var lp ~lb:neg_infinity () in
  Lp.add_constr lp [ (1., x); (1., y) ] Lp.Eq 3.;
  Lp.add_constr lp [ (1., x); (-1., y) ] Lp.Eq 1.;
  Lp.set_objective lp Lp.Minimize [ (1., x); (1., y) ];
  let r = Simplex.solve lp in
  Alcotest.(check bool) "optimal" true (r.Simplex.status = Simplex.Optimal);
  check_float "objective" 3. r.Simplex.objective;
  check_float "x" 2. r.Simplex.x.(x);
  check_float "y" 1. r.Simplex.x.(y)

let test_simplex_negative_bounds () =
  (* min x st -5 <= x <= -2 -> -5 *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~lb:(-5.) ~ub:(-2.) () in
  Lp.set_objective lp Lp.Minimize [ (1., x) ];
  let r = Simplex.solve lp in
  check_float "objective" (-5.) r.Simplex.objective

let test_simplex_free_vars () =
  (* min x + 2y st x + y >= 2, x - y <= 0, x free, y free -> x=1,y=1? check:
     min on the line: objective decreases along (1,-1)? x+2y with x+y=2 ->
     x + 2(2-x) = 4 - x, maximize x subject to x - y <= 0 -> x <= y = 2 - x
     -> x <= 1, so x=1,y=1, obj 3 *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~lb:neg_infinity () in
  let y = Lp.add_var lp ~lb:neg_infinity () in
  Lp.add_constr lp [ (1., x); (1., y) ] Lp.Ge 2.;
  Lp.add_constr lp [ (1., x); (-1., y) ] Lp.Le 0.;
  Lp.set_objective lp Lp.Minimize [ (1., x); (2., y) ];
  let r = Simplex.solve lp in
  Alcotest.(check bool) "optimal" true (r.Simplex.status = Simplex.Optimal);
  check_float "objective" 3. r.Simplex.objective

(* ------------------------------------------------------------------ *)
(* Branch and bound *)

let test_bb_knapsack () =
  (* max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary -> a=1,c=1 (17) vs
     b=c (20): 4+2=6 -> b=1,c=1 obj 20 *)
  let lp = Lp.create () in
  let a = Lp.add_var lp ~kind:Lp.Binary () in
  let b = Lp.add_var lp ~kind:Lp.Binary () in
  let c = Lp.add_var lp ~kind:Lp.Binary () in
  Lp.add_constr lp [ (3., a); (4., b); (2., c) ] Lp.Le 6.;
  Lp.set_objective lp Lp.Maximize [ (10., a); (13., b); (7., c) ];
  let r = Branch_bound.solve lp in
  Alcotest.(check bool) "optimal" true (r.Branch_bound.status = Branch_bound.Optimal);
  (match r.Branch_bound.incumbent with
  | Some (obj, x) ->
    check_float "objective" 20. obj;
    check_float "b" 1. x.(b);
    check_float "c" 1. x.(c)
  | None -> Alcotest.fail "no incumbent")

let test_bb_integer_rounding_matters () =
  (* max x + y st 2x + 2y <= 3, integer -> LP opt 1.5, IP opt 1 *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~kind:Lp.Integer ~ub:10. () in
  let y = Lp.add_var lp ~kind:Lp.Integer ~ub:10. () in
  Lp.add_constr lp [ (2., x); (2., y) ] Lp.Le 3.;
  Lp.set_objective lp Lp.Maximize [ (1., x); (1., y) ];
  let r = Branch_bound.solve lp in
  match r.Branch_bound.incumbent with
  | Some (obj, _) -> check_float "objective" 1. obj
  | None -> Alcotest.fail "no incumbent"

let test_bb_infeasible () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~kind:Lp.Integer ~ub:10. () in
  (* 2x = 3 has no integer solution but a fractional one *)
  Lp.add_constr lp [ (2., x) ] Lp.Eq 3.;
  Lp.set_objective lp Lp.Minimize [ (1., x) ];
  let r = Branch_bound.solve lp in
  Alcotest.(check bool) "infeasible" true
    (r.Branch_bound.status = Branch_bound.Infeasible)

let test_presolve_proven_infeasible () =
  (* x + y >= 10 with x, y in [0, 1]: activity-based bound propagation
     alone proves infeasibility, no simplex needed *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~name:"x" ~ub:1. () in
  let y = Lp.add_var lp ~name:"y" ~ub:1. () in
  Lp.add_constr lp ~name:"cover" [ (1., x); (1., y) ] Lp.Ge 10.;
  Lp.set_objective lp Lp.Minimize [ (1., x); (1., y) ];
  (* the model-lint preflight must reach the same verdict independently
     (RF106: row infeasible under the variable bounds) *)
  let ds = Rfloor_analysis.Preflight.model (Lp.copy lp) in
  Alcotest.(check bool) "preflight flags RF106" true
    (List.exists
       (fun d ->
         d.Rfloor_diag.Diagnostic.code = "RF106"
         && d.Rfloor_diag.Diagnostic.severity
            = Rfloor_diag.Diagnostic.Error)
       ds);
  match Presolve.tighten lp with
  | Presolve.Proven_infeasible -> ()
  | Presolve.Tightened _ -> Alcotest.fail "presolve missed the infeasibility"

let test_bb_mixed () =
  (* min 2i + f st i + f >= 2.5, f <= 0.7, i integer -> i=2, f=0.5, obj 4.5 *)
  let lp = Lp.create () in
  let i = Lp.add_var lp ~kind:Lp.Integer ~ub:10. () in
  let f = Lp.add_var lp ~ub:0.7 () in
  Lp.add_constr lp [ (1., i); (1., f) ] Lp.Ge 2.5;
  Lp.set_objective lp Lp.Minimize [ (2., i); (1., f) ];
  let r = Branch_bound.solve lp in
  match r.Branch_bound.incumbent with
  | Some (obj, x) ->
    check_float "objective" 4.5 obj;
    check_float "i" 2. x.(i)
  | None -> Alcotest.fail "no incumbent"

let test_bb_warm_incumbent () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~kind:Lp.Integer ~ub:5. () in
  let y = Lp.add_var lp ~kind:Lp.Integer ~ub:5. () in
  Lp.add_constr lp [ (1., x); (1., y) ] Lp.Le 7.;
  Lp.set_objective lp Lp.Maximize [ (2., x); (3., y) ];
  let warm = [| 1.; 1. |] in
  let r = Branch_bound.solve ~incumbent:warm lp in
  match r.Branch_bound.incumbent with
  | Some (obj, _) -> check_float "objective" 19. obj (* x=2,y=5 *)
  | None -> Alcotest.fail "no incumbent"

(* ------------------------------------------------------------------ *)
(* Random cross-check generators *)

let rand_lp ~integer rng =
  let int_range lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let n = int_range 1 4 in
  let m = int_range 1 4 in
  let lp = Lp.create () in
  let coef () = float_of_int (int_range (-4) 4) in
  let vars =
    Array.init n (fun _ ->
        let ub = float_of_int (int_range 1 5) in
        let kind = if integer then Lp.Integer else Lp.Continuous in
        Lp.add_var lp ~lb:0. ~ub ~kind ())
  in
  for _ = 1 to m do
    let terms = Array.to_list (Array.map (fun v -> (coef (), v)) vars) in
    let sense =
      match int_range 0 2 with 0 -> Lp.Le | 1 -> Lp.Ge | _ -> Lp.Eq
    in
    (* keep rhs in a plausible range so some instances are feasible *)
    let rhs = float_of_int (int_range (-3) 10) in
    Lp.add_constr lp terms sense rhs
  done;
  let obj = Array.to_list (Array.map (fun v -> (coef (), v)) vars) in
  let dir = if Random.State.bool rng then Lp.Minimize else Lp.Maximize in
  Lp.set_objective lp dir obj;
  lp

let prop_simplex_matches_bruteforce =
  QCheck2.Test.make ~name:"simplex matches brute-force vertex enumeration"
    ~count:300 ~print:(fun lp -> Lp_format.to_string lp)
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng -> rand_lp ~integer:false rng)
       ~shrink:(fun _ -> Seq.empty))
    (fun lp ->
      let r = Simplex.solve lp in
      match (r.Simplex.status, brute_force_lp lp) with
      | Simplex.Optimal, B_opt obj ->
        abs_float (r.Simplex.objective -. obj) < 1e-5
        && Lp.constr_violation lp r.Simplex.x < 1e-6
        && Lp.bounds_violation lp r.Simplex.x < 1e-6
      | Simplex.Infeasible, B_infeasible -> true
      | Simplex.Optimal, B_infeasible -> false
      | Simplex.Infeasible, B_opt _ -> false
      | (Simplex.Unbounded | Simplex.Iter_limit), _ ->
        (* bounded boxes: unbounded impossible; iteration limit suspicious *)
        false)

(* exhaustive integer enumeration for pure-IP instances *)
let brute_force_ip lp =
  let n = Lp.num_vars lp in
  let best = ref None in
  let x = Array.make n 0. in
  let rec go v =
    if v = n then begin
      if Lp.constr_violation lp x < 1e-6 then begin
        let obj = Lp.objective_value lp x in
        let key =
          match Lp.objective_dir lp with Lp.Minimize -> obj | Lp.Maximize -> -.obj
        in
        match !best with
        | Some k when k <= key -> ()
        | _ -> best := Some key
      end
    end
    else begin
      let lb = int_of_float (Lp.var_lb lp v) and ub = int_of_float (Lp.var_ub lp v) in
      for i = lb to ub do
        x.(v) <- float_of_int i;
        go (v + 1)
      done
    end
  in
  go 0;
  !best

let prop_bb_matches_enumeration =
  QCheck2.Test.make ~name:"branch&bound matches exhaustive integer enumeration"
    ~count:200 ~print:(fun lp -> Lp_format.to_string lp)
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng -> rand_lp ~integer:true rng)
       ~shrink:(fun _ -> Seq.empty))
    (fun lp ->
      let r = Branch_bound.solve lp in
      let brute = brute_force_ip lp in
      let key obj =
        match Lp.objective_dir lp with Lp.Minimize -> obj | Lp.Maximize -> -.obj
      in
      match (r.Branch_bound.status, r.Branch_bound.incumbent, brute) with
      | Branch_bound.Optimal, Some (obj, x), Some k ->
        abs_float (key obj -. k) < 1e-5 && Lp.validate lp x = Ok ()
      | Branch_bound.Infeasible, None, None -> true
      | Branch_bound.Optimal, Some _, None -> false
      | Branch_bound.Infeasible, None, Some _ -> false
      | _ -> false)

let prop_presolve_preserves_optimum =
  QCheck2.Test.make ~name:"presolve preserves the MILP optimum" ~count:150
    ~print:(fun lp -> Lp_format.to_string lp)
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng -> rand_lp ~integer:true rng)
       ~shrink:(fun _ -> Seq.empty))
    (fun lp ->
      let before = Branch_bound.solve lp in
      let lp' = Lp.copy lp in
      match Presolve.tighten lp' with
      | Presolve.Proven_infeasible ->
        before.Branch_bound.status = Branch_bound.Infeasible
      | Presolve.Tightened _ -> (
        let after = Branch_bound.solve lp' in
        match (before.Branch_bound.incumbent, after.Branch_bound.incumbent) with
        | Some (o1, _), Some (o2, _) -> abs_float (o1 -. o2) < 1e-5
        | None, None -> true
        | _ -> false))

let prop_lp_format_roundtrip =
  QCheck2.Test.make ~name:"LP format write/parse round trip preserves optimum"
    ~count:150
    ~print:(fun lp -> Lp_format.to_string lp)
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng -> rand_lp ~integer:(Random.State.bool rng) rng)
       ~shrink:(fun _ -> Seq.empty))
    (fun lp ->
      match Lp_format.parse (Lp_format.to_string lp) with
      | Error msg -> QCheck2.Test.fail_report ("parse failed: " ^ msg)
      | Ok lp' ->
        Lp.num_vars lp' = Lp.num_vars lp
        && Lp.num_constrs lp' = Lp.num_constrs lp
        &&
        let r = Branch_bound.solve lp and r' = Branch_bound.solve lp' in
        (match (r.Branch_bound.incumbent, r'.Branch_bound.incumbent) with
        | Some (o1, _), Some (o2, _) -> abs_float (o1 -. o2) < 1e-5
        | None, None -> true
        | _ -> false))

(* ------------------------------------------------------------------ *)
(* Gomory cuts *)

let test_gomory_tightens_bound () =
  (* max x + y st 2x + 2y <= 3, 0 <= x,y <= 5 integer: LP bound 1.5,
     GMI at the root should close it to the IP optimum 1 *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~kind:Lp.Integer ~ub:5. () in
  let y = Lp.add_var lp ~kind:Lp.Integer ~ub:5. () in
  Lp.add_constr lp [ (2., x); (2., y) ] Lp.Le 3.;
  Lp.set_objective lp Lp.Maximize [ (1., x); (1., y) ];
  let lp' = Lp.copy lp in
  let added = Gomory.add_root_cuts lp' in
  Alcotest.(check bool) "cuts added" true (added > 0);
  let r = Simplex.solve lp' in
  Alcotest.(check bool) "optimal" true (r.Simplex.status = Simplex.Optimal);
  Alcotest.(check bool) "bound tightened" true (r.Simplex.objective < 1.5 -. 1e-6)

let test_gomory_keeps_integer_points () =
  (* every integer-feasible point of the original must satisfy the cuts *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~kind:Lp.Integer ~ub:4. () in
  let y = Lp.add_var lp ~kind:Lp.Integer ~ub:4. () in
  Lp.add_constr lp [ (3., x); (5., y) ] Lp.Le 13.;
  Lp.add_constr lp [ (2., x); (-1., y) ] Lp.Ge (-2.);
  Lp.set_objective lp Lp.Maximize [ (4., x); (3., y) ];
  let lp' = Lp.copy lp in
  ignore (Gomory.add_root_cuts lp');
  for xi = 0 to 4 do
    for yi = 0 to 4 do
      let p = [| float_of_int xi; float_of_int yi |] in
      if Lp.constr_violation lp p < 1e-9 then
        Alcotest.(check bool)
          (Printf.sprintf "point (%d,%d) survives cuts" xi yi)
          true
          (Lp.constr_violation lp' p < 1e-6)
    done
  done

let prop_gomory_preserves_optimum =
  QCheck2.Test.make ~name:"branch&cut matches plain branch&bound" ~count:150
    ~print:(fun lp -> Lp_format.to_string lp)
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng -> rand_lp ~integer:true rng)
       ~shrink:(fun _ -> Seq.empty))
    (fun lp ->
      let plain = Branch_bound.solve lp in
      let cut =
        Branch_bound.solve
          ~options:{ Branch_bound.default_options with gomory_rounds = 3 }
          lp
      in
      match (plain.Branch_bound.incumbent, cut.Branch_bound.incumbent) with
      | Some (a, _), Some (b, x) ->
        abs_float (a -. b) < 1e-5 && Lp.validate ~eps:1e-5 lp x = Ok ()
      | None, None -> true
      | _ -> false)

let test_lp_format_writer_shape () =
  let lp = Lp.create ~name:"demo" () in
  let x = Lp.add_var lp ~name:"x one" ~kind:Lp.Binary () in
  let y = Lp.add_var lp ~name:"y" ~kind:Lp.Integer ~ub:7. () in
  Lp.add_constr lp ~name:"cap" [ (2., x); (3., y) ] Lp.Le 12.;
  Lp.set_objective lp Lp.Maximize [ (1., x); (2., y) ];
  let s = Lp_format.to_string lp in
  Alcotest.(check bool) "has Maximize" true (contains s "Maximize");
  Alcotest.(check bool) "sanitized name" true (contains s "x_one")

let test_mps_writer_shape () =
  let lp = Lp.create ~name:"demo" () in
  let x = Lp.add_var lp ~name:"x" ~kind:Lp.Binary () in
  Lp.add_constr lp [ (1., x) ] Lp.Le 1.;
  Lp.set_objective lp Lp.Minimize [ (1., x) ];
  let s = Mps.to_string lp in
  Alcotest.(check bool) "has ROWS" true (contains s "ROWS");
  Alcotest.(check bool) "has marker" true (contains s "INTORG")

(* ------------------------------------------------------------------ *)
(* Sparse LP core fixtures: cycling, warm-start fallback, refactor
   triggers, ill-conditioned bases *)

module R = Rfloor_metrics.Registry

let counter reg name = R.Counter.value (R.counter reg name)

(* Beale's classic cycling LP: Dantzig-style pricing with fixed
   tie-breaking cycles forever on it; the anti-cycling path (degenerate
   streak -> Bland's rule) must terminate at the optimum -1/20. *)
let test_simplex_beale_cycling () =
  let lp = Lp.create ~name:"beale" () in
  let x1 = Lp.add_var lp ~name:"x1" () in
  let x2 = Lp.add_var lp ~name:"x2" () in
  let x3 = Lp.add_var lp ~name:"x3" () in
  let x4 = Lp.add_var lp ~name:"x4" () in
  Lp.add_constr lp [ (0.25, x1); (-60., x2); (-1. /. 25., x3); (9., x4) ] Lp.Le 0.;
  Lp.add_constr lp [ (0.5, x1); (-90., x2); (-1. /. 50., x3); (3., x4) ] Lp.Le 0.;
  Lp.add_constr lp [ (1., x3) ] Lp.Le 1.;
  Lp.set_objective lp Lp.Minimize
    [ (-0.75, x1); (150., x2); (-1. /. 50., x3); (6., x4) ];
  let r = Simplex.solve lp in
  Alcotest.(check bool) "terminates at optimum" true (r.Simplex.status = Simplex.Optimal);
  check_float "beale objective" (-0.05) r.Simplex.objective

(* A parent basis recorded with x fixed at 0 carries a negative reduced
   cost for x at its lower bound; re-solving with x freed makes that
   basis dual infeasible, so the warm path must decline and the cold
   fallback must still produce the right answer. *)
let test_warm_dual_infeasible_falls_back () =
  let lp = Lp.create ~name:"warm_fallback" () in
  let x = Lp.add_var lp ~name:"x" ~lb:0. ~ub:5. () in
  Lp.add_constr lp [ (1., x) ] Lp.Le 7.;
  Lp.set_objective lp Lp.Maximize [ (1., x) ];
  let core = Simplex.Core.of_lp lp in
  let reg = R.create () in
  let instr = Simplex.instruments reg in
  (* parent: x fixed at 0 (think "branched down to zero") *)
  let fixed = [| 0. |] in
  let parent_r, parent_basis =
    Simplex.Core.solve_warm ~lb:fixed ~ub:fixed ~instr core
  in
  Alcotest.(check bool) "parent optimal" true
    (parent_r.Simplex.status = Simplex.Optimal);
  let parent = Option.get parent_basis in
  let warm_before = counter reg "rfloor_lp_warm_starts_total" in
  (* child widens the bounds back out: dual infeasible warm start *)
  let r, _ =
    Simplex.Core.solve_warm ~lb:[| 0. |] ~ub:[| 5. |] ~warm:parent ~instr core
  in
  Alcotest.(check bool) "fallback solved" true (r.Simplex.status = Simplex.Optimal);
  check_float "fallback objective" 5. r.Simplex.objective;
  Alcotest.(check int) "warm counter untouched by the fallback" warm_before
    (counter reg "rfloor_lp_warm_starts_total");
  (* positive control: a bound tightening keeps the parent basis dual
     feasible, and the dual path must serve it warm *)
  let root_r, root_basis = Simplex.Core.solve_warm ~instr core in
  Alcotest.(check bool) "root optimal" true (root_r.Simplex.status = Simplex.Optimal);
  let root = Option.get root_basis in
  let warm_before = counter reg "rfloor_lp_warm_starts_total" in
  let r, _ =
    Simplex.Core.solve_warm ~lb:[| 0. |] ~ub:[| 3. |] ~warm:root ~instr core
  in
  Alcotest.(check bool) "warm child optimal" true (r.Simplex.status = Simplex.Optimal);
  check_float "warm child objective" 3. r.Simplex.objective;
  Alcotest.(check int) "warm counter incremented" (warm_before + 1)
    (counter reg "rfloor_lp_warm_starts_total")

(* A solve that pivots past the eta cap must refactorize mid-solve:
   more than 64 product-form updates forces at least one periodic
   rebuild on top of the initial and final factorizations.  The
   instance is a dense seeded LP big enough that devex still needs
   >64 basis changes; the objective is pinned against the frozen dense
   reference solver. *)
let test_refactor_trigger () =
  let prng = Generators.Prng.make (Generators.base_seed () + 31337) in
  let lp = Lp.create ~name:"refactor_mill" () in
  let n = 120 in
  let xs =
    Array.init n (fun i ->
        Lp.add_var lp ~name:(Printf.sprintf "x%d" i) ~lb:0. ~ub:10. ())
  in
  for r = 0 to n - 1 do
    let terms = ref [] in
    Array.iteri
      (fun j x ->
        if j = r || Generators.Prng.int prng 100 < 35 then
          terms := (float_of_int (Generators.Prng.range prng 1 9), x) :: !terms)
      xs;
    Lp.add_constr lp !terms Lp.Le (float_of_int (Generators.Prng.range prng 20 60))
  done;
  Lp.set_objective lp Lp.Maximize
    (Array.to_list
       (Array.map
          (fun x -> (float_of_int (Generators.Prng.range prng 1 9), x))
          xs));
  let reg = R.create () in
  let r = Simplex.solve ~metrics:reg lp in
  Alcotest.(check bool) "mill optimal" true (r.Simplex.status = Simplex.Optimal);
  let reference = Reference_simplex.solve lp in
  Alcotest.(check bool) "reference optimal" true
    (reference.Reference_simplex.status = Reference_simplex.Optimal);
  check_float "objective matches dense reference"
    reference.Reference_simplex.objective r.Simplex.objective;
  let ft = counter reg "rfloor_lp_ft_updates_total" in
  let factors = counter reg "rfloor_lp_factorizations_total" in
  Alcotest.(check bool)
    (Printf.sprintf "enough pivots to cross the eta cap (%d updates)" ft)
    true (ft > 64);
  (* initial + at least one periodic + final *)
  Alcotest.(check bool)
    (Printf.sprintf "periodic refactorization happened (%d factors)" factors)
    true (factors >= 3)

(* Ill-conditioned (Hilbert-like) constraint rows: the sparse LU with
   partial pivoting and stability-triggered refactorization must still
   agree with the dense reference. *)
let test_ill_conditioned_basis () =
  let lp = Lp.create ~name:"hilbert" () in
  let n = 8 in
  let xs =
    Array.init n (fun i ->
        Lp.add_var lp ~name:(Printf.sprintf "h%d" i) ~lb:0. ~ub:100. ())
  in
  for r = 0 to n - 1 do
    let terms =
      Array.to_list
        (Array.mapi (fun j x -> (1. /. float_of_int (r + j + 1), x)) xs)
    in
    Lp.add_constr lp terms Lp.Le 1.
  done;
  Lp.set_objective lp Lp.Maximize
    (Array.to_list (Array.map (fun x -> (1., x)) xs));
  let r = Simplex.solve lp in
  let reference = Reference_simplex.solve lp in
  Alcotest.(check bool) "hilbert optimal" true (r.Simplex.status = Simplex.Optimal);
  Alcotest.(check bool) "reference optimal" true
    (reference.Reference_simplex.status = Reference_simplex.Optimal);
  if
    Float.abs (r.Simplex.objective -. reference.Reference_simplex.objective)
    > 1e-5 *. Float.max 1. (Float.abs reference.Reference_simplex.objective)
  then
    Alcotest.failf "hilbert objective: sparse %.9f, dense reference %.9f"
      r.Simplex.objective reference.Reference_simplex.objective

(* Regression for elapsed accounting around cooperative stops: a
   cancelled solve hands its node back to the open list, and [elapsed]
   must stay a single non-negative sample of this call's own wall
   time — never accumulate across the requeue or go negative. *)
let test_elapsed_monotone_on_stops () =
  let lp = Generators.hard_knapsack ~seed:(Generators.base_seed ()) in
  let check what (r : Branch_bound.result) outer =
    if r.Branch_bound.elapsed < 0. then
      Alcotest.failf "%s: negative elapsed %g" what r.Branch_bound.elapsed;
    if r.Branch_bound.elapsed > outer +. 0.25 then
      Alcotest.failf "%s: elapsed %g exceeds the call's own wall time %g"
        what r.Branch_bound.elapsed outer
  in
  let polls = ref 0 in
  let opts =
    {
      Branch_bound.default_options with
      Branch_bound.cancel =
        (fun () ->
          incr polls;
          !polls >= 5);
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = Branch_bound.solve ~options:opts lp in
  check "sequential cancel" r (Unix.gettimeofday () -. t0);
  Alcotest.(check bool) "cancel stop reported" true
    (r.Branch_bound.stop = Some Branch_bound.Cancelled);
  let opts = { Branch_bound.default_options with node_limit = Some 3 } in
  let t0 = Unix.gettimeofday () in
  let r = Branch_bound.solve ~options:opts lp in
  check "sequential budget" r (Unix.gettimeofday () -. t0);
  let polls = Atomic.make 0 in
  let opts =
    {
      Branch_bound.default_options with
      Branch_bound.cancel = (fun () -> Atomic.fetch_and_add polls 1 >= 40);
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = Parallel_bb.solve ~options:opts ~workers:2 lp in
  check "parallel cancel" r (Unix.gettimeofday () -. t0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "milp.simplex",
      [
        Alcotest.test_case "basic max" `Quick test_simplex_basic;
        Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
        Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
        Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
        Alcotest.test_case "equalities" `Quick test_simplex_equalities;
        Alcotest.test_case "negative bounds" `Quick test_simplex_negative_bounds;
        Alcotest.test_case "free variables" `Quick test_simplex_free_vars;
        Alcotest.test_case "beale cycling fixture" `Quick test_simplex_beale_cycling;
        Alcotest.test_case "dual-infeasible warm start falls back" `Quick
          test_warm_dual_infeasible_falls_back;
        Alcotest.test_case "eta cap forces mid-solve refactorization" `Quick
          test_refactor_trigger;
        Alcotest.test_case "ill-conditioned basis stays accurate" `Quick
          test_ill_conditioned_basis;
        Alcotest.test_case "elapsed stays monotone across stops" `Quick
          test_elapsed_monotone_on_stops;
      ] );
    ( "milp.branch_bound",
      [
        Alcotest.test_case "knapsack" `Quick test_bb_knapsack;
        Alcotest.test_case "rounding matters" `Quick test_bb_integer_rounding_matters;
        Alcotest.test_case "integer infeasible" `Quick test_bb_infeasible;
        Alcotest.test_case "presolve proves infeasible" `Quick
          test_presolve_proven_infeasible;
        Alcotest.test_case "mixed integer" `Quick test_bb_mixed;
        Alcotest.test_case "warm incumbent" `Quick test_bb_warm_incumbent;
      ] );
    ( "milp.gomory",
      [
        Alcotest.test_case "tightens the root bound" `Quick test_gomory_tightens_bound;
        Alcotest.test_case "keeps integer points" `Quick test_gomory_keeps_integer_points;
      ] );
    ( "milp.io",
      [
        Alcotest.test_case "lp writer shape" `Quick test_lp_format_writer_shape;
        Alcotest.test_case "mps writer shape" `Quick test_mps_writer_shape;
      ] );
    ( "milp.properties",
      qsuite
        [
          prop_simplex_matches_bruteforce;
          prop_bb_matches_enumeration;
          prop_presolve_preserves_optimum;
          prop_lp_format_roundtrip;
          prop_gomory_preserves_optimum;
        ] );
  ]
