#!/bin/sh
# Tier-1 gate: warning-free compilation, the test suite, and a clean
# lint of the SDR case study on the FX70T device (exit 1 on any
# Error-severity RFxxx finding).
#
#   bin/lint.sh               -- the full gate
#   bin/lint.sh test-matrix   -- the test suite only, once per worker
#                                count (RFLOOR_WORKERS in {1, 2, 4})
#                                under a fixed RFLOOR_TEST_SEED, so the
#                                randomized differential suite replays
#                                the same instances on every axis
#   bin/lint.sh trace-check   -- tracing gate only: solve a pinned tiny
#                                instance with --trace jsonl, validate
#                                the capture, and check the result is
#                                byte-identical with tracing off
#   bin/lint.sh bench-smoke   -- bench-artifact gate only: run the quick
#                                (mini-device) bench set on a 2s budget,
#                                validate the artifact and require a
#                                clean self-compare.  Never touches the
#                                FX70T instances.
set -eu
cd "$(dirname "$0")/.."

# one trap for every gate's scratch space (a later trap would replace
# an earlier one and leak its directory)
tmp="" btmp=""
trap 'rm -rf "$tmp" "$btmp"' EXIT

bench_smoke() {
    echo "== bench-smoke (quick instance set, 2s budget)"
    btmp=$(mktemp -d)
    RFLOOR_BENCH_BUDGET=2 dune exec bench/main.exe -- \
        --artifact smoke --artifact-dir "$btmp" --instances quick
    dune exec bin/rfloor_cli.exe -- trace-validate --kind bench \
        "$btmp/BENCH_smoke.json"
    dune exec bin/rfloor_cli.exe -- bench-compare \
        "$btmp/BENCH_smoke.json" "$btmp/BENCH_smoke.json"
    echo "bench-smoke passed (artifact valid, self-compare clean)"
}

trace_check() {
    echo "== trace-check (tiny pinned instance, milp, 2 workers)"
    tmp=$(mktemp -d)
    cat > "$tmp/device.txt" <<'EOF'
name: lintdev
ccbccdccbc
ccbccdccbc
EOF
    cat > "$tmp/design.txt" <<'EOF'
name: lintdesign
region filter clb=2 bram=1
region decoder clb=2 dsp=1
net filter decoder 32
EOF
    dune exec bin/rfloor_cli.exe -- solve \
        --device-file "$tmp/device.txt" --design-file "$tmp/design.txt" \
        --engine milp --workers 2 --time 30 \
        --trace "jsonl:$tmp/trace.jsonl" > "$tmp/out.traced" 2> "$tmp/report.txt"
    dune exec bin/rfloor_cli.exe -- trace-validate "$tmp/trace.jsonl"
    grep -q 'phase breakdown:' "$tmp/report.txt" || {
        echo "trace-check: no phase breakdown in the traced report" >&2; exit 1; }
    dune exec bin/rfloor_cli.exe -- solve \
        --device-file "$tmp/device.txt" --design-file "$tmp/design.txt" \
        --engine milp --workers 2 --time 30 \
        --trace off > "$tmp/out.plain"
    for key in 'engine:' 'wasted frames:'; do
        a=$(grep "$key" "$tmp/out.traced" || true)
        b=$(grep "$key" "$tmp/out.plain" || true)
        if [ "$a" != "$b" ] || [ -z "$a" ]; then
            echo "trace-check: '$key' differs with tracing on/off:" >&2
            echo "  traced: $a" >&2
            echo "  plain : $b" >&2
            exit 1
        fi
    done
    echo "trace-check passed (schema valid, result identical with tracing off)"
}

if [ "${1:-}" = "trace-check" ]; then
    trace_check
    exit 0
fi

if [ "${1:-}" = "bench-smoke" ]; then
    bench_smoke
    exit 0
fi

if [ "${1:-}" = "test-matrix" ]; then
    seed="${RFLOOR_TEST_SEED:-2015}"
    for workers in 1 2 4; do
        echo "== dune runtest (RFLOOR_WORKERS=$workers RFLOOR_TEST_SEED=$seed)"
        RFLOOR_WORKERS="$workers" RFLOOR_TEST_SEED="$seed" dune runtest --force
    done
    echo "lint.sh: test matrix passed (workers 1/2/4, seed $seed)"
    exit 0
fi

echo "== dune build --profile lint @check (warnings as errors)"
dune build --profile lint @check

echo "== dune build && dune runtest"
dune build
dune runtest

echo "== rfloor_cli lint (fx70t / sdr)"
dune exec bin/rfloor_cli.exe -- lint --device fx70t --design sdr

trace_check

bench_smoke

echo "lint.sh: all gates passed"
