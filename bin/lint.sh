#!/bin/sh
# Tier-1 gate: warning-free compilation, the test suite, and a clean
# lint of the SDR case study on the FX70T device (exit 1 on any
# Error-severity RFxxx finding).
set -eu
cd "$(dirname "$0")/.."

echo "== dune build --profile lint @check (warnings as errors)"
dune build --profile lint @check

echo "== dune build && dune runtest"
dune build
dune runtest

echo "== rfloor_cli lint (fx70t / sdr)"
dune exec bin/rfloor_cli.exe -- lint --device fx70t --design sdr

echo "lint.sh: all gates passed"
