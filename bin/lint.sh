#!/bin/sh
# Tier-1 gate: warning-free compilation, the test suite, and a clean
# lint of the SDR case study on the FX70T device (exit 1 on any
# Error-severity RFxxx finding).
#
#   bin/lint.sh               -- the full gate
#   bin/lint.sh test-matrix   -- the test suite only, once per worker
#                                count (RFLOOR_WORKERS in {1, 2, 4})
#                                under a fixed RFLOOR_TEST_SEED, so the
#                                randomized differential suite replays
#                                the same instances on every axis
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "test-matrix" ]; then
    seed="${RFLOOR_TEST_SEED:-2015}"
    for workers in 1 2 4; do
        echo "== dune runtest (RFLOOR_WORKERS=$workers RFLOOR_TEST_SEED=$seed)"
        RFLOOR_WORKERS="$workers" RFLOOR_TEST_SEED="$seed" dune runtest --force
    done
    echo "lint.sh: test matrix passed (workers 1/2/4, seed $seed)"
    exit 0
fi

echo "== dune build --profile lint @check (warnings as errors)"
dune build --profile lint @check

echo "== dune build && dune runtest"
dune build
dune runtest

echo "== rfloor_cli lint (fx70t / sdr)"
dune exec bin/rfloor_cli.exe -- lint --device fx70t --design sdr

echo "lint.sh: all gates passed"
