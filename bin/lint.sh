#!/bin/sh
# Tier-1 gate: warning-free compilation, the test suite, and a clean
# lint of the SDR case study on the FX70T device (exit 1 on any
# Error-severity RFxxx finding).
#
#   bin/lint.sh               -- the full gate
#   bin/lint.sh test-matrix   -- the test suite only, once per worker
#                                count (RFLOOR_WORKERS in {1, 2, 4})
#                                under a fixed RFLOOR_TEST_SEED, so the
#                                randomized differential suite replays
#                                the same instances on every axis
#   bin/lint.sh trace-check   -- tracing gate only: solve a pinned tiny
#                                instance with --trace jsonl, validate
#                                the capture, and check the result is
#                                byte-identical with tracing off
#   bin/lint.sh bench-smoke   -- bench-artifact gate only: run the quick
#                                (mini-device) bench set on a 2s budget,
#                                validate the artifact and require a
#                                clean self-compare.  Never touches the
#                                FX70T instances.
#   bin/lint.sh serve-smoke   -- service gate only: script an NDJSON
#                                session against tiny/mini devices and
#                                assert one canonical-key cache hit
#                                (zero nodes), one cooperative cancel,
#                                and a schema-valid metrics snapshot.
#   bin/lint.sh simplex-check -- LP-core gate only: the sparse-LU
#                                property suite (L·U=P·B, ftran/btran,
#                                update-vs-refactor), the simplex
#                                fixtures, and a 50-instance mini
#                                differential (sparse vs frozen dense
#                                reference, warm vs cold) at the pinned
#                                seed.
#   bin/lint.sh concheck      -- concurrency gate only: exhaust the
#                                interleaving scenarios and race-detect
#                                an instrumented 2-worker solve on the
#                                pinned seed, lint lib/ and bin/ for raw
#                                sync primitives (RF401..RF403), and
#                                trace-verify a fresh jsonl solve plus
#                                two seeded-defect fixtures that must
#                                be rejected.
#   bin/lint.sh portfolio-check -- strategy/portfolio gate only: the
#                                Strategy grammar suite (round-trips,
#                                RF501/RF502), a 25-instance cuts-on/off
#                                differential at the pinned seed, the
#                                race-cancellation tests (losers observe
#                                the cooperative stop), a raw-sync lint
#                                of lib/portfolio, and a CLI solve
#                                through --strategy portfolio:[...].
#   bin/lint.sh obsv-check    -- operational-plane gate only: boot a
#                                live serve --telemetry 0 session,
#                                scrape /metrics, /healthz and /statusz,
#                                stream a progress-enabled job (>= 2
#                                frames, result last, the in-flight job
#                                visible in /statusz), reject a seeded
#                                malformed HTTP request (RF602, never a
#                                crash), and round-trip a captured
#                                trace through trace-export /
#                                trace-validate / trace-report.
#   bin/lint.sh online-check  -- online-floorplanning gate only: replay
#                                the pinned seeded 100-event workload
#                                locally with every audit on (each move
#                                through the relocation filter,
#                                non-moving frames byte-identical, MER
#                                set equal to a recompute), push the
#                                same trace as rfloor-service/1 frames
#                                through the live service (>= 1 defrag
#                                episode, zero error frames, final
#                                layout matching the local replay), and
#                                reject a seeded duplicate-add fixture
#                                (RF702).
set -eu
cd "$(dirname "$0")/.."

# one trap for every gate's scratch space (a later trap would replace
# an earlier one and leak its directory); obsv-check also parks its
# serve PID here so a failing assertion never leaks the process
tmp="" btmp="" stmp="" ctmp="" ptmp="" otmp="" ltmp="" osrv=""
trap '{ [ -n "$osrv" ] && kill "$osrv" 2>/dev/null; rm -rf "$tmp" "$btmp" "$stmp" "$ctmp" "$ptmp" "$otmp" "$ltmp"; } || true' EXIT

bench_smoke() {
    echo "== bench-smoke (quick instance set, 2s budget)"
    btmp=$(mktemp -d)
    RFLOOR_BENCH_BUDGET=2 dune exec bench/main.exe -- \
        --artifact smoke --artifact-dir "$btmp" --instances quick
    dune exec bin/rfloor_cli.exe -- trace-validate --kind bench \
        "$btmp/BENCH_smoke.json"
    dune exec bin/rfloor_cli.exe -- bench-compare \
        "$btmp/BENCH_smoke.json" "$btmp/BENCH_smoke.json"
    echo "bench-smoke passed (artifact valid, self-compare clean)"
}

trace_check() {
    echo "== trace-check (tiny pinned instance, milp, 2 workers)"
    tmp=$(mktemp -d)
    cat > "$tmp/device.txt" <<'EOF'
name: lintdev
ccbccdccbc
ccbccdccbc
EOF
    cat > "$tmp/design.txt" <<'EOF'
name: lintdesign
region filter clb=2 bram=1
region decoder clb=2 dsp=1
net filter decoder 32
EOF
    dune exec bin/rfloor_cli.exe -- solve \
        --device-file "$tmp/device.txt" --design-file "$tmp/design.txt" \
        --engine milp --workers 2 --time 30 \
        --trace "jsonl:$tmp/trace.jsonl" > "$tmp/out.traced" 2> "$tmp/report.txt"
    dune exec bin/rfloor_cli.exe -- trace-validate "$tmp/trace.jsonl"
    grep -q 'phase breakdown:' "$tmp/report.txt" || {
        echo "trace-check: no phase breakdown in the traced report" >&2; exit 1; }
    dune exec bin/rfloor_cli.exe -- solve \
        --device-file "$tmp/device.txt" --design-file "$tmp/design.txt" \
        --engine milp --workers 2 --time 30 \
        --trace off > "$tmp/out.plain"
    for key in 'engine:' 'wasted frames:'; do
        a=$(grep "$key" "$tmp/out.traced" || true)
        b=$(grep "$key" "$tmp/out.plain" || true)
        if [ "$a" != "$b" ] || [ -z "$a" ]; then
            echo "trace-check: '$key' differs with tracing on/off:" >&2
            echo "  traced: $a" >&2
            echo "  plain : $b" >&2
            exit 1
        fi
    done
    echo "trace-check passed (schema valid, result identical with tracing off)"
}

serve_smoke() {
    echo "== serve-smoke (scripted NDJSON session: cache hit + cancel)"
    stmp=$(mktemp -d)
    # a: lexicographic solve of a tiny inline device (optimal in well
    #    under a second); b: the identical request, which must be an
    #    exact canonical-key hit; c: a slower relocation job that gets
    #    cancelled while queued (one service worker).
    cat > "$stmp/session.ndjson" <<'EOF'
{"op":"solve","id":"a","device_text":"name: tiny\nccbccd\nccbccd\nccbccd\n","design_text":"name: toy\nregion filter clb=2 bram=1\nregion decoder clb=2 dsp=1\nnet filter decoder 32\n","time":30}
{"op":"solve","id":"b","device_text":"name: tiny\nccbccd\nccbccd\nccbccd\n","design_text":"name: toy\nregion filter clb=2 bram=1\nregion decoder clb=2 dsp=1\nnet filter decoder 32\n","time":30}
{"op":"solve","id":"c","device":"mini","design_text":"name: toy\nregion filter clb=2 bram=1\nregion decoder clb=2 dsp=1\nnet filter decoder 32\nreloc filter 1 hard\n","time":60}
{"op":"cancel","id":"c"}
{"op":"stats"}
{"op":"shutdown"}
EOF
    dune exec bin/rfloor_cli.exe -- batch "$stmp/session.ndjson" \
        --workers 1 --metrics "json:$stmp/metrics.json" > "$stmp/out.ndjson"
    b_line=$(grep '"id":"b"' "$stmp/out.ndjson")
    case "$b_line" in
        *'"source":"cache"'*) ;;
        *) echo "serve-smoke: request b was not a cache hit:" >&2
           echo "  $b_line" >&2; exit 1;;
    esac
    case "$b_line" in
        *'"nodes":0'*) ;;
        *) echo "serve-smoke: cache hit b ran branch-and-bound nodes:" >&2
           echo "  $b_line" >&2; exit 1;;
    esac
    c_line=$(grep '"id":"c"' "$stmp/out.ndjson" | grep '"type":"result"')
    case "$c_line" in
        *'"outcome":"stopped"'*) ;;
        *) echo "serve-smoke: request c was not cancelled:" >&2
           echo "  $c_line" >&2; exit 1;;
    esac
    grep -q '"type":"ack","op":"cancel","id":"c","ok":true' "$stmp/out.ndjson" || {
        echo "serve-smoke: cancel of c was not acknowledged" >&2; exit 1; }
    grep '"type":"stats"' "$stmp/out.ndjson" | grep -q '"cache_hits":1' || {
        echo "serve-smoke: stats frame does not count the cache hit" >&2; exit 1; }
    dune exec bin/rfloor_cli.exe -- trace-validate --kind metrics \
        "$stmp/metrics.json"
    echo "serve-smoke passed (cache hit with 0 nodes, cancel acked, metrics valid)"
}

concheck() {
    echo "== concheck (interleavings, race detector, source lint, trace invariants)"
    ctmp=$(mktemp -d)
    # 1. scenario explorer + detector self-test + recorded 2-worker solve
    dune exec bin/rfloor_cli.exe -- concheck --seed "${RFLOOR_TEST_SEED:-2015}"
    # 2. raw Mutex/Condition/Atomic outside lib/sync
    dune exec bin/rfloor_cli.exe -- lint --sources lib --sources bin
    # 3. causal invariants of a fresh traced solve
    cat > "$ctmp/device.txt" <<'EOF'
name: concheckdev
ccbccdccbc
ccbccdccbc
EOF
    cat > "$ctmp/design.txt" <<'EOF'
name: concheckdesign
region filter clb=2 bram=1
region decoder clb=2 dsp=1
net filter decoder 32
EOF
    dune exec bin/rfloor_cli.exe -- solve \
        --device-file "$ctmp/device.txt" --design-file "$ctmp/design.txt" \
        --engine milp --workers 2 --time 30 \
        --trace "jsonl:$ctmp/trace.jsonl" > /dev/null
    dune exec bin/rfloor_cli.exe -- trace-verify "$ctmp/trace.jsonl"
    # 4. the verifier must still have teeth: seeded defects must fail
    cat > "$ctmp/bad_span.jsonl" <<'EOF'
{"t":0.0,"w":0,"ev":"span_start","phase":"build"}
{"t":0.1,"w":0,"ev":"span_start","phase":"root_lp"}
{"t":0.2,"w":0,"ev":"span_end","phase":"build"}
{"t":0.3,"w":0,"ev":"span_end","phase":"root_lp"}
EOF
    if dune exec bin/rfloor_cli.exe -- trace-verify "$ctmp/bad_span.jsonl" \
        > /dev/null 2>&1; then
        echo "concheck: out-of-order span fixture was accepted (RF431 lost)" >&2
        exit 1
    fi
    cat > "$ctmp/bad_incumbent.jsonl" <<'EOF'
{"t":0.0,"w":0,"ev":"span_start","phase":"branch_bound"}
{"t":0.1,"w":0,"ev":"incumbent","obj":5.0,"node":1}
{"t":0.2,"w":0,"ev":"incumbent","obj":9.0,"node":2}
{"t":0.3,"w":0,"ev":"incumbent","obj":4.0,"node":3}
{"t":0.4,"w":0,"ev":"span_end","phase":"branch_bound"}
EOF
    if dune exec bin/rfloor_cli.exe -- trace-verify "$ctmp/bad_incumbent.jsonl" \
        > /dev/null 2>&1; then
        echo "concheck: non-monotone incumbent fixture was accepted (RF433 lost)" >&2
        exit 1
    fi
    echo "concheck passed (schedules exhausted, solve race-free, sources clean, invariants enforced)"
}

simplex_check() {
    echo "== simplex-check (LU properties, fixtures, 50-instance mini differential)"
    seed="${RFLOOR_TEST_SEED:-2015}"
    RFLOOR_TEST_SEED="$seed" dune exec test/test_main.exe -- test simplex_core.lu
    RFLOOR_TEST_SEED="$seed" dune exec test/test_main.exe -- test milp.simplex
    # cases 3-5 of the differential suite are the LP-core trio (sparse
    # vs dense reference, warm child re-solves, cold-vs-warm B&B);
    # RFLOOR_SIMPLEX_DIFF=50 shrinks them to a smoke-sized sample
    RFLOOR_TEST_SEED="$seed" RFLOOR_SIMPLEX_DIFF=50 \
        dune exec test/test_main.exe -- test differential 3-5
    echo "simplex-check passed (properties, fixtures, mini differential at seed $seed)"
}

portfolio_check() {
    echo "== portfolio-check (strategy grammar, cut differential, race cancellation)"
    seed="${RFLOOR_TEST_SEED:-2015}"
    # 1. Strategy round-trips, RF502 parse errors, deprecated sugar,
    #    RF501 member-budget clamp
    RFLOOR_TEST_SEED="$seed" dune exec test/test_main.exe -- \
        test portfolio.strategy
    # 2. the symmetry/packing cut families never change a proved
    #    stage-1 verdict (25-instance smoke subset; the default suite
    #    runs 200)
    RFLOOR_TEST_SEED="$seed" RFLOOR_CUTS_DIFF=25 \
        dune exec test/test_main.exe -- test portfolio.cuts
    # 3. cancellation protocol: racing losers observe the cooperative
    #    stop (cases 1-2; case 0 is the slow vs-sequential differential
    #    that dune runtest covers)
    RFLOOR_TEST_SEED="$seed" dune exec test/test_main.exe -- \
        test portfolio.race 1-2
    # 4. no raw Mutex/Condition/Atomic in the race implementation
    dune exec bin/rfloor_cli.exe -- lint --sources lib/portfolio
    # 5. a 2-member portfolio solves the pinned tiny instance from the
    #    CLI and reports through the shared printer
    ptmp=$(mktemp -d)
    cat > "$ptmp/device.txt" <<'EOF'
name: portfoliodev
ccbccdccbc
ccbccdccbc
EOF
    cat > "$ptmp/design.txt" <<'EOF'
name: portfoliodesign
region filter clb=2 bram=1
region decoder clb=2 dsp=1
net filter decoder 32
EOF
    dune exec bin/rfloor_cli.exe -- solve \
        --device-file "$ptmp/device.txt" --design-file "$ptmp/design.txt" \
        --strategy 'portfolio:[milp:2,combinatorial]' --time 30 \
        > "$ptmp/out.txt"
    grep -q 'wasted frames:' "$ptmp/out.txt" || {
        echo "portfolio-check: CLI portfolio solve found no plan" >&2; exit 1; }
    grep -q 'portfolio' "$ptmp/out.txt" || {
        echo "portfolio-check: CLI output does not name the strategy" >&2; exit 1; }
    echo "portfolio-check passed (grammar, differential, cancellation, CLI race)"
}

obsv_check() {
    echo "== obsv-check (telemetry endpoint, progress stream, perfetto export)"
    otmp=$(mktemp -d)
    # a 3x14 device and a 4-region chained design: enough
    # branch-and-bound nodes that a 2.5 s budget streams several
    # progress frames, still seconds end to end
    cat > "$otmp/device.txt" <<'EOF'
name: obsvdev
ccbccdccbcccbc
ccbccdccbcccbc
ccbccdccbcccbc
EOF
    cat > "$otmp/design.txt" <<'EOF'
name: obsvdesign
region filter clb=3 bram=1
region decoder clb=3 dsp=1
region mixer clb=2 bram=1
region sink clb=2
net filter decoder 32
net decoder mixer 16
net mixer sink 8
EOF
    req='{"op":"solve","id":"p1","device_text":"name: obsvdev\nccbccdccbcccbc\nccbccdccbcccbc\nccbccdccbcccbc\n","design_text":"name: obsvdesign\nregion filter clb=3 bram=1\nregion decoder clb=3 dsp=1\nregion mixer clb=2 bram=1\nregion sink clb=2\nnet filter decoder 32\nnet decoder mixer 16\nnet mixer sink 8\n","time":2.5,"progress":{"interval_s":0.3}}'
    # 1. a live serve session: requests arrive through a fifo held open
    #    on fd 9 so the session outlives each printf
    mkfifo "$otmp/in"
    dune exec bin/rfloor_cli.exe -- serve --workers 1 --telemetry 0 \
        < "$otmp/in" > "$otmp/out.ndjson" 2> "$otmp/err.log" &
    osrv=$!
    exec 9> "$otmp/in"
    port=""
    i=0
    while [ $i -lt 100 ]; do
        port=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$otmp/err.log")
        [ -n "$port" ] && break
        i=$((i + 1)); sleep 0.1
    done
    [ -n "$port" ] || {
        echo "obsv-check: telemetry port never announced" >&2; exit 1; }
    # all three endpoints answer before any job exists
    h=$(dune exec bin/rfloor_cli.exe -- scrape --port "$port" /healthz)
    [ "$h" = "ok" ] || {
        echo "obsv-check: /healthz said '$h'" >&2; exit 1; }
    dune exec bin/rfloor_cli.exe -- scrape --port "$port" /metrics \
        > "$otmp/metrics.txt"
    grep -q '^rfloor_build_info{' "$otmp/metrics.txt" || {
        echo "obsv-check: /metrics lacks rfloor_build_info" >&2; exit 1; }
    grep -q '^rfloor_uptime_seconds ' "$otmp/metrics.txt" || {
        echo "obsv-check: /metrics lacks rfloor_uptime_seconds" >&2; exit 1; }
    dune exec bin/rfloor_cli.exe -- scrape --port "$port" /statusz \
        | grep -q '"v":"rfloor-statusz/1"' || {
        echo "obsv-check: /statusz lacks the rfloor-statusz/1 tag" >&2; exit 1; }
    # a progress-streamed job; /statusz must list it while in flight
    printf '%s\n' "$req" >&9
    seen=""
    i=0
    while [ $i -lt 50 ]; do
        if dune exec bin/rfloor_cli.exe -- scrape --port "$port" /statusz \
            | grep -q '"id":"p1"'; then
            seen=yes; break
        fi
        grep '"id":"p1"' "$otmp/out.ndjson" 2>/dev/null \
            | grep -q '"type":"result"' && break
        i=$((i + 1)); sleep 0.2
    done
    [ -n "$seen" ] || {
        echo "obsv-check: /statusz never listed the in-flight job p1" >&2
        exit 1; }
    i=0
    while [ $i -lt 300 ]; do
        grep '"id":"p1"' "$otmp/out.ndjson" 2>/dev/null \
            | grep -q '"type":"result"' && break
        i=$((i + 1)); sleep 0.1
    done
    grep '"id":"p1"' "$otmp/out.ndjson" | grep -q '"type":"result"' || {
        echo "obsv-check: job p1 produced no result frame" >&2; exit 1; }
    nprog=$(grep '"id":"p1"' "$otmp/out.ndjson" \
        | grep -c '"type":"progress"' || true)
    [ "$nprog" -ge 2 ] || {
        echo "obsv-check: expected >= 2 progress frames, saw $nprog" >&2
        exit 1; }
    last=$(grep '"id":"p1"' "$otmp/out.ndjson" | tail -1)
    case "$last" in
        *'"type":"result"'*) ;;
        *) echo "obsv-check: a progress frame followed the result:" >&2
           echo "  $last" >&2; exit 1;;
    esac
    # the seeded malformed request: 400 + RF602, and the server lives on
    raw=$(dune exec bin/rfloor_cli.exe -- scrape --port "$port" \
        --raw 'NONSENSE REQUEST')
    case "$raw" in
        *'400 Bad Request'*) ;;
        *) echo "obsv-check: malformed request was not answered 400" >&2
           exit 1;;
    esac
    case "$raw" in
        *RF602*) ;;
        *) echo "obsv-check: 400 body does not carry RF602" >&2; exit 1;;
    esac
    h=$(dune exec bin/rfloor_cli.exe -- scrape --port "$port" /healthz)
    [ "$h" = "ok" ] || {
        echo "obsv-check: server died after the malformed request" >&2
        exit 1; }
    dune exec bin/rfloor_cli.exe -- scrape --port "$port" /metrics \
        | grep -q '^rfloor_telemetry_bad_requests_total [1-9]' || {
        echo "obsv-check: bad request not counted in /metrics" >&2; exit 1; }
    printf '{"op":"shutdown"}\n' >&9
    exec 9>&-
    wait "$osrv"
    osrv=""
    # 2. timeline export: the same instance through --trace, then
    #    JSONL -> perfetto, a direct perfetto capture, and the report
    dune exec bin/rfloor_cli.exe -- solve \
        --device-file "$otmp/device.txt" --design-file "$otmp/design.txt" \
        --engine milp --workers 2 --time 2.5 \
        --trace "jsonl:$otmp/trace.jsonl" > /dev/null
    dune exec bin/rfloor_cli.exe -- trace-export "$otmp/trace.jsonl" \
        -o "$otmp/trace.perfetto.json"
    dune exec bin/rfloor_cli.exe -- trace-validate --kind perfetto \
        "$otmp/trace.perfetto.json"
    dune exec bin/rfloor_cli.exe -- trace-validate "$otmp/trace.perfetto.json"
    dune exec bin/rfloor_cli.exe -- trace-report "$otmp/trace.jsonl" \
        --critical-path > "$otmp/report.txt"
    grep -q 'phase dominance' "$otmp/report.txt" || {
        echo "obsv-check: trace-report lacks the dominance table" >&2; exit 1; }
    grep -q 'critical path' "$otmp/report.txt" || {
        echo "obsv-check: trace-report lacks the critical path" >&2; exit 1; }
    dune exec bin/rfloor_cli.exe -- solve \
        --device-file "$otmp/device.txt" --design-file "$otmp/design.txt" \
        --engine milp --workers 2 --time 2.5 \
        --trace "perfetto:$otmp/direct.json" > /dev/null
    dune exec bin/rfloor_cli.exe -- trace-validate "$otmp/direct.json"
    echo "obsv-check passed (endpoints live under a real job, >= $nprog progress frames, RF602 survived, perfetto valid)"
}

online_check() {
    echo "== online-check (workload replay, live service, defect fixture)"
    ltmp=$(mktemp -d)
    seed="${RFLOOR_TEST_SEED:-2015}"
    # 1. local replay with every audit on: each move passes the
    #    bitstream relocation filter, non-moving modules' frames come
    #    through byte-identical, and the incremental free-rectangle set
    #    equals a from-scratch recompute after every event
    dune exec bin/rfloor_cli.exe -- online --device mini --seed "$seed" \
        --events 100 > "$ltmp/replay.txt"
    grep -q '^violations: 0$' "$ltmp/replay.txt" || {
        echo "online-check: local replay reported audit violations:" >&2
        cat "$ltmp/replay.txt" >&2; exit 1; }
    episodes=$(sed -n 's/^defrag episodes: \([0-9]*\)$/\1/p' "$ltmp/replay.txt")
    [ -n "$episodes" ] && [ "$episodes" -ge 1 ] || {
        echo "online-check: pinned trace produced no defrag episode" >&2
        exit 1; }
    # 2. the same trace as rfloor-service/1 frames through the live
    #    service: no error frames, >= 1 defragmentation episode, and
    #    the final layout frame matching the local replay's state
    dune exec bin/rfloor_cli.exe -- online --device mini --seed "$seed" \
        --events 100 --emit "$ltmp/online.ndjson"
    dune exec bin/rfloor_cli.exe -- batch "$ltmp/online.ndjson" \
        --metrics "json:$ltmp/metrics.json" > "$ltmp/out.ndjson" 2> /dev/null
    if grep -q '"outcome":"error"' "$ltmp/out.ndjson"; then
        echo "online-check: service replay produced error frames:" >&2
        grep '"outcome":"error"' "$ltmp/out.ndjson" | head -3 >&2; exit 1
    fi
    svc_episodes=$(grep -c '"outcome":"defrag"\|"outcome":"fallback"' \
        "$ltmp/out.ndjson" || true)
    [ "$svc_episodes" -ge 1 ] || {
        echo "online-check: no defrag episode through the live service" >&2
        exit 1; }
    final=$(grep '"op":"layout"' "$ltmp/out.ndjson" | tail -1)
    occ=$(sed -n 's/^final occupancy: \([0-9.]*\).*/\1/p' "$ltmp/replay.txt")
    case "$final" in
        *'"occupancy":'"$occ"*) ;;
        *) echo "online-check: service final occupancy differs from the" >&2
           echo "  local replay ($occ): $final" >&2; exit 1;;
    esac
    dune exec bin/rfloor_cli.exe -- trace-validate --kind metrics \
        "$ltmp/metrics.json"
    grep -q 'rfloor_online_moves_executed_total' "$ltmp/metrics.json" || {
        echo "online-check: metrics lack the rfloor_online_* family" >&2
        exit 1; }
    # 3. seeded-defect fixture: a duplicate add must be refused (RF702)
    #    and an op before any layout must be refused (RF703)
    cat > "$ltmp/defect.ndjson" <<'EOF'
{"op":"add","name":"early","demand":{"clb":2}}
{"op":"layout","device":"mini"}
{"op":"add","name":"a","demand":{"clb":2}}
{"op":"add","name":"a","demand":{"clb":2}}
{"op":"shutdown"}
EOF
    dune exec bin/rfloor_cli.exe -- batch "$ltmp/defect.ndjson" \
        > "$ltmp/defect.out" 2> /dev/null
    grep -q '"code":"RF703"' "$ltmp/defect.out" || {
        echo "online-check: add before layout was not refused (RF703 lost)" >&2
        exit 1; }
    grep -q '"code":"RF702"' "$ltmp/defect.out" || {
        echo "online-check: duplicate add was accepted (RF702 lost)" >&2
        exit 1; }
    echo "online-check passed (audits clean, $svc_episodes defrag episodes through the service, defects rejected)"
}

if [ "${1:-}" = "online-check" ]; then
    dune build
    online_check
    exit 0
fi

if [ "${1:-}" = "obsv-check" ]; then
    dune build
    obsv_check
    exit 0
fi

if [ "${1:-}" = "portfolio-check" ]; then
    dune build
    portfolio_check
    exit 0
fi

if [ "${1:-}" = "simplex-check" ]; then
    dune build
    simplex_check
    exit 0
fi

if [ "${1:-}" = "concheck" ]; then
    concheck
    exit 0
fi

if [ "${1:-}" = "serve-smoke" ]; then
    serve_smoke
    exit 0
fi

if [ "${1:-}" = "trace-check" ]; then
    trace_check
    exit 0
fi

if [ "${1:-}" = "bench-smoke" ]; then
    bench_smoke
    exit 0
fi

if [ "${1:-}" = "test-matrix" ]; then
    seed="${RFLOOR_TEST_SEED:-2015}"
    for workers in 1 2 4; do
        echo "== dune runtest (RFLOOR_WORKERS=$workers RFLOOR_TEST_SEED=$seed)"
        RFLOOR_WORKERS="$workers" RFLOOR_TEST_SEED="$seed" dune runtest --force
    done
    echo "lint.sh: test matrix passed (workers 1/2/4, seed $seed)"
    exit 0
fi

echo "== dune build --profile lint @check (warnings as errors)"
dune build --profile lint @check

echo "== dune build && dune runtest"
dune build
dune runtest

echo "== rfloor_cli lint (fx70t / sdr)"
dune exec bin/rfloor_cli.exe -- lint --device fx70t --design sdr

simplex_check

portfolio_check

trace_check

bench_smoke

serve_smoke

obsv_check

online_check

concheck

echo "lint.sh: all gates passed"
