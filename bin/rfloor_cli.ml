(* Command-line interface to the relocation-aware floorplanner.

     rfloor_cli partition   --device fx70t
     rfloor_cli solve       --device fx70t --design sdr2 --strategy milp:2
     rfloor_cli solve       --device fx70t --design sdr2 \
                            --strategy portfolio:[milp:2,combinatorial]
     rfloor_cli feasibility --device fx70t --region "Carrier Recovery"
     rfloor_cli export-lp   --device mini --design-file d.txt -o model.lp
     rfloor_cli relocate    --device mini --src 1,1,2,2 --dst 1,3,2,2 *)

open Cmdliner
open Device

let builtin_devices =
  [
    ("fx70t", Devices.virtex5_fx70t);
    ("mini", Devices.mini);
    ("fig1", Devices.fig1);
    ("fig2", Devices.fig2);
    ("fig3", Devices.fig3);
  ]

let builtin_designs =
  [ ("sdr", Sdr.design); ("sdr2", Sdr.sdr2); ("sdr3", Sdr.sdr3) ]

let die fmt = Format.kasprintf (fun s -> prerr_endline s; exit 1) fmt

let pp_diag = Rfloor_diag.Diagnostic.pp

let load_device name file =
  match file with
  | Some path -> (
    match Io.load_grid path with
    | Ok g -> g
    | Error d -> die "cannot load device: %a" pp_diag d)
  | None -> (
    match List.assoc_opt name builtin_devices with
    | Some g -> g
    | None ->
      die "unknown device %s (builtins: %s; or use --device-file)" name
        (String.concat ", " (List.map fst builtin_devices)))

let load_design name file =
  match file with
  | Some path -> (
    match Io.load_spec path with
    | Ok s -> s
    | Error d -> die "cannot load design: %a" pp_diag d)
  | None -> (
    match List.assoc_opt name builtin_designs with
    | Some s -> s
    | None ->
      die "unknown design %s (builtins: %s; or use --design-file)" name
        (String.concat ", " (List.map fst builtin_designs)))

let partition_of grid =
  match Partition.columnar grid with
  | Ok p -> p
  | Error d -> die "device is not columnar-partitionable: %a" pp_diag d

(* common args *)
let device_arg =
  Arg.(value & opt string "fx70t" & info [ "device" ] ~docv:"NAME" ~doc:"Built-in device name.")

let device_file_arg =
  Arg.(value & opt (some file) None & info [ "device-file" ] ~docv:"FILE" ~doc:"Device description file.")

let design_arg =
  Arg.(value & opt string "sdr" & info [ "design" ] ~docv:"NAME" ~doc:"Built-in design name.")

let design_file_arg =
  Arg.(value & opt (some file) None & info [ "design-file" ] ~docv:"FILE" ~doc:"Design description file.")

let time_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time" ] ~docv:"SECONDS"
        ~doc:"Solver time budget (default: the library default, 60s).")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ]
        ~doc:"Log solver progress (same as --trace text).")

(* --trace off|text|jsonl:FILE|perfetto:FILE *)
type trace_dest =
  | Trace_off
  | Trace_text
  | Trace_jsonl of string
  | Trace_perfetto of string

let trace_arg =
  let prefixed prefix s =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      Some (String.sub s n (String.length s - n))
    else None
  in
  let parse = function
    | "off" -> Ok Trace_off
    | "text" -> Ok Trace_text
    | s -> (
      match (prefixed "jsonl:" s, prefixed "perfetto:" s) with
      | Some f, _ -> Ok (Trace_jsonl f)
      | _, Some f -> Ok (Trace_perfetto f)
      | None, None ->
        Error
          (`Msg ("expected off, text, jsonl:FILE or perfetto:FILE, got " ^ s)))
  in
  let print ppf = function
    | Trace_off -> Format.pp_print_string ppf "off"
    | Trace_text -> Format.pp_print_string ppf "text"
    | Trace_jsonl f -> Format.fprintf ppf "jsonl:%s" f
    | Trace_perfetto f -> Format.fprintf ppf "perfetto:%s" f
  in
  Arg.(
    value
    & opt (conv (parse, print)) Trace_off
    & info [ "trace" ] ~docv:"MODE"
        ~doc:
          "Structured solver events: $(b,off), $(b,text) (human lines on \
           stderr), $(b,jsonl:FILE) (one JSON event per line) or \
           $(b,perfetto:FILE) (Chrome/Perfetto trace-event JSON, loadable in \
           ui.perfetto.dev).")

(* The sink for a run plus a closer to flush/close any file behind it.
   -v is sugar for --trace text; with --trace jsonl/perfetto both are
   honoured.  The perfetto writer buffers events in memory and renders
   the document at close (the format is one JSON object, not a log). *)
let sink_of_trace trace verbose =
  let text = Rfloor_trace.Sink.text stderr in
  match trace with
  | Trace_jsonl path ->
    let s, close = Rfloor_trace.Sink.jsonl_file path in
    ((if verbose then Rfloor_trace.Sink.tee s text else s), close)
  | Trace_perfetto path ->
    let events = ref [] in
    let s = Rfloor_trace.Sink.of_fn (fun e -> events := e :: !events) in
    let close () =
      let oc = open_out path in
      output_string oc (Rfloor_obsv.Perfetto.of_events (List.rev !events));
      close_out oc
    in
    ((if verbose then Rfloor_trace.Sink.tee s text else s), close)
  | Trace_text -> (text, fun () -> ())
  | Trace_off ->
    ((if verbose then text else Rfloor_trace.Sink.null), fun () -> ())

let workers_arg =
  Arg.(
    value
    & opt int (Milp.Parallel_bb.workers_from_env ())
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Branch-and-bound worker domains for the MILP engines (default from \
           \\$(b,RFLOOR_WORKERS), else 1 = sequential).")

(* --metrics off|text|prom:FILE|json:FILE *)
type metrics_dest =
  | Metrics_off
  | Metrics_text
  | Metrics_prom of string
  | Metrics_json of string

let metrics_arg =
  let prefixed prefix s =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      Some (String.sub s n (String.length s - n))
    else None
  in
  let parse s =
    match s with
    | "off" -> Ok Metrics_off
    | "text" -> Ok Metrics_text
    | s -> (
      match (prefixed "prom:" s, prefixed "json:" s) with
      | Some f, _ -> Ok (Metrics_prom f)
      | _, Some f -> Ok (Metrics_json f)
      | None, None ->
        Error (`Msg ("expected off, text, prom:FILE or json:FILE, got " ^ s)))
  in
  let print ppf = function
    | Metrics_off -> Format.pp_print_string ppf "off"
    | Metrics_text -> Format.pp_print_string ppf "text"
    | Metrics_prom f -> Format.fprintf ppf "prom:%s" f
    | Metrics_json f -> Format.fprintf ppf "json:%s" f
  in
  Arg.(
    value
    & opt (conv (parse, print)) Metrics_off
    & info [ "metrics" ] ~docv:"MODE"
        ~doc:
          "Aggregate solver metrics: $(b,off), $(b,text) (Prometheus text on \
           stderr), $(b,prom:FILE) or $(b,json:FILE) (versioned JSON \
           snapshot).")

(* The registry for a run plus a finisher that exports its snapshot.
   [force] makes the registry live even with --metrics off — the
   telemetry endpoint needs something to scrape. *)
let registry_of_metrics ?(force = false) dest =
  match dest with
  | Metrics_off when not force -> (Rfloor_metrics.Registry.null, fun () -> ())
  | _ ->
    let reg = Rfloor_metrics.Registry.create () in
    Rfloor_obsv.Build_info.register reg;
    let write path text =
      let oc = open_out path in
      output_string oc text;
      close_out oc
    in
    let finish () =
      let snap = Rfloor_metrics.Registry.snapshot reg in
      match dest with
      | Metrics_off -> ()
      | Metrics_text ->
        prerr_string (Rfloor_metrics.Registry.to_prometheus snap)
      | Metrics_prom path ->
        write path (Rfloor_metrics.Registry.to_prometheus snap)
      | Metrics_json path ->
        write path (Rfloor_metrics.Registry.to_json snap ^ "\n")
    in
    (reg, finish)

(* For the engines that take a trace sink but no registry (the
   combinatorial search), fold the event stream into the registry. *)
let tee_metrics_sink reg sink =
  if Rfloor_metrics.Registry.live reg then
    Rfloor_trace.Sink.tee sink (Rfloor_metrics.Trace_sink.sink reg)
  else sink

(* ---------------- telemetry ---------------- *)

let telemetry_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "telemetry" ] ~docv:"PORT"
        ~doc:
          "Serve live telemetry over HTTP on 127.0.0.1:$(docv) for the run's \
           duration: $(b,/metrics) (Prometheus), $(b,/healthz), \
           $(b,/statusz) (rfloor-statusz/1 JSON listing in-flight jobs).  \
           Port 0 picks a free port; the bound address is printed to \
           stderr.")

let prometheus_body reg () =
  Rfloor_obsv.Build_info.touch_uptime reg;
  Rfloor_metrics.Registry.to_prometheus (Rfloor_metrics.Registry.snapshot reg)

(* Starts the server (dying on RF601), announces the bound port on
   stderr — the line scripts parse — and returns the stopper. *)
let start_telemetry ~reg ~statusz port =
  let handlers =
    { Rfloor_obsv.Http.h_metrics = prometheus_body reg; h_statusz = statusz }
  in
  match Rfloor_obsv.Http.start ~registry:reg ~port handlers with
  | Error d -> die "%a" pp_diag d
  | Ok srv ->
    Format.eprintf "telemetry: listening on 127.0.0.1:%d@."
      (Rfloor_obsv.Http.port srv);
    srv

(* ---------------- partition ---------------- *)

let partition_cmd =
  let run device device_file =
    let grid = load_device device device_file in
    print_endline (Grid.render grid);
    Format.printf "%a" Partition.pp (partition_of grid)
  in
  Cmd.v (Cmd.info "partition" ~doc:"Columnar-partition a device and print the portions.")
    Term.(const run $ device_arg $ device_file_arg)

(* ---------------- solve ---------------- *)

let engine_arg =
  let parse = function
    | ("search" | "milp" | "milp-ho" | "sa" | "tessellation") as s -> Ok s
    | s -> Error (`Msg ("unknown engine " ^ s))
  in
  Arg.(
    value
    & opt (conv (parse, Format.pp_print_string)) "search"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"One of search (exact), milp (paper's O), milp-ho (HO), sa, tessellation.")

let strategy_conv =
  let parse s =
    match Rfloor.Solver.Strategy.of_string s with
    | Ok st -> Ok st
    | Error d -> Error (`Msg (Format.asprintf "%a" Rfloor_diag.Diagnostic.pp d))
  in
  let print ppf st =
    Format.pp_print_string ppf (Rfloor.Solver.Strategy.to_string st)
  in
  Arg.conv (parse, print)

let strategy_arg =
  Arg.(
    value
    & opt (some strategy_conv) None
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Solver strategy: $(b,milp[:W]), $(b,milp-ho[:W]), \
           $(b,combinatorial), $(b,lns[:SEED]), or \
           $(b,portfolio:[s1,s2,...]) racing several members (each may \
           carry an $(b,@SECONDS) budget).  Supersedes $(b,--engine) \
           search/milp/milp-ho and $(b,--workers), which survive as sugar \
           for $(b,combinatorial) and $(b,milp:W).")

let print_plan part spec label plan wasted wirelength proven =
  Format.printf "engine: %s@." label;
  (match (wasted, wirelength) with
  | Some w, Some wl ->
    Format.printf "wasted frames: %d, wire length: %.1f%s@." w wl
      (if proven then "" else " (not proven optimal)")
  | _ -> ());
  match plan with
  | None -> Format.printf "no floorplan found@."
  | Some plan ->
    (match Floorplan.validate part spec plan with
    | Ok () -> ()
    | Error es -> List.iter (fun e -> Format.printf "INVALID: %s@." e) es);
    print_endline (Floorplan.render part plan)

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Cooperative cancellation deadline for the MILP engines: when it \
           passes, the branch-and-bound loop stops cleanly at the next node \
           and reports the incumbent found so far (distinct from $(b,--time), \
           which is the solver's own budget).")

(* Shared by the solve and feasibility commands: every strategy-driven
   run reports through the one [Solver.outcome]. *)
let print_outcome part spec strategy (r : Rfloor.Solver.outcome) ~tracing =
  (match r.Rfloor.Solver.stop with
  | Some Rfloor.Solver.Cancelled -> Format.printf "search stopped: cancelled@."
  | Some Rfloor.Solver.Budget -> Format.printf "search stopped: budget exhausted@."
  | None -> ());
  (* preflight/audit errors explain an infeasible verdict; show them
     even without -v *)
  List.iter
    (fun d -> Format.printf "%a@." Rfloor_diag.Diagnostic.pp d)
    (Rfloor_diag.Diagnostic.errors r.Rfloor.Solver.diagnostics);
  print_plan part spec
    (Rfloor.Solver.Strategy.to_string strategy)
    r.Rfloor.Solver.plan r.Rfloor.Solver.wasted r.Rfloor.Solver.wirelength
    (r.Rfloor.Solver.status = Rfloor.Solver.Optimal);
  if tracing then
    Format.eprintf "%a" Rfloor_trace.Report.pp r.Rfloor.Solver.report

let resolve_strategy ~strategy ~engine ~workers =
  match strategy with
  | Some st -> Some st
  | None -> (
    match engine with
    | "search" -> Some (Rfloor.Solver.Strategy.combinatorial ())
    | "milp" -> Some (Rfloor.Solver.Strategy.milp ~workers:(max 1 workers) ())
    | "milp-ho" ->
      Some
        (Rfloor.Solver.Strategy.milp ~workers:(max 1 workers)
           ~engine:(Rfloor.Solver.Ho None) ())
    | _ -> None (* sa / tessellation baselines *))

let solve_cmd =
  let run device device_file design design_file engine strategy time deadline
      verbose trace metrics workers telemetry =
    let grid = load_device device device_file in
    let spec = load_design design design_file in
    let part = partition_of grid in
    let sink, close_sink = sink_of_trace trace verbose in
    let tracing = not (Rfloor_trace.Sink.is_null sink) in
    let reg, finish_metrics =
      registry_of_metrics ~force:(telemetry <> None) metrics
    in
    let board = Rfloor_obsv.Progress.create_board () in
    let server =
      Option.map
        (start_telemetry ~reg ~statusz:(fun () ->
             Rfloor_obsv.Statusz.render
               ~jobs:(Rfloor_obsv.Progress.active board)
               ()))
        telemetry
    in
    Fun.protect ~finally:(fun () -> Option.iter Rfloor_obsv.Http.stop server)
    @@ fun () ->
    Fun.protect ~finally:close_sink @@ fun () ->
    Fun.protect ~finally:finish_metrics @@ fun () ->
    match resolve_strategy ~strategy ~engine ~workers with
    | Some strategy ->
      let cancel =
        match deadline with
        | None -> Milp.Branch_bound.never_cancel
        | Some d ->
          let t0 = Unix.gettimeofday () in
          fun () -> Unix.gettimeofday () -. t0 > d
      in
      (* with telemetry on, the solve registers itself so /statusz can
         list it with live incumbent/bound/gap *)
      let entry =
        if server = None then None
        else
          Some
            (Rfloor_obsv.Progress.register board ~id:design
               ~strategy:(Rfloor.Solver.Strategy.to_string strategy))
      in
      let sink =
        match entry with
        | Some e -> Rfloor_trace.Sink.tee sink (Rfloor_obsv.Progress.sink e)
        | None -> sink
      in
      let opts =
        Rfloor.Solver.Options.make ?time_limit:time ~strategy ~trace:sink
          ~metrics:reg ~cancel ()
      in
      let r = Rfloor.Solver.solve ~options:opts part spec in
      Option.iter (Rfloor_obsv.Progress.remove board) entry;
      print_outcome part spec strategy r ~tracing
    | None -> (
      match engine with
      | "sa" ->
        let r = Baselines.Annealing.solve part spec in
        print_plan part spec "simulated annealing" r.Baselines.Annealing.plan
          r.Baselines.Annealing.wasted r.Baselines.Annealing.wirelength false
      | "tessellation" ->
        let r = Baselines.Vipin_fahmy.solve part spec in
        print_plan part spec "kernel tessellation heuristic" r.Baselines.Vipin_fahmy.plan
          r.Baselines.Vipin_fahmy.wasted r.Baselines.Vipin_fahmy.wirelength false
      | _ -> assert false)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Floorplan a design on a device.")
    Term.(
      const run $ device_arg $ device_file_arg $ design_arg $ design_file_arg
      $ engine_arg $ strategy_arg $ time_arg $ deadline_arg $ verbose_arg
      $ trace_arg $ metrics_arg $ workers_arg $ telemetry_arg)

(* ---------------- feasibility ---------------- *)

let feasibility_cmd =
  let region_arg =
    Arg.(value & opt (some string) None & info [ "region" ] ~docv:"NAME" ~doc:"Single region to test.")
  in
  let run device device_file design design_file region strategy time trace
      metrics =
    let grid = load_device device device_file in
    let part = partition_of grid in
    let spec = load_design design design_file in
    let sink, close_sink = sink_of_trace trace false in
    let reg, finish_metrics = registry_of_metrics metrics in
    Fun.protect ~finally:close_sink @@ fun () ->
    Fun.protect ~finally:finish_metrics @@ fun () ->
    let strategy =
      match strategy with
      | Some st -> st
      | None -> Rfloor.Solver.Strategy.combinatorial ()
    in
    let targets =
      match region with Some r -> [ r ] | None -> Spec.region_names spec
    in
    List.iter
      (fun name ->
        if Spec.find_region spec name = None then die "unknown region %s" name;
        let spec' =
          Spec.with_relocs spec [ { Spec.target = name; copies = 1; mode = Spec.Hard } ]
        in
        let opts =
          Rfloor.Solver.Options.make ~strategy
            ~time_limit:(Option.value time ~default:60.)
            ~trace:sink ~metrics:reg ()
        in
        let r = Rfloor.Solver.feasible ~options:opts part spec' in
        Format.printf "%-20s %s@." name
          (match (r.Rfloor.Solver.plan, r.Rfloor.Solver.status) with
          | Some _, _ -> "relocatable"
          | None, Rfloor.Solver.Infeasible -> "not relocatable (proven infeasible)"
          | None, _ -> "unknown (budget exhausted)"))
      targets
  in
  Cmd.v
    (Cmd.info "feasibility"
       ~doc:"Can each region get a free-compatible area? (Section VI analysis)")
    Term.(
      const run $ device_arg $ device_file_arg $ design_arg $ design_file_arg
      $ region_arg $ strategy_arg $ time_arg $ trace_arg $ metrics_arg)

(* ---------------- export-lp ---------------- *)

let export_cmd =
  let out_arg =
    Arg.(value & opt string "model.lp" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path (.lp or .mps).")
  in
  let run device device_file design design_file out =
    let grid = load_device device device_file in
    let spec = load_design design design_file in
    let part = partition_of grid in
    let opts = Rfloor.Solver.default_options in
    if Filename.check_suffix out ".mps" then begin
      let model = Rfloor.Model.build part spec in
      Milp.Mps.to_file out (Rfloor.Model.lp model)
    end
    else begin
      let text = Rfloor.Solver.export_lp ~options:opts part spec in
      let oc = open_out out in
      output_string oc text;
      close_out oc
    end;
    Format.printf "wrote %s@." out
  in
  Cmd.v
    (Cmd.info "export-lp" ~doc:"Export the MILP model to a CPLEX-LP or MPS file.")
    Term.(
      const run $ device_arg $ device_file_arg $ design_arg $ design_file_arg
      $ out_arg)

(* ---------------- lint ---------------- *)

let lint_cmd =
  let module D = Rfloor_diag.Diagnostic in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("human", `Human); ("sexp", `Sexp) ]) `Human
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Report format: human or sexp.")
  in
  let no_model_arg =
    Arg.(
      value & flag
      & info [ "no-model" ] ~doc:"Skip building and linting the MILP model.")
  in
  let codes_arg =
    Arg.(
      value & flag
      & info [ "codes" ] ~doc:"Print the RFxxx diagnostic code table and exit.")
  in
  let sources_arg =
    Arg.(
      value & opt_all string []
      & info [ "sources" ] ~docv:"DIR"
          ~doc:
            "Lint OCaml sources under $(docv) for raw synchronization \
             primitives (RF401..RF403) instead of a device/design pair.  \
             Repeatable.")
  in
  let run device device_file design design_file format no_model codes sources =
    if codes then
      List.iter
        (fun (code, sev, doc) ->
          Format.printf "%s %-7s %s@." code (D.severity_to_string sev) doc)
        D.all_codes
    else if sources <> [] then begin
      let diags = Rfloor_concheck.Source_lint.scan_roots sources in
      (match format with
      | `Human -> Format.printf "%a" D.pp_report diags
      | `Sexp -> print_endline (D.report_to_sexp diags));
      if D.has_errors diags then exit 1
    end
    else begin
      let grid = load_device device device_file in
      let spec = load_design design design_file in
      let part = partition_of grid in
      let spec_diags = Rfloor_analysis.Spec_lint.run part spec in
      (* a broken spec makes the generated model meaningless; lint it
         only when the spec pass found no errors *)
      let diags =
        if no_model || D.has_errors spec_diags then spec_diags
        else
          spec_diags
          @ Rfloor_analysis.Model_lint.run
              (Rfloor.Model.lp (Rfloor.Model.build part spec))
      in
      (match format with
      | `Human -> Format.printf "%a" D.pp_report diags
      | `Sexp -> print_endline (D.report_to_sexp diags));
      if D.has_errors diags then exit 1
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis: lint the device partition, the design spec and the \
          generated MILP model without solving.  Exits non-zero on \
          error-severity findings.")
    Term.(
      const run $ device_arg $ device_file_arg $ design_arg $ design_file_arg
      $ format_arg $ no_model_arg $ codes_arg $ sources_arg)

(* ---------------- relocate ---------------- *)

let rect_conv =
  let parse s =
    match List.map int_of_string_opt (String.split_on_char ',' s) with
    | [ Some x; Some y; Some w; Some h ] -> (
      try Ok (Rect.make ~x ~y ~w ~h) with Invalid_argument m -> Error (`Msg m))
    | _ -> Error (`Msg "expected x,y,w,h")
  in
  Arg.conv (parse, fun ppf r -> Format.fprintf ppf "%s" (Rect.to_string r))

let relocate_cmd =
  let src_arg =
    Arg.(required & opt (some rect_conv) None & info [ "src" ] ~docv:"X,Y,W,H" ~doc:"Source area.")
  in
  let dst_arg =
    Arg.(required & opt (some rect_conv) None & info [ "dst" ] ~docv:"X,Y,W,H" ~doc:"Target area.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Bitstream synthesis seed.")
  in
  let run device device_file src dst seed =
    let grid = load_device device device_file in
    let part = partition_of grid in
    let img = Bitstream.Image.synthesize ~seed part src in
    Format.printf "synthesized %d frames at %s (CRC32 %08lx)@."
      (Bitstream.Image.frame_count img)
      (Rect.to_string src) (Bitstream.Image.crc img);
    match Bitstream.Relocate.relocate part ~src ~dst img with
    | Ok img' ->
      Format.printf "relocated to %s (CRC32 %08lx), payload preserved: %b@."
        (Rect.to_string dst) (Bitstream.Image.crc img')
        (Bitstream.Image.payload_equal img img')
    | Error e -> die "relocation refused: %a" Bitstream.Relocate.pp_error e
  in
  Cmd.v
    (Cmd.info "relocate" ~doc:"Synthesize a partial bitstream and relocate it.")
    Term.(const run $ device_arg $ device_file_arg $ src_arg $ dst_arg $ seed_arg)

(* ---------------- trace-validate ---------------- *)

let read_whole_file file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let trace_validate_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "JSONL trace (from --trace jsonl:FILE), metrics snapshot (from \
             --metrics json:FILE) or bench artifact (BENCH_*.json).")
  in
  let kind_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("auto", `Auto); ("trace", `Trace); ("metrics", `Metrics);
               ("bench", `Bench); ("perfetto", `Perfetto);
             ])
          `Auto
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "What the file claims to be: $(b,trace), $(b,metrics), \
             $(b,bench), $(b,perfetto), or $(b,auto) (dispatch on the \
             embedded schema field).")
  in
  let run file kind =
    let text = read_whole_file file in
    let kind =
      match kind with
      | (`Trace | `Metrics | `Bench | `Perfetto) as k -> k
      (* a JSONL trace is not a single JSON document (or, for a
         one-event trace, has no "schema" member), so parsing the whole
         file and inspecting "schema" is an unambiguous dispatcher *)
      | `Auto -> (
        match Rfloor_metrics.Json.parse text with
        | Error _ -> `Trace
        | Ok doc -> (
          match Rfloor_metrics.Json.member "schema" doc with
          | Some (Rfloor_metrics.Json.Str s)
            when s = Rfloor_metrics.Registry.schema_version ->
            `Metrics
          | Some (Rfloor_metrics.Json.Str s)
            when s = Rfloor_metrics.Artifact.schema_version ->
            `Bench
          | _ ->
            if Rfloor_metrics.Json.member "traceEvents" doc <> None then
              `Perfetto
            else `Trace))
    in
    match kind with
    | `Trace -> (
      match Rfloor_trace.validate_jsonl text with
      | Ok n ->
        Format.printf "%s: %d events, schema valid, spans balanced@." file n
      | Error e -> die "%s: invalid trace: %s" file e)
    | `Perfetto -> (
      match Rfloor_obsv.Perfetto.validate text with
      | Ok () ->
        Format.printf "%s: trace-event JSON valid, slices balanced@." file
      | Error e -> die "%s: invalid perfetto trace: %s" file e)
    | `Metrics -> (
      match Rfloor_metrics.Registry.validate_json text with
      | Ok n -> Format.printf "%s: %d metrics, schema valid@." file n
      | Error e -> die "%s: invalid metrics snapshot: %s" file e)
    | `Bench -> (
      match Rfloor_metrics.Artifact.validate text with
      | Ok n -> Format.printf "%s: %d bench entries, schema valid@." file n
      | Error e -> die "%s: invalid bench artifact: %s" file e)
  in
  Cmd.v
    (Cmd.info "trace-validate"
       ~doc:
         "Validate a solver observability file against its schema: a JSONL \
          trace (every line parses, spans balanced), a metrics snapshot or a \
          bench artifact.  Exits non-zero otherwise.")
    Term.(const run $ file_arg $ kind_arg)

(* ---------------- trace-export / trace-report ---------------- *)

let events_of_jsonl_file file =
  let text = read_whole_file file in
  let rec go i acc = function
    | [] -> List.rev acc
    | line :: rest ->
      if String.trim line = "" then go (i + 1) acc rest
      else (
        match Rfloor_trace.Event.of_json line with
        | Ok e -> go (i + 1) (e :: acc) rest
        | Error msg -> die "%s:%d: invalid trace event: %s" file i msg)
  in
  go 1 [] (String.split_on_char '\n' text)

let trace_export_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace (from --trace jsonl:FILE).")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT"
          ~doc:"Output path for the trace-event JSON.")
  in
  let run file out =
    match Rfloor_obsv.Perfetto.of_jsonl (read_whole_file file) with
    | Error e -> die "%s: %s" file e
    | Ok doc ->
      let oc = open_out out in
      output_string oc doc;
      close_out oc;
      Format.printf "wrote %s@." out
  in
  Cmd.v
    (Cmd.info "trace-export"
       ~doc:
         "Convert a JSONL solve trace to Chrome/Perfetto trace-event JSON \
          (open it in ui.perfetto.dev or chrome://tracing): one track per \
          worker and per portfolio member, solve phases as nested slices, \
          node exploration as counter series.")
    Term.(const run $ file_arg $ out_arg)

let trace_report_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace (from --trace jsonl:FILE).")
  in
  let critical_arg =
    Arg.(
      value & flag
      & info [ "critical-path" ]
          ~doc:
            "Also print the dominant phase chain: the busiest worker's span \
             tree, descending into the biggest child at each level.")
  in
  let run file critical_path =
    print_string
      (Rfloor_obsv.Perfetto.report ~critical_path (events_of_jsonl_file file))
  in
  Cmd.v
    (Cmd.info "trace-report"
       ~doc:
         "Phase-dominance summary of a JSONL solve trace: self and inclusive \
          wall time per phase, sorted by self time.")
    Term.(const run $ file_arg $ critical_arg)

(* ---------------- scrape ---------------- *)

let scrape_cmd =
  let port_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Telemetry port (from the 'telemetry: listening' line).")
  in
  let path_arg =
    Arg.(
      value
      & pos 0 string "/metrics"
      & info [] ~docv:"PATH" ~doc:"Endpoint path (default /metrics).")
  in
  let raw_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~docv:"TEXT"
          ~doc:
            "Instead of a GET, send $(docv) verbatim (terminated with a \
             blank line) and print the raw response — for probing the \
             endpoint's bad-request handling.")
  in
  let pretty_arg =
    Arg.(
      value & flag
      & info [ "pretty" ]
          ~doc:
            "Pretty-print a /statusz body as human-readable lines (uptime, \
             pool, the online layout's occupancy/fragmentation gauges, \
             in-flight jobs) instead of compact JSON.  Other bodies print \
             unchanged.")
  in
  (* --pretty: the /statusz document as lines a human can read at a
     glance; anything that is not a statusz body passes through *)
  let print_pretty body =
    let module J = Rfloor_metrics.Json in
    let num k j = Option.bind (J.member k j) (function J.Num n -> Some n | _ -> None) in
    let str k j = Option.bind (J.member k j) (function J.Str s -> Some s | _ -> None) in
    match J.parse (String.trim body) with
    | Ok doc when str "v" doc = Some Rfloor_obsv.Statusz.version ->
      Option.iter (Format.printf "uptime:  %.1fs@.") (num "uptime_s" doc);
      Option.iter (Format.printf "version: %s@.") (str "version" doc);
      (match J.member "pool" doc with
      | Some pool ->
        Format.printf "pool:    queued %g, running %g, finished %g@."
          (Option.value ~default:0. (num "queued" pool))
          (Option.value ~default:0. (num "running" pool))
          (Option.value ~default:0. (num "finished" pool))
      | None -> ());
      (match J.member "layout" doc with
      | Some lay ->
        Format.printf
          "layout:  %s — %g modules, occupancy %.3f, fragmentation %.3f, %g \
           free rects@."
          (Option.value ~default:"?" (str "device" lay))
          (Option.value ~default:0. (num "modules" lay))
          (Option.value ~default:0. (num "occupancy" lay))
          (Option.value ~default:0. (num "fragmentation" lay))
          (Option.value ~default:0. (num "free_rects" lay))
      | None -> Format.printf "layout:  none established@.");
      (match J.member "jobs" doc with
      | Some (J.Arr jobs) ->
        Format.printf "jobs:    %d in flight@." (List.length jobs);
        List.iter
          (fun job ->
            Format.printf "  %s (%s) %.1fs, %g nodes@."
              (Option.value ~default:"?" (str "id" job))
              (Option.value ~default:"?" (str "strategy" job))
              (Option.value ~default:0. (num "elapsed_s" job))
              (Option.value ~default:0. (num "nodes" job)))
          jobs
      | _ -> ())
    | _ -> print_string body
  in
  let run port path raw pretty =
    match raw with
    | Some text -> (
      match
        Rfloor_obsv.Http.request_raw ~port (text ^ "\r\n\r\n")
      with
      | Ok response -> print_string response
      | Error e -> die "scrape failed: %s" e)
    | None -> (
      match Rfloor_obsv.Http.get ~port path with
      | Ok (200, body) -> if pretty then print_pretty body else print_string body
      | Ok (status, body) ->
        print_string body;
        die "scrape %s: HTTP %d" path status
      | Error e -> die "scrape failed: %s" e)
  in
  Cmd.v
    (Cmd.info "scrape"
       ~doc:
         "Fetch an endpoint from a running --telemetry server on \
          127.0.0.1 and print the body (no curl needed in scripts).  \
          Exits non-zero unless the response is HTTP 200.")
    Term.(const run $ port_arg $ path_arg $ raw_arg $ pretty_arg)

(* ---------------- trace-verify ---------------- *)

let trace_verify_cmd =
  let module D = Rfloor_diag.Diagnostic in
  let module V = Rfloor_concheck.Trace_verify in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace (from --trace jsonl:FILE).")
  in
  let run file =
    let stats, diags = V.verify (read_whole_file file) in
    Format.printf
      "%s: %d lines, %d events, %d branch-and-bound segments, %d workers@."
      file stats.V.v_lines stats.V.v_events stats.V.v_segments stats.V.v_workers;
    Format.printf "%a" D.pp_report diags;
    if D.has_errors diags then exit 1
  in
  Cmd.v
    (Cmd.info "trace-verify"
       ~doc:
         "Check the causal invariants of a JSONL solve trace \
          (RF430..RF435): per-worker span nesting and timestamp \
          monotonicity, per-segment incumbent monotonicity, node-count \
          and donation conservation, at most one stop per reason.  \
          Stricter than trace-validate, which only checks shape.")
    Term.(const run $ file_arg)

(* ---------------- concheck ---------------- *)

let concheck_cmd =
  let module D = Rfloor_diag.Diagnostic in
  let module C = Rfloor_concheck in
  let seed_arg =
    Arg.(
      value & opt int 2015
      & info [ "seed" ] ~docv:"N"
          ~doc:"Deterministic seed for the scenario data.")
  in
  let max_replays_arg =
    Arg.(
      value & opt int 2_000_000
      & info [ "max-replays" ] ~docv:"N"
          ~doc:"Replay budget per explored scenario.")
  in
  (* a tiny pinned instance: big enough that two branch-and-bound
     workers genuinely overlap, small enough to solve in well under a
     second even with every sync operation recorded *)
  let pinned_device = "name: concheckdev\nccbccdccbc\nccbccdccbc\n" in
  let pinned_design =
    "name: concheckdesign\n\
     region filter clb=2 bram=1\n\
     region decoder clb=2 dsp=1\n\
     net filter decoder 32\n"
  in
  let run seed max_replays =
    (* 1. exhaustive interleaving exploration (plus the seeded-bug
       variant that must be caught) *)
    let outcomes, explore_diags = C.Scenarios.run_all ~max_replays ~seed () in
    List.iter
      (fun o ->
        Format.printf "explore %-24s %7d schedules %8d replays %6d pruned %s@."
          o.C.Explorer.o_name o.C.Explorer.o_schedules o.C.Explorer.o_replays
          o.C.Explorer.o_pruned
          (match o.C.Explorer.o_violation with
          | Some _ -> "VIOLATION"
          | None -> if o.C.Explorer.o_exhausted then "exhausted" else "budget"))
      outcomes;
    (* 2. race-detector self-test on real two-domain workloads *)
    let selfs, self_diags = C.Scenarios.detector_self_test () in
    List.iter
      (fun s ->
        Format.printf "detector %-23s expected %-28s %s@." s.C.Scenarios.st_name
          s.C.Scenarios.st_expected
          (if s.C.Scenarios.st_pass then "ok" else "FAIL: " ^ s.C.Scenarios.st_detail))
      selfs;
    (* 3. record a real two-worker solve and require it race-free *)
    let grid =
      match Device.Io.parse_grid pinned_device with
      | Ok g -> g
      | Error d -> die "concheck device: %a" pp_diag d
    in
    let spec =
      match Device.Io.parse_spec pinned_design with
      | Ok s -> s
      | Error d -> die "concheck design: %a" pp_diag d
    in
    let part = partition_of grid in
    Rfloor_sync.Recorder.start ();
    let result =
      Rfloor.Solver.solve
        ~options:(Rfloor.Solver.Options.make ~workers:2 ~time_limit:30. ())
        part spec
    in
    let events = Rfloor_sync.Recorder.stop () in
    if result.Rfloor.Solver.status <> Rfloor.Solver.Optimal then
      die "concheck solve was not optimal (status changed under recording?)";
    let report, race_diags = C.Race.analyze events in
    Format.printf
      "solve    2 workers: %d sync events, %d domains, %d shared cells, %d \
       races, %d lockset warnings@."
      report.C.Race.events report.C.Race.domains report.C.Race.cells
      (List.length report.C.Race.races)
      (List.length report.C.Race.lockset_warnings);
    let diags = List.sort D.compare (explore_diags @ self_diags @ race_diags) in
    Format.printf "%a" D.pp_report diags;
    if D.has_errors diags then exit 1
  in
  Cmd.v
    (Cmd.info "concheck"
       ~doc:
         "Concurrency-correctness gate: exhaustively explore the \
          interleavings of the repo's racy-by-design scenarios (RF420, \
          RF421), self-test the vector-clock race detector against seeded \
          bugs, and record a real two-worker branch-and-bound solve \
          through the instrumented sync layer, requiring it free of data \
          races (RF410) and lockset warnings are reported (RF411).  Exits \
          non-zero on any error-severity finding.")
    Term.(const run $ seed_arg $ max_replays_arg)

(* ---------------- bench-compare ---------------- *)

let bench_compare_cmd =
  let module A = Rfloor_metrics.Artifact in
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline bench artifact (BENCH_*.json).")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate bench artifact to gate.")
  in
  let d = A.default_thresholds in
  let slowdown_arg =
    Arg.(
      value
      & opt float d.A.max_slowdown
      & info [ "max-slowdown" ] ~docv:"RATIO"
          ~doc:"Fail when an instance's elapsed time grows beyond this ratio.")
  in
  let node_growth_arg =
    Arg.(
      value
      & opt float d.A.max_node_growth
      & info [ "max-node-growth" ] ~docv:"RATIO"
          ~doc:"Fail when an instance's node count grows beyond this ratio.")
  in
  let min_seconds_arg =
    Arg.(
      value
      & opt float d.A.min_seconds
      & info [ "min-seconds" ] ~docv:"SECONDS"
          ~doc:
            "Noise floor: ignore slowdowns when both runs are faster than \
             this.")
  in
  let run old_file new_file max_slowdown max_node_growth min_seconds =
    let load file =
      let text = read_whole_file file in
      match A.validate text with
      | Error e -> die "%s: invalid bench artifact: %s" file e
      | Ok _ -> (
        match A.of_string text with
        | Ok a -> a
        | Error e -> die "%s: invalid bench artifact: %s" file e)
    in
    let old_ = load old_file and new_ = load new_file in
    let thresholds = { A.max_slowdown; max_node_growth; min_seconds } in
    match A.compare ~thresholds ~old_ new_ with
    | [] ->
      Format.printf "no regressions: %s (%s) vs %s (%s), %d instances@."
        old_.A.a_label old_.A.a_git_rev new_.A.a_label new_.A.a_git_rev
        (List.length old_.A.a_entries)
    | regressions ->
      List.iter (fun r -> Format.printf "REGRESSION: %s@." r) regressions;
      Format.printf "%d regression(s): %s (%s) vs %s (%s)@."
        (List.length regressions) old_.A.a_label old_.A.a_git_rev
        new_.A.a_label new_.A.a_git_rev;
      exit 1
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Diff two bench artifacts (from bench --artifact LABEL) and exit \
          non-zero when the new one regresses: a solve got slower beyond \
          --max-slowdown, explored disproportionately more nodes, lost \
          solution quality (wasted frames / objective) or dropped status \
          (optimal to feasible, feasible to infeasible...).")
    Term.(
      const run $ old_arg $ new_arg $ slowdown_arg $ node_growth_arg
      $ min_seconds_arg)

(* ---------------- serve / batch ---------------- *)

let run_session ?input ?telemetry ~workers ~cache trace metrics =
  let sink, close_sink = sink_of_trace trace false in
  let reg, finish_metrics =
    registry_of_metrics ~force:(telemetry <> None) metrics
  in
  let server = ref None in
  Fun.protect ~finally:(fun () -> Option.iter Rfloor_obsv.Http.stop !server)
  @@ fun () ->
  Fun.protect ~finally:close_sink @@ fun () ->
  Fun.protect ~finally:finish_metrics @@ fun () ->
  let tracer = Rfloor_trace.create ~sink:(tee_metrics_sink reg sink) () in
  (* the session hands us its statusz thunk once the pool exists; only
     then can the endpoint go up *)
  let on_status =
    Option.map
      (fun port statusz -> server := Some (start_telemetry ~reg ~statusz port))
      telemetry
  in
  let warn d = Format.eprintf "%a@." pp_diag d in
  let session ic =
    Rfloor_service.Session.run ~workers ~cache_capacity:cache ~metrics:reg
      ~trace:tracer ~warn ?on_status
      ~devices:(fun n -> List.assoc_opt n builtin_devices)
      ~designs:(fun n -> List.assoc_opt n builtin_designs)
      ic stdout
  in
  match input with
  | None -> session stdin
  | Some file ->
    let ic = open_in file in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> session ic)

let pool_workers_arg =
  Arg.(
    value
    & opt int (Milp.Parallel_bb.workers_from_env ())
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Service worker domains draining the job queue (default from \
           \\$(b,RFLOOR_WORKERS), else 1).  Each job's own $(b,workers) field \
           additionally controls its solver's branch-and-bound domains.")

let cache_capacity_arg =
  Arg.(
    value
    & opt int 128
    & info [ "cache" ] ~docv:"N"
        ~doc:"Solution cache capacity, in canonical-key entries (LRU).")

let serve_cmd =
  let run workers cache trace metrics telemetry =
    run_session ?telemetry ~workers:(max 1 workers) ~cache:(max 1 cache) trace
      metrics
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the floorplanning service over stdin/stdout: one \
          rfloor-service/1 JSON request per input line (solve, cancel, \
          stats, shutdown), one JSON response per output line, result \
          frames in submission order.  Repeated equivalent instances are \
          answered from the canonical-key solution cache.")
    Term.(
      const run $ pool_workers_arg $ cache_capacity_arg $ trace_arg
      $ metrics_arg $ telemetry_arg)

let batch_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"NDJSON request file, one frame per line.")
  in
  let run file workers cache trace metrics telemetry =
    run_session ~input:file ?telemetry ~workers:(max 1 workers)
      ~cache:(max 1 cache) trace metrics
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a file of rfloor-service/1 request frames through the service \
          and print the responses — exactly $(b,serve) with the session \
          scripted from FILE.")
    Term.(
      const run $ file_arg $ pool_workers_arg $ cache_capacity_arg $ trace_arg
      $ metrics_arg $ telemetry_arg)

(* ---------------- online ---------------- *)

let online_cmd =
  let module W = Rfloor_online.Workload in
  let module L = Rfloor_online.Layout in
  let module J = Rfloor_metrics.Json in
  let seed_arg =
    Arg.(
      value & opt int 2015
      & info [ "seed" ] ~docv:"N" ~doc:"Workload generator seed.")
  in
  let events_arg =
    Arg.(
      value & opt int 100
      & info [ "events" ] ~docv:"N"
          ~doc:"Length of the arrival/departure trace.")
  in
  let emit_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit" ] ~docv:"FILE"
          ~doc:
            "Instead of replaying locally, write the trace as \
             rfloor-service/1 NDJSON frames (layout establish, one \
             add/remove per event, a final layout report, shutdown) — \
             feed the file to $(b,rfloor_cli batch) or $(b,serve).  \
             $(b,-) writes to stdout.")
  in
  let no_defrag_arg =
    Arg.(
      value & flag
      & info [ "no-defrag" ]
          ~doc:"Reject fragmented arrivals instead of planning moves.")
  in
  let no_fallback_arg =
    Arg.(
      value & flag
      & info [ "no-fallback" ]
          ~doc:
            "Never fall back to the full re-placement solve (RF704); \
             arrivals the bounded move search cannot admit are rejected.")
  in
  let max_moves_arg =
    Arg.(
      value & opt int 3
      & info [ "max-moves" ] ~docv:"N"
          ~doc:"Defragmentation search depth (moves per episode).")
  in
  let demand_fields d =
    List.filter_map
      (fun (k, n) ->
        if n <= 0 then None
        else
          Some
            ( String.lowercase_ascii (Resource.kind_to_string k),
              J.Num (float_of_int n) ))
      d
  in
  let emit_frames ~device ~device_file ~events out =
    let layout_frame =
      match device_file with
      | Some path ->
        J.Obj
          [ ("op", J.Str "layout"); ("device_text", J.Str (read_whole_file path)) ]
      | None -> J.Obj [ ("op", J.Str "layout"); ("device", J.Str device) ]
    in
    let event_frame = function
      | W.Arrive { a_name; a_demand } ->
        J.Obj
          [
            ("op", J.Str "add");
            ("name", J.Str a_name);
            ("demand", J.Obj (demand_fields a_demand));
          ]
      | W.Depart { d_name } ->
        J.Obj [ ("op", J.Str "remove"); ("name", J.Str d_name) ]
    in
    let frames =
      (layout_frame :: List.map event_frame events)
      @ [ J.Obj [ ("op", J.Str "layout") ]; J.Obj [ ("op", J.Str "shutdown") ] ]
    in
    List.iter
      (fun f ->
        output_string out (J.to_string f);
        output_char out '\n')
      frames
  in
  let run device device_file seed events emit no_defrag no_fallback max_moves
      verbose =
    let grid = load_device device device_file in
    let part = partition_of grid in
    let trace = W.generate ~seed ~events part in
    match emit with
    | Some "-" -> emit_frames ~device ~device_file ~events:trace stdout
    | Some path ->
      let oc = open_out path in
      emit_frames ~device ~device_file ~events:trace oc;
      close_out oc;
      Format.printf "wrote %s (%d frames)@." path (events + 3)
    | None ->
      let on_event =
        if verbose then fun i ev outcome ->
          Format.printf "%3d %-32s %s@." i
            (Format.asprintf "%a" W.pp_event ev)
            outcome
        else fun _ _ _ -> ()
      in
      let stats =
        W.replay ~defrag:(not no_defrag) ~max_moves
          ~fallback:(not no_fallback) ~on_event part trace
      in
      Format.printf
        "events: %d  admitted: %d  defrag: %d  fallback: %d  rejected: %d  \
         departed: %d  moves: %d@."
        stats.W.s_events stats.W.s_admitted stats.W.s_defrag_admitted
        stats.W.s_fallbacks stats.W.s_rejected stats.W.s_departed
        stats.W.s_moves;
      Format.printf "defrag episodes: %d@." (W.defrag_episodes stats);
      Format.printf "final occupancy: %.3f  fragmentation: %.3f@."
        (L.occupancy stats.W.s_final)
        (L.fragmentation stats.W.s_final);
      Format.printf "violations: %d@." (List.length stats.W.s_violations);
      List.iter
        (fun v -> Format.printf "VIOLATION: %s@." v)
        stats.W.s_violations;
      print_string (L.render stats.W.s_final);
      if stats.W.s_violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "online"
       ~doc:
         "Online floorplanning workload replayer: generate a seeded \
          arrival/departure trace and replay it against the incremental \
          layout with no-break defragmentation, auditing every step (each \
          move through the bitstream relocation filter, non-moving frames \
          byte-identical, free-rectangle set equal to a from-scratch \
          recompute).  Exits non-zero on any audit violation.  With \
          $(b,--emit), writes the trace as service frames instead.")
    Term.(
      const run $ device_arg $ device_file_arg $ seed_arg $ events_arg
      $ emit_arg $ no_defrag_arg $ no_fallback_arg $ max_moves_arg
      $ verbose_arg)

(* ---------------- sites ---------------- *)

let sites_cmd =
  let area_arg =
    Arg.(required & opt (some rect_conv) None & info [ "area" ] ~docv:"X,Y,W,H" ~doc:"Reference area.")
  in
  let run device device_file area =
    let grid = load_device device device_file in
    let part = partition_of grid in
    let sites = Compat.relocation_sites part area in
    Format.printf "%d compatible placements for %s:@." (List.length sites)
      (Rect.to_string area);
    List.iter (fun r -> Format.printf "  %s@." (Rect.to_string r)) sites
  in
  Cmd.v
    (Cmd.info "sites" ~doc:"List all areas compatible with a given area.")
    Term.(const run $ device_arg $ device_file_arg $ area_arg)

let main_cmd =
  let doc = "relocation-aware floorplanning for partially-reconfigurable FPGAs" in
  Cmd.group
    (Cmd.info "rfloor" ~version:"1.0.0" ~doc)
    [
      partition_cmd; solve_cmd; feasibility_cmd; export_cmd; lint_cmd;
      relocate_cmd; sites_cmd; trace_validate_cmd; trace_export_cmd;
      trace_report_cmd; trace_verify_cmd; concheck_cmd; bench_compare_cmd;
      serve_cmd; batch_cmd; scrape_cmd; online_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
